file(REMOVE_RECURSE
  "CMakeFiles/sbfr_test.dir/sbfr_test.cpp.o"
  "CMakeFiles/sbfr_test.dir/sbfr_test.cpp.o.d"
  "sbfr_test"
  "sbfr_test.pdb"
  "sbfr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sbfr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
