file(REMOVE_RECURSE
  "libmpros_nn.a"
)
