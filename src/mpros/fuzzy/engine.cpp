#include "mpros/fuzzy/engine.hpp"

#include <algorithm>

#include "mpros/common/assert.hpp"

namespace mpros::fuzzy {

MamdaniEngine::MamdaniEngine(std::vector<LinguisticVariable> inputs,
                             LinguisticVariable output)
    : inputs_(std::move(inputs)), output_(std::move(output)) {
  MPROS_EXPECTS(!inputs_.empty());
  MPROS_EXPECTS(!output_.terms().empty());
}

MamdaniEngine& MamdaniEngine::add_rule(FuzzyRule rule) {
  MPROS_EXPECTS(!rule.antecedents.empty());
  MPROS_EXPECTS(output_.has_term(rule.output_term));
  MPROS_EXPECTS(rule.weight > 0.0 && rule.weight <= 1.0);
  for (const Antecedent& a : rule.antecedents) {
    MPROS_EXPECTS(input_variable(a.variable).has_term(a.term));
  }
  rules_.push_back(std::move(rule));
  return *this;
}

const LinguisticVariable& MamdaniEngine::input_variable(
    const std::string& name) const {
  for (const LinguisticVariable& v : inputs_) {
    if (v.name() == name) return v;
  }
  MPROS_EXPECTS(false && "unknown fuzzy input variable");
  return inputs_.front();  // unreachable
}

std::vector<double> MamdaniEngine::firing_strengths(
    const CrispInputs& inputs) const {
  std::vector<double> strengths;
  strengths.reserve(rules_.size());

  for (const FuzzyRule& rule : rules_) {
    double strength = 1.0;
    for (const Antecedent& a : rule.antecedents) {
      const auto it = inputs.find(a.variable);
      MPROS_EXPECTS(it != inputs.end());
      double g = input_variable(a.variable).grade(a.term, it->second);
      if (a.negated) g = 1.0 - g;
      strength = std::min(strength, g);
    }
    strengths.push_back(strength * rule.weight);
  }
  return strengths;
}

double MamdaniEngine::infer(const CrispInputs& inputs, Defuzzifier d) const {
  const std::vector<double> strengths = firing_strengths(inputs);

  // Aggregate the clipped consequents over a sampled output universe.
  const double lo = output_.min();
  const double hi = output_.max();
  const double step = (hi - lo) / static_cast<double>(kSamples - 1);

  double weighted_area = 0.0;
  double area = 0.0;
  double best_membership = 0.0;
  double mom_sum = 0.0;
  std::size_t mom_count = 0;

  for (std::size_t i = 0; i < kSamples; ++i) {
    const double y = lo + static_cast<double>(i) * step;
    double mu = 0.0;
    for (std::size_t r = 0; r < rules_.size(); ++r) {
      if (strengths[r] <= 0.0) continue;
      const double clipped = std::min(
          strengths[r], output_.grade(rules_[r].output_term, y));
      mu = std::max(mu, clipped);
    }
    weighted_area += mu * y;
    area += mu;
    if (mu > best_membership + 1e-12) {
      best_membership = mu;
      mom_sum = y;
      mom_count = 1;
    } else if (std::abs(mu - best_membership) <= 1e-12 &&
               best_membership > 0.0) {
      mom_sum += y;
      ++mom_count;
    }
  }

  if (area <= 0.0) return lo;  // nothing fired
  switch (d) {
    case Defuzzifier::Centroid:
      return weighted_area / area;
    case Defuzzifier::MeanOfMaximum:
      return mom_count > 0 ? mom_sum / static_cast<double>(mom_count) : lo;
  }
  return lo;
}

}  // namespace mpros::fuzzy
