#pragma once
// The Data Concentrator acquisition hardware (paper Fig 5 / §8).
//
// Modelled chain: two 16x4 MUX cards feed a 4-channel spectrum-analyzer
// card ("Crystal Instruments PCMCIA", >40 kHz per channel), so the 32
// channels are digitized four at a time, bank by bank. Independently of the
// digitizer, every channel carries an analog RMS detector with a
// programmable threshold that "allows for real-time and constant alarming
// for all sensors" — even channels not currently selected.

#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "mpros/common/clock.hpp"
#include "mpros/dsp/filter.hpp"

namespace mpros::plant {

/// Fills `out` with samples of `channel` starting at absolute time `t0_s`.
using SignalSource = std::function<void(
    std::size_t channel, double t0_s, double sample_rate_hz,
    std::span<double> out)>;

struct DaqConfig {
  std::size_t mux_cards = 2;
  std::size_t banks_per_card = 4;
  std::size_t channels_per_bank = 4;
  double max_sample_rate_hz = 51200.0;  ///< "exceeds 40,000 Hz"
  SimTime mux_settle = SimTime::from_millis(2.0);  ///< per bank switch
  /// RMS detectors: analog, modelled at this internal sampling rate with an
  /// exponential window of `rms_time_constant`.
  double alarm_sample_rate_hz = 4096.0;
  SimTime rms_time_constant = SimTime::from_millis(50.0);
};

struct RmsAlarm {
  std::size_t channel = 0;
  SimTime at;       ///< first instant the RMS crossed the threshold
  double rms = 0.0; ///< RMS value at detection
};

struct BankAcquisition {
  std::vector<std::vector<double>> waveforms;  ///< channels_per_bank entries
  std::vector<std::size_t> channels;           ///< absolute channel indices
  SimTime started;
  SimTime finished;
};

class DaqChain {
 public:
  DaqChain(DaqConfig cfg, SignalSource source);

  [[nodiscard]] std::size_t channel_count() const;
  [[nodiscard]] const DaqConfig& config() const { return cfg_; }

  /// Program one channel's RMS alarm threshold (nullopt disables).
  void set_alarm_threshold(std::size_t channel, std::optional<double> rms);

  /// Digitize one bank (card, bank) of 4 channels for `samples` samples at
  /// `sample_rate_hz` (clamped to the card's maximum), starting at `now`.
  /// Returns the waveforms and the time the acquisition finished (switch
  /// settle + record length).
  [[nodiscard]] BankAcquisition acquire_bank(std::size_t card,
                                             std::size_t bank,
                                             std::size_t samples,
                                             double sample_rate_hz,
                                             SimTime now);

  /// Digitize every bank sequentially starting at `now`. Returns one
  /// waveform per channel and the total wall (simulated) duration.
  struct FullScan {
    std::vector<std::vector<double>> waveforms;  ///< by absolute channel
    SimTime duration;
    std::size_t total_samples = 0;
  };
  [[nodiscard]] FullScan scan_all(std::size_t samples_per_channel,
                                  double sample_rate_hz, SimTime now);

  /// Run the always-on RMS detectors over [now, now + duration) and return
  /// threshold crossings (at most one alarm per channel per call; detectors
  /// latch until rearm_alarms()).
  [[nodiscard]] std::vector<RmsAlarm> poll_alarms(SimTime now,
                                                  SimTime duration);
  void rearm_alarms();

 private:
  DaqConfig cfg_;
  SignalSource source_;
  std::vector<std::optional<double>> thresholds_;
  std::vector<dsp::RmsTracker> trackers_;
  std::vector<bool> latched_;
  std::vector<double> scratch_;
};

}  // namespace mpros::plant
