
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mpros/dsp/cepstrum.cpp" "src/mpros/dsp/CMakeFiles/mpros_dsp.dir/cepstrum.cpp.o" "gcc" "src/mpros/dsp/CMakeFiles/mpros_dsp.dir/cepstrum.cpp.o.d"
  "/root/repo/src/mpros/dsp/dct.cpp" "src/mpros/dsp/CMakeFiles/mpros_dsp.dir/dct.cpp.o" "gcc" "src/mpros/dsp/CMakeFiles/mpros_dsp.dir/dct.cpp.o.d"
  "/root/repo/src/mpros/dsp/envelope.cpp" "src/mpros/dsp/CMakeFiles/mpros_dsp.dir/envelope.cpp.o" "gcc" "src/mpros/dsp/CMakeFiles/mpros_dsp.dir/envelope.cpp.o.d"
  "/root/repo/src/mpros/dsp/fft.cpp" "src/mpros/dsp/CMakeFiles/mpros_dsp.dir/fft.cpp.o" "gcc" "src/mpros/dsp/CMakeFiles/mpros_dsp.dir/fft.cpp.o.d"
  "/root/repo/src/mpros/dsp/filter.cpp" "src/mpros/dsp/CMakeFiles/mpros_dsp.dir/filter.cpp.o" "gcc" "src/mpros/dsp/CMakeFiles/mpros_dsp.dir/filter.cpp.o.d"
  "/root/repo/src/mpros/dsp/spectrum.cpp" "src/mpros/dsp/CMakeFiles/mpros_dsp.dir/spectrum.cpp.o" "gcc" "src/mpros/dsp/CMakeFiles/mpros_dsp.dir/spectrum.cpp.o.d"
  "/root/repo/src/mpros/dsp/stats.cpp" "src/mpros/dsp/CMakeFiles/mpros_dsp.dir/stats.cpp.o" "gcc" "src/mpros/dsp/CMakeFiles/mpros_dsp.dir/stats.cpp.o.d"
  "/root/repo/src/mpros/dsp/stft.cpp" "src/mpros/dsp/CMakeFiles/mpros_dsp.dir/stft.cpp.o" "gcc" "src/mpros/dsp/CMakeFiles/mpros_dsp.dir/stft.cpp.o.d"
  "/root/repo/src/mpros/dsp/window.cpp" "src/mpros/dsp/CMakeFiles/mpros_dsp.dir/window.cpp.o" "gcc" "src/mpros/dsp/CMakeFiles/mpros_dsp.dir/window.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mpros/common/CMakeFiles/mpros_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
