#include "mpros/mpros/wnn_training.hpp"

#include "mpros/common/rng.hpp"
#include "mpros/plant/vibration.hpp"

namespace mpros {

using domain::FailureMode;

namespace {

/// Modes whose signature is visible in a vibration window (the classifier's
/// non-trivial classes); process-only modes are left to the fuzzy system.
constexpr FailureMode kVibrationModes[] = {
    FailureMode::MotorImbalance,          FailureMode::ShaftMisalignment,
    FailureMode::BearingHousingLooseness, FailureMode::StatorWindingFault,
    FailureMode::MotorBearingWear,        FailureMode::CompressorBearingWear,
    FailureMode::GearMeshWear,            FailureMode::PumpCavitation,
};

plant::MachinePoint best_point(FailureMode m) {
  switch (m) {
    case FailureMode::GearMeshWear:
      return plant::MachinePoint::Gearbox;
    case FailureMode::CompressorBearingWear:
    case FailureMode::BearingHousingLooseness:
    case FailureMode::PumpCavitation:
      return plant::MachinePoint::Compressor;
    default:
      return plant::MachinePoint::Motor;
  }
}

}  // namespace

std::vector<nn::LabelledWindow> make_training_windows(
    const WnnTrainingConfig& cfg) {
  Rng rng(cfg.seed);
  plant::VibrationSynthesizer synth(domain::navy_chiller_signature(),
                                    splitmix64(cfg.seed));
  std::vector<nn::LabelledWindow> windows;

  const auto make_window = [&](FailureMode mode, bool healthy) {
    nn::LabelledWindow w;
    w.sample_rate_hz = cfg.sample_rate_hz;
    w.waveform.resize(cfg.window_samples);
    w.context.load_fraction = rng.uniform(0.5, 1.0);
    w.context.shaft_hz = domain::navy_chiller_signature().shaft_hz;
    w.context.bearing_temp_c = rng.uniform(50.0, 60.0);

    plant::Severities severities{};
    if (!healthy) {
      severities[static_cast<std::size_t>(mode)] =
          rng.uniform(cfg.min_severity, cfg.max_severity);
      if (mode == FailureMode::MotorBearingWear ||
          mode == FailureMode::CompressorBearingWear) {
        w.context.bearing_temp_c += rng.uniform(8.0, 25.0);
      }
    }
    plant::TransientProfile transient;
    transient.period_s = cfg.burst_period_s;
    if (!healthy && cfg.min_duty < 1.0) {
      transient.duty = rng.uniform(cfg.min_duty, 1.0);
    }
    synth.acceleration(healthy ? plant::MachinePoint::Motor
                               : best_point(mode),
                       severities, w.context.load_fraction,
                       rng.uniform(0.0, 100.0), cfg.sample_rate_hz,
                       w.waveform, transient);
    w.label = healthy ? nn::wnn_label(std::nullopt) : nn::wnn_label(mode);
    return w;
  };

  for (std::size_t i = 0; i < cfg.windows_per_class; ++i) {
    windows.push_back(make_window(FailureMode::MotorImbalance, true));
  }
  for (const FailureMode mode : kVibrationModes) {
    for (std::size_t i = 0; i < cfg.windows_per_class; ++i) {
      windows.push_back(make_window(mode, false));
    }
  }
  return windows;
}

std::shared_ptr<nn::WnnClassifier> train_wnn_classifier(
    const WnnTrainingConfig& cfg) {
  auto classifier =
      std::make_shared<nn::WnnClassifier>(cfg.classifier, cfg.seed ^ 0x99);
  const std::vector<nn::LabelledWindow> windows = make_training_windows(cfg);
  classifier->train(windows);
  return classifier;
}

}  // namespace mpros
