#pragma once
// The SBFR interpreter: N machines stepping in parallel over shared inputs.
//
// Cycle semantics (documented reconstruction of paper §6.3):
//  - step() presents one sample per input channel to every machine.
//  - Machines evaluate in index order within a cycle; status-register writes
//    are visible immediately, so machine k+1 can react to machine k's spike
//    in the same cycle (matches the paper's Machine-1-clears-Machine-0
//    handshake).
//  - Per machine, the first transition (in authoring order) whose condition
//    is true fires; at most one transition per machine per cycle.
//  - ∆T is the number of cycles since the machine entered its current state;
//    it resets only when a transition changes the state (self-loops keep it).
//  - The host (DC software / PDME) may read and write any status register
//    between cycles, as the paper requires ("that agent has the
//    responsibility to then reset Machine 1's status register to 0").

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "mpros/sbfr/machine.hpp"

namespace mpros::sbfr {

/// An event published by an Emit action.
struct Event {
  std::size_t machine = 0;
  std::uint8_t code = 0;
  double payload = 0.0;
  std::uint64_t cycle = 0;
};

class SbfrSystem {
 public:
  /// `input_channels` is the width of the sample vector fed to step().
  explicit SbfrSystem(std::size_t input_channels);

  /// Add a machine (validated; aborts on malformed bytecode). Returns its
  /// index, which is what LoadStatus/StoreStatus immediates refer to.
  std::size_t add_machine(MachineDef def);

  [[nodiscard]] std::size_t machine_count() const { return machines_.size(); }
  [[nodiscard]] std::size_t input_channels() const { return prev_inputs_.size(); }

  /// Run one cycle over the given samples (size must equal input_channels).
  /// Emitted events are appended to the internal event buffer.
  void step(std::span<const double> inputs);

  /// Events accumulated since the last drain_events() call.
  [[nodiscard]] std::vector<Event> drain_events();

  [[nodiscard]] std::uint64_t cycle() const { return cycle_; }

  // Host access (between cycles).
  [[nodiscard]] double status(std::size_t machine) const;
  void set_status(std::size_t machine, double v);
  [[nodiscard]] std::uint8_t state(std::size_t machine) const;
  [[nodiscard]] const std::string& state_name(std::size_t machine) const;
  [[nodiscard]] double local(std::size_t machine, std::size_t index) const;

  /// RAM the runtime needs: machine images + per-machine mutable state +
  /// shared registers. This is the number E4 holds against the paper's
  /// "100 machines + interpreter in under 32 KB".
  [[nodiscard]] std::size_t memory_footprint() const;

  void reset();

 private:
  struct MachineRuntime {
    MachineDef def;
    std::size_t image_bytes = 0;
    std::uint8_t state = 0;
    std::uint64_t state_entry_cycle = 0;
    std::vector<double> locals;
  };

  double run(std::span<const std::uint8_t> code, MachineRuntime& m,
             std::span<const double> inputs);
  double eval(std::span<const std::uint8_t> code, const MachineRuntime& m,
              std::span<const double> inputs);
  void exec_action(std::span<const std::uint8_t> code, MachineRuntime& m,
                   std::span<const double> inputs);

  std::vector<MachineRuntime> machines_;
  std::vector<double> status_;       // one shared register per machine
  std::vector<double> prev_inputs_;  // for LoadDelta
  bool have_prev_ = false;
  std::uint64_t cycle_ = 0;
  std::vector<Event> events_;
  std::size_t current_machine_ = 0;  // set during step()
};

}  // namespace mpros::sbfr
