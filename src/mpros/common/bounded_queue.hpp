#pragma once
// Bounded MPMC queue with explicit backpressure.
//
// The sharded PDME feeds each fusion worker through one of these: unlike
// ConcurrentQueue, capacity is fixed at construction, so a stalled consumer
// can no longer grow the heap without bound. When the queue is full the
// producer either waits for space (Block — lossless, the default) or evicts
// the oldest queued item to make room (DropOldest — lossy but bounded
// latency; the caller learns about the eviction from PushResult and is
// responsible for accounting the loss).

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "mpros/common/assert.hpp"
#include "mpros/common/concurrent_queue.hpp"  // QueuePopStatus

namespace mpros {

enum class OverflowPolicy : std::uint8_t {
  Block = 0,   ///< push() waits for space (or close); nothing is lost
  DropOldest,  ///< push() evicts the front item; newest data wins
};

template <typename T>
class BoundedQueue {
 public:
  struct PushResult {
    bool accepted = false;  ///< the pushed item is in the queue
    bool was_full = false;  ///< backpressure engaged (waited or evicted)
    bool evicted = false;   ///< an older item was dropped to make room
    /// The DropOldest victim, handed back so no loss is silent: a caller
    /// queueing batches must account every report inside an evicted batch,
    /// not just the fact of an eviction.
    std::optional<T> evicted_item;
  };

  BoundedQueue(std::size_t capacity, OverflowPolicy policy)
      : capacity_(capacity), policy_(policy) {
    MPROS_EXPECTS(capacity >= 1);
  }

  /// Push one item, honouring the overflow policy. accepted=false only
  /// when the queue is (or becomes, while blocked) closed.
  PushResult push(T v) {
    PushResult result;
    {
      std::unique_lock lock(mu_);
      if (closed_) return result;
      if (items_.size() >= capacity_) {
        result.was_full = true;
        if (policy_ == OverflowPolicy::Block) {
          space_cv_.wait(lock,
                         [&] { return items_.size() < capacity_ || closed_; });
          if (closed_) return result;
        } else {
          result.evicted_item = std::move(items_.front());
          items_.pop_front();
          result.evicted = true;
        }
      }
      items_.push_back(std::move(v));
      result.accepted = true;
    }
    items_cv_.notify_one();
    return result;
  }

  /// Block until an item is available or the queue is closed and drained.
  std::optional<T> pop() {
    std::optional<T> v;
    {
      std::unique_lock lock(mu_);
      items_cv_.wait(lock, [&] { return !items_.empty() || closed_; });
      if (items_.empty()) return std::nullopt;
      v = std::move(items_.front());
      items_.pop_front();
    }
    space_cv_.notify_one();
    return v;
  }

  /// Non-blocking pop with the same tri-state as ConcurrentQueue.
  QueuePopStatus try_pop(T& out) {
    {
      std::lock_guard lock(mu_);
      if (items_.empty()) {
        return closed_ ? QueuePopStatus::Drained : QueuePopStatus::Empty;
      }
      out = std::move(items_.front());
      items_.pop_front();
    }
    space_cv_.notify_one();
    return QueuePopStatus::Ok;
  }

  /// Close the queue: no further pushes succeed; blocked producers and
  /// consumers wake, consumers drain what remains.
  void close() {
    {
      std::lock_guard lock(mu_);
      closed_ = true;
    }
    items_cv_.notify_all();
    space_cv_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard lock(mu_);
    return closed_;
  }

  /// Closed and empty: no item will ever be produced again.
  [[nodiscard]] bool drained() const {
    std::lock_guard lock(mu_);
    return closed_ && items_.empty();
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mu_);
    return items_.size();
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] OverflowPolicy policy() const { return policy_; }

 private:
  const std::size_t capacity_;
  const OverflowPolicy policy_;
  mutable std::mutex mu_;
  std::condition_variable items_cv_;  // signalled on push
  std::condition_variable space_cv_;  // signalled on pop
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace mpros
