file(REMOVE_RECURSE
  "CMakeFiles/mpros_common.dir/assert.cpp.o"
  "CMakeFiles/mpros_common.dir/assert.cpp.o.d"
  "CMakeFiles/mpros_common.dir/clock.cpp.o"
  "CMakeFiles/mpros_common.dir/clock.cpp.o.d"
  "CMakeFiles/mpros_common.dir/log.cpp.o"
  "CMakeFiles/mpros_common.dir/log.cpp.o.d"
  "CMakeFiles/mpros_common.dir/thread_pool.cpp.o"
  "CMakeFiles/mpros_common.dir/thread_pool.cpp.o.d"
  "libmpros_common.a"
  "libmpros_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpros_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
