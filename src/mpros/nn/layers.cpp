#include "mpros/nn/layers.hpp"

#include <algorithm>
#include <cmath>

#include "mpros/common/assert.hpp"

namespace mpros::nn {

DenseLayer::DenseLayer(std::size_t in, std::size_t out, Activation act,
                       Rng& rng)
    : in_(in), out_(out), act_(act) {
  MPROS_EXPECTS(in > 0 && out > 0);
  const double scale = std::sqrt(2.0 / static_cast<double>(in + out));
  w_.resize(out * in);
  for (double& v : w_) v = rng.normal(0.0, scale);
  b_.assign(out, 0.0);
  grad_w_.assign(out * in, 0.0);
  grad_b_.assign(out, 0.0);
  vel_w_.assign(out * in, 0.0);
  vel_b_.assign(out, 0.0);
  last_x_.resize(in);
  pre_act_.resize(out);
  out_buf_.resize(out);
  grad_in_.resize(in);
}

std::span<const double> DenseLayer::forward(std::span<const double> x) {
  MPROS_EXPECTS(x.size() == in_);
  std::copy(x.begin(), x.end(), last_x_.begin());
  for (std::size_t o = 0; o < out_; ++o) {
    double sum = b_[o];
    const double* row = &w_[o * in_];
    for (std::size_t i = 0; i < in_; ++i) sum += row[i] * x[i];
    pre_act_[o] = sum;
    out_buf_[o] = act_ == Activation::Tanh ? std::tanh(sum) : sum;
  }
  return out_buf_;
}

std::span<const double> DenseLayer::backward(std::span<const double> grad_out) {
  MPROS_EXPECTS(grad_out.size() == out_);
  std::fill(grad_in_.begin(), grad_in_.end(), 0.0);
  for (std::size_t o = 0; o < out_; ++o) {
    double g = grad_out[o];
    if (act_ == Activation::Tanh) {
      const double y = out_buf_[o];
      g *= (1.0 - y * y);
    }
    grad_b_[o] += g;
    double* grow = &grad_w_[o * in_];
    const double* wrow = &w_[o * in_];
    for (std::size_t i = 0; i < in_; ++i) {
      grow[i] += g * last_x_[i];
      grad_in_[i] += g * wrow[i];
    }
  }
  return grad_in_;
}

void DenseLayer::apply_gradients(double learning_rate, double momentum,
                                 std::size_t batch) {
  MPROS_EXPECTS(batch > 0);
  const double scale = learning_rate / static_cast<double>(batch);
  for (std::size_t i = 0; i < w_.size(); ++i) {
    vel_w_[i] = momentum * vel_w_[i] - scale * grad_w_[i];
    w_[i] += vel_w_[i];
    grad_w_[i] = 0.0;
  }
  for (std::size_t i = 0; i < b_.size(); ++i) {
    vel_b_[i] = momentum * vel_b_[i] - scale * grad_b_[i];
    b_[i] += vel_b_[i];
    grad_b_[i] = 0.0;
  }
}

std::size_t DenseLayer::parameter_count() const {
  return w_.size() + b_.size();
}

void DenseLayer::export_parameters(std::vector<double>& out) const {
  out.insert(out.end(), w_.begin(), w_.end());
  out.insert(out.end(), b_.begin(), b_.end());
}

void DenseLayer::import_parameters(std::span<const double> params,
                                   std::size_t& pos) {
  MPROS_EXPECTS(pos + parameter_count() <= params.size());
  std::copy_n(params.begin() + static_cast<std::ptrdiff_t>(pos), w_.size(),
              w_.begin());
  pos += w_.size();
  std::copy_n(params.begin() + static_cast<std::ptrdiff_t>(pos), b_.size(),
              b_.begin());
  pos += b_.size();
}

WaveletLayer::WaveletLayer(std::size_t in, std::size_t wavelons, Rng& rng)
    : in_(in), units_(wavelons) {
  MPROS_EXPECTS(in > 0 && wavelons > 0);
  const double scale = std::sqrt(1.0 / static_cast<double>(in));
  a_.resize(units_ * in_);
  for (double& v : a_) v = rng.normal(0.0, scale);
  t_.resize(units_);
  lambda_.resize(units_);
  for (std::size_t u = 0; u < units_; ++u) {
    // Spread translations across the expected projection range and start
    // with unit dilations so the wavelets tile the input space.
    t_[u] = rng.uniform(-1.0, 1.0);
    lambda_[u] = rng.uniform(0.5, 1.5);
  }
  grad_a_.assign(units_ * in_, 0.0);
  grad_t_.assign(units_, 0.0);
  grad_l_.assign(units_, 0.0);
  vel_a_.assign(units_ * in_, 0.0);
  vel_t_.assign(units_, 0.0);
  vel_l_.assign(units_, 0.0);
  last_x_.resize(in_);
  z_.resize(units_);
  out_buf_.resize(units_);
  grad_in_.resize(in_);
}

double WaveletLayer::psi(double z) {
  return (1.0 - z * z) * std::exp(-0.5 * z * z);
}

double WaveletLayer::dpsi(double z) {
  return (z * z * z - 3.0 * z) * std::exp(-0.5 * z * z);
}

std::span<const double> WaveletLayer::forward(std::span<const double> x) {
  MPROS_EXPECTS(x.size() == in_);
  std::copy(x.begin(), x.end(), last_x_.begin());
  for (std::size_t u = 0; u < units_; ++u) {
    double proj = 0.0;
    const double* row = &a_[u * in_];
    for (std::size_t i = 0; i < in_; ++i) proj += row[i] * x[i];
    z_[u] = (proj - t_[u]) / lambda_[u];
    out_buf_[u] = psi(z_[u]);
  }
  return out_buf_;
}

std::span<const double> WaveletLayer::backward(
    std::span<const double> grad_out) {
  MPROS_EXPECTS(grad_out.size() == units_);
  std::fill(grad_in_.begin(), grad_in_.end(), 0.0);
  for (std::size_t u = 0; u < units_; ++u) {
    const double g = grad_out[u];
    if (g == 0.0) continue;
    const double dz = dpsi(z_[u]);
    const double common = g * dz / lambda_[u];

    grad_t_[u] += -common;
    grad_l_[u] += -common * z_[u];
    double* grow = &grad_a_[u * in_];
    const double* arow = &a_[u * in_];
    for (std::size_t i = 0; i < in_; ++i) {
      grow[i] += common * last_x_[i];
      grad_in_[i] += common * arow[i];
    }
  }
  return grad_in_;
}

void WaveletLayer::apply_gradients(double learning_rate, double momentum,
                                   std::size_t batch) {
  MPROS_EXPECTS(batch > 0);
  const double scale = learning_rate / static_cast<double>(batch);
  for (std::size_t i = 0; i < a_.size(); ++i) {
    vel_a_[i] = momentum * vel_a_[i] - scale * grad_a_[i];
    a_[i] += vel_a_[i];
    grad_a_[i] = 0.0;
  }
  for (std::size_t u = 0; u < units_; ++u) {
    vel_t_[u] = momentum * vel_t_[u] - scale * grad_t_[u];
    t_[u] += vel_t_[u];
    grad_t_[u] = 0.0;

    vel_l_[u] = momentum * vel_l_[u] - scale * grad_l_[u];
    lambda_[u] = std::max(kMinDilation, lambda_[u] + vel_l_[u]);
    grad_l_[u] = 0.0;
  }
}

std::size_t WaveletLayer::parameter_count() const {
  return a_.size() + t_.size() + lambda_.size();
}

void WaveletLayer::export_parameters(std::vector<double>& out) const {
  out.insert(out.end(), a_.begin(), a_.end());
  out.insert(out.end(), t_.begin(), t_.end());
  out.insert(out.end(), lambda_.begin(), lambda_.end());
}

void WaveletLayer::import_parameters(std::span<const double> params,
                                     std::size_t& pos) {
  MPROS_EXPECTS(pos + parameter_count() <= params.size());
  const auto take = [&](std::vector<double>& dst) {
    std::copy_n(params.begin() + static_cast<std::ptrdiff_t>(pos), dst.size(),
                dst.begin());
    pos += dst.size();
  };
  take(a_);
  take(t_);
  take(lambda_);
  for (const double l : lambda_) MPROS_EXPECTS(l >= kMinDilation);
}

}  // namespace mpros::nn
