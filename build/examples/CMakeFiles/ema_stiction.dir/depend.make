# Empty dependencies file for ema_stiction.
# This may be replaced when dependencies are built.
