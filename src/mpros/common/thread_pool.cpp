#include "mpros/common/thread_pool.hpp"

#include "mpros/common/assert.hpp"

namespace mpros {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  wait_idle();
  tasks_.close();
  // jthread joins on destruction.
}

void ThreadPool::submit(std::function<void()> task) {
  MPROS_EXPECTS(task != nullptr);
  {
    std::lock_guard lock(idle_mu_);
    ++in_flight_;
  }
  const bool accepted = tasks_.push(std::move(task));
  MPROS_ASSERT(accepted);  // submit() after destruction is a bug
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(idle_mu_);
  idle_cv_.wait(lock, [&] { return in_flight_ == 0; });
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  for (std::size_t i = 0; i < n; ++i) {
    submit([&fn, i] { fn(i); });
  }
  wait_idle();
}

void ThreadPool::worker_loop() {
  while (auto task = tasks_.pop()) {
    (*task)();
    {
      std::lock_guard lock(idle_mu_);
      MPROS_ASSERT(in_flight_ > 0);
      --in_flight_;
    }
    idle_cv_.notify_all();
  }
}

}  // namespace mpros
