#pragma once
// The PDME browser: text rendering of the Fig 2 display.
//
// The paper's sample screen "indicates that for machine A/C Compressor
// Motor 1, six condition reports from four different knowledge sources have
// been received, some conflicting and some reinforcing. After these reports
// are processed by the Knowledge Fusion component, the predictions of
// failure for each machine condition group are shown at the bottom of the
// screen." render_machine() produces exactly that layout as text; the
// ICAS export (§1) serializes conditions for other shipboard systems.

#include <string>

#include "mpros/pdme/pdme.hpp"

namespace mpros::pdme {

/// Fig 2 equivalent for one machine: received reports on top, fused
/// condition-group beliefs and failure predictions below.
[[nodiscard]] std::string render_machine(const PdmeExecutive& pdme,
                                         const oosm::ObjectModel& model,
                                         ObjectId machine);

/// Fleet-level summary: the prioritized maintenance list.
[[nodiscard]] std::string render_summary(const PdmeExecutive& pdme,
                                         const oosm::ObjectModel& model,
                                         std::size_t max_items = 20);

/// ICAS-facing export (§1: "open interfaces to provide machinery condition
/// ... to other shipboard systems such as ICAS"): one CSV row per
/// prioritized item, header included.
[[nodiscard]] std::string export_icas_csv(const PdmeExecutive& pdme,
                                          const oosm::ObjectModel& model);

}  // namespace mpros::pdme
