#include "mpros/nn/network.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "mpros/common/assert.hpp"

namespace mpros::nn {

std::vector<double> softmax(std::span<const double> logits) {
  MPROS_EXPECTS(!logits.empty());
  const double max_logit = *std::max_element(logits.begin(), logits.end());
  std::vector<double> p(logits.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    p[i] = std::exp(logits[i] - max_logit);
    sum += p[i];
  }
  for (double& v : p) v /= sum;
  return p;
}

Network& Network::add_dense(std::size_t in, std::size_t out, Activation act,
                            Rng& rng) {
  if (!layers_.empty()) MPROS_EXPECTS(layers_.back()->output_size() == in);
  layers_.push_back(std::make_unique<DenseLayer>(in, out, act, rng));
  return *this;
}

Network& Network::add_wavelet(std::size_t in, std::size_t wavelons, Rng& rng) {
  if (!layers_.empty()) MPROS_EXPECTS(layers_.back()->output_size() == in);
  layers_.push_back(std::make_unique<WaveletLayer>(in, wavelons, rng));
  return *this;
}

std::size_t Network::input_size() const {
  MPROS_EXPECTS(!layers_.empty());
  return layers_.front()->input_size();
}

std::size_t Network::output_size() const {
  MPROS_EXPECTS(!layers_.empty());
  return layers_.back()->output_size();
}

std::vector<double> Network::forward_raw(std::span<const double> x) {
  MPROS_EXPECTS(!layers_.empty());
  std::span<const double> cur = x;
  for (auto& layer : layers_) cur = layer->forward(cur);
  return std::vector<double>(cur.begin(), cur.end());
}

std::vector<double> Network::predict(std::span<const double> x) {
  const std::vector<double> std_x = standardize(x);
  return softmax(forward_raw(std_x));
}

std::size_t Network::classify(std::span<const double> x) {
  const std::vector<double> p = predict(x);
  return static_cast<std::size_t>(
      std::max_element(p.begin(), p.end()) - p.begin());
}

void Network::fit_standardizer(std::span<const Example> examples) {
  const std::size_t dim = examples.front().features.size();
  feat_mean_.assign(dim, 0.0);
  feat_scale_.assign(dim, 1.0);
  for (const Example& e : examples) {
    MPROS_EXPECTS(e.features.size() == dim);
    for (std::size_t i = 0; i < dim; ++i) feat_mean_[i] += e.features[i];
  }
  for (double& m : feat_mean_) m /= static_cast<double>(examples.size());

  std::vector<double> var(dim, 0.0);
  for (const Example& e : examples) {
    for (std::size_t i = 0; i < dim; ++i) {
      const double d = e.features[i] - feat_mean_[i];
      var[i] += d * d;
    }
  }
  for (std::size_t i = 0; i < dim; ++i) {
    const double sd = std::sqrt(var[i] / static_cast<double>(examples.size()));
    feat_scale_[i] = sd > 1e-9 ? 1.0 / sd : 1.0;
  }
}

std::vector<double> Network::standardize(std::span<const double> x) const {
  if (feat_mean_.empty()) return std::vector<double>(x.begin(), x.end());
  MPROS_EXPECTS(x.size() == feat_mean_.size());
  std::vector<double> out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    out[i] = (x[i] - feat_mean_[i]) * feat_scale_[i];
  }
  return out;
}

TrainStats Network::train(std::span<const Example> examples,
                          const TrainConfig& cfg, Rng& rng) {
  MPROS_EXPECTS(!examples.empty());
  MPROS_EXPECTS(!layers_.empty());
  fit_standardizer(examples);

  std::vector<std::size_t> order(examples.size());
  std::iota(order.begin(), order.end(), 0);

  TrainStats stats;
  for (std::size_t epoch = 0; epoch < cfg.epochs; ++epoch) {
    std::shuffle(order.begin(), order.end(), rng.engine());
    double loss_sum = 0.0;
    std::size_t in_batch = 0;

    for (std::size_t n = 0; n < order.size(); ++n) {
      const Example& e = examples[order[n]];
      const std::vector<double> x = standardize(e.features);
      const std::vector<double> logits = forward_raw(x);
      const std::vector<double> p = softmax(logits);
      MPROS_EXPECTS(e.label < p.size());
      loss_sum += -std::log(std::max(1e-12, p[e.label]));

      // d(cross-entropy)/d(logit) = p - onehot.
      std::vector<double> grad(p);
      grad[e.label] -= 1.0;
      std::span<const double> g = grad;
      for (std::size_t li = layers_.size(); li-- > 0;) {
        g = layers_[li]->backward(g);
      }

      if (++in_batch == cfg.batch_size || n + 1 == order.size()) {
        for (auto& layer : layers_) {
          layer->apply_gradients(cfg.learning_rate, cfg.momentum, in_batch);
        }
        in_batch = 0;
      }
    }

    stats.epochs_run = epoch + 1;
    stats.final_loss = loss_sum / static_cast<double>(examples.size());
    if (stats.final_loss < cfg.target_loss) break;
  }
  stats.final_accuracy = accuracy(examples);
  return stats;
}

std::size_t Network::weight_count() const {
  std::size_t count = 0;
  for (const auto& layer : layers_) count += layer->parameter_count();
  // Standardizer mean+scale, prefixed by the feature dimension.
  return count + 1 + 2 * feat_mean_.size();
}

std::vector<double> Network::export_weights() const {
  std::vector<double> out;
  out.reserve(weight_count());
  out.push_back(static_cast<double>(feat_mean_.size()));
  out.insert(out.end(), feat_mean_.begin(), feat_mean_.end());
  out.insert(out.end(), feat_scale_.begin(), feat_scale_.end());
  for (const auto& layer : layers_) layer->export_parameters(out);
  return out;
}

void Network::import_weights(std::span<const double> weights) {
  MPROS_EXPECTS(!weights.empty());
  const auto dim = static_cast<std::size_t>(weights[0]);
  std::size_t pos = 1;
  MPROS_EXPECTS(weights.size() >= 1 + 2 * dim);
  feat_mean_.assign(weights.begin() + static_cast<std::ptrdiff_t>(pos),
                    weights.begin() + static_cast<std::ptrdiff_t>(pos + dim));
  pos += dim;
  feat_scale_.assign(
      weights.begin() + static_cast<std::ptrdiff_t>(pos),
      weights.begin() + static_cast<std::ptrdiff_t>(pos + dim));
  pos += dim;
  for (const auto& layer : layers_) layer->import_parameters(weights, pos);
  MPROS_EXPECTS(pos == weights.size());
}

double Network::accuracy(std::span<const Example> examples) {
  if (examples.empty()) return 0.0;
  std::size_t correct = 0;
  for (const Example& e : examples) {
    if (classify(e.features) == e.label) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(examples.size());
}

}  // namespace mpros::nn
