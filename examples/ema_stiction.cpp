// Fig 3 reproduction: the EMA spike/stiction state-machine pair.
//
// Generates a drive-motor current trace with developing stiction (plus
// healthy commanded moves), runs the paper's two SBFR machines over it, and
// reports when the seize-up prediction latches — including the byte sizes
// the paper quotes for the embedded images.
//
//   ./build/examples/ema_stiction [stiction_level]

#include <cstdio>
#include <cstdlib>

#include "mpros/mpros/mpros.hpp"

int main(int argc, char** argv) {
  using namespace mpros;

  double stiction_level = 1.0;
  if (argc > 1) stiction_level = std::atof(argv[1]);

  const sbfr::MachineDef spike = sbfr::make_spike_machine();
  const sbfr::MachineDef stiction = sbfr::make_stiction_machine();
  std::printf("SBFR machine images (paper: spike 229 B, stiction 93 B, "
              "interpreter ~2 KB):\n");
  std::printf("  current-spike machine : %4zu bytes\n", spike.image_size());
  std::printf("  ema-stiction machine  : %4zu bytes\n",
              stiction.image_size());

  sbfr::SbfrSystem sys(/*input_channels=*/2);
  sys.add_machine(spike);
  sys.add_machine(stiction);
  std::printf("  runtime footprint     : %4zu bytes for %zu machines\n\n",
              sys.memory_footprint(), sys.machine_count());

  std::printf("Disassembly of the downloaded images (engineer's view):\n%s\n%s\n",
              sbfr::disassemble(spike).c_str(),
              sbfr::disassemble(stiction).c_str());

  plant::EmaSimulator ema;
  const auto trace = ema.generate(40000, stiction_level);
  std::printf("EMA trace: %zu samples, stiction level %.2f, "
              "%zu true stiction spikes injected\n",
              trace.size(), stiction_level, ema.injected_spikes());

  std::size_t detected_at = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const double inputs[2] = {trace[i].current, trace[i].cpos};
    sys.step(inputs);
    if (sys.status(1) != 0.0 && detected_at == 0) {
      detected_at = i;
      break;
    }
  }

  if (detected_at > 0) {
    std::printf("STICTION flagged at sample %zu (count=%g spikes without "
                "commanded position change)\n",
                detected_at, sys.local(1, 0));
    std::printf("=> higher-level software (PDME) concludes: EMA seize-up "
                "imminent.\n");
  } else {
    std::printf("No stiction detected (spike count reached %g).\n",
                sys.local(1, 0));
  }
  return 0;
}
