# Empty dependencies file for mpros_sim.
# This may be replaced when dependencies are built.
