// Steady-state allocation audit for the batched ingest path (E21
// acceptance, mirroring dsp_alloc_test for ISSUE 2).
//
// Overrides the global allocation functions with a counting hook, warms the
// decode arena, the Dempster-Shafer focal vector and the prognostic fuse
// scratch, then asserts that a further pass through each hot-path entry
// point performs zero heap allocations:
//
//  - try_unwrap_reports_into: a full ReportBatch datagram (strings and
//    prognostics on every report) decoded into a warm arena;
//  - MassFunction::combine_simple_support: report-rate evidence folding;
//  - PrognosticVector::fuse_in_place: report-rate curve fusion.
//
// Lives in its own binary so the hook cannot distort the other suites.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "mpros/fusion/dempster_shafer.hpp"
#include "mpros/fusion/prognostic_fusion.hpp"
#include "mpros/net/messages.hpp"
#include "mpros/net/report.hpp"

namespace {

std::atomic<std::uint64_t> g_allocations{0};

}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace mpros {
namespace {

std::vector<net::FailureReport> batch_reports(std::size_t n) {
  std::vector<net::FailureReport> reports;
  reports.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    net::FailureReport r;
    r.dc = DcId(7);
    r.knowledge_source = KnowledgeSourceId(1 + i % 3);
    r.sensed_object = ObjectId(100 + i);
    r.machine_condition = ConditionId(5 + i % 4);
    r.severity = 0.4 + 0.01 * static_cast<double>(i % 20);
    r.belief = 0.85;
    r.explanation = "1x running-speed amplitude elevated beyond baseline";
    r.recommendations = "Field balance the rotor at next availability.";
    r.additional_info = "load=0.8;speed=1780rpm";
    r.timestamp = SimTime::from_seconds(10.0 * static_cast<double>(i + 1));
    r.prognostics = {{0.1, 86400.0}, {0.5, 604800.0}, {0.9, 2592000.0}};
    reports.push_back(std::move(r));
  }
  return reports;
}

TEST(IngestAllocationTest, SteadyStateArenaDecodeIsAllocationFree) {
  const auto reports = batch_reports(64);
  const auto wire = net::wrap_batch_envelope(DcId(7), 3, reports);

  std::vector<net::ReportEnvelope> arena;
  const auto decode_once = [&] {
    const auto view = net::try_unwrap_reports_into(wire, arena);
    ASSERT_TRUE(view.has_value());
    ASSERT_EQ(view->count, reports.size());
  };

  // Two warm-up passes: the first sizes the arena, the second lets every
  // element's strings and prognostics reach their final capacity.
  decode_once();
  decode_once();

  const std::uint64_t before = g_allocations.load();
  decode_once();
  const std::uint64_t after = g_allocations.load();
  EXPECT_EQ(after - before, 0u)
      << "warm batch decode allocated " << (after - before) << " time(s)";
}

TEST(IngestAllocationTest, SteadyStateDempsterFoldIsAllocationFree) {
  const fusion::FrameOfDiscernment frame({"imbalance", "misalign", "bearing"});
  fusion::MassFunction mass = fusion::MassFunction::vacuous(frame);

  const auto fold_round = [&] {
    for (std::size_t i = 0; i < frame.size(); ++i) {
      mass.combine_simple_support(frame.singleton(i),
                                  0.3 + 0.1 * static_cast<double>(i));
    }
  };

  fold_round();  // grows the focal vector to its steady-state support set
  const std::uint64_t before = g_allocations.load();
  for (int round = 0; round < 100; ++round) fold_round();
  const std::uint64_t after = g_allocations.load();
  EXPECT_EQ(after - before, 0u)
      << "warm evidence fold allocated " << (after - before) << " time(s)";
}

TEST(IngestAllocationTest, SteadyStatePrognosticFuseIsAllocationFree) {
  const std::vector<fusion::PrognosticPoint> report_points = {
      {SimTime::from_seconds(86400.0), 0.1},
      {SimTime::from_seconds(604800.0), 0.5},
      {SimTime::from_seconds(2592000.0), 0.9},
  };
  fusion::PrognosticVector curve;
  fusion::FuseScratch scratch;

  curve.fuse_in_place(report_points, scratch);  // warm scratch + curve
  curve.fuse_in_place(report_points, scratch);

  const std::uint64_t before = g_allocations.load();
  for (int round = 0; round < 100; ++round) {
    curve.fuse_in_place(report_points, scratch);
  }
  const std::uint64_t after = g_allocations.load();
  EXPECT_EQ(after - before, 0u)
      << "warm prognostic fuse allocated " << (after - before) << " time(s)";
}

}  // namespace
}  // namespace mpros
