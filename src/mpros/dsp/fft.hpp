#pragma once
// Radix-2 FFT.
//
// The DC's "Crystal Instruments PCMCIA spectrum analyzer" (paper Fig 5) is
// modelled in software on top of this transform. FftPlan precomputes twiddle
// factors and the bit-reversal permutation for a fixed power-of-two size so
// the steady-state acquisition loop does no allocation.

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

namespace mpros::dsp {

using Complex = std::complex<double>;

[[nodiscard]] constexpr bool is_power_of_two(std::size_t n) {
  return n != 0 && (n & (n - 1)) == 0;
}

/// Smallest power of two >= n.
[[nodiscard]] std::size_t next_power_of_two(std::size_t n);

/// Precomputed in-place FFT for one size.
class FftPlan {
 public:
  /// `n` must be a power of two >= 2.
  explicit FftPlan(std::size_t n);

  [[nodiscard]] std::size_t size() const { return n_; }

  /// In-place forward DFT: x[k] = sum_j x[j] exp(-2*pi*i*j*k/n).
  void forward(std::span<Complex> x) const;

  /// In-place inverse DFT (includes the 1/n normalization).
  void inverse(std::span<Complex> x) const;

 private:
  void transform(std::span<Complex> x, bool invert) const;

  std::size_t n_;
  std::vector<std::size_t> bit_reverse_;
  std::vector<Complex> twiddle_;          // forward twiddles, n/2 entries
};

/// One-shot forward FFT of a real signal. Returns the full complex spectrum
/// of length n (power of two; input is zero-padded if shorter).
[[nodiscard]] std::vector<Complex> fft_real(std::span<const double> x,
                                            std::size_t n = 0);

/// One-shot inverse of a full complex spectrum back to a complex signal.
[[nodiscard]] std::vector<Complex> ifft(std::span<const Complex> spectrum);

}  // namespace mpros::dsp
