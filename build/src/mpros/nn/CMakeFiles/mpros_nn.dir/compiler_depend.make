# Empty compiler generated dependencies file for mpros_nn.
# This may be replaced when dependencies are built.
