#pragma once
// Neural layers: dense (tanh/linear) and wavelon.
//
// The Wavelet Neural Network (paper §6.2) "belongs to a new class of neural
// networks with such unique capabilities as multi-resolution and
// localization". Its hidden units ("wavelons", after Zhang & Benveniste
// 1992) compute psi((a.x - t)/lambda) with a Mexican-hat mother wavelet and
// learn translation t and dilation lambda along with the projection a.

#include <cstddef>
#include <span>
#include <vector>

#include "mpros/common/rng.hpp"

namespace mpros::nn {

/// Interface of a trainable layer. Layers cache their last forward input;
/// backward() must follow a forward() on the same example.
class Layer {
 public:
  virtual ~Layer() = default;

  [[nodiscard]] virtual std::size_t input_size() const = 0;
  [[nodiscard]] virtual std::size_t output_size() const = 0;

  /// Forward pass; returns activations (valid until the next forward()).
  virtual std::span<const double> forward(std::span<const double> x) = 0;

  /// Backward pass: consume dL/d(output), accumulate parameter gradients,
  /// return dL/d(input).
  virtual std::span<const double> backward(std::span<const double> grad_out) = 0;

  /// Apply accumulated gradients (scaled by 1/batch) with momentum; clears
  /// the accumulators.
  virtual void apply_gradients(double learning_rate, double momentum,
                               std::size_t batch) = 0;

  /// Number of trainable parameters.
  [[nodiscard]] virtual std::size_t parameter_count() const = 0;
  /// Append all parameters to `out` in a stable order.
  virtual void export_parameters(std::vector<double>& out) const = 0;
  /// Read parameter_count() values starting at params[pos]; advances pos.
  virtual void import_parameters(std::span<const double> params,
                                 std::size_t& pos) = 0;
};

enum class Activation { Linear, Tanh };

class DenseLayer final : public Layer {
 public:
  DenseLayer(std::size_t in, std::size_t out, Activation act, Rng& rng);

  [[nodiscard]] std::size_t input_size() const override { return in_; }
  [[nodiscard]] std::size_t output_size() const override { return out_; }

  std::span<const double> forward(std::span<const double> x) override;
  std::span<const double> backward(std::span<const double> grad_out) override;
  void apply_gradients(double learning_rate, double momentum,
                       std::size_t batch) override;
  [[nodiscard]] std::size_t parameter_count() const override;
  void export_parameters(std::vector<double>& out) const override;
  void import_parameters(std::span<const double> params,
                         std::size_t& pos) override;

 private:
  std::size_t in_, out_;
  Activation act_;
  std::vector<double> w_;       // out x in, row-major
  std::vector<double> b_;       // out
  std::vector<double> grad_w_, grad_b_, vel_w_, vel_b_;
  std::vector<double> last_x_, pre_act_, out_buf_, grad_in_;
};

class WaveletLayer final : public Layer {
 public:
  WaveletLayer(std::size_t in, std::size_t wavelons, Rng& rng);

  [[nodiscard]] std::size_t input_size() const override { return in_; }
  [[nodiscard]] std::size_t output_size() const override { return units_; }

  std::span<const double> forward(std::span<const double> x) override;
  std::span<const double> backward(std::span<const double> grad_out) override;
  void apply_gradients(double learning_rate, double momentum,
                       std::size_t batch) override;
  [[nodiscard]] std::size_t parameter_count() const override;
  void export_parameters(std::vector<double>& out) const override;
  void import_parameters(std::span<const double> params,
                         std::size_t& pos) override;

  /// Mexican-hat mother wavelet and its derivative.
  static double psi(double z);
  static double dpsi(double z);

 private:
  std::size_t in_, units_;
  std::vector<double> a_;       // units x in projection weights
  std::vector<double> t_;       // translations
  std::vector<double> lambda_;  // dilations (kept >= kMinDilation)
  std::vector<double> grad_a_, grad_t_, grad_l_, vel_a_, vel_t_, vel_l_;
  std::vector<double> last_x_, z_, out_buf_, grad_in_;

  static constexpr double kMinDilation = 0.05;
};

}  // namespace mpros::nn
