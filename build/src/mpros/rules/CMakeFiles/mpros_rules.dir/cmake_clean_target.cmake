file(REMOVE_RECURSE
  "libmpros_rules.a"
)
