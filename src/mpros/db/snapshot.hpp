#pragma once
// Point-in-time snapshot of a whole Database, for WAL compaction.
//
// A checkpoint writes the full store (schemas, auto-key counters, index
// definitions, rows) plus the WAL sequence it covers; recovery loads the
// snapshot and replays only the WAL tail past that sequence. The encoding
// is deterministic (tables sorted by name, rows in key order), so two
// databases with identical content produce identical snapshot bytes — the
// crash-equivalence tests compare states exactly this way.
//
// Layout ("MDBS", the recorder's versioned dump idiom, little-endian):
//
//   "MDBS" u8 version | u64 wal_seq | u32 table_count | table*
//   table := schema | i64 next_key | u32 index_count | index_column_name*
//            | u64 row_count | row*
//
// Decoding is fail-soft TryReader style: any malformation (truncation, bad
// counts, schema violations, duplicate keys, trailing garbage) yields
// nullopt rather than touching the aborting Table contracts.

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "mpros/db/database.hpp"

namespace mpros::db {

inline constexpr std::uint8_t kSnapshotVersion = 1;

/// Deterministic full-store encoding, stamped with the WAL sequence the
/// snapshot covers (replay resumes after it).
[[nodiscard]] std::vector<std::uint8_t> encode_snapshot(const Database& db,
                                                        std::uint64_t wal_seq);

struct DecodedSnapshot {
  Database db;
  std::uint64_t wal_seq = 0;
};

[[nodiscard]] std::optional<DecodedSnapshot> decode_snapshot(
    std::span<const std::uint8_t> bytes);

/// Atomically persist a snapshot: write to `path + ".tmp"`, fsync, rename
/// over `path`. A crash mid-write leaves the previous snapshot intact.
[[nodiscard]] bool write_snapshot(const Database& db, std::uint64_t wal_seq,
                                  const std::string& path);

/// Load `path` into a DecodedSnapshot; nullopt when the file is missing or
/// malformed (recovery then falls back to replaying the whole WAL).
[[nodiscard]] std::optional<DecodedSnapshot> load_snapshot(
    const std::string& path);

}  // namespace mpros::db
