#pragma once
// Vibration and motor-current waveform synthesis.
//
// Substitutes for the paper's shipboard accelerometer data: each failure
// mode contributes its textbook spectral signature, scaled by severity, on
// top of a healthy baseline. The DLI rulebase's warn/alarm levels
// (rules/dli_rules.cpp) are calibrated against these baselines:
//
//   baseline 1x 0.05 g, 2x 0.02 g, gear mesh 0.03 g, vane pass 0.02 g,
//   broadband noise sigma 0.02 g.
//
//   MotorImbalance          1x -> 0.05 + 0.45 s
//   ShaftMisalignment       2x -> 0.02 + 0.32 s, 3x -> 0.14 s
//   BearingHousingLooseness 0.5x/1.5x/2.5x subharmonics + raised 1x..6x
//   Motor/CompressorBearing impulse train at BPFO/BSF exciting a 4.2 kHz
//                           resonance (envelope tones, crest, kurtosis)
//   GearMeshWear            mesh tone + 1x-shaft sidebands
//   PumpCavitation          broadband high-frequency noise + vane pass
//   RotorBarDefect          (current) pole-pass sidebands around 60 Hz
//   StatorWindingFault      (vibration) 2x line tone; (current) elevated rms
//
// Sensor-point attenuation: each fault originates at a machine point; other
// points see it attenuated, like a real machinery train.

#include <array>
#include <span>
#include <vector>

#include "mpros/common/rng.hpp"
#include "mpros/domain/equipment.hpp"
#include "mpros/domain/failure_modes.hpp"

namespace mpros::plant {

/// Accelerometer mounting points on the drive line.
enum class MachinePoint : std::uint8_t { Motor = 0, Gearbox, Compressor };
inline constexpr std::size_t kMachinePointCount = 3;

[[nodiscard]] const char* to_string(MachinePoint p);

using Severities = std::array<double, domain::kFailureModeCount>;

/// Transitory-fault gating: fault signatures appear only in bursts covering
/// `duty` of each `period_s` window (1.0 = steady-state). Models the
/// intermittent phenomena the paper says the WNN exists for ("drawing
/// conclusions from transitory phenomena rather than steady state data",
/// §1.1/§6.2) — e.g. load-dependent rubs, passing defects, chatter.
struct TransientProfile {
  double duty = 1.0;
  double period_s = 0.05;
};

class VibrationSynthesizer {
 public:
  VibrationSynthesizer(domain::MachineSignature signature, std::uint64_t seed);

  /// Synthesize `out.size()` acceleration samples (in g) at `sample_rate_hz`
  /// for the accelerometer at `point`, starting at absolute phase time
  /// `t0_seconds` (keeps tones phase-continuous across acquisitions).
  void acceleration(MachinePoint point, const Severities& severities,
                    double load_fraction, double t0_seconds,
                    double sample_rate_hz, std::span<double> out,
                    const TransientProfile& transient = TransientProfile{});

  /// Synthesize motor supply current samples (in A).
  void motor_current(const Severities& severities, double load_fraction,
                     double t0_seconds, double sample_rate_hz,
                     std::span<double> out);

  [[nodiscard]] const domain::MachineSignature& signature() const {
    return signature_;
  }

 private:
  domain::MachineSignature signature_;
  Rng rng_;
};

}  // namespace mpros::plant
