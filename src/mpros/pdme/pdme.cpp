#include "mpros/pdme/pdme.hpp"

#include <algorithm>
#include <bit>
#include <charconv>
#include <cstdio>
#include <cstring>
#include <string_view>

#include "mpros/common/assert.hpp"
#include "mpros/common/log.hpp"
#include "mpros/pdme/shard_executor.hpp"
#include "mpros/telemetry/metrics.hpp"
#include "mpros/telemetry/trace.hpp"

namespace mpros::pdme {

using domain::FailureMode;

namespace {

/// Driver-thread metrics (the fusion-path counters live in fusion_core.cpp;
/// the Registry dedups by name so both resolve to the same instances).
struct PdmeMetrics {
  telemetry::Counter& duplicates_dropped;
  telemetry::Counter& malformed_dropped;
  telemetry::Counter& gaps_detected;
  telemetry::Counter& heartbeats_received;
  telemetry::Counter& queue_full;
  telemetry::Histogram& report_pipeline_latency_us;

  static PdmeMetrics& instance() {
    static auto& reg = telemetry::Registry::instance();
    static PdmeMetrics m{reg.counter("pdme.duplicates_dropped"),
                         reg.counter("pdme.malformed_dropped"),
                         reg.counter("pdme.gaps_detected"),
                         reg.counter("pdme.heartbeats_received"),
                         reg.counter("pdme.queue_full"),
                         reg.histogram("pdme.report_pipeline_latency_us")};
    return m;
  }
};

/// Fixed-width hex of the raw IEEE-754 bits: exact round-trip with no
/// digit-generation arithmetic at all. Report posting is the ingest hot
/// path and this string is an opaque codec blob, read back only by
/// decode_prognostics below.
char* write_bits_hex(char* p, double v) {
  static constexpr char kHex[] = "0123456789abcdef";
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(v);
  for (int shift = 60; shift >= 0; shift -= 4) {
    *p++ = kHex[(bits >> shift) & 0xF];
  }
  return p;
}

std::string encode_prognostics(const std::vector<net::PrognosticPair>& v) {
  // One token per pair: "x<prob bits>:<time bits>;", 36 chars exactly.
  std::string out;
  out.reserve(v.size() * 36);
  char buf[40];
  for (const net::PrognosticPair& p : v) {
    char* w = buf;
    *w++ = 'x';
    w = write_bits_hex(w, p.probability);
    *w++ = ':';
    w = write_bits_hex(w, p.time_seconds);
    *w++ = ';';
    out.append(buf, w);
  }
  return out;
}

std::vector<net::PrognosticPair> decode_prognostics(const std::string& s) {
  std::vector<net::PrognosticPair> out;
  std::string_view rest(s);
  std::string token;
  while (!rest.empty()) {
    const std::size_t semi = rest.find(';');
    const std::string_view tok = rest.substr(0, semi);
    rest = semi == std::string_view::npos ? std::string_view{}
                                          : rest.substr(semi + 1);
    if (tok.empty()) continue;
    net::PrognosticPair p;
    if (tok.size() == 34 && tok.front() == 'x' && tok[17] == ':') {
      // Current bit-hex form.
      std::uint64_t pb = 0;
      std::uint64_t tb = 0;
      const char* const base = tok.data();
      auto res = std::from_chars(base + 1, base + 17, pb, 16);
      if (res.ec != std::errc{} || res.ptr != base + 17) continue;
      res = std::from_chars(base + 18, base + 34, tb, 16);
      if (res.ec != std::errc{} || res.ptr != base + 34) continue;
      p.probability = std::bit_cast<double>(pb);
      p.time_seconds = std::bit_cast<double>(tb);
      out.push_back(p);
    } else if (tok.find('p') != std::string_view::npos) {
      // Hex-float interlude format ("1.91a2bp+4:1.5cp+20"): always carries
      // a 'p' exponent, which decimal encodings never do.
      const char* first = tok.data();
      const char* last = tok.data() + tok.size();
      auto res = std::from_chars(first, last, p.probability,
                                 std::chars_format::hex);
      if (res.ec != std::errc{} || res.ptr == last || *res.ptr != ':') {
        continue;
      }
      res = std::from_chars(res.ptr + 1, last, p.time_seconds,
                            std::chars_format::hex);
      if (res.ec != std::errc{}) continue;
      out.push_back(p);
    } else {
      // Decimal encodings from databases persisted before the hex codecs.
      token.assign(tok);
      if (std::sscanf(token.c_str(), "%lg:%lg", &p.probability,
                      &p.time_seconds) == 2) {
        out.push_back(p);
      }
    }
  }
  return out;
}

}  // namespace

const char* to_string(DcLiveness liveness) {
  switch (liveness) {
    case DcLiveness::Alive: return "Alive";
    case DcLiveness::Stale: return "Stale";
    case DcLiveness::Lost: return "Lost";
  }
  return "?";
}

PdmeExecutive::PdmeExecutive(oosm::ObjectModel& model, PdmeConfig cfg)
    : model_(model), cfg_(cfg) {
  if (cfg_.shard_count >= 1) {
    shards_ = std::make_unique<ShardExecutor>(cfg_, retest_enabled_);
  } else {
    inline_core_ = std::make_unique<FusionCore>(cfg_);
  }
  subscription_ = model_.subscribe(
      [this](const oosm::OosmEvent& event) { on_oosm_event(event); });
}

PdmeExecutive::~PdmeExecutive() { model_.unsubscribe(subscription_); }

std::size_t PdmeExecutive::shard_count() const {
  return shards_ ? cfg_.shard_count : 0;
}

template <typename F>
void PdmeExecutive::visit_cores(F&& f) const {
  if (shards_) {
    shards_->for_each_core(std::forward<F>(f));
  } else {
    f(static_cast<const FusionCore&>(*inline_core_));
  }
}

std::optional<ObjectId> PdmeExecutive::accept(
    const net::FailureReport& report) {
  net::ReportEnvelope env;
  env.dc = report.dc;
  env.sequence = 0;  // unsequenced: no reliable-stream bookkeeping
  env.report = report;
  return submit({&env, 1}).last_object;
}

PdmeExecutive::SubmitOutcome PdmeExecutive::submit(
    std::span<const net::ReportEnvelope> reports) {
  SubmitOutcome out;
  PdmeMetrics& metrics = PdmeMetrics::instance();
  std::size_t i = 0;
  while (i < reports.size()) {
    const net::ReportEnvelope& head = reports[i];
    std::size_t j = i + 1;
    if (head.sequence != 0) {
      // One sequenced datagram = the run sharing its (dc, sequence).
      while (j < reports.size() &&
             reports[j].dc.value() == head.dc.value() &&
             reports[j].sequence == head.sequence) {
        ++j;
      }
    } else {
      // Unsequenced reports have no stream state to commit; ingest the
      // whole contiguous stretch as one span.
      while (j < reports.size() && reports[j].sequence == 0) ++j;
    }
    const std::span<const net::ReportEnvelope> run =
        reports.subspan(i, j - i);
    if (head.sequence != 0 &&
        receiver_.is_duplicate(head.dc, head.sequence)) {
      // A retransmitted sequenced datagram: every report it carried was
      // already fused the first time, so the whole run drops.
      stats_.duplicates_dropped += run.size();
      metrics.duplicates_dropped.inc(run.size());
      ++stats_.duplicate_envelopes;
      out.duplicates += run.size();
    } else {
      const auto posted = ingest(run, /*needs_post=*/true);
      if (posted.has_value()) out.last_object = posted;
      out.accepted += run.size();
      if (head.sequence != 0) {
        // Commit stream state only after the run reached the pipeline: an
        // acked sequence whose reports never reached a shard would be
        // unrecoverable (the DC retires it on our ack).
        const net::ReliableReceiver::Outcome outcome =
            receiver_.on_envelope(head.dc, head.sequence);
        stats_.gaps_detected += outcome.new_gaps;
        if (outcome.new_gaps > 0) {
          metrics.gaps_detected.inc(outcome.new_gaps);
        }
        ++stats_.envelopes_accepted;
      }
    }
    i = j;
  }
  return out;
}

std::optional<ObjectId> PdmeExecutive::ingest(
    std::span<const net::ReportEnvelope> run, bool needs_post) {
  if (shards_) {
    const std::uint64_t base_order = order_counter_ + 1;
    order_counter_ += run.size();
    const auto result = shards_->submit_span(run, base_order, needs_post);
    if (result.overflow_reports > 0) {
      stats_.queue_full += result.overflow_reports;
      PdmeMetrics::instance().queue_full.inc(result.overflow_reports);
    }
    return std::nullopt;  // objects are posted at synchronize()
  }
  std::optional<ObjectId> last;
  for (const net::ReportEnvelope& env : run) {
    const net::FailureReport& r = env.report;
    if (needs_post) {
      if (cfg_.deduplicate &&
          !inline_core_->mark_seen(report_signature(r))) {
        inline_core_->count_duplicate();
        continue;
      }
      last = post_report_object(r);
    }
    fuse_local(r);
  }
  return last;
}

ObjectId PdmeExecutive::post_report_object(const net::FailureReport& r) {
  // We fuse the in-hand report directly (inline: right after this call;
  // sharded: the worker already did) — the OOSM event path exists for
  // third-party posters, so hold the re-entrancy guard across the whole
  // post, completion marker included.
  posting_ = true;
  oosm::PropertyMap props;
  // 11 initial properties plus room for the "posted" marker set_property()
  // inserts below — sized so the marker never triggers a reallocation.
  props.reserve(12);
  // append() requires ascending key order — this list is ASCII-sorted.
  props.append("belief", r.belief);
  props.append("condition",
               static_cast<std::int64_t>(r.machine_condition.value()));
  props.append("dc", static_cast<std::int64_t>(r.dc.value()));
  props.append("explanation", r.explanation);
  props.append("ks", static_cast<std::int64_t>(r.knowledge_source.value()));
  props.append("prognostics", encode_prognostics(r.prognostics));
  props.append("recommendations", r.recommendations);
  props.append("sensed", static_cast<std::int64_t>(r.sensed_object.value()));
  props.append("severity", r.severity);
  props.append("timestamp_us", r.timestamp.micros());
  if (r.trace != 0) {
    props.append("trace", static_cast<std::int64_t>(r.trace));
  }
  char name[64];
  char* w = name;
  std::memcpy(w, "Report ", 7);
  w += 7;
  w = std::to_chars(w, name + 32, r.machine_condition.value()).ptr;
  std::memcpy(w, " on ", 4);
  w += 4;
  w = std::to_chars(w, name + 60, r.sensed_object.value()).ptr;
  const ObjectId obj = model_.create_object_bulk(
      std::string(name, w), domain::EquipmentKind::Report, std::move(props));
  if (model_.exists(r.sensed_object)) {
    model_.relate(obj, oosm::Relation::RefersTo, r.sensed_object);
  }
  // The completion marker: fusion triggers off this property event, so
  // third parties posting report objects by hand use the same contract.
  model_.set_property(obj, "posted", std::int64_t{1});
  posting_ = false;
  return obj;
}

net::FailureReport PdmeExecutive::reconstruct_report(ObjectId object) const {
  // Reconstruct the report from OOSM properties (§4.5: fusion reacts to the
  // model, not to a private channel).
  const auto get_int = [&](const char* key) -> std::int64_t {
    const auto v = model_.property(object, key);
    MPROS_ASSERT(v.has_value());
    return v->as_integer();
  };
  const auto get_real = [&](const char* key) -> double {
    const auto v = model_.property(object, key);
    MPROS_ASSERT(v.has_value());
    return v->numeric();
  };
  const auto get_text = [&](const char* key) -> std::string {
    const auto v = model_.property(object, key);
    return v.has_value() && v->type() == db::ValueType::Text ? v->as_text()
                                                             : std::string();
  };

  net::FailureReport r;
  r.dc = DcId(static_cast<std::uint64_t>(get_int("dc")));
  r.knowledge_source =
      KnowledgeSourceId(static_cast<std::uint64_t>(get_int("ks")));
  r.sensed_object = ObjectId(static_cast<std::uint64_t>(get_int("sensed")));
  r.machine_condition =
      ConditionId(static_cast<std::uint64_t>(get_int("condition")));
  r.severity = get_real("severity");
  r.belief = get_real("belief");
  r.explanation = get_text("explanation");
  r.recommendations = get_text("recommendations");
  r.timestamp = SimTime(get_int("timestamp_us"));
  r.prognostics = decode_prognostics(get_text("prognostics"));
  // Reports posted by third parties predate tracing; default to untraced.
  const auto trace = model_.property(object, "trace");
  if (trace.has_value()) {
    r.trace = static_cast<std::uint64_t>(trace->as_integer());
  }
  return r;
}

void PdmeExecutive::on_oosm_event(const oosm::OosmEvent& event) {
  if (posting_) return;  // our own posts fuse directly, not via the event
  if (event.kind != oosm::OosmEvent::Kind::PropertyChanged ||
      event.property != "posted") {
    return;
  }
  if (!model_.exists(event.object) ||
      model_.kind(event.object) != domain::EquipmentKind::Report) {
    return;
  }
  // Already in the model: fuse without dedup and without a second post.
  net::ReportEnvelope env;
  env.dc = DcId(0);
  env.sequence = 0;
  env.report = reconstruct_report(event.object);
  ingest({&env, 1}, /*needs_post=*/false);
}

void PdmeExecutive::fuse_local(const net::FailureReport& r) {
  inline_core_->fuse(r, ++order_counter_,
                     retest_enabled_.load(std::memory_order_relaxed));
  if (inline_core_->has_pending_retests()) {
    for (const PendingRetest& pending : inline_core_->take_pending_retests()) {
      send_retest(pending);
    }
  }
}

void PdmeExecutive::send_retest(const PendingRetest& p) {
  if (network_ == nullptr) return;
  const ModeKey key{p.machine.value(), p.mode};
  const auto last = last_retest_.find(key);
  if (last != last_retest_.end() && p.at - last->second < cfg_.retest_backoff) {
    return;
  }
  last_retest_[key] = p.at;

  net::TestCommandMessage cmd;
  cmd.target = p.dc;
  cmd.command = net::TestCommandMessage::Command::VibrationTest;
  cmd.reason = "PDME closer-look: " + domain::condition_text(p.mode);
  network_->send(endpoint_name_, "dc-" + std::to_string(p.dc.value()),
                 net::wrap(cmd), p.at);
  ++stats_.retests_commanded;
}

void PdmeExecutive::synchronize() {
  if (!shards_) return;
  shards_->quiesce();
  const std::vector<PendingPost> posts = shards_->take_pending_posts();
  const std::vector<PendingRetest> retests = shards_->take_pending_retests();
  // Replay in global arrival order. At equal order the post wins: inline,
  // a report's object is posted before its fuse can trigger a retest.
  std::size_t pi = 0;
  std::size_t ri = 0;
  while (pi < posts.size() || ri < retests.size()) {
    if (ri == retests.size() ||
        (pi < posts.size() && posts[pi].order <= retests[ri].order)) {
      post_report_object(posts[pi].report);
      ++pi;
    } else {
      send_retest(retests[ri]);
      ++ri;
    }
  }
}

std::size_t PdmeExecutive::rebuild_from_model() {
  // objects_of_kind returns creation order — the exact order the live
  // executive fused these reports. Keep it: re-fusing in any other order
  // (the old timestamp sort was unstable across same-stamp reports) folds
  // the Dempster-Shafer floats differently and recovery would no longer be
  // byte-identical to the uncrashed run.
  std::vector<net::FailureReport> recovered;
  for (const ObjectId obj :
       model_.objects_of_kind(domain::EquipmentKind::Report)) {
    const auto posted = model_.property(obj, "posted");
    if (!posted.has_value()) continue;  // half-written report: skip
    recovered.push_back(reconstruct_report(obj));
  }
  for (const net::FailureReport& r : recovered) {
    // Recovery fuses every persisted report, even signature twins (they are
    // distinct objects in the model) — so bypass the dedup gate and, in
    // sharded mode, the queue: the workers' mark_seen would drop twins.
    if (shards_) {
      const bool retest = retest_enabled_.load(std::memory_order_relaxed);
      const std::uint64_t order = ++order_counter_;
      shards_->with_core_mut(r.sensed_object, [&](FusionCore& core) {
        if (cfg_.deduplicate) core.mark_seen(report_signature(r));
        core.fuse(r, order, retest);
      });
    } else {
      if (cfg_.deduplicate) inline_core_->mark_seen(report_signature(r));
      fuse_local(r);
    }
  }
  return recovered.size();
}

std::vector<PdmeExecutive::SensorFaultRecord> PdmeExecutive::sensor_faults(
    bool active_only) const {
  // Merge the cores' ledgers back into one key-ordered view so the listing
  // (and everything rendered from it) is independent of shard count.
  std::map<FusionCore::SensorFaultKey, SensorFaultRecord> merged;
  visit_cores([&](const FusionCore& core) {
    const auto& entries = core.sensor_fault_entries();
    merged.insert(entries.begin(), entries.end());
  });
  std::vector<SensorFaultRecord> out;
  for (const auto& [key, rec] : merged) {
    if (!active_only || rec.severity > 0.0) out.push_back(rec);
  }
  return out;
}

void PdmeExecutive::restore_dc_health(DcId dc, const DcHealth& health) {
  dc_health_[dc.value()] = health;
}

void PdmeExecutive::restore_command_revision(DcId dc,
                                             std::uint64_t revision) {
  std::uint64_t& current = command_revisions_[dc.value()];
  current = std::max(current, revision);
}

void PdmeExecutive::expect_dc(DcId dc, SimTime since) {
  DcHealth& h = dc_health_[dc.value()];
  h.last_heard = std::max(h.last_heard, since);
}

void PdmeExecutive::note_dc_alive(DcId dc, SimTime at) {
  DcHealth& h = dc_health_[dc.value()];
  h.last_heard = std::max(h.last_heard, at);
  if (h.liveness != DcLiveness::Alive) {
    MPROS_LOG_INFO("pdme", "dc-%llu recovered (%s -> Alive)",
                   static_cast<unsigned long long>(dc.value()),
                   to_string(h.liveness));
    h.liveness = DcLiveness::Alive;
    ++stats_.liveness_transitions;
  }
}

void PdmeExecutive::accept(const net::HeartbeatMessage& hb, SimTime at) {
  PdmeMetrics& metrics = PdmeMetrics::instance();
  note_dc_alive(hb.dc, at);
  ++stats_.heartbeats_received;
  metrics.heartbeats_received.inc();
  ++dc_health_[hb.dc.value()].heartbeats;
  // The advertised newest sequence reveals tail loss: gaps with no later
  // envelope arrival to expose them.
  const std::uint64_t tail_gaps =
      receiver_.on_advertised(hb.dc, hb.last_sequence);
  stats_.gaps_detected += tail_gaps;
  if (tail_gaps > 0) metrics.gaps_detected.inc(tail_gaps);
}

void PdmeExecutive::update_liveness(SimTime now) {
  MPROS_EXPECTS(cfg_.heartbeat_interval.micros() > 0);
  for (auto& [dc, h] : dc_health_) {
    const SimTime silent = now - h.last_heard;
    const auto missed = static_cast<std::size_t>(
        silent.micros() / cfg_.heartbeat_interval.micros());
    DcLiveness verdict = DcLiveness::Alive;
    if (missed >= cfg_.lost_after_missed) {
      verdict = DcLiveness::Lost;
    } else if (missed >= cfg_.stale_after_missed) {
      verdict = DcLiveness::Stale;
    }
    if (verdict != h.liveness) {
      // Watchdog only degrades; note_dc_alive handles recovery.
      if (verdict > h.liveness) {
        MPROS_LOG_WARN(
            "pdme", "dc-%llu %s -> %s: no data for %.0f s (%zu intervals)",
            static_cast<unsigned long long>(dc), to_string(h.liveness),
            to_string(verdict), silent.seconds(), missed);
        h.liveness = verdict;
        ++stats_.liveness_transitions;
      }
    }
  }
}

DcLiveness PdmeExecutive::dc_liveness(DcId dc) const {
  const auto it = dc_health_.find(dc.value());
  return it == dc_health_.end() ? DcLiveness::Alive : it->second.liveness;
}

std::vector<MaintenanceItem> PdmeExecutive::prioritized_list() const {
  // Gather the tracked machines (ascending) exactly as the inline executive
  // would enumerate them, then build per-machine lists and one global sort:
  // the item sequence entering the sort is shard-count-independent, so the
  // output is too.
  std::vector<std::uint64_t> machines;
  visit_cores([&](const FusionCore& core) {
    const auto m = core.machines();
    machines.insert(machines.end(), m.begin(), m.end());
  });
  std::sort(machines.begin(), machines.end());

  std::vector<MaintenanceItem> items;
  for (const std::uint64_t m : machines) {
    const auto per_machine = prioritized_list(ObjectId(m));
    items.insert(items.end(), per_machine.begin(), per_machine.end());
  }
  std::sort(items.begin(), items.end(),
            [](const MaintenanceItem& a, const MaintenanceItem& b) {
              return a.priority > b.priority;
            });
  return items;
}

std::vector<MaintenanceItem> PdmeExecutive::prioritized_list(
    ObjectId machine) const {
  if (shards_) {
    return shards_->with_core(machine, [&](const FusionCore& core) {
      return core.prioritized_list(machine);
    });
  }
  return inline_core_->prioritized_list(machine);
}

std::optional<fusion::PrognosticVector> PdmeExecutive::prognosis(
    ObjectId machine, FailureMode mode) const {
  if (shards_) {
    return shards_->with_core(machine, [&](const FusionCore& core) {
      return core.prognosis(machine, mode);
    });
  }
  return inline_core_->prognosis(machine, mode);
}

fusion::PrognosticVector PdmeExecutive::trend_prognosis(
    ObjectId machine, FailureMode mode) const {
  if (shards_) {
    return shards_->with_core(machine, [&](const FusionCore& core) {
      return core.trend_prognosis(machine, mode);
    });
  }
  return inline_core_->trend_prognosis(machine, mode);
}

fusion::GroupState PdmeExecutive::group_state(
    ObjectId machine, domain::LogicalGroup group) const {
  if (shards_) {
    return shards_->with_core(machine, [&](const FusionCore& core) {
      return core.group_state(machine, group);
    });
  }
  return inline_core_->group_state(machine, group);
}

std::vector<net::FailureReport> PdmeExecutive::reports_for(
    ObjectId machine) const {
  if (shards_) {
    return shards_->with_core(machine, [&](const FusionCore& core) {
      return core.reports_for(machine);
    });
  }
  return inline_core_->reports_for(machine);
}

PdmeExecutive::Stats PdmeExecutive::snapshot() const {
  Stats out = stats_;
  visit_cores([&](const FusionCore& core) {
    const FusionCore::Stats& cs = core.core_stats();
    out.reports_accepted += cs.reports_accepted;
    out.duplicates_dropped += cs.duplicates_dropped;
    out.malformed_dropped += cs.malformed_dropped;
    out.fusion_updates += cs.fusion_updates;
    out.sensor_fault_reports += cs.sensor_fault_reports;
  });
  return out;
}

void PdmeExecutive::attach_to_network(net::SimNetwork& network,
                                      const std::string& endpoint_name) {
  network_ = &network;
  endpoint_name_ = endpoint_name;
  retest_enabled_.store(true, std::memory_order_relaxed);
  network.register_endpoint(
      endpoint_name, [this](const net::Message& message) {
        PdmeMetrics& metrics = PdmeMetrics::instance();
        // The wire is hostile (fault injection, §5.1 "fragmentary" inputs):
        // everything decodes through the fail-soft path, and a datagram
        // that does not parse is counted and dropped, never fatal.
        const auto type = net::try_peek_type(message.payload);
        if (!type.has_value()) {
          ++stats_.malformed_dropped;
          metrics.malformed_dropped.inc();
          return;
        }
        switch (*type) {
          // All four report-bearing shapes — bare report, reliable
          // envelope, bare batch, reliable batch envelope — decode through
          // the one arena-based unwrapper and funnel into submit().
          case net::MessageType::FailureReportMsg:
          case net::MessageType::ReportEnvelopeMsg:
          case net::MessageType::ReportBatchMsg:
          case net::MessageType::ReportBatchEnvelopeMsg: {
            const auto view =
                net::try_unwrap_reports_into(message.payload, decode_arena_);
            if (!view.has_value()) {
              ++stats_.malformed_dropped;
              metrics.malformed_dropped.inc();
              return;
            }
            if (*type == net::MessageType::ReportBatchMsg ||
                *type == net::MessageType::ReportBatchEnvelopeMsg) {
              ++stats_.batches_received;
              stats_.batched_reports += view->count;
            }
            note_dc_alive(view->dc, message.delivered_at);
            const std::span<const net::ReportEnvelope> reports(
                decode_arena_.data(), view->count);
            const bool duplicate_datagram =
                view->sequence != 0 &&
                receiver_.is_duplicate(view->dc, view->sequence);
            if (!duplicate_datagram) {
              for (const net::ReportEnvelope& env : reports) {
                telemetry::StageTimer transit("net.transit",
                                              env.report.trace,
                                              message.sent_at.micros());
                transit.set_sim_end(message.delivered_at.micros());
                metrics.report_pipeline_latency_us.observe(
                    static_cast<double>(
                        (message.delivered_at - env.report.timestamp)
                            .micros()));
              }
            }
            submit(reports);
            if (view->sequence != 0 && network_ != nullptr) {
              // Ack fresh and duplicate datagrams alike — a retransmission
              // may mean our previous ack was the datagram that got lost.
              network_->send(endpoint_name_,
                             "dc-" + std::to_string(view->dc.value()),
                             net::wrap(receiver_.make_ack(view->dc)),
                             message.delivered_at);
              ++stats_.acks_sent;
            }
            break;
          }
          case net::MessageType::Heartbeat: {
            const auto hb = net::try_unwrap_heartbeat(message.payload);
            if (!hb.has_value()) {
              ++stats_.malformed_dropped;
              metrics.malformed_dropped.inc();
              return;
            }
            accept(*hb, message.delivered_at);
            break;
          }
          case net::MessageType::SensorData: {
            const auto data = net::try_unwrap_sensor_data(message.payload);
            if (!data.has_value()) {
              ++stats_.malformed_dropped;
              metrics.malformed_dropped.inc();
              return;
            }
            note_dc_alive(data->dc, message.delivered_at);
            accept(*data);
            break;
          }
          case net::MessageType::Ack: {
            // A DC acking its command stream (report-stream acks flow
            // PDME->DC and never arrive here).
            const auto ack = net::try_unwrap_ack(message.payload);
            if (!ack.has_value()) {
              ++stats_.malformed_dropped;
              metrics.malformed_dropped.inc();
              return;
            }
            note_dc_alive(ack->dc, message.delivered_at);
            const auto it = command_senders_.find(ack->dc.value());
            if (it != command_senders_.end()) {
              it->second->on_ack(*ack);
              ++stats_.command_acks;
            }
            break;
          }
          case net::MessageType::TestCommand:
          case net::MessageType::Command:
          case net::MessageType::CommandEnvelopeMsg:
          case net::MessageType::FleetSummaryEnvelopeMsg:
            break;  // these address DCs or the shore tier, not the PDME
        }
      });
}

std::uint64_t PdmeExecutive::send_command(
    DcId dc, std::vector<std::pair<std::string, double>> settings,
    std::string reason, SimTime at) {
  net::CommandMessage cmd;
  cmd.target = dc;
  cmd.revision = ++command_revisions_[dc.value()];
  cmd.issued_at = at;
  cmd.settings = std::move(settings);
  cmd.reason = std::move(reason);

  auto& sender = command_senders_[dc.value()];
  if (!sender) {
    sender = std::make_unique<net::ReliableSender>(dc, cfg_.command_reliable);
  }
  std::vector<std::uint8_t> payload = sender->envelope(cmd, at);
  if (network_ != nullptr) {
    network_->send(endpoint_name_, "dc-" + std::to_string(dc.value()),
                   std::move(payload), at);
  }
  ++stats_.commands_sent;
  return cmd.revision;
}

void PdmeExecutive::sweep_commands(SimTime now) {
  if (network_ == nullptr) return;
  for (auto& [dc, sender] : command_senders_) {
    for (auto& payload : sender->due_retransmits(now)) {
      network_->send(endpoint_name_, "dc-" + std::to_string(dc),
                     std::move(payload), now);
    }
  }
}

const net::ReliableSender* PdmeExecutive::command_stream(DcId dc) const {
  const auto it = command_senders_.find(dc.value());
  return it == command_senders_.end() ? nullptr : it->second.get();
}

void PdmeExecutive::accept(const net::SensorDataMessage& data) {
  ++stats_.sensor_batches;
  if (!model_.exists(data.machine)) return;
  posting_ = true;  // raw telemetry is not a report; skip fusion triggers
  for (const auto& [key, value] : data.values) {
    model_.set_property(data.machine, key, value);
  }
  model_.set_property(data.machine, "last_sensor_update_us",
                      data.timestamp.micros());
  posting_ = false;
}

void PdmeExecutive::reset_machine(ObjectId machine) {
  if (shards_) {
    shards_->with_core_mut(machine, [&](FusionCore& core) {
      core.reset_machine(machine);
    });
    return;
  }
  inline_core_->reset_machine(machine);
}

}  // namespace mpros::pdme
