#include "mpros/oosm/persistence.hpp"

#include "mpros/common/assert.hpp"

namespace mpros::oosm {
namespace {

using db::ColumnDef;
using db::TableSchema;
using db::Value;
using db::ValueType;

TableSchema objects_schema() {
  return TableSchema{
      Persistence::kObjectsTable,
      {ColumnDef{"id", ValueType::Integer, false},
       ColumnDef{"name", ValueType::Text, false},
       ColumnDef{"kind", ValueType::Integer, false}}};
}

TableSchema properties_schema() {
  return TableSchema{
      Persistence::kPropertiesTable,
      {ColumnDef{"id", ValueType::Integer, false},
       ColumnDef{"object_id", ValueType::Integer, false},
       ColumnDef{"key", ValueType::Text, false},
       // One column per storable type; exactly one is non-null.
       ColumnDef{"int_value", ValueType::Integer, true},
       ColumnDef{"real_value", ValueType::Real, true},
       ColumnDef{"text_value", ValueType::Text, true}}};
}

TableSchema relations_schema() {
  return TableSchema{
      Persistence::kRelationsTable,
      {ColumnDef{"id", ValueType::Integer, false},
       ColumnDef{"from_id", ValueType::Integer, false},
       ColumnDef{"relation", ValueType::Integer, false},
       ColumnDef{"to_id", ValueType::Integer, false}}};
}

}  // namespace

void Persistence::save(const ObjectModel& model, db::Database& db) {
  for (const char* table :
       {kObjectsTable, kPropertiesTable, kRelationsTable}) {
    if (db.has_table(table)) db.drop_table(table);
  }
  db::Table& objects = db.create_table(objects_schema());
  db::Table& properties = db.create_table(properties_schema());
  db::Table& relations = db.create_table(relations_schema());
  properties.create_index("object_id");
  relations.create_index("from_id");

  for (const ObjectId id : model.all_objects()) {
    objects.insert({Value(static_cast<std::int64_t>(id.value())),
                    Value(model.name(id)),
                    Value(static_cast<std::int64_t>(model.kind(id)))});

    for (const auto& [key, value] : model.properties(id)) {
      Value int_v, real_v, text_v;
      switch (value.type()) {
        case ValueType::Integer: int_v = value; break;
        case ValueType::Real: real_v = value; break;
        case ValueType::Text: text_v = value; break;
        case ValueType::Null: break;
      }
      properties.insert_auto({Value(static_cast<std::int64_t>(id.value())),
                              Value(key), int_v, real_v, text_v});
    }

    for (std::size_t r = 0; r < kRelationCount; ++r) {
      const auto relation = static_cast<Relation>(r);
      for (const ObjectId to : model.related(id, relation)) {
        relations.insert_auto({Value(static_cast<std::int64_t>(id.value())),
                               Value(static_cast<std::int64_t>(r)),
                               Value(static_cast<std::int64_t>(to.value()))});
      }
    }
  }
}

ObjectModel Persistence::load(const db::Database& db) {
  ObjectModel model;

  const db::Table& objects = db.table(kObjectsTable);
  for (const db::Row& row : objects.select()) {
    const ObjectId id(static_cast<std::uint64_t>(row[0].as_integer()));
    model.create_object_with_id(
        id, row[1].as_text(),
        static_cast<domain::EquipmentKind>(row[2].as_integer()));
  }

  const db::Table& properties = db.table(kPropertiesTable);
  for (const db::Row& row : properties.select()) {
    const ObjectId object(static_cast<std::uint64_t>(row[1].as_integer()));
    const std::string& key = row[2].as_text();
    if (!row[3].is_null()) {
      model.set_property(object, key, row[3]);
    } else if (!row[4].is_null()) {
      model.set_property(object, key, row[4]);
    } else if (!row[5].is_null()) {
      model.set_property(object, key, row[5]);
    } else {
      model.set_property(object, key, Value());
    }
  }

  const db::Table& relations = db.table(kRelationsTable);
  for (const db::Row& row : relations.select()) {
    const ObjectId from(static_cast<std::uint64_t>(row[1].as_integer()));
    const auto relation = static_cast<Relation>(row[2].as_integer());
    const ObjectId to(static_cast<std::uint64_t>(row[3].as_integer()));
    if (!model.has_relation(from, relation, to)) {
      model.relate(from, relation, to);
    }
  }
  return model;
}

}  // namespace mpros::oosm
