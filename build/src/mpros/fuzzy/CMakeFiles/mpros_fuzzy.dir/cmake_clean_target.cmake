file(REMOVE_RECURSE
  "libmpros_fuzzy.a"
)
