#pragma once
// Hazard / survival analysis (paper §10.1 future work).
//
// "Prognostic knowledge fusion could be improved with the addition of
// techniques from the analysis of hazard and survival data. These
// approaches scrutinize history data to refine the estimates of life-cycle
// performance for failures." We implement a two-parameter Weibull life
// model fitted to (possibly right-censored) failure histories, and a
// refinement step that blends a component's prognostic vector with the
// population hazard.

#include <optional>
#include <span>
#include <vector>

#include "mpros/common/clock.hpp"
#include "mpros/fusion/prognostic_fusion.hpp"

namespace mpros::fusion {

/// One maintenance-history record: time in service, and whether it ended in
/// failure (uncensored) or removal/ongoing service (right-censored).
struct LifeRecord {
  SimTime duration;
  bool failed = true;
};

class WeibullModel {
 public:
  WeibullModel(double shape, double scale_days);

  [[nodiscard]] double shape() const { return shape_; }
  [[nodiscard]] double scale_days() const { return scale_days_; }

  /// F(t): probability of failure by time t.
  [[nodiscard]] double cdf(SimTime t) const;
  /// h(t): instantaneous hazard rate (per day).
  [[nodiscard]] double hazard_per_day(SimTime t) const;
  /// Conditional failure probability by t given survival to `age`.
  [[nodiscard]] double conditional_cdf(SimTime age, SimTime t) const;

  /// Maximum-likelihood fit with right censoring (Newton iteration on the
  /// shape profile likelihood). Requires at least 2 uncensored records;
  /// returns nullopt when the data cannot identify a shape.
  static std::optional<WeibullModel> fit(std::span<const LifeRecord> records);

 private:
  double shape_;
  double scale_days_;
};

/// Refine a fused prognostic vector with the population life model:
/// refined(t) = (1-w) * vector(t) + w * F(t | survived to `age`), evaluated
/// on the vector's breakpoints plus the model's decile horizons. With an
/// empty input vector the result is the pure conditional-hazard curve.
[[nodiscard]] PrognosticVector refine_with_hazard(const PrognosticVector& v,
                                                  const WeibullModel& model,
                                                  SimTime component_age,
                                                  double weight = 0.35);

}  // namespace mpros::fusion
