#pragma once
// Mamdani fuzzy inference.
//
// Rules are "IF x1 is T1 AND x2 is T2 ... THEN y is Ty" with min-AND firing
// strength, clip (min) implication, max aggregation, and centroid or
// mean-of-maximum defuzzification over a sampled output universe.

#include <map>
#include <string>
#include <vector>

#include "mpros/fuzzy/membership.hpp"

namespace mpros::fuzzy {

struct Antecedent {
  std::string variable;
  std::string term;
  bool negated = false;  ///< "IF x is NOT T"
};

struct FuzzyRule {
  std::vector<Antecedent> antecedents;  // AND-combined (min)
  std::string output_term;
  double weight = 1.0;
};

enum class Defuzzifier { Centroid, MeanOfMaximum };

/// Crisp input values by variable name.
using CrispInputs = std::map<std::string, double>;

class MamdaniEngine {
 public:
  /// `output` is the consequent variable shared by all rules.
  MamdaniEngine(std::vector<LinguisticVariable> inputs,
                LinguisticVariable output);

  MamdaniEngine& add_rule(FuzzyRule rule);

  /// Run inference. Missing inputs abort (the caller owns the sensor list).
  /// Returns the defuzzified crisp output; if no rule fires at all, returns
  /// the output universe minimum.
  [[nodiscard]] double infer(const CrispInputs& inputs,
                             Defuzzifier d = Defuzzifier::Centroid) const;

  /// Firing strength of each rule for the given inputs (diagnostic aid and
  /// the basis for rule explanations).
  [[nodiscard]] std::vector<double> firing_strengths(
      const CrispInputs& inputs) const;

  [[nodiscard]] const std::vector<FuzzyRule>& rules() const { return rules_; }
  [[nodiscard]] const LinguisticVariable& output() const { return output_; }

 private:
  [[nodiscard]] const LinguisticVariable& input_variable(
      const std::string& name) const;

  std::vector<LinguisticVariable> inputs_;
  LinguisticVariable output_;
  std::vector<FuzzyRule> rules_;

  static constexpr std::size_t kSamples = 201;
};

}  // namespace mpros::fuzzy
