#pragma once
// Typed cell values for the embedded relational store.
//
// Stands in for the paper's "commercially available", "ODBC compliant"
// database inside the Data Concentrator (§5.8) and for the ADO-backed
// persistence of the OOSM (§4.6).

#include <cstdint>
#include <string>
#include <variant>

namespace mpros::db {

enum class ValueType { Null, Integer, Real, Text };

class Value {
 public:
  Value() = default;  // null
  Value(std::int64_t v) : v_(v) {}           // NOLINT(google-explicit-constructor)
  Value(double v) : v_(v) {}                 // NOLINT(google-explicit-constructor)
  Value(std::string v) : v_(std::move(v)) {} // NOLINT(google-explicit-constructor)
  Value(const char* v) : v_(std::string(v)) {} // NOLINT(google-explicit-constructor)

  [[nodiscard]] ValueType type() const {
    switch (v_.index()) {
      case 0: return ValueType::Null;
      case 1: return ValueType::Integer;
      case 2: return ValueType::Real;
      default: return ValueType::Text;
    }
  }

  [[nodiscard]] bool is_null() const { return type() == ValueType::Null; }

  /// Accessors abort on type mismatch (callers check type() or own the
  /// schema and therefore know the type).
  [[nodiscard]] std::int64_t as_integer() const;
  [[nodiscard]] double as_real() const;
  [[nodiscard]] const std::string& as_text() const;

  /// Numeric coercion: Integer or Real as double; aborts otherwise.
  [[nodiscard]] double numeric() const;

  friend bool operator==(const Value&, const Value&) = default;

  /// Ordering used by indexes: Null < Integer/Real (numeric) < Text.
  [[nodiscard]] bool less(const Value& other) const;

  [[nodiscard]] std::string to_string() const;

 private:
  std::variant<std::monostate, std::int64_t, double, std::string> v_;
};

[[nodiscard]] const char* to_string(ValueType t);

}  // namespace mpros::db
