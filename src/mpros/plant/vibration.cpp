#include "mpros/plant/vibration.hpp"

#include <algorithm>
#include <cmath>

#include "mpros/common/assert.hpp"
#include "mpros/common/units.hpp"

namespace mpros::plant {

using domain::FailureMode;

const char* to_string(MachinePoint p) {
  switch (p) {
    case MachinePoint::Motor: return "motor";
    case MachinePoint::Gearbox: return "gearbox";
    case MachinePoint::Compressor: return "compressor";
  }
  return "?";
}

namespace {

/// Transmission factor from a fault's origin point to the sensing point.
double attenuation(MachinePoint origin, MachinePoint sensor) {
  const int d = std::abs(static_cast<int>(origin) - static_cast<int>(sensor));
  switch (d) {
    case 0: return 1.0;
    case 1: return 0.35;
    default: return 0.12;
  }
}

MachinePoint origin_of(FailureMode m) {
  switch (m) {
    case FailureMode::MotorImbalance:
    case FailureMode::RotorBarDefect:
    case FailureMode::StatorWindingFault:
    case FailureMode::MotorBearingWear:
    case FailureMode::ShaftMisalignment:  // coupling on the motor output end
      return MachinePoint::Motor;
    case FailureMode::GearMeshWear:
      return MachinePoint::Gearbox;
    default:
      return MachinePoint::Compressor;
  }
}

/// One additive tone.
struct Tone {
  double freq_hz;
  double amplitude;
  double phase;
  bool gated;  ///< fault tone, subject to the transient burst envelope
};

/// Square burst gate: on for `duty` of each period, deterministic phase.
double burst_gate(double t, const TransientProfile& p) {
  if (p.duty >= 1.0) return 1.0;
  const double phase = t - std::floor(t / p.period_s) * p.period_s;
  return phase < p.duty * p.period_s ? 1.0 : 0.0;
}

}  // namespace

VibrationSynthesizer::VibrationSynthesizer(domain::MachineSignature signature,
                                           std::uint64_t seed)
    : signature_(signature), rng_(seed) {}

void VibrationSynthesizer::acceleration(MachinePoint point,
                                        const Severities& severities,
                                        double load_fraction,
                                        double t0_seconds,
                                        double sample_rate_hz,
                                        std::span<double> out,
                                        const TransientProfile& transient) {
  MPROS_EXPECTS(sample_rate_hz > 0.0 && !out.empty());
  MPROS_EXPECTS(transient.duty > 0.0 && transient.duty <= 1.0);
  MPROS_EXPECTS(transient.period_s > 0.0);
  const double shaft = signature_.shaft_hz;
  const double hss = signature_.high_speed_shaft_hz();
  const double gmf = signature_.gear_mesh_hz();
  const double vpf = signature_.vane_pass_hz();
  const double line = signature_.line_hz;
  const auto sev = [&](FailureMode m) {
    return severities[static_cast<std::size_t>(m)];
  };
  const auto att = [&](FailureMode m) { return attenuation(origin_of(m), point); };

  std::vector<Tone> tones;
  bool adding_fault_tones = false;  // flipped after the baseline block
  const auto add_tone = [&](double freq, double amp, double phase_salt) {
    if (amp <= 0.0 || freq >= sample_rate_hz / 2.0) return;
    // Deterministic per-tone phase: stable across acquisitions.
    const double phase =
        kTwoPi * (0.0001 * static_cast<double>(
                               splitmix64(static_cast<std::uint64_t>(
                                   freq * 1000.0 + phase_salt)) %
                               10000));
    tones.push_back(Tone{freq, amp, phase, adding_fault_tones});
  };

  // Healthy baseline, mildly load-dependent.
  const double load = std::clamp(load_fraction, 0.0, 1.2);
  add_tone(shaft, 0.05 * (0.6 + 0.4 * load), 1);
  add_tone(2.0 * shaft, 0.02, 2);
  add_tone(gmf, 0.03 * (0.5 + 0.5 * load), 3);
  add_tone(vpf, 0.02 * load, 4);
  add_tone(hss, 0.015, 5);
  adding_fault_tones = true;  // everything below is a fault signature

  // Imbalance: 1x grows with severity and with the square of speed (fixed
  // speed here, so linear in severity).
  if (const double s = sev(FailureMode::MotorImbalance) *
                       att(FailureMode::MotorImbalance);
      s > 0.0) {
    add_tone(shaft, 0.45 * s, 10);
  }

  // Misalignment: strong 2x, some 3x, slight axial 1x rise.
  if (const double s = sev(FailureMode::ShaftMisalignment) *
                       att(FailureMode::ShaftMisalignment);
      s > 0.0) {
    add_tone(2.0 * shaft, 0.32 * s, 11);
    add_tone(3.0 * shaft, 0.14 * s, 12);
    add_tone(shaft, 0.05 * s, 13);
  }

  // Looseness: half-order family plus a raised harmonic series; only
  // rattles under load (the rule gate exploits this).
  if (const double s = sev(FailureMode::BearingHousingLooseness) *
                       att(FailureMode::BearingHousingLooseness) *
                       std::clamp(load / 0.5, 0.0, 1.0);
      s > 0.0) {
    for (const double k : {0.5, 1.5, 2.5}) add_tone(k * shaft, 0.16 * s, 20);
    for (int k = 1; k <= 6; ++k) {
      add_tone(k * shaft, 0.10 * s / static_cast<double>(k), 21);
    }
  }

  // Gear wear: mesh tone + sidebands at +/- input shaft speed.
  if (const double s =
          sev(FailureMode::GearMeshWear) * att(FailureMode::GearMeshWear);
      s > 0.0) {
    add_tone(gmf, 0.30 * s, 30);
    add_tone(gmf - shaft, 0.14 * s, 31);
    add_tone(gmf + shaft, 0.14 * s, 32);
  }

  // Stator winding fault: 2x line-frequency magnetic vibration.
  if (const double s = sev(FailureMode::StatorWindingFault) *
                       att(FailureMode::StatorWindingFault);
      s > 0.0) {
    add_tone(2.0 * line, 0.25 * s, 40);
  }

  // Rotor bar: slight 1x modulation in vibration (the main signature is in
  // the current spectrum).
  if (const double s =
          sev(FailureMode::RotorBarDefect) * att(FailureMode::RotorBarDefect);
      s > 0.0) {
    add_tone(shaft, 0.12 * s, 45);
  }

  // Cavitation: strong vane pass plus broadband high-frequency noise
  // (handled in the noise pass below).
  const double cavitation = sev(FailureMode::PumpCavitation) *
                            att(FailureMode::PumpCavitation);
  if (cavitation > 0.0) add_tone(vpf, 0.20 * cavitation, 50);

  // Render tones; fault tones ride the transient burst envelope.
  const double dt = 1.0 / sample_rate_hz;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const double t = t0_seconds + static_cast<double>(i) * dt;
    const double gate = burst_gate(t, transient);
    double v = 0.0;
    for (const Tone& tone : tones) {
      const double g = tone.gated ? gate : 1.0;
      if (g == 0.0) continue;
      v += g * tone.amplitude *
           std::sin(kTwoPi * tone.freq_hz * t + tone.phase);
    }
    out[i] = v;
  }

  // Broadband noise: baseline + cavitation contribution (white, so it
  // lands across the band including the 5-12 kHz window the rules watch).
  for (std::size_t i = 0; i < out.size(); ++i) {
    const double t = t0_seconds + static_cast<double>(i) * dt;
    const double noise_sigma =
        0.02 + 0.13 * cavitation * burst_gate(t, transient);
    out[i] += rng_.normal(0.0, noise_sigma);
  }

  // Bearing defects: repetitive impacts exciting a structural resonance.
  struct BearingSource {
    FailureMode mode;
    double order;
  };
  const BearingSource bearings[] = {
      {FailureMode::MotorBearingWear, signature_.bearing.bpfo},
      {FailureMode::CompressorBearingWear, signature_.hss_bearing.bsf},
  };
  const double resonance_hz = std::min(4200.0, sample_rate_hz * 0.4);
  for (const BearingSource& b : bearings) {
    const double s = sev(b.mode) * att(b.mode);
    if (s <= 0.0) continue;
    // Inner-race-style second tone for the motor bearing as wear spreads.
    const double rates[] = {b.order * (b.mode == FailureMode::MotorBearingWear
                                           ? signature_.shaft_hz
                                           : signature_.high_speed_shaft_hz()),
                            b.mode == FailureMode::MotorBearingWear
                                ? signature_.bearing.bpfi * signature_.shaft_hz
                                : signature_.hss_bearing.ftf *
                                      signature_.high_speed_shaft_hz()};
    const double weights[] = {1.0, 0.55};
    for (int r = 0; r < 2; ++r) {
      const double rate_hz = rates[r];
      if (rate_hz <= 0.0) continue;
      const double period_s = 1.0 / rate_hz;
      const double impact_amp = 0.9 * s * weights[r];
      // Ring-down time constant ~ 1.2 ms.
      const double tau = 1.2e-3;
      const double t_end =
          t0_seconds + static_cast<double>(out.size()) * dt;
      double impact_t = std::floor(t0_seconds / period_s) * period_s;
      for (; impact_t < t_end; impact_t += period_s) {
        // +/-2% timing jitter, characteristic of rolling-element slippage.
        const double jitter = rng_.uniform(-0.02, 0.02) * period_s;
        const double center = impact_t + jitter;
        if (burst_gate(center, transient) == 0.0) continue;  // off-phase
        const auto first =
            static_cast<std::ptrdiff_t>((center - t0_seconds) * sample_rate_hz);
        const auto last = first + static_cast<std::ptrdiff_t>(
                                      6.0 * tau * sample_rate_hz);
        for (std::ptrdiff_t i = std::max<std::ptrdiff_t>(first, 0);
             i < std::min<std::ptrdiff_t>(
                     last, static_cast<std::ptrdiff_t>(out.size()));
             ++i) {
          const double t = t0_seconds + static_cast<double>(i) * dt - center;
          if (t < 0.0) continue;
          out[static_cast<std::size_t>(i)] +=
              impact_amp * std::exp(-t / tau) *
              std::sin(kTwoPi * resonance_hz * t);
        }
      }
    }
  }
}

void VibrationSynthesizer::motor_current(const Severities& severities,
                                         double load_fraction,
                                         double t0_seconds,
                                         double sample_rate_hz,
                                         std::span<double> out) {
  MPROS_EXPECTS(sample_rate_hz > 0.0 && !out.empty());
  const double line = signature_.line_hz;
  const double load = std::clamp(load_fraction, 0.05, 1.2);
  const auto sev = [&](FailureMode m) {
    return severities[static_cast<std::size_t>(m)];
  };

  // Fundamental amplitude tracks load; winding faults draw extra current;
  // condenser fouling raises compressor head and therefore current too.
  const double nominal_rms = 180.0;
  const double rms = nominal_rms *
                     (0.25 + 0.75 * load) *
                     (1.0 + 0.25 * sev(FailureMode::StatorWindingFault) +
                      0.18 * sev(FailureMode::CondenserFouling));
  const double fundamental = rms * std::sqrt(2.0);

  // Rotor bar sidebands at line +/- 2*slip*pole_pairs. Healthy machines sit
  // ~60 dB below the fundamental; a failed cage approaches ~22 dB.
  const double rotor = sev(FailureMode::RotorBarDefect);
  const double sideband_db = 60.0 - 38.0 * rotor;
  const double sideband_amp = fundamental * std::pow(10.0, -sideband_db / 20.0);
  const double pole_pass =
      2.0 * signature_.slip_hz(load) * signature_.pole_pairs;

  const double dt = 1.0 / sample_rate_hz;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const double t = t0_seconds + static_cast<double>(i) * dt;
    double v = fundamental * std::sin(kTwoPi * line * t);
    v += sideband_amp * std::sin(kTwoPi * (line - pole_pass) * t + 0.7);
    v += sideband_amp * std::sin(kTwoPi * (line + pole_pass) * t + 1.9);
    // Winding asymmetry adds a small third harmonic.
    v += fundamental * 0.04 * sev(FailureMode::StatorWindingFault) *
         std::sin(kTwoPi * 3.0 * line * t + 0.3);
    out[i] = v + rng_.normal(0.0, fundamental * 0.002);
  }
}

}  // namespace mpros::plant
