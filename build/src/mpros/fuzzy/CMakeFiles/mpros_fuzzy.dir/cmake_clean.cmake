file(REMOVE_RECURSE
  "CMakeFiles/mpros_fuzzy.dir/chiller_fuzzy.cpp.o"
  "CMakeFiles/mpros_fuzzy.dir/chiller_fuzzy.cpp.o.d"
  "CMakeFiles/mpros_fuzzy.dir/engine.cpp.o"
  "CMakeFiles/mpros_fuzzy.dir/engine.cpp.o.d"
  "CMakeFiles/mpros_fuzzy.dir/membership.cpp.o"
  "CMakeFiles/mpros_fuzzy.dir/membership.cpp.o.d"
  "libmpros_fuzzy.a"
  "libmpros_fuzzy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpros_fuzzy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
