#pragma once
// Per-machine knowledge-fusion state, extracted from the PDME executive so
// it can be sharded (E18): each fusion worker owns one FusionCore covering a
// disjoint set of machines, so cores never share mutable state and the only
// synchronization is the owning shard's mutex. The inline (shard_count = 0)
// executive owns a single core and runs everything on the driver thread.
//
// A core holds exactly the state that is independent per machine until the
// comparative/fleet layer: Dempster-Shafer group state, prognostic tracks,
// report history, dedup signatures, and the sensor-fault quarantine ledger.
// Anything that spans machines — the OOSM, DC liveness, reliable-stream
// bookkeeping, the retest backoff ledger — stays with the executive and is
// reconciled at the aggregation barrier (PdmeExecutive::synchronize()).

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "mpros/common/bounded_queue.hpp"
#include "mpros/fusion/diagnostic_fusion.hpp"
#include "mpros/net/reliable.hpp"
#include "mpros/fusion/prognostic_fusion.hpp"
#include "mpros/fusion/trend.hpp"
#include "mpros/net/report.hpp"

namespace mpros::pdme {

/// One line of the prioritized maintenance list.
struct MaintenanceItem {
  ObjectId machine;
  domain::FailureMode mode{};
  double fused_belief = 0.0;     ///< Bel({mode}) from Dempster-Shafer
  double plausibility = 0.0;
  double max_severity = 0.0;     ///< worst severity reported for the mode
  double priority = 0.0;         ///< belief x severity, the sort key
  std::size_t report_count = 0;  ///< reports contributing to the group
  std::optional<SimTime> median_ttf;  ///< fused P(fail) reaches 0.5
  std::optional<SimTime> p90_ttf;     ///< fused P(fail) reaches 0.9
  /// §10.1 temporal reasoning: projected time-to-failure from the severity
  /// trend across this mode's report history (absent while the trend is
  /// flat, improving, or under-sampled).
  std::optional<SimTime> trend_ttf;
};

struct PdmeConfig {
  /// Reports older than this against the same (machine, condition) replace
  /// nothing — exact duplicates (retransmissions) are dropped by signature.
  bool deduplicate = true;

  /// Adaptive "closer look" (§6.3): when a fused report crosses
  /// `retest_severity` while the group still carries real unknown mass, the
  /// PDME commands the originating DC to run an immediate vibration test.
  /// Requires attach_to_network(); at most one command per (machine, mode)
  /// per `retest_backoff` of report time.
  bool auto_retest = false;
  double retest_severity = 0.70;
  double retest_unknown = 0.20;
  SimTime retest_backoff = SimTime::from_hours(1.0);

  /// DC liveness supervision: the watchdog interval the DCs are expected to
  /// beat (matches DcConfig::heartbeat_period in the assembled system). A
  /// machinery space silent for `stale_after_missed` intervals is Stale,
  /// for `lost_after_missed` intervals Lost. Any report, heartbeat or
  /// sensor batch from the DC restores Alive.
  SimTime heartbeat_interval = SimTime::from_seconds(60.0);
  std::size_t stale_after_missed = 2;
  std::size_t lost_after_missed = 3;

  /// Sharded ingestion (E18): number of fusion workers, each owning the
  /// machines whose ObjectId hashes to it. 0 keeps the single-threaded
  /// inline executive (every existing call pattern unchanged). With shards,
  /// accept() only enqueues — fused results, OOSM report objects and retest
  /// commands materialize at PdmeExecutive::synchronize().
  std::size_t shard_count = 0;
  /// Bound on each shard's ingest queue; backpressure engages beyond it.
  std::size_t shard_queue_capacity = 1024;
  /// Control plane: reliable-delivery tuning for the per-DC command streams
  /// (send_command). Same ack algebra as the report path, opposite
  /// direction.
  net::ReliableConfig command_reliable;
  /// What a full shard queue does to the producer: Block (lossless, the
  /// driver waits for the worker) or DropOldest (bounded latency, evictions
  /// are counted in Stats::queue_full / the pdme.queue_full counter).
  OverflowPolicy overflow_policy = OverflowPolicy::Block;
};

/// The latest word on each instrument channel the validators flagged:
/// severity > 0 = fault standing, 0 = cleared. Keyed by
/// (dc, sensed object, fault kind); newest report wins.
struct SensorFaultRecord {
  DcId dc;
  ObjectId object;
  domain::SensorFaultKind kind{};
  double severity = 0.0;
  SimTime at;
  std::string explanation;
};

/// An adaptive-retest candidate recorded at fuse time. The per-machine
/// checks (severity threshold, corroboration) run in the core where the
/// group state lives; the executive applies the cross-machine backoff
/// ledger and sends the command — immediately after the fuse when inline,
/// at the aggregation barrier when sharded. `order` is the global arrival
/// order, so replaying candidates sorted by it reproduces the inline
/// backoff decisions exactly.
struct PendingRetest {
  DcId dc;
  ObjectId machine;
  domain::FailureMode mode{};
  SimTime at;
  std::uint64_t order = 0;
};

/// Exact-duplicate (retransmission) signature of a report. Includes the
/// sensed machine, so per-shard dedup sets are equivalent to a global one:
/// two reports with equal signatures always hash to the same shard.
[[nodiscard]] std::string report_signature(const net::FailureReport& r);

class FusionCore {
 public:
  /// The Stats fields a core owns; the executive sums them across shards
  /// into PdmeExecutive::Stats at stats() time.
  struct Stats {
    std::uint64_t reports_accepted = 0;
    std::uint64_t duplicates_dropped = 0;
    std::uint64_t malformed_dropped = 0;
    std::uint64_t fusion_updates = 0;
    std::uint64_t sensor_fault_reports = 0;
  };

  explicit FusionCore(const PdmeConfig& cfg) : cfg_(cfg) {}

  /// Dedup bookkeeping: returns false when this signature was seen before.
  bool mark_seen(std::string signature) {
    return seen_signatures_.insert(std::move(signature)).second;
  }
  void count_duplicate();

  /// Fuse one report (§5.1 steps 3-4 state updates). `order` is the global
  /// arrival order (used for retest candidates); `retest_enabled` reflects
  /// whether the executive is attached to a network.
  void fuse(const net::FailureReport& report, std::uint64_t order,
            bool retest_enabled);

  // -- Queries (caller holds the shard lock in sharded mode) ---------------

  /// Machines with fused tracks, ascending by id.
  [[nodiscard]] std::vector<std::uint64_t> machines() const;
  [[nodiscard]] std::vector<MaintenanceItem> prioritized_list(
      ObjectId machine) const;
  [[nodiscard]] std::optional<fusion::PrognosticVector> prognosis(
      ObjectId machine, domain::FailureMode mode) const;
  [[nodiscard]] fusion::PrognosticVector trend_prognosis(
      ObjectId machine, domain::FailureMode mode) const;
  [[nodiscard]] fusion::GroupState group_state(
      ObjectId machine, domain::LogicalGroup group) const {
    return diagnostics_.state(machine, group);
  }
  [[nodiscard]] std::vector<net::FailureReport> reports_for(
      ObjectId machine) const;

  using SensorFaultKey =
      std::tuple<std::uint64_t, std::uint64_t, std::uint64_t>;
  [[nodiscard]] const std::map<SensorFaultKey, SensorFaultRecord>&
  sensor_fault_entries() const {
    return sensor_faults_;
  }

  /// Drain the retest candidates recorded since the last call, in record
  /// order (ascending `order` within one core).
  [[nodiscard]] std::vector<PendingRetest> take_pending_retests();
  /// Cheap emptiness probe so per-report callers can skip the drain (and
  /// its vector round-trip) on the overwhelmingly common no-retest path.
  [[nodiscard]] bool has_pending_retests() const {
    return !pending_retests_.empty();
  }

  void reset_machine(ObjectId machine);

  [[nodiscard]] const Stats& core_stats() const { return stats_; }

 private:
  struct ModeKey {
    std::uint64_t machine;
    domain::FailureMode mode;
    auto operator<=>(const ModeKey&) const = default;
  };
  struct ModeTrack {
    fusion::PrognosticVector fused_prognosis;
    fusion::TrendProjector trend;
    SimTime latest_report;
    double max_severity = 0.0;
    std::size_t reports = 0;
  };

  void note_sensor_fault(const net::FailureReport& report);
  void maybe_record_retest(const net::FailureReport& report,
                           std::uint64_t order);

  PdmeConfig cfg_;
  fusion::DiagnosticFusion diagnostics_;
  /// Reused per-report buffers: prognostic-pair conversion plus the fuse
  /// scratch keep the steady-state fuse path off the heap.
  std::vector<fusion::PrognosticPoint> prog_points_;
  fusion::FuseScratch fuse_scratch_;
  std::map<ModeKey, ModeTrack> tracks_;
  /// Per-machine report history. Deques: report structs never move once
  /// stored, so high-rate ingest avoids the reallocate-and-move storms a
  /// growing vector of string-bearing structs would pay.
  std::map<std::uint64_t, std::deque<net::FailureReport>> reports_;
  std::set<std::string> seen_signatures_;
  std::map<SensorFaultKey, SensorFaultRecord> sensor_faults_;
  std::vector<PendingRetest> pending_retests_;
  Stats stats_;
};

}  // namespace mpros::pdme
