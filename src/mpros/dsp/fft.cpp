#include "mpros/dsp/fft.hpp"

#include <algorithm>

#include "mpros/common/assert.hpp"
#include "mpros/common/units.hpp"

namespace mpros::dsp {

std::size_t next_power_of_two(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

FftPlan::FftPlan(std::size_t n) : n_(n) {
  MPROS_EXPECTS(is_power_of_two(n) && n >= 2);

  bit_reverse_.resize(n);
  std::size_t log2n = 0;
  while ((std::size_t{1} << log2n) < n) ++log2n;
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t r = 0;
    for (std::size_t b = 0; b < log2n; ++b) {
      if (i & (std::size_t{1} << b)) r |= std::size_t{1} << (log2n - 1 - b);
    }
    bit_reverse_[i] = r;
  }

  twiddle_.resize(n / 2);
  for (std::size_t k = 0; k < n / 2; ++k) {
    const double angle = -kTwoPi * static_cast<double>(k) /
                         static_cast<double>(n);
    twiddle_[k] = Complex(std::cos(angle), std::sin(angle));
  }
}

void FftPlan::transform(std::span<Complex> x, bool invert) const {
  MPROS_EXPECTS(x.size() == n_);

  for (std::size_t i = 0; i < n_; ++i) {
    const std::size_t j = bit_reverse_[i];
    if (i < j) std::swap(x[i], x[j]);
  }

  for (std::size_t len = 2; len <= n_; len <<= 1) {
    const std::size_t stride = n_ / len;
    for (std::size_t start = 0; start < n_; start += len) {
      for (std::size_t k = 0; k < len / 2; ++k) {
        Complex w = twiddle_[k * stride];
        if (invert) w = std::conj(w);
        const Complex u = x[start + k];
        const Complex v = x[start + k + len / 2] * w;
        x[start + k] = u + v;
        x[start + k + len / 2] = u - v;
      }
    }
  }

  if (invert) {
    const double inv_n = 1.0 / static_cast<double>(n_);
    for (Complex& c : x) c *= inv_n;
  }
}

void FftPlan::forward(std::span<Complex> x) const { transform(x, false); }

void FftPlan::inverse(std::span<Complex> x) const { transform(x, true); }

std::vector<Complex> fft_real(std::span<const double> x, std::size_t n) {
  if (n == 0) n = next_power_of_two(std::max<std::size_t>(x.size(), 2));
  MPROS_EXPECTS(is_power_of_two(n) && n >= x.size());

  std::vector<Complex> buf(n, Complex{});
  std::transform(x.begin(), x.end(), buf.begin(),
                 [](double v) { return Complex(v, 0.0); });
  FftPlan(n).forward(buf);
  return buf;
}

std::vector<Complex> ifft(std::span<const Complex> spectrum) {
  MPROS_EXPECTS(is_power_of_two(spectrum.size()));
  std::vector<Complex> buf(spectrum.begin(), spectrum.end());
  FftPlan(buf.size()).inverse(buf);
  return buf;
}

}  // namespace mpros::dsp
