#include "mpros/mpros/replay.hpp"

#include <algorithm>

#include "mpros/net/messages.hpp"
#include "mpros/oosm/object_model.hpp"
#include "mpros/oosm/ship_builder.hpp"
#include "mpros/pdme/browser.hpp"
#include "mpros/pdme/pdme.hpp"

namespace mpros {

std::optional<ReplayResult> replay_recording(
    const telemetry::FlightRecorder::Decoded& dump) {
  if (dump.header.version != telemetry::kRecorderVersion) return std::nullopt;

  // Rebuild the live run's object model. ShipSystem derives its deck layout
  // from plant_count the same way; the ship name is fixed, so object ids
  // land identically and reports resolve to the same machines.
  oosm::ObjectModel model;
  const std::size_t plant_count = std::max<std::size_t>(
      1, dump.header.plant_count);
  oosm::ShipModel ship = oosm::build_ship(
      model, "USNS Mercy",
      /*decks=*/std::max<std::size_t>(1, (plant_count + 1) / 2),
      /*plants_per_deck=*/2);

  pdme::PdmeConfig cfg;
  cfg.deduplicate = dump.header.pdme_dedup;
  cfg.auto_retest = false;  // no DCs to command during replay
  pdme::PdmeExecutive pdme(model, cfg);
  // The live assembler registers every DC with the watchdog up front; the
  // replayed health ledger needs the same roster to match the summary.
  for (std::size_t p = 0; p < plant_count; ++p) {
    pdme.expect_dc(DcId(p + 1), SimTime(0));
  }

  ReplayResult result;
  result.frames_seen = dump.frames.size();
  for (const telemetry::RecorderFrame& frame : dump.frames) {
    if (frame.kind != telemetry::FrameKind::NetMessage) {
      ++result.events_skipped;
      continue;
    }
    if (frame.to != "pdme") continue;  // DC-bound commands replay as no-ops

    const SimTime delivered_at{frame.time_us};
    const auto type = net::try_peek_type(frame.payload);
    if (!type.has_value()) {
      ++result.malformed;
      continue;
    }
    switch (*type) {
      case net::MessageType::FailureReportMsg: {
        const auto report = net::try_unwrap_report(frame.payload);
        if (!report.has_value()) {
          ++result.malformed;
          break;
        }
        pdme.note_dc_alive(report->dc, delivered_at);
        pdme.accept(*report);
        ++result.messages_replayed;
        break;
      }
      case net::MessageType::SensorData: {
        const auto data = net::try_unwrap_sensor_data(frame.payload);
        if (!data.has_value()) {
          ++result.malformed;
          break;
        }
        pdme.note_dc_alive(data->dc, delivered_at);
        pdme.accept(*data);
        ++result.messages_replayed;
        break;
      }
      case net::MessageType::ReportEnvelopeMsg: {
        // Replay bypasses the reliable layer: signature dedup inside
        // accept() absorbs recorded retransmissions of the same envelope.
        const auto env = net::try_unwrap_envelope(frame.payload);
        if (!env.has_value()) {
          ++result.malformed;
          break;
        }
        pdme.note_dc_alive(env->dc, delivered_at);
        pdme.accept(env->report);
        ++result.messages_replayed;
        break;
      }
      case net::MessageType::ReportBatchMsg:
      case net::MessageType::ReportBatchEnvelopeMsg: {
        // Same contract as the envelope case: the reliable layer is
        // bypassed, signature dedup absorbs recorded retransmissions.
        std::vector<net::ReportEnvelope> arena;
        const auto view = net::try_unwrap_reports_into(frame.payload, arena);
        if (!view.has_value()) {
          ++result.malformed;
          break;
        }
        pdme.note_dc_alive(view->dc, delivered_at);
        for (std::size_t i = 0; i < view->count; ++i) {
          pdme.accept(arena[i].report);
        }
        ++result.messages_replayed;
        break;
      }
      case net::MessageType::Heartbeat: {
        const auto hb = net::try_unwrap_heartbeat(frame.payload);
        if (!hb.has_value()) {
          ++result.malformed;
          break;
        }
        pdme.accept(*hb, delivered_at);
        break;
      }
      case net::MessageType::TestCommand:
      case net::MessageType::Ack:
      case net::MessageType::FleetSummaryEnvelopeMsg:
      default:
        break;  // mis-routed; the live PDME ignored these too
    }
  }

  result.reports_fused = pdme.stats().reports_accepted;
  result.sensor_batches = pdme.stats().sensor_batches;
  result.summary = pdme::render_summary(pdme, model);
  return result;
}

std::optional<ReplayResult> replay_file(const std::string& path) {
  const auto dump = telemetry::FlightRecorder::load(path);
  if (!dump.has_value()) return std::nullopt;
  return replay_recording(*dump);
}

}  // namespace mpros
