# Empty compiler generated dependencies file for mpros_dsp.
# This may be replaced when dependencies are built.
