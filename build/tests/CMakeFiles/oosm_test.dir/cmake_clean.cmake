file(REMOVE_RECURSE
  "CMakeFiles/oosm_test.dir/oosm_test.cpp.o"
  "CMakeFiles/oosm_test.dir/oosm_test.cpp.o.d"
  "oosm_test"
  "oosm_test.pdb"
  "oosm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oosm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
