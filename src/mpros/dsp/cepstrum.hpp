#pragma once
// Real cepstrum.
//
// Listed by the paper (§6.2) among the WNN's input features. The cepstrum
// turns harmonic families (gear mesh sidebands, bearing tone harmonics) into
// single quefrency peaks, which makes them easy classifier inputs.

#include <cstddef>
#include <span>
#include <vector>

namespace mpros::dsp {

/// Real cepstrum: IFFT(log(|FFT(x)| + eps)). Output length equals the FFT
/// size (power of two >= x.size(); pass 0 to choose automatically).
[[nodiscard]] std::vector<double> real_cepstrum(std::span<const double> x,
                                                std::size_t fft_size = 0);

/// Allocation-free variant: writes into `out`, reusing its capacity.
void real_cepstrum(std::span<const double> x, std::size_t fft_size,
                   std::vector<double>& out);

/// Quefrency (seconds) of the strongest cepstral peak in
/// [min_quefrency_s, max_quefrency_s]; 0 if the range is empty.
[[nodiscard]] double dominant_quefrency(std::span<const double> cepstrum,
                                        double sample_rate_hz,
                                        double min_quefrency_s,
                                        double max_quefrency_s);

}  // namespace mpros::dsp
