#pragma once
// Sensor validation ahead of the analyzers (data quality gate).
//
// §5.8's scheduler feeds four analyzers that all assume the instrumentation
// tells the truth; a stuck accelerometer would otherwise look like a healthy
// machine and a spiking thermocouple like a bearing failure. This stage
// screens every acquisition before analysis:
//   - flatline  : window variance collapsed (stuck-at DAC / frozen loop),
//   - dropout   : non-finite samples (open circuit, dead channel),
//   - range     : readings outside physical plausibility,
//   - spike     : isolated impulses far beyond robust scatter — thresholds
//                 sit above genuine bearing-impact crest factors so real
//                 machinery impulsiveness never trips them.
// A failed channel is quarantined: its data is withheld from the analyzers
// (which degrade gracefully — rules abstain on missing features, fuzzy and
// SBFR skip absent keys) until the channel produces `release_after`
// consecutive clean checks.

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <set>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "mpros/domain/failure_modes.hpp"

namespace mpros::dc {

struct PhysicalRange {
  double lo = 0.0;
  double hi = 0.0;
};

struct SensorValidatorConfig {
  /// Plausibility limits per channel; channels without an entry skip the
  /// range check but keep all other screens.
  std::map<std::string, PhysicalRange> ranges;
  /// Window peak-to-peak below this is a flatline. Real accelerometer noise
  /// floors sit orders of magnitude above.
  double flatline_peak_to_peak = 1e-9;
  /// Scalar channels flatline when this many consecutive scans repeat the
  /// same reading exactly (process noise makes honest repeats implausible).
  std::size_t flatline_repeats = 4;
  /// Channels exempt from the exact-repeat flatline screen: commanded
  /// setpoints and other noiseless telemetry repeat legitimately.
  std::set<std::string> flatline_exempt;
  /// Spike screen: samples beyond `spike_sigmas` robust deviations
  /// (median/MAD) count as spikes; the window faults when at least
  /// `spike_min_count` land. Bearing-impact crests reach ~5-10 sigmas;
  /// 25 keeps genuine impulsiveness out.
  double spike_sigmas = 25.0;
  std::size_t spike_min_count = 4;
  /// Scalar spike screen: deviation from the recent-history median, in
  /// robust sigmas of that history.
  double scalar_spike_sigmas = 12.0;
  std::size_t scalar_history = 16;
  /// Consecutive clean checks before a quarantined channel is trusted again.
  std::size_t release_after = 3;
};

/// Plausibility limits for the chiller's instrument suite.
[[nodiscard]] SensorValidatorConfig chiller_validator_config();

class SensorValidator {
 public:
  struct Verdict {
    /// Set when this check failed a screen (also set on every check while
    /// the fault persists).
    std::optional<domain::SensorFaultKind> fault;
    bool newly_quarantined = false;  ///< healthy -> quarantined transition
    bool released = false;           ///< quarantined -> healthy transition
    /// The fault being retired when `released` (for the all-clear report).
    std::optional<domain::SensorFaultKind> cleared_kind;
  };

  explicit SensorValidator(SensorValidatorConfig cfg =
                               chiller_validator_config());

  /// Screen a waveform acquisition (vibration / motor current).
  Verdict check_window(const std::string& channel,
                       std::span<const double> samples);

  /// Screen one scalar process reading.
  Verdict check_value(const std::string& channel, double value);

  [[nodiscard]] bool quarantined(const std::string& channel) const;
  [[nodiscard]] std::vector<std::string> quarantined_channels() const;

  /// Runtime control plane: adjust the screening thresholds in place.
  /// Quarantine verdicts, clean streaks and scalar histories are preserved
  /// — only future checks see the new limits.
  [[nodiscard]] const SensorValidatorConfig& config() const { return cfg_; }
  void set_config(SensorValidatorConfig cfg) { cfg_ = std::move(cfg); }

  struct Stats {
    std::uint64_t checks = 0;
    std::uint64_t faults_detected = 0;  ///< checks that failed a screen
    std::uint64_t quarantines = 0;      ///< healthy -> quarantined edges
    std::uint64_t releases = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  struct ChannelState {
    bool quarantined = false;
    domain::SensorFaultKind last_fault = domain::SensorFaultKind::Flatline;
    std::size_t clean_streak = 0;
    std::size_t repeat_count = 0;  ///< scalar stuck-at tracking
    double last_value = 0.0;
    bool has_last = false;
    std::deque<double> history;  ///< scalar recent readings (clean only)
  };

  Verdict resolve(ChannelState& state,
                  std::optional<domain::SensorFaultKind> fault);
  [[nodiscard]] std::optional<domain::SensorFaultKind> screen_window(
      const std::string& channel, std::span<const double> samples) const;
  [[nodiscard]] std::optional<domain::SensorFaultKind> screen_value(
      const std::string& channel, ChannelState& state, double value) const;

  SensorValidatorConfig cfg_;
  std::map<std::string, ChannelState> channels_;
  Stats stats_;
};

}  // namespace mpros::dc
