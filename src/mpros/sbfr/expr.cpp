#include "mpros/sbfr/expr.hpp"

#include <cstring>

namespace mpros::sbfr {
namespace {

void append_op(std::vector<std::uint8_t>& code, Op op) {
  code.push_back(static_cast<std::uint8_t>(op));
}

void append_f32(std::vector<std::uint8_t>& code, double v) {
  const float f = static_cast<float>(v);
  std::uint8_t bytes[4];
  std::memcpy(bytes, &f, 4);
  // Element-wise push avoids a GCC 12 -Warray-bounds false positive on
  // vector::insert from a stack array.
  for (const std::uint8_t b : bytes) code.push_back(b);
}

}  // namespace

Expr Expr::constant(double v) {
  Expr e;
  append_op(e.code_, Op::PushConst);
  append_f32(e.code_, v);
  return e;
}

void Expr::append_imm8(Op op, std::uint8_t imm) {
  append_op(code_, op);
  code_.push_back(imm);
}

Expr Expr::input(std::uint8_t channel) {
  Expr e;
  e.append_imm8(Op::LoadInput, channel);
  return e;
}

Expr Expr::delta(std::uint8_t channel) {
  Expr e;
  e.append_imm8(Op::LoadDelta, channel);
  return e;
}

Expr Expr::local(std::uint8_t index) {
  Expr e;
  e.append_imm8(Op::LoadLocal, index);
  return e;
}

Expr Expr::status(std::uint8_t machine) {
  Expr e;
  e.append_imm8(Op::LoadStatus, machine);
  return e;
}

Expr Expr::state_of(std::uint8_t machine) {
  Expr e;
  e.append_imm8(Op::LoadState, machine);
  return e;
}

Expr Expr::dt() {
  Expr e;
  append_op(e.code_, Op::LoadDt);
  return e;
}

Expr Expr::binary(const Expr& rhs, Op op) const {
  Expr e;
  e.code_ = code_;
  e.code_.insert(e.code_.end(), rhs.code_.begin(), rhs.code_.end());
  append_op(e.code_, op);
  return e;
}

Expr Expr::unary(Op op) const {
  Expr e;
  e.code_ = code_;
  append_op(e.code_, op);
  return e;
}

Expr Expr::bit_and(const Expr& b) const { return binary(b, Op::BitAnd); }
Expr Expr::bit_or(const Expr& b) const { return binary(b, Op::BitOr); }

Action& Action::set_local(std::uint8_t index, const Expr& e) {
  code_.insert(code_.end(), e.code().begin(), e.code().end());
  code_.push_back(static_cast<std::uint8_t>(Op::StoreLocal));
  code_.push_back(index);
  return *this;
}

Action& Action::set_status(std::uint8_t machine, const Expr& e) {
  code_.insert(code_.end(), e.code().begin(), e.code().end());
  code_.push_back(static_cast<std::uint8_t>(Op::StoreStatus));
  code_.push_back(machine);
  return *this;
}

Action& Action::emit(std::uint8_t code, const Expr& e) {
  code_.insert(code_.end(), e.code().begin(), e.code().end());
  code_.push_back(static_cast<std::uint8_t>(Op::Emit));
  code_.push_back(code);
  return *this;
}

}  // namespace mpros::sbfr
