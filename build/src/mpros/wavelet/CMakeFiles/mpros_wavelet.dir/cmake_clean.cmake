file(REMOVE_RECURSE
  "CMakeFiles/mpros_wavelet.dir/dwt.cpp.o"
  "CMakeFiles/mpros_wavelet.dir/dwt.cpp.o.d"
  "CMakeFiles/mpros_wavelet.dir/features.cpp.o"
  "CMakeFiles/mpros_wavelet.dir/features.cpp.o.d"
  "libmpros_wavelet.a"
  "libmpros_wavelet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpros_wavelet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
