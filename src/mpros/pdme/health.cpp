#include "mpros/pdme/health.hpp"

#include <algorithm>
#include <cstdio>

namespace mpros::pdme {

HealthRollup::HealthRollup(HealthConfig cfg) : cfg_(cfg) {}

namespace {

std::map<ObjectId, double> own_health(const PdmeExecutive& pdme,
                                      const oosm::ObjectModel& model,
                                      double impact) {
  std::map<ObjectId, double> own;
  for (const ObjectId id : model.all_objects()) {
    if (model.kind(id) == domain::EquipmentKind::Report) continue;
    double h = 1.0;
    for (const MaintenanceItem& item : pdme.prioritized_list(id)) {
      h *= 1.0 - std::clamp(item.fused_belief *
                                std::max(0.1, item.max_severity) * impact,
                            0.0, 0.99);
    }
    own[id] = h;
  }
  return own;
}

}  // namespace

double HealthRollup::rolled_health(const oosm::ObjectModel& model,
                                   const std::map<ObjectId, double>& own,
                                   std::map<ObjectId, double>& memo,
                                   ObjectId id) const {
  const auto cached = memo.find(id);
  if (cached != memo.end()) return cached->second;

  const auto own_it = own.find(id);
  double h = own_it != own.end() ? own_it->second : 1.0;

  const std::vector<ObjectId> children =
      model.related_to(id, oosm::Relation::PartOf);
  if (!children.empty()) {
    double worst = 1.0;
    double sum = 0.0;
    std::size_t counted = 0;
    for (const ObjectId child : children) {
      if (!own.contains(child)) continue;  // report objects etc.
      const double ch = rolled_health(model, own, memo, child);
      worst = std::min(worst, ch);
      sum += ch;
      ++counted;
    }
    if (counted > 0) {
      const double mean = sum / static_cast<double>(counted);
      const double children_health = cfg_.worst_child_weight * worst +
                                     (1.0 - cfg_.worst_child_weight) * mean;
      h *= children_health;
    }
  }
  memo[id] = h;
  return h;
}

std::map<ObjectId, HealthEntry> HealthRollup::compute(
    const PdmeExecutive& pdme) const {
  const oosm::ObjectModel& model = pdme.model();
  const std::map<ObjectId, double> own =
      own_health(pdme, model, cfg_.impact);

  std::map<ObjectId, double> memo;
  std::map<ObjectId, HealthEntry> out;
  for (const auto& [id, own_h] : own) {
    HealthEntry e;
    e.object = id;
    e.own = own_h;
    e.rolled = rolled_health(model, own, memo, id);
    out[id] = e;
  }
  return out;
}

double HealthRollup::health_of(const PdmeExecutive& pdme,
                               ObjectId object) const {
  const auto all = compute(pdme);
  const auto it = all.find(object);
  return it == all.end() ? 1.0 : it->second.rolled;
}

namespace {

void render_node(const oosm::ObjectModel& model,
                 const std::map<ObjectId, HealthEntry>& health, ObjectId id,
                 int depth, std::string& out) {
  const auto it = health.find(id);
  const double rolled = it != health.end() ? it->second.rolled : 1.0;
  const double own = it != health.end() ? it->second.own : 1.0;

  char line[192];
  std::snprintf(line, sizeof line, "%*s%-32s health %.3f (own %.3f)\n",
                depth * 2, "", model.name(id).c_str(), rolled, own);
  out += line;

  // Children, worst first.
  std::vector<ObjectId> children =
      model.related_to(id, oosm::Relation::PartOf);
  std::sort(children.begin(), children.end(),
            [&](ObjectId a, ObjectId b) {
              const auto ha = health.find(a), hb = health.find(b);
              const double va = ha != health.end() ? ha->second.rolled : 1.0;
              const double vb = hb != health.end() ? hb->second.rolled : 1.0;
              return va < vb;
            });
  for (const ObjectId child : children) {
    if (model.kind(child) == domain::EquipmentKind::Report) continue;
    render_node(model, health, child, depth + 1, out);
  }
}

}  // namespace

std::string HealthRollup::render_tree(const PdmeExecutive& pdme,
                                      ObjectId root) const {
  const auto health = compute(pdme);
  std::string out = "=== System health rollup ===\n";
  render_node(pdme.model(), health, root, 0, out);
  return out;
}

}  // namespace mpros::pdme
