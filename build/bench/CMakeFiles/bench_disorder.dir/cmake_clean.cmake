file(REMOVE_RECURSE
  "CMakeFiles/bench_disorder.dir/bench_disorder.cpp.o"
  "CMakeFiles/bench_disorder.dir/bench_disorder.cpp.o.d"
  "bench_disorder"
  "bench_disorder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_disorder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
