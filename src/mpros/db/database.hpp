#pragma once
// Database: a named collection of tables with undo-log transactions.
//
// Thread-compatible (external synchronization); the DC wraps one behind its
// scheduler thread and the OOSM behind its single-writer event loop.

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "mpros/db/table.hpp"

namespace mpros::db {

/// One redo operation, as journaled to the write-ahead log. Replaying the
/// sequence against an empty Database reproduces the current state
/// byte-for-byte (auto-key counters included — insert rows carry their
/// assigned key).
struct RedoOp {
  enum class Kind : std::uint8_t {
    CreateTable = 1,
    DropTable = 2,
    CreateIndex = 3,
    Insert = 4,
    Update = 5,
    Erase = 6,
  };
  Kind kind = Kind::Insert;
  std::string table;
  TableSchema schema;   // CreateTable
  std::string column;   // CreateIndex / Update
  std::int64_t key = 0; // Update / Erase
  Row row;              // Insert (key included as cell 0)
  Value value;          // Update
};

/// Receives every committed mutation made through a Database. The durability
/// layer implements this to build WAL commit batches; begin/commit/rollback
/// let it align batch boundaries with transactions so a rollback discards
/// exactly the ops the undo log reverted.
class JournalSink {
 public:
  virtual ~JournalSink() = default;
  virtual void journal(RedoOp op) = 0;
  virtual void journal_begin() = 0;
  virtual void journal_commit() = 0;
  virtual void journal_rollback() = 0;
};

class Database {
 public:
  Database() = default;

  /// Create a table; the schema's first column must be the INTEGER primary
  /// key. Aborts if the name already exists.
  Table& create_table(TableSchema schema);

  [[nodiscard]] bool has_table(const std::string& name) const;

  /// Aborts if absent — table names are static program structure here.
  Table& table(const std::string& name);
  [[nodiscard]] const Table& table(const std::string& name) const;

  void drop_table(const std::string& name);

  /// Journaled index creation (idempotent, like Table::create_index).
  void create_index(const std::string& table_name, const std::string& column);

  [[nodiscard]] std::vector<std::string> table_names() const;

  /// Attach (or detach with nullptr) a journal sink. Every mutation made
  /// through Database methods is forwarded; direct Table& mutations bypass
  /// it, so durable callers must go through the Database wrappers.
  void attach_journal(JournalSink* journal) { journal_ = journal; }
  [[nodiscard]] bool journaled() const { return journal_ != nullptr; }

  /// Index consistency audit across every table (see Table::index_violations).
  [[nodiscard]] std::vector<std::string> integrity_violations() const;

  // -- Transactions ---------------------------------------------------------
  // A transaction records inverse operations; rollback() replays them in
  // reverse. Transactions do not nest.

  void begin();
  void commit();
  void rollback();
  [[nodiscard]] bool in_transaction() const { return in_txn_; }

  /// Transactional row ops (usable outside a transaction too, where they
  /// just forward to the table).
  std::int64_t insert(const std::string& table_name, Row row);
  std::int64_t insert_auto(const std::string& table_name, Row row_without_key);
  bool update(const std::string& table_name, std::int64_t key,
              const std::string& column, Value v);
  bool erase(const std::string& table_name, std::int64_t key);

 private:
  struct UndoOp {
    enum class Kind { DeleteInserted, RestoreUpdated, ReinsertErased } kind;
    std::string table;
    std::int64_t key = 0;
    std::string column;  // RestoreUpdated
    Value old_value;     // RestoreUpdated
    Row old_row;         // ReinsertErased
    // DeleteInserted: the auto-key counter before the insert, so rollback
    // restores it and aborted transactions cannot perturb later auto keys.
    std::int64_t saved_next_key = 0;
  };

  std::unordered_map<std::string, std::unique_ptr<Table>> tables_;
  std::vector<UndoOp> undo_log_;
  bool in_txn_ = false;
  JournalSink* journal_ = nullptr;
};

/// Replay one redo operation against `db`, pre-validating everything a
/// hostile or torn log could get wrong (unknown table, schema mismatch,
/// duplicate key, type error) so the aborting Table contracts are never
/// tripped. Returns false — with `db` untouched — when the op is
/// inadmissible; WAL recovery treats that exactly like tail corruption.
[[nodiscard]] bool apply_redo(Database& db, RedoOp&& op);

}  // namespace mpros::db
