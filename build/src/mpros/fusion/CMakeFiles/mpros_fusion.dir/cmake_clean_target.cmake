file(REMOVE_RECURSE
  "libmpros_fusion.a"
)
