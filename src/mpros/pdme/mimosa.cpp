#include "mpros/pdme/mimosa.hpp"

#include <cstdio>
#include <set>

namespace mpros::pdme {
namespace {

/// MIMOSA identities must not contain the field delimiter.
std::string sanitize(std::string s) {
  for (char& c : s) {
    if (c == '|' || c == '\n') c = ' ';
  }
  return s;
}

}  // namespace

const char* mimosa_grade(const MaintenanceItem& item,
                         const MimosaConfig& cfg) {
  const double risk = item.fused_belief * std::max(0.1, item.max_severity);
  if (risk >= cfg.grade_critical) return "CRITICAL";
  if (risk >= cfg.grade_alert) return "ALERT";
  if (risk >= cfg.grade_warning) return "WARNING";
  return "NORMAL";
}

std::string export_mimosa(const PdmeExecutive& pdme,
                          const oosm::ObjectModel& model,
                          const MimosaConfig& cfg) {
  std::string out;
  char buf[512];
  std::snprintf(buf, sizeof buf, "HD|%s|%s|MPROS-CBM-EXPORT|1\n",
                cfg.site_id.c_str(), cfg.agent_id.c_str());
  out += buf;

  const auto items = pdme.prioritized_list();

  // Asset registry rows for every machine carrying a conclusion.
  std::set<std::uint64_t> assets;
  for (const MaintenanceItem& item : items) {
    if (!assets.insert(item.machine.value()).second) continue;
    const bool known = model.exists(item.machine);
    std::snprintf(buf, sizeof buf, "AS|%s|%llu|%s|%s\n",
                  cfg.site_id.c_str(),
                  static_cast<unsigned long long>(item.machine.value()),
                  known ? sanitize(model.name(item.machine)).c_str()
                        : "unknown",
                  known ? domain::to_string(model.kind(item.machine))
                        : "Unknown");
    out += buf;
  }

  for (const MaintenanceItem& item : items) {
    std::snprintf(buf, sizeof buf, "HA|%s|%llu|%s|%s|%.4f|%.3f|%zu\n",
                  cfg.site_id.c_str(),
                  static_cast<unsigned long long>(item.machine.value()),
                  sanitize(domain::condition_text(item.mode)).c_str(),
                  mimosa_grade(item, cfg), item.fused_belief,
                  item.max_severity, item.report_count);
    out += buf;

    // Proposed maintenance event when the predicted horizon is bounded.
    if (item.median_ttf.has_value() || item.p90_ttf.has_value()) {
      const double p50 =
          item.median_ttf ? item.median_ttf->days() : -1.0;
      const double p90 = item.p90_ttf ? item.p90_ttf->days() : -1.0;
      // Recommendation from the most recent report naming this condition.
      std::string recommendation;
      for (const net::FailureReport& r : pdme.reports_for(item.machine)) {
        if (r.machine_condition == domain::condition_id(item.mode) &&
            !r.recommendations.empty()) {
          recommendation = r.recommendations;
        }
      }
      std::snprintf(buf, sizeof buf, "PE|%s|%llu|%s|%s|%.1f|%.1f\n",
                    cfg.site_id.c_str(),
                    static_cast<unsigned long long>(item.machine.value()),
                    sanitize(domain::condition_text(item.mode)).c_str(),
                    sanitize(recommendation).c_str(), p50, p90);
      out += buf;
    }
  }
  return out;
}

}  // namespace mpros::pdme
