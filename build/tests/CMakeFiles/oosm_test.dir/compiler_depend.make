# Empty compiler generated dependencies file for oosm_test.
# This may be replaced when dependencies are built.
