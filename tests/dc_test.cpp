// Data Concentrator tests: scheduler, analyzer orchestration, DC database,
// report emission.

#include <gtest/gtest.h>

#include "mpros/dc/data_concentrator.hpp"
#include "mpros/dc/scheduler.hpp"

namespace mpros::dc {
namespace {

using domain::FailureMode;

TEST(EventSchedulerTest, PeriodicTasksFireInOrder) {
  EventScheduler sched;
  std::vector<std::pair<std::string, double>> log;
  sched.add_periodic("fast", SimTime::from_seconds(10), SimTime::from_seconds(10),
                     [&](SimTime now) { log.push_back({"fast", now.seconds()}); });
  sched.add_periodic("slow", SimTime::from_seconds(25), SimTime::from_seconds(25),
                     [&](SimTime now) { log.push_back({"slow", now.seconds()}); });

  sched.run_until(SimTime::from_seconds(50));
  // fast: 10,20,30,40,50; slow: 25,50.
  ASSERT_EQ(log.size(), 7u);
  EXPECT_EQ(log[0].first, "fast");
  EXPECT_EQ(log[2].first, "slow");
  double prev = 0.0;
  for (const auto& [name, t] : log) {
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST(EventSchedulerTest, RunUntilReturnsExecutionCount) {
  EventScheduler sched;
  sched.add_periodic("t", SimTime::from_seconds(1), SimTime::from_seconds(1),
                     [](SimTime) {});
  EXPECT_EQ(sched.run_until(SimTime::from_seconds(5)), 5u);
  EXPECT_EQ(sched.run_until(SimTime::from_seconds(5)), 0u);  // nothing new
}

TEST(EventSchedulerTest, RequestNowInjectsExtraRun) {
  EventScheduler sched;
  int runs = 0;
  const auto id = sched.add_periodic("t", SimTime::from_seconds(100),
                                     SimTime::from_seconds(100),
                                     [&](SimTime) { ++runs; });
  sched.request_now(id);
  sched.run_until(SimTime::from_seconds(1));
  EXPECT_EQ(runs, 1);  // on-demand run before the first natural slot
  sched.run_until(SimTime::from_seconds(100));
  EXPECT_EQ(runs, 2);  // natural period unaffected
}

class DataConcentratorTest : public ::testing::Test {
 protected:
  DataConcentratorTest() : chiller_(make_chiller_config()) {}

  static plant::ChillerConfig make_chiller_config() {
    plant::ChillerConfig cfg;
    cfg.load_fraction = 0.85;
    cfg.seed = 0xD0;
    return cfg;
  }

  DcConfig dc_config() {
    DcConfig cfg;
    cfg.id = DcId(7);
    cfg.vibration_period = SimTime::from_seconds(300);
    cfg.process_period = SimTime::from_seconds(60);
    return cfg;
  }

  MachineRefs refs_{ObjectId(1), ObjectId(2), ObjectId(3), ObjectId(4)};
  plant::ChillerSimulator chiller_;
};

TEST_F(DataConcentratorTest, HealthyPlantStaysMostlyQuiet) {
  DataConcentrator dc(dc_config(), refs_, chiller_);
  const auto reports = dc.advance_to(SimTime::from_hours(1.0));
  EXPECT_LE(reports.size(), 2u);  // noise may cause an occasional blip
  EXPECT_EQ(dc.stats().vibration_tests, 12u);
  EXPECT_EQ(dc.stats().process_scans, 60u);
}

TEST_F(DataConcentratorTest, ImbalanceProducesDliReportAgainstMotor) {
  chiller_.faults().schedule({FailureMode::MotorImbalance, SimTime(0),
                              SimTime(0), 0.9,
                              plant::GrowthProfile::Step});
  DataConcentrator dc(dc_config(), refs_, chiller_);
  const auto reports = dc.advance_to(SimTime::from_hours(1.0));

  bool found = false;
  for (const net::FailureReport& r : reports) {
    if (r.machine_condition ==
            domain::condition_id(FailureMode::MotorImbalance) &&
        r.knowledge_source == kDliExpertSystem) {
      found = true;
      EXPECT_EQ(r.sensed_object, refs_.motor);
      EXPECT_EQ(r.dc, DcId(7));
      EXPECT_GT(r.severity, 0.3);
      EXPECT_GT(r.belief, 0.5);
      EXPECT_FALSE(r.prognostics.empty());
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(DataConcentratorTest, ProcessFaultProducesFuzzyReport) {
  chiller_.faults().schedule({FailureMode::RefrigerantLeak, SimTime(0),
                              SimTime(0), 1.0, plant::GrowthProfile::Step});
  DataConcentrator dc(dc_config(), refs_, chiller_);
  const auto reports = dc.advance_to(SimTime::from_hours(1.0));

  bool fuzzy_found = false;
  for (const net::FailureReport& r : reports) {
    if (r.knowledge_source == kFuzzyLogic &&
        r.machine_condition ==
            domain::condition_id(FailureMode::RefrigerantLeak)) {
      fuzzy_found = true;
      EXPECT_EQ(r.sensed_object, refs_.chiller);
    }
  }
  EXPECT_TRUE(fuzzy_found);
}

TEST_F(DataConcentratorTest, SbfrThresholdMachineReportsOnTrend) {
  // A hard bearing-temperature fault drives the SBFR threshold machine.
  chiller_.faults().schedule({FailureMode::CompressorBearingWear, SimTime(0),
                              SimTime(0), 1.0, plant::GrowthProfile::Step});
  DataConcentrator dc(dc_config(), refs_, chiller_);
  const auto reports = dc.advance_to(SimTime::from_hours(2.0));

  bool sbfr_found = false;
  for (const net::FailureReport& r : reports) {
    if (r.knowledge_source == kSbfr) sbfr_found = true;
  }
  EXPECT_TRUE(sbfr_found);
}

TEST_F(DataConcentratorTest, DatabaseAccumulatesMeasurementsAndDiagnostics) {
  chiller_.faults().schedule({FailureMode::MotorImbalance, SimTime(0),
                              SimTime(0), 0.9, plant::GrowthProfile::Step});
  DataConcentrator dc(dc_config(), refs_, chiller_);
  dc.advance_to(SimTime::from_hours(1.0));

  // 60 process scans x 11 variables.
  EXPECT_EQ(dc.database().table("measurements").row_count(), 60u * 11u);
  EXPECT_GT(dc.database().table("diagnostics").row_count(), 0u);
  EXPECT_GT(dc.database().table("test_log").row_count(), 0u);

  // Diagnostics are queryable by condition id via the secondary index.
  const auto keys = dc.database().table("diagnostics").lookup(
      "condition",
      db::Value(static_cast<std::int64_t>(
          domain::condition_id(FailureMode::MotorImbalance).value())));
  EXPECT_FALSE(keys.empty());
}

TEST_F(DataConcentratorTest, OnDemandVibrationTestRunsEarly) {
  chiller_.faults().schedule({FailureMode::MotorImbalance, SimTime(0),
                              SimTime(0), 0.9, plant::GrowthProfile::Step});
  DataConcentrator dc(dc_config(), refs_, chiller_);
  dc.request_vibration_test();
  const auto reports = dc.advance_to(SimTime::from_seconds(30.0));
  // The periodic slot (300 s) has not arrived, yet the commanded test ran.
  EXPECT_EQ(dc.stats().vibration_tests, 1u);
  EXPECT_FALSE(reports.empty());
}

TEST_F(DataConcentratorTest, DisabledAnalyzersStaySilent) {
  chiller_.faults().schedule({FailureMode::MotorImbalance, SimTime(0),
                              SimTime(0), 0.9, plant::GrowthProfile::Step});
  DcConfig cfg = dc_config();
  cfg.enable_dli = false;
  cfg.enable_fuzzy = false;
  cfg.enable_sbfr = false;
  DataConcentrator dc(cfg, refs_, chiller_);
  const auto reports = dc.advance_to(SimTime::from_hours(1.0));
  EXPECT_TRUE(reports.empty());
}

TEST_F(DataConcentratorTest, KnowledgeSourceNames) {
  EXPECT_STREQ(knowledge_source_name(kDliExpertSystem), "DLI Expert System");
  EXPECT_STREQ(knowledge_source_name(kSbfr), "SBFR");
  EXPECT_STREQ(knowledge_source_name(kWaveletNeuralNet),
               "Wavelet Neural Net");
  EXPECT_STREQ(knowledge_source_name(kFuzzyLogic), "Fuzzy Logic");
}

}  // namespace
}  // namespace mpros::dc
