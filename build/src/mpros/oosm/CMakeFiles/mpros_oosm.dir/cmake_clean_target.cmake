file(REMOVE_RECURSE
  "libmpros_oosm.a"
)
