#pragma once
// The sharded ingestion pipeline behind the PDME executive (E18).
//
// Topology: the driver thread routes each report to the shard its machine
// hashes to (splitmix64 of the ObjectId), through a bounded queue with
// explicit backpressure; one worker thread per shard drains its queue into
// its own FusionCore. Because every report for a machine lands on the same
// shard's FIFO in global arrival order, per-stream ordering is preserved —
// the E9 disorder invariants and E17 gap/duplicate bookkeeping see exactly
// the sequence the single-threaded executive would have.
//
// Aggregation: workers never touch the OOSM or the network. They defer
// report-object posts and retest candidates, tagged with the global arrival
// order; quiesce() blocks the driver until every submitted task is retired,
// after which take_pending_posts()/take_pending_retests() hand back the
// deferred work sorted by that order. Replayed in order on the driver
// thread, the posts create identical OOSM objects (same ids, same names)
// regardless of shard count — the N-shard vs 1-shard equivalence the
// property tests pin down.
//
// Thread-safety: each shard's core (and its deferred-post list) is guarded
// by the shard mutex; submit()/quiesce()/take_* are driver-thread-only.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "mpros/common/bounded_queue.hpp"
#include "mpros/net/messages.hpp"
#include "mpros/pdme/fusion_core.hpp"

namespace mpros::telemetry {
class Gauge;
}  // namespace mpros::telemetry

namespace mpros::pdme {

/// One unit of shard work: every report from one submitted span that routed
/// to this shard, each with its global arrival order. Batching a span into
/// one task per shard means one queue push (one lock round-trip, one
/// submitted/retired barrier tick) amortized over the whole batch instead
/// of per report.
struct ShardTask {
  struct Item {
    net::FailureReport report;
    std::uint64_t order = 0;
  };
  std::vector<Item> items;
  /// True for reports arriving through submit()/the wire: the worker dedups
  /// them and defers an OOSM post. False for reports reconstructed from
  /// objects a third party already posted into the model — those fuse
  /// without dedup and without a second post, matching the inline listener.
  bool needs_post = true;
  std::chrono::steady_clock::time_point enqueued{};
};

/// A report-object post deferred until the aggregation barrier.
struct PendingPost {
  net::FailureReport report;
  std::uint64_t order = 0;
};

class ShardExecutor {
 public:
  struct SpanResult {
    bool was_full = false;  ///< backpressure engaged (blocked or evicted)
    /// Reports that hit a full queue, counted per report so batch-sized
    /// losses are never under-reported: under DropOldest, the reports
    /// inside every evicted task (those never fuse — the count preserves
    /// `reports_accepted + queue_full == submitted`); under Block, the
    /// reports in each push that had to wait (delayed, not lost).
    std::uint64_t overflow_reports = 0;
  };

  /// Spawns `cfg.shard_count` workers. `retest_enabled` is the executive's
  /// attached-to-network flag, read by workers at fuse time.
  ShardExecutor(const PdmeConfig& cfg,
                const std::atomic<bool>& retest_enabled);
  ~ShardExecutor();

  ShardExecutor(const ShardExecutor&) = delete;
  ShardExecutor& operator=(const ShardExecutor&) = delete;

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] std::size_t shard_of(ObjectId machine) const;

  /// Driver thread only: route a span of reports to their shards, one queue
  /// push per shard touched. Report i gets global order `base_order + i`;
  /// per-shard FIFO order is preserved, so fused state stays byte-identical
  /// to singleton submissions of the same stream. Blocks while a shard
  /// queue is full under OverflowPolicy::Block.
  SpanResult submit_span(std::span<const net::ReportEnvelope> run,
                         std::uint64_t base_order, bool needs_post);

  /// Driver thread only: wait until every submitted task has been processed
  /// (or evicted). On return the shard cores are at rest — the snapshot
  /// point for aggregation and race-free queries.
  void quiesce();

  /// Deferred OOSM posts from all shards, sorted by global arrival order.
  [[nodiscard]] std::vector<PendingPost> take_pending_posts();
  /// Deferred retest candidates from all shards, sorted likewise.
  [[nodiscard]] std::vector<PendingRetest> take_pending_retests();

  /// Run `f(const FusionCore&)` for the core owning `machine`, under its
  /// shard lock.
  template <typename F>
  decltype(auto) with_core(ObjectId machine, F&& f) const {
    const Shard& s = *shards_[shard_of(machine)];
    std::lock_guard lock(s.mu);
    return f(static_cast<const FusionCore&>(s.core));
  }

  /// Mutable variant (reset_machine, rebuild) — still driver-coordinated.
  template <typename F>
  decltype(auto) with_core_mut(ObjectId machine, F&& f) {
    Shard& s = *shards_[shard_of(machine)];
    std::lock_guard lock(s.mu);
    return f(s.core);
  }

  /// Visit every core in shard order, each under its shard lock.
  template <typename F>
  void for_each_core(F&& f) const {
    for (const auto& shard : shards_) {
      std::lock_guard lock(shard->mu);
      f(static_cast<const FusionCore&>(shard->core));
    }
  }

 private:
  struct Shard {
    Shard(const PdmeConfig& cfg, telemetry::Gauge& depth_gauge)
        : queue(cfg.shard_queue_capacity, cfg.overflow_policy),
          core(cfg),
          depth(depth_gauge) {}

    BoundedQueue<ShardTask> queue;
    mutable std::mutex mu;  ///< guards core + pending_posts
    FusionCore core;
    std::vector<PendingPost> pending_posts;
    telemetry::Gauge& depth;  ///< "pdme.shard<i>.depth"
    std::thread worker;
  };

  void worker_loop(Shard& shard);
  void retire_one();

  const bool deduplicate_;
  const std::atomic<bool>& retest_enabled_;
  std::vector<std::unique_ptr<Shard>> shards_;

  // Quiesce barrier: the driver counts submitted TASKS (one per shard
  // touched by a span), workers count completions (evictions are retired by
  // the driver — the worker never sees them). Both counters are guarded by
  // barrier_mu_; submit_span() and quiesce() run on the driver thread only,
  // so no new work can slip in while quiesce() waits.
  std::mutex barrier_mu_;
  std::condition_variable barrier_cv_;
  std::uint64_t submitted_ = 0;
  std::uint64_t retired_ = 0;
};

}  // namespace mpros::pdme
