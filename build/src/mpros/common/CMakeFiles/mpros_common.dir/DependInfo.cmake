
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mpros/common/assert.cpp" "src/mpros/common/CMakeFiles/mpros_common.dir/assert.cpp.o" "gcc" "src/mpros/common/CMakeFiles/mpros_common.dir/assert.cpp.o.d"
  "/root/repo/src/mpros/common/clock.cpp" "src/mpros/common/CMakeFiles/mpros_common.dir/clock.cpp.o" "gcc" "src/mpros/common/CMakeFiles/mpros_common.dir/clock.cpp.o.d"
  "/root/repo/src/mpros/common/log.cpp" "src/mpros/common/CMakeFiles/mpros_common.dir/log.cpp.o" "gcc" "src/mpros/common/CMakeFiles/mpros_common.dir/log.cpp.o.d"
  "/root/repo/src/mpros/common/thread_pool.cpp" "src/mpros/common/CMakeFiles/mpros_common.dir/thread_pool.cpp.o" "gcc" "src/mpros/common/CMakeFiles/mpros_common.dir/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
