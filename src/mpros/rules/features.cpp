#include "mpros/rules/features.hpp"

#include <algorithm>
#include <cmath>

#include "mpros/common/assert.hpp"
#include "mpros/dsp/envelope.hpp"
#include "mpros/dsp/fft.hpp"
#include "mpros/dsp/spectrum.hpp"
#include "mpros/dsp/stats.hpp"
#include "mpros/telemetry/metrics.hpp"

namespace mpros::rules {

void FeatureFrame::set(std::string key, double value) {
  if (!std::isfinite(value)) {
    static auto& nonfinite =
        telemetry::Registry::instance().counter("rules.nonfinite_inputs");
    nonfinite.inc();
    return;
  }
  values_[std::move(key)] = value;
}

double FeatureFrame::get(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

std::optional<double> FeatureFrame::maybe(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

FeatureExtractor::FeatureExtractor(domain::MachineSignature signature,
                                   ExtractorConfig cfg)
    : signature_(signature), cfg_(cfg) {}

void FeatureExtractor::extract_vibration(std::span<const double> waveform,
                                         double sample_rate_hz,
                                         FeatureFrame& frame) const {
  MPROS_EXPECTS(waveform.size() >= 64);
  const double shaft = signature_.shaft_hz;

  // Per-thread reusable outputs: the acquisition loop calls this at a steady
  // record size, so after the first pass the whole DSP chain below (cached
  // plans + windows + these buffers) performs no heap allocation.
  static thread_local dsp::Spectrum spec;
  static thread_local dsp::Spectrum env_spec;
  static thread_local std::vector<double> env;

  dsp::SpectrumConfig scfg;
  scfg.fft_size =
      std::max(cfg_.fft_size, dsp::next_power_of_two(waveform.size()));
  dsp::amplitude_spectrum(waveform, sample_rate_hz, scfg, spec);

  const auto order = [&](double k) {
    return dsp::order_amplitude(spec, shaft, k, cfg_.order_tolerance);
  };

  frame.set(feat::kOrderHalf, order(0.5));
  frame.set(feat::kOrder1, order(1.0));
  frame.set(feat::kOrder2, order(2.0));
  frame.set(feat::kOrder3, order(3.0));
  frame.set(feat::kOrder4, order(4.0));

  double series = 0.0;
  for (int k = 1; k <= 6; ++k) {
    const double a = order(static_cast<double>(k));
    series += a * a;
  }
  frame.set(feat::kHarmonicSeries, std::sqrt(series));

  double sub = 0.0;
  for (double k : {0.5, 1.5, 2.5}) {
    const double a = order(k);
    sub += a * a;
  }
  frame.set(feat::kSubharmonics, std::sqrt(sub));

  // Gear mesh and its +/- 1x-shaft sidebands (wear modulates the mesh tone).
  const double gmf = signature_.gear_mesh_hz();
  if (gmf < sample_rate_hz / 2.0) {
    frame.set(feat::kGearMesh,
              spec.band_peak(gmf - shaft * cfg_.order_tolerance,
                             gmf + shaft * cfg_.order_tolerance));
    const double sb_lo = spec.band_peak(gmf - shaft * 1.1, gmf - shaft * 0.9);
    const double sb_hi = spec.band_peak(gmf + shaft * 0.9, gmf + shaft * 1.1);
    frame.set(feat::kGearSidebands, std::sqrt(sb_lo * sb_lo + sb_hi * sb_hi));
  }

  // Compressor vane passing (on the high-speed shaft).
  const double vpf = signature_.vane_pass_hz();
  if (vpf < sample_rate_hz / 2.0) {
    frame.set(feat::kVanePass,
              spec.band_peak(vpf * (1.0 - cfg_.order_tolerance),
                             vpf * (1.0 + cfg_.order_tolerance)));
  }

  // Broadband high-frequency energy (cavitation raises the floor).
  frame.set(feat::kBroadbandHf,
            std::sqrt(spec.band_energy(
                std::min(5000.0, sample_rate_hz * 0.25),
                std::min(12000.0, sample_rate_hz * 0.45))));

  // Bearing tones via envelope demodulation of the resonance band.
  const double band_hi = std::min(cfg_.envelope_band_hi_hz,
                                  sample_rate_hz * 0.45);
  if (cfg_.envelope_band_lo_hz < band_hi) {
    dsp::envelope_bandpassed(waveform, sample_rate_hz,
                             cfg_.envelope_band_lo_hz, band_hi, env);
    // Remove the DC component of the envelope before the spectrum.
    const double env_mean = dsp::mean(env);
    for (double& v : env) v -= env_mean;
    dsp::amplitude_spectrum(env, sample_rate_hz, scfg, env_spec);

    // Motor bearings ride the motor shaft; the compressor's angular-contact
    // set rides the high-speed shaft after the speed increaser.
    const double hss = signature_.high_speed_shaft_hz();
    const auto env_order = [&](double base_hz, double k) {
      return dsp::order_amplitude(env_spec, base_hz, k, 0.08);
    };
    frame.set(feat::kBpfo, env_order(shaft, signature_.bearing.bpfo));
    frame.set(feat::kBpfi, env_order(shaft, signature_.bearing.bpfi));
    frame.set(feat::kBsf, env_order(hss, signature_.hss_bearing.bsf));
    frame.set(feat::kFtf, env_order(hss, signature_.hss_bearing.ftf));
  }

  const dsp::Moments m = dsp::moments(waveform);
  frame.set(feat::kOverallRms, dsp::rms(waveform));
  frame.set(feat::kCrestFactor, dsp::crest_factor(waveform));
  frame.set(feat::kKurtosis, m.kurtosis);
}

void FeatureExtractor::extract_current(std::span<const double> waveform,
                                       double sample_rate_hz,
                                       double load_fraction,
                                       FeatureFrame& frame) const {
  MPROS_EXPECTS(waveform.size() >= 64);
  const double line = signature_.line_hz;

  // Current-signature analysis needs sub-Hz resolution to resolve the
  // pole-pass sidebands around the line component, so the FFT length
  // follows the (long, low-rate) record rather than the vibration default.
  static thread_local dsp::Spectrum spec;
  dsp::SpectrumConfig scfg;
  scfg.fft_size = dsp::next_power_of_two(waveform.size());
  dsp::amplitude_spectrum(waveform, sample_rate_hz, scfg, spec);

  const double fundamental = spec.band_peak(line * 0.98, line * 1.02);
  frame.set(feat::kCurrentRms, dsp::rms(waveform));
  frame.set(feat::kTwiceLine, spec.band_peak(line * 1.96, line * 2.04));

  // Broken rotor bars put sidebands at line +/- 2*slip*pole_pairs. Express
  // them relative to the fundamental in dB below carrier (positive = deeper
  // = healthier); rules alarm when the value drops.
  const double pole_pass =
      2.0 * signature_.slip_hz(std::clamp(load_fraction, 0.05, 1.0)) *
      signature_.pole_pairs;
  const double lo = spec.band_peak(line - pole_pass * 1.25,
                                   line - pole_pass * 0.75);
  const double hi = spec.band_peak(line + pole_pass * 0.75,
                                   line + pole_pass * 1.25);
  const double sideband = std::max(lo, hi);
  const double db_below =
      (fundamental > 0.0 && sideband > 0.0)
          ? 20.0 * std::log10(fundamental / sideband)
          : 80.0;  // no visible sideband: report a deep (healthy) floor
  frame.set(feat::kPolePassSidebands, db_below);
}

}  // namespace mpros::rules
