#include "mpros/oosm/ship_builder.hpp"

namespace mpros::oosm {

using domain::EquipmentKind;

ChillerPlant build_chiller_plant(ObjectModel& model, ObjectId parent,
                                 std::size_t plant_number) {
  const std::string n = std::to_string(plant_number);
  ChillerPlant plant;

  plant.chiller = model.create_object("AC Plant " + n, EquipmentKind::Chiller);
  model.relate(plant.chiller, Relation::PartOf, parent);

  plant.motor = model.create_object("A/C Compressor Motor " + n,
                                    EquipmentKind::InductionMotor);
  plant.gearbox = model.create_object("A/C Speed Increaser " + n,
                                      EquipmentKind::GearTransmission);
  plant.compressor = model.create_object("A/C Compressor " + n,
                                         EquipmentKind::CentrifugalCompressor);
  plant.evaporator =
      model.create_object("A/C Evaporator " + n, EquipmentKind::Evaporator);
  plant.condenser =
      model.create_object("A/C Condenser " + n, EquipmentKind::Condenser);
  plant.chw_pump = model.create_object("Chilled Water Pump " + n,
                                       EquipmentKind::CentrifugalPump);
  plant.cw_pump = model.create_object("Condenser Water Pump " + n,
                                      EquipmentKind::CentrifugalPump);

  for (const ObjectId part :
       {plant.motor, plant.gearbox, plant.compressor, plant.evaporator,
        plant.condenser, plant.chw_pump, plant.cw_pump}) {
    model.relate(part, Relation::PartOf, plant.chiller);
  }

  // Proximity: the drive line sits together on the chiller skid; the pumps
  // flank their heat exchangers.
  model.relate(plant.motor, Relation::Proximity, plant.gearbox);
  model.relate(plant.gearbox, Relation::Proximity, plant.compressor);
  model.relate(plant.compressor, Relation::Proximity, plant.evaporator);
  model.relate(plant.chw_pump, Relation::Proximity, plant.evaporator);
  model.relate(plant.cw_pump, Relation::Proximity, plant.condenser);

  // Refrigerant flow loop: compressor -> condenser -> evaporator ->
  // compressor (expansion device folded into the evaporator object).
  model.relate(plant.compressor, Relation::FlowTo, plant.condenser);
  model.relate(plant.condenser, Relation::FlowTo, plant.evaporator);
  model.relate(plant.evaporator, Relation::FlowTo, plant.compressor);
  // Water loops.
  model.relate(plant.chw_pump, Relation::FlowTo, plant.evaporator);
  model.relate(plant.cw_pump, Relation::FlowTo, plant.condenser);
  // Mechanical power flow through the drive line.
  model.relate(plant.motor, Relation::FlowTo, plant.gearbox);
  model.relate(plant.gearbox, Relation::FlowTo, plant.compressor);

  // Instrumentation: one accelerometer per rotating machine, plus the
  // process sensor suite.
  const struct {
    ObjectId host;
    const char* label;
  } accels[] = {{plant.motor, "Accel Motor "},
                {plant.gearbox, "Accel Gearbox "},
                {plant.compressor, "Accel Compressor "}};
  for (const auto& a : accels) {
    const ObjectId sensor =
        model.create_object(a.label + n, EquipmentKind::Sensor);
    model.relate(sensor, Relation::PartOf, a.host);
    plant.accelerometers.push_back(sensor);
  }

  const struct {
    ObjectId host;
    const char* label;
  } process[] = {{plant.evaporator, "Evap Pressure "},
                 {plant.condenser, "Cond Pressure "},
                 {plant.motor, "Winding RTD "},
                 {plant.compressor, "Bearing RTD "},
                 {plant.compressor, "Oil Pressure "},
                 {plant.compressor, "Oil Temp "}};
  for (const auto& p : process) {
    const ObjectId sensor =
        model.create_object(p.label + n, EquipmentKind::Sensor);
    model.relate(sensor, Relation::PartOf, p.host);
    plant.process_sensors.push_back(sensor);
  }

  return plant;
}

ShipModel build_ship(ObjectModel& model, const std::string& ship_name,
                     std::size_t decks, std::size_t plants_per_deck) {
  ShipModel ship;
  ship.ship = model.create_object(ship_name, EquipmentKind::Ship);

  std::size_t plant_number = 1;
  for (std::size_t d = 0; d < decks; ++d) {
    const ObjectId deck = model.create_object(
        "Deck " + std::to_string(d + 1), EquipmentKind::Deck);
    model.relate(deck, Relation::PartOf, ship.ship);
    ship.decks.push_back(deck);

    for (std::size_t p = 0; p < plants_per_deck; ++p) {
      ship.plants.push_back(build_chiller_plant(model, deck, plant_number));
      ++plant_number;
    }
  }
  return ship;
}

}  // namespace mpros::oosm
