file(REMOVE_RECURSE
  "CMakeFiles/disordered_reports.dir/disordered_reports.cpp.o"
  "CMakeFiles/disordered_reports.dir/disordered_reports.cpp.o.d"
  "disordered_reports"
  "disordered_reports.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disordered_reports.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
