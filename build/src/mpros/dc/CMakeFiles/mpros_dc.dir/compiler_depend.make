# Empty compiler generated dependencies file for mpros_dc.
# This may be replaced when dependencies are built.
