#include "mpros/db/value.hpp"

#include <cmath>
#include <cstdio>

#include "mpros/common/assert.hpp"

namespace mpros::db {

std::int64_t Value::as_integer() const {
  MPROS_EXPECTS(std::holds_alternative<std::int64_t>(v_));
  return std::get<std::int64_t>(v_);
}

double Value::as_real() const {
  MPROS_EXPECTS(std::holds_alternative<double>(v_));
  return std::get<double>(v_);
}

const std::string& Value::as_text() const {
  MPROS_EXPECTS(std::holds_alternative<std::string>(v_));
  return std::get<std::string>(v_);
}

double Value::numeric() const {
  if (std::holds_alternative<std::int64_t>(v_)) {
    return static_cast<double>(std::get<std::int64_t>(v_));
  }
  MPROS_EXPECTS(std::holds_alternative<double>(v_));
  return std::get<double>(v_);
}

bool Value::less(const Value& other) const {
  const auto rank = [](const Value& v) {
    switch (v.type()) {
      case ValueType::Null: return 0;
      case ValueType::Integer:
      case ValueType::Real: return 1;
      case ValueType::Text: return 2;
    }
    return 3;
  };
  const int ra = rank(*this), rb = rank(other);
  if (ra != rb) return ra < rb;
  switch (ra) {
    case 0: return false;  // nulls equal
    case 1: {
      // Two Integers compare exactly: going through double collapses
      // distinct int64s above 2^53, which made indexed lookups return
      // rows for the wrong key.
      if (type() == ValueType::Integer && other.type() == ValueType::Integer) {
        return as_integer() < other.as_integer();
      }
      const double a = numeric();
      const double b = other.numeric();
      // NaN sorts below every other numeric (two NaNs are equivalent).
      // Raw `a < b` is false for every NaN comparison, which breaks the
      // strict weak ordering std::multimap needs and let unindex_row
      // miss NaN entries, leaving dangling index references.
      const bool a_nan = std::isnan(a);
      const bool b_nan = std::isnan(b);
      if (a_nan || b_nan) return a_nan && !b_nan;
      return a < b;
    }
    default: return as_text() < other.as_text();
  }
}

std::string Value::to_string() const {
  switch (type()) {
    case ValueType::Null: return "NULL";
    case ValueType::Integer: return std::to_string(as_integer());
    case ValueType::Real: {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%g", as_real());
      return buf;
    }
    case ValueType::Text: return as_text();
  }
  return "?";
}

const char* to_string(ValueType t) {
  switch (t) {
    case ValueType::Null: return "NULL";
    case ValueType::Integer: return "INTEGER";
    case ValueType::Real: return "REAL";
    case ValueType::Text: return "TEXT";
  }
  return "?";
}

}  // namespace mpros::db
