#include "mpros/domain/equipment.hpp"

namespace mpros::domain {

const char* to_string(EquipmentKind k) {
  switch (k) {
    case EquipmentKind::InductionMotor: return "InductionMotor";
    case EquipmentKind::GearTransmission: return "GearTransmission";
    case EquipmentKind::CentrifugalCompressor: return "CentrifugalCompressor";
    case EquipmentKind::CentrifugalPump: return "CentrifugalPump";
    case EquipmentKind::Evaporator: return "Evaporator";
    case EquipmentKind::Condenser: return "Condenser";
    case EquipmentKind::Chiller: return "Chiller";
    case EquipmentKind::Ship: return "Ship";
    case EquipmentKind::Deck: return "Deck";
    case EquipmentKind::Sensor: return "Sensor";
    case EquipmentKind::Report: return "Report";
    case EquipmentKind::KnowledgeSource: return "KnowledgeSource";
  }
  return "?";
}

double MachineSignature::slip_hz(double load_fraction) const {
  // Synchronous speed minus shaft speed scales roughly linearly with load;
  // anchor full-load slip to the signature's rated shaft speed.
  const double sync_hz = line_hz / pole_pairs;
  const double full_load_slip = sync_hz - shaft_hz;
  return full_load_slip * load_fraction;
}

double MachineSignature::gear_mesh_hz() const {
  return shaft_hz * gear_teeth_in;
}

double MachineSignature::high_speed_shaft_hz() const {
  return shaft_hz * static_cast<double>(gear_teeth_in) /
         static_cast<double>(gear_teeth_out);
}

double MachineSignature::vane_pass_hz() const {
  return high_speed_shaft_hz() * impeller_vanes;
}

MachineSignature navy_chiller_signature() { return MachineSignature{}; }

ProcessNominals navy_chiller_nominals() { return ProcessNominals{}; }

}  // namespace mpros::domain
