// E6/E11 — Expert-system agreement and severity calibration.
//
// Paper claim (§6.1): the DLI expert system "exceeds 95% agreement with
// human expert analysts for machinery aboard the Nimitz class ships". Our
// ground truth is the injected fault, standing in for the analyst: the
// harness seeds every failure mode at randomized severities, runs the
// DC-resident analyzers (DLI rules + fuzzy logic), and scores top-1
// agreement plus a confusion summary. E11's severity-gradient mapping
// (Slight/Moderate/Serious/Extreme -> none/months/weeks/days) prints as a
// severity sweep.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>

#include "mpros/common/rng.hpp"
#include "mpros/fuzzy/chiller_fuzzy.hpp"
#include "mpros/plant/chiller.hpp"
#include "mpros/rules/dli_rules.hpp"

namespace {

using namespace mpros;
using domain::FailureMode;


/// One trial: seed `mode` at `severity`, run both analyzers, return the
/// top-ranked diagnosis (or nullopt when nothing fires).
std::optional<FailureMode> diagnose_trial(FailureMode mode, double severity,
                                          std::uint64_t seed) {
  plant::ChillerConfig cfg;
  cfg.seed = seed;
  plant::ChillerSimulator chiller(cfg);
  chiller.faults().schedule({mode, SimTime(0), SimTime(0), severity,
                             plant::GrowthProfile::Step});
  // Let process variables settle onto the fault's operating point.
  chiller.advance(SimTime::from_hours(1.0));

  const rules::FeatureExtractor extractor(chiller.signature());
  const rules::RuleEngine engine(rules::chiller_rulebase());
  const fuzzy::FuzzyDiagnoser fuzzy_dx;
  const rules::BelievabilityTable beliefs;
  const auto process = chiller.process_snapshot();

  std::optional<FailureMode> best;
  double best_severity = 0.0;
  const auto consider = [&](const rules::Diagnosis& d) {
    if (d.severity > best_severity) {
      best_severity = d.severity;
      best = d.mode;
    }
  };

  std::vector<double> vib(8192);
  for (const auto point :
       {plant::MachinePoint::Motor, plant::MachinePoint::Gearbox,
        plant::MachinePoint::Compressor}) {
    chiller.acquire_vibration(point, 40960.0, vib);
    rules::FeatureFrame frame;
    extractor.extract_vibration(vib, 40960.0, frame);
    if (point == plant::MachinePoint::Motor) {
      std::vector<double> current(32768);
      chiller.acquire_current(4096.0, current);
      extractor.extract_current(current, 4096.0, chiller.load(), frame);
    }
    for (const auto& [k, v] : process) frame.set(k, v);
    for (const auto& d : engine.evaluate(frame, beliefs)) consider(d);
  }
  for (const auto& d : fuzzy_dx.evaluate(process, beliefs)) consider(d);
  return best;
}

void print_agreement_table() {
  Rng rng(0xE6);
  constexpr int kTrialsPerMode = 12;
  std::size_t agree = 0, total = 0, missed = 0;
  std::map<std::pair<FailureMode, FailureMode>, int> confusion;

  std::printf("\nE6 expert-system agreement (paper: >95%% with analysts)\n");
  for (const FailureMode mode : domain::all_failure_modes()) {
    int mode_agree = 0;
    for (int t = 0; t < kTrialsPerMode; ++t) {
      const double severity = rng.uniform(0.6, 0.95);
      const auto result =
          diagnose_trial(mode, severity, 0xACC0 + 131 * total);
      ++total;
      if (result == mode) {
        ++agree;
        ++mode_agree;
      } else if (!result) {
        ++missed;
      } else {
        ++confusion[{mode, *result}];
      }
    }
    std::printf("  %-26s %2d/%d\n", domain::to_string(mode), mode_agree,
                kTrialsPerMode);
  }
  std::printf("  ------------------------------------\n");
  std::printf("  overall top-1 agreement : %.1f%%  (paper >95%%)\n",
              100.0 * static_cast<double>(agree) /
                  static_cast<double>(total));
  std::printf("  missed (nothing fired)  : %zu/%zu\n", missed, total);
  if (!confusion.empty()) {
    std::printf("  confusions:\n");
    for (const auto& [pair, count] : confusion) {
      std::printf("    %-24s -> %-24s x%d\n",
                  domain::to_string(pair.first),
                  domain::to_string(pair.second), count);
    }
  }
}

void print_severity_calibration() {
  std::printf("\nE11 severity gradients (paper: Slight/Moderate/Serious/"
              "Extreme => none/months/weeks/days)\n");
  std::printf("  %-10s %-10s %-10s %-14s\n", "injected", "score",
              "gradient", "P90 horizon");
  const rules::RuleEngine engine(rules::chiller_rulebase());
  const rules::BelievabilityTable beliefs;
  const rules::FeatureExtractor extractor(domain::navy_chiller_signature());

  for (const double injected : {0.25, 0.45, 0.65, 0.85, 1.0}) {
    plant::ChillerConfig cfg;
    cfg.seed = static_cast<std::uint64_t>(injected * 1000);
    plant::ChillerSimulator chiller(cfg);
    chiller.faults().schedule({FailureMode::MotorImbalance, SimTime(0),
                               SimTime(0), injected,
                               plant::GrowthProfile::Step});
    chiller.advance(SimTime::from_seconds(10));
    std::vector<double> vib(8192);
    chiller.acquire_vibration(plant::MachinePoint::Motor, 40960.0, vib);
    rules::FeatureFrame frame;
    extractor.extract_vibration(vib, 40960.0, frame);
    frame.set(rules::feat::kLoad, chiller.load());

    const auto diagnoses = engine.evaluate(frame, beliefs);
    if (diagnoses.empty()) {
      std::printf("  %-10.2f %-10s %-10s %-14s\n", injected, "-", "None",
                  "--");
      continue;
    }
    const auto& d = diagnoses.front();
    std::string p90 = "--";
    for (const auto& p : d.prognosis) {
      if (p.probability >= 0.9) {
        p90 = to_string(p.horizon);
        break;
      }
    }
    std::printf("  %-10.2f %-10.2f %-10s %-14s\n", injected, d.severity,
                rules::to_string(d.gradient), p90.c_str());
  }
  std::printf("\n");
}

void BM_RuleEvaluation(benchmark::State& state) {
  const rules::RuleEngine engine(rules::chiller_rulebase());
  const rules::BelievabilityTable beliefs;
  rules::FeatureFrame frame;
  frame.set(rules::feat::kLoad, 0.85);
  frame.set(rules::feat::kOrder1, 0.3);
  frame.set(rules::feat::kOrder2, 0.1);
  frame.set(rules::feat::kBpfo, 0.08);
  frame.set(rules::feat::kKurtosis, 5.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.evaluate(frame, beliefs));
  }
  state.SetItemsProcessed(state.iterations() * engine.rulebase().size());
  state.SetLabel("rule-evaluations");
}
BENCHMARK(BM_RuleEvaluation);

void BM_FeatureExtraction(benchmark::State& state) {
  plant::ChillerSimulator chiller;
  chiller.advance(SimTime::from_seconds(1));
  std::vector<double> vib(8192);
  chiller.acquire_vibration(plant::MachinePoint::Motor, 40960.0, vib);
  const rules::FeatureExtractor extractor(chiller.signature());
  for (auto _ : state) {
    rules::FeatureFrame frame;
    extractor.extract_vibration(vib, 40960.0, frame);
    benchmark::DoNotOptimize(frame);
  }
  state.SetItemsProcessed(state.iterations() * vib.size());
  state.SetLabel("samples");
}
BENCHMARK(BM_FeatureExtraction);

}  // namespace

int main(int argc, char** argv) {
  print_agreement_table();
  print_severity_calibration();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
