file(REMOVE_RECURSE
  "CMakeFiles/mpros_dsp.dir/cepstrum.cpp.o"
  "CMakeFiles/mpros_dsp.dir/cepstrum.cpp.o.d"
  "CMakeFiles/mpros_dsp.dir/dct.cpp.o"
  "CMakeFiles/mpros_dsp.dir/dct.cpp.o.d"
  "CMakeFiles/mpros_dsp.dir/envelope.cpp.o"
  "CMakeFiles/mpros_dsp.dir/envelope.cpp.o.d"
  "CMakeFiles/mpros_dsp.dir/fft.cpp.o"
  "CMakeFiles/mpros_dsp.dir/fft.cpp.o.d"
  "CMakeFiles/mpros_dsp.dir/filter.cpp.o"
  "CMakeFiles/mpros_dsp.dir/filter.cpp.o.d"
  "CMakeFiles/mpros_dsp.dir/spectrum.cpp.o"
  "CMakeFiles/mpros_dsp.dir/spectrum.cpp.o.d"
  "CMakeFiles/mpros_dsp.dir/stats.cpp.o"
  "CMakeFiles/mpros_dsp.dir/stats.cpp.o.d"
  "CMakeFiles/mpros_dsp.dir/stft.cpp.o"
  "CMakeFiles/mpros_dsp.dir/stft.cpp.o.d"
  "CMakeFiles/mpros_dsp.dir/window.cpp.o"
  "CMakeFiles/mpros_dsp.dir/window.cpp.o.d"
  "libmpros_dsp.a"
  "libmpros_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpros_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
