#pragma once
// Flight recorder: a bounded journal of wire traffic and DC events.
//
// A shipboard MPROS runs unattended for months; when something goes wrong
// the question is always "what exactly did the PDME see?". The recorder
// keeps the last N delivered network datagrams (and notable DC events) in
// a ring; dump() writes them to a versioned binary file, and a dump can be
// deterministically replayed through a fresh PDME (`mpros::replay_recording`
// / tools/mpros_replay), turning any field anomaly into a reproducible
// test case.
//
// Binary format (little-endian), version byte second:
//   u8[3] magic "MFR" | u8 version (=1)
//   u8 flags (bit0: PDME dedup was on) | u32 plant_count | u64 seed
//   u32 frame_count
//   frame*: u8 kind | i64 time_us | str from | str to | u32 len | payload
//   (str = u32 length + bytes)
//
// decode()/load() are fail-soft: truncated or corrupted input returns
// nullopt, never aborts — a half-written dump from a crashing system must
// still not take the analysis tooling down with it.

#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace mpros::telemetry {

inline constexpr std::uint8_t kRecorderVersion = 1;

enum class FrameKind : std::uint8_t {
  NetMessage = 1,  ///< payload = wire datagram as delivered
  Event = 2,       ///< payload = UTF-8 annotation; from = component
};

struct RecorderFrame {
  FrameKind kind = FrameKind::NetMessage;
  std::int64_t time_us = 0;  ///< simulated delivery / event time
  std::string from;
  std::string to;
  std::vector<std::uint8_t> payload;

  friend bool operator==(const RecorderFrame&, const RecorderFrame&) = default;
};

/// Scenario context a replay needs to rebuild the live run's object model.
struct RecorderHeader {
  std::uint8_t version = kRecorderVersion;
  bool pdme_dedup = true;
  std::uint32_t plant_count = 0;
  std::uint64_t seed = 0;

  friend bool operator==(const RecorderHeader&, const RecorderHeader&) = default;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity = 1 << 16);

  void set_header(RecorderHeader header);
  [[nodiscard]] RecorderHeader header() const;

  /// Thread-safe; oldest frames are evicted once `capacity` is reached.
  void record_message(std::int64_t time_us, std::string from, std::string to,
                      std::vector<std::uint8_t> payload);
  void record_event(std::int64_t time_us, std::string component,
                    const std::string& text);

  [[nodiscard]] std::vector<RecorderFrame> frames() const;  // oldest first
  [[nodiscard]] std::uint64_t recorded() const;
  [[nodiscard]] std::uint64_t evicted() const;
  void clear();

  [[nodiscard]] std::vector<std::uint8_t> encode() const;
  /// Returns false on I/O failure.
  bool dump(const std::string& path) const;

  struct Decoded {
    RecorderHeader header;
    std::vector<RecorderFrame> frames;
  };
  [[nodiscard]] static std::optional<Decoded> decode(
      std::span<const std::uint8_t> bytes);
  [[nodiscard]] static std::optional<Decoded> load(const std::string& path);

 private:
  void push_locked(RecorderFrame frame);

  mutable std::mutex mu_;
  RecorderHeader header_;
  std::deque<RecorderFrame> ring_;
  std::size_t capacity_;
  std::uint64_t recorded_ = 0;
  std::uint64_t evicted_ = 0;
};

}  // namespace mpros::telemetry
