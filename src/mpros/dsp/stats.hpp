#pragma once
// Descriptive statistics of sample windows.
//
// These scalar condition indicators (RMS, crest factor, kurtosis, ...) are
// the classic first-line vibration features: the MUX cards in the paper carry
// hardware RMS detectors, and the WNN's feature vector includes peak
// amplitude and standard deviation (§6.2).

#include <cstddef>
#include <span>

namespace mpros::dsp {

struct Moments {
  double mean = 0.0;
  double variance = 0.0;  // population variance
  double stddev = 0.0;
  double skewness = 0.0;
  double kurtosis = 0.0;  // standardized 4th moment (3.0 for Gaussian)
};

/// One-pass mean; zero for an empty span.
[[nodiscard]] double mean(std::span<const double> x);

/// Root-mean-square; zero for an empty span.
[[nodiscard]] double rms(std::span<const double> x);

/// Largest absolute value; zero for an empty span.
[[nodiscard]] double peak_abs(std::span<const double> x);

/// Peak-to-peak range; zero for an empty span.
[[nodiscard]] double peak_to_peak(std::span<const double> x);

/// peak_abs / rms. A healthy sine is sqrt(2)≈1.414; impacting bearings push
/// this up sharply before RMS rises. Returns 0 when rms is 0.
[[nodiscard]] double crest_factor(std::span<const double> x);

/// Central moments through kurtosis; requires at least 2 samples for
/// variance, 3+ recommended for the higher moments.
[[nodiscard]] Moments moments(std::span<const double> x);

/// Zero-crossing count (sign changes), a cheap frequency proxy used by SBFR.
[[nodiscard]] std::size_t zero_crossings(std::span<const double> x);

}  // namespace mpros::dsp
