#pragma once
// The Prognostic/Diagnostic Monitoring Engine (paper §3.1).
//
// "The PDME is the logical center of the MPROS system. Diagnostic and
// prognostic conclusions are collected from DC-resident algorithms ...
// Fusion of conflicting and reinforcing source conclusions is performed to
// form a prioritized list for the use of maintenance personnel."
//
// Report flow implements §5.1's four-step format literally:
//  1. arriving reports are posted into the OOSM (as Report objects that
//     RefersTo the sensed machine),
//  2. the OOSM's event model notifies Knowledge Fusion,
//  3. KF reads the new report and fuses diagnostics (Dempster-Shafer per
//     logical group) and prognostics (conservative envelope),
//  4. fused conclusions are posted back to the OOSM and drive the browser.

#include <map>
#include <optional>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "mpros/fusion/diagnostic_fusion.hpp"
#include "mpros/fusion/prognostic_fusion.hpp"
#include "mpros/fusion/trend.hpp"
#include "mpros/net/messages.hpp"
#include "mpros/net/network.hpp"
#include "mpros/net/reliable.hpp"
#include "mpros/net/report.hpp"
#include "mpros/oosm/object_model.hpp"

namespace mpros::pdme {

/// One line of the prioritized maintenance list.
struct MaintenanceItem {
  ObjectId machine;
  domain::FailureMode mode{};
  double fused_belief = 0.0;     ///< Bel({mode}) from Dempster-Shafer
  double plausibility = 0.0;
  double max_severity = 0.0;     ///< worst severity reported for the mode
  double priority = 0.0;         ///< belief x severity, the sort key
  std::size_t report_count = 0;  ///< reports contributing to the group
  std::optional<SimTime> median_ttf;  ///< fused P(fail) reaches 0.5
  std::optional<SimTime> p90_ttf;     ///< fused P(fail) reaches 0.9
  /// §10.1 temporal reasoning: projected time-to-failure from the severity
  /// trend across this mode's report history (absent while the trend is
  /// flat, improving, or under-sampled).
  std::optional<SimTime> trend_ttf;
};

struct PdmeConfig {
  /// Reports older than this against the same (machine, condition) replace
  /// nothing — exact duplicates (retransmissions) are dropped by signature.
  bool deduplicate = true;

  /// Adaptive "closer look" (§6.3): when a fused report crosses
  /// `retest_severity` while the group still carries real unknown mass, the
  /// PDME commands the originating DC to run an immediate vibration test.
  /// Requires attach_to_network(); at most one command per (machine, mode)
  /// per `retest_backoff` of report time.
  bool auto_retest = false;
  double retest_severity = 0.70;
  double retest_unknown = 0.20;
  SimTime retest_backoff = SimTime::from_hours(1.0);

  /// DC liveness supervision: the watchdog interval the DCs are expected to
  /// beat (matches DcConfig::heartbeat_period in the assembled system). A
  /// machinery space silent for `stale_after_missed` intervals is Stale,
  /// for `lost_after_missed` intervals Lost. Any report, heartbeat or
  /// sensor batch from the DC restores Alive.
  SimTime heartbeat_interval = SimTime::from_seconds(60.0);
  std::size_t stale_after_missed = 2;
  std::size_t lost_after_missed = 3;
};

/// Watchdog verdict on one DC's report stream.
enum class DcLiveness : std::uint8_t { Alive = 0, Stale, Lost };

[[nodiscard]] const char* to_string(DcLiveness liveness);

struct DcHealth {
  DcLiveness liveness = DcLiveness::Alive;
  SimTime last_heard;           ///< newest report/heartbeat/sensor arrival
  std::uint64_t heartbeats = 0;
};

class PdmeExecutive {
 public:
  /// `model` must outlive the executive. The executive subscribes to OOSM
  /// events so that report objects posted by anyone (not just accept())
  /// reach knowledge fusion (§4.5).
  explicit PdmeExecutive(oosm::ObjectModel& model, PdmeConfig cfg = {});
  ~PdmeExecutive();

  PdmeExecutive(const PdmeExecutive&) = delete;
  PdmeExecutive& operator=(const PdmeExecutive&) = delete;

  /// Step 1 of §5.1: post a report into the OOSM (and let the event chain
  /// run fusion). Returns the created report object's id, or nullopt if the
  /// report was a duplicate retransmission.
  std::optional<ObjectId> accept(const net::FailureReport& report);

  /// Post a sensor-data batch: values land as properties on the machine's
  /// OOSM object (the §1 open-interface flow; PDME-resident algorithms
  /// subscribe to the resulting OOSM events).
  void accept(const net::SensorDataMessage& data);

  /// Post a DC liveness beacon delivered at `at`: refreshes the watchdog,
  /// counts the beat, and checks the advertised tail sequence for loss the
  /// envelope stream alone cannot reveal. Replay uses this to rebuild the
  /// live run's DC-health ledger from recorded frames.
  void accept(const net::HeartbeatMessage& hb, SimTime at);

  /// Record that any datagram from `dc` arrived at `at` (restores a
  /// Stale/Lost DC to Alive). The network adapter calls this for every
  /// well-formed arrival; replay calls it per recorded frame.
  void note_dc_alive(DcId dc, SimTime at);

  /// Wire adapter: register this executive as the "pdme" endpoint on the
  /// simulated ship network. Malformed payloads are counted, not fatal.
  void attach_to_network(net::SimNetwork& network,
                         const std::string& endpoint_name = "pdme");

  /// Declare a DC the watchdog must supervise from `since` on; without
  /// this, a DC partitioned before its first datagram would never be
  /// missed. The assembler registers every DC at construction.
  void expect_dc(DcId dc, SimTime since);

  /// Run the liveness watchdog at `now`: DCs silent past the configured
  /// missed-interval thresholds transition to Stale/Lost (logged).
  void update_liveness(SimTime now);

  [[nodiscard]] DcLiveness dc_liveness(DcId dc) const;
  [[nodiscard]] const std::map<std::uint64_t, DcHealth>& dc_health() const {
    return dc_health_;
  }

  /// Per-DC reliable-stream state (gap bookkeeping, cumulative acks).
  [[nodiscard]] const net::ReliableReceiver& receiver() const {
    return receiver_;
  }

  /// The latest word on each instrument channel the validators flagged:
  /// severity > 0 = fault standing, 0 = cleared. Keyed by
  /// (dc, sensed object, fault kind); newest report wins.
  struct SensorFaultRecord {
    DcId dc;
    ObjectId object;
    domain::SensorFaultKind kind{};
    double severity = 0.0;
    SimTime at;
    std::string explanation;
  };
  [[nodiscard]] std::vector<SensorFaultRecord> sensor_faults(
      bool active_only = true) const;

  /// The prioritized list (§3.1), most urgent first.
  [[nodiscard]] std::vector<MaintenanceItem> prioritized_list() const;
  [[nodiscard]] std::vector<MaintenanceItem> prioritized_list(
      ObjectId machine) const;

  /// Fused prognostic curve for one (machine, mode), if any prognostic
  /// reports arrived.
  [[nodiscard]] std::optional<fusion::PrognosticVector> prognosis(
      ObjectId machine, domain::FailureMode mode) const;

  /// §10.1: the data-driven prognostic curve projected from the severity
  /// trend of this mode's reports (horizons relative to the latest report).
  [[nodiscard]] fusion::PrognosticVector trend_prognosis(
      ObjectId machine, domain::FailureMode mode) const;

  /// Dempster-Shafer state for a machine's logical group.
  [[nodiscard]] fusion::GroupState group_state(
      ObjectId machine, domain::LogicalGroup group) const {
    return diagnostics_.state(machine, group);
  }

  /// Reports accumulated for one machine, arrival order.
  [[nodiscard]] std::vector<net::FailureReport> reports_for(
      ObjectId machine) const;

  struct Stats {
    std::uint64_t reports_accepted = 0;
    std::uint64_t duplicates_dropped = 0;
    std::uint64_t malformed_dropped = 0;
    std::uint64_t fusion_updates = 0;
    std::uint64_t sensor_batches = 0;
    std::uint64_t retests_commanded = 0;
    std::uint64_t envelopes_accepted = 0;
    std::uint64_t acks_sent = 0;
    std::uint64_t gaps_detected = 0;
    std::uint64_t heartbeats_received = 0;
    std::uint64_t sensor_fault_reports = 0;
    std::uint64_t liveness_transitions = 0;  ///< Alive<->Stale<->Lost edges
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  [[nodiscard]] oosm::ObjectModel& model() { return model_; }
  [[nodiscard]] const oosm::ObjectModel& model() const { return model_; }

  /// Forget everything known about a machine (post-maintenance reset).
  void reset_machine(ObjectId machine);

  /// Disaster recovery (§4.9 "long-term unattended operation"): rebuild
  /// fusion state from the Report objects already persisted in the OOSM.
  /// Call on a freshly constructed executive over a reloaded model; reports
  /// are re-fused in timestamp order. Returns how many were recovered.
  std::size_t rebuild_from_model();

 private:
  struct ModeKey {
    std::uint64_t machine;
    domain::FailureMode mode;
    auto operator<=>(const ModeKey&) const = default;
  };
  struct ModeTrack {
    fusion::PrognosticVector fused_prognosis;
    fusion::TrendProjector trend;
    SimTime latest_report;
    double max_severity = 0.0;
    std::size_t reports = 0;
  };

  void on_oosm_event(const oosm::OosmEvent& event);
  [[nodiscard]] net::FailureReport reconstruct_report(ObjectId object) const;
  void fuse(const net::FailureReport& report);
  void note_sensor_fault(const net::FailureReport& report);
  void maybe_command_retest(const net::FailureReport& report);
  [[nodiscard]] std::string signature_of(const net::FailureReport& r) const;
  ObjectId post_report_object(const net::FailureReport& report);

  oosm::ObjectModel& model_;
  PdmeConfig cfg_;
  net::SimNetwork* network_ = nullptr;  // set by attach_to_network
  std::string endpoint_name_;
  std::map<ModeKey, SimTime> last_retest_;
  oosm::ObjectModel::SubscriptionId subscription_;
  bool posting_ = false;  // re-entrancy guard while we create objects

  fusion::DiagnosticFusion diagnostics_;
  std::map<ModeKey, ModeTrack> tracks_;
  std::map<std::uint64_t, std::vector<net::FailureReport>> reports_;
  std::set<std::string> seen_signatures_;
  net::ReliableReceiver receiver_;
  std::map<std::uint64_t, DcHealth> dc_health_;  // by DcId value
  std::map<std::tuple<std::uint64_t, std::uint64_t, std::uint64_t>,
           SensorFaultRecord>
      sensor_faults_;  // (dc, object, kind) -> latest word
  Stats stats_;
};

}  // namespace mpros::pdme
