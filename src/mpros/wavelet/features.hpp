#pragma once
// Wavelet feature maps for the WNN classifier.
//
// The paper (§6.2) lists the classifier's inputs: "peak of the signal
// amplitude, standard deviation, cepstrum, DCT coefficients, wavelet maps,
// temperature, humidity, speed, and mass". This module produces the wavelet
// portion: per-scale energies and shannon entropy — a compact, shift-tolerant
// description of transients.

#include <cstddef>
#include <span>
#include <vector>

#include "mpros/wavelet/dwt.hpp"

namespace mpros::wavelet {

/// Per-scale relative energy of a decomposition: details first (finest to
/// coarsest), then the approximation. Sums to 1 for a nonzero signal.
[[nodiscard]] std::vector<double> energy_map(const Decomposition& d);

/// Shannon entropy of the relative energy map (high = energy spread across
/// scales, low = concentrated — transients concentrate in fine scales).
[[nodiscard]] double energy_entropy(const Decomposition& d);

/// Max absolute detail coefficient per scale (transient strength indicator).
[[nodiscard]] std::vector<double> peak_map(const Decomposition& d);

/// Convenience: decompose and return {energy_map..., entropy}.
[[nodiscard]] std::vector<double> wavelet_feature_vector(
    std::span<const double> x, Family f, std::size_t levels);

/// Allocation-free variant: writes into `out`, reusing its capacity and a
/// per-thread decomposition buffer.
void wavelet_feature_vector(std::span<const double> x, Family f,
                            std::size_t levels, std::vector<double>& out);

}  // namespace mpros::wavelet
