#include "mpros/plant/faults.hpp"

#include <algorithm>

#include "mpros/common/assert.hpp"

namespace mpros::plant {

void FaultInjector::schedule(FaultEvent event) {
  MPROS_EXPECTS(event.max_severity >= 0.0 && event.max_severity <= 1.0);
  MPROS_EXPECTS(event.ramp.micros() >= 0);
  events_.push_back(event);
}

double FaultInjector::severity_at(domain::FailureMode mode, SimTime t) const {
  double severity = 0.0;
  for (const FaultEvent& e : events_) {
    if (e.mode != mode || t < e.onset) continue;
    double s;
    if (e.profile == GrowthProfile::Step || e.ramp.micros() == 0) {
      s = e.max_severity;
    } else {
      const double frac = std::clamp(
          static_cast<double>((t - e.onset).micros()) /
              static_cast<double>(e.ramp.micros()),
          0.0, 1.0);
      s = e.max_severity *
          (e.profile == GrowthProfile::Accelerating ? frac * frac : frac);
    }
    severity = std::max(severity, s);
  }
  return severity;
}

std::array<double, domain::kFailureModeCount> FaultInjector::all_at(
    SimTime t) const {
  std::array<double, domain::kFailureModeCount> out{};
  for (const domain::FailureMode m : domain::all_failure_modes()) {
    out[static_cast<std::size_t>(m)] = severity_at(m, t);
  }
  return out;
}

std::optional<domain::FailureMode> FaultInjector::dominant_at(
    SimTime t, double threshold) const {
  std::optional<domain::FailureMode> best;
  double best_severity = threshold;
  for (const domain::FailureMode m : domain::all_failure_modes()) {
    const double s = severity_at(m, t);
    if (s > best_severity) {
      best_severity = s;
      best = m;
    }
  }
  return best;
}

}  // namespace mpros::plant
