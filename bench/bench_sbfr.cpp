// E3/E5 — SBFR execution: the Fig 3 scenario end to end, and the paper's
// cycle-time claim (§6.3: 100 machines "can cycle with a period of less
// than 4 milliseconds" on late-90s embedded hardware).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "mpros/plant/ema.hpp"
#include "mpros/sbfr/interpreter.hpp"
#include "mpros/sbfr/library.hpp"

namespace {

using namespace mpros;
using namespace mpros::sbfr;

void print_e3_scenario() {
  plant::EmaSimulator ema;
  const auto trace = ema.generate(40000, 1.0);

  SbfrSystem sys(2);
  sys.add_machine(make_spike_machine());
  sys.add_machine(make_stiction_machine());
  std::size_t detected_at = 0;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    const double inputs[2] = {trace[i].current, trace[i].cpos};
    sys.step(inputs);
    if (sys.status(1) != 0.0) {
      detected_at = i;
      break;
    }
  }
  std::printf(
      "\nE3 Fig 3 EMA stiction scenario\n"
      "  claim    : >4 uncommanded current spikes => stiction flagged =>\n"
      "             seize-up predicted\n"
      "  measured : %zu spikes injected; stiction latched at sample %zu\n\n",
      ema.injected_spikes(), detected_at);
}

/// Build a system of `n` machines mixing the Fig 3 pair with threshold and
/// trend detectors over 4 channels (the DC's process-variable fan-in).
SbfrSystem make_system(std::size_t n) {
  SbfrSystem sys(4);
  for (std::size_t i = 0; i < n; ++i) {
    switch (i % 4) {
      case 0: sys.add_machine(make_spike_machine()); break;
      case 1: sys.add_machine(make_stiction_machine()); break;
      case 2:
        sys.add_machine(make_threshold_machine(
            static_cast<std::uint8_t>(i % 4), 10.0, 3,
            static_cast<std::uint8_t>(i), 0x42));
        break;
      default:
        sys.add_machine(make_trend_machine(
            static_cast<std::uint8_t>(i % 4), 0.1, 5,
            static_cast<std::uint8_t>(i), 0x43));
        break;
    }
  }
  return sys;
}

void BM_SbfrCycle(benchmark::State& state) {
  // One step() = one SBFR cycle over all machines. The paper's bound is
  // 4 ms for 100 machines; print the comparison via counters.
  SbfrSystem sys = make_system(static_cast<std::size_t>(state.range(0)));
  double t = 0.0;
  for (auto _ : state) {
    const double inputs[4] = {2.0 + 0.1 * t, 50.0, 1000.0, 5.0};
    sys.step(inputs);
    t += 0.01;
    benchmark::DoNotOptimize(sys.cycle());
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["paper_limit_us_for_100"] = 4000.0;
}
BENCHMARK(BM_SbfrCycle)->Arg(2)->Arg(10)->Arg(100)->Arg(400);

void BM_SbfrPerMachineThroughput(benchmark::State& state) {
  SbfrSystem sys = make_system(100);
  for (auto _ : state) {
    const double inputs[4] = {2.0, 50.0, 1000.0, 5.0};
    sys.step(inputs);
  }
  state.SetItemsProcessed(state.iterations() * 100);
  state.SetLabel("machine-evaluations");
}
BENCHMARK(BM_SbfrPerMachineThroughput);

void BM_EmaTraceProcessing(benchmark::State& state) {
  // Full-speed replay of an EMA current trace through the Fig 3 pair: the
  // embedded rate the smart sensor must sustain.
  plant::EmaSimulator ema;
  const auto trace = ema.generate(10000, 0.5);
  SbfrSystem sys(2);
  sys.add_machine(make_spike_machine());
  sys.add_machine(make_stiction_machine());
  for (auto _ : state) {
    for (const plant::EmaSample& s : trace) {
      const double inputs[2] = {s.current, s.cpos};
      sys.step(inputs);
    }
    sys.set_status(1, 0.0);  // keep the detector re-armed between passes
  }
  state.SetItemsProcessed(state.iterations() * trace.size());
  state.SetLabel("samples");
}
BENCHMARK(BM_EmaTraceProcessing);

}  // namespace

int main(int argc, char** argv) {
  print_e3_scenario();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
