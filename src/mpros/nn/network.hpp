#pragma once
// Feed-forward network with softmax classification head and SGD training.

#include <memory>
#include <span>
#include <vector>

#include "mpros/common/rng.hpp"
#include "mpros/nn/layers.hpp"

namespace mpros::nn {

struct TrainConfig {
  double learning_rate = 0.05;
  double momentum = 0.9;
  std::size_t batch_size = 16;
  std::size_t epochs = 200;
  double target_loss = 0.05;  ///< stop early when train loss drops below
};

struct TrainStats {
  std::size_t epochs_run = 0;
  double final_loss = 0.0;
  double final_accuracy = 0.0;
};

/// A labelled training example.
struct Example {
  std::vector<double> features;
  std::size_t label = 0;
};

class Network {
 public:
  Network() = default;

  Network& add_dense(std::size_t in, std::size_t out, Activation act,
                     Rng& rng);
  Network& add_wavelet(std::size_t in, std::size_t wavelons, Rng& rng);

  [[nodiscard]] std::size_t input_size() const;
  [[nodiscard]] std::size_t output_size() const;

  /// Class probabilities via softmax over the last layer's outputs.
  [[nodiscard]] std::vector<double> predict(std::span<const double> x);

  /// argmax of predict().
  [[nodiscard]] std::size_t classify(std::span<const double> x);

  /// Minibatch SGD on softmax cross-entropy. Examples are shuffled with
  /// `rng` each epoch. Feature standardization is fit on the training set
  /// and applied inside predict() thereafter.
  TrainStats train(std::span<const Example> examples, const TrainConfig& cfg,
                   Rng& rng);

  /// Fraction of examples classified correctly.
  [[nodiscard]] double accuracy(std::span<const Example> examples);

  /// Serialize all trainable parameters plus the fitted feature
  /// standardizer. The architecture itself is NOT serialized: import into a
  /// network built with the identical layer stack (the DC-flashing model —
  /// firmware fixes the architecture, downloads fix the weights).
  [[nodiscard]] std::vector<double> export_weights() const;
  void import_weights(std::span<const double> weights);
  [[nodiscard]] std::size_t weight_count() const;

 private:
  std::vector<double> forward_raw(std::span<const double> x);
  void fit_standardizer(std::span<const Example> examples);
  [[nodiscard]] std::vector<double> standardize(
      std::span<const double> x) const;

  std::vector<std::unique_ptr<Layer>> layers_;
  std::vector<double> feat_mean_, feat_scale_;  // empty until train()
};

/// Numerically stable softmax.
[[nodiscard]] std::vector<double> softmax(std::span<const double> logits);

}  // namespace mpros::nn
