#pragma once
// The DC supervisor (long-term unattended operation, §4.9).
//
// A Data Concentrator that hangs — wedged driver loop, stuck DAQ ioctl,
// runaway analyzer — stops emitting reports and heartbeats, and the PDME's
// liveness watchdog can only *report* the silence. The supervisor closes
// the loop: every advance the assembler feeds it each DC's internal
// progress tick; a DC whose tick has not moved for `wedge_timeout` of
// simulated time is declared wedged, and the assembler tears it down and
// restarts it from its salvageable state (persisted runtime config,
// quarantine ledger, analyzer soft state, retransmit window) so the
// restarted DC resumes the same report stream with nothing lost.

#include <cstdint>
#include <map>
#include <vector>

#include "mpros/common/clock.hpp"
#include "mpros/common/ids.hpp"

namespace mpros::dc {

struct DcSupervisorConfig {
  /// A DC whose progress tick has not advanced for this long is wedged.
  /// Must comfortably exceed the assembler's step, or a slow step would
  /// read as a hang.
  SimTime wedge_timeout = SimTime::from_seconds(300.0);
};

class DcSupervisor {
 public:
  explicit DcSupervisor(DcSupervisorConfig cfg = {});

  /// Feed one DC's current progress tick at `now`. Returns true when the
  /// DC just crossed the wedge threshold — the caller restarts it and then
  /// reports the replacement via notify_restarted(). The verdict re-arms
  /// (rather than re-firing every observation) until progress moves again.
  bool observe(DcId dc, std::uint64_t progress, SimTime now);

  /// The caller restarted `dc`; `progress` is the replacement's tick.
  void notify_restarted(DcId dc, std::uint64_t progress, SimTime now);

  struct Stats {
    std::uint64_t wedges_detected = 0;
    std::uint64_t restarts = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  struct Watch {
    std::uint64_t progress = 0;
    SimTime last_change;
    bool seen = false;
  };

  DcSupervisorConfig cfg_;
  std::map<std::uint64_t, Watch> watches_;  // by DcId value
  Stats stats_;
};

}  // namespace mpros::dc
