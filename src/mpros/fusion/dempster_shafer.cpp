#include "mpros/fusion/dempster_shafer.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "mpros/common/assert.hpp"

namespace mpros::fusion {

FrameOfDiscernment::FrameOfDiscernment(std::vector<std::string> hypotheses)
    : names_(std::move(hypotheses)) {
  MPROS_EXPECTS(!names_.empty() && names_.size() <= 16);
}

const std::string& FrameOfDiscernment::name(std::size_t i) const {
  MPROS_EXPECTS(i < names_.size());
  return names_[i];
}

HypothesisSet FrameOfDiscernment::singleton(std::size_t i) const {
  MPROS_EXPECTS(i < names_.size());
  return static_cast<HypothesisSet>(1u << i);
}

HypothesisSet FrameOfDiscernment::theta() const {
  return static_cast<HypothesisSet>((1u << names_.size()) - 1u);
}

std::string FrameOfDiscernment::describe(HypothesisSet s) const {
  if (s == theta()) return "Θ";
  std::string out;
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (s & (1u << i)) {
      if (!out.empty()) out += "|";
      out += names_[i];
    }
  }
  return out.empty() ? "∅" : out;
}

MassFunction::MassFunction(const FrameOfDiscernment& frame) : frame_(&frame) {}

void MassFunction::add_mass(HypothesisSet s, double m) {
  const auto it = std::lower_bound(
      masses_.begin(), masses_.end(), s,
      [](const auto& entry, HypothesisSet key) { return entry.first < key; });
  if (it != masses_.end() && it->first == s) {
    it->second += m;
  } else {
    masses_.insert(it, {s, m});
  }
}

MassFunction MassFunction::vacuous(const FrameOfDiscernment& frame) {
  MassFunction m(frame);
  m.masses_.push_back({frame.theta(), 1.0});
  return m;
}

MassFunction MassFunction::simple_support(const FrameOfDiscernment& frame,
                                          HypothesisSet focus, double belief) {
  MPROS_EXPECTS(focus != 0 && (focus & ~frame.theta()) == 0);
  MPROS_EXPECTS(belief >= 0.0 && belief <= 1.0);
  MassFunction m(frame);
  if (belief > 0.0) m.add_mass(focus, belief);
  if (belief < 1.0 || focus == frame.theta()) {
    m.add_mass(frame.theta(), 1.0 - belief);
  }
  return m;
}

double MassFunction::combine_simple_support(HypothesisSet focus,
                                            double belief) {
  MPROS_EXPECTS(focus != 0 && (focus & ~frame_->theta()) == 0);
  MPROS_EXPECTS(belief >= 0.0 && belief <= 1.0);
  const HypothesisSet theta = frame_->theta();

  // The evidence mass, laid out exactly as simple_support() builds it
  // (including the accumulate-into-one-bucket case when focus == Θ). focus
  // numerically precedes Θ, so this little array is already ascending.
  std::array<std::pair<HypothesisSet, double>, 2> evidence{};
  std::size_t evidence_n = 0;
  if (belief > 0.0) evidence[evidence_n++] = {focus, belief};
  if (belief < 1.0 || focus == theta) {
    if (evidence_n > 0 && evidence[evidence_n - 1].first == theta) {
      evidence[evidence_n - 1].second += 1.0 - belief;
    } else {
      evidence[evidence_n++] = {theta, 1.0 - belief};
    }
  }

  // Each product lands in the bucket for sa ∩ se; with ≤2 evidence entries
  // the result has at most 2·|masses_| focal sets. Accumulate them in the
  // order visited — ascending outer over masses_, ascending inner over the
  // evidence — which is exactly the order combine()'s map accumulation
  // visits, so sums are bit-identical.
  constexpr std::size_t kMaxScratch = 64;
  std::array<std::pair<HypothesisSet, double>, kMaxScratch> scratch;
  std::size_t scratch_n = 0;
  double conflict = 0.0;
  if (masses_.size() * 2 > kMaxScratch) {
    // Frames are ≤16 hypotheses, but a pathological mass could still exceed
    // the stack scratch; take the allocating slow path rather than assert.
    const CombinationResult r =
        combine(*this, simple_support(*frame_, focus, belief));
    masses_ = r.fused.masses_;
    return r.conflict;
  }
  for (const auto& [sa, ma] : masses_) {
    for (std::size_t e = 0; e < evidence_n; ++e) {
      const HypothesisSet inter = sa & evidence[e].first;
      const double product = ma * evidence[e].second;
      if (inter == 0) {
        conflict += product;
        continue;
      }
      std::size_t slot = 0;
      while (slot < scratch_n && scratch[slot].first != inter) ++slot;
      if (slot == scratch_n) {
        scratch[scratch_n++] = {inter, product};
      } else {
        scratch[slot].second += product;
      }
    }
  }

  if (conflict >= 1.0 - 1e-12) {
    masses_.clear();
    masses_.push_back({theta, 1.0});
    return 1.0;
  }

  std::sort(scratch.begin(),
            scratch.begin() + static_cast<std::ptrdiff_t>(scratch_n),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  const double norm = 1.0 / (1.0 - conflict);
  masses_.clear();
  for (std::size_t i = 0; i < scratch_n; ++i) {
    masses_.push_back({scratch[i].first, scratch[i].second * norm});
  }
  return conflict;
}

double MassFunction::mass(HypothesisSet s) const {
  const auto it = std::lower_bound(
      masses_.begin(), masses_.end(), s,
      [](const auto& entry, HypothesisSet key) { return entry.first < key; });
  return it == masses_.end() || it->first != s ? 0.0 : it->second;
}

double MassFunction::belief(HypothesisSet s) const {
  double sum = 0.0;
  for (const auto& [set, m] : masses_) {
    if (set != 0 && (set & ~s) == 0) sum += m;
  }
  return sum;
}

double MassFunction::plausibility(HypothesisSet s) const {
  double sum = 0.0;
  for (const auto& [set, m] : masses_) {
    if ((set & s) != 0) sum += m;
  }
  return sum;
}

double MassFunction::unknown() const { return mass(frame_->theta()); }

CombinationResult combine(const MassFunction& a, const MassFunction& b) {
  MPROS_EXPECTS(a.frame_ == b.frame_);

  MassFunction fused(*a.frame_);
  double conflict = 0.0;
  for (const auto& [sa, ma] : a.masses_) {
    for (const auto& [sb, mb] : b.masses_) {
      const HypothesisSet inter = sa & sb;
      const double product = ma * mb;
      if (inter == 0) {
        conflict += product;
      } else {
        fused.add_mass(inter, product);
      }
    }
  }

  if (conflict >= 1.0 - 1e-12) {
    // Total contradiction: Dempster's rule is undefined; fall back to
    // ignorance and report K = 1 so the caller can flag the sources.
    return CombinationResult{MassFunction::vacuous(*a.frame_), 1.0};
  }

  const double norm = 1.0 / (1.0 - conflict);
  for (auto& [set, m] : fused.masses_) m *= norm;
  return CombinationResult{std::move(fused), conflict};
}

}  // namespace mpros::fusion
