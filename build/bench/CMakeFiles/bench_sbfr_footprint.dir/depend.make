# Empty dependencies file for bench_sbfr_footprint.
# This may be replaced when dependencies are built.
