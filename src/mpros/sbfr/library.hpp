#pragma once
// Reference SBFR machines.
//
// make_spike_machine / make_stiction_machine reconstruct the paper's Fig 3
// pair for electro-mechanical-actuator seize-up prediction:
//  - Machine 0 ("Current SPIKE Machine"): four states, seven transitions,
//    recognizes clean spikes in the drive-motor current and is "relatively
//    noise free" thanks to its two intermediate Possible-Spike states.
//  - Machine 1 ("EMA Stiction Machine"): counts spikes not associated with a
//    commanded position change (CPOS); more than four flags stiction.
//
// The figure's transition captions are partially garbled in the source text;
// where they are ambiguous we reconstruct semantics that satisfy every
// statement in the prose (the reconstruction is documented per transition
// below and exercised by the E3 scenario tests).

#include <cstdint>

#include "mpros/sbfr/machine.hpp"

namespace mpros::sbfr {

/// Tuning for the Fig 3 pair.
struct EmaConfig {
  std::uint8_t current_channel = 0;  ///< drive-motor current input
  std::uint8_t cpos_channel = 1;     ///< commanded-position input
  double rise_threshold = 0.5;       ///< per-cycle delta flagged as "increase"
  double fall_threshold = 0.5;       ///< per-cycle delta flagged as "decrease"
  double dt_limit = 4;               ///< the figure's ∆T bound
  double settle_cycles = 2;          ///< quiet cycles confirming the spike
  double cpos_epsilon = 1e-6;        ///< |∆CPOS| below this = "unchanged"
  int spike_count_limit = 4;         ///< "Local:1 > 4" → stiction
  std::uint8_t spike_machine = 0;    ///< index the spike machine will get
  std::uint8_t stiction_machine = 1; ///< index the stiction machine will get
};

/// Spike machine states, in index order.
enum class SpikeState : std::uint8_t { Wait = 0, Possible1, Possible2, Spike };
/// Stiction machine states, in index order.
enum class StictionState : std::uint8_t { Wait = 0, Stiction };

/// Event code emitted by the stiction machine when it latches.
inline constexpr std::uint8_t kStictionEventCode = 0x51;

[[nodiscard]] MachineDef make_spike_machine(const EmaConfig& cfg = {});
[[nodiscard]] MachineDef make_stiction_machine(const EmaConfig& cfg = {});

/// Threshold alarm: Idle -> Alarm when input(channel) > threshold for
/// `hold_cycles` consecutive cycles; sets own status bit and emits
/// `event_code` with the offending value. Returns to Idle when the signal
/// drops below `threshold` and the host clears the status.
[[nodiscard]] MachineDef make_threshold_machine(std::uint8_t channel,
                                                double threshold,
                                                double hold_cycles,
                                                std::uint8_t self_index,
                                                std::uint8_t event_code);

/// Trend detector: counts consecutive cycles with delta(channel) >
/// `slope_threshold`; `run_length` such cycles latch a Trending state, set
/// the status bit, and emit `event_code` with the current value.
[[nodiscard]] MachineDef make_trend_machine(std::uint8_t channel,
                                            double slope_threshold,
                                            double run_length,
                                            std::uint8_t self_index,
                                            std::uint8_t event_code);

}  // namespace mpros::sbfr
