#include "mpros/sbfr/machine.hpp"

#include <span>

#include "mpros/common/assert.hpp"

namespace mpros::sbfr {
namespace {

constexpr std::uint8_t kMagic0 = 'S';
constexpr std::uint8_t kMagic1 = 'B';
constexpr std::uint8_t kVersion = 1;

void append_u16(std::vector<std::uint8_t>& out, std::size_t v) {
  MPROS_EXPECTS(v <= 0xFFFF);
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFF));
}

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8() {
    MPROS_EXPECTS(pos_ < data_.size());
    return data_[pos_++];
  }
  std::uint16_t u16() {
    const std::uint16_t lo = u8();
    const std::uint16_t hi = u8();
    return static_cast<std::uint16_t>(lo | (hi << 8));
  }
  std::vector<std::uint8_t> bytes(std::size_t n) {
    MPROS_EXPECTS(pos_ + n <= data_.size());
    std::vector<std::uint8_t> out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                  data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }
  [[nodiscard]] bool done() const { return pos_ == data_.size(); }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Simulate the stack effect of one program. Returns final depth or -1.
int stack_effect(std::span<const std::uint8_t> code) {
  int depth = 0;
  int max_depth = 0;
  std::size_t pc = 0;
  while (pc < code.size()) {
    const Op op = static_cast<Op>(code[pc]);
    const std::size_t imm = immediate_size(op);
    pc += 1 + imm;
    if (pc > code.size()) return -1;

    switch (op) {
      case Op::PushConst:
      case Op::LoadInput:
      case Op::LoadDelta:
      case Op::LoadLocal:
      case Op::LoadStatus:
      case Op::LoadState:
      case Op::LoadDt:
        ++depth;
        break;
      case Op::Neg:
      case Op::Not:
        if (depth < 1) return -1;
        break;
      case Op::Add:
      case Op::Sub:
      case Op::Mul:
      case Op::Div:
      case Op::Lt:
      case Op::Le:
      case Op::Gt:
      case Op::Ge:
      case Op::Eq:
      case Op::Ne:
      case Op::And:
      case Op::Or:
      case Op::BitAnd:
      case Op::BitOr:
        if (depth < 2) return -1;
        --depth;
        break;
      case Op::StoreLocal:
      case Op::StoreStatus:
      case Op::Emit:
        if (depth < 1) return -1;
        --depth;
        break;
      case Op::End:
        return -1;  // End is implicit (end of buffer), not encoded
      default:
        return -1;
    }
    max_depth = std::max(max_depth, depth);
    if (max_depth > static_cast<int>(kMaxStackDepth)) return -1;
  }
  return depth;
}

}  // namespace

MachineDef::MachineDef(std::string name, std::uint8_t num_locals,
                       std::uint8_t initial_state)
    : name_(std::move(name)),
      num_locals_(num_locals),
      initial_state_(initial_state) {}

std::uint8_t MachineDef::add_state(std::string state_name) {
  MPROS_EXPECTS(states_.size() < 255);
  states_.push_back(StateDef{std::move(state_name), {}});
  return static_cast<std::uint8_t>(states_.size() - 1);
}

void MachineDef::add_transition(std::uint8_t from, std::uint8_t to,
                                const Expr& when, const Action& then) {
  MPROS_EXPECTS(from < states_.size());
  MPROS_EXPECTS(to < states_.size());
  states_[from].transitions.push_back(
      Transition{when.code(), then.code(), to});
}

std::vector<std::uint8_t> MachineDef::serialize() const {
  std::vector<std::uint8_t> out;
  out.push_back(kMagic0);
  out.push_back(kMagic1);
  out.push_back(kVersion);
  out.push_back(initial_state_);
  out.push_back(num_locals_);
  MPROS_EXPECTS(!states_.empty());
  out.push_back(static_cast<std::uint8_t>(states_.size()));

  for (const StateDef& state : states_) {
    MPROS_EXPECTS(state.transitions.size() <= 255);
    out.push_back(static_cast<std::uint8_t>(state.transitions.size()));
    for (const Transition& t : state.transitions) {
      out.push_back(t.target);
      append_u16(out, t.condition.size());
      out.insert(out.end(), t.condition.begin(), t.condition.end());
      append_u16(out, t.action.size());
      out.insert(out.end(), t.action.begin(), t.action.end());
    }
  }
  return out;
}

MachineDef MachineDef::deserialize(std::span<const std::uint8_t> image,
                                   std::string name) {
  Reader r(image);
  MPROS_EXPECTS(r.u8() == kMagic0);
  MPROS_EXPECTS(r.u8() == kMagic1);
  MPROS_EXPECTS(r.u8() == kVersion);
  const std::uint8_t initial = r.u8();
  const std::uint8_t locals = r.u8();
  const std::uint8_t num_states = r.u8();

  MachineDef def(std::move(name), locals, initial);
  for (std::uint8_t s = 0; s < num_states; ++s) {
    def.add_state("state" + std::to_string(s));
  }
  for (std::uint8_t s = 0; s < num_states; ++s) {
    const std::uint8_t num_transitions = r.u8();
    for (std::uint8_t t = 0; t < num_transitions; ++t) {
      const std::uint8_t target = r.u8();
      const std::uint16_t cond_len = r.u16();
      std::vector<std::uint8_t> cond = r.bytes(cond_len);
      const std::uint16_t act_len = r.u16();
      std::vector<std::uint8_t> act = r.bytes(act_len);
      MPROS_EXPECTS(target < num_states);
      def.states_[s].transitions.push_back(
          Transition{std::move(cond), std::move(act), target});
    }
  }
  MPROS_EXPECTS(r.done());
  return def;
}

std::string validate(const MachineDef& def) {
  if (def.states().empty()) return "machine has no states";
  if (def.initial_state() >= def.states().size()) {
    return "initial state out of range";
  }
  for (std::size_t s = 0; s < def.states().size(); ++s) {
    const StateDef& state = def.states()[s];
    for (std::size_t t = 0; t < state.transitions.size(); ++t) {
      const Transition& tr = state.transitions[t];
      if (tr.target >= def.states().size()) {
        return "transition target out of range in state " + state.name;
      }
      if (stack_effect(tr.condition) != 1) {
        return "condition of " + state.name + "#" + std::to_string(t) +
               " must leave exactly one value";
      }
      if (stack_effect(tr.action) != 0) {
        return "action of " + state.name + "#" + std::to_string(t) +
               " must leave the stack empty";
      }
    }
  }
  return {};
}

}  // namespace mpros::sbfr
