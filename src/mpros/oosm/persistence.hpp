#pragma once
// OOSM <-> relational mapping (paper §4.6).
//
// "Object types are mapped to tables and properties and relationships are
// mapped to columns and helper tables." Persistence is managed "entirely in
// the background": save() snapshots the whole model; load() rebuilds it,
// preserving object ids.

#include "mpros/db/database.hpp"
#include "mpros/oosm/object_model.hpp"

namespace mpros::oosm {

class Persistence {
 public:
  /// Create the oosm_objects / oosm_properties / oosm_relations tables in
  /// `db` (drops any existing snapshot tables first).
  static void save(const ObjectModel& model, db::Database& db);

  /// Rebuild a model from a snapshot produced by save(). Object ids match
  /// the originals; listeners are not restored.
  static ObjectModel load(const db::Database& db);

  static constexpr const char* kObjectsTable = "oosm_objects";
  static constexpr const char* kPropertiesTable = "oosm_properties";
  static constexpr const char* kRelationsTable = "oosm_relations";
};

}  // namespace mpros::oosm
