#include "mpros/pdme/spatial.hpp"

#include <algorithm>

namespace mpros::pdme {

using domain::FailureMode;

SpatialReasoner::SpatialReasoner(SpatialConfig cfg) : cfg_(cfg) {}

bool SpatialReasoner::vibration_transmissible(FailureMode mode) {
  // Faults whose symptom is broadband/structural vibration that a healthy
  // neighbour could pick up through the skid.
  switch (mode) {
    case FailureMode::MotorImbalance:
    case FailureMode::ShaftMisalignment:
    case FailureMode::BearingHousingLooseness:
      return true;
    default:
      return false;
  }
}

bool SpatialReasoner::fluid_borne(FailureMode mode) {
  switch (mode) {
    case FailureMode::OilDegradation:   // contaminated oil reaches bearings
    case FailureMode::RefrigerantLeak:  // inventory loss starves the loop
    case FailureMode::CondenserFouling: // fouled water-side chemistry
      return true;
    default:
      return false;
  }
}

std::vector<SpatialItem> SpatialReasoner::refine(
    const PdmeExecutive& pdme) const {
  const oosm::ObjectModel& model = pdme.model();
  const std::vector<MaintenanceItem> items = pdme.prioritized_list();

  std::vector<SpatialItem> out;
  out.reserve(items.size());
  for (const MaintenanceItem& item : items) {
    SpatialItem s{item, false, ObjectId{}};

    if (vibration_transmissible(item.mode) &&
        item.fused_belief < cfg_.weak_belief &&
        model.exists(item.machine)) {
      // Look for a strongly implicated proximate culprit with a
      // transmissible fault of its own.
      for (const ObjectId neighbour :
           model.related(item.machine, oosm::Relation::Proximity)) {
        for (const MaintenanceItem& other : pdme.prioritized_list(neighbour)) {
          if (vibration_transmissible(other.mode) &&
              other.fused_belief >= cfg_.culprit_belief) {
            s.discounted = true;
            s.attributed_to = neighbour;
            s.item.priority *= cfg_.discount_factor;
            break;
          }
        }
        if (s.discounted) break;
      }
    }
    out.push_back(s);
  }

  std::sort(out.begin(), out.end(),
            [](const SpatialItem& a, const SpatialItem& b) {
              return a.item.priority > b.item.priority;
            });
  return out;
}

std::vector<FlowSuspicion> SpatialReasoner::flow_suspicions(
    const PdmeExecutive& pdme) const {
  const oosm::ObjectModel& model = pdme.model();
  std::vector<FlowSuspicion> out;

  for (const MaintenanceItem& item : pdme.prioritized_list()) {
    if (!fluid_borne(item.mode)) continue;
    if (item.fused_belief < cfg_.culprit_belief) continue;
    if (!model.exists(item.machine)) continue;

    for (const ObjectId downstream : model.downstream_of(item.machine)) {
      FlowSuspicion s;
      s.source = item.machine;
      s.source_mode = item.mode;
      s.downstream = downstream;
      s.suspicion = cfg_.downstream_suspicion * item.fused_belief;
      out.push_back(s);
    }
  }
  return out;
}

}  // namespace mpros::pdme
