# Empty compiler generated dependencies file for mpros_fuzzy.
# This may be replaced when dependencies are built.
