#include "mpros/telemetry/trace.hpp"

#include <atomic>
#include <chrono>

namespace mpros::telemetry {

namespace {

std::int64_t wall_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

TraceId next_trace_id() {
  static std::atomic<TraceId> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

void Tracer::set_capacity(std::size_t n) {
  std::lock_guard lock(mu_);
  if (n == 0) n = 1;
  // Rebuild in logical order under the new capacity.
  std::vector<SpanRecord> kept;
  kept.reserve(std::min(size_, n));
  const std::size_t skip = size_ > n ? size_ - n : 0;
  for (std::size_t i = skip; i < size_; ++i) {
    kept.push_back(std::move(ring_[(start_ + i) % ring_.size()]));
  }
  evicted_ += skip;
  capacity_ = n;
  ring_.assign(capacity_, SpanRecord{});
  for (std::size_t i = 0; i < kept.size(); ++i) ring_[i] = std::move(kept[i]);
  start_ = 0;
  size_ = kept.size();
}

void Tracer::record(SpanRecord span) {
  if (!enabled()) return;
  std::lock_guard lock(mu_);
  if (ring_.size() != capacity_) ring_.resize(capacity_);
  if (size_ == capacity_) {
    ring_[start_] = std::move(span);
    start_ = (start_ + 1) % capacity_;
    ++evicted_;
  } else {
    ring_[(start_ + size_) % capacity_] = std::move(span);
    ++size_;
  }
  ++recorded_;
}

std::vector<SpanRecord> Tracer::spans_for(TraceId trace) const {
  std::lock_guard lock(mu_);
  std::vector<SpanRecord> out;
  for (std::size_t i = 0; i < size_; ++i) {
    const SpanRecord& span = ring_[(start_ + i) % capacity_];
    if (span.trace == trace) out.push_back(span);
  }
  return out;
}

std::vector<SpanRecord> Tracer::recent() const {
  std::lock_guard lock(mu_);
  std::vector<SpanRecord> out;
  out.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) {
    out.push_back(ring_[(start_ + i) % capacity_]);
  }
  return out;
}

std::uint64_t Tracer::recorded() const {
  std::lock_guard lock(mu_);
  return recorded_;
}

std::uint64_t Tracer::evicted() const {
  std::lock_guard lock(mu_);
  return evicted_;
}

void Tracer::clear() {
  std::lock_guard lock(mu_);
  start_ = size_ = 0;
  recorded_ = evicted_ = 0;
}

StageTimer::StageTimer(std::string stage, TraceId trace,
                       std::int64_t sim_now_us, Histogram* wall_us)
    : stage_(std::move(stage)),
      trace_(trace),
      sim_start_us_(sim_now_us),
      sim_end_us_(sim_now_us),
      wall_start_ns_(wall_now_ns()),
      wall_us_(wall_us) {}

StageTimer::~StageTimer() {
  const std::int64_t wall_ns = wall_now_ns() - wall_start_ns_;
  if (wall_us_ != nullptr) {
    wall_us_->observe(static_cast<double>(wall_ns) / 1000.0);
  }
  // Untraced work (trace 0) can never be queried back out by id, so only
  // the histogram above sees it — stages run at report rate and the ring's
  // mutex + span copy are not worth paying for spans nobody can find.
  if (trace_ == 0) return;
  SpanRecord span;
  span.trace = trace_;
  span.stage = std::move(stage_);
  span.sim_start_us = sim_start_us_;
  span.sim_end_us = sim_end_us_;
  span.wall_ns = wall_ns;
  Tracer::instance().record(std::move(span));
}

}  // namespace mpros::telemetry
