#include "mpros/fuzzy/membership.hpp"

#include <algorithm>
#include <cmath>

#include "mpros/common/assert.hpp"

namespace mpros::fuzzy {
namespace {

double grade_triangular(const Triangular& t, double x) {
  if (x <= t.a || x >= t.c) {
    // Shoulders: a==b makes a left shoulder (full membership below b).
    if (t.a == t.b && x <= t.b) return 1.0;
    if (t.b == t.c && x >= t.b) return 1.0;
    return 0.0;
  }
  if (x == t.b) return 1.0;
  if (x < t.b) return (x - t.a) / (t.b - t.a);
  return (t.c - x) / (t.c - t.b);
}

double grade_trapezoidal(const Trapezoidal& t, double x) {
  if (x < t.a) return t.a == t.b ? 1.0 : 0.0;
  if (x > t.d) return t.c == t.d ? 1.0 : 0.0;
  if (x >= t.b && x <= t.c) return 1.0;
  if (x < t.b) return (x - t.a) / (t.b - t.a);
  return (t.d - x) / (t.d - t.c);
}

double grade_gaussian(const Gaussian& g, double x) {
  const double z = (x - g.mean) / g.sigma;
  return std::exp(-0.5 * z * z);
}

}  // namespace

double MembershipFunction::grade(double x) const {
  return std::visit(
      [x](const auto& f) -> double {
        using T = std::decay_t<decltype(f)>;
        if constexpr (std::is_same_v<T, Triangular>) {
          return grade_triangular(f, x);
        } else if constexpr (std::is_same_v<T, Trapezoidal>) {
          return grade_trapezoidal(f, x);
        } else {
          return grade_gaussian(f, x);
        }
      },
      f_);
}

LinguisticVariable::LinguisticVariable(std::string name, double min,
                                       double max)
    : name_(std::move(name)), min_(min), max_(max) {
  MPROS_EXPECTS(max > min);
}

LinguisticVariable& LinguisticVariable::add_term(std::string term_name,
                                                 MembershipFunction mf) {
  MPROS_EXPECTS(!has_term(term_name));
  terms_.push_back(Term{std::move(term_name), mf});
  return *this;
}

double LinguisticVariable::grade(const std::string& term_name,
                                 double x) const {
  return term(term_name).mf.grade(std::clamp(x, min_, max_));
}

const Term& LinguisticVariable::term(const std::string& term_name) const {
  for (const Term& t : terms_) {
    if (t.name == term_name) return t;
  }
  MPROS_EXPECTS(false && "unknown fuzzy term");
  return terms_.front();  // unreachable
}

bool LinguisticVariable::has_term(const std::string& term_name) const {
  for (const Term& t : terms_) {
    if (t.name == term_name) return true;
  }
  return false;
}

LinguisticVariable make_low_normal_high(std::string name, double min,
                                        double lo_edge, double hi_edge,
                                        double max, double overlap) {
  MPROS_EXPECTS(min < lo_edge && lo_edge < hi_edge && hi_edge < max);
  // Overlap spans follow the *narrowest* adjacent band so that a wide outer
  // range (e.g. a bearing-temperature universe reaching far above alarm
  // levels) cannot smear "high" membership down into the normal band.
  const double mid = hi_edge - lo_edge;
  const double lo_span = overlap * std::min(lo_edge - min, mid);
  const double hi_span = overlap * std::min(max - hi_edge, mid);

  LinguisticVariable v(std::move(name), min, max);
  v.add_term("low", Trapezoidal{min, min, lo_edge - lo_span,
                                lo_edge + lo_span});
  v.add_term("normal", Trapezoidal{lo_edge - lo_span, lo_edge + lo_span,
                                   hi_edge - hi_span, hi_edge + hi_span});
  v.add_term("high", Trapezoidal{hi_edge - hi_span, hi_edge + hi_span, max,
                                 max});
  return v;
}

}  // namespace mpros::fuzzy
