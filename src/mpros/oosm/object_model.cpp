#include "mpros/oosm/object_model.hpp"

#include <algorithm>

#include "mpros/common/assert.hpp"

namespace mpros::oosm {

const char* to_string(Relation r) {
  switch (r) {
    case Relation::PartOf: return "part-of";
    case Relation::Proximity: return "proximity";
    case Relation::FlowTo: return "flow-to";
    case Relation::KindOf: return "kind-of";
    case Relation::RefersTo: return "refers-to";
  }
  return "?";
}

ObjectModel::ObjectRecord& ObjectModel::allocate_slot(ObjectId id) {
  if (id.value() >= objects_.size()) {
    objects_.resize(id.value() + 1);
  }
  std::optional<ObjectRecord>& slot = objects_[id.value()];
  MPROS_EXPECTS(!slot.has_value());
  slot.emplace();
  ++live_count_;
  creation_order_.push_back(id);
  return *slot;
}

ObjectId ObjectModel::create_object(std::string name,
                                    domain::EquipmentKind kind) {
  const ObjectId id(next_id_++);
  ObjectRecord& rec = allocate_slot(id);
  rec.name = std::move(name);
  rec.kind = kind;
  notify(OosmEvent{OosmEvent::Kind::ObjectCreated, id, {}, {}, {}});
  return id;
}

ObjectId ObjectModel::create_object_bulk(std::string name,
                                         domain::EquipmentKind kind,
                                         PropertyMap properties) {
  const ObjectId id(next_id_++);
  ObjectRecord& rec = allocate_slot(id);
  rec.name = std::move(name);
  rec.kind = kind;
  rec.properties = std::move(properties);
  notify(OosmEvent{OosmEvent::Kind::ObjectCreated, id, {}, {}, {}});
  return id;
}

void ObjectModel::create_object_with_id(ObjectId id, std::string name,
                                        domain::EquipmentKind kind) {
  MPROS_EXPECTS(id.valid() && !exists(id));
  ObjectRecord& rec = allocate_slot(id);
  rec.name = std::move(name);
  rec.kind = kind;
  next_id_ = std::max(next_id_, id.value() + 1);
  notify(OosmEvent{OosmEvent::Kind::ObjectCreated, id, {}, {}, {}});
}

void ObjectModel::delete_object(ObjectId id) {
  ObjectRecord& rec = record(id);

  // Remove edges referencing this object from its neighbors.
  for (std::size_t r = 0; r < kRelationCount; ++r) {
    for (const ObjectId to : rec.out[r]) {
      auto& in = record(to).in[r];
      in.erase(std::remove(in.begin(), in.end(), id), in.end());
    }
    for (const ObjectId from : rec.in[r]) {
      auto& out = record(from).out[r];
      out.erase(std::remove(out.begin(), out.end(), id), out.end());
    }
  }
  objects_[id.value()].reset();
  --live_count_;
  creation_order_.erase(
      std::remove(creation_order_.begin(), creation_order_.end(), id),
      creation_order_.end());
  notify(OosmEvent{OosmEvent::Kind::ObjectDeleted, id, {}, {}, {}});
}

bool ObjectModel::exists(ObjectId id) const {
  return id.value() < objects_.size() && objects_[id.value()].has_value();
}

ObjectModel::ObjectRecord& ObjectModel::record(ObjectId id) {
  MPROS_EXPECTS(exists(id));
  return *objects_[id.value()];
}

const ObjectModel::ObjectRecord& ObjectModel::record(ObjectId id) const {
  MPROS_EXPECTS(exists(id));
  return *objects_[id.value()];
}

const std::string& ObjectModel::name(ObjectId id) const {
  return record(id).name;
}

domain::EquipmentKind ObjectModel::kind(ObjectId id) const {
  return record(id).kind;
}

std::optional<ObjectId> ObjectModel::find_by_name(
    const std::string& name) const {
  for (const ObjectId id : creation_order_) {
    if (record(id).name == name) return id;
  }
  return std::nullopt;
}

std::vector<ObjectId> ObjectModel::objects_of_kind(
    domain::EquipmentKind kind) const {
  std::vector<ObjectId> out;
  for (const ObjectId id : creation_order_) {
    if (record(id).kind == kind) out.push_back(id);
  }
  return out;
}

std::vector<ObjectId> ObjectModel::all_objects() const {
  return creation_order_;
}

void ObjectModel::set_property(ObjectId id, const std::string& key,
                               db::Value value) {
  record(id).properties.set(key, std::move(value));
  notify(OosmEvent{OosmEvent::Kind::PropertyChanged, id, key, {}, {}});
}

std::optional<db::Value> ObjectModel::property(ObjectId id,
                                               const std::string& key) const {
  const db::Value* v = record(id).properties.find(key);
  if (v == nullptr) return std::nullopt;
  return *v;
}

const PropertyMap& ObjectModel::properties(ObjectId id) const {
  return record(id).properties;
}

void ObjectModel::add_edge(ObjectId from, Relation relation, ObjectId to) {
  // record() doubles as the existence check (it asserts on unknown ids).
  const auto r = static_cast<std::size_t>(relation);
  auto& out = record(from).out[r];
  if (std::find(out.begin(), out.end(), to) != out.end()) return;
  out.push_back(to);
  record(to).in[r].push_back(from);
  notify(OosmEvent{OosmEvent::Kind::RelationAdded, from, {}, relation, to});
}

void ObjectModel::relate(ObjectId from, Relation relation, ObjectId to) {
  MPROS_EXPECTS(from != to);
  add_edge(from, relation, to);
  if (relation == Relation::Proximity) add_edge(to, relation, from);
}

std::vector<ObjectId> ObjectModel::related(ObjectId from,
                                           Relation relation) const {
  return record(from).out[static_cast<std::size_t>(relation)];
}

std::vector<ObjectId> ObjectModel::related_to(ObjectId to,
                                              Relation relation) const {
  return record(to).in[static_cast<std::size_t>(relation)];
}

bool ObjectModel::has_relation(ObjectId from, Relation relation,
                               ObjectId to) const {
  const auto& out = record(from).out[static_cast<std::size_t>(relation)];
  return std::find(out.begin(), out.end(), to) != out.end();
}

std::vector<ObjectId> ObjectModel::downstream_of(ObjectId id) const {
  std::vector<ObjectId> result;
  std::vector<ObjectId> frontier{id};
  while (!frontier.empty()) {
    const ObjectId current = frontier.back();
    frontier.pop_back();
    for (const ObjectId next : related(current, Relation::FlowTo)) {
      if (std::find(result.begin(), result.end(), next) != result.end()) {
        continue;  // cycles (closed fluid loops) are expected
      }
      if (next == id) continue;
      result.push_back(next);
      frontier.push_back(next);
    }
  }
  return result;
}

std::optional<ObjectId> ObjectModel::parent_of(ObjectId id) const {
  const auto parents = related(id, Relation::PartOf);
  if (parents.empty()) return std::nullopt;
  MPROS_ASSERT(parents.size() == 1);
  return parents.front();
}

std::vector<ObjectId> ObjectModel::components_of(ObjectId id) const {
  std::vector<ObjectId> result;
  std::vector<ObjectId> frontier{id};
  while (!frontier.empty()) {
    const ObjectId current = frontier.back();
    frontier.pop_back();
    for (const ObjectId child : related_to(current, Relation::PartOf)) {
      result.push_back(child);
      frontier.push_back(child);
    }
  }
  return result;
}

ObjectModel::SubscriptionId ObjectModel::subscribe(Listener listener) {
  MPROS_EXPECTS(listener != nullptr);
  const SubscriptionId id = next_subscription_++;
  listeners_.emplace(id, std::move(listener));
  return id;
}

void ObjectModel::unsubscribe(SubscriptionId id) {
  MPROS_EXPECTS(listeners_.erase(id) == 1);
}

void ObjectModel::notify(const OosmEvent& event) {
  for (const auto& [id, listener] : listeners_) listener(event);
}

}  // namespace mpros::oosm
