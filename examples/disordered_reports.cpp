// Demonstrates the §5.1 requirement directly: knowledge fusion must
// "accommodate inputs which are incomplete, time-disordered, fragmentary,
// and which have gaps, inconsistencies, and contradictions."
//
// The same six-report set is delivered (a) in order on a perfect network
// and (b) shuffled/duplicated/delayed on a hostile one; the fused beliefs
// are printed side by side.
//
//   ./build/examples/disordered_reports

#include <cstdio>

#include "mpros/mpros/mpros.hpp"

namespace {

using namespace mpros;
using domain::FailureMode;

std::vector<net::FailureReport> make_reports(ObjectId motor) {
  std::vector<net::FailureReport> reports;
  const struct {
    FailureMode mode;
    double severity, belief;
    std::uint64_t ks;
  } specs[] = {
      {FailureMode::MotorImbalance, 0.6, 0.7, 1},
      {FailureMode::MotorImbalance, 0.5, 0.6, 3},
      {FailureMode::ShaftMisalignment, 0.4, 0.5, 2},
      {FailureMode::MotorBearingWear, 0.5, 0.7, 4},
      {FailureMode::MotorBearingWear, 0.6, 0.8, 1},
      {FailureMode::MotorImbalance, 0.7, 0.6, 2},
  };
  double t = 100.0;
  for (const auto& s : specs) {
    net::FailureReport r;
    r.dc = DcId(1);
    r.knowledge_source = KnowledgeSourceId(s.ks);
    r.sensed_object = motor;
    r.machine_condition = domain::condition_id(s.mode);
    r.severity = s.severity;
    r.belief = s.belief;
    r.timestamp = SimTime::from_seconds(t);
    t += 60.0;
    reports.push_back(r);
  }
  return reports;
}

void print_state(const char* label, pdme::PdmeExecutive& pdme,
                 ObjectId motor) {
  std::printf("%s\n", label);
  for (const auto& item : pdme.prioritized_list(motor)) {
    std::printf("  %-28s bel=%.4f pl=%.4f\n",
                domain::condition_text(item.mode).c_str(), item.fused_belief,
                item.plausibility);
  }
}

}  // namespace

int main() {
  oosm::ObjectModel model_a, model_b;
  const auto ship_a = oosm::build_ship(model_a, "A", 1, 1);
  const auto ship_b = oosm::build_ship(model_b, "B", 1, 1);
  pdme::PdmeExecutive pdme_a(model_a);
  pdme::PdmeExecutive pdme_b(model_b);

  // (a) Perfect, in-order delivery.
  for (const auto& r : make_reports(ship_a.plants[0].motor)) pdme_a.accept(r);

  // (b) Hostile transport: heavy jitter reorders, duplicates retransmit.
  net::NetworkConfig hostile;
  hostile.jitter = SimTime::from_seconds(120.0);
  hostile.duplicate_probability = 0.4;
  hostile.seed = 1234;
  net::SimNetwork network(hostile);
  pdme_b.attach_to_network(network);
  for (const auto& r : make_reports(ship_b.plants[0].motor)) {
    network.send("dc-1", "pdme", net::wrap(r), r.timestamp);
  }
  network.flush();

  print_state("In-order delivery:", pdme_a, ship_a.plants[0].motor);
  print_state("Disordered + duplicated delivery:", pdme_b,
              ship_b.plants[0].motor);

  const auto na = pdme_a.stats();
  const auto nb = pdme_b.stats();
  std::printf("\nreports fused: in-order=%llu, disordered=%llu "
              "(duplicates dropped: %llu)\n",
              static_cast<unsigned long long>(na.reports_accepted),
              static_cast<unsigned long long>(nb.reports_accepted),
              static_cast<unsigned long long>(nb.duplicates_dropped));
  std::printf("Fused beliefs match because Dempster-Shafer combination is "
              "commutative and the PDME de-duplicates retransmissions.\n");
  return 0;
}
