file(REMOVE_RECURSE
  "libmpros_common.a"
)
