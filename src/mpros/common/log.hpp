#pragma once
// Minimal thread-safe leveled logger.
//
// Components log sparingly (report arrival, fusion decisions, alarms); the
// fleet benches silence everything below Warn. printf-style formatting keeps
// this dependency-free.

#include <cstdarg>

namespace mpros {

enum class LogLevel { Trace, Debug, Info, Warn, Error, Off };

/// Set the global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Core sink: single fprintf to stderr under a mutex.
void log_message(LogLevel level, const char* component, const char* fmt, ...)
#if defined(__GNUC__) || defined(__clang__)
    __attribute__((format(printf, 3, 4)))
#endif
    ;

/// Telemetry hook: bumps "<component>.log_warnings" / ".log_errors" in the
/// metrics registry, one health counter per component regardless of the
/// sink threshold. Only Warn/Error reach here (the macro folds the level
/// check away for lower severities).
void count_log_event(LogLevel level, const char* component);

}  // namespace mpros

#define MPROS_LOG(level, component, ...)                       \
  do {                                                         \
    if (static_cast<int>(level) >=                             \
        static_cast<int>(::mpros::LogLevel::Warn) &&           \
        static_cast<int>(level) <                              \
            static_cast<int>(::mpros::LogLevel::Off)) {        \
      ::mpros::count_log_event(level, component);              \
    }                                                          \
    if (static_cast<int>(level) >=                             \
        static_cast<int>(::mpros::log_level())) {              \
      ::mpros::log_message(level, component, __VA_ARGS__);     \
    }                                                          \
  } while (false)

#define MPROS_LOG_DEBUG(component, ...) \
  MPROS_LOG(::mpros::LogLevel::Debug, component, __VA_ARGS__)
#define MPROS_LOG_INFO(component, ...) \
  MPROS_LOG(::mpros::LogLevel::Info, component, __VA_ARGS__)
#define MPROS_LOG_WARN(component, ...) \
  MPROS_LOG(::mpros::LogLevel::Warn, component, __VA_ARGS__)
#define MPROS_LOG_ERROR(component, ...) \
  MPROS_LOG(::mpros::LogLevel::Error, component, __VA_ARGS__)
