#include "mpros/plant/ema.hpp"

#include <algorithm>

#include "mpros/common/assert.hpp"

namespace mpros::plant {

EmaSimulator::EmaSimulator(EmaConfig cfg) : cfg_(cfg), rng_(cfg.seed) {}

std::vector<EmaSample> EmaSimulator::generate(std::size_t n,
                                              double stiction_level,
                                              double move_rate) {
  MPROS_EXPECTS(stiction_level >= 0.0 && stiction_level <= 1.0);
  std::vector<EmaSample> out(n);
  injected_spikes_ = 0;

  double cpos = 0.0;
  std::size_t cooldown = 0;       // samples until the next event may start
  std::size_t motion_left = 0;    // samples remaining in a commanded move
  std::size_t spike_left = 0;     // samples remaining in a stiction spike

  // Expected spikes per sample at full stiction; tuned so a few thousand
  // samples at level 1.0 yield well over the ">4 spikes" trip count.
  const double spike_rate = 0.004 * stiction_level;

  for (std::size_t i = 0; i < n; ++i) {
    double current = cfg_.baseline_current;

    if (cooldown > 0) --cooldown;

    if (motion_left > 0) {
      current += cfg_.motion_current;
      cpos += 0.5;  // the commanded ramp continues
      --motion_left;
      if (motion_left == 0) cooldown = cfg_.settle_gap;
    } else if (spike_left > 0) {
      current += cfg_.spike_current;
      --spike_left;
      if (spike_left == 0) cooldown = cfg_.settle_gap;
    } else if (cooldown == 0) {
      if (rng_.bernoulli(move_rate)) {
        motion_left = 8;  // commanded slew: current AND cpos change together
      } else if (rng_.bernoulli(spike_rate)) {
        spike_left = cfg_.spike_width;  // stiction: current only
        ++injected_spikes_;
      }
    }

    out[i].current = current + rng_.normal(0.0, cfg_.noise_sigma);
    out[i].cpos = cpos;
  }
  return out;
}

}  // namespace mpros::plant
