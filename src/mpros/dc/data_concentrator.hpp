#pragma once
// The Data Concentrator (paper §1.1, §5.8).
//
// "Devices called Data Concentrators are placed near the ship's machinery.
// Each of these is a computer in its own right and has the major
// responsibility for diagnostics and prognostics." A DC hosts the four
// Phase-1 analyzers:
//   1. the DLI-style vibration expert system (rules::RuleEngine),
//   2. State Based Feature Recognition (sbfr::SbfrSystem),
//   3. the Wavelet Neural Network (nn::WnnClassifier, shared & pre-trained),
//   4. fuzzy-logic diagnostics on non-vibration data (fuzzy::FuzzyDiagnoser),
// coordinated by the event scheduler, with results logged in the DC's
// relational database and emitted as §7 failure reports.

#include <map>
#include <memory>
#include <span>
#include <string_view>
#include <tuple>
#include <vector>

#include "mpros/common/ids.hpp"
#include "mpros/db/database.hpp"
#include "mpros/dc/scheduler.hpp"
#include "mpros/dc/sensor_validator.hpp"
#include "mpros/fuzzy/chiller_fuzzy.hpp"
#include "mpros/net/messages.hpp"
#include "mpros/net/network.hpp"
#include "mpros/net/reliable.hpp"
#include "mpros/net/report.hpp"
#include "mpros/nn/classifier.hpp"
#include "mpros/plant/chiller.hpp"
#include "mpros/rules/believability.hpp"
#include "mpros/rules/dli_rules.hpp"
#include "mpros/sbfr/interpreter.hpp"
#include "mpros/telemetry/recorder.hpp"
#include "mpros/telemetry/trace.hpp"

namespace mpros::dc {

/// Well-known knowledge-source ids (§5.5's "KS ID").
inline constexpr KnowledgeSourceId kDliExpertSystem{1};
inline constexpr KnowledgeSourceId kSbfr{2};
inline constexpr KnowledgeSourceId kWaveletNeuralNet{3};
inline constexpr KnowledgeSourceId kFuzzyLogic{4};
inline constexpr KnowledgeSourceId kSensorValidator{5};

[[nodiscard]] const char* knowledge_source_name(KnowledgeSourceId ks);

/// OOSM object ids of the machinery this DC instruments.
struct MachineRefs {
  ObjectId chiller;
  ObjectId motor;
  ObjectId gearbox;
  ObjectId compressor;
};

struct DcConfig {
  DcId id{1};
  double sample_rate_hz = 40960.0;   ///< vibration digitizer rate
  std::size_t window = 8192;         ///< samples per vibration record
  /// Motor-current signature analysis needs sub-Hz resolution to resolve
  /// pole-pass sidebands, so it records long windows at a low rate.
  double current_sample_rate_hz = 4096.0;
  std::size_t current_window = 32768;
  SimTime vibration_period = SimTime::from_seconds(600.0);
  SimTime process_period = SimTime::from_seconds(60.0);
  double wnn_report_threshold = 0.45;
  /// Report suppression: a (source, object, condition) tuple re-reports
  /// only when its severity moves by at least `report_hysteresis` or after
  /// `report_refresh` of silence. Repeated identical conclusions from the
  /// same analyzer are not independent evidence, and Dempster-Shafer at the
  /// PDME would otherwise double-count them.
  double report_hysteresis = 0.05;
  SimTime report_refresh = SimTime::from_hours(0.5);
  /// Publish a SensorDataMessage every Nth process scan (0 disables).
  std::size_t sensor_publish_every = 5;
  bool enable_dli = true;
  bool enable_sbfr = true;
  bool enable_fuzzy = true;
  /// Screen every acquisition for instrument faults; quarantined channels
  /// are withheld from the analyzers and reported as sensor faults.
  bool enable_sensor_validation = true;
  SensorValidatorConfig sensor_validation = chiller_validator_config();
  /// Reliable report delivery: wrap reports in sequence-numbered envelopes,
  /// buffer them until the PDME acks, and retransmit with backoff. Off =
  /// legacy fire-and-forget FailureReportMsg datagrams.
  bool reliable_delivery = true;
  net::ReliableConfig reliable;
  /// Cadence of the scheduler task that sweeps the retransmit buffer.
  SimTime retransmit_sweep_period = SimTime::from_seconds(60.0);
  /// Cadence of DC->PDME liveness heartbeats (0 disables).
  SimTime heartbeat_period = SimTime::from_seconds(60.0);
};

class DataConcentrator {
 public:
  /// `chiller` must outlive the DC. `wnn` may be null (WNN analyzer off)
  /// and is shared because training one classifier per DC would waste the
  /// fleet bench; real DCs would flash the same trained network anyway.
  DataConcentrator(DcConfig cfg, MachineRefs refs,
                   plant::ChillerSimulator& chiller,
                   std::shared_ptr<nn::WnnClassifier> wnn = nullptr);

  /// Advance the DC (and its chiller) to absolute time `t`, running every
  /// scheduled test that falls due. Returns the §7 reports generated.
  std::vector<net::FailureReport> advance_to(SimTime t);

  /// Sensor-data batches accumulated since the last drain (§1's "raw
  /// sensor data to other shipboard systems"; published every
  /// `sensor_publish_every` process scans).
  std::vector<net::SensorDataMessage> drain_sensor_data();

  /// Handle a §5.8 scheduler command arriving over the network.
  void handle_command(const net::TestCommandMessage& command);

  /// Dispatch any datagram from the ship's network: test commands and
  /// (when reliable delivery is on) PDME acknowledgements. Unknown or
  /// corrupt payloads are dropped.
  void handle_wire(const net::Message& msg);

  /// Retransmission + heartbeat payloads accumulated by the DC's scheduler
  /// tasks since the last drain; the assembler sends them on the driver
  /// thread at their generation timestamps.
  struct WireDatagram {
    SimTime at;
    std::vector<std::uint8_t> payload;
  };
  std::vector<WireDatagram> drain_wire_outbox();

  [[nodiscard]] bool reliable_delivery() const {
    return cfg_.reliable_delivery;
  }
  [[nodiscard]] net::ReliableSender& reliable() { return reliable_; }
  [[nodiscard]] const SensorValidator& validator() const {
    return validator_;
  }

  /// Command an immediate vibration test (§5.8: "the PDME or any other
  /// client can command the scheduler to conduct another test"). Takes
  /// effect on the next advance_to().
  void request_vibration_test();

  /// Attach a flight-recorder journal (nullptr detaches). The DC logs test
  /// runs, commanded tests and SBFR latches into it for post-hoc diagnosis;
  /// `journal` must outlive the DC or be detached first.
  void set_journal(telemetry::FlightRecorder* journal) { journal_ = journal; }

  [[nodiscard]] DcId id() const { return cfg_.id; }
  [[nodiscard]] db::Database& database() { return db_; }
  [[nodiscard]] rules::BelievabilityTable& believability() {
    return beliefs_;
  }
  [[nodiscard]] const MachineRefs& machines() const { return refs_; }

  /// Counters for the throughput benches.
  struct Stats {
    std::uint64_t vibration_tests = 0;
    std::uint64_t process_scans = 0;
    std::uint64_t samples_processed = 0;
    std::uint64_t reports_emitted = 0;
    std::uint64_t sensor_fault_reports = 0;
    std::uint64_t heartbeats_sent = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  void run_vibration_test(SimTime now);
  void run_process_scan(SimTime now);
  void emit(SimTime now, KnowledgeSourceId ks, ObjectId sensed,
            const rules::Diagnosis& d);
  void emit_raw(SimTime now, KnowledgeSourceId ks, ObjectId sensed,
                domain::FailureMode mode, double severity, double belief,
                std::string explanation, std::string recommendation,
                const std::vector<rules::PrognosticPoint>& prognosis);
  [[nodiscard]] ObjectId sensed_object_for(domain::FailureMode mode) const;
  [[nodiscard]] ObjectId object_for_channel(std::string_view channel) const;
  void emit_sensor_fault(SimTime now, const std::string& channel,
                         domain::SensorFaultKind kind, bool cleared);
  /// Validate one waveform acquisition; returns false when the channel is
  /// quarantined and its data must be withheld from the analyzers.
  bool validate_window(SimTime now, const std::string& channel,
                       std::span<const double> samples);
  void setup_database();
  void setup_sbfr();

  DcConfig cfg_;
  MachineRefs refs_;
  plant::ChillerSimulator& chiller_;
  std::shared_ptr<nn::WnnClassifier> wnn_;

  EventScheduler scheduler_;
  EventScheduler::TaskId vibration_task_ = 0;
  db::Database db_;
  rules::BelievabilityTable beliefs_;
  rules::FeatureExtractor extractor_;
  rules::RuleEngine dli_;
  fuzzy::FuzzyDiagnoser fuzzy_;
  sbfr::SbfrSystem sbfr_;
  std::vector<std::string> sbfr_channel_keys_;  // process key per channel
  std::vector<domain::FailureMode> sbfr_machine_mode_;  // mode per machine

  struct LastReport {
    double severity = -1.0;
    SimTime at{-1};
  };
  std::map<std::tuple<std::uint64_t, std::uint64_t, std::uint64_t>,
           LastReport>
      last_reports_;  // (ks, object, condition) -> last emission

  telemetry::FlightRecorder* journal_ = nullptr;
  telemetry::TraceId current_trace_ = 0;  ///< stamped on emitted reports

  SensorValidator validator_;
  net::ReliableSender reliable_;
  std::vector<net::FailureReport> outbox_;
  std::vector<net::SensorDataMessage> sensor_outbox_;
  std::vector<WireDatagram> wire_outbox_;
  std::vector<double> vib_buffer_;
  std::vector<double> current_buffer_;
  Stats stats_;
};

}  // namespace mpros::dc
