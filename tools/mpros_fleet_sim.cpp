// mpros_fleet_sim — command-line fleet-tier scenario runner.
//
// Assembles N full ShipSystems with their uplinks, the hostile ship-to-
// shore link, and the shore FleetServer; runs simulated time; prints the
// shore operator's fleet view (liveness, comparative outliers, the
// cross-fleet maintenance list).
//
//   mpros_fleet_sim --ships 8 --hours 4
//                   --fault 0:MotorImbalance:0.5:0.5:0.9
//                   --shore-drop 0.15 --shore-dup 0.05
//                   --outage 1800:3600
//
// --ships N            hulls in the fleet (default 4)
// --plants N           chiller plants per hull (default 1)
// --hours H            simulated duration (default 2)
// --fault ship:Mode:onset_h:ramp_h:severity   (repeatable; plant 0)
// --shore-drop P       shore-link drop probability (default 0.1)
// --shore-dup P        shore-link duplication probability (default 0.02)
// --outage FROM:TO     hard shore partition window, seconds (repeatable)
// --seed N             scenario seed
// --stats              also print server/uplink counters

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "mpros/fleet/fleet_sim.hpp"

namespace {

using namespace mpros;
using namespace mpros::fleet;

[[noreturn]] void usage_error(const std::string& message) {
  std::fprintf(stderr,
               "mpros_fleet_sim: %s\n(see the header of "
               "tools/mpros_fleet_sim.cpp for usage)\n",
               message.c_str());
  std::exit(2);
}

std::optional<domain::FailureMode> parse_mode(const std::string& name) {
  for (const auto mode : domain::all_failure_modes()) {
    if (name == domain::to_string(mode)) return mode;
  }
  return std::nullopt;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    out.push_back(s.substr(start, pos - start));
    if (pos == std::string::npos) break;
    start = pos + 1;
  }
  return out;
}

struct FaultSpec {
  std::size_t ship = 0;
  plant::FaultEvent event;
};

FaultSpec parse_fault(const std::string& spec) {
  const auto parts = split(spec, ':');
  if (parts.size() != 5) {
    usage_error(
        "--fault expects ship:Mode:onset_h:ramp_h:severity, got '" + spec +
        "'");
  }
  FaultSpec f;
  f.ship = static_cast<std::size_t>(std::atoi(parts[0].c_str()));
  const auto mode = parse_mode(parts[1]);
  if (!mode) usage_error("unknown failure mode '" + parts[1] + "'");
  f.event.mode = *mode;
  f.event.onset = SimTime::from_hours(std::atof(parts[2].c_str()));
  f.event.ramp = SimTime::from_hours(std::atof(parts[3].c_str()));
  f.event.max_severity = std::atof(parts[4].c_str());
  f.event.profile = plant::GrowthProfile::Linear;
  return f;
}

}  // namespace

int main(int argc, char** argv) {
  FleetSimConfig cfg;
  cfg.ship_count = 4;
  cfg.ship_template.plant_count = 1;
  cfg.shore.drop_probability = 0.1;
  cfg.shore.duplicate_probability = 0.02;
  double hours = 2.0;
  bool show_stats = false;
  std::vector<FaultSpec> faults;
  std::vector<net::Outage> outages;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage_error("missing value after " + arg);
      return argv[++i];
    };
    if (arg == "--ships") {
      cfg.ship_count = static_cast<std::size_t>(std::atoi(next().c_str()));
    } else if (arg == "--plants") {
      cfg.ship_template.plant_count =
          static_cast<std::size_t>(std::atoi(next().c_str()));
    } else if (arg == "--hours") {
      hours = std::atof(next().c_str());
    } else if (arg == "--fault") {
      faults.push_back(parse_fault(next()));
    } else if (arg == "--shore-drop") {
      cfg.shore.drop_probability = std::atof(next().c_str());
    } else if (arg == "--shore-dup") {
      cfg.shore.duplicate_probability = std::atof(next().c_str());
    } else if (arg == "--outage") {
      const auto parts = split(next(), ':');
      if (parts.size() != 2) usage_error("--outage expects FROM:TO seconds");
      outages.push_back({"fleet",
                         SimTime::from_seconds(std::atof(parts[0].c_str())),
                         SimTime::from_seconds(std::atof(parts[1].c_str())),
                         1.0});
    } else if (arg == "--seed") {
      cfg.seed = std::strtoull(next().c_str(), nullptr, 0);
    } else if (arg == "--stats") {
      show_stats = true;
    } else {
      usage_error("unknown argument '" + arg + "'");
    }
  }
  if (cfg.ship_count == 0) usage_error("--ships must be >= 1");

  FleetSim fleet(cfg);
  for (const net::Outage& outage : outages) {
    fleet.shore().schedule_outage(outage);
  }
  for (const FaultSpec& f : faults) {
    if (f.ship >= fleet.ship_count()) {
      usage_error("--fault ship index out of range");
    }
    fleet.ship(f.ship).chiller(0).faults().schedule(f.event);
  }

  fleet.run_until(SimTime::from_hours(hours));

  std::printf("%s", fleet.server().render_fleet_view().c_str());

  if (show_stats) {
    const FleetServer::Stats s = fleet.server().stats();
    const net::NetworkStats shore = fleet.shore().stats();
    std::printf(
        "\n--- shore-link stats ---\n"
        "sent %llu, delivered %llu, dropped %llu, duplicated %llu\n"
        "summaries applied %llu (stale %llu, duplicates %llu, "
        "malformed %llu)\n"
        "acks sent %llu, gaps detected %llu, liveness transitions %llu\n",
        static_cast<unsigned long long>(shore.sent),
        static_cast<unsigned long long>(shore.delivered),
        static_cast<unsigned long long>(shore.dropped),
        static_cast<unsigned long long>(shore.duplicated),
        static_cast<unsigned long long>(s.summaries_applied),
        static_cast<unsigned long long>(s.summaries_stale),
        static_cast<unsigned long long>(s.duplicates_dropped),
        static_cast<unsigned long long>(s.malformed_dropped),
        static_cast<unsigned long long>(s.acks_sent),
        static_cast<unsigned long long>(s.gaps_detected),
        static_cast<unsigned long long>(s.liveness_transitions));
    for (std::size_t k = 0; k < fleet.ship_count(); ++k) {
      const auto up = fleet.ship(k).uplink()->stats();
      std::printf("hull %zu uplink: enveloped %llu, retransmits %llu, "
                  "acked %llu, max-backoff %llu\n",
                  k + 1, static_cast<unsigned long long>(up.enveloped),
                  static_cast<unsigned long long>(up.retransmits),
                  static_cast<unsigned long long>(up.acked),
                  static_cast<unsigned long long>(up.max_backoff_hits));
    }
    for (std::size_t k = 0; k < fleet.ship_count(); ++k) {
      const auto ps = fleet.ship(k).pdme().stats();
      std::printf("hull %zu pdme: queue_full %llu, commands %llu, "
                  "command acks %llu",
                  k + 1, static_cast<unsigned long long>(ps.queue_full),
                  static_cast<unsigned long long>(ps.commands_sent),
                  static_cast<unsigned long long>(ps.command_acks));
      for (std::size_t sh = 0; sh < fleet.ship(k).pdme().shard_count(); ++sh) {
        std::printf(", shard%zu.depth %.0f", sh,
                    telemetry::Registry::instance()
                        .gauge("pdme.shard" + std::to_string(sh) + ".depth")
                        .value());
      }
      std::printf("\n");
    }
    auto& reg = telemetry::Registry::instance();
    std::printf("supervisor: wedges %llu, restarts %llu; config: "
                "applied %llu, rejected %llu, shore downlinks %llu\n",
                static_cast<unsigned long long>(
                    reg.counter("dc.wedges_detected").value()),
                static_cast<unsigned long long>(
                    reg.counter("mpros.supervisor_restarts").value()),
                static_cast<unsigned long long>(
                    reg.counter("dc.config_applied").value()),
                static_cast<unsigned long long>(
                    reg.counter("dc.config_rejected").value()),
                static_cast<unsigned long long>(s.commands_sent));
  }
  return 0;
}
