#pragma once
// Database: a named collection of tables with undo-log transactions.
//
// Thread-compatible (external synchronization); the DC wraps one behind its
// scheduler thread and the OOSM behind its single-writer event loop.

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "mpros/db/table.hpp"

namespace mpros::db {

class Database {
 public:
  Database() = default;

  /// Create a table; the schema's first column must be the INTEGER primary
  /// key. Aborts if the name already exists.
  Table& create_table(TableSchema schema);

  [[nodiscard]] bool has_table(const std::string& name) const;

  /// Aborts if absent — table names are static program structure here.
  Table& table(const std::string& name);
  [[nodiscard]] const Table& table(const std::string& name) const;

  void drop_table(const std::string& name);

  [[nodiscard]] std::vector<std::string> table_names() const;

  // -- Transactions ---------------------------------------------------------
  // A transaction records inverse operations; rollback() replays them in
  // reverse. Transactions do not nest.

  void begin();
  void commit();
  void rollback();
  [[nodiscard]] bool in_transaction() const { return in_txn_; }

  /// Transactional row ops (usable outside a transaction too, where they
  /// just forward to the table).
  std::int64_t insert(const std::string& table_name, Row row);
  std::int64_t insert_auto(const std::string& table_name, Row row_without_key);
  bool update(const std::string& table_name, std::int64_t key,
              const std::string& column, Value v);
  bool erase(const std::string& table_name, std::int64_t key);

 private:
  struct UndoOp {
    enum class Kind { DeleteInserted, RestoreUpdated, ReinsertErased } kind;
    std::string table;
    std::int64_t key = 0;
    std::string column;  // RestoreUpdated
    Value old_value;     // RestoreUpdated
    Row old_row;         // ReinsertErased
  };

  std::unordered_map<std::string, std::unique_ptr<Table>> tables_;
  std::vector<UndoOp> undo_log_;
  bool in_txn_ = false;
};

}  // namespace mpros::db
