file(REMOVE_RECURSE
  "CMakeFiles/mpros_pdme.dir/browser.cpp.o"
  "CMakeFiles/mpros_pdme.dir/browser.cpp.o.d"
  "CMakeFiles/mpros_pdme.dir/health.cpp.o"
  "CMakeFiles/mpros_pdme.dir/health.cpp.o.d"
  "CMakeFiles/mpros_pdme.dir/mimosa.cpp.o"
  "CMakeFiles/mpros_pdme.dir/mimosa.cpp.o.d"
  "CMakeFiles/mpros_pdme.dir/pdme.cpp.o"
  "CMakeFiles/mpros_pdme.dir/pdme.cpp.o.d"
  "CMakeFiles/mpros_pdme.dir/resident.cpp.o"
  "CMakeFiles/mpros_pdme.dir/resident.cpp.o.d"
  "CMakeFiles/mpros_pdme.dir/spatial.cpp.o"
  "CMakeFiles/mpros_pdme.dir/spatial.cpp.o.d"
  "libmpros_pdme.a"
  "libmpros_pdme.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpros_pdme.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
