#pragma once
// The Object-Oriented Ship Model (paper §4).
//
// "Entities in the OOSM are modeled as objects with properties and
// relationships to other entities. Some ... represent physical entities
// such as sensors, motors, compressors, decks, and ships while other OOSM
// objects represent more abstract items such as a failure prediction report
// or a knowledge source." (§4.2)
//
// The event model (§4.5) notifies subscribers of object creation, property
// changes, and relationship changes "without the need to poll" — the PDME's
// Knowledge Fusion subscribes to process failure-prediction reports as they
// are posted, and the browser updates its display the same way.
//
// Thread model: single writer (the PDME executive); listeners run inline on
// the writer thread.
//
// Reference stability: records live in a dense id-indexed table, so
// references returned by name()/properties() are invalidated by object
// creation (table growth). Copy out anything needed across a mutation.

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "mpros/common/ids.hpp"
#include "mpros/db/value.hpp"
#include "mpros/domain/equipment.hpp"
#include "mpros/oosm/property_map.hpp"

namespace mpros::oosm {

/// Relationship kinds per §4.2 ("part-of", proximity, kind-of, refers-to)
/// plus the §10.1 flow relation for spatial reasoning.
enum class Relation : std::uint8_t {
  PartOf = 0,   ///< child PartOf parent
  Proximity,    ///< symmetric spatial adjacency (stored both ways)
  FlowTo,       ///< fluid/energy flows from -> to
  KindOf,       ///< instance KindOf type object
  RefersTo,     ///< e.g. a report RefersTo the machine it diagnoses
};

[[nodiscard]] const char* to_string(Relation r);
inline constexpr std::size_t kRelationCount = 5;

struct OosmEvent {
  enum class Kind { ObjectCreated, ObjectDeleted, PropertyChanged,
                    RelationAdded } kind;
  ObjectId object;          ///< subject (for RelationAdded: the `from` side)
  std::string property;     ///< PropertyChanged only
  Relation relation{};      ///< RelationAdded only
  ObjectId other;           ///< RelationAdded only
};

class ObjectModel {
 public:
  ObjectModel() = default;

  // -- Object lifecycle -----------------------------------------------------

  ObjectId create_object(std::string name, domain::EquipmentKind kind);

  /// Create an object with its initial properties in one step, emitting a
  /// single ObjectCreated event (the properties are readable by the time
  /// listeners run). The bulk path exists for high-rate posters — the PDME
  /// posts one Report object per fused conclusion and the per-property
  /// notify() fan-out dominated that cost. No PropertyChanged events are
  /// emitted for the initial properties; listeners keying on a specific
  /// marker property should have the poster set that one marker with
  /// set_property() afterwards (the PDME's "posted" contract).
  ObjectId create_object_bulk(std::string name, domain::EquipmentKind kind,
                              PropertyMap properties);

  void delete_object(ObjectId id);
  [[nodiscard]] bool exists(ObjectId id) const;
  [[nodiscard]] std::size_t object_count() const { return live_count_; }

  [[nodiscard]] const std::string& name(ObjectId id) const;
  [[nodiscard]] domain::EquipmentKind kind(ObjectId id) const;

  /// First object with this exact name, if any.
  [[nodiscard]] std::optional<ObjectId> find_by_name(
      const std::string& name) const;
  /// All objects of one kind, in creation order.
  [[nodiscard]] std::vector<ObjectId> objects_of_kind(
      domain::EquipmentKind kind) const;
  /// Every object, in creation order.
  [[nodiscard]] std::vector<ObjectId> all_objects() const;

  // -- Properties -------------------------------------------------------------

  void set_property(ObjectId id, const std::string& key, db::Value value);
  [[nodiscard]] std::optional<db::Value> property(ObjectId id,
                                                  const std::string& key) const;
  /// Key-sorted (same iteration order the historical std::map gave).
  [[nodiscard]] const PropertyMap& properties(ObjectId id) const;

  // -- Relationships ----------------------------------------------------------

  /// Add `from -(relation)-> to`. Proximity is symmetric and stored in both
  /// directions. Duplicate edges are ignored.
  void relate(ObjectId from, Relation relation, ObjectId to);

  /// Targets of `from -(relation)->`.
  [[nodiscard]] std::vector<ObjectId> related(ObjectId from,
                                              Relation relation) const;
  /// Sources of `-(relation)-> to`.
  [[nodiscard]] std::vector<ObjectId> related_to(ObjectId to,
                                                 Relation relation) const;
  [[nodiscard]] bool has_relation(ObjectId from, Relation relation,
                                  ObjectId to) const;

  /// Transitive closure along FlowTo starting after `id` (spatial reasoning
  /// hook of §10.1: fouled fluid propagates downstream).
  [[nodiscard]] std::vector<ObjectId> downstream_of(ObjectId id) const;

  /// Parent via PartOf (a component has at most one).
  [[nodiscard]] std::optional<ObjectId> parent_of(ObjectId id) const;
  /// Transitive PartOf children.
  [[nodiscard]] std::vector<ObjectId> components_of(ObjectId id) const;

  // -- Events -----------------------------------------------------------------

  using Listener = std::function<void(const OosmEvent&)>;
  using SubscriptionId = std::size_t;

  SubscriptionId subscribe(Listener listener);
  void unsubscribe(SubscriptionId id);

 private:
  struct ObjectRecord {
    std::string name;
    domain::EquipmentKind kind{};
    PropertyMap properties;
    std::vector<ObjectId> out[kRelationCount];
    std::vector<ObjectId> in[kRelationCount];
  };

  /// Restore an object under a specific id (persistence only).
  void create_object_with_id(ObjectId id, std::string name,
                             domain::EquipmentKind kind);

  /// Claim the (empty) slot for `id`, growing the table as needed.
  ObjectRecord& allocate_slot(ObjectId id);

  ObjectRecord& record(ObjectId id);
  [[nodiscard]] const ObjectRecord& record(ObjectId id) const;
  void notify(const OosmEvent& event);
  void add_edge(ObjectId from, Relation relation, ObjectId to);

  /// Dense id-indexed storage (ids are allocated sequentially from 1, so
  /// the table has no holes beyond deletions). record() is the innermost
  /// operation of report posting — an array index beats hashing, and bulk
  /// ingest never pays a rehash-and-relink pause.
  std::vector<std::optional<ObjectRecord>> objects_;
  std::size_t live_count_ = 0;
  std::vector<ObjectId> creation_order_;
  std::uint64_t next_id_ = 1;
  std::map<SubscriptionId, Listener> listeners_;
  SubscriptionId next_subscription_ = 1;

  friend class Persistence;
};

}  // namespace mpros::oosm
