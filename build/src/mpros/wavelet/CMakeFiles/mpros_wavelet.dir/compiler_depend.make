# Empty compiler generated dependencies file for mpros_wavelet.
# This may be replaced when dependencies are built.
