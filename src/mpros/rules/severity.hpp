#pragma once
// Severity gradients and their prognostic meaning.
//
// §6.1: the DLI expert system maps a numerical severity score into four
// gradient categories — Slight, Moderate, Serious, Extreme — corresponding
// to "no foreseeable failure, failure in months, weeks, and days". Each
// gradient also implies a default prognostic vector (time, probability
// pairs) per the §7.3 protocol.

#include <vector>

#include "mpros/common/clock.hpp"

namespace mpros::rules {

enum class Gradient { None = 0, Slight, Moderate, Serious, Extreme };

[[nodiscard]] const char* to_string(Gradient g);

/// Thresholds on the 0..1 severity score. Scores below `slight` do not fire.
struct GradientThresholds {
  double slight = 0.20;
  double moderate = 0.40;
  double serious = 0.60;
  double extreme = 0.80;
};

[[nodiscard]] Gradient gradient_of(double severity,
                                   const GradientThresholds& t = {});

/// One (time horizon, failure probability) point per §7.3; horizons are
/// relative to the report timestamp.
struct PrognosticPoint {
  SimTime horizon;
  double probability = 0.0;
};

/// Default prognostic vector for a gradient, scaled by the in-gradient
/// position of the score (a high "Serious" predicts earlier than a low one):
///  Slight   -> trouble beyond ~6 months
///  Moderate -> failure likely within months
///  Serious  -> failure likely within weeks
///  Extreme  -> failure likely within days
[[nodiscard]] std::vector<PrognosticPoint> default_prognosis(
    double severity, const GradientThresholds& t = {});

}  // namespace mpros::rules
