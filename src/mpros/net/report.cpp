#include "mpros/net/report.hpp"

#include <cstdio>
#include <span>

#include "mpros/common/assert.hpp"
#include "mpros/net/codec.hpp"

namespace mpros::net {
namespace {

constexpr std::uint16_t kReportMagic = 0x4D52;  // "MR"
// v1: original §7 fields. v2: + telemetry trace id after the version byte.
constexpr std::uint8_t kReportVersion = 2;

}  // namespace

void serialize_report_into(Writer& w, const FailureReport& r) {
  w.u16(kReportMagic);
  w.u8(kReportVersion);
  w.u64(r.trace);
  w.u64(r.dc.value());
  w.u64(r.knowledge_source.value());
  w.u64(r.sensed_object.value());
  w.u64(r.machine_condition.value());
  w.f64(r.severity);
  w.f64(r.belief);
  w.str(r.explanation);
  w.str(r.recommendations);
  w.i64(r.timestamp.micros());
  w.str(r.additional_info);
  w.u32(static_cast<std::uint32_t>(r.prognostics.size()));
  for (const PrognosticPair& p : r.prognostics) {
    w.f64(p.probability);
    w.f64(p.time_seconds);
  }
}

std::vector<std::uint8_t> serialize(const FailureReport& r) {
  Writer w;
  serialize_report_into(w, r);
  return w.take();
}

bool try_read_report_frame(TryReader& rd, FailureReport& out) {
  if (rd.u16() != kReportMagic) {
    rd.fail();
    return false;
  }
  const std::uint8_t version = rd.u8();
  if (!rd.ok() || version < 1 || version > kReportVersion) {
    rd.fail();
    return false;
  }
  out.trace = version >= 2 ? rd.u64() : 0;
  out.dc = DcId(rd.u64());
  out.knowledge_source = KnowledgeSourceId(rd.u64());
  out.sensed_object = ObjectId(rd.u64());
  out.machine_condition = ConditionId(rd.u64());
  out.severity = rd.f64();
  out.belief = rd.f64();
  rd.str(out.explanation);
  rd.str(out.recommendations);
  out.timestamp = SimTime(rd.i64());
  rd.str(out.additional_info);
  const std::uint32_t n = rd.u32();
  // Each pair is 16 bytes: reject counts the payload cannot hold before
  // reserving (a corrupted count must not become a huge allocation).
  if (!rd.ok() || n > rd.remaining() / 16) {
    rd.fail();
    return false;
  }
  out.prognostics.clear();
  out.prognostics.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    PrognosticPair p;
    p.probability = rd.f64();
    p.time_seconds = rd.f64();
    out.prognostics.push_back(p);
  }
  if (!rd.ok()) return false;
  return true;
}

std::optional<FailureReport> try_deserialize_report(
    std::span<const std::uint8_t> bytes) {
  TryReader rd(bytes);
  FailureReport r;
  if (!try_read_report_frame(rd, r) || !rd.done()) return std::nullopt;
  return r;
}

FailureReport deserialize_report(std::span<const std::uint8_t> bytes) {
  auto r = try_deserialize_report(bytes);
  MPROS_EXPECTS(r.has_value());
  return *std::move(r);
}

std::string summarize(const FailureReport& r) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "[dc=%llu ks=%llu] obj=%llu cond=%llu sev=%.2f bel=%.2f "
                "t=%s prog=%zu",
                static_cast<unsigned long long>(r.dc.value()),
                static_cast<unsigned long long>(r.knowledge_source.value()),
                static_cast<unsigned long long>(r.sensed_object.value()),
                static_cast<unsigned long long>(r.machine_condition.value()),
                r.severity, r.belief, to_string(r.timestamp).c_str(),
                r.prognostics.size());
  return buf;
}

}  // namespace mpros::net
