#include "mpros/dc/data_concentrator.hpp"

#include <algorithm>
#include <cmath>

#include "mpros/common/assert.hpp"
#include "mpros/common/log.hpp"
#include "mpros/sbfr/library.hpp"
#include "mpros/telemetry/metrics.hpp"

namespace mpros::dc {

using domain::FailureMode;

const char* knowledge_source_name(KnowledgeSourceId ks) {
  if (ks == kDliExpertSystem) return "DLI Expert System";
  if (ks == kSbfr) return "SBFR";
  if (ks == kWaveletNeuralNet) return "Wavelet Neural Net";
  if (ks == kFuzzyLogic) return "Fuzzy Logic";
  if (ks == kSensorValidator) return "Sensor Validator";
  return "unknown";
}

namespace {

/// Modes each accelerometer point is authoritative for; cross-talk from
/// attenuated neighbours is suppressed by this ownership filter.
bool point_owns(plant::MachinePoint point, FailureMode mode) {
  switch (point) {
    case plant::MachinePoint::Motor:
      return mode == FailureMode::MotorImbalance ||
             mode == FailureMode::ShaftMisalignment ||
             mode == FailureMode::RotorBarDefect ||
             mode == FailureMode::StatorWindingFault ||
             mode == FailureMode::MotorBearingWear;
    case plant::MachinePoint::Gearbox:
      return mode == FailureMode::GearMeshWear;
    case plant::MachinePoint::Compressor:
      return mode == FailureMode::CompressorBearingWear ||
             mode == FailureMode::BearingHousingLooseness ||
             mode == FailureMode::PumpCavitation;
  }
  return false;
}

/// SBFR event codes: 0x60 + machine index (resolved via sbfr_machine_mode_).
constexpr std::uint8_t kSbfrEventBase = 0x60;

/// Registry handles resolved once; afterwards an observation is a relaxed
/// atomic add, cheap enough for the test/scan path.
struct DcMetrics {
  telemetry::Counter& vibration_tests;
  telemetry::Counter& process_scans;
  telemetry::Counter& reports_emitted;
  telemetry::Counter& samples_processed;
  telemetry::Counter& config_applied;
  telemetry::Counter& config_rejected;
  telemetry::Histogram& vibration_wall_us;
  telemetry::Histogram& process_wall_us;

  static DcMetrics& instance() {
    static auto& reg = telemetry::Registry::instance();
    static DcMetrics m{
        reg.counter("dc.vibration_tests"),
        reg.counter("dc.process_scans"),
        reg.counter("dc.reports_emitted"),
        reg.counter("dc.samples_processed"),
        reg.counter("dc.config_applied"),
        reg.counter("dc.config_rejected"),
        reg.histogram("dc.vibration_test_wall_us"),
        reg.histogram("dc.process_scan_wall_us")};
    return m;
  }
};

/// First slot of the form phase + k*period (k >= 1) strictly after `resume`,
/// so a recovered task keeps its original firing grid and its catch-up
/// advance re-runs exactly the occurrences the wedge swallowed.
SimTime next_slot(SimTime resume, SimTime phase, SimTime period) {
  const std::int64_t p = period.micros();
  std::int64_t k = (resume.micros() - phase.micros()) / p + 1;
  if (k < 1) k = 1;
  while (phase.micros() + k * p <= resume.micros()) ++k;
  return SimTime(phase.micros() + k * p);
}

}  // namespace

DataConcentrator::DataConcentrator(DcConfig cfg, MachineRefs refs,
                                   plant::ChillerSimulator& chiller,
                                   std::shared_ptr<nn::WnnClassifier> wnn,
                                   SimTime start_at)
    : cfg_(cfg),
      refs_(refs),
      chiller_(chiller),
      wnn_(std::move(wnn)),
      beliefs_(),
      extractor_(chiller.signature()),
      dli_(rules::chiller_rulebase(chiller.signature())),
      fuzzy_(),
      sbfr_(/*input_channels=*/4),
      validator_(cfg.sensor_validation),
      reliable_(cfg.id, cfg.reliable) {
  MPROS_EXPECTS(cfg_.window >= 256);
  vib_buffer_.resize(cfg_.window);
  current_buffer_.resize(cfg_.current_window);
  setup_database();
  setup_sbfr();
  register_tasks(start_at);
}

DataConcentrator::DataConcentrator(DcConfig cfg, MachineRefs refs,
                                   plant::ChillerSimulator& chiller,
                                   std::shared_ptr<nn::WnnClassifier> wnn,
                                   Salvage salvage)
    : cfg_(cfg),
      refs_(refs),
      chiller_(chiller),
      wnn_(std::move(wnn)),
      db_(std::move(salvage.db)),
      beliefs_(std::move(salvage.beliefs)),
      extractor_(chiller.signature()),
      dli_(rules::chiller_rulebase(chiller.signature())),
      fuzzy_(),
      sbfr_(std::move(salvage.sbfr)),
      last_reports_(std::move(salvage.last_reports)),
      validator_(std::move(salvage.validator)),
      reliable_(cfg.id, cfg.reliable),
      command_rx_(std::move(salvage.command_rx)),
      outbox_(std::move(salvage.outbox)),
      sensor_outbox_(std::move(salvage.sensor_outbox)),
      wire_outbox_(std::move(salvage.wire_outbox)),
      stats_(salvage.stats) {
  MPROS_EXPECTS(cfg_.window >= 256);
  vib_buffer_.resize(cfg_.window);
  current_buffer_.resize(cfg_.current_window);
  reliable_.restore(std::move(salvage.reliable));
  setup_sbfr(/*add_machines=*/false);
  // Re-apply the persisted runtime config before anchoring the schedule so
  // commanded periods govern the recovered firing grid, not the template's.
  reapply_persisted_config();
  register_tasks(salvage.resume_at);
}

DataConcentrator::Salvage DataConcentrator::salvage() {
  return Salvage{
      .db = std::move(db_),
      .beliefs = std::move(beliefs_),
      .validator = std::move(validator_),
      .sbfr = std::move(sbfr_),
      .last_reports = std::move(last_reports_),
      .stats = stats_,
      .reliable = reliable_.take_state(),
      .command_rx = std::move(command_rx_),
      .outbox = std::move(outbox_),
      .sensor_outbox = std::move(sensor_outbox_),
      .wire_outbox = std::move(wire_outbox_),
      .resume_at = chiller_.now(),
  };
}

void DataConcentrator::register_tasks(SimTime resume_at) {
  vibration_task_ = scheduler_.add_periodic(
      "vibration-test",
      next_slot(resume_at, SimTime(0), cfg_.vibration_period),
      cfg_.vibration_period,
      [this](SimTime now) { run_vibration_test(now); });
  process_task_ = scheduler_.add_periodic(
      "process-scan", next_slot(resume_at, SimTime(0), cfg_.process_period),
      cfg_.process_period,
      [this](SimTime now) { run_process_scan(now); });
  if (cfg_.reliable_delivery) {
    const SimTime phase =
        cfg_.desync_phase ? net::desync_phase(cfg_.id.value() << 1,
                                              cfg_.retransmit_sweep_period)
                          : SimTime(0);
    sweep_task_ = scheduler_.add_periodic(
        "retransmit-sweep",
        next_slot(resume_at, phase, cfg_.retransmit_sweep_period),
        cfg_.retransmit_sweep_period, [this](SimTime now) {
          for (auto& payload : reliable_.due_retransmits(now)) {
            wire_outbox_.push_back(WireDatagram{now, std::move(payload)});
          }
        });
    has_sweep_task_ = true;
  }
  if (cfg_.heartbeat_period.micros() > 0) {
    const SimTime phase =
        cfg_.desync_phase ? net::desync_phase((cfg_.id.value() << 1) | 1,
                                              cfg_.heartbeat_period)
                          : SimTime(0);
    heartbeat_task_ = scheduler_.add_periodic(
        "heartbeat", next_slot(resume_at, phase, cfg_.heartbeat_period),
        cfg_.heartbeat_period, [this](SimTime now) {
          net::HeartbeatMessage hb;
          hb.dc = cfg_.id;
          hb.timestamp = now;
          hb.last_sequence =
              cfg_.reliable_delivery ? reliable_.last_sequence() : 0;
          wire_outbox_.push_back(WireDatagram{now, net::wrap(hb)});
          ++stats_.heartbeats_sent;
        });
    has_heartbeat_task_ = true;
  }
}

void DataConcentrator::setup_database() {
  using db::ColumnDef;
  using db::ValueType;
  db_.create_table(db::TableSchema{
      "measurements",
      {ColumnDef{"id", ValueType::Integer, false},
       ColumnDef{"time_us", ValueType::Integer, false},
       ColumnDef{"key", ValueType::Text, false},
       ColumnDef{"value", ValueType::Real, false}}});
  db_.create_table(db::TableSchema{
      "diagnostics",
      {ColumnDef{"id", ValueType::Integer, false},
       ColumnDef{"time_us", ValueType::Integer, false},
       ColumnDef{"ks", ValueType::Integer, false},
       ColumnDef{"object", ValueType::Integer, false},
       ColumnDef{"condition", ValueType::Integer, false},
       ColumnDef{"severity", ValueType::Real, false},
       ColumnDef{"belief", ValueType::Real, false}}});
  db_.create_table(db::TableSchema{
      "test_log",
      {ColumnDef{"id", ValueType::Integer, false},
       ColumnDef{"time_us", ValueType::Integer, false},
       ColumnDef{"test", ValueType::Text, false}}});
  // Runtime control plane: last-acked configuration, one row per applied
  // setting key (plus the "__revision" bookkeeping row), survives restarts.
  db_.create_table(db::TableSchema{
      "config",
      {ColumnDef{"id", ValueType::Integer, false},
       ColumnDef{"key", ValueType::Text, false},
       ColumnDef{"value", ValueType::Real, false}}});
  db_.table("diagnostics").create_index("condition");
  db_.table("measurements").create_index("key");
  db_.table("config").create_index("key");
}

void DataConcentrator::setup_sbfr(bool add_machines) {
  if (!cfg_.enable_sbfr) return;
  const auto nominals = domain::navy_chiller_nominals();

  // Channel layout (process variables resampled per scan):
  //   0: compressor bearing temperature (C)
  //   1: oil temperature (C)
  //   2: condensing pressure (kPa)
  //   3: evaporator pressure *deficit* (nominal - actual, kPa) so a falling
  //      suction pressure is a rising channel the threshold machine can see.
  sbfr_channel_keys_ = {"process.bearing_temp_c", "process.oil_temp_c",
                        "process.cond_pressure_kpa",
                        "process.evap_pressure_kpa"};

  std::uint8_t idx = 0;
  const auto add = [&](sbfr::MachineDef def, FailureMode mode) {
    if (add_machines) sbfr_.add_machine(std::move(def));
    sbfr_machine_mode_.push_back(mode);
    ++idx;
  };
  add(sbfr::make_threshold_machine(
          0, nominals.bearing_temp_c + 18.0, 2, idx,
          static_cast<std::uint8_t>(kSbfrEventBase + 0)),
      FailureMode::CompressorBearingWear);
  add(sbfr::make_trend_machine(1, 0.15, 5, idx,
                               static_cast<std::uint8_t>(kSbfrEventBase + 1)),
      FailureMode::OilDegradation);
  add(sbfr::make_threshold_machine(
          2, nominals.cond_pressure_kpa + 220.0, 2, idx,
          static_cast<std::uint8_t>(kSbfrEventBase + 2)),
      FailureMode::CondenserFouling);
  add(sbfr::make_threshold_machine(
          3, 60.0, 2, idx,
          static_cast<std::uint8_t>(kSbfrEventBase + 3)),
      FailureMode::RefrigerantLeak);
}

std::vector<net::FailureReport> DataConcentrator::advance_to(SimTime t) {
  // A wedged DC models a hung driver loop: time passes outside but nothing
  // runs inside — the plant reference is untouched (the supervisor's
  // replacement re-runs the missed interval), the progress tick freezes.
  if (wedged_) return {};
  MPROS_EXPECTS(t >= chiller_.now());
  ++progress_;
  // Step the plant in bounded slices so process dynamics and due tests stay
  // interleaved (tests sample the plant at their due time). The slice
  // follows the fastest scheduled cadence: half the process-scan period,
  // floored at 30 s — fine-grained for lab-rate tests, cheap for the
  // multi-week validation studies.
  const SimTime slice = std::max(
      SimTime::from_seconds(30.0),
      SimTime(std::min(cfg_.process_period.micros(),
                       cfg_.vibration_period.micros()) /
              2));
  while (chiller_.now() < t) {
    const SimTime next = std::min(t, chiller_.now() + slice);
    chiller_.advance(next - chiller_.now());
    scheduler_.run_until(chiller_.now());
  }
  std::vector<net::FailureReport> out;
  out.swap(outbox_);
  return out;
}

void DataConcentrator::request_vibration_test() {
  scheduler_.request_now(vibration_task_);
}

std::vector<net::SensorDataMessage> DataConcentrator::drain_sensor_data() {
  std::vector<net::SensorDataMessage> out;
  out.swap(sensor_outbox_);
  return out;
}

void DataConcentrator::handle_wire(const net::Message& msg) {
  if (wedged_) return;  // hung input loop drops everything on the floor
  const std::optional<net::MessageType> type = net::try_peek_type(msg.payload);
  if (!type.has_value()) return;
  switch (*type) {
    case net::MessageType::TestCommand:
      if (const auto cmd = net::try_unwrap_test_command(msg.payload)) {
        handle_command(*cmd);
      }
      break;
    case net::MessageType::Ack:
      if (const auto ack = net::try_unwrap_ack(msg.payload)) {
        reliable_.on_ack(*ack);
      }
      break;
    case net::MessageType::CommandEnvelopeMsg: {
      const auto env = net::try_unwrap_command_envelope(msg.payload);
      if (!env.has_value() || env->dc != cfg_.id) break;
      const net::ReliableReceiver::Outcome out =
          command_rx_.on_envelope(env->dc, env->sequence);
      if (!out.duplicate) apply_command(env->command, chiller_.now());
      // Ack cumulatively even for duplicates — the PDME's original ack may
      // have been the casualty, and re-acking is how its window drains.
      wire_outbox_.push_back(
          WireDatagram{chiller_.now(), net::wrap(out.ack)});
      break;
    }
    default:
      break;  // not addressed to a DC
  }
}

std::vector<DataConcentrator::WireDatagram>
DataConcentrator::drain_wire_outbox() {
  std::vector<WireDatagram> out;
  out.swap(wire_outbox_);
  return out;
}

void DataConcentrator::handle_command(const net::TestCommandMessage& command) {
  if (command.target != cfg_.id) return;  // mis-routed datagram
  switch (command.command) {
    case net::TestCommandMessage::Command::VibrationTest:
      db_.table("test_log").insert_auto(
          {db::Value(chiller_.now().micros()),
           db::Value("commanded: " + command.reason)});
      if (journal_ != nullptr) {
        journal_->record_event(chiller_.now().micros(),
                               "dc-" + std::to_string(cfg_.id.value()),
                               "commanded vibration test: " + command.reason);
      }
      request_vibration_test();
      break;
  }
}

void DataConcentrator::apply_command(const net::CommandMessage& cmd,
                                     SimTime now) {
  if (cmd.target != cfg_.id) return;  // mis-routed datagram
  ++stats_.config_commands;
  // Revision gate: disordered or retransmitted delivery converges on the
  // newest command (revision 0 is unordered, always applied).
  if (cmd.revision != 0 && cmd.revision <= config_revision_) {
    ++stats_.config_stale;
    return;
  }
  DcMetrics& metrics = DcMetrics::instance();
  for (const auto& [key, value] : cmd.settings) {
    if (apply_setting(key, value, /*quiet=*/false)) {
      ++stats_.config_applied;
      metrics.config_applied.inc();
      persist_setting(key, value);
    } else {
      ++stats_.config_rejected;
      metrics.config_rejected.inc();
    }
  }
  if (cmd.revision != 0) {
    config_revision_ = cmd.revision;
    persist_setting("__revision", static_cast<double>(cmd.revision));
  }
  db_.table("test_log").insert_auto(
      {db::Value(now.micros()), db::Value("config: " + cmd.reason)});
  if (journal_ != nullptr) {
    journal_->record_event(now.micros(),
                           "dc-" + std::to_string(cfg_.id.value()),
                           "config command rev " +
                               std::to_string(cmd.revision) + ": " +
                               cmd.reason);
  }
}

bool DataConcentrator::apply_setting(std::string_view key, double value,
                                     bool quiet) {
  bool ok = std::isfinite(value);
  if (!ok) {
    // fall through to the reject log
  } else if (key == "validator.spike_sigmas" ||
             key == "validator.scalar_spike_sigmas" ||
             key == "validator.flatline_peak_to_peak") {
    ok = value > 0.0;
    if (ok) {
      SensorValidatorConfig vc = validator_.config();
      if (key == "validator.spike_sigmas") vc.spike_sigmas = value;
      if (key == "validator.scalar_spike_sigmas") {
        vc.scalar_spike_sigmas = value;
      }
      if (key == "validator.flatline_peak_to_peak") {
        vc.flatline_peak_to_peak = value;
      }
      validator_.set_config(std::move(vc));
    }
  } else if (key == "dc.report_hysteresis") {
    ok = value >= 0.0 && value <= 1.0;
    if (ok) cfg_.report_hysteresis = value;
  } else if (key == "dc.wnn_report_threshold") {
    ok = value >= 0.0 && value <= 1.0;
    if (ok) cfg_.wnn_report_threshold = value;
  } else if (key == "dc.report_refresh_s") {
    ok = value > 0.0;
    if (ok) cfg_.report_refresh = SimTime::from_seconds(value);
  } else if (key == "dc.sensor_publish_every") {
    ok = value >= 0.0 && value == std::floor(value) && value <= 1e9;
    if (ok) cfg_.sensor_publish_every = static_cast<std::size_t>(value);
  } else if (key == "dc.enable_dli") {
    ok = value == 0.0 || value == 1.0;
    if (ok) cfg_.enable_dli = value != 0.0;
  } else if (key == "dc.enable_sbfr") {
    ok = value == 0.0 || value == 1.0;
    if (ok) cfg_.enable_sbfr = value != 0.0;
  } else if (key == "dc.enable_fuzzy") {
    ok = value == 0.0 || value == 1.0;
    if (ok) cfg_.enable_fuzzy = value != 0.0;
  } else if (key == "dc.enable_sensor_validation") {
    ok = value == 0.0 || value == 1.0;
    if (ok) cfg_.enable_sensor_validation = value != 0.0;
  } else if (key == "dc.process_period_s") {
    ok = value > 0.0;
    if (ok) {
      cfg_.process_period = SimTime::from_seconds(value);
      if (scheduler_.task_count() > 0) {
        scheduler_.set_period(process_task_, cfg_.process_period);
      }
    }
  } else if (key == "dc.vibration_period_s") {
    ok = value > 0.0;
    if (ok) {
      cfg_.vibration_period = SimTime::from_seconds(value);
      if (scheduler_.task_count() > 0) {
        scheduler_.set_period(vibration_task_, cfg_.vibration_period);
      }
    }
  } else if (key == "dc.heartbeat_period_s") {
    // Runtime retune only — a DC built without a heartbeat task cannot
    // grow one (liveness policy is a commissioning decision).
    ok = value > 0.0 && cfg_.heartbeat_period.micros() > 0;
    if (ok) {
      cfg_.heartbeat_period = SimTime::from_seconds(value);
      if (has_heartbeat_task_) {
        scheduler_.set_period(heartbeat_task_, cfg_.heartbeat_period);
      }
    }
  } else if (key == "dc.retransmit_sweep_period_s") {
    ok = value > 0.0 && cfg_.reliable_delivery;
    if (ok) {
      cfg_.retransmit_sweep_period = SimTime::from_seconds(value);
      if (has_sweep_task_) {
        scheduler_.set_period(sweep_task_, cfg_.retransmit_sweep_period);
      }
    }
  } else {
    ok = false;
  }
  if (!ok && !quiet) {
    MPROS_LOG_WARN("dc", "dc-%llu rejected setting %.*s=%g",
                   static_cast<unsigned long long>(cfg_.id.value()),
                   static_cast<int>(key.size()), key.data(), value);
  }
  return ok;
}

std::optional<double> DataConcentrator::runtime_setting(
    std::string_view key) const {
  if (key == "validator.spike_sigmas") return validator_.config().spike_sigmas;
  if (key == "validator.scalar_spike_sigmas") {
    return validator_.config().scalar_spike_sigmas;
  }
  if (key == "validator.flatline_peak_to_peak") {
    return validator_.config().flatline_peak_to_peak;
  }
  if (key == "dc.report_hysteresis") return cfg_.report_hysteresis;
  if (key == "dc.wnn_report_threshold") return cfg_.wnn_report_threshold;
  if (key == "dc.report_refresh_s") return cfg_.report_refresh.seconds();
  if (key == "dc.sensor_publish_every") {
    return static_cast<double>(cfg_.sensor_publish_every);
  }
  if (key == "dc.enable_dli") return cfg_.enable_dli ? 1.0 : 0.0;
  if (key == "dc.enable_sbfr") return cfg_.enable_sbfr ? 1.0 : 0.0;
  if (key == "dc.enable_fuzzy") return cfg_.enable_fuzzy ? 1.0 : 0.0;
  if (key == "dc.enable_sensor_validation") {
    return cfg_.enable_sensor_validation ? 1.0 : 0.0;
  }
  if (key == "dc.process_period_s") return cfg_.process_period.seconds();
  if (key == "dc.vibration_period_s") return cfg_.vibration_period.seconds();
  if (key == "dc.heartbeat_period_s") return cfg_.heartbeat_period.seconds();
  if (key == "dc.retransmit_sweep_period_s") {
    return cfg_.retransmit_sweep_period.seconds();
  }
  return std::nullopt;
}

void DataConcentrator::persist_setting(std::string_view key, double value) {
  db::Table& t = db_.table("config");
  std::string k(key);
  const auto keys = t.lookup("key", db::Value(k));
  if (keys.empty()) {
    t.insert_auto({db::Value(k), db::Value(value)});
  } else {
    t.update(keys.front(), "value", db::Value(value));
  }
  pending_config_updates_.emplace_back(std::move(k), value);
}

std::vector<std::pair<std::string, double>>
DataConcentrator::drain_config_updates() {
  std::vector<std::pair<std::string, double>> out;
  out.swap(pending_config_updates_);
  return out;
}

std::vector<std::pair<std::string, double>> DataConcentrator::persisted_config()
    const {
  std::vector<std::pair<std::string, double>> out;
  for (const db::Row& row : db_.table("config").select()) {
    out.emplace_back(row[1].as_text(), row[2].as_real());
  }
  return out;
}

void DataConcentrator::restore_config(
    const std::vector<std::pair<std::string, double>>& settings) {
  for (const auto& [key, value] : settings) {
    if (key == "__revision") {
      config_revision_ = static_cast<std::uint64_t>(std::llround(value));
    } else {
      apply_setting(key, value, /*quiet=*/true);
    }
    persist_setting(key, value);
  }
  // The entries came from the durable mirror; queueing them back would
  // just rewrite identical rows into the WAL on the next barrier.
  pending_config_updates_.clear();
}

void DataConcentrator::reapply_persisted_config() {
  for (const db::Row& row : db_.table("config").select()) {
    const std::string& key = row[1].as_text();
    const double value = row[2].as_real();
    if (key == "__revision") {
      config_revision_ = static_cast<std::uint64_t>(std::llround(value));
    } else {
      apply_setting(key, value, /*quiet=*/true);
    }
  }
}

ObjectId DataConcentrator::sensed_object_for(FailureMode mode) const {
  switch (mode) {
    case FailureMode::MotorImbalance:
    case FailureMode::RotorBarDefect:
    case FailureMode::StatorWindingFault:
    case FailureMode::MotorBearingWear:
      return refs_.motor;
    case FailureMode::ShaftMisalignment:
    case FailureMode::GearMeshWear:
      return refs_.gearbox;
    case FailureMode::CompressorBearingWear:
    case FailureMode::BearingHousingLooseness:
    case FailureMode::OilDegradation:
      return refs_.compressor;
    case FailureMode::PumpCavitation:
    case FailureMode::RefrigerantLeak:
    case FailureMode::CondenserFouling:
      return refs_.chiller;
  }
  return refs_.chiller;
}

ObjectId DataConcentrator::object_for_channel(std::string_view channel) const {
  if (channel == "vib.motor" || channel == plant::kCurrentChannel) {
    return refs_.motor;
  }
  if (channel == "vib.gearbox") return refs_.gearbox;
  if (channel == "vib.compressor") return refs_.compressor;
  return refs_.chiller;
}

void DataConcentrator::emit_sensor_fault(SimTime now,
                                         const std::string& channel,
                                         domain::SensorFaultKind kind,
                                         bool cleared) {
  net::FailureReport r;
  r.dc = cfg_.id;
  r.knowledge_source = kSensorValidator;
  r.sensed_object = object_for_channel(channel);
  r.machine_condition = domain::sensor_fault_condition(kind);
  r.severity = cleared ? 0.0 : 1.0;
  r.belief = 0.9;
  r.explanation =
      cleared ? channel + " validated clean; channel trusted again"
              : domain::sensor_fault_condition_text(kind) + " on " + channel;
  r.recommendations =
      cleared ? "Resume normal monitoring."
              : "Inspect transducer, cabling and DAQ channel; machinery "
                "diagnostics from this channel are suspended.";
  r.timestamp = now;
  r.trace = current_trace_;

  db_.table("diagnostics")
      .insert_auto(
          {db::Value(now.micros()),
           db::Value(static_cast<std::int64_t>(kSensorValidator.value())),
           db::Value(static_cast<std::int64_t>(r.sensed_object.value())),
           db::Value(static_cast<std::int64_t>(r.machine_condition.value())),
           db::Value(r.severity), db::Value(r.belief)});
  if (journal_ != nullptr) {
    journal_->record_event(now.micros(),
                           "dc-" + std::to_string(cfg_.id.value()),
                           (cleared ? "sensor channel restored: "
                                    : "sensor channel quarantined: ") +
                               channel);
  }
  outbox_.push_back(std::move(r));
  ++stats_.reports_emitted;
  ++stats_.sensor_fault_reports;
  DcMetrics::instance().reports_emitted.inc();
}

bool DataConcentrator::validate_window(SimTime now, const std::string& channel,
                                       std::span<const double> samples) {
  if (!cfg_.enable_sensor_validation) return true;
  const SensorValidator::Verdict v = validator_.check_window(channel, samples);
  if (v.newly_quarantined) emit_sensor_fault(now, channel, *v.fault, false);
  if (v.released && v.cleared_kind.has_value()) {
    emit_sensor_fault(now, channel, *v.cleared_kind, true);
  }
  return !validator_.quarantined(channel);
}

void DataConcentrator::emit_raw(
    SimTime now, KnowledgeSourceId ks, ObjectId sensed, FailureMode mode,
    double severity, double belief, std::string explanation,
    std::string recommendation,
    const std::vector<rules::PrognosticPoint>& prognosis) {
  // Last line of defense for the wire: an analyzer fed corrupt data must
  // never publish a non-finite conclusion (D-S fusion at the PDME would
  // poison every belief it touches).
  if (!std::isfinite(severity) || !std::isfinite(belief)) {
    static auto& nonfinite =
        telemetry::Registry::instance().counter("rules.nonfinite_inputs");
    nonfinite.inc();
    return;
  }
  // Hysteresis: unchanged conclusions are not fresh evidence.
  LastReport& last = last_reports_[{ks.value(), sensed.value(),
                                    domain::condition_id(mode).value()}];
  const bool severity_moved =
      std::fabs(severity - last.severity) >= cfg_.report_hysteresis;
  const bool refresh_due =
      last.at.micros() < 0 || now - last.at >= cfg_.report_refresh;
  if (!severity_moved && !refresh_due) return;
  last.severity = severity;
  last.at = now;

  net::FailureReport r;
  r.dc = cfg_.id;
  r.knowledge_source = ks;
  r.sensed_object = sensed;
  r.machine_condition = domain::condition_id(mode);
  r.severity = severity;
  r.belief = belief;
  r.explanation = std::move(explanation);
  r.recommendations = std::move(recommendation);
  r.timestamp = now;
  r.trace = current_trace_;
  for (const rules::PrognosticPoint& p : prognosis) {
    r.prognostics.push_back(
        net::PrognosticPair{p.probability, p.horizon.seconds()});
  }

  db_.table("diagnostics")
      .insert_auto({db::Value(now.micros()),
                    db::Value(static_cast<std::int64_t>(ks.value())),
                    db::Value(static_cast<std::int64_t>(sensed.value())),
                    db::Value(static_cast<std::int64_t>(
                        r.machine_condition.value())),
                    db::Value(severity), db::Value(belief)});
  outbox_.push_back(std::move(r));
  ++stats_.reports_emitted;
  DcMetrics::instance().reports_emitted.inc();
}

void DataConcentrator::emit(SimTime now, KnowledgeSourceId ks,
                            ObjectId sensed, const rules::Diagnosis& d) {
  emit_raw(now, ks, sensed, d.mode, d.severity, d.belief, d.explanation,
           d.recommendation, d.prognosis);
}

void DataConcentrator::run_vibration_test(SimTime now) {
  DcMetrics& metrics = DcMetrics::instance();
  // One trace per acquisition: every report this test emits carries the id,
  // so the DAQ → scheduler → codec → fusion path can be reconstructed.
  current_trace_ = telemetry::next_trace_id();
  telemetry::StageTimer span("dc.vibration_test", current_trace_,
                             now.micros(), &metrics.vibration_wall_us);
  ++stats_.vibration_tests;
  metrics.vibration_tests.inc();
  if (journal_ != nullptr) {
    journal_->record_event(now.micros(),
                           "dc-" + std::to_string(cfg_.id.value()),
                           "vibration test");
  }
  db_.table("test_log").insert_auto(
      {db::Value(now.micros()), db::Value("vibration")});

  const plant::ProcessSnapshot process = chiller_.process_snapshot();
  const double load = chiller_.load();

  // Current signature analysis shares the test (§6.1 pairs spectral
  // features with process parameters).
  chiller_.acquire_current(cfg_.current_sample_rate_hz, current_buffer_);
  stats_.samples_processed += current_buffer_.size();
  metrics.samples_processed.inc(current_buffer_.size());
  const bool current_ok =
      validate_window(now, plant::kCurrentChannel, current_buffer_);

  for (const plant::MachinePoint point :
       {plant::MachinePoint::Motor, plant::MachinePoint::Gearbox,
        plant::MachinePoint::Compressor}) {
    chiller_.acquire_vibration(point, cfg_.sample_rate_hz, vib_buffer_);
    stats_.samples_processed += vib_buffer_.size();
    metrics.samples_processed.inc(vib_buffer_.size());

    // Quarantined accelerometer: withhold the window; the analyzers for
    // this point sit out the test instead of diagnosing a lying sensor.
    if (!validate_window(now, plant::vibration_channel(point), vib_buffer_)) {
      continue;
    }
    if (!cfg_.enable_dli) continue;

    rules::FeatureFrame frame;
    extractor_.extract_vibration(vib_buffer_, cfg_.sample_rate_hz, frame);
    if (point == plant::MachinePoint::Motor && current_ok) {
      extractor_.extract_current(current_buffer_,
                                 cfg_.current_sample_rate_hz, load, frame);
    }
    for (const auto& [key, value] : process) {
      if (cfg_.enable_sensor_validation && validator_.quarantined(key)) {
        continue;  // rules abstain on the missing feature
      }
      frame.set(key, value);
    }

    for (const rules::Diagnosis& d : dli_.evaluate(frame, beliefs_)) {
      if (!point_owns(point, d.mode)) continue;
      emit(now, kDliExpertSystem, sensed_object_for(d.mode), d);
    }

    // WNN on the same records: transitory-phenomena classifier (§6.2).
    if (wnn_ && wnn_->trained() &&
        (point == plant::MachinePoint::Motor ||
         point == plant::MachinePoint::Compressor)) {
      nn::WnnContext ctx;
      ctx.shaft_hz = chiller_.signature().shaft_hz;
      ctx.load_fraction = load;
      const auto temp = process.find("process.bearing_temp_c");
      if (temp != process.end() &&
          !(cfg_.enable_sensor_validation &&
            validator_.quarantined(temp->first))) {
        ctx.bearing_temp_c = temp->second;
      }

      for (const rules::Diagnosis& d :
           wnn_->diagnose(vib_buffer_, cfg_.sample_rate_hz, ctx, beliefs_,
                          cfg_.wnn_report_threshold)) {
        if (!point_owns(point, d.mode)) continue;
        emit(now, kWaveletNeuralNet, sensed_object_for(d.mode), d);
      }
    }
  }
}

void DataConcentrator::run_process_scan(SimTime now) {
  DcMetrics& metrics = DcMetrics::instance();
  current_trace_ = telemetry::next_trace_id();
  telemetry::StageTimer span("dc.process_scan", current_trace_, now.micros(),
                             &metrics.process_wall_us);
  ++stats_.process_scans;
  metrics.process_scans.inc();
  plant::ProcessSnapshot snapshot = chiller_.process_snapshot();

  // Screen every reading; quarantined keys vanish from the snapshot, so the
  // database, the raw-data feed and every analyzer see only trusted values.
  if (cfg_.enable_sensor_validation) {
    for (auto it = snapshot.begin(); it != snapshot.end();) {
      const SensorValidator::Verdict v =
          validator_.check_value(it->first, it->second);
      if (v.newly_quarantined) {
        emit_sensor_fault(now, it->first, *v.fault, false);
      }
      if (v.released && v.cleared_kind.has_value()) {
        emit_sensor_fault(now, it->first, *v.cleared_kind, true);
      }
      if (validator_.quarantined(it->first)) {
        it = snapshot.erase(it);
      } else {
        ++it;
      }
    }
  }

  db::Table& measurements = db_.table("measurements");
  for (const auto& [key, value] : snapshot) {
    measurements.insert_auto(
        {db::Value(now.micros()), db::Value(key), db::Value(value)});
  }

  if (cfg_.sensor_publish_every != 0 &&
      stats_.process_scans % cfg_.sensor_publish_every == 0) {
    net::SensorDataMessage msg;
    msg.dc = cfg_.id;
    msg.machine = refs_.chiller;
    msg.timestamp = now;
    msg.values.assign(snapshot.begin(), snapshot.end());
    sensor_outbox_.push_back(std::move(msg));
  }

  if (cfg_.enable_fuzzy) {
    for (const rules::Diagnosis& d : fuzzy_.evaluate(snapshot, beliefs_)) {
      emit(now, kFuzzyLogic, sensed_object_for(d.mode), d);
    }
  }

  // SBFR steps only when its full input vector is trusted; with any channel
  // quarantined it holds state rather than latching on fabricated inputs.
  bool sbfr_inputs_ok = true;
  for (const std::string& key : sbfr_channel_keys_) {
    sbfr_inputs_ok = sbfr_inputs_ok && snapshot.contains(key);
  }
  if (cfg_.enable_sbfr && !sbfr_machine_mode_.empty() && sbfr_inputs_ok) {
    const auto value = [&](const std::string& key) {
      const auto it = snapshot.find(key);
      MPROS_ASSERT(it != snapshot.end());
      return it->second;
    };
    const double inputs[4] = {
        value(sbfr_channel_keys_[0]), value(sbfr_channel_keys_[1]),
        value(sbfr_channel_keys_[2]),
        // Channel 3 carries the evaporator pressure deficit.
        domain::navy_chiller_nominals().evap_pressure_kpa -
            value(sbfr_channel_keys_[3])};
    sbfr_.step(inputs);

    for (const sbfr::Event& e : sbfr_.drain_events()) {
      MPROS_ASSERT(e.machine < sbfr_machine_mode_.size());
      const FailureMode mode = sbfr_machine_mode_[e.machine];
      if (journal_ != nullptr) {
        journal_->record_event(
            now.micros(), "dc-" + std::to_string(cfg_.id.value()),
            std::string("SBFR latch: ") + domain::to_string(mode));
      }
      const double severity = 0.5;  // SBFR flags onset; KF fuses magnitude
      emit_raw(now, kSbfr, sensed_object_for(mode), mode, severity,
               /*belief=*/0.65,
               "SBFR state machine latched on " +
                   sbfr_channel_keys_[std::min<std::size_t>(
                       e.machine, sbfr_channel_keys_.size() - 1)],
               "Correlate with vibration expert system findings.",
               rules::default_prognosis(severity));
      // The host acknowledges the latch so the machine can re-arm (§6.3).
      sbfr_.set_status(e.machine, 0.0);
    }
  }
}

}  // namespace mpros::dc
