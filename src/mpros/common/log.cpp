#include "mpros/common/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>
#include <string>

#include "mpros/telemetry/metrics.hpp"

namespace mpros {
namespace {

std::atomic<LogLevel> g_level{LogLevel::Warn};
std::mutex g_sink_mu;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void count_log_event(LogLevel level, const char* component) {
  if (level != LogLevel::Warn && level != LogLevel::Error) return;
  // Warn/Error are rare by design; the name lookup is off the hot path.
  telemetry::Registry::instance()
      .counter(std::string(component) +
               (level == LogLevel::Warn ? ".log_warnings" : ".log_errors"))
      .inc();
}

void log_message(LogLevel level, const char* component, const char* fmt, ...) {
  char body[1024];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(body, sizeof body, fmt, args);
  va_end(args);

  std::lock_guard lock(g_sink_mu);
  std::fprintf(stderr, "[%-5s] %-10s %s\n", level_name(level), component,
               body);
}

}  // namespace mpros
