#include "mpros/dsp/cepstrum.hpp"

#include <cmath>

#include "mpros/common/assert.hpp"
#include "mpros/dsp/fft.hpp"
#include "mpros/dsp/plan_cache.hpp"
#include "mpros/dsp/scratch.hpp"

namespace mpros::dsp {

std::vector<double> real_cepstrum(std::span<const double> x,
                                  std::size_t fft_size) {
  std::vector<double> out;
  real_cepstrum(x, fft_size, out);
  return out;
}

void real_cepstrum(std::span<const double> x, std::size_t fft_size,
                   std::vector<double>& out) {
  MPROS_EXPECTS(x.size() >= 2);
  const std::size_t n =
      fft_size != 0 ? fft_size
                    : next_power_of_two(std::max<std::size_t>(x.size(), 4));
  MPROS_EXPECTS(is_power_of_two(n) && n >= 4 && n >= x.size());

  DspScratch& scratch = DspScratch::local();
  const RealFftPlan& plan = PlanCache::instance().real_plan(n);
  const std::span<Complex> half = scratch.complex_lane(0, plan.bins());
  const std::span<Complex> fft_scratch =
      scratch.complex_lane(1, plan.scratch_size());
  plan.forward(x, half, fft_scratch);

  // log|X| is real and even across the full spectrum, so its inverse FFT is
  // exactly the inverse real transform of the half spectrum — no full-size
  // complex pass needed.
  constexpr double kEps = 1e-12;
  for (std::size_t i = 0; i < plan.bins(); ++i) {
    half[i] = Complex(std::log(std::abs(half[i]) + kEps), 0.0);
  }
  out.resize(n);
  plan.inverse(half, out, fft_scratch);
}

double dominant_quefrency(std::span<const double> cepstrum,
                          double sample_rate_hz, double min_quefrency_s,
                          double max_quefrency_s) {
  MPROS_EXPECTS(sample_rate_hz > 0.0);
  const auto lo = static_cast<std::size_t>(
      std::max(1.0, min_quefrency_s * sample_rate_hz));
  const auto hi = std::min<std::size_t>(
      cepstrum.size() / 2,
      static_cast<std::size_t>(max_quefrency_s * sample_rate_hz));
  double best = 0.0;
  std::size_t best_i = 0;
  for (std::size_t i = lo; i < hi; ++i) {
    if (cepstrum[i] > best) {
      best = cepstrum[i];
      best_i = i;
    }
  }
  return best_i == 0 ? 0.0
                     : static_cast<double>(best_i) / sample_rate_hz;
}

}  // namespace mpros::dsp
