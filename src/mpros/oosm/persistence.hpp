#pragma once
// OOSM <-> relational mapping (paper §4.6).
//
// "Object types are mapped to tables and properties and relationships are
// mapped to columns and helper tables." Persistence is managed "entirely in
// the background": save() snapshots the whole model; load() rebuilds it,
// preserving object ids.

#include <cstdint>
#include <map>
#include <string>
#include <utility>

#include "mpros/db/database.hpp"
#include "mpros/oosm/object_model.hpp"

namespace mpros::oosm {

class Persistence {
 public:
  /// Create the oosm_objects / oosm_properties / oosm_relations tables in
  /// `db` (drops any existing snapshot tables first).
  static void save(const ObjectModel& model, db::Database& db);

  /// Rebuild a model from a snapshot produced by save() (or maintained by a
  /// DurableModelJournal). Object ids match the originals; listeners are
  /// not restored.
  static ObjectModel load(const db::Database& db);

  static constexpr const char* kObjectsTable = "oosm_objects";
  static constexpr const char* kPropertiesTable = "oosm_properties";
  static constexpr const char* kRelationsTable = "oosm_relations";
};

/// Incremental background persistence (paper §4.6: "managed entirely in the
/// background"): subscribes to an ObjectModel and mirrors every event —
/// creation, property change, relation, deletion — into the same three
/// tables Persistence::save() writes, through the *journaled* Database
/// mutators, so an attached write-ahead log captures each change as it
/// happens instead of requiring periodic full-model dumps.
///
/// Two start modes, decided by what is already in `db`:
///  - fresh (no oosm_objects table): creates the tables + indexes, then
///    mirrors events; attach BEFORE building the model so creations land.
///  - adopt (tables exist, e.g. recovered from WAL): rebuilds its row-key
///    bookkeeping from the tables and continues mirroring. The model must
///    match the tables (it was just loaded from them).
///
/// Runs inline on the model's single writer thread, like every listener.
class DurableModelJournal {
 public:
  DurableModelJournal(ObjectModel& model, db::Database& db);
  ~DurableModelJournal();

  DurableModelJournal(const DurableModelJournal&) = delete;
  DurableModelJournal& operator=(const DurableModelJournal&) = delete;

 private:
  void create_tables();
  void adopt_tables();
  void on_event(const OosmEvent& event);
  void upsert_property(ObjectId id, const std::string& key);

  ObjectModel& model_;
  db::Database& db_;
  ObjectModel::SubscriptionId subscription_ = 0;

  struct PropRow {
    std::int64_t row = 0;
    db::ValueType type = db::ValueType::Null;  ///< typed column currently set
  };
  std::map<std::pair<std::uint64_t, std::string>, PropRow> prop_rows_;
  /// Each relation row is recorded under BOTH endpoints so deleting either
  /// object finds it; the second lookup tolerates the already-erased row.
  std::multimap<std::uint64_t, std::int64_t> relation_rows_;
};

}  // namespace mpros::oosm
