#pragma once
// Populate an ObjectModel with a ship's chilled-water plants (paper §4.3:
// "We have modeled a portion of the information about the system under
// observation ... the motors, compressors and evaporators in the chillers
// we are working with", plus the relationships spatial reasoning needs).

#include <string>
#include <vector>

#include "mpros/oosm/object_model.hpp"

namespace mpros::oosm {

/// Handles to one assembled chiller plant's objects.
struct ChillerPlant {
  ObjectId chiller;
  ObjectId motor;
  ObjectId gearbox;
  ObjectId compressor;
  ObjectId evaporator;
  ObjectId condenser;
  ObjectId chw_pump;   ///< chilled-water pump
  ObjectId cw_pump;    ///< condenser-water pump
  std::vector<ObjectId> accelerometers;  ///< motor, gearbox, compressor
  std::vector<ObjectId> process_sensors;
};

struct ShipModel {
  ObjectId ship;
  std::vector<ObjectId> decks;
  std::vector<ChillerPlant> plants;
};

/// Build `plants_per_deck * decks` chiller plants with part-of, proximity
/// and flow relations. Names follow "AC Plant <n>" / "A/C Compressor Motor
/// <n>" (the paper's Fig 2 shows machine "A/C Compressor Motor 1").
[[nodiscard]] ShipModel build_ship(ObjectModel& model,
                                   const std::string& ship_name = "USNS Mercy",
                                   std::size_t decks = 2,
                                   std::size_t plants_per_deck = 2);

/// Build a single plant under an existing parent object.
[[nodiscard]] ChillerPlant build_chiller_plant(ObjectModel& model,
                                               ObjectId parent,
                                               std::size_t plant_number);

}  // namespace mpros::oosm
