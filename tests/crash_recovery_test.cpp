// Crash-injection harness for the durable ShipSystem (E22).
//
// A durable ship is run with an active fault script and a runtime
// reconfiguration, then "killed" by abandoning its durability directory —
// no flush, no orderly shutdown — and the directory is damaged further by
// truncating or corrupting the WAL at arbitrary byte offsets. Rebuilding a
// ShipSystem over the damaged copy must recover a committed barrier T':
// the browser/ICAS operator view of the recovered ship is byte-identical
// to an uncrashed control run stopped at T', and the recovered ship keeps
// advancing afterwards.

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "mpros/db/durable.hpp"
#include "mpros/mpros/mpros.hpp"

namespace mpros {
namespace {

namespace fs = std::filesystem;

using domain::FailureMode;

/// Fresh directory under the system temp root, unique per test and process
/// (ctest runs tests in parallel), removed on teardown.
class TempDir {
 public:
  TempDir() {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    path_ = fs::temp_directory_path() /
            (std::string("mpros_crash_") + info->test_suite_name() + "_" +
             info->name() + "_" + std::to_string(::getpid()));
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }

  [[nodiscard]] std::string str() const { return path_.string(); }
  [[nodiscard]] const fs::path& path() const { return path_; }

  /// A fresh empty subdirectory (for per-offset damaged copies).
  [[nodiscard]] fs::path sub(const std::string& name) const {
    const fs::path p = path_ / name;
    fs::remove_all(p);
    fs::create_directories(p);
    return p;
  }

 private:
  fs::path path_;
};

std::vector<std::uint8_t> read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void write_file(const fs::path& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

// --- The scripted run --------------------------------------------------------

constexpr std::uint64_t kSeed = 0xC4A5;
const SimTime kStep = SimTime::from_seconds(300);
const SimTime kEnd = SimTime::from_seconds(3600);
const SimTime kCommandAt = SimTime::from_seconds(1200);

ShipSystemConfig scripted_config() {
  ShipSystemConfig cfg;
  cfg.plant_count = 2;
  cfg.dc_template.vibration_period = SimTime::from_seconds(600);
  cfg.dc_template.process_period = SimTime::from_seconds(60);
  cfg.worker_threads = 2;
  cfg.seed = kSeed;
  return cfg;
}

ShipSystemConfig durable_config(const std::string& dir) {
  ShipSystemConfig cfg = scripted_config();
  cfg.enable_durability = true;
  cfg.durability.directory = dir;
  cfg.durability.checkpoint_bytes = 0;  // keep the whole history in the WAL
  return cfg;
}

/// The fault script every run (original, control, recovered) plays.
void schedule_faults(ShipSystem& ship) {
  ship.chiller(0).faults().schedule({FailureMode::MotorImbalance,
                                     SimTime::from_seconds(720),
                                     SimTime::from_hours(1.0), 0.9,
                                     plant::GrowthProfile::Linear});
  ship.chiller(1).faults().schedule({FailureMode::RefrigerantLeak,
                                     SimTime::from_seconds(1500),
                                     SimTime::from_hours(1.0), 0.8,
                                     plant::GrowthProfile::Linear});
}

/// Advance `ship` barrier by barrier to `until` on the canonical step grid,
/// issuing the scripted reconfiguration command right after the kCommandAt
/// barrier commits (so the command itself is post-barrier, exactly as a
/// crash at that commit would leave things).
std::uint64_t drive_to(ShipSystem& ship, SimTime until) {
  std::uint64_t revision = 0;
  for (SimTime t = kStep; t.micros() <= until.micros(); t += kStep) {
    ship.advance_to(t);
    if (t.micros() == kCommandAt.micros() &&
        until.micros() > kCommandAt.micros()) {
      revision = ship.command_dc(
          0, {{"validator.spike_sigmas", 7.0}, {"dc.report_hysteresis", 0.08}},
          "crash-test tuning");
    }
  }
  return revision;
}

/// Everything the OOSM/browser layer shows an operator, concatenated.
std::string browser_fingerprint(ShipSystem& ship) {
  std::string out = pdme::render_summary(ship.pdme(), ship.model());
  for (std::size_t p = 0; p < ship.plant_count(); ++p) {
    out += pdme::render_machine(ship.pdme(), ship.model(),
                                ship.plant_objects(p).motor);
  }
  out += pdme::export_icas_csv(ship.pdme(), ship.model());
  return out;
}

/// Memoizing oracle: the operator view of an *uncrashed* non-durable
/// control run stopped exactly at barrier T'. One fresh identically-seeded
/// ship per distinct T'.
class ControlOracle {
 public:
  const std::string& at(SimTime barrier) {
    auto it = cache_.find(barrier.micros());
    if (it != cache_.end()) return it->second;
    ShipSystem control(scripted_config());
    schedule_faults(control);
    drive_to(control, barrier);
    return cache_.emplace(barrier.micros(), browser_fingerprint(control))
        .first->second;
  }

 private:
  std::map<std::int64_t, std::string> cache_;
};

/// Copy the crashed durability directory into a scratch subdir.
fs::path damaged_copy(const TempDir& dir, const std::string& name,
                      const fs::path& original) {
  const fs::path copy = dir.sub(name);
  fs::copy(original, copy, fs::copy_options::recursive |
                               fs::copy_options::overwrite_existing);
  return copy;
}

// --- Tests -------------------------------------------------------------------

TEST(CrashRecoveryTest, DurableRunMatchesNonDurableControl) {
  // Durability is a mirror, not a participant: with the WAL attached the
  // simulation's operator view stays byte-identical to a plain run. (This
  // is what licenses using non-durable controls below.)
  TempDir dir;
  ShipSystem durable(durable_config(dir.str()));
  ShipSystem control(scripted_config());
  schedule_faults(durable);
  schedule_faults(control);
  const std::uint64_t rev_a = drive_to(durable, kEnd);
  const std::uint64_t rev_b = drive_to(control, kEnd);
  EXPECT_EQ(rev_a, rev_b);
  EXPECT_FALSE(durable.recovered());
  EXPECT_EQ(browser_fingerprint(durable), browser_fingerprint(control));
}

TEST(CrashRecoveryTest, RecoveryAtTheLastBarrierIsByteIdentical) {
  TempDir dir;
  const fs::path live = dir.sub("live");
  std::uint64_t revision = 0;
  {
    ShipSystem ship(durable_config(live.string()));
    schedule_faults(ship);
    revision = drive_to(ship, kEnd);
    ASSERT_GT(revision, 0u);
    ASSERT_EQ(ship.concentrator(0).config_revision(), revision);
    // "Crash": the ship object is abandoned here. Nothing below uses it;
    // only the bytes the WAL already fsynced survive.
  }

  const fs::path copy = damaged_copy(dir, "recover_full", live);
  ShipSystem recovered(durable_config(copy.string()));
  ASSERT_TRUE(recovered.recovered());
  EXPECT_EQ(recovered.now().micros(), kEnd.micros());

  // Operator view at the committed barrier: byte-identical to an uncrashed
  // control stopped there.
  ControlOracle oracle;
  EXPECT_EQ(browser_fingerprint(recovered), oracle.at(kEnd));

  // The DC control plane came back too: same revision, same applied
  // settings.
  EXPECT_EQ(recovered.concentrator(0).config_revision(), revision);
  const auto sigmas =
      recovered.concentrator(0).runtime_setting("validator.spike_sigmas");
  ASSERT_TRUE(sigmas.has_value());
  EXPECT_DOUBLE_EQ(*sigmas, 7.0);
  const auto hyst =
      recovered.concentrator(0).runtime_setting("dc.report_hysteresis");
  ASSERT_TRUE(hyst.has_value());
  EXPECT_DOUBLE_EQ(*hyst, 0.08);

  // And the recovered ship is live: it resumes advancing (and committing)
  // past the crash point without tripping any contract.
  schedule_faults(recovered);  // fault scripts are not durable state
  recovered.run_until(kEnd + SimTime::from_seconds(900), kStep);
  EXPECT_EQ(recovered.now().micros(), (kEnd + SimTime::from_seconds(900)).micros());
}

TEST(CrashRecoveryTest, WalTruncationAtArbitraryOffsetsRecoversACommittedBarrier) {
  TempDir dir;
  const fs::path live = dir.sub("live");
  {
    ShipSystem ship(durable_config(live.string()));
    schedule_faults(ship);
    drive_to(ship, kEnd);
  }
  const fs::path wal = db::DurableDatabase::wal_path(live.string());
  const std::vector<std::uint8_t> full = read_file(wal);
  ASSERT_GT(full.size(), 64u);

  // Truncation offsets spanning the file: even fractions plus ragged tails
  // that land mid-frame. Every cut must recover *some* committed barrier,
  // monotone in the amount of log kept, and several distinct barriers must
  // be reachable (the log really is incremental, not one giant commit).
  std::vector<std::size_t> cuts;
  for (std::size_t k = 1; k <= 6; ++k) cuts.push_back(full.size() * k / 6);
  cuts.push_back(full.size() - 1);
  cuts.push_back(full.size() - 7);
  cuts.push_back(full.size() * 2 / 5 + 3);

  ControlOracle oracle;
  std::set<std::int64_t> barriers;
  std::int64_t prev_barrier = -1;
  std::sort(cuts.begin(), cuts.end());
  for (const std::size_t cut : cuts) {
    const fs::path copy =
        damaged_copy(dir, "cut_" + std::to_string(cut), live);
    write_file(db::DurableDatabase::wal_path(copy.string()),
               {full.begin(), full.begin() + static_cast<std::ptrdiff_t>(cut)});

    ShipSystem recovered(durable_config(copy.string()));
    if (!recovered.recovered()) {
      // The cut dropped even the first commit (which carries the whole
      // ship build) — legal only near the front of the log; the system
      // starts fresh rather than aborting.
      EXPECT_LT(cut, full.size() / 2) << "cut=" << cut;
      EXPECT_EQ(recovered.now().micros(), 0) << "cut=" << cut;
      continue;
    }
    const SimTime barrier = recovered.now();
    EXPECT_GT(barrier.micros(), 0) << "cut=" << cut;
    EXPECT_LE(barrier.micros(), kEnd.micros()) << "cut=" << cut;
    EXPECT_EQ(barrier.micros() % kStep.micros(), 0) << "cut=" << cut;
    // Cuts are visited in ascending order: more log kept can never recover
    // an earlier barrier.
    EXPECT_GE(barrier.micros(), prev_barrier) << "cut=" << cut;
    prev_barrier = barrier.micros();
    barriers.insert(barrier.micros());

    EXPECT_EQ(browser_fingerprint(recovered), oracle.at(barrier))
        << "cut=" << cut;
  }
  // The cuts span the log, so they must land on several distinct barriers —
  // and the full-length log must be one of them (the final barrier).
  EXPECT_GE(barriers.size(), 3u);
  EXPECT_EQ(*barriers.rbegin(), kEnd.micros());
}

TEST(CrashRecoveryTest, WalTailCorruptionFallsBackToAnEarlierBarrier) {
  TempDir dir;
  const fs::path live = dir.sub("live");
  {
    ShipSystem ship(durable_config(live.string()));
    schedule_faults(ship);
    drive_to(ship, kEnd);
  }
  const std::vector<std::uint8_t> full =
      read_file(db::DurableDatabase::wal_path(live.string()));
  ASSERT_GT(full.size(), 256u);

  // Flip one byte at several depths into the tail. The CRC (or the decoder)
  // must stop replay at the damage: recovery lands on an earlier committed
  // barrier whose operator view still matches the control exactly.
  ControlOracle oracle;
  for (const std::size_t back : {std::size_t{3}, std::size_t{40},
                                 full.size() / 4, full.size() / 2}) {
    ASSERT_LT(back, full.size());
    std::vector<std::uint8_t> damaged = full;
    damaged[full.size() - 1 - back] ^= 0x5A;
    const fs::path copy =
        damaged_copy(dir, "flip_" + std::to_string(back), live);
    write_file(db::DurableDatabase::wal_path(copy.string()), damaged);

    ShipSystem recovered(durable_config(copy.string()));
    ASSERT_TRUE(recovered.recovered()) << "back=" << back;
    const SimTime barrier = recovered.now();
    EXPECT_GT(barrier.micros(), 0) << "back=" << back;
    EXPECT_EQ(barrier.micros() % kStep.micros(), 0) << "back=" << back;
    EXPECT_EQ(browser_fingerprint(recovered), oracle.at(barrier))
        << "back=" << back;
    EXPECT_TRUE(recovered.durable()->db().integrity_violations().empty())
        << "back=" << back;
  }
}

}  // namespace
}  // namespace mpros
