#pragma once
// The DC event scheduler (paper §5.8: "The DC software is coordinated by an
// event scheduler. It coordinates standard vibration test[s] ... wavelet
// and neural network testing ... and state based feature recognition
// routines").
//
// Tasks are periodic; run_until() fires every task due up to a deadline in
// time order, so interleaving between tasks with different periods matches
// a real cyclic executive. The PDME "or any other client can command the
// scheduler to conduct another test" — request_now() does that.

#include <functional>
#include <queue>
#include <string>
#include <vector>

#include "mpros/common/clock.hpp"

namespace mpros::dc {

class EventScheduler {
 public:
  using Task = std::function<void(SimTime now)>;
  using TaskId = std::size_t;

  /// Register a periodic task; first run at `first_due`.
  TaskId add_periodic(std::string name, SimTime first_due, SimTime period,
                      Task task);

  /// Queue an extra one-shot run of an existing task at the next
  /// run_until() (the §5.8 on-demand test command).
  void request_now(TaskId id);

  /// Change a task's period at runtime (the control plane's report-rate /
  /// heartbeat-rate knob). Takes effect at the task's next reschedule: the
  /// already-queued due entry keeps its slot, every later one uses the new
  /// period.
  void set_period(TaskId id, SimTime period);
  [[nodiscard]] SimTime period(TaskId id) const;

  /// Fire everything due up to and including `deadline`, in time order.
  /// Returns the number of task executions.
  std::size_t run_until(SimTime deadline);

  [[nodiscard]] std::size_t task_count() const { return tasks_.size(); }
  [[nodiscard]] const std::string& task_name(TaskId id) const;

 private:
  struct TaskRecord {
    std::string name;
    SimTime period;
    Task task;
  };
  struct Due {
    SimTime at;
    std::uint64_t sequence;
    TaskId id;
    bool reschedule;
  };
  struct Later {
    bool operator()(const Due& a, const Due& b) const {
      if (a.at != b.at) return b.at < a.at;
      return b.sequence < a.sequence;
    }
  };

  std::vector<TaskRecord> tasks_;
  std::priority_queue<Due, std::vector<Due>, Later> queue_;
  std::uint64_t next_sequence_ = 0;
};

}  // namespace mpros::dc
