file(REMOVE_RECURSE
  "CMakeFiles/mpros_fusion.dir/bayes_net.cpp.o"
  "CMakeFiles/mpros_fusion.dir/bayes_net.cpp.o.d"
  "CMakeFiles/mpros_fusion.dir/dempster_shafer.cpp.o"
  "CMakeFiles/mpros_fusion.dir/dempster_shafer.cpp.o.d"
  "CMakeFiles/mpros_fusion.dir/diagnostic_fusion.cpp.o"
  "CMakeFiles/mpros_fusion.dir/diagnostic_fusion.cpp.o.d"
  "CMakeFiles/mpros_fusion.dir/hazard.cpp.o"
  "CMakeFiles/mpros_fusion.dir/hazard.cpp.o.d"
  "CMakeFiles/mpros_fusion.dir/prognostic_fusion.cpp.o"
  "CMakeFiles/mpros_fusion.dir/prognostic_fusion.cpp.o.d"
  "CMakeFiles/mpros_fusion.dir/trend.cpp.o"
  "CMakeFiles/mpros_fusion.dir/trend.cpp.o.d"
  "libmpros_fusion.a"
  "libmpros_fusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpros_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
