// Embedded relational store tests: schema checks, CRUD, indexes,
// transactions.

#include <gtest/gtest.h>

#include <limits>

#include "mpros/db/database.hpp"

namespace mpros::db {
namespace {

TableSchema people_schema() {
  return TableSchema{"people",
                     {ColumnDef{"id", ValueType::Integer, false},
                      ColumnDef{"name", ValueType::Text, false},
                      ColumnDef{"age", ValueType::Integer, true},
                      ColumnDef{"score", ValueType::Real, true}}};
}

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_EQ(Value().type(), ValueType::Null);
  EXPECT_EQ(Value(std::int64_t{5}).as_integer(), 5);
  EXPECT_DOUBLE_EQ(Value(2.5).as_real(), 2.5);
  EXPECT_EQ(Value("hi").as_text(), "hi");
  EXPECT_DOUBLE_EQ(Value(std::int64_t{3}).numeric(), 3.0);
}

TEST(ValueTest, OrderingAcrossTypes) {
  EXPECT_TRUE(Value().less(Value(std::int64_t{1})));
  EXPECT_TRUE(Value(std::int64_t{1}).less(Value(2.5)));
  EXPECT_TRUE(Value(2.5).less(Value("a")));
  EXPECT_FALSE(Value("b").less(Value("a")));
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value().to_string(), "NULL");
  EXPECT_EQ(Value(std::int64_t{42}).to_string(), "42");
  EXPECT_EQ(Value("x").to_string(), "x");
}

TEST(TableTest, InsertFindErase) {
  Table t(people_schema());
  t.insert({Value(std::int64_t{1}), Value("alice"), Value(std::int64_t{30}),
            Value(0.9)});
  EXPECT_EQ(t.row_count(), 1u);
  const Row* row = t.find(1);
  ASSERT_NE(row, nullptr);
  EXPECT_EQ((*row)[1].as_text(), "alice");
  EXPECT_TRUE(t.erase(1));
  EXPECT_FALSE(t.erase(1));
  EXPECT_EQ(t.find(1), nullptr);
}

TEST(TableTest, InsertAutoAssignsSequentialKeys) {
  Table t(people_schema());
  const auto k1 = t.insert_auto({Value("a"), Value(), Value()});
  const auto k2 = t.insert_auto({Value("b"), Value(), Value()});
  EXPECT_EQ(k2, k1 + 1);
  // Explicit high key bumps the sequence.
  t.insert({Value(std::int64_t{100}), Value("c"), Value(), Value()});
  EXPECT_EQ(t.insert_auto({Value("d"), Value(), Value()}), 101);
}

TEST(TableTest, NullableAndTypeChecksAcceptIntegerIntoReal) {
  Table t(people_schema());
  // Integer into REAL column is allowed (numeric coercion).
  t.insert({Value(std::int64_t{1}), Value("a"), Value(),
            Value(std::int64_t{7})});
  EXPECT_EQ(t.row_count(), 1u);
}

TEST(TableTest, UpdateChangesValueAndIndexes) {
  Table t(people_schema());
  t.create_index("name");
  t.insert_auto({Value("old"), Value(), Value()});
  EXPECT_TRUE(t.update(1, "name", Value("new")));
  EXPECT_EQ(t.lookup("name", Value("old")).size(), 0u);
  EXPECT_EQ(t.lookup("name", Value("new")).size(), 1u);
  EXPECT_FALSE(t.update(99, "name", Value("zz")));
}

TEST(TableTest, SelectWithPredicate) {
  Table t(people_schema());
  for (int i = 0; i < 10; ++i) {
    t.insert_auto({Value("p" + std::to_string(i)),
                   Value(std::int64_t{20 + i}), Value()});
  }
  const auto old_enough = t.select(
      [](const Row& r) { return r[2].as_integer() >= 25; });
  EXPECT_EQ(old_enough.size(), 5u);
  EXPECT_EQ(t.select().size(), 10u);
}

TEST(TableTest, IndexEqualityAndRange) {
  Table t(people_schema());
  t.create_index("age");
  for (int i = 0; i < 20; ++i) {
    t.insert_auto({Value("p"), Value(std::int64_t{i % 5}), Value()});
  }
  EXPECT_EQ(t.lookup("age", Value(std::int64_t{3})).size(), 4u);
  EXPECT_EQ(t.lookup_range("age", Value(std::int64_t{1}),
                           Value(std::int64_t{2}))
                .size(),
            8u);
}

TEST(TableTest, IndexBuiltOverExistingRows) {
  Table t(people_schema());
  t.insert_auto({Value("x"), Value(std::int64_t{1}), Value()});
  t.insert_auto({Value("y"), Value(std::int64_t{1}), Value()});
  t.create_index("age");
  EXPECT_EQ(t.lookup("age", Value(std::int64_t{1})).size(), 2u);
}

TEST(TableTest, EraseRemovesFromIndex) {
  Table t(people_schema());
  t.create_index("age");
  const auto k = t.insert_auto({Value("x"), Value(std::int64_t{9}), Value()});
  t.erase(k);
  EXPECT_TRUE(t.lookup("age", Value(std::int64_t{9})).empty());
}

TEST(DatabaseTest, CreateAndDropTables) {
  Database db;
  db.create_table(people_schema());
  EXPECT_TRUE(db.has_table("people"));
  EXPECT_EQ(db.table_names().size(), 1u);
  db.drop_table("people");
  EXPECT_FALSE(db.has_table("people"));
}

TEST(DatabaseTest, TransactionCommitKeepsChanges) {
  Database db;
  db.create_table(people_schema());
  db.begin();
  db.insert_auto("people", {Value("a"), Value(), Value()});
  db.commit();
  EXPECT_EQ(db.table("people").row_count(), 1u);
}

TEST(DatabaseTest, TransactionRollbackUndoesInsertUpdateErase) {
  Database db;
  db.create_table(people_schema());
  const auto keep = db.insert_auto(
      "people", {Value("keep"), Value(std::int64_t{1}), Value()});
  const auto gone = db.insert_auto(
      "people", {Value("gone"), Value(std::int64_t{2}), Value()});

  db.begin();
  db.insert_auto("people", {Value("temp"), Value(), Value()});
  db.update("people", keep, "name", Value("mutated"));
  db.erase("people", gone);
  EXPECT_EQ(db.table("people").row_count(), 2u);
  db.rollback();

  EXPECT_EQ(db.table("people").row_count(), 2u);
  EXPECT_EQ((*db.table("people").find(keep))[1].as_text(), "keep");
  ASSERT_NE(db.table("people").find(gone), nullptr);
  EXPECT_EQ((*db.table("people").find(gone))[1].as_text(), "gone");
}

TEST(DatabaseTest, RollbackRestoresMultipleUpdatesInOrder) {
  Database db;
  db.create_table(people_schema());
  const auto k = db.insert_auto(
      "people", {Value("v0"), Value(), Value()});
  db.begin();
  db.update("people", k, "name", Value("v1"));
  db.update("people", k, "name", Value("v2"));
  db.rollback();
  EXPECT_EQ((*db.table("people").find(k))[1].as_text(), "v0");
}

TEST(DatabaseTest, OperationsOutsideTransactionAreImmediate) {
  Database db;
  db.create_table(people_schema());
  db.insert_auto("people", {Value("x"), Value(), Value()});
  EXPECT_FALSE(db.in_transaction());
  EXPECT_EQ(db.table("people").row_count(), 1u);
}

// --- Regressions: ordering, validation, rollback bookkeeping ----------------

TEST(ValueTest, NanSortsBelowEveryNumberAndEqualsItself) {
  const Value nan(std::numeric_limits<double>::quiet_NaN());
  const Value neg_inf(-std::numeric_limits<double>::infinity());
  const Value zero(0.0);
  // NaN < everything numeric; nothing numeric < NaN. Two NaNs are
  // equivalent (neither less) — a strict weak ordering, so a NaN row can
  // live in a std::map index without corrupting its invariants.
  EXPECT_TRUE(nan.less(neg_inf));
  EXPECT_TRUE(nan.less(zero));
  EXPECT_FALSE(neg_inf.less(nan));
  EXPECT_FALSE(zero.less(nan));
  EXPECT_FALSE(nan.less(nan));
}

TEST(TableTest, NanScoreSurvivesIndexedRoundTrip) {
  Table t(people_schema());
  t.create_index("score");
  const double nan = std::numeric_limits<double>::quiet_NaN();
  t.insert_auto({Value("a"), Value(), Value(nan)});
  t.insert_auto({Value("b"), Value(), Value(1.0)});
  t.insert_auto({Value("c"), Value(), Value(nan)});
  // Both NaN rows are findable through the index and the index stays
  // internally consistent (pre-fix, NaN comparisons broke the map's strict
  // weak ordering and lookups silently missed rows).
  EXPECT_EQ(t.lookup("score", Value(nan)).size(), 2u);
  EXPECT_EQ(t.lookup("score", Value(1.0)).size(), 1u);
  EXPECT_TRUE(t.index_violations().empty());
}

TEST(ValueTest, LargeIntegersCompareExactly) {
  // 2^53 and 2^53+1 collapse to the same double; integer-vs-integer must
  // compare exactly, not through the lossy numeric() widening.
  const auto big = std::int64_t{1} << 53;
  EXPECT_TRUE(Value(big).less(Value(big + 1)));
  EXPECT_FALSE(Value(big + 1).less(Value(big)));
  EXPECT_FALSE(Value(big).less(Value(big)));
  // Mixed integer/real still orders by numeric value.
  EXPECT_TRUE(Value(std::int64_t{2}).less(Value(2.5)));
}

TEST(TableTest, AdjacentLargeIntegersStayDistinctInIndex) {
  Table t(people_schema());
  t.create_index("age");
  const auto big = std::int64_t{1} << 53;
  t.insert_auto({Value("lo"), Value(big), Value()});
  t.insert_auto({Value("hi"), Value(big + 1), Value()});
  EXPECT_EQ(t.lookup("age", Value(big)).size(), 1u);
  EXPECT_EQ(t.lookup("age", Value(big + 1)).size(), 1u);
  EXPECT_TRUE(t.index_violations().empty());
}

TEST(TableTest, UpdateValidatesBeforeMutating) {
  // An inadmissible update is a contract violation — but the check must run
  // BEFORE the unindex/assign (pre-fix the row was already mutated and the
  // index emptied when the precondition tripped). In-process the gate is
  // observable through cell_admissible and the soft apply_redo path below.
  Table t(people_schema());
  EXPECT_TRUE(t.cell_admissible(1, Value("text")));
  EXPECT_FALSE(t.cell_admissible(1, Value(std::int64_t{7})));
  EXPECT_FALSE(t.cell_admissible(1, Value()));  // non-nullable
  EXPECT_FALSE(t.cell_admissible(3, Value("not a real")));
  EXPECT_TRUE(t.cell_admissible(3, Value()));  // nullable
}

TEST(DatabaseTest, InadmissibleRedoUpdateLeavesRowAndIndexUntouched) {
  Database db;
  db.create_table(people_schema());
  db.create_index("people", "name");
  const auto k = db.insert_auto("people", {Value("ok"), Value(), Value()});

  RedoOp op;
  op.kind = RedoOp::Kind::Update;
  op.table = "people";
  op.key = k;
  op.column = "name";
  op.value = Value(std::int64_t{7});  // type mismatch
  EXPECT_FALSE(apply_redo(db, std::move(op)));

  EXPECT_EQ((*db.table("people").find(k))[1].as_text(), "ok");
  EXPECT_EQ(db.table("people").lookup("name", Value("ok")).size(), 1u);
  EXPECT_TRUE(db.integrity_violations().empty());
}

TEST(DatabaseTest, RollbackRestoresAutoKeyCounter) {
  Database db;
  db.create_table(people_schema());
  db.insert_auto("people", {Value("a"), Value(), Value()});

  db.begin();
  const auto temp =
      db.insert_auto("people", {Value("temp"), Value(), Value()});
  db.rollback();

  // The auto-key the aborted transaction consumed is reissued: the next
  // insert gets the same key an untouched database would have handed out.
  const auto next = db.insert_auto("people", {Value("b"), Value(), Value()});
  EXPECT_EQ(next, temp);
  EXPECT_TRUE(db.integrity_violations().empty());
}

TEST(DatabaseTest, RollbackOfEraseKeepsAutoKeyMonotonic) {
  Database db;
  db.create_table(people_schema());
  const auto a = db.insert_auto("people", {Value("a"), Value(), Value()});
  const auto b = db.insert_auto("people", {Value("b"), Value(), Value()});
  db.begin();
  db.erase("people", a);
  db.erase("people", b);
  db.rollback();
  // Re-inserting the erased rows during rollback must not bump the counter
  // past where the live table had it.
  EXPECT_EQ(db.insert_auto("people", {Value("c"), Value(), Value()}), b + 1);
  EXPECT_TRUE(db.integrity_violations().empty());
}

}  // namespace
}  // namespace mpros::db
