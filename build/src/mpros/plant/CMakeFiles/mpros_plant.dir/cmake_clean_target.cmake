file(REMOVE_RECURSE
  "libmpros_plant.a"
)
