#pragma once
// Discrete wavelet transform.
//
// Substrate for the Georgia Tech Wavelet Neural Network (paper §6.2): the
// WNN's inputs include "wavelet maps" of the vibration signal, and its
// selling point is localization — drawing conclusions from *transitory*
// phenomena that steady-state FFT analysis (DLI) misses.
//
// Implementation: Mallat pyramid with periodic signal extension, orthogonal
// Daubechies filters (Haar/db1, db2, db4).

#include <cstddef>
#include <span>
#include <vector>

namespace mpros::wavelet {

enum class Family { Haar, Db2, Db4 };

/// Analysis low-pass coefficients for a family (orthonormal).
[[nodiscard]] std::span<const double> scaling_coefficients(Family f);

/// Analysis high-pass (quadrature mirror) coefficients for a family,
/// precomputed once per process.
[[nodiscard]] std::span<const double> wavelet_coefficients(Family f);

[[nodiscard]] const char* to_string(Family f);

/// One DWT level: split x (even length) into approximation and detail
/// halves using periodic extension.
struct DwtLevel {
  std::vector<double> approx;
  std::vector<double> detail;
};
[[nodiscard]] DwtLevel dwt_step(std::span<const double> x, Family f);

/// Inverse of dwt_step.
[[nodiscard]] std::vector<double> idwt_step(std::span<const double> approx,
                                            std::span<const double> detail,
                                            Family f);

/// Full multi-level decomposition.
/// details[0] is the finest scale; approx is the coarsest residual.
struct Decomposition {
  Family family = Family::Db4;
  std::vector<std::vector<double>> details;
  std::vector<double> approx;

  [[nodiscard]] std::size_t levels() const { return details.size(); }
};

/// Decompose `x` through `levels` levels (x.size() must be divisible by
/// 2^levels).
[[nodiscard]] Decomposition decompose(std::span<const double> x, Family f,
                                      std::size_t levels);

/// Allocation-free variant: writes into `d`, reusing its buffers. At a
/// steady (length, levels) this performs zero heap allocation.
void decompose(std::span<const double> x, Family f, std::size_t levels,
               Decomposition& d);

/// Perfect reconstruction from a decomposition.
[[nodiscard]] std::vector<double> reconstruct(const Decomposition& d);

/// Maximum level count for a signal length (floor(log2(n))).
[[nodiscard]] std::size_t max_levels(std::size_t n);

}  // namespace mpros::wavelet
