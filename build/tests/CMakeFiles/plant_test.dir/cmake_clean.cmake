file(REMOVE_RECURSE
  "CMakeFiles/plant_test.dir/plant_test.cpp.o"
  "CMakeFiles/plant_test.dir/plant_test.cpp.o.d"
  "plant_test"
  "plant_test.pdb"
  "plant_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plant_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
