#pragma once
// Feature frames: the facts a frame-based vibration rule reasons over.
//
// The DLI substitute's rules (paper §6.1) combine "spectral vibration
// features ... with process parameters such as load or bearing temperatures".
// A FeatureFrame is a bag of named scalars produced from one machinery test:
// spectral orders, bearing envelope tones, electrical signatures, overall
// statistics, and process variables.

#include <optional>
#include <span>
#include <string>
#include <unordered_map>

#include "mpros/domain/equipment.hpp"

namespace mpros::rules {

// Canonical feature keys. Vibration amplitudes are in g.
namespace feat {
// Shaft orders (amplitude at k x running speed)
inline constexpr const char* kOrderHalf = "order.0.5x";
inline constexpr const char* kOrder1 = "order.1x";
inline constexpr const char* kOrder2 = "order.2x";
inline constexpr const char* kOrder3 = "order.3x";
inline constexpr const char* kOrder4 = "order.4x";
/// Energy in the 1x..6x harmonic series (looseness raises the whole series).
inline constexpr const char* kHarmonicSeries = "order.harmonic_series";
/// Energy at half-order harmonics (0.5x, 1.5x, 2.5x) — looseness signature.
inline constexpr const char* kSubharmonics = "order.subharmonics";
// Gear
inline constexpr const char* kGearMesh = "gear.mesh";
inline constexpr const char* kGearSidebands = "gear.mesh_sidebands";
// Bearing envelope tones
inline constexpr const char* kBpfo = "bearing.bpfo";
inline constexpr const char* kBpfi = "bearing.bpfi";
inline constexpr const char* kBsf = "bearing.bsf";
inline constexpr const char* kFtf = "bearing.ftf";
// Compressor
inline constexpr const char* kVanePass = "compressor.vane_pass";
inline constexpr const char* kBroadbandHf = "broadband.high_freq";
// Electrical (from the motor-current channel)
inline constexpr const char* kTwiceLine = "electrical.2x_line";
inline constexpr const char* kPolePassSidebands = "electrical.pole_pass_sidebands";
inline constexpr const char* kCurrentRms = "electrical.current_rms";
// Overall statistics of the vibration waveform
inline constexpr const char* kOverallRms = "overall.rms";
inline constexpr const char* kCrestFactor = "overall.crest";
inline constexpr const char* kKurtosis = "overall.kurtosis";
// Process variables
inline constexpr const char* kLoad = "process.load";  // fraction 0..1
inline constexpr const char* kOilPressure = "process.oil_pressure_kpa";
inline constexpr const char* kOilTemp = "process.oil_temp_c";
inline constexpr const char* kBearingTemp = "process.bearing_temp_c";
inline constexpr const char* kWindingTemp = "process.winding_temp_c";
inline constexpr const char* kEvapPressure = "process.evap_pressure_kpa";
inline constexpr const char* kCondPressure = "process.cond_pressure_kpa";
inline constexpr const char* kSuperheat = "process.superheat_c";
inline constexpr const char* kChwSupplyTemp = "process.chw_supply_c";
inline constexpr const char* kCondApproach = "process.cond_approach_c";
inline constexpr const char* kMotorCurrent = "process.motor_current_a";
}  // namespace feat

class FeatureFrame {
 public:
  /// Store a feature. Non-finite values are refused (counted under
  /// `rules.nonfinite_inputs`): a NaN that slipped past the sensor screens
  /// must read as "unmeasured" so clauses abstain, never as evidence.
  void set(std::string key, double value);
  [[nodiscard]] bool has(const std::string& key) const {
    return values_.contains(key);
  }
  /// Value or `fallback` when the feature was not measured.
  [[nodiscard]] double get(const std::string& key, double fallback = 0.0) const;
  [[nodiscard]] std::optional<double> maybe(const std::string& key) const;
  [[nodiscard]] std::size_t size() const { return values_.size(); }

  [[nodiscard]] const std::unordered_map<std::string, double>& all() const {
    return values_;
  }

 private:
  std::unordered_map<std::string, double> values_;
};

/// Extraction settings; defaults fit the 40 kHz 4-channel digitizer model.
struct ExtractorConfig {
  std::size_t fft_size = 8192;
  double envelope_band_lo_hz = 2000.0;
  double envelope_band_hi_hz = 8000.0;
  double order_tolerance = 0.05;  // +/- orders when hunting a tone
};

/// Turns raw test data into a FeatureFrame.
class FeatureExtractor {
 public:
  FeatureExtractor(domain::MachineSignature signature,
                   ExtractorConfig cfg = {});

  /// Extract spectral + statistical features from a vibration waveform
  /// sampled at `sample_rate_hz`, merging them into `frame`.
  void extract_vibration(std::span<const double> waveform,
                         double sample_rate_hz, FeatureFrame& frame) const;

  /// Extract electrical signatures from a motor-current waveform.
  void extract_current(std::span<const double> waveform,
                       double sample_rate_hz, double load_fraction,
                       FeatureFrame& frame) const;

  [[nodiscard]] const domain::MachineSignature& signature() const {
    return signature_;
  }

 private:
  domain::MachineSignature signature_;
  ExtractorConfig cfg_;
};

}  // namespace mpros::rules
