# Empty dependencies file for shipboard_deployment.
# This may be replaced when dependencies are built.
