// mpros_soak — the continuous-invariant chaos soak harness (§4.9 at scale).
//
// Drives N independent hulls through a long simulated voyage while chaos
// injection hammers the shipboard layer, and re-checks the system's
// standing invariants at every soak checkpoint — not just at the end, so a
// violation pins the simulated minute it first appeared. Hull 0 runs the
// sharded PDME and hull 1 is its inline mirror (same seed, same faults,
// same chaos), turning the E18 shard-equivalence property into a
// continuously evaluated invariant.
//
// Chaos knobs come from the environment so one binary serves both the CI
// job and the nightly soak without recompilation:
//   MPROS_CHAOS_DROP=P       shipboard datagram loss probability
//   MPROS_CHAOS_DUP=P        shipboard duplication probability
//   MPROS_CHAOS_OUTAGE=S:D   every S simulated seconds, hard-partition a
//                            rotating DC endpoint for D seconds
//   MPROS_CHAOS_WEDGE=1      wedge a rotating DC each outage period; the
//                            supervisor must detect and recover it
//   MPROS_CHAOS_CHURN=S      every S seconds, command a runtime config
//                            change (rotating key/value) on a rotating DC
//   MPROS_CHAOS_BATCH=0      flush one datagram per report instead of the
//                            sync-window ReportBatch coalescing (E21);
//                            default/1 keeps batching on
//   MPROS_CHAOS_CRASH=S      every S seconds, kill BOTH mirror hulls
//                            mid-voyage (destroy the ShipSystem, no
//                            shutdown) and rebuild each from its durable
//                            OOSM directory; the recovered pair must keep
//                            satisfying every invariant, I1 included
//
// Invariants (any violation = nonzero exit naming the simulated time):
//   I1 shard equivalence      the mirror hulls' fused views render
//                             byte-identical (summary + ICAS export)
//   I2 delivery conservation  per hull: sent + duplicated ==
//                             delivered + dropped + dead_lettered + in_flight
//   I3 liveness sanity        PDME counters are monotone; after the final
//                             quiet heal window every DC is Alive again
//   I4 config convergence     after heal, each DC's config_revision equals
//                             the newest stamped revision and every
//                             commanded value reads back via
//                             runtime_setting()
//
//   mpros_soak --short        CI mode: 2 hulls x 2 plants, 3 simulated hours
//   mpros_soak                nightly: 6 hulls x 4 plants, 240 simulated
//                             hours (tens of millions of datagrams)
//   --ships N --plants N --hours H --seed N --step-s S --check-s S
//   override either profile.

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "mpros/mpros/mpros.hpp"

namespace {

using namespace mpros;

double env_double(const char* name, double fallback) {
  const char* v = std::getenv(name);
  return (v != nullptr && *v != '\0') ? std::atof(v) : fallback;
}

bool env_flag(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' && std::strcmp(v, "0") != 0;
}

/// "S:D" -> {period, duration}; zeros disable.
std::pair<double, double> env_outage() {
  const char* v = std::getenv("MPROS_CHAOS_OUTAGE");
  if (v == nullptr || *v == '\0') return {0.0, 0.0};
  const char* colon = std::strchr(v, ':');
  if (colon == nullptr) return {std::atof(v), 120.0};
  return {std::atof(v), std::atof(colon + 1)};
}

struct ChurnKnob {
  const char* key;
  double a;
  double b;
};

/// The rotation the churn injector cycles through — validator thresholds,
/// report shaping, analyzer enablement: one of each control-plane family.
constexpr ChurnKnob kChurn[] = {
    {"dc.report_hysteresis", 0.03, 0.08},
    {"validator.spike_sigmas", 6.0, 9.0},
    {"dc.wnn_report_threshold", 0.40, 0.55},
    {"dc.report_refresh_s", 900.0, 1800.0},
    {"dc.sensor_publish_every", 3.0, 7.0},
    {"dc.enable_fuzzy", 0.0, 1.0},
};

int fail(SimTime at, const std::string& what) {
  std::fprintf(stderr, "mpros_soak: INVARIANT VIOLATION at t=%.0fs: %s\n",
               at.seconds(), what.c_str());
  return 1;
}

[[nodiscard]] std::string fused_fingerprint(ShipSystem& ship) {
  return pdme::render_summary(ship.pdme(), ship.model()) + "\n---\n" +
         pdme::export_icas_csv(ship.pdme(), ship.model());
}

}  // namespace

int main(int argc, char** argv) {
  // Nightly profile by default; --short is the CI profile.
  std::size_t ships = 6;
  std::size_t plants = 4;
  double hours = 240.0;
  double step_s = 60.0;
  double check_s = 600.0;
  std::uint64_t seed = 0x50AC;
  bool short_mode = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "mpros_soak: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--short") {
      short_mode = true;
      ships = 2;
      plants = 2;
      hours = 3.0;
    } else if (arg == "--ships") {
      ships = static_cast<std::size_t>(std::atoi(next()));
    } else if (arg == "--plants") {
      plants = static_cast<std::size_t>(std::atoi(next()));
    } else if (arg == "--hours") {
      hours = std::atof(next());
    } else if (arg == "--step-s") {
      step_s = std::atof(next());
    } else if (arg == "--check-s") {
      check_s = std::atof(next());
    } else if (arg == "--seed") {
      seed = std::strtoull(next(), nullptr, 0);
    } else if (arg == "--help" || arg == "-h") {
      std::printf("see the header comment of tools/mpros_soak.cpp\n");
      return 0;
    } else {
      std::fprintf(stderr, "mpros_soak: unknown argument '%s'\n", arg.c_str());
      return 2;
    }
  }
  if (ships < 2) ships = 2;  // the mirror pair is the floor
  if (plants == 0) plants = 1;

  const double chaos_drop = env_double("MPROS_CHAOS_DROP", 0.0);
  const double chaos_dup = env_double("MPROS_CHAOS_DUP", 0.0);
  const auto [outage_period_s, outage_len_s] = env_outage();
  const bool chaos_wedge = env_flag("MPROS_CHAOS_WEDGE");
  const double churn_period_s = env_double("MPROS_CHAOS_CHURN", 0.0);
  const bool chaos_batch = env_double("MPROS_CHAOS_BATCH", 1.0) != 0.0;
  const double crash_period_s = env_double("MPROS_CHAOS_CRASH", 0.0);

  std::printf(
      "mpros_soak: %zu hull(s) x %zu plant(s), %.0f simulated hour(s)%s\n"
      "chaos: drop=%.3f dup=%.3f outage=%.0fs/%.0fs wedge=%d churn=%.0fs "
      "batch=%d crash=%.0fs\n",
      ships, plants, hours, short_mode ? " (short/CI profile)" : "",
      chaos_drop, chaos_dup, outage_period_s, outage_len_s,
      chaos_wedge ? 1 : 0, churn_period_s, chaos_batch ? 1 : 0,
      crash_period_s);

  // Durable OOSM directories for the mirror pair: only armed when the
  // crash injector is on (a crash needs something to recover from).
  const std::filesystem::path crash_root =
      std::filesystem::temp_directory_path() /
      ("mpros_soak_crash_" + std::to_string(::getpid()));
  if (crash_period_s > 0.0) {
    std::filesystem::remove_all(crash_root);
    std::filesystem::create_directories(crash_root);
  }

  // ---- assemble the fleet -------------------------------------------------
  // Hull 0 shards its PDME, hull 1 is the inline mirror with the identical
  // seed/fault/chaos script; hulls 2.. add population under varied seeds.
  const auto make_cfg = [&](std::size_t h) {
    ShipSystemConfig cfg;
    cfg.plant_count = plants;
    const bool mirror_pair = h < 2;
    cfg.seed = mirror_pair ? seed : seed + h * 0x9E3779B9ULL;
    cfg.network.seed = mirror_pair ? 0xC0FFEE : 0xC0FFEE + h;
    cfg.network.drop_probability = chaos_drop;
    cfg.network.duplicate_probability = chaos_dup;
    cfg.pdme.shard_count = (h == 1) ? 0 : 2;  // hull 1 is the inline mirror
    cfg.pdme.auto_retest = false;  // retest timing differs inline vs sharded
    cfg.dc_template.batch_reports = chaos_batch;
    if (crash_period_s > 0.0 && mirror_pair) {
      cfg.enable_durability = true;
      cfg.durability.directory =
          (crash_root / ("hull" + std::to_string(h))).string();
    }
    // Long mode turns the report volume up: short refresh + every-scan
    // sensor batches is what makes 240 h reach tens of millions of
    // datagrams.
    if (!short_mode) {
      cfg.dc_template.process_period = SimTime::from_seconds(20.0);
      cfg.dc_template.report_refresh = SimTime::from_seconds(120.0);
      cfg.dc_template.vibration_period = SimTime::from_seconds(300.0);
      cfg.dc_template.sensor_publish_every = 1;
    }
    return cfg;
  };
  // A standing fault per plant keeps every analyzer and the report
  // pipeline exercised for the whole voyage. (Fault scripts are simulator
  // state, not durable state: a rebuilt hull re-arms the same script.)
  const auto arm_faults = [&](ShipSystem& ship) {
    static constexpr domain::FailureMode kModes[] = {
        domain::FailureMode::MotorImbalance,
        domain::FailureMode::RefrigerantLeak,
        domain::FailureMode::MotorBearingWear,
        domain::FailureMode::CondenserFouling,
    };
    for (std::size_t p = 0; p < plants; ++p) {
      plant::FaultEvent ev;
      ev.mode = kModes[p % 4];
      ev.onset = SimTime::from_hours(0.25 + 0.1 * static_cast<double>(p));
      ev.ramp = SimTime::from_hours(hours * 0.5);
      ev.max_severity = 0.9;
      ev.profile = plant::GrowthProfile::Linear;
      ship.chiller(p).faults().schedule(ev);
    }
  };
  std::vector<std::unique_ptr<ShipSystem>> fleet;
  for (std::size_t h = 0; h < ships; ++h) {
    fleet.push_back(std::make_unique<ShipSystem>(make_cfg(h)));
    arm_faults(*fleet[h]);
  }

  const SimTime end = SimTime::from_hours(hours);
  const SimTime step = SimTime::from_seconds(step_s);
  const SimTime check = SimTime::from_seconds(check_s);
  // The heal window: chaos stops this long before the end so retransmit
  // backoff (max_rto), wedge recovery and command redelivery can all drain
  // before the final convergence checks.
  const SimTime heal = SimTime::from_hours(short_mode ? 1.0 : 2.0);
  const SimTime chaos_end = end > heal ? end - heal : SimTime(0);

  // Chaos scripting state.
  SimTime next_outage =
      outage_period_s > 0.0 ? SimTime::from_seconds(outage_period_s)
                            : SimTime(-1);
  SimTime next_wedge = chaos_wedge ? SimTime::from_seconds(900.0)
                                   : SimTime(-1);
  const SimTime wedge_every = SimTime::from_seconds(
      outage_period_s > 0.0 ? 2.0 * outage_period_s : 1800.0);
  SimTime next_churn = churn_period_s > 0.0
                           ? SimTime::from_seconds(churn_period_s)
                           : SimTime(-1);
  SimTime next_crash = crash_period_s > 0.0
                           ? SimTime::from_seconds(crash_period_s)
                           : SimTime(-1);
  std::size_t outage_count = 0;
  std::size_t wedge_count = 0;
  std::size_t churn_count = 0;
  std::size_t crash_count = 0;

  // I4 bookkeeping: what each (hull, plant) was last commanded to.
  struct Expected {
    std::uint64_t revision = 0;
    std::map<std::string, double> settings;
  };
  std::vector<std::vector<Expected>> expected(
      ships, std::vector<Expected>(plants));

  // I3 bookkeeping: last PDME counter snapshot per hull.
  std::vector<pdme::PdmeExecutive::Stats> last_stats(ships);

  SimTime next_check = check;
  for (SimTime t = step; t <= end; t = t + step) {
    const bool chaos_live = t <= chaos_end;

    if (chaos_live && next_crash.micros() >= 0 && t >= next_crash) {
      // Kill -9 analogue on BOTH mirror hulls: destroy each ShipSystem with
      // no shutdown path, then rebuild over its durable directory. Both
      // recover the same committed barrier, so the shard-equivalence
      // invariant must keep holding for the rest of the voyage.
      const SimTime committed = fleet[0]->now();
      for (std::size_t h = 0; h < 2 && h < ships; ++h) {
        fleet[h].reset();  // the crash: in-memory state is simply gone
        fleet[h] = std::make_unique<ShipSystem>(make_cfg(h));
        if (!fleet[h]->recovered() ||
            fleet[h]->now().micros() != committed.micros()) {
          return fail(t, "hull " + std::to_string(h) +
                             " did not recover the committed barrier after "
                             "a crash (got " +
                             std::to_string(fleet[h]->now().seconds()) +
                             "s, want " +
                             std::to_string(committed.seconds()) + "s)");
        }
        arm_faults(*fleet[h]);
        // Counters and network stats restart with the process.
        last_stats[h] = {};
        // Commands in flight died with the hull; re-issue the newest
        // commanded state so the convergence invariant stays meaningful
        // (and the post-crash control plane gets exercised).
        for (std::size_t p = 0; p < plants; ++p) {
          Expected& want = expected[h][p];
          if (want.settings.empty()) continue;
          std::vector<std::pair<std::string, double>> settings(
              want.settings.begin(), want.settings.end());
          want.revision = fleet[h]->command_dc(p, std::move(settings),
                                               "post-crash re-command");
        }
      }
      ++crash_count;
      next_crash = next_crash + SimTime::from_seconds(crash_period_s);
    }

    if (chaos_live && next_outage.micros() >= 0 && t >= next_outage) {
      // Partition one rotating DC endpoint on every hull (identically on
      // the mirror pair, by construction of the loop).
      const std::string victim =
          "dc-" + std::to_string(outage_count % plants + 1);
      for (auto& ship : fleet) {
        ship->network().schedule_outage(
            {victim, t, t + SimTime::from_seconds(outage_len_s), 1.0});
      }
      ++outage_count;
      next_outage = next_outage + SimTime::from_seconds(outage_period_s);
    }

    if (chaos_live && next_wedge.micros() >= 0 && t >= next_wedge) {
      const std::size_t victim = wedge_count % plants;
      for (auto& ship : fleet) ship->wedge_dc(victim, true);
      ++wedge_count;
      next_wedge = next_wedge + wedge_every;
    }

    if (chaos_live && next_churn.micros() >= 0 && t >= next_churn) {
      constexpr std::size_t kKnobs = sizeof(kChurn) / sizeof(kChurn[0]);
      const ChurnKnob& knob = kChurn[churn_count % kKnobs];
      const double value = (churn_count / kKnobs) % 2 == 0 ? knob.a : knob.b;
      const std::size_t target = churn_count % plants;
      for (std::size_t h = 0; h < ships; ++h) {
        const std::uint64_t rev = fleet[h]->command_dc(
            target, {{knob.key, value}}, "soak churn");
        expected[h][target].revision = rev;
        expected[h][target].settings[knob.key] = value;
      }
      ++churn_count;
      next_churn = next_churn + SimTime::from_seconds(churn_period_s);
    }

    for (auto& ship : fleet) ship->advance_to(t);

    if (t < next_check && t < end) continue;
    next_check = next_check + check;

    // I1: the mirror hulls must agree byte-for-byte.
    const std::string sharded = fused_fingerprint(*fleet[0]);
    const std::string inlined = fused_fingerprint(*fleet[1]);
    if (sharded != inlined) {
      return fail(t, "shard equivalence broken: hull 0 (sharded) and hull 1 "
                     "(inline mirror) render different fused views");
    }

    for (std::size_t h = 0; h < ships; ++h) {
      // I2: every datagram is accounted for.
      const net::NetworkStats ns = fleet[h]->network().stats();
      const std::uint64_t in = ns.sent + ns.duplicated;
      const std::uint64_t out = ns.delivered + ns.dropped +
                                ns.dead_lettered +
                                fleet[h]->network().in_flight();
      if (in != out) {
        return fail(t, "delivery conservation broken on hull " +
                           std::to_string(h) + ": in=" + std::to_string(in) +
                           " out=" + std::to_string(out));
      }

      // I3: cumulative PDME counters never regress.
      const pdme::PdmeExecutive::Stats s = fleet[h]->pdme().stats();
      const pdme::PdmeExecutive::Stats& prev = last_stats[h];
      if (s.reports_accepted < prev.reports_accepted ||
          s.envelopes_accepted < prev.envelopes_accepted ||
          s.heartbeats_received < prev.heartbeats_received ||
          s.liveness_transitions < prev.liveness_transitions ||
          s.commands_sent < prev.commands_sent ||
          s.command_acks < prev.command_acks) {
        return fail(t, "PDME counters regressed on hull " + std::to_string(h));
      }
      last_stats[h] = s;
    }
  }

  // ---- post-heal convergence checks --------------------------------------
  const SimTime t_end = fleet[0]->now();
  for (std::size_t h = 0; h < ships; ++h) {
    for (std::size_t p = 0; p < plants; ++p) {
      // I3: every DC healed back to Alive.
      const auto liveness = fleet[h]->pdme().dc_liveness(DcId(p + 1));
      if (liveness != pdme::DcLiveness::Alive) {
        return fail(t_end, "hull " + std::to_string(h) + " dc-" +
                               std::to_string(p + 1) + " is " +
                               pdme::to_string(liveness) +
                               " after the heal window");
      }
      // I4: the control plane converged to the newest commanded state.
      const Expected& want = expected[h][p];
      dc::DataConcentrator& dc = fleet[h]->concentrator(p);
      if (dc.config_revision() != want.revision) {
        return fail(t_end,
                    "hull " + std::to_string(h) + " dc-" +
                        std::to_string(p + 1) + " config revision " +
                        std::to_string(dc.config_revision()) +
                        " != commanded " + std::to_string(want.revision));
      }
      for (const auto& [key, value] : want.settings) {
        const auto got = dc.runtime_setting(key);
        if (!got.has_value() || *got != value) {
          return fail(t_end, "hull " + std::to_string(h) + " dc-" +
                                 std::to_string(p + 1) + " setting " + key +
                                 " did not converge");
        }
      }
    }
  }

  // ---- report -------------------------------------------------------------
  std::uint64_t reports = 0;
  std::uint64_t samples = 0;
  std::uint64_t datagrams = 0;
  for (auto& ship : fleet) {
    const ShipSystem::FleetStats fs = ship->fleet_stats();
    reports += fs.reports_emitted;
    samples += fs.samples_processed;
    datagrams += fs.network.sent;
  }
  auto& reg = telemetry::Registry::instance();
  std::printf(
      "mpros_soak: PASS — all invariants held for %.0f simulated hour(s)\n"
      "  traffic: %llu datagram(s), %llu report(s), %llu sample(s)\n"
      "  chaos:   %zu outage(s), %zu wedge(s), %zu config churn(s), "
      "%zu crash(es)\n"
      "  healed:  %llu wedge(s) detected, %llu supervised restart(s)\n"
      "  config:  %llu applied, %llu rejected; pdme.queue_full=%llu\n",
      hours, static_cast<unsigned long long>(datagrams),
      static_cast<unsigned long long>(reports),
      static_cast<unsigned long long>(samples), outage_count, wedge_count,
      churn_count, crash_count,
      static_cast<unsigned long long>(
          reg.counter("dc.wedges_detected").value()),
      static_cast<unsigned long long>(
          reg.counter("mpros.supervisor_restarts").value()),
      static_cast<unsigned long long>(reg.counter("dc.config_applied").value()),
      static_cast<unsigned long long>(
          reg.counter("dc.config_rejected").value()),
      static_cast<unsigned long long>(reg.counter("pdme.queue_full").value()));
  if (chaos_wedge && wedge_count > 0 &&
      reg.counter("mpros.supervisor_restarts").value() == 0) {
    std::fprintf(stderr, "mpros_soak: wedges were injected but the "
                         "supervisor never restarted a DC\n");
    return 1;
  }
  if (crash_period_s > 0.0) {
    if (crash_count == 0) {
      std::fprintf(stderr, "mpros_soak: MPROS_CHAOS_CRASH was set but no "
                           "crash fired (voyage too short?)\n");
      return 1;
    }
    fleet.clear();  // release the WALs before deleting the directories
    std::filesystem::remove_all(crash_root);
  }
  return 0;
}
