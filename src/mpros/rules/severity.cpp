#include "mpros/rules/severity.hpp"

#include <algorithm>

namespace mpros::rules {

const char* to_string(Gradient g) {
  switch (g) {
    case Gradient::None: return "None";
    case Gradient::Slight: return "Slight";
    case Gradient::Moderate: return "Moderate";
    case Gradient::Serious: return "Serious";
    case Gradient::Extreme: return "Extreme";
  }
  return "?";
}

Gradient gradient_of(double severity, const GradientThresholds& t) {
  if (severity >= t.extreme) return Gradient::Extreme;
  if (severity >= t.serious) return Gradient::Serious;
  if (severity >= t.moderate) return Gradient::Moderate;
  if (severity >= t.slight) return Gradient::Slight;
  return Gradient::None;
}

std::vector<PrognosticPoint> default_prognosis(double severity,
                                               const GradientThresholds& t) {
  const Gradient g = gradient_of(severity, t);

  // Position of the score within its gradient band, 0 (just entered) to 1
  // (about to cross into the next band). Used to pull horizons earlier.
  const auto band_pos = [&](double lo, double hi) {
    return std::clamp((severity - lo) / std::max(1e-9, hi - lo), 0.0, 1.0);
  };

  std::vector<PrognosticPoint> v;
  switch (g) {
    case Gradient::None:
      return v;  // no foreseeable failure: empty vector
    case Gradient::Slight: {
      const double p = band_pos(t.slight, t.moderate);
      v.push_back({SimTime::from_months(6.0 - 2.0 * p), 0.10});
      v.push_back({SimTime::from_months(12.0 - 3.0 * p), 0.40});
      break;
    }
    case Gradient::Moderate: {
      const double p = band_pos(t.moderate, t.serious);
      v.push_back({SimTime::from_months(1.0), 0.10 + 0.10 * p});
      v.push_back({SimTime::from_months(3.0 - 1.0 * p), 0.50});
      v.push_back({SimTime::from_months(6.0 - 2.0 * p), 0.90});
      break;
    }
    case Gradient::Serious: {
      const double p = band_pos(t.serious, t.extreme);
      v.push_back({SimTime::from_days(7.0 - 3.0 * p), 0.25});
      v.push_back({SimTime::from_days(21.0 - 7.0 * p), 0.60});
      v.push_back({SimTime::from_days(42.0 - 14.0 * p), 0.90});
      break;
    }
    case Gradient::Extreme: {
      const double p = band_pos(t.extreme, 1.0);
      v.push_back({SimTime::from_days(1.0), 0.40 + 0.30 * p});
      v.push_back({SimTime::from_days(3.0), 0.80 + 0.15 * p});
      v.push_back({SimTime::from_days(7.0), 0.99});
      break;
    }
  }
  return v;
}

}  // namespace mpros::rules
