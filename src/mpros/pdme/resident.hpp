#pragma once
// PDME-resident algorithms (paper §5.7).
//
// "Some reasons for placing the algorithms in the PDME rather than the DC
// include: the algorithm requires data from widely separate parts of the
// ship, the algorithm can reason from PDME resident components (a
// model-based diagnostic and prognostic system, for instance, might use
// only the OOSM) ..." Phase 1 ran everything on the DCs; this module adds
// the Phase-2-style resident analyzer the paper anticipates.
//
// FleetComparativeAnalyzer reasons *only* from the OOSM: it reads the
// process telemetry that DCs publish onto their chiller objects, compares
// sister plants, and reports machines whose operating point deviates from
// the fleet consensus — a diagnosis no single DC can make.

#include <map>
#include <string>
#include <vector>

#include "mpros/pdme/pdme.hpp"

namespace mpros::pdme {

/// Knowledge-source id for PDME-resident model-based conclusions
/// (DC-resident sources are 1..4).
inline constexpr KnowledgeSourceId kPdmeModelBased{5};

struct FleetAnalyzerConfig {
  /// Minimum sister plants (including the suspect) for a comparison.
  std::size_t min_fleet = 3;
  /// Deviation from the fleet median, in units of the fleet's median
  /// absolute deviation (robust z-score), before a report is issued.
  double z_threshold = 4.0;
  /// Floor on the absolute deviation so tight fleets don't false-alarm.
  double min_cond_kpa_delta = 120.0;
  double min_evap_kpa_delta = 50.0;
  double report_belief = 0.70;
  /// Re-report a standing outlier only when its severity moves by this
  /// much or after `report_refresh` (repeated identical comparisons are
  /// not independent evidence for Dempster-Shafer).
  double report_hysteresis = 0.05;
  SimTime report_refresh = SimTime::from_hours(1.0);
};

class FleetComparativeAnalyzer {
 public:
  /// The analyzer reads `pdme.model()` and posts conclusions back through
  /// `pdme.accept()`; both must outlive it.
  FleetComparativeAnalyzer(PdmeExecutive& pdme,
                           FleetAnalyzerConfig cfg = {});

  /// One comparison pass over every chiller with fresh telemetry.
  /// Returns the §7 reports issued (already accepted into the PDME).
  std::vector<net::FailureReport> scan(SimTime now);

  struct Stats {
    std::uint64_t scans = 0;
    std::uint64_t comparisons = 0;
    std::uint64_t reports_issued = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  struct Deviation {
    ObjectId machine;
    double value = 0.0;
    double fleet_median = 0.0;
    double robust_z = 0.0;
  };
  /// Robust per-key outlier detection across all chillers carrying `key`.
  [[nodiscard]] std::vector<Deviation> outliers(const std::string& key,
                                                double min_delta) const;
  net::FailureReport make_report(const Deviation& d, domain::FailureMode mode,
                                 const std::string& what, SimTime now) const;

  PdmeExecutive& pdme_;
  FleetAnalyzerConfig cfg_;
  struct LastReport {
    double severity = -1.0;
    SimTime at{-1};
  };
  std::map<std::pair<std::uint64_t, domain::FailureMode>, LastReport>
      last_reports_;
  Stats stats_;
};

}  // namespace mpros::pdme
