#include "mpros/dsp/spectrum.hpp"

#include <algorithm>
#include <cmath>

#include "mpros/common/assert.hpp"
#include "mpros/dsp/fft.hpp"
#include "mpros/dsp/plan_cache.hpp"
#include "mpros/dsp/scratch.hpp"

namespace mpros::dsp {

double Spectrum::amplitude_at(double hz) const {
  if (bin_hz <= 0.0 || hz < 0.0) return 0.0;
  const auto i = static_cast<std::size_t>(std::llround(hz / bin_hz));
  return i < amplitude.size() ? amplitude[i] : 0.0;
}

double Spectrum::band_peak(double lo_hz, double hi_hz) const {
  if (bin_hz <= 0.0 || hi_hz < lo_hz) return 0.0;
  const auto lo = static_cast<std::size_t>(std::max(0.0, lo_hz / bin_hz));
  const auto hi = std::min<std::size_t>(
      amplitude.size() == 0 ? 0 : amplitude.size() - 1,
      static_cast<std::size_t>(hi_hz / bin_hz));
  double peak = 0.0;
  for (std::size_t i = lo; i <= hi && i < amplitude.size(); ++i) {
    peak = std::max(peak, amplitude[i]);
  }
  return peak;
}

double Spectrum::band_energy(double lo_hz, double hi_hz) const {
  if (bin_hz <= 0.0 || hi_hz < lo_hz) return 0.0;
  const auto lo = static_cast<std::size_t>(std::max(0.0, lo_hz / bin_hz));
  const auto hi = std::min<std::size_t>(
      amplitude.size() == 0 ? 0 : amplitude.size() - 1,
      static_cast<std::size_t>(hi_hz / bin_hz));
  double sum = 0.0;
  for (std::size_t i = lo; i <= hi && i < amplitude.size(); ++i) {
    sum += amplitude[i] * amplitude[i];
  }
  return sum;
}

double Spectrum::total_energy() const {
  double sum = 0.0;
  for (double a : amplitude) sum += a * a;
  return sum;
}

Spectrum amplitude_spectrum(std::span<const double> x, double sample_rate_hz,
                            const SpectrumConfig& cfg) {
  Spectrum out;
  amplitude_spectrum(x, sample_rate_hz, cfg, out);
  return out;
}

void amplitude_spectrum(std::span<const double> x, double sample_rate_hz,
                        const SpectrumConfig& cfg, Spectrum& out) {
  MPROS_EXPECTS(sample_rate_hz > 0.0);
  MPROS_EXPECTS(x.size() >= 2);

  const std::size_t n =
      cfg.fft_size != 0 ? cfg.fft_size : next_power_of_two(x.size());
  MPROS_EXPECTS(is_power_of_two(n) && n >= x.size() && n >= 4);

  const CachedWindow& window = WindowCache::instance().get(cfg.window,
                                                           x.size());
  DspScratch& scratch = DspScratch::local();
  const std::span<double> windowed = scratch.real_lane(0, x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    windowed[i] = x[i] * window.coeffs[i];
  }

  const RealFftPlan& plan = PlanCache::instance().real_plan(n);
  const std::span<Complex> half = scratch.complex_lane(0, plan.bins());
  plan.forward(windowed, half, scratch.complex_lane(1, plan.scratch_size()));

  out.sample_rate_hz = sample_rate_hz;
  out.bin_hz = sample_rate_hz / static_cast<double>(n);
  out.amplitude.resize(n / 2 + 1);

  // Scale so a unit-amplitude sine at a bin center reads ~1.0: divide by the
  // window's coherent gain, and double non-DC/non-Nyquist bins (single-sided).
  const double gain = window.coherent_gain;
  for (std::size_t i = 0; i < out.amplitude.size(); ++i) {
    double a = std::abs(half[i]) / gain;
    if (i != 0 && i != n / 2) a *= 2.0;
    out.amplitude[i] = a;
  }
}

Spectrum welch_psd(std::span<const double> x, double sample_rate_hz,
                   std::size_t segment_size, WindowKind window) {
  Spectrum out;
  welch_psd(x, sample_rate_hz, segment_size, window, out);
  return out;
}

void welch_psd(std::span<const double> x, double sample_rate_hz,
               std::size_t segment_size, WindowKind window, Spectrum& out) {
  MPROS_EXPECTS(sample_rate_hz > 0.0);
  MPROS_EXPECTS(is_power_of_two(segment_size) && segment_size >= 4);
  MPROS_EXPECTS(x.size() >= segment_size);

  const CachedWindow& w = WindowCache::instance().get(window, segment_size);
  const double pgain = w.power_gain;
  const RealFftPlan& plan = PlanCache::instance().real_plan(segment_size);

  out.sample_rate_hz = sample_rate_hz;
  out.bin_hz = sample_rate_hz / static_cast<double>(segment_size);
  out.amplitude.assign(segment_size / 2 + 1, 0.0);

  DspScratch& scratch = DspScratch::local();
  const std::span<double> windowed = scratch.real_lane(0, segment_size);
  const std::span<Complex> half = scratch.complex_lane(0, plan.bins());
  const std::span<Complex> fft_scratch =
      scratch.complex_lane(1, plan.scratch_size());

  const std::size_t hop = segment_size / 2;
  std::size_t segments = 0;

  for (std::size_t start = 0; start + segment_size <= x.size(); start += hop) {
    for (std::size_t i = 0; i < segment_size; ++i) {
      windowed[i] = x[start + i] * w.coeffs[i];
    }
    plan.forward(windowed, half, fft_scratch);
    for (std::size_t i = 0; i < out.amplitude.size(); ++i) {
      double p = std::norm(half[i]) / pgain;
      if (i != 0 && i != segment_size / 2) p *= 2.0;
      out.amplitude[i] += p;
    }
    ++segments;
  }
  MPROS_ASSERT(segments > 0);
  for (double& p : out.amplitude) p /= static_cast<double>(segments);
}

std::vector<SpectralPeak> find_peaks(const Spectrum& s, std::size_t max_peaks,
                                     double min_amplitude) {
  std::vector<SpectralPeak> peaks;
  const auto& a = s.amplitude;
  for (std::size_t i = 1; i + 1 < a.size(); ++i) {
    if (a[i] <= min_amplitude) continue;

    // Flat-topped peak: two equal bins rising out of both neighbours. The
    // strict comparisons below would either miss it at the spectrum edge or
    // report it off-center with an overshooting parabolic amplitude, so
    // handle the plateau explicitly: one peak, centered, at face value.
    if (a[i] == a[i + 1] && a[i] > a[i - 1] &&
        (i + 2 >= a.size() || a[i + 1] > a[i + 2])) {
      SpectralPeak p;
      p.freq_hz = (static_cast<double>(i) + 0.5) * s.bin_hz;
      p.amplitude = a[i];
      peaks.push_back(p);
      ++i;  // consume the plateau partner so it is not reported twice
      continue;
    }

    if (a[i] < a[i - 1] || a[i] <= a[i + 1]) continue;

    // Parabolic interpolation around the local maximum.
    const double y0 = a[i - 1], y1 = a[i], y2 = a[i + 1];
    const double denom = y0 - 2.0 * y1 + y2;
    double delta = 0.0;
    if (std::fabs(denom) > 1e-12) {
      delta = 0.5 * (y0 - y2) / denom;
      delta = std::clamp(delta, -0.5, 0.5);
    }
    SpectralPeak p;
    p.freq_hz = (static_cast<double>(i) + delta) * s.bin_hz;
    p.amplitude = y1 - 0.25 * (y0 - y2) * delta;
    peaks.push_back(p);
  }
  std::sort(peaks.begin(), peaks.end(),
            [](const SpectralPeak& lhs, const SpectralPeak& rhs) {
              return lhs.amplitude > rhs.amplitude;
            });
  if (peaks.size() > max_peaks) peaks.resize(max_peaks);
  return peaks;
}

double order_amplitude(const Spectrum& s, double shaft_hz, double order,
                       double tolerance) {
  MPROS_EXPECTS(shaft_hz > 0.0 && order > 0.0 && tolerance >= 0.0);
  const double center = shaft_hz * order;
  const double half_width = shaft_hz * tolerance;
  return s.band_peak(center - half_width, center + half_width);
}

}  // namespace mpros::dsp
