#pragma once
// Discrete Bayesian networks (paper §10.1 future work).
//
// "Bayes' Nets seem to be a promising approach to diagnostic knowledge
// fusion when causal relations and a priori relationships can be teased out
// of historical data" — and §5.3 explains why phase 1 didn't use them: "they
// require prior estimates of the conditional probability relating two
// failures. The data is not yet available." The simulator *can* supply such
// priors, so this module implements the extension and E12 ablates it
// against Dempster-Shafer.
//
// Inference is exact enumeration — the diagnostic nets are naive-Bayes-like
// (one fault node, report leaves), so enumeration is linear in practice.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "mpros/common/ids.hpp"
#include "mpros/domain/failure_modes.hpp"

namespace mpros::fusion {

class BayesNet {
 public:
  using NodeId = std::size_t;

  /// Add a root node with a prior distribution over its states.
  NodeId add_node(std::string name, std::vector<std::string> states,
                  std::vector<double> prior);

  /// Add a child node. `cpt` holds one distribution over this node's states
  /// per joint parent configuration, rows ordered with the LAST parent
  /// cycling fastest; row r, state s is cpt[r * states.size() + s].
  NodeId add_node(std::string name, std::vector<std::string> states,
                  std::vector<NodeId> parents, std::vector<double> cpt);

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] std::size_t state_count(NodeId n) const;
  [[nodiscard]] const std::string& node_name(NodeId n) const;

  /// Exact posterior P(query | evidence) by enumeration over hidden nodes.
  /// `evidence` maps node -> observed state index.
  [[nodiscard]] std::vector<double> posterior(
      NodeId query, const std::map<NodeId, std::size_t>& evidence) const;

 private:
  struct Node {
    std::string name;
    std::vector<std::string> states;
    std::vector<NodeId> parents;
    std::vector<double> cpt;  // priors for roots
  };

  [[nodiscard]] double node_probability(
      NodeId n, const std::vector<std::size_t>& assignment) const;
  double enumerate(std::size_t index, std::vector<std::size_t>& assignment,
                   const std::map<NodeId, std::size_t>& evidence) const;

  std::vector<Node> nodes_;
};

/// Bayesian-network diagnostic fusion over one logical group, the §10.1
/// alternative to DiagnosticFusion. Hypothesis space = group modes + "none".
/// Each report becomes a leaf whose CPT encodes the source's belief: the
/// reported mode is observed with probability proportional to the report
/// belief under the matching fault, and spread uniformly otherwise.
class GroupBayesFusion {
 public:
  /// `prior_none` is the a-priori probability that no group failure exists.
  explicit GroupBayesFusion(domain::LogicalGroup group,
                            double prior_none = 0.90,
                            double source_accuracy = 0.90);

  struct Report {
    domain::FailureMode mode{};
    double belief = 1.0;
  };

  void add_report(ObjectId machine, const Report& report);

  /// Posterior over {modes..., none} given every report so far; the last
  /// entry is P(none). Machines without reports return the prior.
  [[nodiscard]] std::vector<double> posterior(ObjectId machine) const;

  /// Posterior probability of a specific mode.
  [[nodiscard]] double mode_probability(ObjectId machine,
                                        domain::FailureMode mode) const;

  [[nodiscard]] domain::LogicalGroup group() const { return group_; }

 private:
  [[nodiscard]] std::vector<double> prior() const;
  [[nodiscard]] std::size_t index_of(domain::FailureMode mode) const;

  domain::LogicalGroup group_;
  double prior_none_;
  double source_accuracy_;
  std::map<std::uint64_t, std::vector<Report>> reports_;  // by machine id
};

}  // namespace mpros::fusion
