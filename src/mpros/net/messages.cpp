#include "mpros/net/messages.hpp"

#include "mpros/common/assert.hpp"
#include "mpros/net/codec.hpp"

namespace mpros::net {

namespace {

constexpr std::uint16_t kCommandMagic = 0x434D;  // "CM"
constexpr std::uint8_t kCommandVersion = 1;

constexpr std::uint16_t kBatchMagic = 0x4252;  // "RB"
constexpr std::uint8_t kBatchVersion = 1;

/// Batch body: magic, version, source DC, report count, then that many
/// report frames back to back (each a full magic+version report encoding,
/// so a frame-level version bump never needs a batch version bump).
void append_batch_body(Writer& w, DcId dc,
                       std::span<const FailureReport> reports) {
  w.u16(kBatchMagic);
  w.u8(kBatchVersion);
  w.u64(dc.value());
  w.u32(static_cast<std::uint32_t>(reports.size()));
  for (const FailureReport& r : reports) serialize_report_into(w, r);
}

/// Decodes a batch body into the arena's prefix, stamping `sequence` on
/// every element. Returns the view or nullopt; the arena only grows.
std::optional<ReportBatchView> try_read_batch_body(
    std::span<const std::uint8_t> body, std::uint64_t sequence,
    std::vector<ReportEnvelope>& arena) {
  TryReader rd(body);
  if (rd.u16() != kBatchMagic) return std::nullopt;
  const std::uint8_t version = rd.u8();
  if (!rd.ok() || version < 1 || version > kBatchVersion) return std::nullopt;
  ReportBatchView view;
  view.dc = DcId(rd.u64());
  view.sequence = sequence;
  const std::uint32_t n = rd.u32();
  // The smallest legal report frame is far above 64 bytes: reject counts
  // the payload cannot hold before growing the arena.
  if (!rd.ok() || n > rd.remaining() / 64) return std::nullopt;
  if (arena.size() < n) arena.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    ReportEnvelope& slot = arena[i];
    if (!try_read_report_frame(rd, slot.report)) return std::nullopt;
    if (slot.report.dc != view.dc) return std::nullopt;  // forged source
    slot.dc = view.dc;
    slot.sequence = sequence;
  }
  if (!rd.done()) return std::nullopt;
  view.count = n;
  return view;
}

}  // namespace

const char* to_string(MessageType t) {
  switch (t) {
    case MessageType::FailureReportMsg: return "failure-report";
    case MessageType::SensorData: return "sensor-data";
    case MessageType::TestCommand: return "test-command";
    case MessageType::ReportEnvelopeMsg: return "report-envelope";
    case MessageType::Ack: return "ack";
    case MessageType::Heartbeat: return "heartbeat";
    case MessageType::FleetSummaryEnvelopeMsg: return "fleet-summary";
    case MessageType::Command: return "command";
    case MessageType::CommandEnvelopeMsg: return "command-envelope";
    case MessageType::ReportBatchMsg: return "report-batch";
    case MessageType::ReportBatchEnvelopeMsg: return "report-batch-envelope";
  }
  return "?";
}

MessageType peek_type(std::span<const std::uint8_t> bytes) {
  MPROS_EXPECTS(!bytes.empty());
  return static_cast<MessageType>(bytes[0]);
}

std::optional<MessageType> try_peek_type(std::span<const std::uint8_t> bytes) {
  if (bytes.empty()) return std::nullopt;
  switch (static_cast<MessageType>(bytes[0])) {
    case MessageType::FailureReportMsg:
    case MessageType::SensorData:
    case MessageType::TestCommand:
    case MessageType::ReportEnvelopeMsg:
    case MessageType::Ack:
    case MessageType::Heartbeat:
    case MessageType::FleetSummaryEnvelopeMsg:
    case MessageType::Command:
    case MessageType::CommandEnvelopeMsg:
    case MessageType::ReportBatchMsg:
    case MessageType::ReportBatchEnvelopeMsg:
      return static_cast<MessageType>(bytes[0]);
  }
  return std::nullopt;
}

std::vector<std::uint8_t> wrap(const FailureReport& r) {
  std::vector<std::uint8_t> out;
  out.push_back(static_cast<std::uint8_t>(MessageType::FailureReportMsg));
  const std::vector<std::uint8_t> body = serialize(r);
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

std::vector<std::uint8_t> wrap(const SensorDataMessage& m) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MessageType::SensorData));
  w.u64(m.dc.value());
  w.u64(m.machine.value());
  w.i64(m.timestamp.micros());
  w.u32(static_cast<std::uint32_t>(m.values.size()));
  for (const auto& [key, value] : m.values) {
    w.str(key);
    w.f64(value);
  }
  return w.take();
}

std::vector<std::uint8_t> wrap(const TestCommandMessage& m) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MessageType::TestCommand));
  w.u64(m.target.value());
  w.u8(static_cast<std::uint8_t>(m.command));
  w.str(m.reason);
  return w.take();
}

std::vector<std::uint8_t> wrap(const ReportEnvelope& m) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MessageType::ReportEnvelopeMsg));
  w.u64(m.dc.value());
  w.u64(m.sequence);
  const std::vector<std::uint8_t> body = serialize(m.report);
  std::vector<std::uint8_t> out = w.take();
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

std::vector<std::uint8_t> wrap(const AckMessage& m) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MessageType::Ack));
  w.u64(m.dc.value());
  w.u64(m.cumulative);
  return w.take();
}

std::vector<std::uint8_t> wrap(const HeartbeatMessage& m) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MessageType::Heartbeat));
  w.u64(m.dc.value());
  w.i64(m.timestamp.micros());
  w.u64(m.last_sequence);
  return w.take();
}

std::vector<std::uint8_t> serialize(const CommandMessage& m) {
  Writer w;
  w.u16(kCommandMagic);
  w.u8(kCommandVersion);
  w.u64(m.target.value());
  w.u64(m.revision);
  w.i64(m.issued_at.micros());
  w.str(m.reason);
  w.u32(static_cast<std::uint32_t>(m.settings.size()));
  for (const auto& [key, value] : m.settings) {
    w.str(key);
    w.f64(value);
  }
  return w.take();
}

std::optional<CommandMessage> try_deserialize_command(
    std::span<const std::uint8_t> bytes) {
  TryReader rd(bytes);
  if (rd.u16() != kCommandMagic) return std::nullopt;
  const std::uint8_t version = rd.u8();
  if (!rd.ok() || version < 1 || version > kCommandVersion) {
    return std::nullopt;
  }
  CommandMessage m;
  m.target = DcId(rd.u64());
  m.revision = rd.u64();
  m.issued_at = SimTime(rd.i64());
  m.reason = rd.str();
  const std::uint32_t n = rd.u32();
  // A setting is at least a length prefix (4) plus the f64 (8): reject
  // counts the payload cannot hold before reserving.
  if (!rd.ok() || n > rd.remaining() / 12) return std::nullopt;
  m.settings.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    std::string key = rd.str();
    const double value = rd.f64();
    if (!rd.ok()) return std::nullopt;
    m.settings.emplace_back(std::move(key), value);
  }
  if (!rd.ok() || !rd.done()) return std::nullopt;
  return m;
}

std::vector<std::uint8_t> wrap(const CommandMessage& m) {
  std::vector<std::uint8_t> out;
  out.push_back(static_cast<std::uint8_t>(MessageType::Command));
  const std::vector<std::uint8_t> body = serialize(m);
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

std::vector<std::uint8_t> wrap(const CommandEnvelope& m) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MessageType::CommandEnvelopeMsg));
  w.u64(m.dc.value());
  w.u64(m.sequence);
  const std::vector<std::uint8_t> body = serialize(m.command);
  std::vector<std::uint8_t> out = w.take();
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

std::vector<std::uint8_t> wrap_batch(DcId dc,
                                     std::span<const FailureReport> reports) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MessageType::ReportBatchMsg));
  append_batch_body(w, dc, reports);
  return w.take();
}

std::vector<std::uint8_t> wrap_batch_envelope(
    DcId dc, std::uint64_t sequence, std::span<const FailureReport> reports) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MessageType::ReportBatchEnvelopeMsg));
  w.u64(dc.value());
  w.u64(sequence);
  append_batch_body(w, dc, reports);
  return w.take();
}

std::optional<ReportBatchView> try_unwrap_reports_into(
    std::span<const std::uint8_t> bytes, std::vector<ReportEnvelope>& arena) {
  const auto type = try_peek_type(bytes);
  if (!type.has_value()) return std::nullopt;
  switch (*type) {
    case MessageType::FailureReportMsg: {
      // A lone unsequenced report is a one-element batch from its own DC.
      if (arena.empty()) arena.resize(1);
      TryReader rd(bytes.subspan(1));
      ReportEnvelope& slot = arena.front();
      if (!try_read_report_frame(rd, slot.report) || !rd.done()) {
        return std::nullopt;
      }
      slot.dc = slot.report.dc;
      slot.sequence = 0;
      return ReportBatchView{slot.dc, 0, 1};
    }
    case MessageType::ReportEnvelopeMsg: {
      TryReader hdr(bytes.subspan(1));
      const DcId dc{hdr.u64()};
      const std::uint64_t sequence = hdr.u64();
      if (!hdr.ok() || sequence == 0) return std::nullopt;
      if (arena.empty()) arena.resize(1);
      TryReader rd(bytes.subspan(1 + 16));  // past dc + sequence
      ReportEnvelope& slot = arena.front();
      if (!try_read_report_frame(rd, slot.report) || !rd.done()) {
        return std::nullopt;
      }
      slot.dc = dc;
      slot.sequence = sequence;
      return ReportBatchView{dc, sequence, 1};
    }
    case MessageType::ReportBatchMsg:
      return try_read_batch_body(bytes.subspan(1), /*sequence=*/0, arena);
    case MessageType::ReportBatchEnvelopeMsg: {
      TryReader hdr(bytes.subspan(1));
      const DcId dc{hdr.u64()};
      const std::uint64_t sequence = hdr.u64();
      if (!hdr.ok() || sequence == 0) return std::nullopt;
      auto view = try_read_batch_body(bytes.subspan(1 + 16), sequence, arena);
      if (!view.has_value() || view->dc != dc) return std::nullopt;
      return view;
    }
    default:
      return std::nullopt;
  }
}

std::optional<CommandMessage> try_unwrap_command(
    std::span<const std::uint8_t> bytes) {
  if (try_peek_type(bytes) != MessageType::Command) return std::nullopt;
  return try_deserialize_command(bytes.subspan(1));
}

std::optional<CommandEnvelope> try_unwrap_command_envelope(
    std::span<const std::uint8_t> bytes) {
  if (try_peek_type(bytes) != MessageType::CommandEnvelopeMsg) {
    return std::nullopt;
  }
  TryReader r(bytes.subspan(1));
  CommandEnvelope m;
  m.dc = DcId(r.u64());
  m.sequence = r.u64();
  if (!r.ok() || m.sequence == 0) return std::nullopt;
  auto command =
      try_deserialize_command(bytes.subspan(1 + 16));  // past dc + sequence
  if (!command.has_value()) return std::nullopt;
  m.command = *std::move(command);
  return m;
}

std::optional<FailureReport> try_unwrap_report(
    std::span<const std::uint8_t> bytes) {
  if (try_peek_type(bytes) != MessageType::FailureReportMsg) {
    return std::nullopt;
  }
  return try_deserialize_report(bytes.subspan(1));
}

std::optional<SensorDataMessage> try_unwrap_sensor_data(
    std::span<const std::uint8_t> bytes) {
  if (try_peek_type(bytes) != MessageType::SensorData) return std::nullopt;
  TryReader r(bytes.subspan(1));
  SensorDataMessage m;
  m.dc = DcId(r.u64());
  m.machine = ObjectId(r.u64());
  m.timestamp = SimTime(r.i64());
  const std::uint32_t n = r.u32();
  // Each entry is at least a length prefix plus the f64: guard the reserve
  // against corrupted counts.
  if (!r.ok() || n > r.remaining() / 12) return std::nullopt;
  m.values.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    std::string key = r.str();
    const double value = r.f64();
    m.values.emplace_back(std::move(key), value);
  }
  if (!r.ok() || !r.done()) return std::nullopt;
  return m;
}

std::optional<TestCommandMessage> try_unwrap_test_command(
    std::span<const std::uint8_t> bytes) {
  if (try_peek_type(bytes) != MessageType::TestCommand) return std::nullopt;
  TryReader r(bytes.subspan(1));
  TestCommandMessage m;
  m.target = DcId(r.u64());
  const std::uint8_t command = r.u8();
  if (!r.ok() ||
      command != static_cast<std::uint8_t>(
                     TestCommandMessage::Command::VibrationTest)) {
    return std::nullopt;
  }
  m.command = static_cast<TestCommandMessage::Command>(command);
  m.reason = r.str();
  if (!r.ok() || !r.done()) return std::nullopt;
  return m;
}

std::optional<ReportEnvelope> try_unwrap_envelope(
    std::span<const std::uint8_t> bytes) {
  if (try_peek_type(bytes) != MessageType::ReportEnvelopeMsg) {
    return std::nullopt;
  }
  TryReader r(bytes.subspan(1));
  ReportEnvelope m;
  m.dc = DcId(r.u64());
  m.sequence = r.u64();
  if (!r.ok() || m.sequence == 0) return std::nullopt;
  auto report =
      try_deserialize_report(bytes.subspan(1 + 16));  // past dc + sequence
  if (!report.has_value()) return std::nullopt;
  m.report = *std::move(report);
  return m;
}

std::optional<AckMessage> try_unwrap_ack(std::span<const std::uint8_t> bytes) {
  if (try_peek_type(bytes) != MessageType::Ack) return std::nullopt;
  TryReader r(bytes.subspan(1));
  AckMessage m;
  m.dc = DcId(r.u64());
  m.cumulative = r.u64();
  if (!r.ok() || !r.done()) return std::nullopt;
  return m;
}

std::optional<HeartbeatMessage> try_unwrap_heartbeat(
    std::span<const std::uint8_t> bytes) {
  if (try_peek_type(bytes) != MessageType::Heartbeat) return std::nullopt;
  TryReader r(bytes.subspan(1));
  HeartbeatMessage m;
  m.dc = DcId(r.u64());
  m.timestamp = SimTime(r.i64());
  m.last_sequence = r.u64();
  if (!r.ok() || !r.done()) return std::nullopt;
  return m;
}

FailureReport unwrap_report(std::span<const std::uint8_t> bytes) {
  MPROS_EXPECTS(peek_type(bytes) == MessageType::FailureReportMsg);
  return deserialize_report(bytes.subspan(1));
}

SensorDataMessage unwrap_sensor_data(std::span<const std::uint8_t> bytes) {
  auto m = try_unwrap_sensor_data(bytes);
  MPROS_EXPECTS(m.has_value());
  return *std::move(m);
}

TestCommandMessage unwrap_test_command(std::span<const std::uint8_t> bytes) {
  auto m = try_unwrap_test_command(bytes);
  MPROS_EXPECTS(m.has_value());
  return *std::move(m);
}

}  // namespace mpros::net
