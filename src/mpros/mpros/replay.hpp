#pragma once
// Deterministic replay of a flight-recorder dump.
//
// A recording captures the PDME-bound wire stream at the delivery point —
// post latency, drop and duplication — plus the scenario context (plant
// count, seed, dedup setting) needed to rebuild the live run's object
// model. Feeding those datagrams, in recorded order, to a fresh
// PdmeExecutive re-runs fusion exactly: Dempster-Shafer combination and
// the prognostic envelope are deterministic in report order, so the
// replayed prioritized maintenance list is byte-identical to the live one.
// That turns any field anomaly a ship mails home into a repeatable test.

#include <optional>
#include <string>

#include "mpros/telemetry/recorder.hpp"

namespace mpros {

struct ReplayResult {
  std::size_t frames_seen = 0;       ///< all frames in the dump
  std::size_t messages_replayed = 0; ///< PDME-bound datagrams fed to fusion
  std::size_t events_skipped = 0;    ///< annotation frames (not replayable)
  std::size_t malformed = 0;         ///< datagrams that failed to decode
  std::uint64_t reports_fused = 0;
  std::uint64_t sensor_batches = 0;
  /// render_summary() of the rebuilt PDME — compare against the live run.
  std::string summary;
};

/// Replay an in-memory decode. Returns nullopt if the dump's version is
/// unsupported.
[[nodiscard]] std::optional<ReplayResult> replay_recording(
    const telemetry::FlightRecorder::Decoded& dump);

/// Load + replay a dump file. Returns nullopt on I/O or decode failure.
[[nodiscard]] std::optional<ReplayResult> replay_file(
    const std::string& path);

}  // namespace mpros
