#include "mpros/dc/sensor_validator.hpp"

#include <algorithm>
#include <cmath>

#include "mpros/telemetry/metrics.hpp"

namespace mpros::dc {

namespace {

struct ValidatorMetrics {
  telemetry::Counter& faults_detected;
  telemetry::Counter& quarantines;
  telemetry::Counter& releases;

  static ValidatorMetrics& instance() {
    static auto& reg = telemetry::Registry::instance();
    static ValidatorMetrics m{
        reg.counter("dc.sensor_faults_detected"),
        reg.counter("dc.channels_quarantined"),
        reg.counter("dc.channels_released"),
    };
    return m;
  }
};

double median_of(std::vector<double> v) {
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid),
                   v.end());
  return v[mid];
}

/// Robust scatter: 1.4826 * MAD ~ sigma for Gaussian noise.
double robust_sigma(std::span<const double> samples, double median) {
  std::vector<double> dev;
  dev.reserve(samples.size());
  for (const double s : samples) dev.push_back(std::fabs(s - median));
  return 1.4826 * median_of(std::move(dev));
}

}  // namespace

SensorValidatorConfig chiller_validator_config() {
  SensorValidatorConfig cfg;
  // Accelerometers saturate long before 80 g on this frame size; motor
  // supply current is bipolar instantaneous amperes.
  for (const char* vib : {"vib.motor", "vib.gearbox", "vib.compressor"}) {
    cfg.ranges[vib] = PhysicalRange{-80.0, 80.0};
  }
  cfg.ranges["current.motor"] = PhysicalRange{-1500.0, 1500.0};
  cfg.ranges["process.load"] = PhysicalRange{-0.1, 1.5};
  cfg.ranges["process.evap_pressure_kpa"] = PhysicalRange{0.0, 2000.0};
  cfg.ranges["process.cond_pressure_kpa"] = PhysicalRange{0.0, 3000.0};
  cfg.ranges["process.chw_supply_c"] = PhysicalRange{-10.0, 60.0};
  cfg.ranges["process.superheat_c"] = PhysicalRange{-20.0, 60.0};
  cfg.ranges["process.oil_pressure_kpa"] = PhysicalRange{0.0, 1500.0};
  cfg.ranges["process.oil_temp_c"] = PhysicalRange{-10.0, 150.0};
  cfg.ranges["process.winding_temp_c"] = PhysicalRange{-10.0, 250.0};
  cfg.ranges["process.bearing_temp_c"] = PhysicalRange{-10.0, 200.0};
  cfg.ranges["process.cond_approach_c"] = PhysicalRange{-10.0, 60.0};
  cfg.ranges["process.motor_current_a"] = PhysicalRange{0.0, 2000.0};
  // The load key echoes the commanded setpoint — no instrument noise, so
  // exact repeats are normal, not a stuck DAC.
  cfg.flatline_exempt.insert("process.load");
  return cfg;
}

SensorValidator::SensorValidator(SensorValidatorConfig cfg)
    : cfg_(std::move(cfg)) {}

std::optional<domain::SensorFaultKind> SensorValidator::screen_window(
    const std::string& channel, std::span<const double> samples) const {
  if (samples.empty()) return std::nullopt;

  for (const double s : samples) {
    if (!std::isfinite(s)) return domain::SensorFaultKind::Dropout;
  }

  const auto [lo_it, hi_it] = std::minmax_element(samples.begin(),
                                                  samples.end());
  if (*hi_it - *lo_it < cfg_.flatline_peak_to_peak) {
    return domain::SensorFaultKind::Flatline;
  }

  std::vector<double> copy(samples.begin(), samples.end());
  const double median = median_of(std::move(copy));
  if (const auto range_it = cfg_.ranges.find(channel);
      range_it != cfg_.ranges.end()) {
    const PhysicalRange& r = range_it->second;
    if (median < r.lo || median > r.hi) {
      return domain::SensorFaultKind::OutOfRange;
    }
  }

  const double sigma = robust_sigma(samples, median);
  if (sigma > 0.0) {
    const double limit = cfg_.spike_sigmas * sigma;
    std::size_t spikes = 0;
    for (const double s : samples) {
      if (std::fabs(s - median) > limit) ++spikes;
    }
    if (spikes >= cfg_.spike_min_count) {
      return domain::SensorFaultKind::Spike;
    }
  }
  return std::nullopt;
}

std::optional<domain::SensorFaultKind> SensorValidator::screen_value(
    const std::string& channel, ChannelState& state, double value) const {
  if (!std::isfinite(value)) return domain::SensorFaultKind::Dropout;

  if (const auto range_it = cfg_.ranges.find(channel);
      range_it != cfg_.ranges.end()) {
    const PhysicalRange& r = range_it->second;
    if (value < r.lo || value > r.hi) {
      return domain::SensorFaultKind::OutOfRange;
    }
  }

  if (state.has_last && value == state.last_value) {
    ++state.repeat_count;
  } else {
    state.repeat_count = 0;
  }
  state.last_value = value;
  state.has_last = true;
  if (state.repeat_count + 1 >= cfg_.flatline_repeats &&
      !cfg_.flatline_exempt.contains(channel)) {
    return domain::SensorFaultKind::Flatline;
  }

  if (state.history.size() >= cfg_.scalar_history) {
    const std::vector<double> hist(state.history.begin(),
                                   state.history.end());
    const double median = median_of(hist);
    const double sigma = robust_sigma(hist, median);
    if (sigma > 0.0 &&
        std::fabs(value - median) > cfg_.scalar_spike_sigmas * sigma) {
      return domain::SensorFaultKind::Spike;
    }
  }

  state.history.push_back(value);
  while (state.history.size() > cfg_.scalar_history) {
    state.history.pop_front();
  }
  return std::nullopt;
}

SensorValidator::Verdict SensorValidator::resolve(
    ChannelState& state, std::optional<domain::SensorFaultKind> fault) {
  ValidatorMetrics& metrics = ValidatorMetrics::instance();
  Verdict verdict;
  verdict.fault = fault;
  ++stats_.checks;

  if (fault.has_value()) {
    ++stats_.faults_detected;
    metrics.faults_detected.inc();
    state.clean_streak = 0;
    state.last_fault = *fault;
    if (!state.quarantined) {
      state.quarantined = true;
      verdict.newly_quarantined = true;
      ++stats_.quarantines;
      metrics.quarantines.inc();
    }
  } else if (state.quarantined) {
    if (++state.clean_streak >= cfg_.release_after) {
      state.quarantined = false;
      state.clean_streak = 0;
      verdict.released = true;
      verdict.cleared_kind = state.last_fault;
      ++stats_.releases;
      metrics.releases.inc();
    }
  }
  return verdict;
}

SensorValidator::Verdict SensorValidator::check_window(
    const std::string& channel, std::span<const double> samples) {
  return resolve(channels_[channel], screen_window(channel, samples));
}

SensorValidator::Verdict SensorValidator::check_value(
    const std::string& channel, double value) {
  ChannelState& state = channels_[channel];
  return resolve(state, screen_value(channel, state, value));
}

bool SensorValidator::quarantined(const std::string& channel) const {
  const auto it = channels_.find(channel);
  return it != channels_.end() && it->second.quarantined;
}

std::vector<std::string> SensorValidator::quarantined_channels() const {
  std::vector<std::string> out;
  for (const auto& [name, state] : channels_) {
    if (state.quarantined) out.push_back(name);
  }
  return out;
}

}  // namespace mpros::dc
