#include "mpros/dsp/envelope.hpp"

#include <cmath>

#include "mpros/common/assert.hpp"
#include "mpros/dsp/fft.hpp"
#include "mpros/dsp/plan_cache.hpp"
#include "mpros/dsp/scratch.hpp"

namespace mpros::dsp {
namespace {

/// Shared body: forward real FFT, per-bin gate on the positive half, then
/// analytic-signal construction and a full complex inverse. `keep(i, bin_hz)`
/// decides whether positive-frequency bin i survives (band-pass), and the
/// negative half is implicitly zeroed — exactly the analytic conversion.
template <typename Keep>
void analytic_envelope(std::span<const double> x, double sample_rate_hz,
                       const Keep& keep, std::vector<double>& out) {
  const std::size_t n = next_power_of_two(std::max<std::size_t>(x.size(), 4));
  const double bin_hz = sample_rate_hz / static_cast<double>(n);

  DspScratch& scratch = DspScratch::local();
  const RealFftPlan& rplan = PlanCache::instance().real_plan(n);
  const std::span<Complex> half = scratch.complex_lane(1, rplan.bins());
  rplan.forward(x, half, scratch.complex_lane(2, rplan.scratch_size()));

  // Analytic spectrum: DC and Nyquist pass through (if kept), interior
  // positive bins are doubled, the negative half is zero.
  const std::span<Complex> spec = scratch.complex_lane(0, n);
  spec[0] = keep(std::size_t{0}, bin_hz) ? half[0] : Complex{};
  for (std::size_t i = 1; i < n / 2; ++i) {
    spec[i] = keep(i, bin_hz) ? 2.0 * half[i] : Complex{};
  }
  spec[n / 2] = keep(n / 2, bin_hz) ? half[n / 2] : Complex{};
  for (std::size_t i = n / 2 + 1; i < n; ++i) spec[i] = Complex{};

  PlanCache::instance().complex_plan(n).inverse(spec);

  out.resize(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    out[i] = std::abs(spec[i]);
  }
}

}  // namespace

std::vector<double> envelope(std::span<const double> x) {
  std::vector<double> out;
  envelope(x, out);
  return out;
}

void envelope(std::span<const double> x, std::vector<double>& out) {
  MPROS_EXPECTS(x.size() >= 4);
  analytic_envelope(
      x, 1.0, [](std::size_t, double) { return true; }, out);
}

std::vector<double> envelope_bandpassed(std::span<const double> x,
                                        double sample_rate_hz, double lo_hz,
                                        double hi_hz) {
  std::vector<double> out;
  envelope_bandpassed(x, sample_rate_hz, lo_hz, hi_hz, out);
  return out;
}

void envelope_bandpassed(std::span<const double> x, double sample_rate_hz,
                         double lo_hz, double hi_hz,
                         std::vector<double>& out) {
  MPROS_EXPECTS(x.size() >= 4);
  MPROS_EXPECTS(sample_rate_hz > 0.0 && lo_hz >= 0.0 && hi_hz > lo_hz);

  // Brick-wall band-pass on the positive half, fused with the analytic
  // conversion.
  analytic_envelope(
      x, sample_rate_hz,
      [lo_hz, hi_hz](std::size_t i, double bin_hz) {
        const double f = static_cast<double>(i) * bin_hz;
        return f >= lo_hz && f <= hi_hz;
      },
      out);
}

}  // namespace mpros::dsp
