#pragma once
// Write-ahead log for the embedded relational store.
//
// The durability half of the paper's §4.9 "long-term unattended operation"
// requirement: every mutation made through a journaled Database is encoded
// as a RedoOp and buffered; a *group commit* seals the buffered ops into one
// CRC-framed record and a single fsync makes the whole batch durable — one
// fsync per commit window, not per record. Recovery replays intact records
// in order and truncates the first torn or corrupt frame (and everything
// after it), exactly like the flight recorder's fail-soft TryReader decode.
//
// On-disk layout (all integers little-endian, the recorder's dump idiom):
//
//   "MWAL" u8 version                                  file header
//   { u32 payload_len | u32 crc32(payload) | payload } *    commit frames
//   payload := u64 commit_seq | u32 op_count | RedoOp*
//
// Thread-compatible: one writer (the OOSM/DC driver thread), like Database.

#include <cstdint>
#include <cstdio>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "mpros/db/database.hpp"

namespace mpros::db {

inline constexpr std::uint8_t kWalVersion = 1;

// -- Shared binary codec ------------------------------------------------------
// Reused by the snapshot encoding (snapshot.cpp) and the fuzz tests.

namespace walfmt {

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v);
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v);
void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v);
void put_i64(std::vector<std::uint8_t>& out, std::int64_t v);
void put_f64(std::vector<std::uint8_t>& out, double v);  // IEEE-754 bits
void put_str(std::vector<std::uint8_t>& out, const std::string& s);
void put_value(std::vector<std::uint8_t>& out, const Value& v);
void put_row(std::vector<std::uint8_t>& out, const Row& row);
void put_schema(std::vector<std::uint8_t>& out, const TableSchema& schema);
void put_op(std::vector<std::uint8_t>& out, const RedoOp& op);

/// Bounds-checked reader: every read reports success, nothing aborts, and
/// count fields are guarded against memory bombs (a count the remaining
/// bytes cannot possibly hold is a decode failure, not an allocation).
struct TryReader {
  std::span<const std::uint8_t> data;
  std::size_t pos = 0;

  [[nodiscard]] std::size_t remaining() const { return data.size() - pos; }

  bool u8(std::uint8_t& v);
  bool u32(std::uint32_t& v);
  bool u64(std::uint64_t& v);
  bool i64(std::int64_t& v);
  bool f64(double& v);
  bool str(std::string& s);
  bool value(Value& v);
  bool row(Row& row);
  bool schema(TableSchema& schema);
  bool op(RedoOp& op);
};

/// CRC-32 (IEEE 802.3 polynomial, table-driven) over `data`.
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> data);

}  // namespace walfmt

// -- The log ------------------------------------------------------------------

/// What recovery found in a log file.
struct WalReplayResult {
  std::uint64_t commits = 0;        ///< intact commit frames replayed
  std::uint64_t records = 0;        ///< redo ops applied
  std::uint64_t valid_bytes = 0;    ///< file prefix that decoded cleanly
  std::uint64_t truncated_bytes = 0;///< torn/corrupt tail past the prefix
  std::uint64_t last_seq = 0;       ///< newest commit sequence seen intact
  /// True when `apply` rejected an op after earlier ops of the same frame
  /// were already applied — the target holds a partial commit and the
  /// caller must rebuild capped at last_seq.
  bool partial_frame = false;
};

class WriteAheadLog {
 public:
  /// Open `path` for appending (creating it, with a fresh header, if absent
  /// or header-torn). `next_seq` stamps the next sealed commit; recovery
  /// passes last replayed seq + 1.
  explicit WriteAheadLog(std::string path, std::uint64_t next_seq = 1);
  ~WriteAheadLog();

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  [[nodiscard]] bool ok() const { return file_ != nullptr; }
  [[nodiscard]] const std::string& path() const { return path_; }

  /// Buffer one op into the open commit batch. No I/O.
  void append(const RedoOp& op);

  /// Drop the buffered (unsealed) ops — transaction rollback.
  void discard_pending();

  /// Frame the buffered ops as one commit record (still only in memory).
  /// Returns the commit's sequence number, or 0 if nothing was buffered.
  std::uint64_t seal();

  /// Group commit: write every sealed frame and fsync once. A no-op
  /// (returning true, no fsync) when nothing sealed is outstanding.
  /// `do_fsync = false` still writes + flushes (benchmark ceiling mode).
  bool sync(bool do_fsync = true);

  /// Post-checkpoint compaction: truncate the file to a bare header and
  /// continue stamping from `next_seq`. Discards buffered/sealed frames.
  bool reset(std::uint64_t next_seq);

  [[nodiscard]] std::uint64_t next_seq() const { return next_seq_; }
  [[nodiscard]] std::size_t pending_ops() const { return pending_ops_; }
  /// Bytes durable on disk (header + synced frames).
  [[nodiscard]] std::uint64_t bytes_on_disk() const { return synced_bytes_; }

  struct Stats {
    std::uint64_t commits = 0;  ///< sealed commit frames
    std::uint64_t records = 0;  ///< ops appended
    std::uint64_t fsyncs = 0;   ///< group-commit syncs issued
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Fail-soft replay: walk `path`, apply every intact commit with
  /// seq > `after_seq` through `apply(seq, op)`, stop at the first torn or
  /// corrupt frame. `apply` returning false poisons the tail the same way
  /// corruption does (the frame and everything after it is invalid).
  /// A missing file is an empty log, not an error.
  static WalReplayResult replay(
      const std::string& path, std::uint64_t after_seq,
      const std::function<bool(std::uint64_t, RedoOp&&)>& apply);

  /// Drop everything past the intact prefix `replay` found. Creates the
  /// file (bare header) when it was missing or the header itself was torn.
  static bool truncate_torn_tail(const std::string& path,
                                 const WalReplayResult& result);

 private:
  bool write_header();

  std::string path_;
  std::FILE* file_ = nullptr;
  std::vector<std::uint8_t> pending_;  ///< ops of the open (unsealed) commit
  std::size_t pending_ops_ = 0;
  std::vector<std::uint8_t> sealed_;   ///< framed commits awaiting sync()
  std::uint64_t next_seq_ = 1;
  std::uint64_t synced_bytes_ = 0;
  Stats stats_;
};

}  // namespace mpros::db
