#pragma once
// The assembled centrifugal chiller simulator.
//
// Composes the fault injector, process model and vibration synthesizer into
// one machine a Data Concentrator can instrument: advance simulated time,
// pull accelerometer windows, motor-current windows, and process snapshots,
// all consistent with the currently injected fault severities.

#include <span>
#include <vector>

#include "mpros/common/clock.hpp"
#include "mpros/plant/faults.hpp"
#include "mpros/plant/process.hpp"
#include "mpros/plant/sensor_faults.hpp"
#include "mpros/plant/vibration.hpp"

namespace mpros::plant {

struct ChillerConfig {
  domain::MachineSignature signature = domain::navy_chiller_signature();
  domain::ProcessNominals nominals = domain::navy_chiller_nominals();
  double load_fraction = 0.8;
  std::uint64_t seed = 0xC411E7;
};

class ChillerSimulator {
 public:
  explicit ChillerSimulator(ChillerConfig cfg = ChillerConfig());

  /// Fault schedule (mutable: scenarios add events any time).
  [[nodiscard]] FaultInjector& faults() { return faults_; }
  [[nodiscard]] const FaultInjector& faults() const { return faults_; }

  /// Instrumentation faults (the sensor lies, the machine is fine).
  /// Acquisitions and snapshots are corrupted after synthesis.
  [[nodiscard]] SensorFaultInjector& sensor_faults() { return sensor_faults_; }
  [[nodiscard]] const SensorFaultInjector& sensor_faults() const {
    return sensor_faults_;
  }

  void set_load(double fraction) { cfg_.load_fraction = fraction; }
  [[nodiscard]] double load() const { return cfg_.load_fraction; }

  /// Schedule a load setpoint at an absolute time; between setpoints the
  /// load ramps linearly (models startup/pull-down transients — the
  /// paper's §3.3 milestone simulated "Carrier Chiller startup"). Setpoints
  /// must be added in time order; advance() applies them.
  void schedule_load(SimTime at, double fraction);

  /// Advance simulated time (steps the process model).
  void advance(SimTime dt);
  [[nodiscard]] SimTime now() const { return clock_.now(); }

  /// Acquire an accelerometer window at `point` (amplitudes in g), starting
  /// at the current simulated time.
  void acquire_vibration(MachinePoint point, double sample_rate_hz,
                         std::span<double> out);

  /// Acquire with an explicit record start time (the DAQ chain schedules
  /// bank acquisitions at sub-step offsets). Fault severities are evaluated
  /// at the simulator's current time.
  void acquire_vibration_at(MachinePoint point, double t0_seconds,
                            double sample_rate_hz, std::span<double> out);

  /// Acquire a motor-current window (amperes).
  void acquire_current(double sample_rate_hz, std::span<double> out);

  /// Noisy process-variable snapshot (keys = rules::feat process names).
  [[nodiscard]] ProcessSnapshot process_snapshot();

  /// Current ground-truth severities (for scoring).
  [[nodiscard]] Severities truth() const { return faults_.all_at(now()); }

  [[nodiscard]] const domain::MachineSignature& signature() const {
    return cfg_.signature;
  }

 private:
  [[nodiscard]] double scheduled_load(SimTime t) const;

  ChillerConfig cfg_;
  struct LoadSetpoint {
    SimTime at;
    double fraction;
  };
  std::vector<LoadSetpoint> load_schedule_;
  SimClock clock_;
  FaultInjector faults_;
  SensorFaultInjector sensor_faults_;
  ProcessModel process_;
  VibrationSynthesizer vibration_;
};

}  // namespace mpros::plant
