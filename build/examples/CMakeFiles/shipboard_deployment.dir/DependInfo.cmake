
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/shipboard_deployment.cpp" "examples/CMakeFiles/shipboard_deployment.dir/shipboard_deployment.cpp.o" "gcc" "examples/CMakeFiles/shipboard_deployment.dir/shipboard_deployment.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mpros/mpros/CMakeFiles/mpros_mpros.dir/DependInfo.cmake"
  "/root/repo/build/src/mpros/dc/CMakeFiles/mpros_dc.dir/DependInfo.cmake"
  "/root/repo/build/src/mpros/fuzzy/CMakeFiles/mpros_fuzzy.dir/DependInfo.cmake"
  "/root/repo/build/src/mpros/nn/CMakeFiles/mpros_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/mpros/wavelet/CMakeFiles/mpros_wavelet.dir/DependInfo.cmake"
  "/root/repo/build/src/mpros/sbfr/CMakeFiles/mpros_sbfr.dir/DependInfo.cmake"
  "/root/repo/build/src/mpros/pdme/CMakeFiles/mpros_pdme.dir/DependInfo.cmake"
  "/root/repo/build/src/mpros/net/CMakeFiles/mpros_net.dir/DependInfo.cmake"
  "/root/repo/build/src/mpros/oosm/CMakeFiles/mpros_oosm.dir/DependInfo.cmake"
  "/root/repo/build/src/mpros/db/CMakeFiles/mpros_db.dir/DependInfo.cmake"
  "/root/repo/build/src/mpros/rules/CMakeFiles/mpros_rules.dir/DependInfo.cmake"
  "/root/repo/build/src/mpros/fusion/CMakeFiles/mpros_fusion.dir/DependInfo.cmake"
  "/root/repo/build/src/mpros/plant/CMakeFiles/mpros_plant.dir/DependInfo.cmake"
  "/root/repo/build/src/mpros/domain/CMakeFiles/mpros_domain.dir/DependInfo.cmake"
  "/root/repo/build/src/mpros/dsp/CMakeFiles/mpros_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/mpros/common/CMakeFiles/mpros_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
