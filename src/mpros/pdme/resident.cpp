#include "mpros/pdme/resident.hpp"

#include <algorithm>
#include <cmath>

#include "mpros/common/assert.hpp"
#include "mpros/rules/severity.hpp"

namespace mpros::pdme {

using domain::FailureMode;

FleetComparativeAnalyzer::FleetComparativeAnalyzer(PdmeExecutive& pdme,
                                                   FleetAnalyzerConfig cfg)
    : pdme_(pdme), cfg_(cfg) {
  MPROS_EXPECTS(cfg.min_fleet >= 3);
  MPROS_EXPECTS(cfg.z_threshold > 0.0);
}

namespace {

double median(std::vector<double> v) {
  MPROS_EXPECTS(!v.empty());
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(mid),
                   v.end());
  return v[mid];
}

}  // namespace

std::vector<FleetComparativeAnalyzer::Deviation>
FleetComparativeAnalyzer::outliers(const std::string& key,
                                   double min_delta) const {
  const oosm::ObjectModel& model =
      static_cast<const PdmeExecutive&>(pdme_).model();

  std::vector<std::pair<ObjectId, double>> readings;
  for (const ObjectId chiller :
       model.objects_of_kind(domain::EquipmentKind::Chiller)) {
    const auto value = model.property(chiller, key);
    if (value.has_value() && !value->is_null()) {
      readings.emplace_back(chiller, value->numeric());
    }
  }
  if (readings.size() < cfg_.min_fleet) return {};

  std::vector<double> values;
  values.reserve(readings.size());
  for (const auto& [id, v] : readings) values.push_back(v);
  const double med = median(values);

  std::vector<double> abs_dev;
  abs_dev.reserve(values.size());
  for (const double v : values) abs_dev.push_back(std::fabs(v - med));
  // MAD with a floor: a perfectly uniform fleet should still require the
  // absolute-delta threshold to flag anything.
  const double mad = std::max(median(abs_dev), min_delta / cfg_.z_threshold);

  std::vector<Deviation> out;
  for (const auto& [id, v] : readings) {
    const double delta = v - med;
    const double z = delta / mad;
    if (std::fabs(delta) >= min_delta && std::fabs(z) >= cfg_.z_threshold) {
      out.push_back(Deviation{id, v, med, z});
    }
  }
  return out;
}

net::FailureReport FleetComparativeAnalyzer::make_report(
    const Deviation& d, FailureMode mode, const std::string& what,
    SimTime now) const {
  net::FailureReport r;
  r.dc = DcId(0);  // PDME-resident: no data concentrator of origin
  r.knowledge_source = kPdmeModelBased;
  r.sensed_object = d.machine;
  r.machine_condition = domain::condition_id(mode);
  // Severity scales with how far past the trip threshold the outlier sits.
  r.severity = std::clamp(
      0.35 + 0.10 * (std::fabs(d.robust_z) - cfg_.z_threshold), 0.2, 0.8);
  r.belief = cfg_.report_belief;
  r.explanation = what + ": fleet median " + std::to_string(d.fleet_median) +
                  ", this plant " + std::to_string(d.value);
  r.recommendations =
      "Cross-plant deviation; inspect this plant against its sisters.";
  r.timestamp = now;
  for (const auto& p : rules::default_prognosis(r.severity)) {
    r.prognostics.push_back(
        net::PrognosticPair{p.probability, p.horizon.seconds()});
  }
  return r;
}

std::vector<net::FailureReport> FleetComparativeAnalyzer::scan(SimTime now) {
  ++stats_.scans;
  std::vector<net::FailureReport> issued;

  // High condensing pressure relative to sisters sharing the same seawater
  // supply: fouling in that plant's condenser.
  for (const Deviation& d :
       outliers("process.cond_pressure_kpa", cfg_.min_cond_kpa_delta)) {
    ++stats_.comparisons;
    if (d.robust_z > 0.0) {
      issued.push_back(make_report(d, FailureMode::CondenserFouling,
                                   "condensing pressure above fleet", now));
    }
  }

  // Low evaporator pressure relative to sisters under comparable load:
  // refrigerant inventory problem in that plant.
  for (const Deviation& d :
       outliers("process.evap_pressure_kpa", cfg_.min_evap_kpa_delta)) {
    ++stats_.comparisons;
    if (d.robust_z < 0.0) {
      issued.push_back(make_report(d, FailureMode::RefrigerantLeak,
                                   "evaporator pressure below fleet", now));
    }
  }

  // Hysteresis: standing outliers re-report only on change or refresh.
  std::vector<net::FailureReport> fresh;
  for (const net::FailureReport& r : issued) {
    LastReport& last = last_reports_[{r.sensed_object.value(),
                                      domain::failure_mode(
                                          r.machine_condition)}];
    const bool moved =
        std::fabs(r.severity - last.severity) >= cfg_.report_hysteresis;
    const bool refresh_due =
        last.at.micros() < 0 || now - last.at >= cfg_.report_refresh;
    if (!moved && !refresh_due) continue;
    last.severity = r.severity;
    last.at = now;
    fresh.push_back(r);
  }

  for (const net::FailureReport& r : fresh) {
    pdme_.accept(r);
    ++stats_.reports_issued;
  }
  return fresh;
}

}  // namespace mpros::pdme
