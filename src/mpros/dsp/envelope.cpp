#include "mpros/dsp/envelope.hpp"

#include <cmath>

#include "mpros/common/assert.hpp"
#include "mpros/dsp/fft.hpp"

namespace mpros::dsp {
namespace {

/// Build the analytic signal spectrum in place: zero the negative
/// frequencies, double the positive ones (DC and Nyquist stay unchanged).
void to_analytic(std::vector<Complex>& spec) {
  const std::size_t n = spec.size();
  for (std::size_t i = 1; i < n / 2; ++i) spec[i] *= 2.0;
  for (std::size_t i = n / 2 + 1; i < n; ++i) spec[i] = Complex{};
}

}  // namespace

std::vector<double> envelope(std::span<const double> x) {
  MPROS_EXPECTS(x.size() >= 4);
  std::vector<Complex> spec = fft_real(x);
  to_analytic(spec);
  const std::vector<Complex> analytic = ifft(spec);

  std::vector<double> env(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    env[i] = std::abs(analytic[i]);
  }
  return env;
}

std::vector<double> envelope_bandpassed(std::span<const double> x,
                                        double sample_rate_hz, double lo_hz,
                                        double hi_hz) {
  MPROS_EXPECTS(x.size() >= 4);
  MPROS_EXPECTS(sample_rate_hz > 0.0 && lo_hz >= 0.0 && hi_hz > lo_hz);

  std::vector<Complex> spec = fft_real(x);
  const std::size_t n = spec.size();
  const double bin_hz = sample_rate_hz / static_cast<double>(n);

  // Brick-wall band-pass on the positive half, then analytic conversion.
  for (std::size_t i = 0; i <= n / 2; ++i) {
    const double f = static_cast<double>(i) * bin_hz;
    if (f < lo_hz || f > hi_hz) spec[i] = Complex{};
  }
  for (std::size_t i = n / 2 + 1; i < n; ++i) spec[i] = Complex{};
  for (std::size_t i = 1; i < n / 2; ++i) spec[i] *= 2.0;

  const std::vector<Complex> analytic = ifft(spec);
  std::vector<double> env(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    env[i] = std::abs(analytic[i]);
  }
  return env;
}

}  // namespace mpros::dsp
