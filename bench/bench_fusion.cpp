// E1 — Dempster-Shafer knowledge fusion.
//
// Paper claim (§5.3): bel(A)=0.40 combined with bel(B∨C)=0.75 yields
// A 14%, B∨C 64%, unknown ~22% (exact arithmetic gives 21.4%). The harness
// prints the reproduced numbers, then measures combination throughput at
// PDME-realistic scales (the paper: "results from hundreds of DCs per ship
// will be correlated at a system level").

#include <benchmark/benchmark.h>

#include <cstdio>

#include "mpros/common/rng.hpp"
#include "mpros/fusion/dempster_shafer.hpp"
#include "mpros/fusion/diagnostic_fusion.hpp"

namespace {

using namespace mpros;
using namespace mpros::fusion;

void print_paper_example() {
  const FrameOfDiscernment frame({"A", "B", "C"});
  const HypothesisSet a = frame.singleton(0);
  const HypothesisSet bc = frame.singleton(1) | frame.singleton(2);
  const CombinationResult r =
      combine(MassFunction::simple_support(frame, a, 0.40),
              MassFunction::simple_support(frame, bc, 0.75));
  std::printf(
      "\nE1 Dempster-Shafer worked example (paper §5.3)\n"
      "  claim    : A=14%%  B|C=64%%  unknown=22%%\n"
      "  measured : A=%.1f%%  B|C=%.1f%%  unknown=%.1f%%  (conflict K=%.2f)\n"
      "  note     : exact arithmetic gives 21.4%% unknown; the paper's 22%%\n"
      "             is a rounding artifact (14+64+22=100).\n\n",
      100.0 * r.fused.mass(a), 100.0 * r.fused.mass(bc),
      100.0 * r.fused.unknown(), r.conflict);
}

void BM_DempsterCombination(benchmark::State& state) {
  const auto frame_size = static_cast<std::size_t>(state.range(0));
  std::vector<std::string> names;
  for (std::size_t i = 0; i < frame_size; ++i) {
    names.push_back("h" + std::to_string(i));
  }
  const FrameOfDiscernment frame(names);
  Rng rng(1);

  MassFunction acc = MassFunction::vacuous(frame);
  std::size_t i = 0;
  for (auto _ : state) {
    const HypothesisSet focus =
        frame.singleton(i++ % frame_size);
    acc = combine(acc, MassFunction::simple_support(frame, focus, 0.6)).fused;
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DempsterCombination)->Arg(2)->Arg(3)->Arg(5)->Arg(8);

void BM_DiagnosticFusionUpdate(benchmark::State& state) {
  // Full §5.3 pipeline: per-machine, per-group belief maintenance across a
  // fleet of machines.
  const auto machine_count = static_cast<std::uint64_t>(state.range(0));
  DiagnosticFusion fusion;
  Rng rng(2);
  const auto modes = domain::all_failure_modes();

  std::uint64_t i = 0;
  for (auto _ : state) {
    const ObjectId machine(1 + (i % machine_count));
    const domain::FailureMode mode = modes[i % modes.size()];
    benchmark::DoNotOptimize(fusion.update(machine, mode, 0.5));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("reports fused");
}
BENCHMARK(BM_DiagnosticFusionUpdate)->Arg(1)->Arg(32)->Arg(512);

void BM_BeliefQuery(benchmark::State& state) {
  DiagnosticFusion fusion;
  for (int i = 0; i < 100; ++i) {
    fusion.update(ObjectId(1 + i % 10),
                  domain::all_failure_modes()[i % 12], 0.4);
  }
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fusion.state(ObjectId(1 + i++ % 10), domain::LogicalGroup::Bearing));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BeliefQuery);

}  // namespace

int main(int argc, char** argv) {
  print_paper_example();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
