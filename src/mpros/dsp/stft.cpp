#include "mpros/dsp/stft.hpp"

#include <cmath>

#include "mpros/common/assert.hpp"
#include "mpros/dsp/fft.hpp"
#include "mpros/dsp/plan_cache.hpp"
#include "mpros/dsp/scratch.hpp"
#include "mpros/dsp/stats.hpp"

namespace mpros::dsp {

Spectrogram::Spectrogram(std::size_t frames, std::size_t bins, double bin_hz,
                         double frame_step_s)
    : frames_(frames),
      bins_(bins),
      bin_hz_(bin_hz),
      frame_step_s_(frame_step_s),
      data_(frames * bins, 0.0) {}

void Spectrogram::reshape(std::size_t frames, std::size_t bins, double bin_hz,
                          double frame_step_s) {
  frames_ = frames;
  bins_ = bins;
  bin_hz_ = bin_hz;
  frame_step_s_ = frame_step_s;
  data_.assign(frames * bins, 0.0);
}

double Spectrogram::at(std::size_t frame, std::size_t bin) const {
  MPROS_EXPECTS(frame < frames_ && bin < bins_);
  return data_[frame * bins_ + bin];
}

double& Spectrogram::at(std::size_t frame, std::size_t bin) {
  MPROS_EXPECTS(frame < frames_ && bin < bins_);
  return data_[frame * bins_ + bin];
}

std::vector<double> Spectrogram::tone_track(double hz) const {
  MPROS_EXPECTS(bin_hz_ > 0.0);
  const auto bin = static_cast<std::size_t>(std::llround(hz / bin_hz_));
  MPROS_EXPECTS(bin < bins_);
  std::vector<double> track(frames_);
  for (std::size_t f = 0; f < frames_; ++f) track[f] = at(f, bin);
  return track;
}

std::vector<double> Spectrogram::frame_energy() const {
  std::vector<double> energy(frames_, 0.0);
  for (std::size_t f = 0; f < frames_; ++f) {
    double sum = 0.0;
    for (std::size_t b = 0; b < bins_; ++b) {
      const double a = at(f, b);
      sum += a * a;
    }
    energy[f] = sum;
  }
  return energy;
}

double Spectrogram::burstiness() const {
  const std::vector<double> energy = frame_energy();
  const Moments m = moments(energy);
  return m.mean > 0.0 ? m.stddev / m.mean : 0.0;
}

Spectrogram stft(std::span<const double> x, double sample_rate_hz,
                 const StftConfig& cfg) {
  Spectrogram out;
  stft(x, sample_rate_hz, cfg, out);
  return out;
}

void stft(std::span<const double> x, double sample_rate_hz,
          const StftConfig& cfg, Spectrogram& out) {
  MPROS_EXPECTS(sample_rate_hz > 0.0);
  MPROS_EXPECTS(is_power_of_two(cfg.segment_size) && cfg.segment_size >= 4);
  MPROS_EXPECTS(cfg.hop > 0);
  MPROS_EXPECTS(x.size() >= cfg.segment_size);

  const std::size_t frames =
      1 + (x.size() - cfg.segment_size) / cfg.hop;
  const std::size_t bins = cfg.segment_size / 2 + 1;
  out.reshape(frames, bins,
              sample_rate_hz / static_cast<double>(cfg.segment_size),
              static_cast<double>(cfg.hop) / sample_rate_hz);

  const CachedWindow& window =
      WindowCache::instance().get(cfg.window, cfg.segment_size);
  const double gain = window.coherent_gain;
  const RealFftPlan& plan = PlanCache::instance().real_plan(cfg.segment_size);

  DspScratch& scratch = DspScratch::local();
  const std::span<double> windowed = scratch.real_lane(0, cfg.segment_size);
  const std::span<Complex> half = scratch.complex_lane(0, plan.bins());
  const std::span<Complex> fft_scratch =
      scratch.complex_lane(1, plan.scratch_size());

  for (std::size_t f = 0; f < frames; ++f) {
    const std::size_t start = f * cfg.hop;
    for (std::size_t i = 0; i < cfg.segment_size; ++i) {
      windowed[i] = x[start + i] * window.coeffs[i];
    }
    plan.forward(windowed, half, fft_scratch);
    for (std::size_t b = 0; b < bins; ++b) {
      double a = std::abs(half[b]) / gain;
      if (b != 0 && b != cfg.segment_size / 2) a *= 2.0;
      out.at(f, b) = a;
    }
  }
}

}  // namespace mpros::dsp
