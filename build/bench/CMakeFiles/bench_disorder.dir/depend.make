# Empty dependencies file for bench_disorder.
# This may be replaced when dependencies are built.
