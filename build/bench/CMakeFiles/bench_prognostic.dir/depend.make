# Empty dependencies file for bench_prognostic.
# This may be replaced when dependencies are built.
