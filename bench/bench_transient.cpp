// E13 — Transitory phenomena: DLI steady-state rules vs the WNN.
//
// Paper (§1.1 item 3): the Wavelet Neural Network, "like DLI's, [is] aimed
// at vibration data, however, unlike DLI's, their algorithm will excel in
// drawing conclusions from transitory phenomena rather than steady state
// data." This ablation sweeps the burst duty cycle of an intermittent
// motor-bearing defect across three detectors:
//  - FFT-tone rules: the paper's characterization of DLI's core ("standard
//    machinery vibration FFT analysis") — envelope-spectrum tones only.
//    Window-averaged tone amplitudes dilute with duty, so this falls first.
//  - full rule engine: our production rulebase, whose kurtosis/crest
//    clauses add partial transient awareness.
//  - WNN: localized wavelet-map features trained with transient exposure.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "mpros/common/rng.hpp"
#include "mpros/mpros/wnn_training.hpp"
#include "mpros/plant/vibration.hpp"
#include "mpros/rules/dli_rules.hpp"

namespace {

using namespace mpros;
using domain::FailureMode;

constexpr double kRate = 40960.0;
constexpr std::size_t kWindow = 4096;
constexpr FailureMode kMode = FailureMode::MotorBearingWear;

std::vector<double> make_window(plant::VibrationSynthesizer& synth, Rng& rng,
                                double severity, double duty) {
  plant::Severities severities{};
  severities[static_cast<std::size_t>(kMode)] = severity;
  plant::TransientProfile transient;
  transient.duty = duty;
  std::vector<double> w(kWindow);
  synth.acceleration(plant::MachinePoint::Motor, severities,
                     rng.uniform(0.6, 0.95), rng.uniform(0.0, 100.0), kRate,
                     w, transient);
  return w;
}

void print_e13_sweep() {
  // WNN trained with transient exposure, as its designers would have.
  WnnTrainingConfig train_cfg;
  train_cfg.windows_per_class = 28;
  train_cfg.min_duty = 0.08;
  train_cfg.min_severity = 0.35;
  train_cfg.classifier.train.epochs = 500;
  auto wnn = train_wnn_classifier(train_cfg);

  const rules::RuleEngine engine(rules::chiller_rulebase());
  // The paper-core spectral detector: envelope tones alone.
  std::vector<rules::Rule> spectral_rules;
  {
    rules::Rule r;
    r.mode = kMode;
    r.name = "bearing tones (FFT only)";
    r.clauses = {
        rules::Clause{rules::feat::kBpfo, 0.03, 0.15, 2.5, false,
                      std::nullopt, "outer-race tone"},
        rules::Clause{rules::feat::kBpfi, 0.03, 0.15, 2.5, false,
                      std::nullopt, "inner-race tone"},
    };
    spectral_rules.push_back(std::move(r));
  }
  const rules::RuleEngine spectral_engine(std::move(spectral_rules));
  const rules::BelievabilityTable beliefs;
  const rules::FeatureExtractor extractor(domain::navy_chiller_signature());
  plant::VibrationSynthesizer synth(domain::navy_chiller_signature(), 0x13);
  Rng rng(0xE13);

  std::printf(
      "\nE13 transitory-fault ablation (paper §1.1: WNN 'will excel in\n"
      "  drawing conclusions from transitory phenomena rather than steady\n"
      "  state data'). Intermittent motor-bearing defect, severity 0.7:\n"
      "  %-10s %14s %14s %14s\n", "burst duty", "FFT tones", "full rules",
      "WNN");

  constexpr int kTrials = 20;
  for (const double duty : {1.0, 0.5, 0.25, 0.12}) {
    int spectral_hits = 0, dli_hits = 0, wnn_hits = 0;
    for (int t = 0; t < kTrials; ++t) {
      const auto w = make_window(synth, rng, 0.7, duty);

      rules::FeatureFrame frame;
      extractor.extract_vibration(w, kRate, frame);
      frame.set(rules::feat::kLoad, 0.85);
      for (const auto& d : spectral_engine.evaluate(frame, beliefs)) {
        if (d.mode == kMode) {
          ++spectral_hits;
          break;
        }
      }
      for (const auto& d : engine.evaluate(frame, beliefs)) {
        if (d.mode == kMode) {
          ++dli_hits;
          break;
        }
      }

      nn::WnnContext ctx;
      ctx.load_fraction = 0.85;
      ctx.bearing_temp_c = 70.0;  // the thermal context the WNN also sees
      // Detection = the classifier puts substantial posterior on the true
      // mode (the DC's reporting threshold, not a forced argmax).
      const auto p = wnn->probabilities(w, kRate, ctx);
      if (p[nn::wnn_label(kMode)] >= 0.30) ++wnn_hits;
    }
    std::printf("  %-10.2f %13.0f%% %13.0f%% %13.0f%%\n", duty,
                100.0 * spectral_hits / kTrials, 100.0 * dli_hits / kTrials,
                100.0 * wnn_hits / kTrials);
  }
  std::printf(
      "  shape: all three agree at steady state; the FFT-tone detector\n"
      "         dilutes away as the defect turns intermittent, while the\n"
      "         WNN (and the rule engine's time-domain clauses) keep seeing\n"
      "         the bursts — the complementarity that justifies hosting\n"
      "         multiple analyzers per DC.\n\n");
}

void BM_WnnInference(benchmark::State& state) {
  WnnTrainingConfig cfg;
  cfg.windows_per_class = 6;
  cfg.classifier.train.epochs = 60;
  auto wnn = train_wnn_classifier(cfg);
  plant::VibrationSynthesizer synth(domain::navy_chiller_signature(), 7);
  Rng rng(8);
  const auto w = make_window(synth, rng, 0.8, 0.5);
  nn::WnnContext ctx;
  for (auto _ : state) {
    benchmark::DoNotOptimize(wnn->probabilities(w, kRate, ctx));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("feature extraction + forward pass");
}
BENCHMARK(BM_WnnInference);

void BM_TransientSynthesis(benchmark::State& state) {
  plant::VibrationSynthesizer synth(domain::navy_chiller_signature(), 9);
  Rng rng(10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(make_window(synth, rng, 0.8, 0.25));
  }
  state.SetItemsProcessed(state.iterations() * kWindow);
  state.SetLabel("samples synthesized");
}
BENCHMARK(BM_TransientSynthesis);

}  // namespace

int main(int argc, char** argv) {
  print_e13_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
