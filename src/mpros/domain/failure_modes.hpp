#pragma once
// The failure-mode catalog for the centrifugal chilled-water system.
//
// The paper's FMEA "selected 12 candidate failure modes" (§3.3) without
// listing them; we reconstruct twelve classic centrifugal-chiller modes that
// cover every analyzer in the prototype (vibration, electrical, process).
//
// Logical groups implement §5.3: Dempster-Shafer runs per group because
// failures *within* a group "might be mistaken for one another" and must
// share probability mass, while failures in different groups can coexist
// independently (no mutual exclusivity across groups).

#include <array>
#include <span>
#include <string>

#include "mpros/common/ids.hpp"

namespace mpros::domain {

enum class FailureMode : std::uint8_t {
  // Rotor-dynamics group
  MotorImbalance = 0,
  ShaftMisalignment,
  BearingHousingLooseness,  // the paper's "pump bearing housing looseness"
  // Electrical group
  RotorBarDefect,  // the paper's "motor rotor bar problem"
  StatorWindingFault,
  // Bearing / lubrication group
  MotorBearingWear,
  CompressorBearingWear,
  OilDegradation,
  // Gear-train group
  GearMeshWear,
  // Process / fluid group
  PumpCavitation,
  RefrigerantLeak,
  CondenserFouling,
};

inline constexpr std::size_t kFailureModeCount = 12;

enum class LogicalGroup : std::uint8_t {
  RotorDynamics = 0,
  Electrical,
  Bearing,
  GearTrain,
  Process,
};

inline constexpr std::size_t kLogicalGroupCount = 5;

[[nodiscard]] const char* to_string(FailureMode m);
[[nodiscard]] const char* to_string(LogicalGroup g);

/// The heuristic grouping of §5.3.
[[nodiscard]] LogicalGroup logical_group(FailureMode m);

/// All modes, in enum order.
[[nodiscard]] std::span<const FailureMode> all_failure_modes();

/// Modes belonging to one group, in enum order.
[[nodiscard]] std::span<const FailureMode> modes_in_group(LogicalGroup g);

/// Stable ConditionId for a mode (enum value + 1; 0 stays invalid).
[[nodiscard]] ConditionId condition_id(FailureMode m);

/// Inverse of condition_id; aborts on out-of-range ids.
[[nodiscard]] FailureMode failure_mode(ConditionId id);

/// Human-readable machine-condition text per the report protocol (§7.2),
/// e.g. "motor imbalance".
[[nodiscard]] std::string condition_text(FailureMode m);

// ---------------------------------------------------------------------------
// Sensor-fault conditions.
//
// A DC that concludes "the accelerometer is lying" must not phrase that as a
// machinery failure — feeding it to Dempster-Shafer would steal probability
// mass from real modes. Sensor faults get their own ConditionId range,
// disjoint from the machinery catalog, so every consumer (PDME fusion,
// browser, report codec) can route them without ambiguity.

enum class SensorFaultKind : std::uint8_t {
  Flatline = 0,  ///< stuck-at: variance collapsed to nothing
  Dropout,       ///< non-finite samples (open circuit / dead channel)
  OutOfRange,    ///< readings outside physical plausibility
  Spike,         ///< implausible isolated impulses (loose connector)
};

inline constexpr std::size_t kSensorFaultKindCount = 4;

/// First ConditionId of the sensor-fault range; machinery modes occupy
/// 1..kFailureModeCount, leaving room for catalog growth below this.
inline constexpr std::uint64_t kSensorFaultConditionBase = 100;

[[nodiscard]] const char* to_string(SensorFaultKind k);

/// Stable ConditionId for a sensor-fault kind (base + enum value).
[[nodiscard]] ConditionId sensor_fault_condition(SensorFaultKind k);

/// True when `id` lies in the sensor-fault range.
[[nodiscard]] bool is_sensor_fault_condition(ConditionId id);

/// Inverse of sensor_fault_condition; aborts on out-of-range ids.
[[nodiscard]] SensorFaultKind sensor_fault_kind(ConditionId id);

/// Report-protocol text, e.g. "sensor flatline (stuck-at)".
[[nodiscard]] std::string sensor_fault_condition_text(SensorFaultKind k);

}  // namespace mpros::domain
