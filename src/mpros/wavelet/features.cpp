#include "mpros/wavelet/features.hpp"

#include <cmath>

namespace mpros::wavelet {
namespace {

double sum_sq(std::span<const double> v) {
  double s = 0.0;
  for (double x : v) s += x * x;
  return s;
}

}  // namespace

std::vector<double> energy_map(const Decomposition& d) {
  std::vector<double> energies;
  energies.reserve(d.details.size() + 1);
  double total = 0.0;
  for (const auto& detail : d.details) {
    energies.push_back(sum_sq(detail));
    total += energies.back();
  }
  energies.push_back(sum_sq(d.approx));
  total += energies.back();

  if (total > 0.0) {
    for (double& e : energies) e /= total;
  }
  return energies;
}

double energy_entropy(const Decomposition& d) {
  const std::vector<double> map = energy_map(d);
  double h = 0.0;
  for (double p : map) {
    if (p > 1e-15) h -= p * std::log2(p);
  }
  return h;
}

std::vector<double> peak_map(const Decomposition& d) {
  std::vector<double> peaks;
  peaks.reserve(d.details.size());
  for (const auto& detail : d.details) {
    double peak = 0.0;
    for (double v : detail) peak = std::max(peak, std::fabs(v));
    peaks.push_back(peak);
  }
  return peaks;
}

std::vector<double> wavelet_feature_vector(std::span<const double> x, Family f,
                                           std::size_t levels) {
  std::vector<double> features;
  wavelet_feature_vector(x, f, levels, features);
  return features;
}

void wavelet_feature_vector(std::span<const double> x, Family f,
                            std::size_t levels, std::vector<double>& out) {
  static thread_local Decomposition d;
  decompose(x, f, levels, d);

  // Inline energy map + entropy so no intermediate vector is needed.
  out.clear();
  out.reserve(d.details.size() + 2);
  double total = 0.0;
  for (const auto& detail : d.details) {
    out.push_back(sum_sq(detail));
    total += out.back();
  }
  out.push_back(sum_sq(d.approx));
  total += out.back();
  if (total > 0.0) {
    for (double& e : out) e /= total;
  }

  double h = 0.0;
  for (double p : out) {
    if (p > 1e-15) h -= p * std::log2(p);
  }
  out.push_back(h);
}

}  // namespace mpros::wavelet
