
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mpros/sbfr/disasm.cpp" "src/mpros/sbfr/CMakeFiles/mpros_sbfr.dir/disasm.cpp.o" "gcc" "src/mpros/sbfr/CMakeFiles/mpros_sbfr.dir/disasm.cpp.o.d"
  "/root/repo/src/mpros/sbfr/expr.cpp" "src/mpros/sbfr/CMakeFiles/mpros_sbfr.dir/expr.cpp.o" "gcc" "src/mpros/sbfr/CMakeFiles/mpros_sbfr.dir/expr.cpp.o.d"
  "/root/repo/src/mpros/sbfr/interpreter.cpp" "src/mpros/sbfr/CMakeFiles/mpros_sbfr.dir/interpreter.cpp.o" "gcc" "src/mpros/sbfr/CMakeFiles/mpros_sbfr.dir/interpreter.cpp.o.d"
  "/root/repo/src/mpros/sbfr/library.cpp" "src/mpros/sbfr/CMakeFiles/mpros_sbfr.dir/library.cpp.o" "gcc" "src/mpros/sbfr/CMakeFiles/mpros_sbfr.dir/library.cpp.o.d"
  "/root/repo/src/mpros/sbfr/machine.cpp" "src/mpros/sbfr/CMakeFiles/mpros_sbfr.dir/machine.cpp.o" "gcc" "src/mpros/sbfr/CMakeFiles/mpros_sbfr.dir/machine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mpros/common/CMakeFiles/mpros_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
