file(REMOVE_RECURSE
  "CMakeFiles/shipboard_deployment.dir/shipboard_deployment.cpp.o"
  "CMakeFiles/shipboard_deployment.dir/shipboard_deployment.cpp.o.d"
  "shipboard_deployment"
  "shipboard_deployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shipboard_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
