#pragma once
// DCT-II, another WNN feature listed in §6.2.

#include <cstddef>
#include <span>
#include <vector>

namespace mpros::dsp {

/// Orthonormal DCT-II of x. O(n^2) direct form: feature vectors here are
/// small (<= a few hundred points), so clarity wins over an FFT mapping.
[[nodiscard]] std::vector<double> dct2(std::span<const double> x);

/// Inverse of dct2 (orthonormal DCT-III).
[[nodiscard]] std::vector<double> idct2(std::span<const double> c);

/// First `k` DCT coefficients of x (k <= x.size()).
[[nodiscard]] std::vector<double> dct2_truncated(std::span<const double> x,
                                                 std::size_t k);

}  // namespace mpros::dsp
