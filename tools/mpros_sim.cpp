// mpros_sim — command-line MPROS scenario runner.
//
// Assembles a fleet, injects faults, runs simulated time, and prints any of
// the PDME's views. Everything the examples demonstrate, scriptable:
//
//   mpros_sim --plants 4 --hours 6
//             --fault 0:MotorImbalance:0.5:2.0:0.9
//             --fault 1:RefrigerantLeak:1.0:1.0:1.0
//             --net-drop 0.05 --net-jitter-s 10
//             --fleet-analyzer --auto-retest
//             --show summary,health,machine:0,icas,mimosa
//
// --fault plant:Mode:onset_h:ramp_h:severity   (repeatable)
// --show  comma list of: summary, health, flows, icas, mimosa, telemetry,
//         machine:<plant> (Fig 2 browser for that plant's motor), stats
//
//   mpros_sim --list-modes     # print the FMEA failure-mode catalog
//   mpros_sim --validate       # run the §9 seeded-fault study (slow)
//   mpros_sim --record run.mfr # journal the run into a flight recording
//   mpros_sim --replay run.mfr # re-fuse a recording (same as mpros_replay)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "mpros/mpros/mpros.hpp"

namespace {

using namespace mpros;

[[noreturn]] void usage_error(const std::string& message) {
  std::fprintf(stderr, "mpros_sim: %s\n(see the header of tools/mpros_sim.cpp for usage)\n",
               message.c_str());
  std::exit(2);
}

std::optional<domain::FailureMode> parse_mode(const std::string& name) {
  for (const auto mode : domain::all_failure_modes()) {
    if (name == domain::to_string(mode)) return mode;
  }
  return std::nullopt;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    out.push_back(s.substr(start, pos - start));
    if (pos == std::string::npos) break;
    start = pos + 1;
  }
  return out;
}

struct FaultSpec {
  std::size_t plant = 0;
  plant::FaultEvent event;
};

FaultSpec parse_fault(const std::string& spec) {
  const auto parts = split(spec, ':');
  if (parts.size() != 5) {
    usage_error("--fault expects plant:Mode:onset_h:ramp_h:severity, got '" +
                spec + "'");
  }
  FaultSpec f;
  f.plant = static_cast<std::size_t>(std::atoi(parts[0].c_str()));
  const auto mode = parse_mode(parts[1]);
  if (!mode) {
    usage_error("unknown failure mode '" + parts[1] +
                "' (try --list-modes)");
  }
  f.event.mode = *mode;
  f.event.onset = SimTime::from_hours(std::atof(parts[2].c_str()));
  f.event.ramp = SimTime::from_hours(std::atof(parts[3].c_str()));
  f.event.max_severity = std::atof(parts[4].c_str());
  f.event.profile = f.event.ramp.micros() == 0
                        ? plant::GrowthProfile::Step
                        : plant::GrowthProfile::Linear;
  return f;
}

int run_validation_study() {
  std::printf("Running the §9 seeded-fault study (12 run-to-failure "
              "scenarios, ~3 min)...\n");
  const auto summary = run_validation(standard_study());
  std::printf("%s", render(summary).c_str());
  return summary.detection_rate > 0.99 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t plants = 2;
  double hours = 2.0;
  std::vector<FaultSpec> faults;
  ShipSystemConfig cfg;
  std::vector<std::string> shows = {"summary"};
  std::uint64_t seed = 0x5417;
  std::string record_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage_error(arg + " needs a value");
      return argv[++i];
    };
    if (arg == "--plants") {
      plants = static_cast<std::size_t>(std::atoi(next().c_str()));
    } else if (arg == "--hours") {
      hours = std::atof(next().c_str());
    } else if (arg == "--fault") {
      faults.push_back(parse_fault(next()));
    } else if (arg == "--net-drop") {
      cfg.network.drop_probability = std::atof(next().c_str());
    } else if (arg == "--net-dup") {
      cfg.network.duplicate_probability = std::atof(next().c_str());
    } else if (arg == "--net-jitter-s") {
      cfg.network.jitter = SimTime::from_seconds(std::atof(next().c_str()));
    } else if (arg == "--load") {
      cfg.initial_load = std::atof(next().c_str());
    } else if (arg == "--seed") {
      seed = static_cast<std::uint64_t>(std::atoll(next().c_str()));
    } else if (arg == "--wnn") {
      cfg.use_wnn = true;
    } else if (arg == "--fleet-analyzer") {
      cfg.enable_fleet_analyzer = true;
    } else if (arg == "--auto-retest") {
      cfg.pdme.auto_retest = true;
    } else if (arg == "--vib-period-s") {
      cfg.dc_template.vibration_period =
          SimTime::from_seconds(std::atof(next().c_str()));
    } else if (arg == "--show") {
      shows = split(next(), ',');
    } else if (arg == "--record") {
      record_path = next();
      cfg.enable_flight_recorder = true;
    } else if (arg == "--replay") {
      const auto result = replay_file(next());
      if (!result.has_value()) {
        std::fprintf(stderr, "mpros_sim: cannot replay that recording\n");
        return 1;
      }
      std::printf("%s\n", result->summary.c_str());
      return 0;
    } else if (arg == "--list-modes") {
      for (const auto mode : domain::all_failure_modes()) {
        std::printf("%-26s (%s, group %s)\n", domain::to_string(mode),
                    domain::condition_text(mode).c_str(),
                    domain::to_string(domain::logical_group(mode)));
      }
      return 0;
    } else if (arg == "--validate") {
      return run_validation_study();
    } else if (arg == "--help" || arg == "-h") {
      std::printf("see the header comment of tools/mpros_sim.cpp\n");
      return 0;
    } else {
      usage_error("unknown argument '" + arg + "'");
    }
  }

  cfg.plant_count = plants;
  cfg.seed = seed;
  ShipSystem ship(cfg);

  for (const FaultSpec& f : faults) {
    if (f.plant >= ship.plant_count()) {
      usage_error("--fault names plant " + std::to_string(f.plant) +
                  " but only " + std::to_string(ship.plant_count()) +
                  " exist");
    }
    ship.chiller(f.plant).faults().schedule(f.event);
  }

  std::printf("mpros_sim: %zu plant(s), %.2f simulated hour(s), %zu fault(s)\n\n",
              ship.plant_count(), hours, faults.size());
  ship.run_until(SimTime::from_hours(hours));

  for (const std::string& show : shows) {
    if (show == "summary") {
      std::printf("%s\n",
                  pdme::render_summary(ship.pdme(), ship.model()).c_str());
    } else if (show == "health") {
      const pdme::HealthRollup rollup;
      std::printf("%s\n",
                  rollup.render_tree(ship.pdme(), ship.ship().ship).c_str());
    } else if (show == "flows") {
      const pdme::SpatialReasoner spatial;
      for (const auto& s : spatial.flow_suspicions(ship.pdme())) {
        std::printf("flow watch: %s (%s) -> %s (%.2f)\n",
                    ship.model().name(s.source).c_str(),
                    domain::condition_text(s.source_mode).c_str(),
                    ship.model().name(s.downstream).c_str(), s.suspicion);
      }
      std::printf("\n");
    } else if (show == "icas") {
      std::printf("%s\n",
                  pdme::export_icas_csv(ship.pdme(), ship.model()).c_str());
    } else if (show == "mimosa") {
      std::printf("%s\n",
                  pdme::export_mimosa(ship.pdme(), ship.model()).c_str());
    } else if (show == "stats") {
      const auto stats = ship.fleet_stats();
      const auto pstats = ship.pdme().stats();
      auto& reg = telemetry::Registry::instance();
      std::printf("samples=%llu reports=%llu fused=%llu dropped=%llu "
                  "duplicated=%llu retests=%llu\n",
                  static_cast<unsigned long long>(stats.samples_processed),
                  static_cast<unsigned long long>(stats.reports_emitted),
                  static_cast<unsigned long long>(stats.reports_fused),
                  static_cast<unsigned long long>(stats.network.dropped),
                  static_cast<unsigned long long>(stats.network.duplicated),
                  static_cast<unsigned long long>(pstats.retests_commanded));
      std::printf("queue_full=%llu",
                  static_cast<unsigned long long>(pstats.queue_full));
      for (std::size_t s = 0; s < ship.pdme().shard_count(); ++s) {
        std::printf(" shard%zu.depth=%.0f", s,
                    reg.gauge("pdme.shard" + std::to_string(s) + ".depth")
                        .value());
      }
      std::printf("\nsupervisor: wedges=%llu restarts=%llu; config: "
                  "commands=%llu acks=%llu applied=%llu rejected=%llu\n\n",
                  static_cast<unsigned long long>(
                      reg.counter("dc.wedges_detected").value()),
                  static_cast<unsigned long long>(
                      reg.counter("mpros.supervisor_restarts").value()),
                  static_cast<unsigned long long>(pstats.commands_sent),
                  static_cast<unsigned long long>(pstats.command_acks),
                  static_cast<unsigned long long>(
                      reg.counter("dc.config_applied").value()),
                  static_cast<unsigned long long>(
                      reg.counter("dc.config_rejected").value()));
    } else if (show == "telemetry") {
      std::printf("%s\n", ShipSystem::telemetry_text().c_str());
    } else if (show.rfind("machine:", 0) == 0) {
      const auto plant = static_cast<std::size_t>(
          std::atoi(show.substr(std::strlen("machine:")).c_str()));
      if (plant >= ship.plant_count()) usage_error("bad machine index");
      std::printf("%s\n",
                  pdme::render_machine(ship.pdme(), ship.model(),
                                       ship.plant_objects(plant).motor)
                      .c_str());
    } else {
      usage_error("unknown --show item '" + show + "'");
    }
  }

  if (!record_path.empty()) {
    if (!ship.flight_recorder()->dump(record_path)) {
      std::fprintf(stderr, "mpros_sim: cannot write '%s'\n",
                   record_path.c_str());
      return 1;
    }
    std::printf("flight recording written to %s (%llu frame(s), replay "
                "with mpros_replay)\n",
                record_path.c_str(),
                static_cast<unsigned long long>(
                    ship.flight_recorder()->recorded()));
  }
  return 0;
}
