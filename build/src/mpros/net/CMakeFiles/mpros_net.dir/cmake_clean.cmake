file(REMOVE_RECURSE
  "CMakeFiles/mpros_net.dir/codec.cpp.o"
  "CMakeFiles/mpros_net.dir/codec.cpp.o.d"
  "CMakeFiles/mpros_net.dir/messages.cpp.o"
  "CMakeFiles/mpros_net.dir/messages.cpp.o.d"
  "CMakeFiles/mpros_net.dir/network.cpp.o"
  "CMakeFiles/mpros_net.dir/network.cpp.o.d"
  "CMakeFiles/mpros_net.dir/report.cpp.o"
  "CMakeFiles/mpros_net.dir/report.cpp.o.d"
  "libmpros_net.a"
  "libmpros_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpros_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
