#include "mpros/db/database.hpp"

#include "mpros/common/assert.hpp"

namespace mpros::db {

Table& Database::create_table(TableSchema schema) {
  MPROS_EXPECTS(!schema.name.empty());
  MPROS_EXPECTS(!tables_.contains(schema.name));
  const std::string name = schema.name;
  TableSchema journal_copy;
  if (journal_ != nullptr) journal_copy = schema;
  auto [it, inserted] =
      tables_.emplace(name, std::make_unique<Table>(std::move(schema)));
  MPROS_ASSERT(inserted);
  if (journal_ != nullptr) {
    RedoOp op;
    op.kind = RedoOp::Kind::CreateTable;
    op.table = name;
    op.schema = std::move(journal_copy);
    journal_->journal(std::move(op));
  }
  return *it->second;
}

bool Database::has_table(const std::string& name) const {
  return tables_.contains(name);
}

Table& Database::table(const std::string& name) {
  const auto it = tables_.find(name);
  MPROS_EXPECTS(it != tables_.end());
  return *it->second;
}

const Table& Database::table(const std::string& name) const {
  const auto it = tables_.find(name);
  MPROS_EXPECTS(it != tables_.end());
  return *it->second;
}

void Database::drop_table(const std::string& name) {
  MPROS_EXPECTS(!in_txn_);  // DDL inside a transaction is not supported
  MPROS_EXPECTS(tables_.erase(name) == 1);
  if (journal_ != nullptr) {
    RedoOp op;
    op.kind = RedoOp::Kind::DropTable;
    op.table = name;
    journal_->journal(std::move(op));
  }
}

void Database::create_index(const std::string& table_name,
                            const std::string& column) {
  table(table_name).create_index(column);
  if (journal_ != nullptr) {
    RedoOp op;
    op.kind = RedoOp::Kind::CreateIndex;
    op.table = table_name;
    op.column = column;
    journal_->journal(std::move(op));
  }
}

std::vector<std::string> Database::table_names() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  return names;
}

void Database::begin() {
  MPROS_EXPECTS(!in_txn_);
  in_txn_ = true;
  undo_log_.clear();
  // Seal any buffered autocommit ops first so a later rollback discards
  // only the ops journaled inside this transaction.
  if (journal_ != nullptr) journal_->journal_begin();
}

void Database::commit() {
  MPROS_EXPECTS(in_txn_);
  in_txn_ = false;
  undo_log_.clear();
  if (journal_ != nullptr) journal_->journal_commit();
}

void Database::rollback() {
  MPROS_EXPECTS(in_txn_);
  for (auto it = undo_log_.rbegin(); it != undo_log_.rend(); ++it) {
    Table& t = table(it->table);
    switch (it->kind) {
      case UndoOp::Kind::DeleteInserted:
        t.erase(it->key);
        // Undo the key-counter bump too: without this an aborted
        // insert_auto perturbed every later auto key, breaking
        // byte-identical WAL-replay recovery.
        t.restore_next_key(it->saved_next_key);
        break;
      case UndoOp::Kind::RestoreUpdated:
        t.update(it->key, it->column, it->old_value);
        break;
      case UndoOp::Kind::ReinsertErased: {
        const std::int64_t saved = t.next_auto_key();
        t.insert(it->old_row);
        t.restore_next_key(saved);
        break;
      }
    }
  }
  undo_log_.clear();
  in_txn_ = false;
  if (journal_ != nullptr) journal_->journal_rollback();
}

std::int64_t Database::insert(const std::string& table_name, Row row) {
  Table& t = table(table_name);
  Row journal_copy;
  if (journal_ != nullptr) journal_copy = row;
  const std::int64_t saved_next_key = t.next_auto_key();
  const std::int64_t key = t.insert(std::move(row));
  if (in_txn_) {
    undo_log_.push_back({UndoOp::Kind::DeleteInserted, table_name, key, {}, {},
                         {}, saved_next_key});
  }
  if (journal_ != nullptr) {
    RedoOp op;
    op.kind = RedoOp::Kind::Insert;
    op.table = table_name;
    op.key = key;
    op.row = std::move(journal_copy);
    journal_->journal(std::move(op));
  }
  return key;
}

std::int64_t Database::insert_auto(const std::string& table_name,
                                   Row row_without_key) {
  Table& t = table(table_name);
  const std::int64_t saved_next_key = t.next_auto_key();
  const std::int64_t key = t.insert_auto(std::move(row_without_key));
  if (in_txn_) {
    undo_log_.push_back({UndoOp::Kind::DeleteInserted, table_name, key, {}, {},
                         {}, saved_next_key});
  }
  if (journal_ != nullptr) {
    // Journal the full row including the assigned key so replay is exact.
    RedoOp op;
    op.kind = RedoOp::Kind::Insert;
    op.table = table_name;
    op.key = key;
    op.row = *t.find(key);
    journal_->journal(std::move(op));
  }
  return key;
}

bool Database::update(const std::string& table_name, std::int64_t key,
                      const std::string& column, Value v) {
  Table& t = table(table_name);
  const Row* row = t.find(key);
  if (row == nullptr) return false;
  if (in_txn_) {
    const auto col = t.schema().column_index(column);
    MPROS_EXPECTS(col.has_value());
    undo_log_.push_back({UndoOp::Kind::RestoreUpdated, table_name, key, column,
                         (*row)[*col], {}, 0});
  }
  Value journal_copy;
  if (journal_ != nullptr) journal_copy = v;
  const bool applied = t.update(key, column, std::move(v));
  if (applied && journal_ != nullptr) {
    RedoOp op;
    op.kind = RedoOp::Kind::Update;
    op.table = table_name;
    op.column = column;
    op.key = key;
    op.value = std::move(journal_copy);
    journal_->journal(std::move(op));
  }
  return applied;
}

bool Database::erase(const std::string& table_name, std::int64_t key) {
  Table& t = table(table_name);
  const Row* row = t.find(key);
  if (row == nullptr) return false;
  if (in_txn_) {
    undo_log_.push_back(
        {UndoOp::Kind::ReinsertErased, table_name, key, {}, {}, *row, 0});
  }
  const bool applied = t.erase(key);
  if (applied && journal_ != nullptr) {
    RedoOp op;
    op.kind = RedoOp::Kind::Erase;
    op.table = table_name;
    op.key = key;
    journal_->journal(std::move(op));
  }
  return applied;
}

std::vector<std::string> Database::integrity_violations() const {
  std::vector<std::string> out;
  for (const auto& [name, table] : tables_) {
    std::vector<std::string> v = table->index_violations();
    out.insert(out.end(), std::make_move_iterator(v.begin()),
               std::make_move_iterator(v.end()));
  }
  return out;
}

namespace {

bool schema_admissible(const TableSchema& schema) {
  if (schema.name.empty() || schema.columns.empty()) return false;
  if (schema.columns[0].type != ValueType::Integer) return false;
  if (schema.columns[0].nullable) return false;
  for (std::size_t i = 0; i < schema.columns.size(); ++i) {
    if (schema.columns[i].name.empty()) return false;
    const ValueType t = schema.columns[i].type;
    if (t != ValueType::Integer && t != ValueType::Real &&
        t != ValueType::Text) {
      return false;
    }
    for (std::size_t j = 0; j < i; ++j) {
      if (schema.columns[j].name == schema.columns[i].name) return false;
    }
  }
  return true;
}

}  // namespace

bool apply_redo(Database& db, RedoOp&& op) {
  switch (op.kind) {
    case RedoOp::Kind::CreateTable:
      if (op.table.empty() || op.table != op.schema.name) return false;
      if (db.has_table(op.table)) return false;
      if (!schema_admissible(op.schema)) return false;
      db.create_table(std::move(op.schema));
      return true;
    case RedoOp::Kind::DropTable:
      if (!db.has_table(op.table)) return false;
      db.drop_table(op.table);
      return true;
    case RedoOp::Kind::CreateIndex: {
      if (!db.has_table(op.table)) return false;
      Table& t = db.table(op.table);
      if (!t.schema().column_index(op.column).has_value()) return false;
      db.create_index(op.table, op.column);
      return true;
    }
    case RedoOp::Kind::Insert: {
      if (!db.has_table(op.table)) return false;
      Table& t = db.table(op.table);
      if (!t.row_admissible(op.row)) return false;
      if (op.row[0].type() != ValueType::Integer) return false;
      if (op.row[0].as_integer() != op.key) return false;
      if (t.find(op.key) != nullptr) return false;
      db.insert(op.table, std::move(op.row));
      return true;
    }
    case RedoOp::Kind::Update: {
      if (!db.has_table(op.table)) return false;
      Table& t = db.table(op.table);
      const auto col = t.schema().column_index(op.column);
      if (!col.has_value() || *col == 0) return false;
      if (t.find(op.key) == nullptr) return false;
      if (!t.cell_admissible(*col, op.value)) return false;
      return db.update(op.table, op.key, op.column, std::move(op.value));
    }
    case RedoOp::Kind::Erase:
      if (!db.has_table(op.table)) return false;
      if (db.table(op.table).find(op.key) == nullptr) return false;
      return db.erase(op.table, op.key);
  }
  return false;
}

}  // namespace mpros::db
