file(REMOVE_RECURSE
  "CMakeFiles/bench_prognostic.dir/bench_prognostic.cpp.o"
  "CMakeFiles/bench_prognostic.dir/bench_prognostic.cpp.o.d"
  "bench_prognostic"
  "bench_prognostic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prognostic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
