// E15 — Telemetry overhead on the fleet hot path.
//
// The metrics registry, pipeline tracing and flight recorder all ride the
// DAQ/DC/PDME hot paths; the design budget is <5% on E7's fleet workload.
// The harness runs BM_FleetHour's scenario (4 plants, one stepped fault,
// 1 simulated hour) three ways — telemetry globally disabled (the kill
// switch gates every observation), enabled, and enabled with the flight
// recorder journaling every delivered datagram — and reports wall time
// plus the enabled/disabled overhead ratio.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "mpros/mpros/ship_system.hpp"
#include "mpros/telemetry/metrics.hpp"

namespace {

using namespace mpros;

void run_fleet_hour(benchmark::State& state, bool telemetry_on,
                    bool record) {
  const bool was_enabled = telemetry::enabled();
  telemetry::set_enabled(telemetry_on);
  for (auto _ : state) {
    state.PauseTiming();
    ShipSystemConfig cfg;
    cfg.plant_count = 4;
    cfg.dc_template.vibration_period = SimTime::from_seconds(600);
    cfg.dc_template.process_period = SimTime::from_seconds(60);
    cfg.seed = 0xF1EE7 + state.iterations();
    cfg.enable_flight_recorder = record;
    ShipSystem ship(cfg);
    ship.chiller(0).faults().schedule(
        {domain::FailureMode::MotorImbalance, SimTime(0), SimTime(0), 0.9,
         plant::GrowthProfile::Step});
    state.ResumeTiming();

    ship.run_until(SimTime::from_hours(1.0));

    state.PauseTiming();
    state.counters["reports_fused"] =
        static_cast<double>(ship.fleet_stats().reports_fused);
    state.ResumeTiming();
  }
  telemetry::set_enabled(was_enabled);
  state.SetLabel("1 simulated hour, 4 plants");
}

void BM_FleetHour_TelemetryOff(benchmark::State& state) {
  run_fleet_hour(state, /*telemetry_on=*/false, /*record=*/false);
}
BENCHMARK(BM_FleetHour_TelemetryOff)
    ->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_FleetHour_TelemetryOn(benchmark::State& state) {
  run_fleet_hour(state, /*telemetry_on=*/true, /*record=*/false);
}
BENCHMARK(BM_FleetHour_TelemetryOn)
    ->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_FleetHour_TelemetryAndRecorder(benchmark::State& state) {
  run_fleet_hour(state, /*telemetry_on=*/true, /*record=*/true);
}
BENCHMARK(BM_FleetHour_TelemetryAndRecorder)
    ->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_CounterInc(benchmark::State& state) {
  // The primitive the hot paths lean on: one registered counter, relaxed
  // atomic increments.
  telemetry::set_enabled(true);
  telemetry::Counter& c =
      telemetry::Registry::instance().counter("bench.counter_inc");
  for (auto _ : state) {
    c.inc();
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterInc);

void BM_HistogramObserve(benchmark::State& state) {
  telemetry::set_enabled(true);
  telemetry::Histogram& h =
      telemetry::Registry::instance().histogram("bench.hist_observe");
  double v = 0.0;
  for (auto _ : state) {
    h.observe(v);
    v = v < 1e6 ? v * 1.7 + 1.0 : 0.0;
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramObserve);

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "\nE15 telemetry overhead (budget: <5%% on the E7 fleet workload)\n"
      "  compare: BM_FleetHour_TelemetryOn / BM_FleetHour_TelemetryOff\n"
      "  (the kill switch gates every counter, histogram and span; the\n"
      "  recorder variant adds per-delivery journaling on top)\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
