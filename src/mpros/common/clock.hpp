#pragma once
// Simulation time.
//
// All MPROS components are driven by simulated time so that scenarios are
// deterministic and the fleet can be simulated faster than real time. Time is
// carried as a 64-bit count of microseconds since scenario start; prognostic
// horizons ("failure in 3 months") use the same axis.

#include <chrono>
#include <cstdint>
#include <string>

namespace mpros {

/// A point on the simulation time axis, in microseconds since scenario start.
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(std::int64_t micros) : micros_(micros) {}

  static constexpr SimTime from_seconds(double s) {
    return SimTime(static_cast<std::int64_t>(s * 1e6));
  }
  static constexpr SimTime from_millis(double ms) {
    return SimTime(static_cast<std::int64_t>(ms * 1e3));
  }
  static constexpr SimTime from_hours(double h) {
    return from_seconds(h * 3600.0);
  }
  static constexpr SimTime from_days(double d) { return from_hours(d * 24.0); }
  /// Paper prognostics speak in months; a month is 30 days here.
  static constexpr SimTime from_months(double m) { return from_days(m * 30.0); }

  [[nodiscard]] constexpr std::int64_t micros() const { return micros_; }
  [[nodiscard]] constexpr double seconds() const { return micros_ / 1e6; }
  [[nodiscard]] constexpr double hours() const { return seconds() / 3600.0; }
  [[nodiscard]] constexpr double days() const { return hours() / 24.0; }
  [[nodiscard]] constexpr double months() const { return days() / 30.0; }

  friend constexpr auto operator<=>(SimTime, SimTime) = default;
  friend constexpr SimTime operator+(SimTime a, SimTime b) {
    return SimTime(a.micros_ + b.micros_);
  }
  friend constexpr SimTime operator-(SimTime a, SimTime b) {
    return SimTime(a.micros_ - b.micros_);
  }
  SimTime& operator+=(SimTime d) {
    micros_ += d.micros_;
    return *this;
  }

 private:
  std::int64_t micros_ = 0;
};

/// Render as a compact human string, e.g. "3.2s", "4.5mo".
std::string to_string(SimTime t);

/// A monotonically advancing simulation clock. Single-writer: the scenario
/// driver advances it; everyone else reads.
class SimClock {
 public:
  [[nodiscard]] SimTime now() const { return now_; }

  /// Advance by `dt` (must be non-negative).
  void advance(SimTime dt);

  /// Jump to an absolute time (must not go backwards).
  void advance_to(SimTime t);

 private:
  SimTime now_{};
};

/// Wall-clock stopwatch for benchmarking real elapsed time.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  void reset() { start_ = std::chrono::steady_clock::now(); }
  [[nodiscard]] double elapsed_seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace mpros
