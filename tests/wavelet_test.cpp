// Wavelet substrate tests: perfect reconstruction, orthogonality, features.

#include <gtest/gtest.h>

#include <cmath>

#include "mpros/common/rng.hpp"
#include "mpros/common/units.hpp"
#include "mpros/wavelet/dwt.hpp"
#include "mpros/wavelet/features.hpp"

namespace mpros::wavelet {
namespace {

class DwtFamilyTest : public ::testing::TestWithParam<Family> {};

TEST_P(DwtFamilyTest, FilterIsOrthonormal) {
  const std::span<const double> h = scaling_coefficients(GetParam());
  double sum_sq = 0.0, sum = 0.0;
  for (double v : h) {
    sum_sq += v * v;
    sum += v;
  }
  EXPECT_NEAR(sum_sq, 1.0, 1e-12);
  EXPECT_NEAR(sum, std::numbers::sqrt2, 1e-10);
}

TEST_P(DwtFamilyTest, SingleStepRoundTrip) {
  Rng rng(11);
  std::vector<double> x(128);
  for (double& v : x) v = rng.uniform(-1, 1);
  const DwtLevel level = dwt_step(x, GetParam());
  const std::vector<double> back =
      idwt_step(level.approx, level.detail, GetParam());
  ASSERT_EQ(back.size(), x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(back[i], x[i], 1e-10);
  }
}

TEST_P(DwtFamilyTest, MultiLevelPerfectReconstruction) {
  Rng rng(12);
  std::vector<double> x(256);
  for (double& v : x) v = rng.uniform(-1, 1);
  const Decomposition d = decompose(x, GetParam(), 5);
  EXPECT_EQ(d.levels(), 5u);
  const std::vector<double> back = reconstruct(d);
  ASSERT_EQ(back.size(), x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(back[i], x[i], 1e-9);
  }
}

TEST_P(DwtFamilyTest, EnergyPreserved) {
  Rng rng(13);
  std::vector<double> x(512);
  for (double& v : x) v = rng.uniform(-1, 1);
  const Decomposition d = decompose(x, GetParam(), 4);

  double ex = 0.0;
  for (double v : x) ex += v * v;
  double ed = 0.0;
  for (const auto& detail : d.details) {
    for (double v : detail) ed += v * v;
  }
  for (double v : d.approx) ed += v * v;
  EXPECT_NEAR(ex, ed, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, DwtFamilyTest,
                         ::testing::Values(Family::Haar, Family::Db2,
                                           Family::Db4),
                         [](const auto& inst) {
                           return to_string(inst.param);
                         });

TEST(DwtTest, HaarAveragesAndDifferences) {
  const std::vector<double> x = {1.0, 3.0, 5.0, 7.0};
  const DwtLevel level = dwt_step(x, Family::Haar);
  // Haar approx = (a+b)/sqrt(2).
  EXPECT_NEAR(level.approx[0], 4.0 / std::numbers::sqrt2, 1e-12);
  EXPECT_NEAR(level.approx[1], 12.0 / std::numbers::sqrt2, 1e-12);
  EXPECT_NEAR(level.detail[0], -2.0 / std::numbers::sqrt2, 1e-12);
}

TEST(DwtTest, MaxLevels) {
  EXPECT_EQ(max_levels(256), 8u);
  EXPECT_EQ(max_levels(96), 5u);  // 96 = 2^5 * 3
  EXPECT_EQ(max_levels(7), 0u);
}

TEST(WaveletFeatureTest, EnergyMapSumsToOne) {
  Rng rng(14);
  std::vector<double> x(256);
  for (double& v : x) v = rng.uniform(-1, 1);
  const Decomposition d = decompose(x, Family::Db4, 4);
  const std::vector<double> map = energy_map(d);
  ASSERT_EQ(map.size(), 5u);
  double sum = 0.0;
  for (double p : map) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(WaveletFeatureTest, LowFrequencyConcentratesInApprox) {
  std::vector<double> x(512);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = std::sin(kTwoPi * 2.0 * static_cast<double>(i) / 512.0);
  }
  const Decomposition d = decompose(x, Family::Db4, 5);
  const std::vector<double> map = energy_map(d);
  EXPECT_GT(map.back(), 0.8);  // approximation holds most energy
}

TEST(WaveletFeatureTest, TransientConcentratesInFineScales) {
  std::vector<double> x(512, 0.0);
  x[200] = 1.0;  // single impulse
  const Decomposition d = decompose(x, Family::Db4, 5);
  const std::vector<double> map = energy_map(d);
  // Finest two detail scales carry the bulk of an impulse.
  EXPECT_GT(map[0] + map[1], 0.6);
}

TEST(WaveletFeatureTest, EntropyOrdersByConcentration) {
  // Impulse (spread across scales) vs pure low tone (concentrated).
  std::vector<double> impulse(256, 0.0);
  impulse[100] = 1.0;
  std::vector<double> tone(256);
  for (std::size_t i = 0; i < tone.size(); ++i) {
    tone[i] = std::sin(kTwoPi * 2.0 * static_cast<double>(i) / 256.0);
  }
  const double h_impulse =
      energy_entropy(decompose(impulse, Family::Db4, 5));
  const double h_tone = energy_entropy(decompose(tone, Family::Db4, 5));
  EXPECT_GT(h_impulse, h_tone);
}

TEST(WaveletFeatureTest, FeatureVectorShape) {
  std::vector<double> x(256, 0.5);
  const std::vector<double> f = wavelet_feature_vector(x, Family::Haar, 4);
  EXPECT_EQ(f.size(), 4u + 1u + 1u);  // details + approx + entropy
}

TEST(WaveletFeatureTest, PeakMapTracksImpulseStrength) {
  std::vector<double> weak(256, 0.0), strong(256, 0.0);
  weak[64] = 0.1;
  strong[64] = 2.0;
  const auto pw = peak_map(decompose(weak, Family::Db2, 3));
  const auto ps = peak_map(decompose(strong, Family::Db2, 3));
  for (std::size_t i = 0; i < pw.size(); ++i) EXPECT_GT(ps[i], pw[i]);
}

}  // namespace
}  // namespace mpros::wavelet
