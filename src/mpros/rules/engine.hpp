#pragma once
// The frame-based rule engine (DLI expert system substitute).
//
// A Rule is a frame for one failure mode: a set of evidence clauses, each
// grading one feature onto [0,1] between a "warn" and an "alarm" level,
// optionally *gated* by a process parameter. Gating realizes §6.1's example:
// "the DLI expert system rule for bearing looseness can be sensitized to
// available load indicators ... so that a false positive bearing looseness
// call is not made when the compressor enters a low load period."
//
// The severity score is the weighted mean of clause evidences; required
// clauses must individually exceed the warn level for the rule to fire.

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "mpros/domain/failure_modes.hpp"
#include "mpros/rules/believability.hpp"
#include "mpros/rules/features.hpp"
#include "mpros/rules/severity.hpp"

namespace mpros::rules {

/// Gate: the clause contributes only while `feature` lies inside
/// [min_value, max_value]; outside, the clause is excluded from the score
/// (both numerator and denominator).
struct Gate {
  std::string feature;
  double min_value = -1e300;
  double max_value = 1e300;
};

struct Clause {
  std::string feature;
  /// Evidence ramps 0 -> 1 as the value moves from `warn` to `alarm`.
  /// warn > alarm makes the ramp downward ("low oil pressure is bad").
  double warn = 0.0;
  double alarm = 1.0;
  double weight = 1.0;
  bool required = false;  ///< must exceed 0 evidence for the rule to fire
  std::optional<Gate> gate;
  std::string describe;  ///< explanation fragment, e.g. "1x order elevated"
};

struct Rule {
  domain::FailureMode mode{};
  std::string name;
  std::vector<Clause> clauses;
  double fire_threshold = 0.20;  ///< min severity to report
  std::string recommendation;
};

/// One fired rule: the §7.2 diagnostic payload before protocol packaging.
struct Diagnosis {
  domain::FailureMode mode{};
  double severity = 0.0;  ///< 0..1 per §7.2 field 4
  Gradient gradient = Gradient::None;
  double belief = 1.0;  ///< 0..1 per §7.2 field 5
  std::string explanation;
  std::string recommendation;
  std::vector<PrognosticPoint> prognosis;
};

/// Evidence contribution of a single clause on a frame, in [0,1]; nullopt if
/// the clause is gated out or the feature is missing.
[[nodiscard]] std::optional<double> clause_evidence(const Clause& clause,
                                                    const FeatureFrame& frame);

class RuleEngine {
 public:
  explicit RuleEngine(std::vector<Rule> rulebase,
                      GradientThresholds thresholds = {});

  /// Evaluate every rule against a frame. Fired rules come back ordered by
  /// descending severity, with believability factors from `beliefs`.
  [[nodiscard]] std::vector<Diagnosis> evaluate(
      const FeatureFrame& frame, const BelievabilityTable& beliefs) const;

  [[nodiscard]] const std::vector<Rule>& rulebase() const { return rules_; }

 private:
  std::vector<Rule> rules_;
  GradientThresholds thresholds_;
};

}  // namespace mpros::rules
