file(REMOVE_RECURSE
  "CMakeFiles/chiller_fleet.dir/chiller_fleet.cpp.o"
  "CMakeFiles/chiller_fleet.dir/chiller_fleet.cpp.o.d"
  "chiller_fleet"
  "chiller_fleet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chiller_fleet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
