#include "mpros/pdme/shard_executor.hpp"

#include <algorithm>
#include <iterator>
#include <string>

#include "mpros/common/assert.hpp"
#include "mpros/common/rng.hpp"
#include "mpros/telemetry/metrics.hpp"

namespace mpros::pdme {

namespace {

struct ShardMetrics {
  telemetry::Histogram& queue_wait_us;

  static ShardMetrics& instance() {
    static auto& reg = telemetry::Registry::instance();
    static ShardMetrics m{reg.histogram("pdme.shard_queue_wait_us")};
    return m;
  }
};

}  // namespace

ShardExecutor::ShardExecutor(const PdmeConfig& cfg,
                             const std::atomic<bool>& retest_enabled)
    : deduplicate_(cfg.deduplicate), retest_enabled_(retest_enabled) {
  MPROS_EXPECTS(cfg.shard_count >= 1);
  auto& reg = telemetry::Registry::instance();
  shards_.reserve(cfg.shard_count);
  for (std::size_t i = 0; i < cfg.shard_count; ++i) {
    shards_.push_back(std::make_unique<Shard>(
        cfg, reg.gauge("pdme.shard" + std::to_string(i) + ".depth")));
  }
  for (auto& shard : shards_) {
    Shard* s = shard.get();
    s->worker = std::thread([this, s] { worker_loop(*s); });
  }
}

ShardExecutor::~ShardExecutor() {
  for (auto& shard : shards_) shard->queue.close();
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
}

std::size_t ShardExecutor::shard_of(ObjectId machine) const {
  return static_cast<std::size_t>(splitmix64(machine.value()) %
                                  shards_.size());
}

ShardExecutor::SubmitResult ShardExecutor::submit(
    const net::FailureReport& report, std::uint64_t order, bool needs_post) {
  Shard& s = *shards_[shard_of(report.sensed_object)];
  {
    std::lock_guard lock(barrier_mu_);
    ++submitted_;
  }
  const auto pushed = s.queue.push(ShardTask{
      report, order, needs_post, std::chrono::steady_clock::now()});
  if (pushed.evicted || !pushed.accepted) {
    // An evicted (or shutdown-rejected) task never reaches the worker;
    // retire it here so quiesce() still converges.
    retire_one();
  }
  s.depth.set(static_cast<double>(s.queue.size()));
  return SubmitResult{pushed.accepted, pushed.was_full, pushed.evicted};
}

void ShardExecutor::retire_one() {
  {
    std::lock_guard lock(barrier_mu_);
    ++retired_;
  }
  barrier_cv_.notify_all();
}

void ShardExecutor::worker_loop(Shard& shard) {
  while (auto task = shard.queue.pop()) {
    shard.depth.set(static_cast<double>(shard.queue.size()));
    ShardMetrics::instance().queue_wait_us.observe(
        static_cast<double>(std::chrono::duration_cast<std::chrono::microseconds>(
                                std::chrono::steady_clock::now() -
                                task->enqueued)
                                .count()));
    {
      std::lock_guard lock(shard.mu);
      if (task->needs_post && deduplicate_ &&
          !shard.core.mark_seen(report_signature(task->report))) {
        shard.core.count_duplicate();
      } else {
        if (task->needs_post) {
          shard.pending_posts.push_back(
              PendingPost{task->report, task->order});
        }
        shard.core.fuse(task->report, task->order,
                        retest_enabled_.load(std::memory_order_relaxed));
      }
    }
    retire_one();
  }
}

void ShardExecutor::quiesce() {
  std::unique_lock lock(barrier_mu_);
  barrier_cv_.wait(lock, [&] { return retired_ == submitted_; });
}

std::vector<PendingPost> ShardExecutor::take_pending_posts() {
  std::vector<PendingPost> out;
  for (auto& shard : shards_) {
    std::lock_guard lock(shard->mu);
    out.insert(out.end(),
               std::make_move_iterator(shard->pending_posts.begin()),
               std::make_move_iterator(shard->pending_posts.end()));
    shard->pending_posts.clear();
  }
  std::sort(out.begin(), out.end(),
            [](const PendingPost& a, const PendingPost& b) {
              return a.order < b.order;
            });
  return out;
}

std::vector<PendingRetest> ShardExecutor::take_pending_retests() {
  std::vector<PendingRetest> out;
  for (auto& shard : shards_) {
    std::lock_guard lock(shard->mu);
    auto batch = shard->core.take_pending_retests();
    out.insert(out.end(), batch.begin(), batch.end());
  }
  std::sort(out.begin(), out.end(),
            [](const PendingRetest& a, const PendingRetest& b) {
              return a.order < b.order;
            });
  return out;
}

}  // namespace mpros::pdme
