// Durability layer tests: WAL group commit, snapshot/checkpoint, crash
// recovery, and exhaustive torn-tail fuzz (truncation at every byte offset,
// single-byte corruption) — plus rollback-vs-shadow property scripts.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <optional>
#include <random>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "mpros/db/durable.hpp"
#include "mpros/db/snapshot.hpp"
#include "mpros/db/wal.hpp"
#include "mpros/telemetry/metrics.hpp"

namespace mpros::db {
namespace {

namespace fs = std::filesystem;

/// Fresh directory under the system temp root, unique per test and process
/// (ctest runs tests in parallel), removed on teardown.
class TempDir {
 public:
  TempDir() {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    path_ = fs::temp_directory_path() /
            (std::string("mpros_dur_") + info->test_suite_name() + "_" +
             info->name() + "_" + std::to_string(::getpid()));
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~TempDir() { fs::remove_all(path_); }

  [[nodiscard]] std::string str() const { return path_.string(); }
  [[nodiscard]] const fs::path& path() const { return path_; }

 private:
  fs::path path_;
};

TableSchema crew_schema() {
  return TableSchema{"crew",
                     {ColumnDef{"id", ValueType::Integer, false},
                      ColumnDef{"name", ValueType::Text, false},
                      ColumnDef{"rank", ValueType::Integer, true},
                      ColumnDef{"score", ValueType::Real, true}}};
}

DurabilityConfig config_for(const TempDir& dir) {
  DurabilityConfig cfg;
  cfg.directory = dir.str();
  cfg.checkpoint_bytes = 0;  // explicit checkpoints only, unless a test asks
  return cfg;
}

std::vector<std::uint8_t> read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in),
          std::istreambuf_iterator<char>()};
}

void write_file(const fs::path& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

/// Canonical fingerprint of a database's full contents (wal_seq pinned so
/// only the tables matter).
std::vector<std::uint8_t> fingerprint(const Database& db) {
  return encode_snapshot(db, 0);
}

// --- Group commit & reopen ---------------------------------------------------

TEST(DurableDatabaseTest, CommittedStateSurvivesReopen) {
  TempDir dir;
  Database shadow;
  shadow.create_table(crew_schema());
  shadow.insert_auto("crew", {Value("ada"), Value(std::int64_t{3}),
                              Value(0.9)});
  shadow.insert_auto("crew", {Value("bo"), Value(), Value()});

  {
    DurableDatabase durable(config_for(dir));
    durable.db().create_table(crew_schema());
    durable.db().insert_auto("crew", {Value("ada"), Value(std::int64_t{3}),
                                      Value(0.9)});
    durable.db().insert_auto("crew", {Value("bo"), Value(), Value()});
    EXPECT_TRUE(durable.commit());
  }  // crash: destructor does not flush

  DurableDatabase reopened(config_for(dir));
  EXPECT_EQ(reopened.recovery().commits_replayed, 1u);
  EXPECT_EQ(fingerprint(reopened.db()), fingerprint(shadow));
}

TEST(DurableDatabaseTest, UncommittedWindowIsGoneAfterCrash) {
  TempDir dir;
  {
    DurableDatabase durable(config_for(dir));
    durable.db().create_table(crew_schema());
    durable.db().insert_auto("crew", {Value("kept"), Value(), Value()});
    EXPECT_TRUE(durable.commit());
    // Buffered but never committed: lost by design.
    durable.db().insert_auto("crew", {Value("lost"), Value(), Value()});
  }
  DurableDatabase reopened(config_for(dir));
  EXPECT_EQ(reopened.db().table("crew").row_count(), 1u);
  EXPECT_EQ((*reopened.db().table("crew").find(1))[1].as_text(), "kept");
}

TEST(DurableDatabaseTest, GroupCommitIsOneFsyncPerWindow) {
  TempDir dir;
  DurableDatabase durable(config_for(dir));
  durable.db().create_table(crew_schema());
  for (int i = 0; i < 100; ++i) {
    durable.db().insert_auto(
        "crew", {Value("r" + std::to_string(i)), Value(), Value()});
  }
  EXPECT_TRUE(durable.commit());
  // 101 records (create_table + 100 inserts), ONE commit frame, ONE fsync.
  EXPECT_EQ(durable.wal_stats().records, 101u);
  EXPECT_EQ(durable.wal_stats().commits, 1u);
  EXPECT_EQ(durable.wal_stats().fsyncs, 1u);
  // An empty window costs nothing.
  EXPECT_TRUE(durable.commit());
  EXPECT_EQ(durable.wal_stats().fsyncs, 1u);
}

TEST(DurableDatabaseTest, RegistersTelemetryCounters) {
  auto& reg = telemetry::Registry::instance();
  const std::uint64_t commits_before = reg.counter("wal.commits").value();
  const std::uint64_t records_before = reg.counter("wal.records").value();
  const std::uint64_t fsyncs_before = reg.counter("wal.fsyncs").value();

  TempDir dir;
  {
    DurableDatabase durable(config_for(dir));
    durable.db().create_table(crew_schema());
    durable.db().insert_auto("crew", {Value("x"), Value(), Value()});
    EXPECT_TRUE(durable.commit());
  }
  EXPECT_EQ(reg.counter("wal.commits").value(), commits_before + 1);
  EXPECT_EQ(reg.counter("wal.records").value(), records_before + 2);
  EXPECT_EQ(reg.counter("wal.fsyncs").value(), fsyncs_before + 1);

  const std::uint64_t replayed_before =
      reg.counter("wal.replayed_records").value();
  DurableDatabase reopened(config_for(dir));
  EXPECT_EQ(reg.counter("wal.replayed_records").value(), replayed_before + 2);
}

TEST(DurableDatabaseTest, TransactionRollbackLeavesNoTraceOnDisk) {
  TempDir dir;
  Database shadow;
  shadow.create_table(crew_schema());
  shadow.insert_auto("crew", {Value("base"), Value(), Value()});
  shadow.insert_auto("crew", {Value("after"), Value(), Value()});

  {
    DurableDatabase durable(config_for(dir));
    durable.db().create_table(crew_schema());
    durable.db().insert_auto("crew", {Value("base"), Value(), Value()});

    durable.db().begin();
    durable.db().insert_auto("crew", {Value("phantom"), Value(), Value()});
    durable.db().update("crew", 1, "name", Value("mutated"));
    durable.db().erase("crew", 1);
    durable.db().rollback();

    // Post-rollback, the auto key the phantom consumed is reissued — the
    // durable stream must reproduce that counter exactly on replay.
    durable.db().insert_auto("crew", {Value("after"), Value(), Value()});
    EXPECT_TRUE(durable.commit());
  }

  DurableDatabase reopened(config_for(dir));
  EXPECT_EQ(fingerprint(reopened.db()), fingerprint(shadow));
  EXPECT_TRUE(reopened.db().integrity_violations().empty());
}

// --- Snapshot & checkpoint ---------------------------------------------------

TEST(SnapshotTest, EncodeIsDeterministicAndRoundTrips) {
  Database db;
  db.create_table(crew_schema());
  db.create_index("crew", "name");
  db.insert_auto("crew", {Value("ada"), Value(std::int64_t{1}), Value(2.5)});
  db.insert_auto("crew", {Value("bo"), Value(), Value()});
  db.create_table(TableSchema{
      "log", {ColumnDef{"id", ValueType::Integer, false},
              ColumnDef{"note", ValueType::Text, false}}});
  db.insert("log", {Value(std::int64_t{42}), Value("hello")});

  const auto bytes = encode_snapshot(db, 7);
  EXPECT_EQ(bytes, encode_snapshot(db, 7));  // deterministic

  const auto decoded = decode_snapshot(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->wal_seq, 7u);
  EXPECT_EQ(encode_snapshot(decoded->db, 7), bytes);  // fixed point
  // Secondary indexes and auto-key counters survive.
  EXPECT_EQ(decoded->db.table("crew").lookup("name", Value("bo")).size(), 1u);
  EXPECT_EQ(decoded->db.table("crew").next_auto_key(),
            db.table("crew").next_auto_key());
}

TEST(SnapshotTest, EveryProperPrefixFailsToDecode) {
  Database db;
  db.create_table(crew_schema());
  db.insert_auto("crew", {Value("ada"), Value(std::int64_t{1}), Value(0.5)});
  const auto bytes = encode_snapshot(db, 3);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const std::vector<std::uint8_t> prefix(bytes.begin(),
                                           bytes.begin() + len);
    EXPECT_FALSE(decode_snapshot(prefix).has_value()) << "prefix len " << len;
  }
  // Trailing garbage is rejected too.
  auto padded = bytes;
  padded.push_back(0);
  EXPECT_FALSE(decode_snapshot(padded).has_value());
}

TEST(DurableDatabaseTest, CheckpointCompactsLogAndPreservesState) {
  TempDir dir;
  std::vector<std::uint8_t> before;
  std::uint64_t wal_after_checkpoint = 0;
  {
    DurableDatabase durable(config_for(dir));
    durable.db().create_table(crew_schema());
    for (int i = 0; i < 50; ++i) {
      durable.db().insert_auto(
          "crew", {Value("r" + std::to_string(i)), Value(), Value()});
      EXPECT_TRUE(durable.commit());
    }
    const std::uint64_t wal_before = durable.wal_bytes();
    before = fingerprint(durable.db());
    EXPECT_TRUE(durable.checkpoint());
    wal_after_checkpoint = durable.wal_bytes();
    EXPECT_LT(wal_after_checkpoint, wal_before);
  }
  DurableDatabase reopened(config_for(dir));
  EXPECT_TRUE(reopened.recovery().snapshot_loaded);
  EXPECT_EQ(reopened.recovery().commits_replayed, 0u);
  EXPECT_EQ(fingerprint(reopened.db()), before);

  // And the snapshot+tail composition: more commits after the checkpoint
  // replay on top of the snapshot.
  reopened.db().insert_auto("crew", {Value("tail"), Value(), Value()});
  EXPECT_TRUE(reopened.commit());
  DurableDatabase again(config_for(dir));
  EXPECT_TRUE(again.recovery().snapshot_loaded);
  EXPECT_EQ(again.recovery().commits_replayed, 1u);
  EXPECT_EQ(again.db().table("crew").row_count(), 51u);
}

TEST(DurableDatabaseTest, AutoCheckpointByCommitCount) {
  TempDir dir;
  DurabilityConfig cfg = config_for(dir);
  cfg.checkpoint_commits = 4;
  DurableDatabase durable(cfg);
  durable.db().create_table(crew_schema());
  for (int i = 0; i < 4; ++i) {
    durable.db().insert_auto("crew", {Value("x"), Value(), Value()});
    EXPECT_TRUE(durable.commit());
  }
  // The fourth commit triggered snapshot + log compaction.
  EXPECT_TRUE(fs::exists(DurableDatabase::snapshot_path(dir.str())));
  DurableDatabase reopened(cfg);
  EXPECT_TRUE(reopened.recovery().snapshot_loaded);
  EXPECT_EQ(reopened.db().table("crew").row_count(), 4u);
}

TEST(DurableDatabaseTest, CorruptSnapshotFailsSoftToEmpty) {
  TempDir dir;
  {
    DurableDatabase durable(config_for(dir));
    durable.db().create_table(crew_schema());
    durable.db().insert_auto("crew", {Value("x"), Value(), Value()});
    EXPECT_TRUE(durable.commit());
    EXPECT_TRUE(durable.checkpoint());
  }
  // Tear the snapshot (every proper prefix fails to decode): recovery must
  // not abort — it falls back to an empty store (the compacted WAL no
  // longer re-derives state on its own).
  const auto snap = read_file(DurableDatabase::snapshot_path(dir.str()));
  ASSERT_GT(snap.size(), 16u);
  write_file(DurableDatabase::snapshot_path(dir.str()),
             {snap.begin(),
              snap.begin() + static_cast<std::ptrdiff_t>(snap.size() - 3)});
  DurableDatabase reopened(config_for(dir));
  EXPECT_FALSE(reopened.recovery().snapshot_loaded);
}

// --- Exhaustive WAL-tail fuzz ------------------------------------------------

/// Build a reference run in `dir` and return the fingerprint after each
/// commit (index 0 = empty store), so fuzzed recoveries can be checked for
/// the prefix property: whatever the mutilation, the recovered state IS one
/// of the states that was once group-committed.
std::vector<std::vector<std::uint8_t>> build_reference_run(TempDir& dir) {
  std::vector<std::vector<std::uint8_t>> states;
  states.push_back(fingerprint(Database{}));

  DurableDatabase durable(config_for(dir));
  Database& db = durable.db();

  db.create_table(crew_schema());
  db.create_index("crew", "name");
  db.insert_auto("crew", {Value("ada"), Value(std::int64_t{1}), Value(0.1)});
  EXPECT_TRUE(durable.commit());
  states.push_back(fingerprint(db));

  db.insert_auto("crew", {Value("bo"), Value(std::int64_t{2}), Value()});
  db.insert_auto("crew", {Value("cy"), Value(), Value(2.5)});
  EXPECT_TRUE(durable.commit());
  states.push_back(fingerprint(db));

  db.update("crew", 1, "score", Value(0.9));
  db.erase("crew", 2);
  EXPECT_TRUE(durable.commit());
  states.push_back(fingerprint(db));

  db.create_table(TableSchema{
      "log", {ColumnDef{"id", ValueType::Integer, false},
              ColumnDef{"note", ValueType::Text, false}}});
  db.insert("log", {Value(std::int64_t{7}), Value("last")});
  EXPECT_TRUE(durable.commit());
  states.push_back(fingerprint(db));
  return states;
}

TEST(WalFuzzTest, TruncationAtEveryOffsetRecoversACommittedPrefix) {
  TempDir dir;
  const auto states = build_reference_run(dir);
  const std::set<std::vector<std::uint8_t>> valid(states.begin(),
                                                  states.end());
  const auto wal = read_file(DurableDatabase::wal_path(dir.str()));
  ASSERT_GT(wal.size(), 16u);

  TempDir scratch;
  std::size_t full_prefixes = 0;
  for (std::size_t len = 0; len <= wal.size(); ++len) {
    write_file(DurableDatabase::wal_path(scratch.str()),
               {wal.begin(), wal.begin() + static_cast<std::ptrdiff_t>(len)});
    DurableDatabase recovered(config_for(scratch));
    const auto got = fingerprint(recovered.db());
    ASSERT_TRUE(valid.count(got) == 1) << "truncation at byte " << len;
    if (got == states.back()) ++full_prefixes;
    // Monotone: dropping bytes never recovers MORE commits.
    ASSERT_LE(recovered.recovery().commits_replayed, states.size() - 1);
  }
  // Only the untouched file (and nothing shorter) yields the final state.
  EXPECT_EQ(full_prefixes, 1u);
}

TEST(WalFuzzTest, SingleByteCorruptionAtEveryOffsetRecoversAPrefix) {
  TempDir dir;
  const auto states = build_reference_run(dir);
  const std::set<std::vector<std::uint8_t>> valid(states.begin(),
                                                  states.end());
  const auto wal = read_file(DurableDatabase::wal_path(dir.str()));

  TempDir scratch;
  for (std::size_t pos = 0; pos < wal.size(); ++pos) {
    auto mutated = wal;
    mutated[pos] ^= 0x5A;
    write_file(DurableDatabase::wal_path(scratch.str()), mutated);
    DurableDatabase recovered(config_for(scratch));
    ASSERT_TRUE(valid.count(fingerprint(recovered.db())) == 1)
        << "corruption at byte " << pos;
    ASSERT_TRUE(recovered.db().integrity_violations().empty())
        << "corruption at byte " << pos;
  }
}

TEST(WalFuzzTest, RecoveryTruncatesTornTailAndKeepsAppending) {
  TempDir dir;
  const auto states = build_reference_run(dir);
  const auto wal = read_file(DurableDatabase::wal_path(dir.str()));

  // Tear the last frame in half, recover, then commit NEW work on top; the
  // log stays coherent (reopen number two sees old prefix + new commit).
  write_file(DurableDatabase::wal_path(dir.str()),
             {wal.begin(),
              wal.begin() + static_cast<std::ptrdiff_t>(wal.size() - 9)});
  std::vector<std::uint8_t> expected;
  {
    DurableDatabase recovered(config_for(dir));
    EXPECT_GT(recovered.recovery().truncated_bytes, 0u);
    recovered.db().insert_auto("crew",
                               {Value("fresh"), Value(), Value()});
    EXPECT_TRUE(recovered.commit());
    expected = fingerprint(recovered.db());
  }
  DurableDatabase reopened(config_for(dir));
  EXPECT_EQ(fingerprint(reopened.db()), expected);
}

// --- Rollback-under-interleaving property scripts ----------------------------

TEST(DurabilityPropertyTest, ScriptedInterleavingsMatchShadowAndSurviveCrash) {
  TempDir dir;
  std::mt19937_64 rng(0x5417C0FFEEULL);
  const auto pick_key = [&](const Database& db) -> std::int64_t {
    const auto& rows = db.table("crew").rows();
    if (rows.empty()) return -1;
    auto it = rows.begin();
    std::advance(it, static_cast<std::ptrdiff_t>(rng() % rows.size()));
    return it->first;
  };

  Database shadow;
  shadow.create_table(crew_schema());
  std::vector<std::uint8_t> committed;  // fingerprint at the last commit()

  {
    DurableDatabase durable(config_for(dir));
    durable.db().create_table(crew_schema());

    for (int round = 0; round < 60; ++round) {
      const bool in_txn = rng() % 3 == 0;
      const bool roll_back = in_txn && rng() % 2 == 0;
      if (in_txn) durable.db().begin();

      // Script the round's ops concretely so the keeper replay into the
      // shadow uses identical keys/values.
      const int op_count = 1 + static_cast<int>(rng() % 4);
      for (int o = 0; o < op_count; ++o) {
        switch (rng() % 3) {
          case 0: {
            Row row{Value("p" + std::to_string(rng() % 100)),
                    Value(static_cast<std::int64_t>(rng() % 10)),
                    Value(static_cast<double>(rng() % 1000) / 8.0)};
            durable.db().insert_auto("crew", row);
            if (!roll_back) shadow.insert_auto("crew", row);
            break;
          }
          case 1: {
            const std::int64_t key = pick_key(durable.db());
            if (key < 0) break;
            const Value v(static_cast<std::int64_t>(rng() % 10));
            durable.db().update("crew", key, "rank", v);
            if (!roll_back) shadow.update("crew", key, "rank", v);
            break;
          }
          case 2: {
            const std::int64_t key = pick_key(durable.db());
            if (key < 0) break;
            durable.db().erase("crew", key);
            if (!roll_back) shadow.erase("crew", key);
            break;
          }
        }
      }

      if (in_txn) {
        if (roll_back) {
          durable.db().rollback();
        } else {
          durable.db().commit();
        }
      }
      // Rolled-back work must be invisible — live AND in what the journal
      // recorded — and indexes must be coherent after every round.
      ASSERT_EQ(fingerprint(durable.db()), fingerprint(shadow))
          << "round " << round;
      ASSERT_TRUE(durable.db().integrity_violations().empty());

      if (rng() % 4 == 0) {
        ASSERT_TRUE(durable.commit());
        committed = fingerprint(durable.db());
      }
    }
    ASSERT_TRUE(durable.commit());
    committed = fingerprint(durable.db());
  }  // crash

  DurableDatabase recovered(config_for(dir));
  EXPECT_EQ(fingerprint(recovered.db()), committed);
  EXPECT_EQ(fingerprint(recovered.db()), fingerprint(shadow));
  EXPECT_TRUE(recovered.db().integrity_violations().empty());
}

}  // namespace
}  // namespace mpros::db
