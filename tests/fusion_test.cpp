// Knowledge-fusion tests. E1 (the paper's Dempster-Shafer worked example)
// and E2 (the prognostic fusion examples) live here, alongside property
// tests on the algebra.

#include <gtest/gtest.h>

#include <cmath>

#include "mpros/common/rng.hpp"
#include "mpros/fusion/bayes_net.hpp"
#include "mpros/fusion/dempster_shafer.hpp"
#include "mpros/fusion/diagnostic_fusion.hpp"
#include "mpros/fusion/hazard.hpp"
#include "mpros/fusion/prognostic_fusion.hpp"

namespace mpros::fusion {
namespace {

using domain::FailureMode;
using domain::LogicalGroup;

// --- E1: the paper's §5.3 worked example ------------------------------------

TEST(DempsterShaferTest, PaperWorkedExampleE1) {
  // "given a belief of 40% that A will occur and another belief of 75% that
  // B or C will occur, it will [be] concluded that A is 14% likely, 'B or
  // C' is 64% likely and there is 22% of belief assigned to unknown
  // possibilities."
  const FrameOfDiscernment frame({"A", "B", "C"});
  const HypothesisSet a = frame.singleton(0);
  const HypothesisSet bc = frame.singleton(1) | frame.singleton(2);

  const MassFunction m1 = MassFunction::simple_support(frame, a, 0.40);
  const MassFunction m2 = MassFunction::simple_support(frame, bc, 0.75);
  const CombinationResult result = combine(m1, m2);

  EXPECT_NEAR(result.fused.mass(a), 0.142857, 1e-5);
  EXPECT_NEAR(result.fused.mass(bc), 0.642857, 1e-5);
  EXPECT_NEAR(result.fused.unknown(), 0.214286, 1e-5);
  EXPECT_NEAR(result.conflict, 0.30, 1e-12);

  // Rounded to the paper's two digits: 14%, 64%, 22%.
  EXPECT_EQ(std::round(result.fused.mass(a) * 100.0), 14.0);
  EXPECT_EQ(std::round(result.fused.mass(bc) * 100.0), 64.0);
  EXPECT_EQ(std::round(result.fused.unknown() * 100.0), 21.0);
}

TEST(DempsterShaferTest, MassesSumToOne) {
  const FrameOfDiscernment frame({"x", "y", "z"});
  Rng rng(21);
  MassFunction acc = MassFunction::vacuous(frame);
  for (int i = 0; i < 10; ++i) {
    const HypothesisSet focus = static_cast<HypothesisSet>(
        rng.integer(1, frame.theta()));
    acc = combine(acc, MassFunction::simple_support(frame, focus,
                                                    rng.uniform(0.0, 0.95)))
              .fused;
    double total = 0.0;
    for (const auto& [set, mass] : acc.focal_elements()) total += mass;
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(DempsterShaferTest, CombinationIsCommutative) {
  const FrameOfDiscernment frame({"x", "y", "z"});
  const MassFunction m1 =
      MassFunction::simple_support(frame, frame.singleton(0), 0.6);
  const MassFunction m2 = MassFunction::simple_support(
      frame, frame.singleton(1) | frame.singleton(2), 0.8);
  const MassFunction ab = combine(m1, m2).fused;
  const MassFunction ba = combine(m2, m1).fused;
  for (const auto& [set, mass] : ab.focal_elements()) {
    EXPECT_NEAR(ba.mass(set), mass, 1e-12);
  }
}

TEST(DempsterShaferTest, VacuousIsIdentity) {
  const FrameOfDiscernment frame({"x", "y"});
  const MassFunction m =
      MassFunction::simple_support(frame, frame.singleton(0), 0.7);
  const CombinationResult r = combine(m, MassFunction::vacuous(frame));
  EXPECT_NEAR(r.conflict, 0.0, 1e-12);
  EXPECT_NEAR(r.fused.mass(frame.singleton(0)), 0.7, 1e-12);
}

TEST(DempsterShaferTest, ReinforcingEvidenceStrengthens) {
  const FrameOfDiscernment frame({"x", "y"});
  const MassFunction m =
      MassFunction::simple_support(frame, frame.singleton(0), 0.6);
  const MassFunction fused = combine(m, m).fused;
  EXPECT_GT(fused.belief(frame.singleton(0)), 0.6);
  EXPECT_NEAR(fused.belief(frame.singleton(0)), 1.0 - 0.4 * 0.4, 1e-12);
}

TEST(DempsterShaferTest, ConflictingCertaintiesFallBackToVacuous) {
  const FrameOfDiscernment frame({"x", "y"});
  const MassFunction m1 =
      MassFunction::simple_support(frame, frame.singleton(0), 1.0);
  const MassFunction m2 =
      MassFunction::simple_support(frame, frame.singleton(1), 1.0);
  const CombinationResult r = combine(m1, m2);
  EXPECT_NEAR(r.conflict, 1.0, 1e-12);
  EXPECT_NEAR(r.fused.unknown(), 1.0, 1e-12);
}

TEST(DempsterShaferTest, BeliefAndPlausibilityBracketMass) {
  const FrameOfDiscernment frame({"x", "y", "z"});
  const MassFunction m = combine(
      MassFunction::simple_support(frame, frame.singleton(0), 0.5),
      MassFunction::simple_support(
          frame, frame.singleton(0) | frame.singleton(1), 0.5)).fused;
  const HypothesisSet x = frame.singleton(0);
  EXPECT_LE(m.belief(x), m.plausibility(x));
  EXPECT_GE(m.plausibility(x), m.mass(x));
}

TEST(FrameTest, DescribeRendersSubsets) {
  const FrameOfDiscernment frame({"A", "B", "C"});
  EXPECT_EQ(frame.describe(frame.singleton(1)), "B");
  EXPECT_EQ(frame.describe(frame.singleton(0) | frame.singleton(2)), "A|C");
  EXPECT_EQ(frame.describe(frame.theta()), "Θ");
}

// --- Diagnostic fusion with logical groups (§5.3) ---------------------------

TEST(DiagnosticFusionTest, GroupsShareProbabilityIndependently) {
  DiagnosticFusion fusion;
  const ObjectId machine(42);

  // A bearing-group report must not touch the electrical group: "there can,
  // in fact, be several failures at one time".
  fusion.update(machine, FailureMode::MotorBearingWear, 0.8);
  fusion.update(machine, FailureMode::RotorBarDefect, 0.7);

  const GroupState bearing =
      fusion.state(machine, LogicalGroup::Bearing);
  const GroupState electrical =
      fusion.state(machine, LogicalGroup::Electrical);

  EXPECT_NEAR(bearing.modes[0].belief, 0.8, 1e-9);   // MotorBearingWear
  EXPECT_NEAR(electrical.modes[0].belief, 0.7, 1e-9);  // RotorBarDefect
  EXPECT_EQ(bearing.report_count, 1u);
  EXPECT_EQ(electrical.report_count, 1u);
}

TEST(DiagnosticFusionTest, ReinforcementWithinGroup) {
  DiagnosticFusion fusion;
  const ObjectId machine(1);
  fusion.update(machine, FailureMode::MotorBearingWear, 0.6);
  const GroupState after =
      fusion.update(machine, FailureMode::MotorBearingWear, 0.6);
  EXPECT_NEAR(after.modes[0].belief, 1.0 - 0.4 * 0.4, 1e-9);
  EXPECT_LT(after.unknown, 0.4);
}

TEST(DiagnosticFusionTest, ConflictWithinGroupSplitsBelief) {
  DiagnosticFusion fusion;
  const ObjectId machine(1);
  fusion.update(machine, FailureMode::MotorBearingWear, 0.7);
  const GroupState s =
      fusion.update(machine, FailureMode::CompressorBearingWear, 0.7);
  // Both suspect, neither dominant, and the combination recorded conflict.
  EXPECT_GT(s.last_conflict, 0.0);
  const double b0 = s.modes[0].belief;  // MotorBearingWear
  const double b1 = s.modes[1].belief;  // CompressorBearingWear
  EXPECT_NEAR(b0, b1, 1e-9);
  EXPECT_GT(b0, 0.2);
  EXPECT_LT(b0, 0.7);
}

TEST(DiagnosticFusionTest, UnknownMassTracked) {
  DiagnosticFusion fusion;
  const ObjectId machine(1);
  const GroupState before = fusion.state(machine, LogicalGroup::Process);
  EXPECT_NEAR(before.unknown, 1.0, 1e-12);
  const GroupState after =
      fusion.update(machine, FailureMode::RefrigerantLeak, 0.75);
  EXPECT_NEAR(after.unknown, 0.25, 1e-9);
}

TEST(DiagnosticFusionTest, DisjunctiveEvidenceSupported) {
  DiagnosticFusion fusion;
  const ObjectId machine(1);
  const FailureMode set[] = {FailureMode::MotorBearingWear,
                             FailureMode::OilDegradation};
  const GroupState s = fusion.update_set(machine, set, 0.8);
  // Mass on the pair: each singleton has zero belief but 0.8 plausibility.
  EXPECT_NEAR(s.modes[0].belief, 0.0, 1e-12);
  EXPECT_NEAR(s.modes[0].plausibility, 1.0, 1e-12);
  const auto& frame = fusion.frame(LogicalGroup::Bearing);
  (void)frame;
}

TEST(DiagnosticFusionTest, MachinesAreIndependent) {
  DiagnosticFusion fusion;
  fusion.update(ObjectId(1), FailureMode::GearMeshWear, 0.9);
  const GroupState other =
      fusion.state(ObjectId(2), LogicalGroup::GearTrain);
  EXPECT_NEAR(other.unknown, 1.0, 1e-12);
}

TEST(DiagnosticFusionTest, ResetForgetsMachine) {
  DiagnosticFusion fusion;
  fusion.update(ObjectId(1), FailureMode::GearMeshWear, 0.9);
  fusion.reset(ObjectId(1));
  EXPECT_TRUE(fusion.states(ObjectId(1)).empty());
}

TEST(DiagnosticFusionTest, OrderInvariance) {
  // §5.1: inputs may arrive time-disordered; Dempster combination is
  // commutative/associative so fused state must not depend on order.
  DiagnosticFusion f1, f2;
  const ObjectId m(9);
  f1.update(m, FailureMode::MotorBearingWear, 0.5);
  f1.update(m, FailureMode::OilDegradation, 0.6);
  f1.update(m, FailureMode::MotorBearingWear, 0.4);

  f2.update(m, FailureMode::MotorBearingWear, 0.4);
  f2.update(m, FailureMode::OilDegradation, 0.6);
  f2.update(m, FailureMode::MotorBearingWear, 0.5);

  const GroupState s1 = f1.state(m, LogicalGroup::Bearing);
  const GroupState s2 = f2.state(m, LogicalGroup::Bearing);
  for (std::size_t i = 0; i < s1.modes.size(); ++i) {
    EXPECT_NEAR(s1.modes[i].belief, s2.modes[i].belief, 1e-9);
  }
  EXPECT_NEAR(s1.unknown, s2.unknown, 1e-9);
}

// --- E2: prognostic fusion (§5.4) -------------------------------------------

PrognosticVector months(std::initializer_list<std::pair<double, double>> pts) {
  std::vector<PrognosticPoint> v;
  for (const auto& [mo, p] : pts) {
    v.push_back({SimTime::from_months(mo), p});
  }
  return PrognosticVector(std::move(v));
}

TEST(PrognosticFusionTest, PaperExampleWeakSecondReportIgnoredE2) {
  // "((3 months, .01) (4 months, .5) (5 months, .99)) ... combine ...
  // ((4.5 months, .12)) then we will ignore the second report."
  const PrognosticVector a = months({{3, 0.01}, {4, 0.5}, {5, 0.99}});
  const PrognosticVector weak = months({{4.5, 0.12}});
  const PrognosticVector fused = fuse_conservative(a, weak);

  // The fused curve equals A everywhere A is defined.
  for (const double mo : {3.0, 3.5, 4.0, 4.5, 5.0}) {
    EXPECT_NEAR(fused.probability_at(SimTime::from_months(mo)),
                a.probability_at(SimTime::from_months(mo)), 1e-9)
        << "at " << mo << " months";
  }
}

TEST(PrognosticFusionTest, PaperExampleStrongSecondReportDominatesE2) {
  // "If, however, the second report indicates a much higher likelihood of
  // failure ((4.5 months, .95)) then this report would dominate, and the
  // extrapolation ... would indicate an even earlier demise ... than the
  // original which would be some time after 5 months."
  const PrognosticVector a = months({{3, 0.01}, {4, 0.5}, {5, 0.99}});
  const PrognosticVector strong = months({{4.5, 0.95}});
  const PrognosticVector fused = fuse_conservative(a, strong);

  EXPECT_NEAR(fused.probability_at(SimTime::from_months(4.5)), 0.95, 1e-9);

  const auto original_99 = a.time_to_probability(0.99);
  const auto fused_99 = fused.time_to_probability(0.99);
  ASSERT_TRUE(original_99.has_value());
  ASSERT_TRUE(fused_99.has_value());
  EXPECT_LT(fused_99->months(), original_99->months());
  EXPECT_NEAR(original_99->months(), 5.0, 0.01);
}

TEST(PrognosticVectorTest, InterpolatesLinearly) {
  const PrognosticVector v = months({{2, 0.2}, {4, 0.6}});
  EXPECT_NEAR(v.probability_at(SimTime::from_months(3)), 0.4, 1e-9);
  EXPECT_NEAR(v.probability_at(SimTime::from_months(1)), 0.1, 1e-9);
  EXPECT_NEAR(v.probability_at(SimTime(0)), 0.0, 1e-12);
}

TEST(PrognosticVectorTest, ExtrapolatesAlongLastSegmentClamped) {
  const PrognosticVector v = months({{2, 0.4}, {4, 0.8}});
  EXPECT_NEAR(v.probability_at(SimTime::from_months(5)), 1.0, 1e-9);
  // Single point: flat beyond.
  const PrognosticVector single = months({{3, 0.3}});
  EXPECT_NEAR(single.probability_at(SimTime::from_months(10)), 0.3, 1e-9);
}

TEST(PrognosticVectorTest, EnforcesMonotoneProbabilities) {
  const PrognosticVector v = months({{1, 0.5}, {2, 0.3}, {3, 0.9}});
  EXPECT_NEAR(v.probability_at(SimTime::from_months(2)), 0.5, 1e-9);
  EXPECT_NEAR(v.probability_at(SimTime::from_months(3)), 0.9, 1e-9);
}

TEST(PrognosticVectorTest, SortsUnorderedInput) {
  const PrognosticVector v = months({{4, 0.8}, {1, 0.1}, {2, 0.4}});
  EXPECT_NEAR(v.probability_at(SimTime::from_months(2)), 0.4, 1e-9);
}

TEST(PrognosticVectorTest, TimeToProbabilityInverts) {
  const PrognosticVector v = months({{2, 0.2}, {6, 0.9}});
  const auto t = v.time_to_probability(0.55);
  ASSERT_TRUE(t.has_value());
  EXPECT_NEAR(t->months(), 4.0, 0.01);
  EXPECT_FALSE(months({{2, 0.2}}).time_to_probability(0.9).has_value());
}

TEST(PrognosticFusionTest, FusionIsCommutativeAndIdempotent) {
  const PrognosticVector a = months({{1, 0.1}, {3, 0.6}});
  const PrognosticVector b = months({{2, 0.5}, {4, 0.7}});
  const PrognosticVector ab = fuse_conservative(a, b);
  const PrognosticVector ba = fuse_conservative(b, a);
  for (double mo = 0.5; mo <= 5.0; mo += 0.5) {
    const SimTime t = SimTime::from_months(mo);
    EXPECT_NEAR(ab.probability_at(t), ba.probability_at(t), 1e-9);
  }
  // Every reported constraint is honoured conservatively: the fused curve
  // is at least as pessimistic at each curve's own reported points.
  for (const PrognosticVector* v : {&a, &b}) {
    for (const PrognosticPoint& p : v->points()) {
      EXPECT_GE(ab.probability_at(p.horizon), p.probability - 1e-12);
    }
  }
  // Fusing the result with an input again changes nothing.
  const PrognosticVector again = fuse_conservative(ab, a);
  for (double mo = 0.5; mo <= 5.0; mo += 0.5) {
    const SimTime t = SimTime::from_months(mo);
    EXPECT_NEAR(again.probability_at(t), ab.probability_at(t), 1e-9);
  }
}

TEST(PrognosticFusionTest, FoldOverManyCurves) {
  std::vector<PrognosticVector> curves;
  curves.push_back(months({{1, 0.1}}));
  curves.push_back(months({{2, 0.6}}));
  curves.push_back(months({{3, 0.3}}));
  const PrognosticVector fused = fuse_conservative(curves);
  EXPECT_NEAR(fused.probability_at(SimTime::from_months(2)), 0.6, 1e-9);
}

// --- Bayesian-network extension (E12 substrate) ------------------------------

TEST(BayesNetTest, SprinklerStyleInference) {
  BayesNet net;
  const auto rain = net.add_node("rain", {"yes", "no"}, {0.2, 0.8});
  const auto wet = net.add_node(
      "wet", {"yes", "no"}, {rain},
      {0.9, 0.1,    // rain=yes
       0.15, 0.85}  // rain=no
  );
  const auto posterior = net.posterior(rain, {{wet, 0}});
  // P(rain|wet) = 0.2*0.9 / (0.2*0.9 + 0.8*0.15) = 0.6.
  EXPECT_NEAR(posterior[0], 0.6, 1e-9);
}

TEST(BayesNetTest, NoEvidenceReturnsPrior) {
  BayesNet net;
  const auto n = net.add_node("n", {"a", "b", "c"}, {0.5, 0.3, 0.2});
  const auto p = net.posterior(n, {});
  EXPECT_NEAR(p[0], 0.5, 1e-12);
  EXPECT_NEAR(p[2], 0.2, 1e-12);
}

TEST(GroupBayesFusionTest, ReportsShiftPosterior) {
  GroupBayesFusion fusion(LogicalGroup::Bearing);
  const ObjectId machine(5);
  const auto prior = fusion.posterior(machine);
  EXPECT_NEAR(prior.back(), 0.90, 1e-9);  // P(none)

  fusion.add_report(machine, {FailureMode::MotorBearingWear, 0.9});
  fusion.add_report(machine, {FailureMode::MotorBearingWear, 0.9});
  const double p = fusion.mode_probability(machine,
                                           FailureMode::MotorBearingWear);
  EXPECT_GT(p, 0.5);
  EXPECT_LT(fusion.posterior(machine).back(), 0.5);
}

TEST(GroupBayesFusionTest, ConflictingReportsStayUncertain) {
  GroupBayesFusion fusion(LogicalGroup::Bearing);
  const ObjectId machine(5);
  fusion.add_report(machine, {FailureMode::MotorBearingWear, 0.9});
  fusion.add_report(machine, {FailureMode::CompressorBearingWear, 0.9});
  const double a =
      fusion.mode_probability(machine, FailureMode::MotorBearingWear);
  const double b =
      fusion.mode_probability(machine, FailureMode::CompressorBearingWear);
  EXPECT_NEAR(a, b, 1e-9);
}

// --- Weibull hazard extension (§10.1) ----------------------------------------

TEST(WeibullTest, CdfAndHazardShapes) {
  const WeibullModel wearout(3.0, 100.0);  // increasing hazard
  EXPECT_NEAR(wearout.cdf(SimTime(0)), 0.0, 1e-12);
  EXPECT_NEAR(wearout.cdf(SimTime::from_days(100.0)), 1.0 - std::exp(-1.0),
              1e-9);
  EXPECT_GT(wearout.hazard_per_day(SimTime::from_days(90.0)),
            wearout.hazard_per_day(SimTime::from_days(10.0)));

  const WeibullModel infant(0.6, 100.0);  // decreasing hazard
  EXPECT_LT(infant.hazard_per_day(SimTime::from_days(90.0)),
            infant.hazard_per_day(SimTime::from_days(10.0)));
}

TEST(WeibullTest, ConditionalCdfAgesTheComponent) {
  const WeibullModel m(2.5, 200.0);
  const double fresh = m.cdf(SimTime::from_days(50.0));
  const double aged =
      m.conditional_cdf(SimTime::from_days(150.0), SimTime::from_days(50.0));
  EXPECT_GT(aged, fresh);  // wear-out: old units fail sooner
}

TEST(WeibullTest, FitRecoversParameters) {
  Rng rng(31);
  const double true_shape = 2.0, true_scale = 120.0;
  std::vector<LifeRecord> records;
  for (int i = 0; i < 400; ++i) {
    // Inverse-CDF sampling.
    const double u = rng.uniform(1e-6, 1.0 - 1e-6);
    const double days =
        true_scale * std::pow(-std::log(1.0 - u), 1.0 / true_shape);
    records.push_back({SimTime::from_days(days), true});
  }
  const auto fit = WeibullModel::fit(records);
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->shape(), true_shape, 0.2);
  EXPECT_NEAR(fit->scale_days(), true_scale, 10.0);
}

TEST(WeibullTest, FitHandlesCensoring) {
  Rng rng(32);
  std::vector<LifeRecord> records;
  for (int i = 0; i < 300; ++i) {
    const double u = rng.uniform(1e-6, 1.0 - 1e-6);
    const double days = 120.0 * std::pow(-std::log(1.0 - u), 1.0 / 2.0);
    // Right-censor at 150 days (units removed from service).
    if (days > 150.0) {
      records.push_back({SimTime::from_days(150.0), false});
    } else {
      records.push_back({SimTime::from_days(days), true});
    }
  }
  const auto fit = WeibullModel::fit(records);
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->shape(), 2.0, 0.35);
  EXPECT_NEAR(fit->scale_days(), 120.0, 18.0);
}

TEST(WeibullTest, FitRejectsDegenerateData) {
  EXPECT_FALSE(WeibullModel::fit({}).has_value());
  const std::vector<LifeRecord> censored_only = {
      {SimTime::from_days(10.0), false}, {SimTime::from_days(20.0), false}};
  EXPECT_FALSE(WeibullModel::fit(censored_only).has_value());
}

TEST(HazardRefinementTest, BlendsTowardPopulationModel) {
  const WeibullModel model(3.0, 90.0);
  const PrognosticVector optimistic = months({{6, 0.05}});
  const PrognosticVector refined = refine_with_hazard(
      optimistic, model, /*component_age=*/SimTime::from_days(80.0), 0.5);
  // An aged wear-out component must look worse than the optimistic vector.
  const SimTime probe = SimTime::from_months(2.0);
  EXPECT_GT(refined.probability_at(probe),
            optimistic.probability_at(probe));
}

TEST(HazardRefinementTest, ZeroWeightIsIdentityOnKnots) {
  const WeibullModel model(2.0, 100.0);
  const PrognosticVector v = months({{1, 0.2}, {3, 0.7}});
  const PrognosticVector refined =
      refine_with_hazard(v, model, SimTime::from_days(10.0), 0.0);
  for (const double mo : {1.0, 3.0}) {
    const SimTime t = SimTime::from_months(mo);
    EXPECT_NEAR(refined.probability_at(t), v.probability_at(t), 1e-9);
  }
}

}  // namespace
}  // namespace mpros::fusion
