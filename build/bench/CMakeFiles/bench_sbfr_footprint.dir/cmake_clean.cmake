file(REMOVE_RECURSE
  "CMakeFiles/bench_sbfr_footprint.dir/bench_sbfr_footprint.cpp.o"
  "CMakeFiles/bench_sbfr_footprint.dir/bench_sbfr_footprint.cpp.o.d"
  "bench_sbfr_footprint"
  "bench_sbfr_footprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sbfr_footprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
