#pragma once
// The fleet-tier wire protocol: compact per-ship health summaries.
//
// The paper stops at one PDME per ship; the shore-side fleet tier
// (ROADMAP: "hierarchical fusion across hundreds of ships") adds a layer
// above it. Each ship periodically distills its PDME state — per-machine
// health grade, top diagnosis, prognostic remaining life, quarantine-ledger
// digest, DC-liveness digest — into one FleetSummary and ships it over the
// (far more hostile) ship-to-shore link. Summaries ride the PR 3 reliable
// machinery: the FleetSummaryEnvelope carries a per-ship sequence, the
// shore server acks cumulatively, and the ship retransmits with backoff,
// so the link tolerates drop, duplication and disorder.
//
// The ack/heartbeat messages are the existing AckMessage/HeartbeatMessage
// types with the DcId field carrying the ship's stream id — one stream per
// hull instead of one per DC, same sequencing algebra.

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "mpros/common/clock.hpp"
#include "mpros/common/ids.hpp"
#include "mpros/domain/failure_modes.hpp"

namespace mpros::net {

/// One machine's distilled condition, as the shore tier sees it.
struct MachineHealthSummary {
  ObjectId machine;           ///< ship-local OOSM id (unique per hull only)
  std::string name;           ///< display name, e.g. "A/C Compressor Motor 1"
  std::string klass;          ///< sister-machine key (EquipmentKind text)
  double health = 1.0;        ///< rolled-up health grade [0,1], 1 = healthy

  /// Top diagnosis: the machine's worst prioritized maintenance item.
  bool has_diagnosis = false;
  domain::FailureMode top_mode{};
  double top_belief = 0.0;
  double top_severity = 0.0;
  double priority = 0.0;          ///< belief x severity, the fleet sort key
  std::uint32_t report_count = 0; ///< reports behind the top diagnosis

  /// Prognostic remaining life: fused P(fail) reaches 0.5 (absent if no
  /// prognostic track exists for the top mode).
  bool has_median_ttf = false;
  SimTime median_ttf;

  friend bool operator==(const MachineHealthSummary&,
                         const MachineHealthSummary&) = default;
};

/// One ship's periodic health digest for the FleetServer.
struct FleetSummary {
  ShipId ship;
  std::string ship_name;
  SimTime timestamp;          ///< ship time at the PDME aggregation barrier

  // DC-liveness digest (the PR 3 watchdog verdicts, counted).
  std::uint32_t dcs_alive = 0;
  std::uint32_t dcs_stale = 0;
  std::uint32_t dcs_lost = 0;

  // Quarantine-ledger digest: instrument channels under suspicion.
  std::uint32_t quarantine_active = 0;  ///< standing sensor faults right now
  std::uint64_t quarantine_total = 0;   ///< sensor-fault reports ever filed

  std::vector<MachineHealthSummary> machines;

  friend bool operator==(const FleetSummary&, const FleetSummary&) = default;
};

/// The unit of reliable ship-to-shore delivery: a per-ship sequence number
/// (assigned by the ship's ReliableSender, starting at 1) plus the summary.
struct FleetSummaryEnvelope {
  ShipId ship;
  std::uint64_t sequence = 0;
  FleetSummary summary;

  friend bool operator==(const FleetSummaryEnvelope&,
                         const FleetSummaryEnvelope&) = default;
};

/// Versioned body encoding (magic + version, like the §7 report codec).
[[nodiscard]] std::vector<std::uint8_t> serialize(const FleetSummary& s);

/// Fail-soft body decode for untrusted bytes: nullopt on bad magic/version,
/// truncation, corrupted counts, or trailing garbage — never aborts.
[[nodiscard]] std::optional<FleetSummary> try_deserialize_fleet_summary(
    std::span<const std::uint8_t> bytes);

// Enveloped encoding (MessageType byte + ship + sequence + body).
[[nodiscard]] std::vector<std::uint8_t> wrap(const FleetSummaryEnvelope& m);

/// Fail-soft envelope decode: nullopt on wrong type, zero sequence, or any
/// body decode failure.
[[nodiscard]] std::optional<FleetSummaryEnvelope> try_unwrap_fleet_envelope(
    std::span<const std::uint8_t> bytes);

}  // namespace mpros::net
