
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mpros/fusion/bayes_net.cpp" "src/mpros/fusion/CMakeFiles/mpros_fusion.dir/bayes_net.cpp.o" "gcc" "src/mpros/fusion/CMakeFiles/mpros_fusion.dir/bayes_net.cpp.o.d"
  "/root/repo/src/mpros/fusion/dempster_shafer.cpp" "src/mpros/fusion/CMakeFiles/mpros_fusion.dir/dempster_shafer.cpp.o" "gcc" "src/mpros/fusion/CMakeFiles/mpros_fusion.dir/dempster_shafer.cpp.o.d"
  "/root/repo/src/mpros/fusion/diagnostic_fusion.cpp" "src/mpros/fusion/CMakeFiles/mpros_fusion.dir/diagnostic_fusion.cpp.o" "gcc" "src/mpros/fusion/CMakeFiles/mpros_fusion.dir/diagnostic_fusion.cpp.o.d"
  "/root/repo/src/mpros/fusion/hazard.cpp" "src/mpros/fusion/CMakeFiles/mpros_fusion.dir/hazard.cpp.o" "gcc" "src/mpros/fusion/CMakeFiles/mpros_fusion.dir/hazard.cpp.o.d"
  "/root/repo/src/mpros/fusion/prognostic_fusion.cpp" "src/mpros/fusion/CMakeFiles/mpros_fusion.dir/prognostic_fusion.cpp.o" "gcc" "src/mpros/fusion/CMakeFiles/mpros_fusion.dir/prognostic_fusion.cpp.o.d"
  "/root/repo/src/mpros/fusion/trend.cpp" "src/mpros/fusion/CMakeFiles/mpros_fusion.dir/trend.cpp.o" "gcc" "src/mpros/fusion/CMakeFiles/mpros_fusion.dir/trend.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mpros/common/CMakeFiles/mpros_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mpros/domain/CMakeFiles/mpros_domain.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
