#pragma once
// Dempster-Shafer theory of evidence.
//
// §5.3: "Dempster-Shafer theory is a calculus for qualifying beliefs using
// numerical expressions... given a belief of 40% that A will occur and
// another belief of 75% that B or C will occur, it will [be] concluded that
// A is 14% likely, 'B or C' is 64% likely and there is 22% of belief
// assigned to unknown possibilities." Experiment E1 checks exactly those
// numbers against this implementation.
//
// Hypotheses are indices into a FrameOfDiscernment; subsets are bitmasks, so
// frames hold at most 16 hypotheses (the logical groups of §5.3 have 1-3).

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace mpros::fusion {

/// A subset of the frame, one bit per hypothesis.
using HypothesisSet = std::uint16_t;

class FrameOfDiscernment {
 public:
  explicit FrameOfDiscernment(std::vector<std::string> hypotheses);

  [[nodiscard]] std::size_t size() const { return names_.size(); }
  [[nodiscard]] const std::string& name(std::size_t i) const;

  /// Bitmask with exactly hypothesis `i`.
  [[nodiscard]] HypothesisSet singleton(std::size_t i) const;
  /// The full set Θ ("unknown possibilities" carrier).
  [[nodiscard]] HypothesisSet theta() const;
  /// Render a subset as "A|B".
  [[nodiscard]] std::string describe(HypothesisSet s) const;

 private:
  std::vector<std::string> names_;
};

class MassFunction;

struct CombinationResult;

/// Dempster's rule of combination. Both operands must share a frame.
[[nodiscard]] CombinationResult combine(const MassFunction& a,
                                        const MassFunction& b);

/// A basic probability assignment m: 2^Θ -> [0,1] with Σm = 1 and m(∅) = 0.
///
/// Focal elements live in a flat vector sorted ascending by subset bitmask —
/// the same iteration order std::map gave, so every combination visits
/// products in the identical order and fused values are bit-identical to the
/// historical tree-based representation. The flat layout exists for the
/// ingest hot path: combine_simple_support() folds a report into the
/// accumulated mass in place, with zero allocations at steady state.
class MassFunction {
 public:
  /// (subset, mass) pairs, ascending by subset; masses sum to 1.
  using FocalVector = std::vector<std::pair<HypothesisSet, double>>;

  /// Vacuous mass: everything on Θ (total ignorance).
  static MassFunction vacuous(const FrameOfDiscernment& frame);

  /// Simple support: m(focus) = belief, m(Θ) = 1 - belief. This is how a
  /// §7.2 report with a Belief field becomes evidence.
  static MassFunction simple_support(const FrameOfDiscernment& frame,
                                     HypothesisSet focus, double belief);

  /// In-place Dempster combination with simple-support evidence
  /// m(focus) = belief, m(Θ) = 1 - belief: the batched report hot path.
  /// Bit-identical to `combine(*this, simple_support(...)).fused` (same
  /// product visit order), but with no temporary mass functions and no heap
  /// traffic once the focal vector's capacity has grown to steady state.
  /// Returns the conflict K (1.0 collapses to vacuous, like combine()).
  double combine_simple_support(HypothesisSet focus, double belief);

  /// Mass assigned to exactly `s` (0 if s is not a focal element).
  [[nodiscard]] double mass(HypothesisSet s) const;

  /// Bel(s) = Σ m(t) over t ⊆ s, t ≠ ∅.
  [[nodiscard]] double belief(HypothesisSet s) const;

  /// Pl(s) = Σ m(t) over t ∩ s ≠ ∅.
  [[nodiscard]] double plausibility(HypothesisSet s) const;

  /// Mass on Θ: the "unknown possibilities" share the paper highlights.
  [[nodiscard]] double unknown() const;

  [[nodiscard]] const FocalVector& focal_elements() const { return masses_; }

  [[nodiscard]] const FrameOfDiscernment& frame() const { return *frame_; }

 private:
  explicit MassFunction(const FrameOfDiscernment& frame);
  friend CombinationResult combine(const MassFunction& a,
                                   const MassFunction& b);

  /// Accumulate `m` into the bucket for `s`, inserting it (sorted) if new.
  void add_mass(HypothesisSet s, double m);

  const FrameOfDiscernment* frame_;
  FocalVector masses_;
};

struct CombinationResult {
  MassFunction fused;
  /// Mass lost to contradiction (K); 1-K is the normalizer. K = 1 means the
  /// sources were entirely contradictory and `fused` is vacuous.
  double conflict = 0.0;
};

}  // namespace mpros::fusion
