file(REMOVE_RECURSE
  "libmpros_pdme.a"
)
