#pragma once
// SBFR machine definitions and their serialized images.
//
// A machine is a list of states; each state owns an ordered list of
// transitions {condition bytecode, action bytecode, target state}. The first
// transition whose condition evaluates true fires (at most one per cycle).
//
// Images are the downloadable artifact of the paper ("new finite-state
// machines may be downloaded into the smart sensor"); image_size() is what
// experiment E4 compares against the paper's 229/93-byte figures.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "mpros/sbfr/expr.hpp"

namespace mpros::sbfr {

struct Transition {
  std::vector<std::uint8_t> condition;  // Expr bytecode
  std::vector<std::uint8_t> action;     // Action bytecode (may be empty)
  std::uint8_t target = 0;              // state index
};

struct StateDef {
  std::string name;  // debug only; not serialized
  std::vector<Transition> transitions;
};

class MachineDef {
 public:
  explicit MachineDef(std::string name, std::uint8_t num_locals = 0,
                      std::uint8_t initial_state = 0);

  /// Add a state; returns its index.
  std::uint8_t add_state(std::string state_name);

  /// Add a transition from `from` to `to` firing when `when` is true.
  void add_transition(std::uint8_t from, std::uint8_t to, const Expr& when,
                      const Action& then = {});

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<StateDef>& states() const { return states_; }
  [[nodiscard]] std::uint8_t num_locals() const { return num_locals_; }
  [[nodiscard]] std::uint8_t initial_state() const { return initial_state_; }

  /// Serialize to the compact download image.
  [[nodiscard]] std::vector<std::uint8_t> serialize() const;

  /// Image byte count (what fits in the DC's 32 KB budget).
  [[nodiscard]] std::size_t image_size() const { return serialize().size(); }

  /// Parse an image back into a definition (state names are synthesized).
  /// Aborts on malformed input — images come from our own serializer.
  static MachineDef deserialize(std::span<const std::uint8_t> image,
                                std::string name = "downloaded");

 private:
  std::string name_;
  std::vector<StateDef> states_;
  std::uint8_t num_locals_;
  std::uint8_t initial_state_;
};

/// Validate that every program in the machine is well-formed bytecode:
/// known opcodes, stack depth within kMaxStackDepth, conditions leave
/// exactly one value, actions leave zero. Returns an error string or empty.
[[nodiscard]] std::string validate(const MachineDef& def);

}  // namespace mpros::sbfr
