file(REMOVE_RECURSE
  "CMakeFiles/mpros_db.dir/database.cpp.o"
  "CMakeFiles/mpros_db.dir/database.cpp.o.d"
  "CMakeFiles/mpros_db.dir/table.cpp.o"
  "CMakeFiles/mpros_db.dir/table.cpp.o.d"
  "CMakeFiles/mpros_db.dir/value.cpp.o"
  "CMakeFiles/mpros_db.dir/value.cpp.o.d"
  "libmpros_db.a"
  "libmpros_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpros_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
