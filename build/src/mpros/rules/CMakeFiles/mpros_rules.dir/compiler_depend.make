# Empty compiler generated dependencies file for mpros_rules.
# This may be replaced when dependencies are built.
