#include "mpros/wavelet/dwt.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "mpros/common/assert.hpp"

namespace mpros::wavelet {
namespace {

// Orthonormal Daubechies scaling (low-pass) filters.
constexpr std::array<double, 2> kHaar = {0.7071067811865476,
                                         0.7071067811865476};
constexpr std::array<double, 4> kDb2 = {
    0.48296291314469025, 0.83651630373746899, 0.22414386804185735,
    -0.12940952255092145};
constexpr std::array<double, 8> kDb4 = {
    0.23037781330885523, 0.71484657055254153, 0.63088076792959036,
    -0.02798376941698385, -0.18703481171888114, 0.03084138183598697,
    0.03288301166698295, -0.01059740178499728};

/// Quadrature mirror: g[k] = (-1)^k h[L-1-k].
std::vector<double> wavelet_from_scaling(std::span<const double> h) {
  const std::size_t len = h.size();
  std::vector<double> g(len);
  for (std::size_t k = 0; k < len; ++k) {
    const double sign = (k % 2 == 0) ? 1.0 : -1.0;
    g[k] = sign * h[len - 1 - k];
  }
  return g;
}

}  // namespace

std::span<const double> scaling_coefficients(Family f) {
  switch (f) {
    case Family::Haar: return kHaar;
    case Family::Db2: return kDb2;
    case Family::Db4: return kDb4;
  }
  return kHaar;
}

std::span<const double> wavelet_coefficients(Family f) {
  static const std::vector<double> haar = wavelet_from_scaling(kHaar);
  static const std::vector<double> db2 = wavelet_from_scaling(kDb2);
  static const std::vector<double> db4 = wavelet_from_scaling(kDb4);
  switch (f) {
    case Family::Haar: return haar;
    case Family::Db2: return db2;
    case Family::Db4: return db4;
  }
  return haar;
}

const char* to_string(Family f) {
  switch (f) {
    case Family::Haar: return "haar";
    case Family::Db2: return "db2";
    case Family::Db4: return "db4";
  }
  return "?";
}

DwtLevel dwt_step(std::span<const double> x, Family f) {
  MPROS_EXPECTS(x.size() >= 2 && x.size() % 2 == 0);
  const std::span<const double> h = scaling_coefficients(f);
  const std::span<const double> g = wavelet_coefficients(f);
  const std::size_t n = x.size();
  const std::size_t half = n / 2;
  const std::size_t len = h.size();

  DwtLevel out;
  out.approx.resize(half);
  out.detail.resize(half);
  for (std::size_t i = 0; i < half; ++i) {
    double a = 0.0, d = 0.0;
    for (std::size_t k = 0; k < len; ++k) {
      const std::size_t j = (2 * i + k) % n;  // periodic extension
      a += h[k] * x[j];
      d += g[k] * x[j];
    }
    out.approx[i] = a;
    out.detail[i] = d;
  }
  return out;
}

std::vector<double> idwt_step(std::span<const double> approx,
                              std::span<const double> detail, Family f) {
  MPROS_EXPECTS(approx.size() == detail.size() && !approx.empty());
  const std::span<const double> h = scaling_coefficients(f);
  const std::span<const double> g = wavelet_coefficients(f);
  const std::size_t half = approx.size();
  const std::size_t n = 2 * half;
  const std::size_t len = h.size();

  std::vector<double> x(n, 0.0);
  // Transpose of the analysis operator (orthogonal => inverse).
  for (std::size_t i = 0; i < half; ++i) {
    for (std::size_t k = 0; k < len; ++k) {
      const std::size_t j = (2 * i + k) % n;
      x[j] += h[k] * approx[i] + g[k] * detail[i];
    }
  }
  return x;
}

std::size_t max_levels(std::size_t n) {
  std::size_t levels = 0;
  while (n >= 2 && n % 2 == 0) {
    n /= 2;
    ++levels;
  }
  return levels;
}

Decomposition decompose(std::span<const double> x, Family f,
                        std::size_t levels) {
  Decomposition d;
  decompose(x, f, levels, d);
  return d;
}

void decompose(std::span<const double> x, Family f, std::size_t levels,
               Decomposition& d) {
  MPROS_EXPECTS(levels >= 1 && levels <= max_levels(x.size()));
  const std::span<const double> h = scaling_coefficients(f);
  const std::span<const double> g = wavelet_coefficients(f);
  const std::size_t len = h.size();

  d.family = f;
  d.details.resize(levels);
  // The pyramid runs in place: d.approx holds the current approximation,
  // each pass filters its first `n` samples down to `n/2` (reads at index
  // (2i + k) mod n stay >= the write index i, so in-place is safe only with
  // a separate output row — use the level's detail buffer as the staging
  // area for the half-rate approximation, then copy back).
  d.approx.assign(x.begin(), x.end());
  static thread_local std::vector<double> next_approx;
  std::size_t n = x.size();
  for (std::size_t level = 0; level < levels; ++level) {
    const std::size_t half = n / 2;
    std::vector<double>& detail = d.details[level];
    detail.resize(half);
    if (next_approx.size() < half) next_approx.resize(half);
    for (std::size_t i = 0; i < half; ++i) {
      double a = 0.0, dv = 0.0;
      for (std::size_t k = 0; k < len; ++k) {
        const std::size_t j = (2 * i + k) % n;  // periodic extension
        a += h[k] * d.approx[j];
        dv += g[k] * d.approx[j];
      }
      next_approx[i] = a;
      detail[i] = dv;
    }
    std::copy(next_approx.begin(), next_approx.begin() +
              static_cast<std::ptrdiff_t>(half), d.approx.begin());
    n = half;
  }
  d.approx.resize(n);
}

std::vector<double> reconstruct(const Decomposition& d) {
  MPROS_EXPECTS(!d.details.empty());
  std::vector<double> current = d.approx;
  for (std::size_t level = d.details.size(); level-- > 0;) {
    current = idwt_step(current, d.details[level], d.family);
  }
  return current;
}

}  // namespace mpros::wavelet
