#pragma once
// FleetSim: the assembled two-tier deployment — N full ShipSystems, each
// with its uplink enabled, one hostile ship-to-shore SimNetwork, and the
// FleetServer fusing the hulls' summaries on shore. The shipboard networks
// stay private per hull (a ship's DC traffic never leaves the hull); only
// the compact FleetSummary digests cross the shore link.

#include <memory>
#include <string>
#include <vector>

#include "mpros/fleet/fleet_server.hpp"
#include "mpros/mpros/ship_system.hpp"
#include "mpros/net/network.hpp"

namespace mpros::fleet {

struct FleetSimConfig {
  std::size_t ship_count = 4;
  /// Per-hull template; uplink.{enabled, ship, name, endpoint} are
  /// overridden per hull, worker_threads defaults to 1 (N ships already
  /// parallelize the host).
  ShipSystemConfig ship_template;
  /// The ship-to-shore link: slower and lossier than any shipboard LAN.
  net::NetworkConfig shore;
  FleetServerConfig server;
  std::uint64_t seed = 0xF1EE7;
};

class FleetSim {
 public:
  explicit FleetSim(FleetSimConfig cfg = {});

  [[nodiscard]] std::size_t ship_count() const { return ships_.size(); }
  [[nodiscard]] ShipSystem& ship(std::size_t index);
  [[nodiscard]] FleetServer& server() { return server_; }
  [[nodiscard]] net::SimNetwork& shore() { return shore_; }

  /// Advance every hull to `t`, move their sealed uplink datagrams onto
  /// the shore network, deliver what is due, and run the server's merge
  /// barrier (liveness + comparative baseline + snapshot publish). Returns
  /// the number of shore datagrams delivered.
  std::size_t advance_to(SimTime t);
  std::size_t run_until(SimTime end, SimTime step = SimTime::from_seconds(60));

  [[nodiscard]] SimTime now() const { return now_; }

 private:
  FleetSimConfig cfg_;
  net::SimNetwork shore_;
  FleetServer server_;
  std::vector<std::unique_ptr<ShipSystem>> ships_;
  SimTime now_;
};

}  // namespace mpros::fleet
