// PDME tests: the §5.1 report flow through the OOSM, fusion of conflicting
// and reinforcing reports, prioritized list, browser rendering, ICAS export.

#include <gtest/gtest.h>

#include "mpros/dc/data_concentrator.hpp"
#include "mpros/oosm/ship_builder.hpp"
#include "mpros/pdme/browser.hpp"
#include "mpros/pdme/mimosa.hpp"
#include "mpros/oosm/persistence.hpp"
#include "mpros/pdme/pdme.hpp"

namespace mpros::pdme {
namespace {

using domain::FailureMode;

net::FailureReport make_report(ObjectId machine, FailureMode mode,
                               double severity, double belief,
                               std::uint64_t ks = 1, double t_seconds = 100.0,
                               std::uint64_t dc = 1) {
  net::FailureReport r;
  r.dc = DcId(dc);
  r.knowledge_source = KnowledgeSourceId(ks);
  r.sensed_object = machine;
  r.machine_condition = domain::condition_id(mode);
  r.severity = severity;
  r.belief = belief;
  r.timestamp = SimTime::from_seconds(t_seconds);
  r.explanation = "test report";
  r.prognostics = {{0.1, 7.0 * 86400.0}, {0.9, 60.0 * 86400.0}};
  return r;
}

class PdmeTest : public ::testing::Test {
 protected:
  PdmeTest() : ship_(oosm::build_ship(model_, "Test", 1, 1)), pdme_(model_) {
    motor_ = ship_.plants.front().motor;
  }

  oosm::ObjectModel model_;
  oosm::ShipModel ship_;
  PdmeExecutive pdme_;
  ObjectId motor_;
};

TEST_F(PdmeTest, AcceptPostsReportObjectIntoOosm) {
  const std::size_t before = model_.object_count();
  const auto obj = pdme_.accept(
      make_report(motor_, FailureMode::MotorImbalance, 0.6, 0.8));
  ASSERT_TRUE(obj.has_value());
  EXPECT_EQ(model_.object_count(), before + 1);
  EXPECT_EQ(model_.kind(*obj), domain::EquipmentKind::Report);
  // The report RefersTo the machine (§4.2).
  EXPECT_TRUE(model_.has_relation(*obj, oosm::Relation::RefersTo, motor_));
  EXPECT_DOUBLE_EQ(model_.property(*obj, "severity")->as_real(), 0.6);
}

TEST_F(PdmeTest, FusionTriggeredViaOosmEvents) {
  pdme_.accept(make_report(motor_, FailureMode::MotorImbalance, 0.6, 0.8));
  const auto state =
      pdme_.group_state(motor_, domain::LogicalGroup::RotorDynamics);
  EXPECT_EQ(state.report_count, 1u);
  EXPECT_NEAR(state.modes[0].belief, 0.8, 1e-9);
  EXPECT_EQ(pdme_.stats().reports_accepted, 1u);
}

TEST_F(PdmeTest, ThirdPartyReportObjectAlsoFused) {
  // §4.5: fusion reacts to the OOSM, so a report object posted by hand (not
  // via accept()) must reach knowledge fusion too.
  const ObjectId obj =
      model_.create_object("manual report", domain::EquipmentKind::Report);
  model_.set_property(obj, "dc", std::int64_t{9});
  model_.set_property(obj, "ks", std::int64_t{2});
  model_.set_property(obj, "sensed",
                      static_cast<std::int64_t>(motor_.value()));
  model_.set_property(
      obj, "condition",
      static_cast<std::int64_t>(
          domain::condition_id(FailureMode::RotorBarDefect).value()));
  model_.set_property(obj, "severity", 0.5);
  model_.set_property(obj, "belief", 0.7);
  model_.set_property(obj, "timestamp_us", std::int64_t{1000});
  model_.set_property(obj, "prognostics", "");
  model_.set_property(obj, "posted", std::int64_t{1});

  const auto state =
      pdme_.group_state(motor_, domain::LogicalGroup::Electrical);
  EXPECT_EQ(state.report_count, 1u);
  EXPECT_NEAR(state.modes[0].belief, 0.7, 1e-9);
}

TEST_F(PdmeTest, ReinforcingReportsRaiseBelief) {
  pdme_.accept(make_report(motor_, FailureMode::MotorImbalance, 0.6, 0.6,
                           /*ks=*/1));
  pdme_.accept(make_report(motor_, FailureMode::MotorImbalance, 0.5, 0.6,
                           /*ks=*/3, /*t=*/200.0));
  const auto state =
      pdme_.group_state(motor_, domain::LogicalGroup::RotorDynamics);
  EXPECT_NEAR(state.modes[0].belief, 1.0 - 0.4 * 0.4, 1e-9);
}

TEST_F(PdmeTest, ConflictingReportsShareGroupBelief) {
  pdme_.accept(make_report(motor_, FailureMode::MotorImbalance, 0.6, 0.7,
                           /*ks=*/1));
  pdme_.accept(make_report(motor_, FailureMode::ShaftMisalignment, 0.6, 0.7,
                           /*ks=*/3, /*t=*/200.0));
  const auto state =
      pdme_.group_state(motor_, domain::LogicalGroup::RotorDynamics);
  EXPECT_GT(state.last_conflict, 0.0);
  EXPECT_NEAR(state.modes[0].belief, state.modes[1].belief, 1e-9);
}

TEST_F(PdmeTest, DuplicateRetransmissionDropped) {
  const auto report =
      make_report(motor_, FailureMode::MotorImbalance, 0.6, 0.8);
  EXPECT_TRUE(pdme_.accept(report).has_value());
  EXPECT_FALSE(pdme_.accept(report).has_value());
  EXPECT_EQ(pdme_.stats().duplicates_dropped, 1u);
  const auto state =
      pdme_.group_state(motor_, domain::LogicalGroup::RotorDynamics);
  EXPECT_EQ(state.report_count, 1u);  // fused once, not twice
}

TEST_F(PdmeTest, PrioritizedListOrdersBySeverityWeightedBelief) {
  pdme_.accept(make_report(motor_, FailureMode::MotorImbalance, 0.9, 0.9));
  pdme_.accept(make_report(motor_, FailureMode::RotorBarDefect, 0.2, 0.4,
                           /*ks=*/2, 150.0));
  const auto list = pdme_.prioritized_list();
  ASSERT_GE(list.size(), 2u);
  EXPECT_EQ(list.front().mode, FailureMode::MotorImbalance);
  for (std::size_t i = 1; i < list.size(); ++i) {
    EXPECT_GE(list[i - 1].priority, list[i].priority);
  }
}

TEST_F(PdmeTest, PrognosticFusionFeedsTimeToFailure) {
  pdme_.accept(make_report(motor_, FailureMode::MotorImbalance, 0.7, 0.9));
  const auto prognosis =
      pdme_.prognosis(motor_, FailureMode::MotorImbalance);
  ASSERT_TRUE(prognosis.has_value());
  const auto list = pdme_.prioritized_list(motor_);
  ASSERT_FALSE(list.empty());
  ASSERT_TRUE(list.front().median_ttf.has_value());
  EXPECT_GT(list.front().median_ttf->days(), 0.0);
}

TEST_F(PdmeTest, ConservativePrognosticDominates) {
  auto early = make_report(motor_, FailureMode::MotorImbalance, 0.7, 0.9);
  early.prognostics = {{0.9, 10.0 * 86400.0}};  // 90% at 10 days
  auto late = make_report(motor_, FailureMode::MotorImbalance, 0.5, 0.8,
                          /*ks=*/3, 200.0);
  late.prognostics = {{0.9, 100.0 * 86400.0}};
  pdme_.accept(late);
  pdme_.accept(early);
  const auto list = pdme_.prioritized_list(motor_);
  ASSERT_TRUE(list.front().p90_ttf.has_value());
  EXPECT_LE(list.front().p90_ttf->days(), 10.5);
}

TEST_F(PdmeTest, NetworkAttachDeliversReports) {
  net::SimNetwork network;
  pdme_.attach_to_network(network);
  network.send("dc-1", "pdme",
               net::wrap(make_report(motor_, FailureMode::GearMeshWear, 0.5,
                                     0.8)),
               SimTime(0));
  network.flush();
  EXPECT_EQ(pdme_.stats().reports_accepted, 1u);
}

TEST_F(PdmeTest, ResetMachineForgets) {
  pdme_.accept(make_report(motor_, FailureMode::MotorImbalance, 0.6, 0.8));
  pdme_.reset_machine(motor_);
  EXPECT_TRUE(pdme_.prioritized_list(motor_).empty());
  EXPECT_TRUE(pdme_.reports_for(motor_).empty());
}

TEST_F(PdmeTest, BrowserRendersFig2Layout) {
  // Fig 2's situation: six condition reports from four knowledge sources,
  // some conflicting and some reinforcing, for A/C Compressor Motor 1.
  pdme_.accept(make_report(motor_, FailureMode::MotorImbalance, 0.6, 0.7,
                           /*ks=*/1, 100));
  pdme_.accept(make_report(motor_, FailureMode::MotorImbalance, 0.5, 0.6,
                           /*ks=*/3, 110));
  pdme_.accept(make_report(motor_, FailureMode::ShaftMisalignment, 0.4, 0.5,
                           /*ks=*/2, 120));
  pdme_.accept(make_report(motor_, FailureMode::RotorBarDefect, 0.3, 0.6,
                           /*ks=*/1, 130));
  pdme_.accept(make_report(motor_, FailureMode::MotorBearingWear, 0.5, 0.7,
                           /*ks=*/4, 140));
  pdme_.accept(make_report(motor_, FailureMode::MotorBearingWear, 0.6, 0.8,
                           /*ks=*/2, 150));

  const std::string screen = render_machine(pdme_, model_, motor_);
  EXPECT_NE(screen.find("A/C Compressor Motor 1"), std::string::npos);
  EXPECT_NE(screen.find("Condition reports received: 6"), std::string::npos);
  EXPECT_NE(screen.find("DLI Expert System"), std::string::npos);
  EXPECT_NE(screen.find("Fuzzy Logic"), std::string::npos);
  EXPECT_NE(screen.find("motor imbalance"), std::string::npos);
  EXPECT_NE(screen.find("Failure predictions"), std::string::npos);
}

TEST_F(PdmeTest, SummaryAndIcasExport) {
  pdme_.accept(make_report(motor_, FailureMode::MotorImbalance, 0.8, 0.9));
  const std::string summary = render_summary(pdme_, model_);
  EXPECT_NE(summary.find("Prioritized Maintenance List"), std::string::npos);
  EXPECT_NE(summary.find("A/C Compressor Motor 1"), std::string::npos);

  const std::string csv = export_icas_csv(pdme_, model_);
  EXPECT_NE(csv.find("machine,condition"), std::string::npos);
  EXPECT_NE(csv.find("motor imbalance"), std::string::npos);
}

TEST_F(PdmeTest, RebuildFromModelRecoversFusionState) {
  // §4.9: the OOSM is the persistent record; a restarted executive must
  // recover the maintenance picture from the Report objects alone.
  pdme_.accept(make_report(motor_, FailureMode::MotorImbalance, 0.7, 0.6,
                           /*ks=*/1, 100));
  pdme_.accept(make_report(motor_, FailureMode::MotorImbalance, 0.6, 0.6,
                           /*ks=*/3, 200));
  pdme_.accept(make_report(motor_, FailureMode::RotorBarDefect, 0.4, 0.5,
                           /*ks=*/2, 300));
  const auto original = pdme_.prioritized_list(motor_);

  db::Database store;
  oosm::Persistence::save(model_, store);
  oosm::ObjectModel restored = oosm::Persistence::load(store);
  PdmeExecutive recovered(restored);
  EXPECT_EQ(recovered.rebuild_from_model(), 3u);

  const auto rebuilt = recovered.prioritized_list(motor_);
  ASSERT_EQ(rebuilt.size(), original.size());
  for (std::size_t i = 0; i < rebuilt.size(); ++i) {
    EXPECT_EQ(rebuilt[i].mode, original[i].mode);
    EXPECT_NEAR(rebuilt[i].fused_belief, original[i].fused_belief, 1e-9);
    EXPECT_NEAR(rebuilt[i].max_severity, original[i].max_severity, 1e-9);
  }
  // Recovery also primes dedup: a replayed datagram is still dropped.
  EXPECT_FALSE(recovered
                   .accept(make_report(motor_, FailureMode::MotorImbalance,
                                       0.7, 0.6, /*ks=*/1, 100))
                   .has_value());
}

TEST_F(PdmeTest, TrendProjectionFromEscalatingReports) {
  // §10.1 temporal reasoning in the live path: reports escalate linearly
  // (0.2 -> 0.6 over 40 days), so the trend projects failure ~40 days past
  // the last report (severity 1.0 at the extrapolated crossing).
  for (int i = 0; i <= 4; ++i) {
    pdme_.accept(make_report(motor_, FailureMode::MotorImbalance,
                             0.2 + 0.1 * i, 0.8, /*ks=*/1,
                             /*t=*/86400.0 * 10.0 * i));
  }
  const auto list = pdme_.prioritized_list(motor_);
  ASSERT_FALSE(list.empty());
  ASSERT_TRUE(list.front().trend_ttf.has_value());
  EXPECT_NEAR(list.front().trend_ttf->days(), 40.0, 1.0);

  const auto curve =
      pdme_.trend_prognosis(motor_, FailureMode::MotorImbalance);
  ASSERT_FALSE(curve.empty());
  EXPECT_NEAR(curve.probability_at(SimTime::from_days(40.0)), 0.5, 0.02);
}

TEST_F(PdmeTest, FlatSeverityHasNoTrendProjection) {
  for (int i = 0; i <= 4; ++i) {
    pdme_.accept(make_report(motor_, FailureMode::MotorImbalance, 0.4, 0.8,
                             /*ks=*/1, /*t=*/86400.0 * 10.0 * i));
  }
  const auto list = pdme_.prioritized_list(motor_);
  ASSERT_FALSE(list.empty());
  EXPECT_FALSE(list.front().trend_ttf.has_value());
}

TEST_F(PdmeTest, MimosaExportCarriesStandardRecords) {
  // §3.3: MIMOSA integration — asset, health-assessment and proposed-event
  // records for every fused conclusion.
  pdme_.accept(make_report(motor_, FailureMode::MotorImbalance, 0.9, 0.9));
  const std::string doc = export_mimosa(pdme_, model_);

  EXPECT_NE(doc.find("HD|USNS-MERCY|MPROS-PDME|"), std::string::npos);
  EXPECT_NE(doc.find("AS|USNS-MERCY|"), std::string::npos);
  EXPECT_NE(doc.find("A/C Compressor Motor 1|InductionMotor"),
            std::string::npos);
  EXPECT_NE(doc.find("HA|USNS-MERCY|"), std::string::npos);
  EXPECT_NE(doc.find("|motor imbalance|CRITICAL|"), std::string::npos);
  EXPECT_NE(doc.find("PE|USNS-MERCY|"), std::string::npos);
}

TEST_F(PdmeTest, MimosaGradeLadder) {
  MaintenanceItem item;
  item.fused_belief = 0.05;
  item.max_severity = 0.5;
  EXPECT_STREQ(mimosa_grade(item), "NORMAL");
  item.fused_belief = 0.5;
  item.max_severity = 0.4;
  EXPECT_STREQ(mimosa_grade(item), "WARNING");
  item.fused_belief = 0.9;
  item.max_severity = 0.5;
  EXPECT_STREQ(mimosa_grade(item), "ALERT");
  item.fused_belief = 0.95;
  item.max_severity = 0.9;
  EXPECT_STREQ(mimosa_grade(item), "CRITICAL");
}

TEST_F(PdmeTest, MalformedConditionDropped) {
  auto bad = make_report(motor_, FailureMode::MotorImbalance, 0.5, 0.5);
  bad.machine_condition = ConditionId(999);
  pdme_.accept(bad);
  EXPECT_EQ(pdme_.stats().malformed_dropped, 1u);
  EXPECT_EQ(pdme_.stats().reports_accepted, 0u);
}

// --- Reliable envelope intake ------------------------------------------------

TEST_F(PdmeTest, EnvelopeStreamGapsDetectedAckedAndHealed) {
  net::NetworkConfig ncfg;
  ncfg.base_latency = SimTime::from_millis(1.0);
  ncfg.jitter = SimTime(0);
  net::SimNetwork network(ncfg);
  pdme_.attach_to_network(network);

  std::vector<net::AckMessage> acks;
  network.register_endpoint("dc-1", [&](const net::Message& m) {
    const auto ack = net::try_unwrap_ack(m.payload);
    if (ack.has_value()) acks.push_back(*ack);
  });

  net::ReliableSender sender{DcId(1)};
  const auto p1 = sender.envelope(
      make_report(motor_, FailureMode::MotorImbalance, 0.5, 0.8, 1, 100.0), SimTime(0));
  const auto p2 = sender.envelope(
      make_report(motor_, FailureMode::MotorImbalance, 0.6, 0.8, 1, 200.0), SimTime(0));
  const auto p3 = sender.envelope(
      make_report(motor_, FailureMode::MotorImbalance, 0.7, 0.8, 1, 300.0), SimTime(0));

  // Sequence 2 is lost in transit; 3's arrival exposes the gap.
  network.send("dc-1", "pdme", p1, SimTime::from_seconds(1));
  network.send("dc-1", "pdme", p3, SimTime::from_seconds(2));
  network.flush();
  EXPECT_EQ(pdme_.stats().envelopes_accepted, 2u);
  EXPECT_EQ(pdme_.stats().gaps_detected, 1u);
  ASSERT_EQ(acks.size(), 2u);
  EXPECT_EQ(acks.back().cumulative, 1u);  // can't ack past the hole

  // The retransmission heals the gap and the cumulative ack jumps to 3.
  network.send("dc-1", "pdme", p2, SimTime::from_seconds(3));
  network.flush();
  ASSERT_EQ(acks.size(), 3u);
  EXPECT_EQ(acks.back().cumulative, 3u);
  EXPECT_EQ(pdme_.receiver().stats().gaps_healed, 1u);
  EXPECT_EQ(pdme_.stats().reports_accepted, 3u);

  // A spurious re-retransmission is dropped but still acked (the DC may
  // simply have missed our ack).
  network.send("dc-1", "pdme", p2, SimTime::from_seconds(4));
  network.flush();
  EXPECT_EQ(pdme_.stats().duplicates_dropped, 1u);
  ASSERT_EQ(acks.size(), 4u);
  EXPECT_EQ(acks.back().cumulative, 3u);
  EXPECT_EQ(pdme_.stats().reports_accepted, 3u);

  sender.on_ack(acks.back());
  EXPECT_EQ(sender.unacked(), 0u);
}

// --- DC liveness supervision -------------------------------------------------

TEST_F(PdmeTest, WatchdogMarksSilentDcStaleThenLost) {
  pdme_.expect_dc(DcId(9), SimTime(0));  // 60 s heartbeat interval (default)

  pdme_.update_liveness(SimTime::from_seconds(60));
  EXPECT_EQ(pdme_.dc_liveness(DcId(9)), DcLiveness::Alive);
  pdme_.update_liveness(SimTime::from_seconds(120));
  EXPECT_EQ(pdme_.dc_liveness(DcId(9)), DcLiveness::Stale);
  pdme_.update_liveness(SimTime::from_seconds(180));
  EXPECT_EQ(pdme_.dc_liveness(DcId(9)), DcLiveness::Lost);

  // Any arrival restores the space to Alive.
  pdme_.accept(net::HeartbeatMessage{DcId(9), SimTime::from_seconds(200), 0},
               SimTime::from_seconds(200));
  EXPECT_EQ(pdme_.dc_liveness(DcId(9)), DcLiveness::Alive);
  EXPECT_EQ(pdme_.stats().heartbeats_received, 1u);
  EXPECT_GE(pdme_.stats().liveness_transitions, 3u);

  // The watchdog never resurrects a DC on its own.
  pdme_.update_liveness(SimTime::from_seconds(500));
  EXPECT_EQ(pdme_.dc_liveness(DcId(9)), DcLiveness::Lost);
  pdme_.update_liveness(SimTime::from_seconds(510));
  EXPECT_EQ(pdme_.dc_liveness(DcId(9)), DcLiveness::Lost);
}

TEST_F(PdmeTest, SummaryShowsNoDataSinceForDeadDc) {
  pdme_.expect_dc(DcId(2), SimTime(0));
  pdme_.update_liveness(SimTime::from_hours(1.0));
  const std::string out = render_summary(pdme_, model_);
  EXPECT_NE(out.find("Data Concentrator health"), std::string::npos);
  EXPECT_NE(out.find("Lost"), std::string::npos);
  EXPECT_NE(out.find("NO DATA since"), std::string::npos);
}

TEST_F(PdmeTest, HeartbeatAdvertisedTailSequenceCountsGaps) {
  // Nothing arrived, but the DC claims it sent 2 reports: both are gaps.
  pdme_.accept(net::HeartbeatMessage{DcId(1), SimTime::from_seconds(60), 2},
               SimTime::from_seconds(60));
  EXPECT_EQ(pdme_.stats().gaps_detected, 2u);
  EXPECT_EQ(pdme_.receiver().open_gaps(DcId(1)), 2u);
}

// --- Sensor-fault routing ----------------------------------------------------

TEST_F(PdmeTest, SensorFaultReportsBypassFusionIntoQuarantineLedger) {
  net::FailureReport r =
      make_report(motor_, FailureMode::MotorImbalance, 1.0, 0.9, /*ks=*/5);
  r.machine_condition =
      domain::sensor_fault_condition(domain::SensorFaultKind::Spike);
  r.explanation = "vib.motor: impulsive outliers beyond robust scatter";
  pdme_.accept(r);

  EXPECT_EQ(pdme_.stats().sensor_fault_reports, 1u);
  // The instrument fault never reaches Dempster-Shafer or the list.
  EXPECT_TRUE(pdme_.prioritized_list(motor_).empty());
  const auto faults = pdme_.sensor_faults();
  ASSERT_EQ(faults.size(), 1u);
  EXPECT_EQ(faults[0].kind, domain::SensorFaultKind::Spike);
  EXPECT_EQ(faults[0].dc, DcId(1));

  // The operator's summary page lists the quarantined channel.
  const std::string out = render_summary(pdme_, model_);
  EXPECT_NE(out.find("Quarantined sensor channels"), std::string::npos);
  EXPECT_NE(out.find("vib.motor"), std::string::npos);

  // The all-clear (severity 0) retires the active entry but keeps history.
  net::FailureReport clear = r;
  clear.severity = 0.0;
  clear.timestamp = r.timestamp + SimTime::from_seconds(300);
  pdme_.accept(clear);
  EXPECT_TRUE(pdme_.sensor_faults().empty());
  EXPECT_EQ(pdme_.sensor_faults(/*active_only=*/false).size(), 1u);
}

// --- Sharded executive (E18) -------------------------------------------------

TEST(PdmeShardedTest, DeferredPostsMaterializeAtSynchronize) {
  oosm::ObjectModel model;
  const auto ship = oosm::build_ship(model, "Test", 1, 1);
  const ObjectId motor = ship.plants.front().motor;
  PdmeConfig cfg;
  cfg.shard_count = 2;
  PdmeExecutive exec(model, cfg);
  const std::size_t baseline = model.object_count();

  // Sharded accept() only enqueues: no object id yet, no OOSM mutation.
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(exec.accept(make_report(motor, FailureMode::MotorImbalance,
                                         0.6, 0.6, /*ks=*/i + 1,
                                         100.0 + 10.0 * i))
                     .has_value());
  }
  EXPECT_EQ(model.object_count(), baseline);

  // The aggregation barrier drains the workers and replays the posts.
  exec.synchronize();
  EXPECT_EQ(model.object_count(), baseline + 3);
  EXPECT_EQ(exec.stats().reports_accepted, 3u);
  const auto state =
      exec.group_state(motor, domain::LogicalGroup::RotorDynamics);
  EXPECT_EQ(state.report_count, 3u);
}

TEST(PdmeShardedTest, BlockPolicyShedsNothing) {
  oosm::ObjectModel model;
  const auto ship = oosm::build_ship(model, "Test", 2, 2);
  PdmeConfig cfg;
  cfg.shard_count = 4;
  cfg.shard_queue_capacity = 2;  // force backpressure, not loss
  cfg.overflow_policy = OverflowPolicy::Block;
  PdmeExecutive exec(model, cfg);

  std::vector<ObjectId> machines;
  for (const auto& plant : ship.plants) {
    machines.insert(machines.end(), {plant.chiller, plant.motor, plant.gearbox,
                                     plant.compressor});
  }
  constexpr std::size_t kReports = 300;
  for (std::size_t i = 0; i < kReports; ++i) {
    exec.accept(make_report(machines[i % machines.size()],
                            FailureMode::MotorBearingWear, 0.5, 0.5, /*ks=*/1,
                            100.0 + static_cast<double>(i)));
  }
  exec.synchronize();
  // Block is lossless: every distinct report fused, however small the queue.
  EXPECT_EQ(exec.stats().reports_accepted, kReports);
}

TEST(PdmeShardedTest, DropOldestAccountsForEveryEviction) {
  oosm::ObjectModel model;
  const auto ship = oosm::build_ship(model, "Test", 1, 1);
  const ObjectId motor = ship.plants.front().motor;
  PdmeConfig cfg;
  cfg.shard_count = 1;
  cfg.shard_queue_capacity = 2;
  cfg.overflow_policy = OverflowPolicy::DropOldest;
  PdmeExecutive exec(model, cfg);

  constexpr std::size_t kReports = 500;
  for (std::size_t i = 0; i < kReports; ++i) {
    exec.accept(make_report(motor, FailureMode::MotorImbalance, 0.5, 0.5, 1,
                            100.0 + static_cast<double>(i)));
  }
  exec.synchronize();
  // Conservation under shedding: every submission either fused or was the
  // push that found the queue full and evicted its oldest entry.
  const auto stats = exec.stats();
  EXPECT_EQ(stats.reports_accepted + stats.queue_full, kReports);
  EXPECT_LE(stats.reports_accepted, kReports);
}

}  // namespace
}  // namespace mpros::pdme
