#pragma once
// Lock-light metrics for the MPROS hot paths.
//
// The DAQ digitizes tens of thousands of samples per simulated second and
// the PDME fuses reports from every DC on the ship; neither can afford a
// mutex per observation. Counters and gauges are single relaxed atomics;
// histograms are fixed-bucket with one atomic per bucket, so concurrent
// observers never contend on anything wider than a cache line of counts.
// Registration (name -> metric) takes a mutex, but components look their
// metrics up once and keep the reference: the Registry never deletes a
// metric, so references stay valid for the life of the process.
//
// Names are namespaced "component.metric" ("daq.samples_digitized",
// "pdme.fuse_wall_us") so snapshots group naturally per component.
//
// This library sits *below* mpros::common (the logger counts Warn/Error
// per component through it), so it depends on nothing but the standard
// library.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace mpros::telemetry {

namespace detail {
inline std::atomic<bool> g_enabled{true};
}  // namespace detail

/// Global kill switch. Disabled, every inc()/set()/observe() is a relaxed
/// load + branch — the baseline `bench_telemetry_overhead` compares against.
inline void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}
[[nodiscard]] inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Monotonic event count. inc() is one relaxed fetch_add.
class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    if (enabled()) v_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) {
    if (enabled()) v_.store(v, std::memory_order_relaxed);
  }
  [[nodiscard]] double value() const {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram. `upper_bounds` (ascending) define the bucket
/// edges; an implicit overflow bucket catches everything above the last
/// bound. Quantiles interpolate linearly inside the owning bucket, so a
/// reported quantile is always within that bucket's [lower, upper] bounds.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v);

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double mean() const;
  /// q in [0, 1]. Returns 0 while empty; the last bound caps the overflow
  /// bucket (an estimate, flagged by max_exceeded()).
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] bool max_exceeded() const;

  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;
  void reset();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Default latency buckets: 1-2-5 sequence from 1 us to 10 s.
[[nodiscard]] std::vector<double> default_latency_bounds_us();

struct MetricSnapshot {
  enum class Kind { Counter, Gauge, Histogram };
  std::string name;
  Kind kind = Kind::Counter;
  double value = 0.0;       ///< counter/gauge reading
  std::uint64_t count = 0;  ///< histogram observations
  double sum = 0.0;
  double p50 = 0.0, p95 = 0.0, p99 = 0.0;
};

/// Process-wide metric namespace. counter()/gauge()/histogram() create on
/// first use and return a stable reference; snapshot() reads everything
/// without disturbing writers.
class Registry {
 public:
  static Registry& instance();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `bounds` applies only on first creation of `name`.
  Histogram& histogram(const std::string& name,
                       std::vector<double> bounds = default_latency_bounds_us());

  [[nodiscard]] std::vector<MetricSnapshot> snapshot() const;  // name order
  [[nodiscard]] std::string render_text() const;
  [[nodiscard]] std::string render_json() const;

  /// Zero every metric (keeps registrations; for tests and benches).
  void reset_values();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace mpros::telemetry
