#include "mpros/mpros/validation.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "mpros/common/assert.hpp"

namespace mpros {

using domain::FailureMode;

dc::DcConfig ValidationConfig::long_haul_dc_config() {
  dc::DcConfig dc;
  dc.vibration_period = SimTime::from_hours(6.0);
  dc.process_period = SimTime::from_seconds(1800.0);
  return dc;
}

ScenarioScore run_scenario(const ValidationScenario& scenario,
                           const ValidationConfig& cfg) {
  MPROS_EXPECTS(scenario.wear_time.micros() > 0);
  MPROS_EXPECTS(cfg.late_checkpoint > 0.0 && cfg.late_checkpoint < 1.0);

  ShipSystemConfig ship_cfg;
  ship_cfg.plant_count = 2;  // plant 0 faulted, plant 1 healthy control
  ship_cfg.dc_template = cfg.dc;
  ship_cfg.seed = splitmix64(scenario.seed ^ 0x9A11);

  ShipSystem ship(ship_cfg);
  ship.chiller(0).faults().schedule({scenario.mode, scenario.onset,
                                     scenario.wear_time, 1.0,
                                     scenario.profile});

  ScenarioScore score;
  score.scenario = scenario;
  score.failure_time = scenario.onset + scenario.wear_time;

  // The machines a conclusion may legitimately name for the seeded mode
  // (any object of the faulted plant).
  const oosm::ChillerPlant& faulted = ship.plant_objects(0);
  const ObjectId plant0_objects[] = {faulted.chiller, faulted.motor,
                                     faulted.gearbox, faulted.compressor};
  const oosm::ChillerPlant& control = ship.plant_objects(1);
  const ObjectId control_objects[] = {control.chiller, control.motor,
                                      control.gearbox, control.compressor};

  const SimTime checkpoint =
      scenario.onset + SimTime(static_cast<std::int64_t>(
                           cfg.late_checkpoint *
                           static_cast<double>(scenario.wear_time.micros())));
  bool checkpoint_taken = false;

  while (ship.now() < score.failure_time) {
    ship.advance_to(std::min(score.failure_time, ship.now() + cfg.step));

    if (!score.detected) {
      for (const ObjectId machine : plant0_objects) {
        for (const pdme::MaintenanceItem& item :
             ship.pdme().prioritized_list(machine)) {
          if (item.mode != scenario.mode) continue;
          score.detected = true;
          score.detection_time = ship.now();
          score.lead_time = score.failure_time - ship.now();
          break;
        }
        if (score.detected) break;
      }
    }

    if (!checkpoint_taken && ship.now() >= checkpoint) {
      checkpoint_taken = true;
      const SimTime actual_remaining = score.failure_time - ship.now();
      if (actual_remaining.micros() <= 0) continue;
      for (const ObjectId machine : plant0_objects) {
        for (const pdme::MaintenanceItem& item :
             ship.pdme().prioritized_list(machine)) {
          if (item.mode != scenario.mode) continue;
          if (item.median_ttf.has_value()) {
            score.late_p50_relative_error =
                std::fabs(item.median_ttf->days() - actual_remaining.days()) /
                actual_remaining.days();
          }
          if (item.trend_ttf.has_value()) {
            score.late_trend_relative_error =
                std::fabs(item.trend_ttf->days() - actual_remaining.days()) /
                actual_remaining.days();
          }
          if (item.p90_ttf.has_value()) {
            score.p90_conservative =
                ship.now() + *item.p90_ttf <= score.failure_time;
          }
          break;
        }
        if (score.late_p50_relative_error.has_value()) break;
      }
    }
  }

  for (const ObjectId machine : control_objects) {
    score.false_alarms += ship.pdme().prioritized_list(machine).size();
  }
  return score;
}

ValidationSummary run_validation(std::span<const ValidationScenario> scenarios,
                                 const ValidationConfig& cfg) {
  ValidationSummary summary;
  std::size_t detected = 0, with_p50 = 0, with_trend = 0, with_p90 = 0,
              p90_ok = 0;
  double lead_fraction_sum = 0.0, p50_error_sum = 0.0, trend_error_sum = 0.0;

  for (const ValidationScenario& scenario : scenarios) {
    ScenarioScore score = run_scenario(scenario, cfg);
    if (score.detected) {
      ++detected;
      lead_fraction_sum +=
          static_cast<double>(score.lead_time->micros()) /
          static_cast<double>(scenario.wear_time.micros());
      if (score.late_p50_relative_error.has_value()) {
        ++with_p50;
        p50_error_sum += *score.late_p50_relative_error;
        ++with_p90;
        if (score.p90_conservative) ++p90_ok;
      }
      if (score.late_trend_relative_error.has_value()) {
        ++with_trend;
        trend_error_sum += *score.late_trend_relative_error;
      }
    }
    summary.total_false_alarms += score.false_alarms;
    summary.scores.push_back(std::move(score));
  }

  const double n = static_cast<double>(scenarios.size());
  summary.detection_rate = n > 0 ? static_cast<double>(detected) / n : 0.0;
  summary.mean_lead_fraction =
      detected > 0 ? lead_fraction_sum / static_cast<double>(detected) : 0.0;
  summary.mean_late_p50_error =
      with_p50 > 0 ? p50_error_sum / static_cast<double>(with_p50) : 0.0;
  summary.mean_late_trend_error =
      with_trend > 0 ? trend_error_sum / static_cast<double>(with_trend)
                     : 0.0;
  summary.p90_conservative_rate =
      with_p90 > 0 ? static_cast<double>(p90_ok) /
                         static_cast<double>(with_p90)
                   : 0.0;
  return summary;
}

std::vector<ValidationScenario> standard_study(SimTime wear_time,
                                               std::uint64_t seed) {
  std::vector<ValidationScenario> scenarios;
  std::uint64_t i = 0;
  for (const FailureMode mode : domain::all_failure_modes()) {
    ValidationScenario s;
    s.mode = mode;
    s.onset = SimTime::from_days(2.0);
    s.wear_time = wear_time;
    s.profile = plant::GrowthProfile::Linear;
    s.seed = splitmix64(seed + i++);
    scenarios.push_back(s);
  }
  return scenarios;
}

std::string render(const ValidationSummary& summary) {
  std::string out;
  char buf[200];
  out += "=== Seeded-fault validation study (paper §9) ===\n";
  std::snprintf(buf, sizeof buf, "%-26s %9s %10s %10s %11s %6s %4s\n",
                "mode", "detected", "lead", "P50 err", "trend err", "P90ok",
                "FA");
  out += buf;
  for (const ScenarioScore& s : summary.scores) {
    char p50[16] = "--", trend[16] = "--";
    if (s.late_p50_relative_error) {
      std::snprintf(p50, sizeof p50, "%.0f%%",
                    100.0 * *s.late_p50_relative_error);
    }
    if (s.late_trend_relative_error) {
      std::snprintf(trend, sizeof trend, "%.0f%%",
                    100.0 * *s.late_trend_relative_error);
    }
    std::snprintf(
        buf, sizeof buf, "%-26s %9s %10s %10s %11s %6s %4zu\n",
        domain::to_string(s.scenario.mode), s.detected ? "yes" : "NO",
        s.lead_time ? to_string(*s.lead_time).c_str() : "--", p50, trend,
        s.detected ? (s.p90_conservative ? "yes" : "no") : "--",
        s.false_alarms);
    out += buf;
  }
  std::snprintf(
      buf, sizeof buf,
      "detection %.0f%%, mean lead %.0f%% of wear life, late P50 error "
      "%.0f%% (gradient) vs %.0f%% (trend), P90 conservative %.0f%%, "
      "false alarms %zu\n",
      100.0 * summary.detection_rate, 100.0 * summary.mean_lead_fraction,
      100.0 * summary.mean_late_p50_error,
      100.0 * summary.mean_late_trend_error,
      100.0 * summary.p90_conservative_rate, summary.total_false_alarms);
  out += buf;
  return out;
}

}  // namespace mpros
