# Empty dependencies file for mpros_common.
# This may be replaced when dependencies are built.
