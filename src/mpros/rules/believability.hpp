#pragma once
// Believability factors (paper §6.1).
//
// "These believability factors are based on DLI's statistical database that
// demonstrates the individual accuracy of each diagnosis by tracking how
// often each was reversed or modified by a human analyst prior to report
// approval." We model that database as per-mode confirmation/reversal
// counters with a Beta prior, so a fresh table starts near the fleet-wide
// 95% agreement figure and adapts as analysts confirm or reverse calls.

#include <array>

#include "mpros/domain/failure_modes.hpp"

namespace mpros::rules {

class BelievabilityTable {
 public:
  /// `prior_confirmed`/`prior_reversed` form the Beta prior. The default
  /// 19:1 encodes the paper's "exceeds 95% agreement with human expert
  /// analysts".
  explicit BelievabilityTable(double prior_confirmed = 19.0,
                              double prior_reversed = 1.0);

  /// Analyst approved the diagnosis unchanged.
  void record_confirmation(domain::FailureMode mode);
  /// Analyst reversed or modified the diagnosis before approval.
  void record_reversal(domain::FailureMode mode);

  /// Belief factor in (0,1): (confirmed + prior_c) / (total + priors).
  [[nodiscard]] double belief(domain::FailureMode mode) const;

  [[nodiscard]] double confirmations(domain::FailureMode mode) const;
  [[nodiscard]] double reversals(domain::FailureMode mode) const;

 private:
  struct Counts {
    double confirmed = 0.0;
    double reversed = 0.0;
  };
  std::array<Counts, domain::kFailureModeCount> counts_{};
  double prior_confirmed_;
  double prior_reversed_;
};

}  // namespace mpros::rules
