# Empty dependencies file for mpros_pdme.
# This may be replaced when dependencies are built.
