#include "mpros/plant/daq.hpp"

#include <algorithm>
#include <cmath>

#include "mpros/common/assert.hpp"
#include "mpros/telemetry/metrics.hpp"

namespace mpros::plant {

namespace {

struct DaqMetrics {
  telemetry::Counter& banks_acquired;
  telemetry::Counter& samples_digitized;
  telemetry::Counter& rms_alarms;
  telemetry::Histogram& scan_duration_us;

  static DaqMetrics& get() {
    static DaqMetrics m{
        telemetry::Registry::instance().counter("daq.banks_acquired"),
        telemetry::Registry::instance().counter("daq.samples_digitized"),
        telemetry::Registry::instance().counter("daq.rms_alarms"),
        telemetry::Registry::instance().histogram("daq.scan_duration_us"),
    };
    return m;
  }
};

}  // namespace

DaqChain::DaqChain(DaqConfig cfg, SignalSource source)
    : cfg_(cfg), source_(std::move(source)) {
  MPROS_EXPECTS(source_ != nullptr);
  MPROS_EXPECTS(cfg_.max_sample_rate_hz > 0.0);
  const std::size_t n = channel_count();
  thresholds_.assign(n, std::nullopt);
  latched_.assign(n, false);
  const double tc_samples =
      cfg_.rms_time_constant.seconds() * cfg_.alarm_sample_rate_hz;
  trackers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    trackers_.emplace_back(tc_samples);
  }
}

std::size_t DaqChain::channel_count() const {
  return cfg_.mux_cards * cfg_.banks_per_card * cfg_.channels_per_bank;
}

void DaqChain::set_alarm_threshold(std::size_t channel,
                                   std::optional<double> rms) {
  MPROS_EXPECTS(channel < channel_count());
  thresholds_[channel] = rms;
}

BankAcquisition DaqChain::acquire_bank(std::size_t card, std::size_t bank,
                                       std::size_t samples,
                                       double sample_rate_hz, SimTime now) {
  MPROS_EXPECTS(card < cfg_.mux_cards);
  MPROS_EXPECTS(bank < cfg_.banks_per_card);
  MPROS_EXPECTS(samples > 0);
  const double rate = std::min(sample_rate_hz, cfg_.max_sample_rate_hz);

  BankAcquisition out;
  out.started = now;
  const SimTime record_start = now + cfg_.mux_settle;
  const SimTime record_length = SimTime::from_seconds(
      static_cast<double>(samples) / rate);
  out.finished = record_start + record_length;

  const std::size_t base =
      (card * cfg_.banks_per_card + bank) * cfg_.channels_per_bank;
  for (std::size_t c = 0; c < cfg_.channels_per_bank; ++c) {
    std::vector<double> waveform(samples);
    source_(base + c, record_start.seconds(), rate, waveform);
    out.waveforms.push_back(std::move(waveform));
    out.channels.push_back(base + c);
  }
  DaqMetrics::get().banks_acquired.inc();
  DaqMetrics::get().samples_digitized.inc(samples * cfg_.channels_per_bank);
  return out;
}

DaqChain::FullScan DaqChain::scan_all(std::size_t samples_per_channel,
                                      double sample_rate_hz, SimTime now) {
  FullScan scan;
  scan.waveforms.resize(channel_count());
  SimTime t = now;
  for (std::size_t card = 0; card < cfg_.mux_cards; ++card) {
    for (std::size_t bank = 0; bank < cfg_.banks_per_card; ++bank) {
      BankAcquisition acq =
          acquire_bank(card, bank, samples_per_channel, sample_rate_hz, t);
      for (std::size_t c = 0; c < acq.channels.size(); ++c) {
        scan.total_samples += acq.waveforms[c].size();
        scan.waveforms[acq.channels[c]] = std::move(acq.waveforms[c]);
      }
      t = acq.finished;
    }
  }
  scan.duration = t - now;
  DaqMetrics::get().scan_duration_us.observe(
      static_cast<double>(scan.duration.micros()));
  return scan;
}

std::vector<RmsAlarm> DaqChain::poll_alarms(SimTime now, SimTime duration) {
  MPROS_EXPECTS(duration.micros() > 0);
  const auto samples = static_cast<std::size_t>(
      duration.seconds() * cfg_.alarm_sample_rate_hz);
  std::vector<RmsAlarm> alarms;
  if (samples == 0) return alarms;

  scratch_.resize(samples);
  for (std::size_t ch = 0; ch < channel_count(); ++ch) {
    if (!thresholds_[ch] || latched_[ch]) continue;
    source_(ch, now.seconds(), cfg_.alarm_sample_rate_hz, scratch_);
    for (std::size_t i = 0; i < samples; ++i) {
      const double rms = trackers_[ch].step(scratch_[i]);
      if (rms > *thresholds_[ch]) {
        alarms.push_back(RmsAlarm{
            ch,
            now + SimTime::from_seconds(static_cast<double>(i) /
                                        cfg_.alarm_sample_rate_hz),
            rms});
        latched_[ch] = true;
        DaqMetrics::get().rms_alarms.inc();
        break;
      }
    }
  }
  return alarms;
}

void DaqChain::rearm_alarms() {
  std::fill(latched_.begin(), latched_.end(), false);
  for (auto& tracker : trackers_) tracker.reset();
}

}  // namespace mpros::plant
