// Wire protocol and simulated ship-network tests.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <span>

#include "mpros/common/rng.hpp"
#include "mpros/net/codec.hpp"
#include "mpros/net/fleet_summary.hpp"
#include "mpros/net/messages.hpp"
#include "mpros/net/network.hpp"
#include "mpros/net/reliable.hpp"
#include "mpros/net/report.hpp"
#include "mpros/telemetry/metrics.hpp"
#include "mpros/telemetry/recorder.hpp"

namespace mpros::net {
namespace {

TEST(CodecTest, PrimitivesRoundTrip) {
  Writer w;
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.i64(-42);
  w.f64(3.14159);
  w.str("hello");
  w.str("");

  Reader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.str(), "");
  EXPECT_TRUE(r.done());
}

FailureReport sample_report() {
  FailureReport r;
  r.dc = DcId(3);
  r.knowledge_source = KnowledgeSourceId(1);
  r.sensed_object = ObjectId(17);
  r.machine_condition = ConditionId(5);
  r.severity = 0.62;
  r.belief = 0.91;
  r.explanation = "1x running-speed amplitude elevated";
  r.recommendations = "Field balance the rotor.";
  r.timestamp = SimTime::from_seconds(1234.5);
  r.additional_info = "load=0.8";
  r.prognostics = {{0.1, 86400.0}, {0.5, 604800.0}, {0.9, 2592000.0}};
  return r;
}

TEST(ReportProtocolTest, SerializeDeserializeRoundTrip) {
  const FailureReport original = sample_report();
  const auto bytes = serialize(original);
  const FailureReport decoded = deserialize_report(bytes);
  EXPECT_EQ(decoded, original);
}

TEST(ReportProtocolTest, EmptyOptionalFieldsAllowed) {
  // §7.2: explanation / recommendations "allowed to be blank"; §7.3 allows
  // zero prognostic pairs.
  FailureReport r = sample_report();
  r.explanation.clear();
  r.recommendations.clear();
  r.additional_info.clear();
  r.prognostics.clear();
  EXPECT_EQ(deserialize_report(serialize(r)), r);
}

TEST(ReportProtocolTest, SummaryIsOneLine) {
  const std::string s = summarize(sample_report());
  EXPECT_EQ(s.find('\n'), std::string::npos);
  EXPECT_NE(s.find("dc=3"), std::string::npos);
}

// --- SimNetwork --------------------------------------------------------------

NetworkConfig quiet_config() {
  NetworkConfig cfg;
  cfg.base_latency = SimTime::from_millis(10.0);
  cfg.jitter = SimTime::from_millis(0.0001);
  cfg.drop_probability = 0.0;
  cfg.duplicate_probability = 0.0;
  return cfg;
}

TEST(SimNetworkTest, DeliversAfterLatency) {
  SimNetwork net(quiet_config());
  std::vector<std::string> inbox;
  net.register_endpoint("pdme", [&](const Message& m) {
    inbox.emplace_back(m.payload.begin(), m.payload.end());
  });

  net.send("dc-1", "pdme", {'h', 'i'}, SimTime(0));
  EXPECT_EQ(net.advance_to(SimTime::from_millis(5.0)), 0u);  // not yet due
  EXPECT_EQ(net.advance_to(SimTime::from_millis(20.0)), 1u);
  ASSERT_EQ(inbox.size(), 1u);
  EXPECT_EQ(inbox[0], "hi");
}

TEST(SimNetworkTest, DeliveryOrderFollowsDeliveryTime) {
  NetworkConfig cfg = quiet_config();
  cfg.jitter = SimTime::from_millis(200.0);  // heavy jitter -> reordering
  cfg.seed = 7;
  SimNetwork net(cfg);
  std::vector<int> order;
  net.register_endpoint("pdme", [&](const Message& m) {
    order.push_back(m.payload[0]);
  });
  for (int i = 0; i < 32; ++i) {
    net.send("dc", "pdme", {static_cast<std::uint8_t>(i)},
             SimTime::from_millis(i));
  }
  net.flush();
  ASSERT_EQ(order.size(), 32u);
  EXPECT_NE(order, ([] {
              std::vector<int> v;
              for (int i = 0; i < 32; ++i) v.push_back(i);
              return v;
            })());  // jitter actually reordered something
}

TEST(SimNetworkTest, DropsAndDuplicatesAccounted) {
  NetworkConfig cfg = quiet_config();
  cfg.drop_probability = 0.3;
  cfg.duplicate_probability = 0.2;
  cfg.seed = 11;
  SimNetwork net(cfg);
  std::size_t received = 0;
  net.register_endpoint("pdme", [&](const Message&) { ++received; });

  constexpr std::size_t kSent = 2000;
  for (std::size_t i = 0; i < kSent; ++i) {
    net.send("dc", "pdme", {1}, SimTime(0));
  }
  net.flush();

  const NetworkStats stats = net.stats();
  EXPECT_EQ(stats.sent, kSent);
  EXPECT_NEAR(static_cast<double>(stats.dropped) / kSent, 0.3, 0.05);
  EXPECT_NEAR(static_cast<double>(stats.duplicated) / kSent,
              0.2 * 0.7 / 1.0, 0.05);  // duplicates only of non-dropped
  EXPECT_EQ(stats.delivered, received);
  EXPECT_EQ(received, kSent - stats.dropped + stats.duplicated);
}

TEST(SimNetworkTest, DeterministicGivenSeed) {
  const auto run = [] {
    NetworkConfig cfg;
    cfg.drop_probability = 0.2;
    cfg.jitter = SimTime::from_millis(50.0);
    cfg.seed = 99;
    SimNetwork net(cfg);
    std::vector<std::uint8_t> order;
    net.register_endpoint("pdme", [&](const Message& m) {
      order.push_back(m.payload[0]);
    });
    for (int i = 0; i < 64; ++i) {
      net.send("dc", "pdme", {static_cast<std::uint8_t>(i)}, SimTime(0));
    }
    net.flush();
    return order;
  };
  EXPECT_EQ(run(), run());
}

TEST(SimNetworkTest, UnknownDestinationDeadLetters) {
  SimNetwork net(quiet_config());
  net.send("dc", "nowhere", {1}, SimTime(0));
  net.flush();
  EXPECT_EQ(net.stats().dead_lettered, 1u);
}

TEST(SimNetworkTest, InFlightCountsQueued) {
  SimNetwork net(quiet_config());
  net.register_endpoint("pdme", [](const Message&) {});
  net.send("dc", "pdme", {1}, SimTime(0));
  EXPECT_EQ(net.in_flight(), 1u);
  net.flush();
  EXPECT_EQ(net.in_flight(), 0u);
}

TEST(SimNetworkTest, ReportSurvivesTransportIntact) {
  SimNetwork net(quiet_config());
  FailureReport received;
  net.register_endpoint("pdme", [&](const Message& m) {
    received = deserialize_report(m.payload);
  });
  const FailureReport sent = sample_report();
  net.send("dc-3", "pdme", serialize(sent), SimTime(0));
  net.flush();
  EXPECT_EQ(received, sent);
}

// --- Fail-soft decoding / fuzz ----------------------------------------------
//
// The PDME endpoint and the replay tooling feed arbitrary bytes through the
// try_* decoders; no input, however mangled, may crash or allocate wildly.

TEST(FuzzDecodeTest, TraceRidesTheWire) {
  FailureReport r = sample_report();
  r.trace = 0xFEEDFACEull;
  EXPECT_EQ(deserialize_report(serialize(r)).trace, 0xFEEDFACEull);
}

TEST(FuzzDecodeTest, VersionOneReportStillDecodes) {
  // A v1 wire image (pre-trace) hand-built field by field: upgraded nodes
  // must keep accepting reports from DCs that have not been reflashed.
  const FailureReport expected = sample_report();
  Writer w;
  w.u16(0x4D52);  // magic "MR"
  w.u8(1);        // version 1: no trace id
  w.u64(expected.dc.value());
  w.u64(expected.knowledge_source.value());
  w.u64(expected.sensed_object.value());
  w.u64(expected.machine_condition.value());
  w.f64(expected.severity);
  w.f64(expected.belief);
  w.str(expected.explanation);
  w.str(expected.recommendations);
  w.i64(expected.timestamp.micros());
  w.str(expected.additional_info);
  w.u32(static_cast<std::uint32_t>(expected.prognostics.size()));
  for (const PrognosticPair& p : expected.prognostics) {
    w.f64(p.probability);
    w.f64(p.time_seconds);
  }

  const auto decoded = try_deserialize_report(w.bytes());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->trace, 0u);  // untraced
  EXPECT_EQ(*decoded, expected);
}

TEST(FuzzDecodeTest, EveryTruncationReturnsNullopt) {
  const auto bytes = serialize(sample_report());
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(try_deserialize_report(
                     std::span(bytes.data(), len)).has_value())
        << "prefix of " << len << " bytes decoded";
  }
}

TEST(FuzzDecodeTest, SingleByteCorruptionNeverCrashes) {
  const auto clean = serialize(sample_report());
  for (std::size_t i = 0; i < clean.size(); ++i) {
    auto bytes = clean;
    bytes[i] ^= 0xFF;
    // Flipped float/string bytes may still parse; headers and counts must
    // not. Either way: no crash, no abort.
    (void)try_deserialize_report(bytes);
  }
  auto bad_magic = clean;
  bad_magic[0] ^= 0xFF;
  EXPECT_FALSE(try_deserialize_report(bad_magic).has_value());
  auto bad_version = clean;
  bad_version[2] = 0xEE;
  EXPECT_FALSE(try_deserialize_report(bad_version).has_value());
}

TEST(FuzzDecodeTest, HugePrognosticCountRejectedBeforeAllocation) {
  auto bytes = serialize(sample_report());
  // The prognostic count is the u32 before the 3 * 16 trailing pair bytes.
  const std::size_t count_at = bytes.size() - 3 * 16 - 4;
  bytes[count_at] = 0xFF;
  bytes[count_at + 1] = 0xFF;
  bytes[count_at + 2] = 0xFF;
  bytes[count_at + 3] = 0xFF;
  EXPECT_FALSE(try_deserialize_report(bytes).has_value());
}

TEST(FuzzDecodeTest, RandomBuffersNeverCrash) {
  Rng rng(0xF422);
  for (int round = 0; round < 2000; ++round) {
    std::vector<std::uint8_t> junk(rng.integer(0, 255));
    for (auto& b : junk) {
      b = static_cast<std::uint8_t>(rng.integer(0, 255));
    }
    (void)try_peek_type(junk);
    (void)try_deserialize_report(junk);
    (void)try_unwrap_report(junk);
    (void)try_unwrap_sensor_data(junk);
    (void)try_unwrap_test_command(junk);
    (void)telemetry::FlightRecorder::decode(junk);
  }
}

TEST(FuzzDecodeTest, WrongEnvelopeTypeReturnsNullopt) {
  const auto wrapped = wrap(sample_report());
  ASSERT_EQ(try_peek_type(wrapped), MessageType::FailureReportMsg);
  EXPECT_FALSE(try_unwrap_sensor_data(wrapped).has_value());
  EXPECT_FALSE(try_unwrap_test_command(wrapped).has_value());
  EXPECT_TRUE(try_unwrap_report(wrapped).has_value());
}

TEST(FuzzDecodeTest, RecorderDumpTruncationAndCorruption) {
  telemetry::FlightRecorder rec(16);
  rec.set_header({telemetry::kRecorderVersion, true, 4, 0xBEEF});
  rec.record_message(1000, "dc-1", "pdme", {1, 2, 3, 4});
  rec.record_event(2000, "dc-1", "vibration test");
  const auto bytes = rec.encode();
  ASSERT_TRUE(telemetry::FlightRecorder::decode(bytes).has_value());

  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(telemetry::FlightRecorder::decode(
                     std::span(bytes.data(), len)).has_value())
        << "truncated dump of " << len << " bytes decoded";
  }
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    auto mangled = bytes;
    mangled[i] ^= 0xFF;
    (void)telemetry::FlightRecorder::decode(mangled);  // must not crash
  }
  auto trailing = bytes;
  trailing.push_back(0);
  EXPECT_FALSE(telemetry::FlightRecorder::decode(trailing).has_value());
}

// --- Scripted outages --------------------------------------------------------

TEST(OutageTest, HardPartitionWindowIsDeterministic) {
  SimNetwork net(quiet_config());
  std::vector<int> inbox;
  net.register_endpoint("pdme",
                        [&](const Message& m) { inbox.push_back(m.payload[0]); });
  net.schedule_outage({"dc-1", SimTime::from_seconds(10),
                       SimTime::from_seconds(20), 1.0});

  net.send("dc-1", "pdme", {1}, SimTime::from_seconds(5));   // before window
  net.send("dc-1", "pdme", {2}, SimTime::from_seconds(15));  // partitioned
  net.send("dc-2", "pdme", {3}, SimTime::from_seconds(15));  // other endpoint
  net.send("dc-1", "pdme", {4}, SimTime::from_seconds(20));  // window is [from, to)
  net.flush();

  EXPECT_EQ(inbox, (std::vector<int>{1, 3, 4}));
  EXPECT_EQ(net.stats().dropped, 1u);
  EXPECT_EQ(net.stats().outage_dropped, 1u);
}

TEST(OutageTest, BurstLossWindowDropsStatistically) {
  NetworkConfig cfg = quiet_config();
  cfg.seed = 23;
  SimNetwork net(cfg);
  std::size_t received = 0;
  net.register_endpoint("pdme", [&](const Message&) { ++received; });
  // Empty endpoint = the whole network degrades for ten seconds.
  net.schedule_outage({"", SimTime::from_seconds(10), SimTime::from_seconds(20),
                       0.5});

  constexpr std::size_t kSent = 2000;
  for (std::size_t i = 0; i < kSent; ++i) {
    net.send("dc-1", "pdme", {1}, SimTime::from_seconds(15));
  }
  net.flush();

  const NetworkStats stats = net.stats();
  EXPECT_NEAR(static_cast<double>(stats.dropped) / kSent, 0.5, 0.05);
  EXPECT_EQ(stats.outage_dropped, stats.dropped);  // no baseline loss here
  EXPECT_EQ(received, kSent - stats.dropped);
}

TEST(OutageTest, OverlappingWindowsWorstProbabilityWins) {
  SimNetwork net(quiet_config());
  std::size_t received = 0;
  net.register_endpoint("pdme", [&](const Message&) { ++received; });
  net.schedule_outage({"", SimTime(0), SimTime::from_seconds(100), 0.0});
  net.schedule_outage({"pdme", SimTime::from_seconds(10),
                       SimTime::from_seconds(20), 1.0});

  net.send("dc-1", "pdme", {1}, SimTime::from_seconds(15));  // hard window wins
  net.send("dc-1", "pdme", {2}, SimTime::from_seconds(50));  // 0.0 window only
  net.flush();
  EXPECT_EQ(received, 1u);
  EXPECT_EQ(net.stats().outage_dropped, 1u);
}

TEST(OutageTest, DeterministicGivenSeedWithOutages) {
  const auto run = [] {
    NetworkConfig cfg;
    cfg.drop_probability = 0.1;
    cfg.jitter = SimTime::from_millis(50.0);
    cfg.seed = 77;
    SimNetwork net(cfg);
    net.schedule_outage({"dc-1", SimTime::from_millis(100),
                         SimTime::from_millis(400), 0.7});
    std::vector<std::uint8_t> order;
    net.register_endpoint("pdme", [&](const Message& m) {
      order.push_back(m.payload[0]);
    });
    for (int i = 0; i < 64; ++i) {
      net.send(i % 2 ? "dc-1" : "dc-2", "pdme",
               {static_cast<std::uint8_t>(i)}, SimTime::from_millis(10.0 * i));
    }
    net.flush();
    return order;
  };
  EXPECT_EQ(run(), run());
}

// --- Reliable delivery -------------------------------------------------------

TEST(ReliableProtocolTest, EnvelopeAckHeartbeatRoundTripOnTheWire) {
  ReportEnvelope env{DcId(4), 9, sample_report()};
  const auto env_back = try_unwrap_envelope(wrap(env));
  ASSERT_TRUE(env_back.has_value());
  EXPECT_EQ(*env_back, env);

  AckMessage ack{DcId(4), 9};
  const auto ack_back = try_unwrap_ack(wrap(ack));
  ASSERT_TRUE(ack_back.has_value());
  EXPECT_EQ(*ack_back, ack);

  HeartbeatMessage hb{DcId(4), SimTime::from_seconds(60.0), 9};
  const auto hb_back = try_unwrap_heartbeat(wrap(hb));
  ASSERT_TRUE(hb_back.has_value());
  EXPECT_EQ(*hb_back, hb);

  // Cross-type unwraps fail soft, never throw.
  EXPECT_FALSE(try_unwrap_ack(wrap(env)).has_value());
  EXPECT_FALSE(try_unwrap_envelope(wrap(hb)).has_value());
}

TEST(ReliableChannelTest, AckRetiresBufferedEnvelopes) {
  ReliableSender sender(DcId(3));
  ReliableReceiver receiver;

  const auto payload = sender.envelope(sample_report(), SimTime(0));
  EXPECT_EQ(sender.unacked(), 1u);
  EXPECT_EQ(sender.last_sequence(), 1u);

  const auto env = try_unwrap_envelope(payload);
  ASSERT_TRUE(env.has_value());
  EXPECT_EQ(env->dc, DcId(3));
  EXPECT_EQ(env->sequence, 1u);
  EXPECT_EQ(env->report, sample_report());

  const auto outcome = receiver.on_envelope(env->dc, env->sequence);
  EXPECT_FALSE(outcome.duplicate);
  EXPECT_EQ(outcome.new_gaps, 0u);
  EXPECT_EQ(outcome.ack.cumulative, 1u);

  sender.on_ack(outcome.ack);
  EXPECT_EQ(sender.unacked(), 0u);
  EXPECT_TRUE(sender.due_retransmits(SimTime::from_hours(10.0)).empty());
}

TEST(ReliableChannelTest, DeprecatedStatsShimsEqualSnapshots) {
  // snapshot() is the canonical counter accessor; the older stats() name is
  // a thin shim pinned to the same value.
  ReliableSender sender(DcId(5));
  ReliableReceiver receiver;

  const auto payload = sender.envelope(sample_report(), SimTime(0));
  const auto env = try_unwrap_envelope(payload);
  ASSERT_TRUE(env.has_value());
  const auto outcome = receiver.on_envelope(env->dc, env->sequence);
  (void)receiver.on_envelope(env->dc, env->sequence);  // a duplicate too
  sender.on_ack(outcome.ack);

  EXPECT_GT(sender.snapshot().enveloped, 0u);
  EXPECT_TRUE(sender.stats() == sender.snapshot());
  EXPECT_GT(receiver.snapshot().duplicates, 0u);
  EXPECT_TRUE(receiver.stats() == receiver.snapshot());
}

TEST(ReliableChannelTest, GapDetectedOnLaterSequenceThenHealed) {
  ReliableReceiver receiver;
  const DcId dc(1);

  EXPECT_EQ(receiver.on_envelope(dc, 1).ack.cumulative, 1u);
  const auto skip = receiver.on_envelope(dc, 3);
  EXPECT_EQ(skip.new_gaps, 1u);
  EXPECT_EQ(skip.ack.cumulative, 1u);  // 2 still missing
  EXPECT_EQ(receiver.open_gaps(dc), 1u);

  const auto heal = receiver.on_envelope(dc, 2);
  EXPECT_FALSE(heal.duplicate);
  EXPECT_EQ(heal.new_gaps, 0u);
  EXPECT_EQ(heal.ack.cumulative, 3u);  // cumulative jumps over the healed gap
  EXPECT_EQ(receiver.open_gaps(dc), 0u);
  EXPECT_EQ(receiver.stats().gaps_detected, 1u);
  EXPECT_EQ(receiver.stats().gaps_healed, 1u);
}

TEST(ReliableChannelTest, DuplicatesDroppedButStillAcked) {
  ReliableReceiver receiver;
  EXPECT_FALSE(receiver.on_envelope(DcId(1), 1).duplicate);
  const auto dup = receiver.on_envelope(DcId(1), 1);
  EXPECT_TRUE(dup.duplicate);
  // The previous ack may have been the datagram that got lost; a duplicate
  // arrival still earns a fresh cumulative ack.
  EXPECT_EQ(dup.ack.cumulative, 1u);
  EXPECT_EQ(receiver.stats().duplicates, 1u);
  // Per-DC streams are independent.
  EXPECT_FALSE(receiver.on_envelope(DcId(2), 1).duplicate);
}

TEST(ReliableChannelTest, RetransmitTimersBackOffExponentially) {
  ReliableConfig cfg;
  cfg.initial_rto = SimTime::from_seconds(10.0);
  cfg.backoff = 2.0;
  cfg.max_rto = SimTime::from_seconds(40.0);
  ReliableSender sender(DcId(1), cfg);
  (void)sender.envelope(sample_report(), SimTime(0));

  EXPECT_TRUE(sender.due_retransmits(SimTime::from_seconds(9.0)).empty());
  EXPECT_EQ(sender.due_retransmits(SimTime::from_seconds(10.0)).size(), 1u);
  // Backed off to 20 s: due again at t=30, not t=29.
  EXPECT_TRUE(sender.due_retransmits(SimTime::from_seconds(29.0)).empty());
  EXPECT_EQ(sender.due_retransmits(SimTime::from_seconds(30.0)).size(), 1u);
  EXPECT_EQ(sender.stats().retransmits, 2u);
}

TEST(ReliableChannelTest, BufferOverflowEvictsOldest) {
  ReliableConfig cfg;
  cfg.buffer_limit = 4;
  ReliableSender sender(DcId(1), cfg);
  for (int i = 0; i < 6; ++i) {
    (void)sender.envelope(sample_report(), SimTime(0));
  }
  EXPECT_EQ(sender.unacked(), 4u);
  EXPECT_EQ(sender.stats().overflow_dropped, 2u);
  EXPECT_EQ(sender.last_sequence(), 6u);
}

TEST(ReliableChannelTest, AdvertisedTailSequenceRevealsLoss) {
  ReliableReceiver receiver;
  receiver.on_envelope(DcId(1), 1);
  // A heartbeat advertises sequence 3: 2 and 3 are missing in flight.
  EXPECT_EQ(receiver.on_advertised(DcId(1), 3), 2u);
  EXPECT_EQ(receiver.on_advertised(DcId(1), 3), 0u);  // already known
  EXPECT_EQ(receiver.open_gaps(DcId(1)), 2u);
  EXPECT_EQ(receiver.cumulative(DcId(1)), 1u);
}

TEST(ReliableChannelTest, RetransmitDebtObservableInTelemetry) {
  // The retransmit window used to be a black box until the dead-letter
  // warning fired; now the inflight gauge tracks unacked entries across
  // every live sender, and a counter fires when an entry first hits the
  // backoff ceiling. Deltas, not absolutes: other senders in this process
  // may have touched the same metrics.
  auto& reg = telemetry::Registry::instance();
  auto& inflight = reg.gauge("net.retransmit_inflight");
  auto& ceiling = reg.counter("net.retransmit_max_backoff");
  const double g0 = inflight.value();
  const std::uint64_t c0 = ceiling.value();

  ReliableConfig cfg;
  cfg.initial_rto = SimTime::from_seconds(10.0);
  cfg.max_rto = SimTime::from_seconds(40.0);
  {
    ReliableSender sender(DcId(91), cfg);
    (void)sender.envelope(sample_report(), SimTime(0));
    (void)sender.envelope(sample_report(), SimTime(0));
    EXPECT_DOUBLE_EQ(inflight.value(), g0 + 2);

    // RTO walks 10 -> 20 -> 40 (ceiling, counted once per entry) -> 40.
    (void)sender.due_retransmits(SimTime::from_seconds(10.0));
    (void)sender.due_retransmits(SimTime::from_seconds(30.0));
    EXPECT_EQ(sender.stats().max_backoff_hits, 2u);
    EXPECT_EQ(ceiling.value(), c0 + 2);
    (void)sender.due_retransmits(SimTime::from_seconds(100.0));
    EXPECT_EQ(ceiling.value(), c0 + 2);  // already at the ceiling: no recount

    sender.on_ack(AckMessage{DcId(91), 1});
    EXPECT_DOUBLE_EQ(inflight.value(), g0 + 1);
  }
  // A sender dying with unacked entries returns its share of the debt.
  EXPECT_DOUBLE_EQ(inflight.value(), g0);
}

// ---------------------------------------------------------------------------
// Fleet-summary wire protocol (the ship-to-shore digest).

FleetSummary sample_summary() {
  FleetSummary s;
  s.ship = ShipId(7);
  s.ship_name = "Hull-07";
  s.timestamp = SimTime::from_seconds(3600.0);
  s.dcs_alive = 3;
  s.dcs_stale = 1;
  s.dcs_lost = 0;
  s.quarantine_active = 2;
  s.quarantine_total = 11;

  MachineHealthSummary motor;
  motor.machine = ObjectId(17);
  motor.name = "A/C Compressor Motor 1";
  motor.klass = "Motor";
  motor.health = 0.72;
  motor.has_diagnosis = true;
  motor.top_mode = domain::FailureMode::MotorImbalance;
  motor.top_belief = 0.83;
  motor.top_severity = 0.6;
  motor.priority = 0.498;
  motor.report_count = 5;
  motor.has_median_ttf = true;
  motor.median_ttf = SimTime::from_hours(96.0);
  s.machines.push_back(motor);

  MachineHealthSummary pump;
  pump.machine = ObjectId(21);
  pump.name = "Chilled Water Pump 1";
  pump.klass = "Pump";
  pump.health = 0.98;
  s.machines.push_back(pump);
  return s;
}

TEST(FleetSummaryProtocolTest, SerializeDeserializeRoundTrip) {
  const FleetSummary original = sample_summary();
  const auto bytes = serialize(original);
  const auto decoded = try_deserialize_fleet_summary(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, original);
}

TEST(FleetSummaryProtocolTest, EnvelopeRoundTripOnTheWire) {
  FleetSummaryEnvelope env;
  env.ship = ShipId(7);
  env.sequence = 42;
  env.summary = sample_summary();
  const auto wire = wrap(env);
  ASSERT_EQ(try_peek_type(wire), MessageType::FleetSummaryEnvelopeMsg);
  const auto decoded = try_unwrap_fleet_envelope(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, env);
}

TEST(FleetSummaryProtocolTest, ZeroSequenceEnvelopeRejected) {
  FleetSummaryEnvelope env;
  env.ship = ShipId(7);
  env.sequence = 0;  // reliable streams start at 1
  env.summary = sample_summary();
  EXPECT_FALSE(try_unwrap_fleet_envelope(wrap(env)).has_value());
}

TEST(FuzzDecodeTest, FleetSummaryEveryTruncationReturnsNullopt) {
  const auto bytes = serialize(sample_summary());
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(try_deserialize_fleet_summary(
                     std::span(bytes.data(), len)).has_value())
        << "prefix of " << len << " bytes decoded";
  }
  const auto wire = wrap(FleetSummaryEnvelope{ShipId(7), 3, sample_summary()});
  for (std::size_t len = 0; len < wire.size(); ++len) {
    EXPECT_FALSE(try_unwrap_fleet_envelope(
                     std::span(wire.data(), len)).has_value())
        << "envelope prefix of " << len << " bytes decoded";
  }
}

TEST(FuzzDecodeTest, FleetSummarySingleByteCorruptionNeverCrashes) {
  const auto clean = serialize(sample_summary());
  for (std::size_t i = 0; i < clean.size(); ++i) {
    auto bytes = clean;
    bytes[i] ^= 0xFF;
    (void)try_deserialize_fleet_summary(bytes);
  }
  auto bad_magic = clean;
  bad_magic[0] ^= 0xFF;
  EXPECT_FALSE(try_deserialize_fleet_summary(bad_magic).has_value());
  auto bad_version = clean;
  bad_version[2] = 0xEE;
  EXPECT_FALSE(try_deserialize_fleet_summary(bad_version).has_value());
}

TEST(FuzzDecodeTest, FleetSummaryHugeMachineCountRejectedBeforeAllocation) {
  // With no machines, the trailing u32 is the machine count.
  FleetSummary s = sample_summary();
  s.machines.clear();
  auto bytes = serialize(s);
  for (std::size_t i = bytes.size() - 4; i < bytes.size(); ++i) {
    bytes[i] = 0xFF;
  }
  EXPECT_FALSE(try_deserialize_fleet_summary(bytes).has_value());
}

TEST(FuzzDecodeTest, FleetEnvelopeWrongTypeReturnsNullopt) {
  EXPECT_FALSE(try_unwrap_fleet_envelope(wrap(sample_report())).has_value());
  const auto wire = wrap(FleetSummaryEnvelope{ShipId(7), 3, sample_summary()});
  EXPECT_FALSE(try_unwrap_report(wire).has_value());
  EXPECT_FALSE(try_unwrap_envelope(wire).has_value());
  EXPECT_FALSE(try_unwrap_ack(wire).has_value());
}

TEST(FuzzDecodeTest, FleetDecodersSurviveRandomBuffers) {
  Rng rng(0xF1EE);
  for (int round = 0; round < 2000; ++round) {
    std::vector<std::uint8_t> junk(rng.integer(0, 255));
    for (auto& b : junk) {
      b = static_cast<std::uint8_t>(rng.integer(0, 255));
    }
    (void)try_deserialize_fleet_summary(junk);
    (void)try_unwrap_fleet_envelope(junk);
  }
}

// ---------------------------------------------------------------------------
// Runtime-control-plane wire protocol (CommandMessage + CommandEnvelope).

CommandMessage sample_command() {
  CommandMessage cmd;
  cmd.target = DcId(3);
  cmd.revision = 12;
  cmd.issued_at = SimTime::from_seconds(1234.0);
  cmd.settings = {{"validator.spike_sigmas", 7.5}, {"dc.enable_fuzzy", 0.0}};
  cmd.reason = "ops: tighten spike screening";
  return cmd;
}

TEST(CommandProtocolTest, SerializeDeserializeRoundTrip) {
  const CommandMessage original = sample_command();
  const auto decoded = try_deserialize_command(serialize(original));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, original);
}

TEST(CommandProtocolTest, BareAndEnvelopedWireRoundTrip) {
  const CommandMessage cmd = sample_command();
  // The shore-downlink hop carries the bare command.
  const auto bare = wrap(cmd);
  ASSERT_EQ(try_peek_type(bare), MessageType::Command);
  const auto bare_back = try_unwrap_command(bare);
  ASSERT_TRUE(bare_back.has_value());
  EXPECT_EQ(*bare_back, cmd);

  // The PDME -> DC hop seals it in the reliable command stream.
  const CommandEnvelope env{DcId(3), 5, cmd};
  const auto wire = wrap(env);
  ASSERT_EQ(try_peek_type(wire), MessageType::CommandEnvelopeMsg);
  const auto env_back = try_unwrap_command_envelope(wire);
  ASSERT_TRUE(env_back.has_value());
  EXPECT_EQ(*env_back, env);
}

TEST(CommandProtocolTest, ZeroSequenceEnvelopeRejected) {
  const CommandEnvelope env{DcId(3), 0, sample_command()};
  EXPECT_FALSE(try_unwrap_command_envelope(wrap(env)).has_value());
}

TEST(CommandProtocolTest, EmptySettingsAndReasonAllowed) {
  CommandMessage cmd;
  cmd.target = DcId(1);
  const auto decoded = try_deserialize_command(serialize(cmd));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, cmd);
}

TEST(FuzzDecodeTest, CommandEveryTruncationReturnsNullopt) {
  const auto bytes = serialize(sample_command());
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(
        try_deserialize_command(std::span(bytes.data(), len)).has_value())
        << "prefix of " << len << " bytes decoded";
  }
  const auto wire = wrap(CommandEnvelope{DcId(3), 5, sample_command()});
  for (std::size_t len = 0; len < wire.size(); ++len) {
    EXPECT_FALSE(
        try_unwrap_command_envelope(std::span(wire.data(), len)).has_value())
        << "envelope prefix of " << len << " bytes decoded";
  }
}

TEST(FuzzDecodeTest, CommandSingleByteCorruptionNeverCrashes) {
  const auto clean = serialize(sample_command());
  for (std::size_t i = 0; i < clean.size(); ++i) {
    auto bytes = clean;
    bytes[i] ^= 0xFF;
    (void)try_deserialize_command(bytes);
  }
  auto bad_magic = clean;
  bad_magic[0] ^= 0xFF;
  EXPECT_FALSE(try_deserialize_command(bad_magic).has_value());
  auto bad_version = clean;
  bad_version[2] = 0xEE;
  EXPECT_FALSE(try_deserialize_command(bad_version).has_value());
}

TEST(FuzzDecodeTest, CommandHugeSettingsCountRejectedBeforeAllocation) {
  // With no settings, the trailing u32 is the settings count.
  CommandMessage cmd = sample_command();
  cmd.settings.clear();
  auto bytes = serialize(cmd);
  for (std::size_t i = bytes.size() - 4; i < bytes.size(); ++i) {
    bytes[i] = 0xFF;
  }
  EXPECT_FALSE(try_deserialize_command(bytes).has_value());
}

TEST(FuzzDecodeTest, CommandWrongTypeReturnsNullopt) {
  EXPECT_FALSE(try_unwrap_command(wrap(sample_report())).has_value());
  EXPECT_FALSE(try_unwrap_command_envelope(wrap(sample_command())).has_value());
  const auto wire = wrap(CommandEnvelope{DcId(3), 5, sample_command()});
  EXPECT_FALSE(try_unwrap_command(wire).has_value());
  EXPECT_FALSE(try_unwrap_report(wire).has_value());
  EXPECT_FALSE(try_unwrap_envelope(wire).has_value());
  EXPECT_FALSE(try_unwrap_ack(wire).has_value());
  EXPECT_FALSE(try_unwrap_test_command(wire).has_value());
}

TEST(FuzzDecodeTest, CommandDecodersSurviveRandomBuffers) {
  Rng rng(0xC04D);
  for (int round = 0; round < 2000; ++round) {
    std::vector<std::uint8_t> junk(rng.integer(0, 255));
    for (auto& b : junk) {
      b = static_cast<std::uint8_t>(rng.integer(0, 255));
    }
    (void)try_deserialize_command(junk);
    (void)try_unwrap_command(junk);
    (void)try_unwrap_command_envelope(junk);
  }
}

// ---------------------------------------------------------------------------
// TestCommandMessage fuzz coverage (the §5.8 scheduler command), matching
// the FleetSummary/Command suites above.

TestCommandMessage sample_test_command() {
  TestCommandMessage cmd;
  cmd.target = DcId(4);
  cmd.command = TestCommandMessage::Command::VibrationTest;
  cmd.reason = "PDME retest after fused severity jump";
  return cmd;
}

TEST(FuzzDecodeTest, TestCommandEveryTruncationReturnsNullopt) {
  const auto wire = wrap(sample_test_command());
  for (std::size_t len = 0; len < wire.size(); ++len) {
    EXPECT_FALSE(
        try_unwrap_test_command(std::span(wire.data(), len)).has_value())
        << "prefix of " << len << " bytes decoded";
  }
}

TEST(FuzzDecodeTest, TestCommandSingleByteCorruptionNeverCrashes) {
  const auto clean = wrap(sample_test_command());
  for (std::size_t i = 0; i < clean.size(); ++i) {
    auto bytes = clean;
    bytes[i] ^= 0xFF;
    (void)try_unwrap_test_command(bytes);
  }
  auto wrong_type = clean;
  wrong_type[0] = static_cast<std::uint8_t>(MessageType::Ack);
  EXPECT_FALSE(try_unwrap_test_command(wrong_type).has_value());
}

TEST(FuzzDecodeTest, TestCommandSurvivesRandomBuffers) {
  Rng rng(0x7E57);
  for (int round = 0; round < 2000; ++round) {
    std::vector<std::uint8_t> junk(rng.integer(0, 255));
    for (auto& b : junk) {
      b = static_cast<std::uint8_t>(rng.integer(0, 255));
    }
    (void)try_unwrap_test_command(junk);
  }
}

// ---------------------------------------------------------------------------
// ReportBatch wire protocol (E21 batched ingest): wrap_batch /
// wrap_batch_envelope + the unified arena decoder, mirrored on the
// CommandMessage suites above.

std::vector<FailureReport> sample_batch_reports() {
  std::vector<FailureReport> reports;
  for (int i = 0; i < 3; ++i) {
    FailureReport r = sample_report();
    r.sensed_object = ObjectId(17 + i);
    r.severity = 0.3 + 0.2 * i;
    r.timestamp = SimTime::from_seconds(100.0 * (i + 1));
    if (i == 1) r.prognostics.clear();  // mixed payload shapes in one batch
    reports.push_back(std::move(r));
  }
  return reports;
}

TEST(BatchProtocolTest, BareWireRoundTrip) {
  const auto reports = sample_batch_reports();
  const auto wire = wrap_batch(DcId(3), reports);
  ASSERT_EQ(try_peek_type(wire), MessageType::ReportBatchMsg);

  std::vector<ReportEnvelope> arena;
  const auto view = try_unwrap_reports_into(wire, arena);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->dc, DcId(3));
  EXPECT_EQ(view->sequence, 0u);
  ASSERT_EQ(view->count, reports.size());
  for (std::size_t i = 0; i < reports.size(); ++i) {
    EXPECT_EQ(arena[i].report, reports[i]);
    EXPECT_EQ(arena[i].dc, DcId(3));
    EXPECT_EQ(arena[i].sequence, 0u);
  }
}

TEST(BatchProtocolTest, SequencedWireRoundTrip) {
  const auto reports = sample_batch_reports();
  const auto wire = wrap_batch_envelope(DcId(3), 7, reports);
  ASSERT_EQ(try_peek_type(wire), MessageType::ReportBatchEnvelopeMsg);

  std::vector<ReportEnvelope> arena;
  const auto view = try_unwrap_reports_into(wire, arena);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->dc, DcId(3));
  EXPECT_EQ(view->sequence, 7u);
  ASSERT_EQ(view->count, reports.size());
  for (std::size_t i = 0; i < reports.size(); ++i) {
    EXPECT_EQ(arena[i].report, reports[i]);
    EXPECT_EQ(arena[i].sequence, 7u);
  }
}

TEST(BatchProtocolTest, EmptyBatchAllowed) {
  std::vector<ReportEnvelope> arena;
  const auto view =
      try_unwrap_reports_into(wrap_batch(DcId(2), {}), arena);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ(view->dc, DcId(2));
  EXPECT_EQ(view->count, 0u);
}

TEST(BatchProtocolTest, ZeroSequenceEnvelopeRejected) {
  std::vector<ReportEnvelope> arena;
  const auto wire = wrap_batch_envelope(DcId(3), 0, sample_batch_reports());
  EXPECT_FALSE(try_unwrap_reports_into(wire, arena).has_value());
}

TEST(BatchProtocolTest, ForgedSourceDcRejected) {
  // A frame claiming a DC other than the batch header's is a forgery: the
  // whole datagram fails, not just the one frame.
  auto reports = sample_batch_reports();
  reports[1].dc = DcId(4);
  std::vector<ReportEnvelope> arena;
  EXPECT_FALSE(
      try_unwrap_reports_into(wrap_batch(DcId(3), reports), arena)
          .has_value());
}

TEST(BatchProtocolTest, SingletonWireFormsDecodeAsOneElementBatches) {
  const FailureReport r = sample_report();
  std::vector<ReportEnvelope> arena;

  const auto bare = try_unwrap_reports_into(wrap(r), arena);
  ASSERT_TRUE(bare.has_value());
  EXPECT_EQ(bare->count, 1u);
  EXPECT_EQ(bare->sequence, 0u);
  EXPECT_EQ(arena.front().report, r);

  const ReportEnvelope env{r.dc, 9, r};
  const auto sequenced = try_unwrap_reports_into(wrap(env), arena);
  ASSERT_TRUE(sequenced.has_value());
  EXPECT_EQ(sequenced->count, 1u);
  EXPECT_EQ(sequenced->sequence, 9u);
  EXPECT_EQ(arena.front().report, r);
}

TEST(BatchProtocolTest, ArenaOnlyGrowsAcrossDecodes) {
  const auto reports = sample_batch_reports();
  std::vector<ReportEnvelope> arena;
  ASSERT_TRUE(
      try_unwrap_reports_into(wrap_batch(DcId(3), reports), arena)
          .has_value());
  const std::size_t high_water = arena.size();
  ASSERT_EQ(high_water, reports.size());

  // A smaller batch decodes into the same slots: size never shrinks, and
  // only the returned prefix is meaningful.
  const auto one = try_unwrap_reports_into(
      wrap_batch(DcId(3), std::span(reports.data(), 1)), arena);
  ASSERT_TRUE(one.has_value());
  EXPECT_EQ(one->count, 1u);
  EXPECT_EQ(arena.size(), high_water);
  EXPECT_EQ(arena.front().report, reports[0]);
}

TEST(FuzzDecodeTest, BatchEveryTruncationReturnsNullopt) {
  std::vector<ReportEnvelope> arena;
  const auto bare = wrap_batch(DcId(3), sample_batch_reports());
  for (std::size_t len = 0; len < bare.size(); ++len) {
    EXPECT_FALSE(
        try_unwrap_reports_into(std::span(bare.data(), len), arena)
            .has_value())
        << "bare prefix of " << len << " bytes decoded";
  }
  const auto wire = wrap_batch_envelope(DcId(3), 7, sample_batch_reports());
  for (std::size_t len = 0; len < wire.size(); ++len) {
    EXPECT_FALSE(
        try_unwrap_reports_into(std::span(wire.data(), len), arena)
            .has_value())
        << "envelope prefix of " << len << " bytes decoded";
  }
}

TEST(FuzzDecodeTest, BatchSingleByteCorruptionNeverCrashes) {
  std::vector<ReportEnvelope> arena;
  const auto clean = wrap_batch(DcId(3), sample_batch_reports());
  for (std::size_t i = 0; i < clean.size(); ++i) {
    auto bytes = clean;
    bytes[i] ^= 0xFF;
    (void)try_unwrap_reports_into(bytes, arena);
  }
  auto bad_magic = clean;
  bad_magic[1] ^= 0xFF;  // type byte, then the u16 batch magic
  EXPECT_FALSE(try_unwrap_reports_into(bad_magic, arena).has_value());
  auto bad_version = clean;
  bad_version[3] = 0xEE;
  EXPECT_FALSE(try_unwrap_reports_into(bad_version, arena).has_value());
}

TEST(FuzzDecodeTest, BatchHugeCountRejectedBeforeAllocation) {
  // An empty batch's trailing u32 is the report count: saturate it and the
  // decoder must reject on the payload-capacity bound without ever growing
  // the arena.
  auto bytes = wrap_batch(DcId(3), {});
  for (std::size_t i = bytes.size() - 4; i < bytes.size(); ++i) {
    bytes[i] = 0xFF;
  }
  std::vector<ReportEnvelope> arena;
  EXPECT_FALSE(try_unwrap_reports_into(bytes, arena).has_value());
  EXPECT_TRUE(arena.empty());
}

TEST(FuzzDecodeTest, BatchWrongTypeReturnsNullopt) {
  std::vector<ReportEnvelope> arena;
  EXPECT_FALSE(
      try_unwrap_reports_into(wrap(sample_command()), arena).has_value());
  EXPECT_FALSE(
      try_unwrap_reports_into(wrap(sample_test_command()), arena)
          .has_value());
  const auto wire = wrap_batch(DcId(3), sample_batch_reports());
  EXPECT_FALSE(try_unwrap_command(wire).has_value());
  EXPECT_FALSE(try_unwrap_report(wire).has_value());
  EXPECT_FALSE(try_unwrap_envelope(wire).has_value());
  EXPECT_FALSE(try_unwrap_ack(wire).has_value());
}

TEST(FuzzDecodeTest, BatchDecoderSurvivesRandomBuffers) {
  Rng rng(0xBA7C);
  std::vector<ReportEnvelope> arena;
  for (int round = 0; round < 2000; ++round) {
    std::vector<std::uint8_t> junk(rng.integer(0, 255));
    for (auto& b : junk) {
      b = static_cast<std::uint8_t>(rng.integer(0, 255));
    }
    (void)try_unwrap_reports_into(junk, arena);
  }
}

// ---------------------------------------------------------------------------
// Retransmit/heartbeat de-synchronization (the thundering-herd guard).

TEST(DesyncPhaseTest, PhasesDeterministicBoundedAndSpread) {
  const SimTime period = SimTime::from_seconds(60.0);
  std::set<std::int64_t> distinct;
  for (std::uint64_t id = 1; id <= 200; ++id) {
    const SimTime phase = desync_phase(id, period);
    // Deterministic: a restarted owner keeps its phase.
    EXPECT_EQ(phase, desync_phase(id, period));
    // Bounded: within [0, period/4) so cadence guarantees barely move.
    EXPECT_GE(phase.micros(), 0);
    EXPECT_LT(phase.micros(), period.micros() / 4);
    distinct.insert(phase.micros());
  }
  // Spread: 200 DCs brought up together must not share a handful of slots.
  EXPECT_GT(distinct.size(), 150u);
  // Degenerate periods fall back to no offset rather than dividing by zero.
  EXPECT_EQ(desync_phase(7, SimTime(0)), SimTime(0));
}

TEST(DesyncPhaseTest, SweepAndHeartbeatStreamsOfOneDcDiffer) {
  // The DC derives sweep phase from id<<1 and heartbeat phase from
  // (id<<1)|1: the two schedules of a single DC must not collide either.
  const SimTime period = SimTime::from_seconds(60.0);
  std::size_t differing = 0;
  for (std::uint64_t id = 1; id <= 50; ++id) {
    if (desync_phase(id << 1, period) != desync_phase((id << 1) | 1, period)) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 45u);
}

// ---------------------------------------------------------------------------
// ReliableSender under a persistent outage: backoff caps at max_rto, the
// ceiling is observable, and the window drains once the link heals.

TEST(ReliableChannelTest, PersistentOutageCapsBackoffThenDrains) {
  auto& ceiling =
      telemetry::Registry::instance().counter("net.retransmit_max_backoff");
  const std::uint64_t c0 = ceiling.value();

  SimNetwork net;  // no random loss; the outage does the damage
  ReliableConfig cfg;
  cfg.initial_rto = SimTime::from_seconds(60.0);
  cfg.backoff = 2.0;
  cfg.max_rto = SimTime::from_seconds(240.0);
  ReliableSender sender(DcId(5), cfg);
  ReliableReceiver receiver;

  std::vector<AckMessage> acks;
  net.register_endpoint("pdme", [&](const Message& msg) {
    const auto env = try_unwrap_envelope(msg.payload);
    ASSERT_TRUE(env.has_value());
    const auto out = receiver.on_envelope(env->dc, env->sequence);
    if (!out.duplicate) acks.push_back(out.ack);
  });

  // The link is down from the start until t=3600 s.
  net.schedule_outage({"pdme", SimTime(0), SimTime::from_seconds(3600.0), 1.0});
  net.send("dc-5", "pdme", sender.envelope(sample_report(), SimTime(0)),
           SimTime(0));

  // Sweep once a minute through the outage: RTO walks 60 -> 120 -> 240
  // (ceiling) -> 240 -> ... Retransmits land at 60, 180, 420, 660, ...
  std::uint64_t sweeps_with_work = 0;
  for (double t = 60.0; t <= 3600.0; t += 60.0) {
    const auto due = sender.due_retransmits(SimTime::from_seconds(t));
    sweeps_with_work += due.empty() ? 0 : 1;
    for (const auto& payload : due) {
      net.send("dc-5", "pdme", payload, SimTime::from_seconds(t));
    }
    net.advance_to(SimTime::from_seconds(t));
  }
  // 60, 180, 420 then every 240 s from 660 through 3540: 3 + 13 rounds.
  EXPECT_EQ(sweeps_with_work, 16u);
  EXPECT_EQ(sender.stats().max_backoff_hits, 1u);  // counted once per entry
  EXPECT_EQ(ceiling.value(), c0 + 1);
  EXPECT_EQ(sender.unacked(), 1u);  // nothing got through, nothing lost
  EXPECT_TRUE(acks.empty());

  // The link heals: the next due retransmit is delivered, acked, retired.
  const auto due = sender.due_retransmits(SimTime::from_seconds(3780.0));
  ASSERT_EQ(due.size(), 1u);
  net.send("dc-5", "pdme", due[0], SimTime::from_seconds(3780.0));
  net.advance_to(SimTime::from_seconds(3800.0));
  ASSERT_EQ(acks.size(), 1u);
  sender.on_ack(acks[0]);
  EXPECT_EQ(sender.unacked(), 0u);
  EXPECT_TRUE(sender.due_retransmits(SimTime::from_hours(24.0)).empty());
}

}  // namespace
}  // namespace mpros::net
