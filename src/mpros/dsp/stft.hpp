#pragma once
// Short-time Fourier transform / spectrogram.
//
// Complements the wavelet path for transitory phenomena (§6.2): a
// time-frequency map of a vibration record, used by analysts and by the
// transient benches to visualize burst faults that window-averaged spectra
// smear away.

#include <cstddef>
#include <span>
#include <vector>

#include "mpros/dsp/window.hpp"

namespace mpros::dsp {

struct StftConfig {
  std::size_t segment_size = 1024;  ///< power of two
  std::size_t hop = 512;            ///< samples between segment starts
  WindowKind window = WindowKind::Hann;
};

/// Magnitude spectrogram: frames x bins, amplitude-normalized like
/// amplitude_spectrum (unit sine ≈ 1.0 at its bin).
class Spectrogram {
 public:
  /// Empty spectrogram; fill via reshape() (reusable output buffers).
  Spectrogram() = default;

  Spectrogram(std::size_t frames, std::size_t bins, double bin_hz,
              double frame_step_s);

  /// Re-dimension in place, reusing the data buffer's capacity; all cells
  /// reset to zero. Same geometry => zero heap allocation.
  void reshape(std::size_t frames, std::size_t bins, double bin_hz,
               double frame_step_s);

  [[nodiscard]] std::size_t frames() const { return frames_; }
  [[nodiscard]] std::size_t bins() const { return bins_; }
  [[nodiscard]] double bin_hz() const { return bin_hz_; }
  [[nodiscard]] double frame_step_s() const { return frame_step_s_; }

  [[nodiscard]] double at(std::size_t frame, std::size_t bin) const;
  double& at(std::size_t frame, std::size_t bin);

  /// Amplitude vs time at the bin nearest `hz` (one value per frame).
  [[nodiscard]] std::vector<double> tone_track(double hz) const;

  /// Per-frame total energy (sum of squared magnitudes) — burst detector.
  [[nodiscard]] std::vector<double> frame_energy() const;

  /// Coefficient of variation of frame energy: ~0 for stationary signals,
  /// large for bursty ones. The scalar the E13 story rests on.
  [[nodiscard]] double burstiness() const;

 private:
  std::size_t frames_ = 0, bins_ = 0;
  double bin_hz_ = 0.0, frame_step_s_ = 0.0;
  std::vector<double> data_;  // row-major frames x bins
};

/// Compute the magnitude spectrogram of a real signal. Requires
/// x.size() >= segment_size; trailing partial segments are dropped.
[[nodiscard]] Spectrogram stft(std::span<const double> x,
                               double sample_rate_hz,
                               const StftConfig& cfg = {});

/// Allocation-free variant: writes into `out`, reusing its capacity.
void stft(std::span<const double> x, double sample_rate_hz,
          const StftConfig& cfg, Spectrogram& out);

}  // namespace mpros::dsp
