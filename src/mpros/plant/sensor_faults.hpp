#pragma once
// Sensor-fault injection: the instrument lies, not the machine.
//
// The paper's §5.1 fusion assumptions ("incomplete ... fragmentary" inputs)
// cover the transport; this models the transducer end — dead accelerometer
// channels, stuck 4-20 mA loops, thermocouples reading physically absurd
// values, and intermittent connector spikes. Scenarios script windows of
// corruption per named channel so the DC's SensorValidator can be exercised
// deterministically: corruption is a pure function of (channel, time,
// sample index, seed), independent of acquisition order.
//
// Channel names follow the DC's convention: "vib.motor", "vib.gearbox",
// "vib.compressor", "current.motor", and the process snapshot keys
// ("process.bearing_temp_c", ...).

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "mpros/common/clock.hpp"
#include "mpros/plant/vibration.hpp"

namespace mpros::plant {

enum class SensorFaultType : std::uint8_t {
  StuckAt,     ///< channel flatlines at `level` (stuck DAC / frozen loop)
  Dropout,     ///< channel reads NaN (open circuit, dead channel)
  OutOfRange,  ///< constant bias `level` pushes readings out of physics
  Spike,       ///< sparse impulses of amplitude `level` (loose connector)
};

[[nodiscard]] const char* to_string(SensorFaultType type);

struct SensorFaultEvent {
  std::string channel;
  SensorFaultType type = SensorFaultType::StuckAt;
  SimTime from;
  SimTime to;
  /// StuckAt: the frozen reading. OutOfRange: additive bias. Spike: impulse
  /// amplitude (sign alternates per spike). Ignored for Dropout.
  double level = 0.0;
  /// Spike only: fraction of samples hit, in (0, 1].
  double spike_fraction = 0.005;
};

/// The vibration channel name for an accelerometer point.
[[nodiscard]] const char* vibration_channel(MachinePoint point);

inline constexpr const char* kCurrentChannel = "current.motor";

class SensorFaultInjector {
 public:
  explicit SensorFaultInjector(std::uint64_t seed = 0x5E4503) : seed_(seed) {}

  void schedule(SensorFaultEvent event);
  void clear() { events_.clear(); }
  [[nodiscard]] const std::vector<SensorFaultEvent>& events() const {
    return events_;
  }

  /// True if any fault window covers `channel` at `now` (ground truth for
  /// scoring the validator).
  [[nodiscard]] bool active(std::string_view channel, SimTime now) const;

  /// Corrupt a waveform window acquired from `channel` at `now` in place.
  /// No-op when no fault window is active.
  void corrupt_window(std::string_view channel, SimTime now,
                      std::span<double> samples) const;

  /// Corrupt a scalar process reading; returns the (possibly) faulted value.
  [[nodiscard]] double corrupt_value(std::string_view channel, SimTime now,
                                     double value) const;

 private:
  std::uint64_t seed_;
  std::vector<SensorFaultEvent> events_;
};

}  // namespace mpros::plant
