#pragma once
// Seeded-fault validation harness (paper §9).
//
// "One question we are often asked is 'How are you going to prove that your
// system does what you say it does?' ... The authors would welcome any
// input on how to validate a failure prediction system." §9's own answers —
// seeded faults, destructive run-to-failure tests, archived histories — are
// exactly what the simulator can mass-produce. This harness runs scripted
// run-to-failure scenarios (fault ramps to severity 1.0 at a known instant)
// and scores the PDME's predictions against that ground truth:
//
//  - detection: did the fused conclusion name the seeded mode, and how much
//    lead time did the crew get before functional failure?
//  - prognostic calibration: when the system said "P50 time-to-failure",
//    how far from the actual remaining life was it?
//  - conservatism: did the predicted P90 horizon land before the actual
//    failure (a late P90 means the crew was told "you have time" when they
//    did not)?
//  - false alarms: healthy control plants run alongside; any conclusion
//    against them counts against the system.

#include <optional>
#include <string>
#include <vector>

#include "mpros/mpros/ship_system.hpp"

namespace mpros {

struct ValidationScenario {
  domain::FailureMode mode{};
  SimTime onset = SimTime::from_days(2.0);
  /// Time from onset to severity 1.0 (functional failure). Default is a
  /// realistic wear life; §9 itself warns that accelerated seeded tests
  /// "might not exhibit the same precursors as real-world failures", and
  /// the gradient prognostics are calibrated in months/weeks/days.
  SimTime wear_time = SimTime::from_days(45.0);
  plant::GrowthProfile profile = plant::GrowthProfile::Linear;
  std::uint64_t seed = 1;
};

struct ScenarioScore {
  ValidationScenario scenario;
  SimTime failure_time;                ///< ground truth (onset + wear)
  bool detected = false;               ///< correct mode, fused, pre-failure
  std::optional<SimTime> detection_time;
  std::optional<SimTime> lead_time;    ///< failure_time - detection_time
  /// |predicted P50 remaining life - actual| / actual at the late-life
  /// checkpoint (85% through the wear life), where the gradient ladder's
  /// weeks/days calibration applies.
  std::optional<double> late_p50_relative_error;
  /// Same checkpoint, but using the §10.1 trend projection instead of the
  /// gradient defaults — the temporal-reasoning ablation.
  std::optional<double> late_trend_relative_error;
  /// Predicted P90 at the late checkpoint lands at/before actual failure.
  bool p90_conservative = false;
  std::size_t false_alarms = 0;        ///< conclusions against the control
};

struct ValidationSummary {
  std::vector<ScenarioScore> scores;
  double detection_rate = 0.0;
  double mean_lead_fraction = 0.0;    ///< lead_time / wear_time, detected only
  double mean_late_p50_error = 0.0;
  double mean_late_trend_error = 0.0;
  double p90_conservative_rate = 0.0;
  std::size_t total_false_alarms = 0;
};

struct ValidationConfig {
  /// Scenario driver step; detection timestamps are quantized to this.
  SimTime step = SimTime::from_hours(3.0);
  /// Fraction of the wear life at which calibration is checkpointed.
  double late_checkpoint = 0.85;
  dc::DcConfig dc = long_haul_dc_config();  ///< analyzers under validation

  /// Test cadence suited to multi-week scenarios (vibration every 6 h,
  /// process scan every 30 min).
  static dc::DcConfig long_haul_dc_config();
};

/// Run one scenario: a single faulted plant plus one healthy control plant,
/// simulated from t=0 until the seeded failure time.
[[nodiscard]] ScenarioScore run_scenario(const ValidationScenario& scenario,
                                         const ValidationConfig& cfg = {});

/// Run a batch and aggregate.
[[nodiscard]] ValidationSummary run_validation(
    std::span<const ValidationScenario> scenarios,
    const ValidationConfig& cfg = {});

/// The default §9-style study: every FMEA mode, one run-to-failure each.
[[nodiscard]] std::vector<ValidationScenario> standard_study(
    SimTime wear_time = SimTime::from_days(45.0), std::uint64_t seed = 0x9);

/// Human-readable table of a summary.
[[nodiscard]] std::string render(const ValidationSummary& summary);

}  // namespace mpros
