#include "mpros/sbfr/library.hpp"

namespace mpros::sbfr {

MachineDef make_spike_machine(const EmaConfig& cfg) {
  MachineDef def("current-spike", /*num_locals=*/0,
                 static_cast<std::uint8_t>(SpikeState::Wait));
  const std::uint8_t wait = def.add_state("Wait");
  const std::uint8_t p1 = def.add_state("PossibleSpike1");
  const std::uint8_t p2 = def.add_state("PossibleSpike2");
  const std::uint8_t spike = def.add_state("Spike");

  const Expr rise = Expr::delta(cfg.current_channel) > cfg.rise_threshold;
  const Expr fall =
      Expr::delta(cfg.current_channel) < Expr::constant(-cfg.fall_threshold);

  // 1. Wait -> P1: "C: Current Increase".
  def.add_transition(wait, p1, rise);

  // 2. P1 -> P2: "C: Current Decrease & ∆T <= 4" — the rise was followed
  //    promptly by a fall; a spike is now plausible.
  def.add_transition(p1, p2, fall && Expr::dt() <= cfg.dt_limit);

  // 3. P1 -> Wait: "C: ∆T > 4" — the rise was not followed by a prompt fall;
  //    it was a step or slow drift, not a spike.
  def.add_transition(p1, wait, Expr::dt() > cfg.dt_limit);

  // 4. P2 -> P1: "C: Current Increase & ∆T <= 4" — it bounced straight back
  //    up; restart measurement with this new rise.
  def.add_transition(p2, p1, rise && Expr::dt() <= cfg.dt_limit);

  // 5. P2 -> Wait: "C: Current Decrease & ∆T > 4" (reconstruction: the
  //    signal keeps falling — a downward step, not a return to baseline).
  def.add_transition(p2, wait, fall);

  // 6. P2 -> Spike: the signal settled after rise+fall. Set the status bit
  //    ("A: Status:0 <- Status:0 v 1") so other machines can observe it.
  def.add_transition(
      p2, spike, Expr::dt() >= cfg.settle_cycles,
      Action().set_status(cfg.spike_machine,
                          Expr::status(cfg.spike_machine).bit_or(
                              Expr::constant(1))));

  // 7. Spike -> Wait: "C: Status:0 = 0" — the consumer (Machine 1 or host)
  //    acknowledged the spike by clearing the status register.
  def.add_transition(spike, wait, Expr::status(cfg.spike_machine) == 0.0);

  return def;
}

MachineDef make_stiction_machine(const EmaConfig& cfg) {
  // Local 0 holds the spike count (the paper calls it "Local:1"; our local
  // indices are zero-based).
  MachineDef def("ema-stiction", /*num_locals=*/1,
                 static_cast<std::uint8_t>(StictionState::Wait));
  const std::uint8_t wait = def.add_state("Wait");
  const std::uint8_t stiction = def.add_state("Stiction");

  const Expr spike_seen = Expr::status(cfg.spike_machine) != 0.0;
  const Expr cpos_delta = Expr::delta(cfg.cpos_channel);
  const Expr cpos_unchanged =
      cpos_delta * cpos_delta <
      Expr::constant(cfg.cpos_epsilon * cfg.cpos_epsilon);

  // 1. Wait -> Stiction: "C: Local:1 > 4 / A: Status:1 <- Status:1 v 1".
  //    Also announce to host software via an event.
  def.add_transition(
      wait, stiction,
      Expr::local(0) > static_cast<double>(cfg.spike_count_limit),
      Action()
          .set_status(cfg.stiction_machine,
                      Expr::status(cfg.stiction_machine)
                          .bit_or(Expr::constant(1)))
          .emit(kStictionEventCode, Expr::local(0)));

  // 2. Wait self-loop: "C: Status:0 != 0 & CPOS unchanged /
  //    A: Status:0 <- 0; Local:1 <- Local:1 + 1" — count the spike and
  //    re-arm the spike machine.
  def.add_transition(wait, wait, spike_seen && cpos_unchanged,
                     Action()
                         .set_status(cfg.spike_machine, Expr::constant(0))
                         .set_local(0, Expr::local(0) + 1.0));

  // 3. Wait self-loop: a spike *with* a commanded position change is
  //    expected behaviour — consume it without counting.
  def.add_transition(wait, wait, spike_seen,
                     Action().set_status(cfg.spike_machine,
                                         Expr::constant(0)));

  // 4. Stiction -> Wait: "C: Status:1 = 0 / A: Local:1 <- 0" — the host
  //    acknowledged; restart counting.
  def.add_transition(stiction, wait,
                     Expr::status(cfg.stiction_machine) == 0.0,
                     Action().set_local(0, Expr::constant(0)));

  return def;
}

MachineDef make_threshold_machine(std::uint8_t channel, double threshold,
                                  double hold_cycles, std::uint8_t self_index,
                                  std::uint8_t event_code) {
  MachineDef def("threshold-alarm", /*num_locals=*/0, 0);
  const std::uint8_t idle = def.add_state("Idle");
  const std::uint8_t pending = def.add_state("Pending");
  const std::uint8_t alarm = def.add_state("Alarm");

  const Expr over = Expr::input(channel) > threshold;

  def.add_transition(idle, pending, over);
  // Fell back below before the hold expired: false alarm.
  def.add_transition(pending, idle, !over);
  def.add_transition(
      pending, alarm, Expr::dt() >= hold_cycles,
      Action()
          .set_status(self_index,
                      Expr::status(self_index).bit_or(Expr::constant(1)))
          .emit(event_code, Expr::input(channel)));
  def.add_transition(alarm, idle,
                     Expr::status(self_index) == 0.0 && !over);
  return def;
}

MachineDef make_trend_machine(std::uint8_t channel, double slope_threshold,
                              double run_length, std::uint8_t self_index,
                              std::uint8_t event_code) {
  // Local 0 counts consecutive rising cycles.
  MachineDef def("trend-detector", /*num_locals=*/1, 0);
  const std::uint8_t watch = def.add_state("Watch");
  const std::uint8_t trending = def.add_state("Trending");

  const Expr rising = Expr::delta(channel) > slope_threshold;

  def.add_transition(
      watch, trending, Expr::local(0) >= run_length,
      Action()
          .set_status(self_index,
                      Expr::status(self_index).bit_or(Expr::constant(1)))
          .emit(event_code, Expr::input(channel)));
  def.add_transition(watch, watch, rising,
                     Action().set_local(0, Expr::local(0) + 1.0));
  def.add_transition(watch, watch, !rising,
                     Action().set_local(0, Expr::constant(0)));
  def.add_transition(trending, watch, Expr::status(self_index) == 0.0,
                     Action().set_local(0, Expr::constant(0)));
  return def;
}

}  // namespace mpros::sbfr
