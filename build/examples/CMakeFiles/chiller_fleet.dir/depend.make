# Empty dependencies file for chiller_fleet.
# This may be replaced when dependencies are built.
