#include "mpros/plant/process.hpp"

#include <algorithm>
#include <cmath>

#include "mpros/common/assert.hpp"

namespace mpros::plant {

using domain::FailureMode;

ProcessModel::ProcessModel(domain::ProcessNominals nominals,
                           std::uint64_t seed, SimTime time_constant)
    : nom_(nominals), rng_(seed), tau_(time_constant) {
  MPROS_EXPECTS(time_constant.micros() > 0);
  state_ = targets(load_, Severities{});
}

void ProcessModel::reset() {
  load_ = 0.8;
  state_ = targets(load_, Severities{});
}

ProcessModel::Targets ProcessModel::targets(
    double load, const Severities& severities) const {
  const auto sev = [&](FailureMode m) {
    return severities[static_cast<std::size_t>(m)];
  };
  const double l = std::clamp(load, 0.0, 1.2);

  Targets t;
  // Load raises evaporator duty (lower pressure at high load) and
  // condensing pressure.
  t.evap_kpa = nom_.evap_pressure_kpa + 18.0 * (0.8 - l);
  t.cond_kpa = nom_.cond_pressure_kpa + 90.0 * (l - 0.8);
  t.chw_supply_c = nom_.chilled_water_supply_c + 0.4 * (l - 0.8);
  t.superheat_c = nom_.superheat_c;
  t.oil_kpa = nom_.oil_pressure_kpa;
  t.oil_c = nom_.oil_temperature_c + 4.0 * (l - 0.8);
  t.winding_c = nom_.motor_winding_temp_c + 22.0 * (l - 0.8);
  t.bearing_c = nom_.bearing_temp_c + 6.0 * (l - 0.8);
  t.cond_approach_c = 4.0 + 1.0 * (l - 0.8);
  t.current_a = nom_.motor_current_a * (0.25 + 0.75 * l);

  // Fault signatures on the process side.
  const double leak = sev(FailureMode::RefrigerantLeak);
  t.evap_kpa -= 95.0 * leak;
  t.superheat_c += 11.0 * leak;
  t.chw_supply_c += 5.0 * leak;

  const double fouling = sev(FailureMode::CondenserFouling);
  t.cond_kpa += 340.0 * fouling;
  t.cond_approach_c += 10.0 * fouling;
  t.current_a *= 1.0 + 0.20 * fouling;

  const double oil = sev(FailureMode::OilDegradation);
  t.oil_c += 26.0 * oil;
  t.oil_kpa -= 115.0 * oil;
  t.bearing_c += 12.0 * oil;

  const double winding = sev(FailureMode::StatorWindingFault);
  t.winding_c += 48.0 * winding;
  t.current_a *= 1.0 + 0.28 * winding;

  t.bearing_c += 24.0 * sev(FailureMode::MotorBearingWear);
  t.bearing_c += 28.0 * sev(FailureMode::CompressorBearingWear);
  t.oil_c += 6.0 * sev(FailureMode::CompressorBearingWear);

  // Cavitation depresses suction slightly.
  t.evap_kpa -= 30.0 * sev(FailureMode::PumpCavitation);

  // Heavy mechanical faults bleed a little energy into bearings.
  t.bearing_c += 5.0 * sev(FailureMode::ShaftMisalignment);
  t.bearing_c += 4.0 * sev(FailureMode::GearMeshWear);

  return t;
}

void ProcessModel::advance(SimTime dt, double load_fraction,
                           const Severities& severities) {
  MPROS_EXPECTS(dt.micros() >= 0);
  load_ = std::clamp(load_fraction, 0.0, 1.2);
  const Targets goal = targets(load_, severities);

  // First-order relaxation: alpha = 1 - exp(-dt/tau).
  const double alpha =
      1.0 - std::exp(-static_cast<double>(dt.micros()) /
                     static_cast<double>(tau_.micros()));
  const auto relax = [alpha](double& current, double target) {
    current += alpha * (target - current);
  };
  relax(state_.evap_kpa, goal.evap_kpa);
  relax(state_.cond_kpa, goal.cond_kpa);
  relax(state_.chw_supply_c, goal.chw_supply_c);
  relax(state_.superheat_c, goal.superheat_c);
  relax(state_.oil_kpa, goal.oil_kpa);
  relax(state_.oil_c, goal.oil_c);
  relax(state_.winding_c, goal.winding_c);
  relax(state_.bearing_c, goal.bearing_c);
  relax(state_.cond_approach_c, goal.cond_approach_c);
  relax(state_.current_a, goal.current_a);
}

ProcessSnapshot ProcessModel::state() const {
  return ProcessSnapshot{
      {"process.load", load_},
      {"process.evap_pressure_kpa", state_.evap_kpa},
      {"process.cond_pressure_kpa", state_.cond_kpa},
      {"process.chw_supply_c", state_.chw_supply_c},
      {"process.superheat_c", state_.superheat_c},
      {"process.oil_pressure_kpa", state_.oil_kpa},
      {"process.oil_temp_c", state_.oil_c},
      {"process.winding_temp_c", state_.winding_c},
      {"process.bearing_temp_c", state_.bearing_c},
      {"process.cond_approach_c", state_.cond_approach_c},
      {"process.motor_current_a", state_.current_a},
  };
}

ProcessSnapshot ProcessModel::snapshot() {
  ProcessSnapshot s = state();
  // Instrument-grade noise per variable class.
  s["process.evap_pressure_kpa"] += rng_.normal(0.0, 1.5);
  s["process.cond_pressure_kpa"] += rng_.normal(0.0, 3.0);
  s["process.chw_supply_c"] += rng_.normal(0.0, 0.05);
  s["process.superheat_c"] += rng_.normal(0.0, 0.1);
  s["process.oil_pressure_kpa"] += rng_.normal(0.0, 2.0);
  s["process.oil_temp_c"] += rng_.normal(0.0, 0.2);
  s["process.winding_temp_c"] += rng_.normal(0.0, 0.4);
  s["process.bearing_temp_c"] += rng_.normal(0.0, 0.25);
  s["process.cond_approach_c"] += rng_.normal(0.0, 0.1);
  s["process.motor_current_a"] += rng_.normal(0.0, 0.8);
  return s;
}

}  // namespace mpros::plant
