#pragma once
// SBFR disassembler.
//
// Machines arrive at smart sensors as opaque byte images (§6.3 download
// path); the disassembler renders an image back into readable transition
// tables — the maintenance engineer's view of what a sensor is running.

#include <string>

#include "mpros/sbfr/machine.hpp"

namespace mpros::sbfr {

/// Render one bytecode program as an infix expression / statement list,
/// e.g. "(delta(ch0) > 0.5) && (dt <= 4)".
[[nodiscard]] std::string disassemble_program(
    std::span<const std::uint8_t> code);

/// Render a whole machine:
///   machine "current-spike" (4 states, 0 locals, start Wait)
///     Wait -> PossibleSpike1  when (delta(ch0) > 0.5)
///     ...
[[nodiscard]] std::string disassemble(const MachineDef& def);

}  // namespace mpros::sbfr
