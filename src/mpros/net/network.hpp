#pragma once
// The simulated ship's network (DCOM transport substitute).
//
// §5.1 requires knowledge fusion to "accommodate inputs which are
// incomplete, time-disordered, fragmentary, and which have gaps" — so the
// transport injects exactly those pathologies, deterministically: latency
// with jitter (reordering), datagram loss, and duplication. Endpoints are
// named ("pdme", "dc-3"); deliveries fire when the scenario driver advances
// simulated time. Thread-safe: DC worker threads send concurrently while
// the driver thread advances.

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <queue>
#include <string>
#include <vector>

#include "mpros/common/clock.hpp"
#include "mpros/common/rng.hpp"

namespace mpros::net {

struct Message {
  std::string from;
  std::string to;
  std::vector<std::uint8_t> payload;
  SimTime sent_at;
  SimTime delivered_at;
};

struct NetworkConfig {
  SimTime base_latency = SimTime::from_millis(5.0);
  SimTime jitter = SimTime::from_millis(20.0);  ///< uniform extra latency
  double drop_probability = 0.0;
  double duplicate_probability = 0.0;
  std::uint64_t seed = 0xC0FFEE;
};

struct NetworkStats {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;        ///< total, including outage drops
  std::uint64_t duplicated = 0;
  std::uint64_t dead_lettered = 0;  ///< destination never registered
  std::uint64_t outage_dropped = 0; ///< subset of dropped due to outages
};

/// A scripted degradation window: while `from <= send time < to`, traffic
/// touching `endpoint` (as source or destination; empty = all traffic)
/// drops with `drop_probability`. Probability 1 is a hard partition;
/// anything lower is a burst-loss window. Loss is decided at send time, so
/// a given seed always yields the same delivery trace.
struct Outage {
  std::string endpoint;
  SimTime from;
  SimTime to;
  double drop_probability = 1.0;
};

class SimNetwork {
 public:
  explicit SimNetwork(NetworkConfig cfg = {});

  using Handler = std::function<void(const Message&)>;

  /// Register a named endpoint. Handlers run on the thread that calls
  /// advance_to(). Re-registering a name replaces its handler.
  void register_endpoint(const std::string& name, Handler handler);

  /// Observe every *delivered* message (after latency/drop/duplication,
  /// before the endpoint handler) — the flight recorder's capture point.
  /// One tap; nullptr clears. Runs on the delivering thread.
  void set_delivery_tap(Handler tap);

  /// Queue a message. Latency/drop/duplication are decided at send time
  /// (deterministic given the seed and send order).
  void send(const std::string& from, const std::string& to,
            std::vector<std::uint8_t> payload, SimTime now);

  /// Script a partition or burst-loss window. Windows may overlap; the
  /// worst (highest) active drop probability wins.
  void schedule_outage(Outage outage);

  /// Deliver everything due at or before `now`, in delivery-time order.
  /// Returns the number of messages delivered.
  std::size_t advance_to(SimTime now);

  /// Deliver everything still in flight regardless of time.
  std::size_t flush();

  [[nodiscard]] NetworkStats stats() const;
  [[nodiscard]] std::size_t in_flight() const;

 private:
  struct Pending {
    SimTime deliver_at;
    std::uint64_t sequence;  // tie-break for determinism
    Message message;
  };
  struct Later {
    bool operator()(const Pending& a, const Pending& b) const {
      if (a.deliver_at != b.deliver_at) return b.deliver_at < a.deliver_at;
      return b.sequence < a.sequence;
    }
  };

  void enqueue_locked(Message msg, SimTime deliver_at);
  std::size_t deliver_due(SimTime now, bool everything);

  [[nodiscard]] double drop_probability_at(const std::string& from,
                                           const std::string& to,
                                           SimTime now) const;

  mutable std::mutex mu_;
  NetworkConfig cfg_;
  Rng rng_;
  std::vector<Outage> outages_;
  Handler tap_;
  std::map<std::string, Handler> endpoints_;
  std::priority_queue<Pending, std::vector<Pending>, Later> queue_;
  NetworkStats stats_;
  std::uint64_t next_sequence_ = 0;
};

}  // namespace mpros::net
