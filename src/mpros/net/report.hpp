#pragma once
// The Failure Prediction Reporting Protocol (paper §7).
//
// "A standard protocol has been defined for reporting failure predictions
// to the PDME for fusion and display." Fields follow §7.2 (diagnostic data)
// and §7.3 (prognostics vector) exactly; §5.5's DC ID and severity
// categories ride along. Reports serialize to the wire via the codec.

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "mpros/common/clock.hpp"
#include "mpros/common/ids.hpp"

namespace mpros::net {

/// §7.3: "Zero to n ordered pairs of the form '(probability, time)'. Each
/// pair indicates the probability that the given machine condition will
/// lead to failure of the machine within 'time' seconds from now."
struct PrognosticPair {
  double probability = 0.0;
  double time_seconds = 0.0;

  friend bool operator==(const PrognosticPair&,
                         const PrognosticPair&) = default;
};

struct FailureReport {
  // §5.5 / §7.2 identification fields.
  DcId dc;                          ///< data concentrator source
  KnowledgeSourceId knowledge_source;
  ObjectId sensed_object;           ///< the machine this report applies to
  ConditionId machine_condition;    ///< diagnosed failure mode

  double severity = 0.0;            ///< 0..1, 1 = maximal (§7.2 field 4)
  double belief = 1.0;              ///< 0..1 (§7.2 field 5)
  std::string explanation;          ///< optional, human readable
  std::string recommendations;      ///< optional, human readable
  SimTime timestamp;                ///< when the report is "effective"
  std::string additional_info;      ///< optional

  std::vector<PrognosticPair> prognostics;  ///< §7.3

  /// Telemetry span id stamped by the originating DC test (0 = untraced).
  /// Rides the wire (format v2) so PDME-side spans join the DC's timeline.
  std::uint64_t trace = 0;

  friend bool operator==(const FailureReport&,
                         const FailureReport&) = default;
};

class Writer;
class TryReader;

/// Wire encoding (versioned; v2 adds the trace id, v1 still decodes).
[[nodiscard]] std::vector<std::uint8_t> serialize(const FailureReport& r);
[[nodiscard]] FailureReport deserialize_report(
    std::span<const std::uint8_t> bytes);

/// Appends one report frame (magic + version + fields) to `w`. A batch body
/// is a count of these frames back to back; serialize() is the one-frame
/// special case.
void serialize_report_into(Writer& w, const FailureReport& r);

/// Fail-soft decode of one report frame from `rd` into `out`, reusing
/// `out`'s string/prognostics capacity (the arena-decode hot path). Consumes
/// exactly the frame and does NOT require rd.done() — batch decoding reads
/// several frames back to back. Returns false (and latches rd) on bad
/// magic/version, truncation, or a hostile prognostic count.
bool try_read_report_frame(TryReader& rd, FailureReport& out);

/// Fail-soft decode for untrusted bytes (recorder frames, replay): returns
/// nullopt on truncation, bad magic/version, or trailing garbage — never
/// aborts.
[[nodiscard]] std::optional<FailureReport> try_deserialize_report(
    std::span<const std::uint8_t> bytes);

/// One-line rendering for logs / the PDME browser.
[[nodiscard]] std::string summarize(const FailureReport& r);

}  // namespace mpros::net
