file(REMOVE_RECURSE
  "CMakeFiles/bench_sbfr.dir/bench_sbfr.cpp.o"
  "CMakeFiles/bench_sbfr.dir/bench_sbfr.cpp.o.d"
  "bench_sbfr"
  "bench_sbfr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sbfr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
