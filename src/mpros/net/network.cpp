#include "mpros/net/network.hpp"

#include <algorithm>

#include "mpros/common/assert.hpp"
#include "mpros/common/log.hpp"
#include "mpros/telemetry/metrics.hpp"

namespace mpros::net {

namespace {

// Process-wide wire metrics; registered once, then relaxed atomics only.
struct NetMetrics {
  telemetry::Counter& sent;
  telemetry::Counter& bytes_sent;
  telemetry::Counter& delivered;
  telemetry::Counter& dropped;
  telemetry::Counter& duplicated;
  telemetry::Counter& dead_lettered;
  telemetry::Counter& outage_dropped;
  telemetry::Histogram& transit_latency_us;

  static NetMetrics& get() {
    static NetMetrics m{
        telemetry::Registry::instance().counter("net.sent"),
        telemetry::Registry::instance().counter("net.bytes_sent"),
        telemetry::Registry::instance().counter("net.delivered"),
        telemetry::Registry::instance().counter("net.dropped"),
        telemetry::Registry::instance().counter("net.duplicated"),
        telemetry::Registry::instance().counter("net.dead_lettered"),
        telemetry::Registry::instance().counter("net.outage_dropped"),
        telemetry::Registry::instance().histogram("net.transit_latency_us"),
    };
    return m;
  }
};

}  // namespace

SimNetwork::SimNetwork(NetworkConfig cfg) : cfg_(cfg), rng_(cfg.seed) {
  MPROS_EXPECTS(cfg.drop_probability >= 0.0 && cfg.drop_probability < 1.0);
  MPROS_EXPECTS(cfg.duplicate_probability >= 0.0 &&
                cfg.duplicate_probability < 1.0);
}

void SimNetwork::register_endpoint(const std::string& name, Handler handler) {
  MPROS_EXPECTS(handler != nullptr);
  std::lock_guard lock(mu_);
  endpoints_[name] = std::move(handler);
}

void SimNetwork::enqueue_locked(Message msg, SimTime deliver_at) {
  msg.delivered_at = deliver_at;
  queue_.push(Pending{deliver_at, next_sequence_++, std::move(msg)});
}

void SimNetwork::set_delivery_tap(Handler tap) {
  std::lock_guard lock(mu_);
  tap_ = std::move(tap);
}

void SimNetwork::schedule_outage(Outage outage) {
  MPROS_EXPECTS(outage.from < outage.to);
  MPROS_EXPECTS(outage.drop_probability >= 0.0 &&
                outage.drop_probability <= 1.0);
  std::lock_guard lock(mu_);
  outages_.push_back(std::move(outage));
}

double SimNetwork::drop_probability_at(const std::string& from,
                                       const std::string& to,
                                       SimTime now) const {
  double p = cfg_.drop_probability;
  for (const Outage& o : outages_) {
    if (now < o.from || now >= o.to) continue;
    if (!o.endpoint.empty() && o.endpoint != from && o.endpoint != to) {
      continue;
    }
    p = std::max(p, o.drop_probability);
  }
  return p;
}

void SimNetwork::send(const std::string& from, const std::string& to,
                      std::vector<std::uint8_t> payload, SimTime now) {
  NetMetrics& metrics = NetMetrics::get();
  metrics.sent.inc();
  metrics.bytes_sent.inc(payload.size());

  std::lock_guard lock(mu_);
  ++stats_.sent;

  // A hard partition drops without touching the RNG, so scripting one does
  // not perturb the loss/jitter draws of unaffected traffic.
  const double drop_p = drop_probability_at(from, to, now);
  if (drop_p >= 1.0 || rng_.bernoulli(drop_p)) {
    ++stats_.dropped;
    metrics.dropped.inc();
    if (drop_p > cfg_.drop_probability) {
      ++stats_.outage_dropped;
      metrics.outage_dropped.inc();
    }
    return;
  }

  Message msg{from, to, std::move(payload), now, now};
  const auto latency = [&] {
    return cfg_.base_latency +
           SimTime(static_cast<std::int64_t>(rng_.uniform(
               0.0, static_cast<double>(cfg_.jitter.micros()))));
  };

  if (rng_.bernoulli(cfg_.duplicate_probability)) {
    ++stats_.duplicated;
    metrics.duplicated.inc();
    Message copy = msg;
    enqueue_locked(std::move(copy), now + latency());
  }
  enqueue_locked(std::move(msg), now + latency());
}

std::size_t SimNetwork::deliver_due(SimTime now, bool everything) {
  NetMetrics& metrics = NetMetrics::get();
  std::size_t delivered = 0;
  while (true) {
    Message msg;
    Handler handler;
    Handler tap;
    {
      std::lock_guard lock(mu_);
      if (queue_.empty()) break;
      if (!everything && now < queue_.top().deliver_at) break;
      msg = std::move(const_cast<Pending&>(queue_.top()).message);
      queue_.pop();
      const auto it = endpoints_.find(msg.to);
      if (it == endpoints_.end()) {
        ++stats_.dead_lettered;
        metrics.dead_lettered.inc();
        MPROS_LOG_WARN("net",
                       "dead-lettered %zu-byte datagram %s -> %s "
                       "(no such endpoint)",
                       msg.payload.size(), msg.from.c_str(), msg.to.c_str());
        continue;
      }
      handler = it->second;  // copy so the handler runs unlocked
      tap = tap_;
      ++stats_.delivered;
    }
    metrics.delivered.inc();
    metrics.transit_latency_us.observe(
        static_cast<double>((msg.delivered_at - msg.sent_at).micros()));
    if (tap) tap(msg);
    handler(msg);
    ++delivered;
  }
  return delivered;
}

std::size_t SimNetwork::advance_to(SimTime now) {
  return deliver_due(now, false);
}

std::size_t SimNetwork::flush() { return deliver_due(SimTime(0), true); }

NetworkStats SimNetwork::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

std::size_t SimNetwork::in_flight() const {
  std::lock_guard lock(mu_);
  return queue_.size();
}

}  // namespace mpros::net
