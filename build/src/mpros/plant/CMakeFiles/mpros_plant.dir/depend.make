# Empty dependencies file for mpros_plant.
# This may be replaced when dependencies are built.
