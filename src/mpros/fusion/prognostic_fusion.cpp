#include "mpros/fusion/prognostic_fusion.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <span>

#include "mpros/common/assert.hpp"

namespace mpros::fusion {

namespace {

/// PrognosticVector::probability_at over a raw point span, so the fusion
/// accept loop can evaluate the in-progress curve without constructing a
/// PrognosticVector per accepted point. Accepted points are strictly
/// increasing in both horizon and probability (each must beat the curve
/// built so far), so the constructor's sort/clamp pass is the identity on
/// them and this evaluation is bit-identical to probability_at on the
/// constructed vector.
double probability_on(std::span<const PrognosticPoint> pts, SimTime t) {
  if (pts.empty()) return 0.0;
  if (t.micros() <= 0) return 0.0;

  const auto tt = static_cast<double>(t.micros());

  const PrognosticPoint& first = pts.front();
  if (t <= first.horizon) {
    const auto h = static_cast<double>(first.horizon.micros());
    return h > 0.0 ? first.probability * (tt / h) : first.probability;
  }

  for (std::size_t i = 1; i < pts.size(); ++i) {
    if (t <= pts[i].horizon) {
      const auto t0 = static_cast<double>(pts[i - 1].horizon.micros());
      const auto t1 = static_cast<double>(pts[i].horizon.micros());
      const double p0 = pts[i - 1].probability;
      const double p1 = pts[i].probability;
      if (t1 <= t0) return p1;
      return p0 + (p1 - p0) * (tt - t0) / (t1 - t0);
    }
  }

  const PrognosticPoint& last = pts.back();
  double slope = 0.0;
  if (pts.size() >= 2) {
    const PrognosticPoint& prev = pts[pts.size() - 2];
    const double dt =
        static_cast<double>((last.horizon - prev.horizon).micros());
    if (dt > 0.0) slope = (last.probability - prev.probability) / dt;
  }
  const double extrapolated =
      last.probability +
      slope * (tt - static_cast<double>(last.horizon.micros()));
  return std::clamp(extrapolated, last.probability, 1.0);
}

}  // namespace

PrognosticVector::PrognosticVector(std::vector<PrognosticPoint> points)
    : points_(std::move(points)) {
  std::sort(points_.begin(), points_.end(),
            [](const PrognosticPoint& a, const PrognosticPoint& b) {
              return a.horizon < b.horizon;
            });
  double running = 0.0;
  for (PrognosticPoint& p : points_) {
    MPROS_EXPECTS(p.horizon.micros() >= 0);
    p.probability = std::clamp(p.probability, 0.0, 1.0);
    running = std::max(running, p.probability);
    p.probability = running;
  }
}

double PrognosticVector::probability_at(SimTime t) const {
  if (points_.empty()) return 0.0;
  if (t.micros() <= 0) return 0.0;

  const auto tt = static_cast<double>(t.micros());

  // Before or at the first breakpoint: ramp from (0, 0).
  const PrognosticPoint& first = points_.front();
  if (t <= first.horizon) {
    const auto h = static_cast<double>(first.horizon.micros());
    return h > 0.0 ? first.probability * (tt / h) : first.probability;
  }

  for (std::size_t i = 1; i < points_.size(); ++i) {
    if (t <= points_[i].horizon) {
      const auto t0 = static_cast<double>(points_[i - 1].horizon.micros());
      const auto t1 = static_cast<double>(points_[i].horizon.micros());
      const double p0 = points_[i - 1].probability;
      const double p1 = points_[i].probability;
      if (t1 <= t0) return p1;
      return p0 + (p1 - p0) * (tt - t0) / (t1 - t0);
    }
  }

  // Beyond the last point: extrapolate along the final segment's slope.
  const PrognosticPoint& last = points_.back();
  double slope = 0.0;
  if (points_.size() >= 2) {
    const PrognosticPoint& prev = points_[points_.size() - 2];
    const double dt = static_cast<double>((last.horizon - prev.horizon).micros());
    if (dt > 0.0) slope = (last.probability - prev.probability) / dt;
  }
  const double extrapolated =
      last.probability +
      slope * (tt - static_cast<double>(last.horizon.micros()));
  return std::clamp(extrapolated, last.probability, 1.0);
}

std::optional<SimTime> PrognosticVector::time_to_probability(double p) const {
  MPROS_EXPECTS(p >= 0.0 && p <= 1.0);
  if (points_.empty()) return std::nullopt;
  if (p <= 0.0) return SimTime(0);

  // Walk segments (including the implicit (0,0) start and the extrapolated
  // tail) for the first crossing.
  double t0 = 0.0, p0 = 0.0;
  for (const PrognosticPoint& pt : points_) {
    const auto t1 = static_cast<double>(pt.horizon.micros());
    const double p1 = pt.probability;
    if (p1 >= p) {
      if (p1 <= p0) return SimTime(static_cast<std::int64_t>(t0));
      const double frac = (p - p0) / (p1 - p0);
      return SimTime(static_cast<std::int64_t>(t0 + frac * (t1 - t0)));
    }
    t0 = t1;
    p0 = p1;
  }

  // Extrapolated tail.
  if (points_.size() >= 2) {
    const PrognosticPoint& last = points_.back();
    const PrognosticPoint& prev = points_[points_.size() - 2];
    const double dt =
        static_cast<double>((last.horizon - prev.horizon).micros());
    if (dt > 0.0) {
      const double slope = (last.probability - prev.probability) / dt;
      if (slope > 0.0) {
        const double t =
            static_cast<double>(last.horizon.micros()) +
            (p - last.probability) / slope;
        return SimTime(static_cast<std::int64_t>(t));
      }
    }
  }
  return std::nullopt;
}

void PrognosticVector::fuse_in_place(std::span<const PrognosticPoint> points,
                                     FuseScratch& scratch) {
  if (points.empty()) return;

  // Normalize the incoming report exactly as the constructor would.
  scratch.incoming.assign(points.begin(), points.end());
  std::sort(scratch.incoming.begin(), scratch.incoming.end(),
            [](const PrognosticPoint& a, const PrognosticPoint& b) {
              return a.horizon < b.horizon;
            });
  double running = 0.0;
  for (PrognosticPoint& p : scratch.incoming) {
    MPROS_EXPECTS(p.horizon.micros() >= 0);
    p.probability = std::clamp(p.probability, 0.0, 1.0);
    running = std::max(running, p.probability);
    p.probability = running;
  }

  if (points_.empty()) {
    points_.assign(scratch.incoming.begin(), scratch.incoming.end());
    return;
  }

  // fuse_conservative's candidate sweep over scratch. The accept loop only
  // keeps points that strictly beat the curve built so far, so the accepted
  // sequence is strictly increasing in both horizon and probability and the
  // final constructor normalization pass would be the identity — swap the
  // buffer in directly.
  scratch.candidates.clear();
  scratch.candidates.insert(scratch.candidates.end(), points_.begin(),
                            points_.end());
  scratch.candidates.insert(scratch.candidates.end(),
                            scratch.incoming.begin(), scratch.incoming.end());
  std::sort(scratch.candidates.begin(), scratch.candidates.end(),
            [](const PrognosticPoint& x, const PrognosticPoint& y) {
              if (x.horizon != y.horizon) return x.horizon < y.horizon;
              return x.probability > y.probability;
            });

  scratch.accepted.clear();
  for (const PrognosticPoint& p : scratch.candidates) {
    // Candidates arrive in ascending horizon, so p.horizon is >= every
    // accepted horizon: the curve evaluation can only hit probability_on's
    // beyond-the-last-point extrapolation (replicated here, O(1), same
    // arithmetic so the accept decisions are bit-identical) or, on an exact
    // horizon tie, its boundary interpolation (delegated as-is).
    double curve = 0.0;
    if (!scratch.accepted.empty()) {
      const PrognosticPoint& last = scratch.accepted.back();
      if (p.horizon > last.horizon) {
        double slope = 0.0;
        if (scratch.accepted.size() >= 2) {
          const PrognosticPoint& prev =
              scratch.accepted[scratch.accepted.size() - 2];
          const double dt =
              static_cast<double>((last.horizon - prev.horizon).micros());
          if (dt > 0.0) slope = (last.probability - prev.probability) / dt;
        }
        const double extrapolated =
            last.probability +
            slope * (static_cast<double>(p.horizon.micros()) -
                     static_cast<double>(last.horizon.micros()));
        curve = std::clamp(extrapolated, last.probability, 1.0);
      } else {
        curve = probability_on(
            {scratch.accepted.data(), scratch.accepted.size()}, p.horizon);
      }
    }
    if (p.probability > curve + 1e-12) {
      scratch.accepted.push_back(p);
    }
  }
  points_.swap(scratch.accepted);
}

PrognosticVector fuse_conservative(const PrognosticVector& a,
                                   const PrognosticVector& b) {
  if (a.empty()) return b;
  if (b.empty()) return a;

  // §5.4 semantics, reverse-engineered from the paper's two examples:
  //  - a report's points are *constraints* ("P(fail by 4.5mo) = 0.12"),
  //    not a curve defined at all times, so a weak late point that the
  //    current fused curve already exceeds is simply ignored;
  //  - a strong point that exceeds the fused curve is adopted, and the
  //    fused curve then extrapolates along its new, steeper trend — which
  //    is what makes the second worked example predict "an even earlier
  //    demise" than the original's post-5-month knot.
  // Implementation: sweep the union of reported points in time order and
  // keep exactly those that are more conservative than the fused curve
  // built so far (evaluated with the standard interpolation/extrapolation
  // rules).
  std::vector<PrognosticPoint> candidates;
  candidates.reserve(a.points().size() + b.points().size());
  candidates.insert(candidates.end(), a.points().begin(), a.points().end());
  candidates.insert(candidates.end(), b.points().begin(), b.points().end());
  std::sort(candidates.begin(), candidates.end(),
            [](const PrognosticPoint& x, const PrognosticPoint& y) {
              if (x.horizon != y.horizon) return x.horizon < y.horizon;
              return x.probability > y.probability;
            });

  std::vector<PrognosticPoint> accepted;
  for (const PrognosticPoint& p : candidates) {
    if (p.probability >
        probability_on({accepted.data(), accepted.size()}, p.horizon) + 1e-12) {
      accepted.push_back(p);
    }
  }
  return PrognosticVector(std::move(accepted));
}

PrognosticVector fuse_conservative(const std::vector<PrognosticVector>& curves) {
  PrognosticVector out;
  for (const PrognosticVector& c : curves) out = fuse_conservative(out, c);
  return out;
}

}  // namespace mpros::fusion
