file(REMOVE_RECURSE
  "CMakeFiles/mpros_plant.dir/chiller.cpp.o"
  "CMakeFiles/mpros_plant.dir/chiller.cpp.o.d"
  "CMakeFiles/mpros_plant.dir/daq.cpp.o"
  "CMakeFiles/mpros_plant.dir/daq.cpp.o.d"
  "CMakeFiles/mpros_plant.dir/ema.cpp.o"
  "CMakeFiles/mpros_plant.dir/ema.cpp.o.d"
  "CMakeFiles/mpros_plant.dir/faults.cpp.o"
  "CMakeFiles/mpros_plant.dir/faults.cpp.o.d"
  "CMakeFiles/mpros_plant.dir/process.cpp.o"
  "CMakeFiles/mpros_plant.dir/process.cpp.o.d"
  "CMakeFiles/mpros_plant.dir/vibration.cpp.o"
  "CMakeFiles/mpros_plant.dir/vibration.cpp.o.d"
  "libmpros_plant.a"
  "libmpros_plant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpros_plant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
