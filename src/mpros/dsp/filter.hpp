#pragma once
// Streaming IIR filters used by the DC acquisition chain and SBFR front end.

#include <cstddef>
#include <span>

namespace mpros::dsp {

/// Direct-form-I biquad with RBJ cookbook coefficient design.
class Biquad {
 public:
  static Biquad lowpass(double sample_rate_hz, double cutoff_hz,
                        double q = 0.7071);
  static Biquad highpass(double sample_rate_hz, double cutoff_hz,
                         double q = 0.7071);
  static Biquad bandpass(double sample_rate_hz, double center_hz, double q);

  /// Process one sample.
  double step(double x);

  /// Process a buffer in place.
  void process(std::span<double> x);

  void reset();

 private:
  Biquad(double b0, double b1, double b2, double a1, double a2);

  double b0_, b1_, b2_, a1_, a2_;
  double x1_ = 0.0, x2_ = 0.0, y1_ = 0.0, y2_ = 0.0;
};

/// Exponential moving average: y += alpha * (x - y). The software analog of
/// the MUX cards' analog RMS detector smoothing.
class ExpSmoother {
 public:
  explicit ExpSmoother(double alpha);
  double step(double x);
  [[nodiscard]] double value() const { return y_; }
  void reset(double y = 0.0) { y_ = y; primed_ = false; }

 private:
  double alpha_;
  double y_ = 0.0;
  bool primed_ = false;
};

/// Streaming RMS tracker over an exponential window; drives the per-channel
/// RMS alarm detectors of the paper's MUX hardware (Fig 5).
class RmsTracker {
 public:
  /// `time_constant_samples` controls the averaging horizon.
  explicit RmsTracker(double time_constant_samples);
  double step(double x);
  [[nodiscard]] double rms() const;
  void reset();

 private:
  ExpSmoother mean_square_;
};

}  // namespace mpros::dsp
