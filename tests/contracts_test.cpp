// Contract enforcement (death tests) and concurrency stress.
//
// The always-on MPROS_EXPECTS/ASSERT contracts abort on violation; these
// tests pin the contracts a user is most likely to trip, then hammer the
// thread-safe components from multiple threads.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "mpros/common/clock.hpp"
#include "mpros/common/ring_buffer.hpp"
#include "mpros/common/thread_pool.hpp"
#include "mpros/db/table.hpp"
#include "mpros/dsp/fft.hpp"
#include "mpros/fusion/dempster_shafer.hpp"
#include "mpros/net/network.hpp"
#include "mpros/net/report.hpp"
#include "mpros/sbfr/interpreter.hpp"
#include "mpros/sbfr/library.hpp"

namespace mpros {
namespace {

using ContractsDeathTest = ::testing::Test;

TEST(ContractsDeathTest, ClockCannotRunBackwards) {
  SimClock clock;
  clock.advance(SimTime::from_seconds(10));
  EXPECT_DEATH(clock.advance_to(SimTime::from_seconds(5)), "precondition");
  EXPECT_DEATH(clock.advance(SimTime(-1)), "precondition");
}

TEST(ContractsDeathTest, FftPlanRequiresPowerOfTwo) {
  EXPECT_DEATH(dsp::FftPlan(100), "precondition");
  EXPECT_DEATH(dsp::FftPlan(1), "precondition");
}

TEST(ContractsDeathTest, FftPlanRejectsWrongBufferSize) {
  dsp::FftPlan plan(64);
  std::vector<dsp::Complex> wrong(32);
  EXPECT_DEATH(plan.forward(wrong), "precondition");
}

TEST(ContractsDeathTest, TableRejectsDuplicatePrimaryKey) {
  db::Table t(db::TableSchema{
      "t", {db::ColumnDef{"id", db::ValueType::Integer, false}}});
  t.insert({db::Value(std::int64_t{1})});
  EXPECT_DEATH(t.insert({db::Value(std::int64_t{1})}), "precondition");
}

TEST(ContractsDeathTest, TableRejectsTypeMismatch) {
  db::Table t(db::TableSchema{
      "t",
      {db::ColumnDef{"id", db::ValueType::Integer, false},
       db::ColumnDef{"name", db::ValueType::Text, false}}});
  EXPECT_DEATH(t.insert({db::Value(std::int64_t{1}), db::Value(2.5)}),
               "precondition");
  // NOT NULL enforced.
  EXPECT_DEATH(t.insert({db::Value(std::int64_t{2}), db::Value()}),
               "precondition");
}

TEST(ContractsDeathTest, TableUpdateRejectsTypeMismatchBeforeMutating) {
  db::Table t(db::TableSchema{
      "t",
      {db::ColumnDef{"id", db::ValueType::Integer, false},
       db::ColumnDef{"name", db::ValueType::Text, false}}});
  t.insert({db::Value(std::int64_t{1}), db::Value("ok")});
  // The candidate is validated before the row is unindexed or assigned
  // (see Table::update) — the violation still aborts, but never with the
  // table already inconsistent.
  EXPECT_DEATH(t.update(1, "name", db::Value(2.5)), "precondition");
  EXPECT_DEATH(t.update(1, "name", db::Value()), "precondition");
}

TEST(ContractsDeathTest, FrameLimitedToSixteenHypotheses) {
  std::vector<std::string> names(17, "h");
  EXPECT_DEATH(fusion::FrameOfDiscernment frame(names), "precondition");
}

TEST(ContractsDeathTest, SimpleSupportRejectsForeignHypotheses) {
  const fusion::FrameOfDiscernment frame({"a", "b"});
  EXPECT_DEATH(
      fusion::MassFunction::simple_support(frame, 0b100, 0.5),
      "precondition");
  EXPECT_DEATH(fusion::MassFunction::simple_support(frame, 0, 0.5),
               "precondition");
}

TEST(ContractsDeathTest, CombineRequiresSharedFrame) {
  const fusion::FrameOfDiscernment f1({"a", "b"});
  const fusion::FrameOfDiscernment f2({"a", "b"});
  const auto m1 = fusion::MassFunction::simple_support(f1, 1, 0.5);
  const auto m2 = fusion::MassFunction::simple_support(f2, 1, 0.5);
  EXPECT_DEATH(fusion::combine(m1, m2), "precondition");
}

TEST(ContractsDeathTest, SbfrRejectsMalformedMachine) {
  sbfr::SbfrSystem sys(1);
  sbfr::MachineDef bad("bad", 0, /*initial_state=*/3);
  bad.add_state("only");
  EXPECT_DEATH(sys.add_machine(bad), "precondition");
}

TEST(ContractsDeathTest, SbfrStepRequiresDeclaredChannelCount) {
  sbfr::SbfrSystem sys(2);
  sys.add_machine(sbfr::make_spike_machine());
  const double one_channel[1] = {0.0};
  EXPECT_DEATH(sys.step(one_channel), "precondition");
}

TEST(ContractsDeathTest, ReaderRejectsTruncatedReport) {
  const auto bytes = net::serialize(net::FailureReport{});
  const std::span<const std::uint8_t> truncated(bytes.data(),
                                                bytes.size() - 3);
  EXPECT_DEATH(net::deserialize_report(truncated), "precondition");
}

TEST(ContractsDeathTest, RingBufferBoundsChecked) {
  RingBuffer<int> rb(4);
  rb.push(1);
  EXPECT_DEATH({ [[maybe_unused]] int v = rb.at_oldest(1); }, "precondition");
  EXPECT_DEATH({ [[maybe_unused]] int v = rb.at_newest(1); }, "precondition");
}

// --- Concurrency stress -------------------------------------------------------

TEST(ConcurrencyStressTest, NetworkSurvivesParallelSenders) {
  net::NetworkConfig cfg;
  cfg.duplicate_probability = 0.1;
  cfg.drop_probability = 0.1;
  net::SimNetwork network(cfg);
  std::atomic<std::size_t> received{0};
  network.register_endpoint("pdme", [&](const net::Message&) {
    received.fetch_add(1, std::memory_order_relaxed);
  });

  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 500;
  {
    std::vector<std::jthread> senders;
    for (std::size_t t = 0; t < kThreads; ++t) {
      senders.emplace_back([&network, t] {
        for (std::size_t i = 0; i < kPerThread; ++i) {
          network.send("dc-" + std::to_string(t), "pdme",
                       {static_cast<std::uint8_t>(i)},
                       SimTime::from_millis(static_cast<double>(i)));
        }
      });
    }
  }  // join

  network.flush();
  const auto stats = network.stats();
  EXPECT_EQ(stats.sent, kThreads * kPerThread);
  EXPECT_EQ(stats.delivered, received.load());
  EXPECT_EQ(stats.delivered, stats.sent - stats.dropped + stats.duplicated);
}

TEST(ConcurrencyStressTest, PoolHammeredWithSmallTasks) {
  ThreadPool pool(4);
  std::atomic<std::uint64_t> sum{0};
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 200; ++i) {
      pool.submit([&sum, i] { sum.fetch_add(static_cast<std::uint64_t>(i)); });
    }
    pool.wait_idle();
  }
  EXPECT_EQ(sum.load(), 20ull * (199ull * 200ull / 2ull));
}

TEST(ConcurrencyStressTest, QueueCloseRacesWithProducers) {
  for (int round = 0; round < 20; ++round) {
    ConcurrentQueue<int> q;
    std::atomic<int> pushed{0};
    std::vector<std::jthread> producers;
    for (int t = 0; t < 4; ++t) {
      producers.emplace_back([&] {
        for (int i = 0; i < 100; ++i) {
          if (q.push(i)) pushed.fetch_add(1);
        }
      });
    }
    std::jthread closer([&q] { q.close(); });
    producers.clear();
    closer.join();

    int drained = 0;
    int v = 0;
    while (q.try_pop(v) == QueuePopStatus::Ok) ++drained;
    EXPECT_EQ(drained, pushed.load());
  }
}

}  // namespace
}  // namespace mpros
