#include "mpros/dsp/stats.hpp"

#include <algorithm>
#include <cmath>

namespace mpros::dsp {

double mean(std::span<const double> x) {
  if (x.empty()) return 0.0;
  double sum = 0.0;
  for (double v : x) sum += v;
  return sum / static_cast<double>(x.size());
}

double rms(std::span<const double> x) {
  if (x.empty()) return 0.0;
  double sum = 0.0;
  for (double v : x) sum += v * v;
  return std::sqrt(sum / static_cast<double>(x.size()));
}

double peak_abs(std::span<const double> x) {
  double peak = 0.0;
  for (double v : x) peak = std::max(peak, std::fabs(v));
  return peak;
}

double peak_to_peak(std::span<const double> x) {
  if (x.empty()) return 0.0;
  auto [lo, hi] = std::minmax_element(x.begin(), x.end());
  return *hi - *lo;
}

double crest_factor(std::span<const double> x) {
  const double r = rms(x);
  return r > 0.0 ? peak_abs(x) / r : 0.0;
}

Moments moments(std::span<const double> x) {
  Moments m;
  if (x.empty()) return m;
  m.mean = mean(x);

  double m2 = 0.0, m3 = 0.0, m4 = 0.0;
  for (double v : x) {
    const double d = v - m.mean;
    const double d2 = d * d;
    m2 += d2;
    m3 += d2 * d;
    m4 += d2 * d2;
  }
  const double n = static_cast<double>(x.size());
  m2 /= n;
  m3 /= n;
  m4 /= n;

  m.variance = m2;
  m.stddev = std::sqrt(m2);
  if (m2 > 0.0) {
    m.skewness = m3 / std::pow(m2, 1.5);
    m.kurtosis = m4 / (m2 * m2);
  }
  return m;
}

std::size_t zero_crossings(std::span<const double> x) {
  std::size_t count = 0;
  for (std::size_t i = 1; i < x.size(); ++i) {
    if ((x[i - 1] < 0.0 && x[i] >= 0.0) || (x[i - 1] >= 0.0 && x[i] < 0.0)) {
      ++count;
    }
  }
  return count;
}

}  // namespace mpros::dsp
