# Empty compiler generated dependencies file for mpros_domain.
# This may be replaced when dependencies are built.
