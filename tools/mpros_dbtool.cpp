// mpros_dbtool — inspect and verify a durability directory offline.
//
//   mpros_dbtool dump   <dir> [table]   print recovered tables (and rows)
//   mpros_dbtool verify <dir>           recover read-only, check integrity
//   mpros_dbtool log    <dir>           walk the WAL frame by frame
//
// Every mode is strictly read-only: recovery is re-implemented here as
// snapshot load + WAL replay into an in-memory Database, *without* the
// torn-tail truncation the live DurableDatabase performs — an operator can
// point this at a crashed ship's directory (or a copy under forensic hold)
// and nothing on disk changes.
//
// Exit status: 0 clean; 1 usage/IO error; 2 verify found damage (torn
// tail, partial commit, or an index/constraint violation in the recovered
// store).

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "mpros/db/database.hpp"
#include "mpros/db/durable.hpp"
#include "mpros/db/snapshot.hpp"
#include "mpros/db/wal.hpp"

namespace {

using namespace mpros;

const char* type_name(db::ValueType t) {
  switch (t) {
    case db::ValueType::Null: return "null";
    case db::ValueType::Integer: return "integer";
    case db::ValueType::Real: return "real";
    case db::ValueType::Text: return "text";
  }
  return "?";
}

std::string render(const db::Value& v) {
  switch (v.type()) {
    case db::ValueType::Null: return "NULL";
    case db::ValueType::Integer: return std::to_string(v.as_integer());
    case db::ValueType::Real: {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.6g", v.as_real());
      return buf;
    }
    case db::ValueType::Text: return "'" + v.as_text() + "'";
  }
  return "?";
}

const char* op_name(db::RedoOp::Kind k) {
  switch (k) {
    case db::RedoOp::Kind::CreateTable: return "create-table";
    case db::RedoOp::Kind::DropTable: return "drop-table";
    case db::RedoOp::Kind::CreateIndex: return "create-index";
    case db::RedoOp::Kind::Insert: return "insert";
    case db::RedoOp::Kind::Update: return "update";
    case db::RedoOp::Kind::Erase: return "erase";
  }
  return "?";
}

/// Read-only recovery: what a DurableDatabase would rebuild, minus the
/// on-disk tail truncation. Mirrors DurableDatabase::recover().
struct Recovered {
  db::Database db;
  bool snapshot_loaded = false;
  std::uint64_t snapshot_seq = 0;
  db::WalReplayResult replay;
};

Recovered recover_readonly(const std::string& dir) {
  Recovered r;
  const std::string snap = db::DurableDatabase::snapshot_path(dir);
  const std::string wal = db::DurableDatabase::wal_path(dir);

  std::uint64_t after_seq = 0;
  if (auto loaded = db::load_snapshot(snap)) {
    r.db = std::move(loaded->db);
    after_seq = loaded->wal_seq;
    r.snapshot_loaded = true;
    r.snapshot_seq = after_seq;
  }

  db::Database* target = &r.db;
  r.replay = db::WriteAheadLog::replay(
      wal, after_seq, [target](std::uint64_t, db::RedoOp&& op) {
        return db::apply_redo(*target, std::move(op));
      });
  if (r.replay.partial_frame) {
    // A CRC-valid frame carried an inadmissible op: rebuild capped at the
    // last frame that applied whole.
    r.db = db::Database();
    std::uint64_t snapshot_seq = 0;
    if (r.snapshot_loaded) {
      auto loaded = db::load_snapshot(snap);
      if (loaded) {
        r.db = std::move(loaded->db);
        snapshot_seq = loaded->wal_seq;
      }
    }
    const std::uint64_t cap = r.replay.last_seq;
    (void)db::WriteAheadLog::replay(
        wal, snapshot_seq, [target, cap](std::uint64_t seq, db::RedoOp&& op) {
          return seq <= cap && db::apply_redo(*target, std::move(op));
        });
  }
  return r;
}

int cmd_dump(const std::string& dir, const std::string& only_table) {
  const Recovered r = recover_readonly(dir);
  for (const std::string& name : r.db.table_names()) {
    if (!only_table.empty() && name != only_table) continue;
    const db::Table& t = r.db.table(name);
    std::printf("table %s (%zu rows)\n", name.c_str(), t.row_count());
    std::printf("  columns:");
    for (const db::ColumnDef& c : t.schema().columns) {
      std::printf(" %s:%s%s", c.name.c_str(), type_name(c.type),
                  c.nullable ? "?" : "");
    }
    std::printf("\n");
    for (const std::string& col : t.indexed_columns()) {
      std::printf("  index on %s\n", col.c_str());
    }
    for (const auto& [key, row] : t.rows()) {
      std::printf("  [%lld]", static_cast<long long>(key));
      for (std::size_t i = 1; i < row.size(); ++i) {
        std::printf(" %s", render(row[i]).c_str());
      }
      std::printf("\n");
    }
  }
  if (!only_table.empty() && !r.db.has_table(only_table)) {
    std::fprintf(stderr, "mpros_dbtool: no table '%s' in %s\n",
                 only_table.c_str(), dir.c_str());
    return 1;
  }
  return 0;
}

int cmd_verify(const std::string& dir) {
  const Recovered r = recover_readonly(dir);
  std::printf("snapshot : %s", r.snapshot_loaded ? "loaded" : "none");
  if (r.snapshot_loaded) {
    std::printf(" (covers wal seq %llu)",
                static_cast<unsigned long long>(r.snapshot_seq));
  }
  std::printf("\n");
  std::printf("wal      : %llu commits, %llu records replayed, "
              "last seq %llu\n",
              static_cast<unsigned long long>(r.replay.commits),
              static_cast<unsigned long long>(r.replay.records),
              static_cast<unsigned long long>(r.replay.last_seq));
  std::printf("tables   : %zu\n", r.db.table_names().size());

  bool damaged = false;
  if (r.replay.truncated_bytes > 0) {
    std::printf("TORN TAIL: %llu bytes past the intact prefix (a live "
                "recovery would drop them)\n",
                static_cast<unsigned long long>(r.replay.truncated_bytes));
    damaged = true;
  }
  if (r.replay.partial_frame) {
    std::printf("PARTIAL COMMIT: a CRC-valid frame carried an inadmissible "
                "op; recovered capped at seq %llu\n",
                static_cast<unsigned long long>(r.replay.last_seq));
    damaged = true;
  }
  const std::vector<std::string> violations = r.db.integrity_violations();
  for (const std::string& v : violations) {
    std::printf("INTEGRITY: %s\n", v.c_str());
    damaged = true;
  }
  std::printf("verdict  : %s\n", damaged ? "DAMAGED (recoverable prefix "
                                           "shown above)"
                                         : "clean");
  return damaged ? 2 : 0;
}

int cmd_log(const std::string& dir) {
  const std::string wal = db::DurableDatabase::wal_path(dir);
  std::uint64_t frames = 0;
  const db::WalReplayResult replay = db::WriteAheadLog::replay(
      wal, 0, [&frames](std::uint64_t seq, db::RedoOp&& op) {
        if (seq != frames) {
          // First op of a new commit frame.
          frames = seq;
          std::printf("commit %llu\n", static_cast<unsigned long long>(seq));
        }
        std::printf("  %-12s %s", op_name(op.kind), op.table.c_str());
        switch (op.kind) {
          case db::RedoOp::Kind::Insert:
            std::printf(" key=%lld",
                        static_cast<long long>(op.row.empty()
                                                   ? 0
                                                   : op.row[0].as_integer()));
            break;
          case db::RedoOp::Kind::Update:
            std::printf(" key=%lld %s=%s", static_cast<long long>(op.key),
                        op.column.c_str(), render(op.value).c_str());
            break;
          case db::RedoOp::Kind::Erase:
            std::printf(" key=%lld", static_cast<long long>(op.key));
            break;
          case db::RedoOp::Kind::CreateIndex:
            std::printf(" on %s", op.column.c_str());
            break;
          default:
            break;
        }
        std::printf("\n");
        return true;
      });
  std::printf("%llu commits, %llu records, %llu valid bytes",
              static_cast<unsigned long long>(replay.commits),
              static_cast<unsigned long long>(replay.records),
              static_cast<unsigned long long>(replay.valid_bytes));
  if (replay.truncated_bytes > 0) {
    std::printf(", %llu torn bytes",
                static_cast<unsigned long long>(replay.truncated_bytes));
  }
  std::printf("\n");
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: mpros_dbtool dump   <dir> [table]\n"
               "       mpros_dbtool verify <dir>\n"
               "       mpros_dbtool log    <dir>\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string cmd = argv[1];
  const std::string dir = argv[2];
  if (cmd == "dump") return cmd_dump(dir, argc > 3 ? argv[3] : "");
  if (cmd == "verify") return cmd_verify(dir);
  if (cmd == "log") return cmd_log(dir);
  return usage();
}
