#include "mpros/fusion/hazard.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "mpros/common/assert.hpp"

namespace mpros::fusion {

WeibullModel::WeibullModel(double shape, double scale_days)
    : shape_(shape), scale_days_(scale_days) {
  MPROS_EXPECTS(shape > 0.0 && scale_days > 0.0);
}

double WeibullModel::cdf(SimTime t) const {
  if (t.micros() <= 0) return 0.0;
  const double z = t.days() / scale_days_;
  return 1.0 - std::exp(-std::pow(z, shape_));
}

double WeibullModel::hazard_per_day(SimTime t) const {
  const double days = std::max(1e-9, t.days());
  return (shape_ / scale_days_) * std::pow(days / scale_days_, shape_ - 1.0);
}

double WeibullModel::conditional_cdf(SimTime age, SimTime t) const {
  const double survive_age = 1.0 - cdf(age);
  if (survive_age <= 1e-12) return 1.0;
  const double survive_both = 1.0 - cdf(age + t);
  return 1.0 - survive_both / survive_age;
}

std::optional<WeibullModel> WeibullModel::fit(
    std::span<const LifeRecord> records) {
  std::vector<double> t_days;
  std::vector<bool> failed;
  std::size_t failures = 0;
  for (const LifeRecord& r : records) {
    if (r.duration.days() <= 0.0) continue;
    t_days.push_back(r.duration.days());
    failed.push_back(r.failed);
    if (r.failed) ++failures;
  }
  if (failures < 2) return std::nullopt;

  // Profile-likelihood equation for the shape k:
  //   g(k) = sum(t^k ln t)/sum(t^k) - 1/k - mean(ln t | failures) = 0.
  double mean_log_failure = 0.0;
  for (std::size_t i = 0; i < t_days.size(); ++i) {
    if (failed[i]) mean_log_failure += std::log(t_days[i]);
  }
  mean_log_failure /= static_cast<double>(failures);

  const auto g = [&](double k) {
    double num = 0.0, den = 0.0;
    for (const double t : t_days) {
      const double tk = std::pow(t, k);
      num += tk * std::log(t);
      den += tk;
    }
    return num / den - 1.0 / k - mean_log_failure;
  };

  // g is increasing in k; bisect on a generous bracket.
  double lo = 0.02, hi = 80.0;
  if (g(lo) > 0.0 || g(hi) < 0.0) return std::nullopt;
  for (int iter = 0; iter < 100; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (g(mid) > 0.0) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  const double shape = 0.5 * (lo + hi);

  double sum_tk = 0.0;
  for (const double t : t_days) sum_tk += std::pow(t, shape);
  const double scale =
      std::pow(sum_tk / static_cast<double>(failures), 1.0 / shape);
  return WeibullModel(shape, scale);
}

PrognosticVector refine_with_hazard(const PrognosticVector& v,
                                    const WeibullModel& model,
                                    SimTime component_age, double weight) {
  MPROS_EXPECTS(weight >= 0.0 && weight <= 1.0);

  std::set<std::int64_t> knots;
  for (const PrognosticPoint& p : v.points()) knots.insert(p.horizon.micros());
  // Add the model's decile horizons (conditional on current age) so the
  // refined curve is well shaped even with a sparse input vector.
  for (int decile = 1; decile <= 9; ++decile) {
    const double target = decile / 10.0;
    // Invert the conditional CDF by bisection on [0, 5*scale].
    double lo = 0.0, hi = model.scale_days() * 5.0 * 86400.0 * 1e6;
    for (int iter = 0; iter < 60; ++iter) {
      const double mid = 0.5 * (lo + hi);
      if (model.conditional_cdf(component_age,
                                SimTime(static_cast<std::int64_t>(mid))) <
          target) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    knots.insert(static_cast<std::int64_t>(0.5 * (lo + hi)));
  }

  std::vector<PrognosticPoint> refined;
  refined.reserve(knots.size());
  for (const std::int64_t k : knots) {
    const SimTime t(k);
    const double blended =
        (1.0 - weight) * v.probability_at(t) +
        weight * model.conditional_cdf(component_age, t);
    refined.push_back({t, blended});
  }
  return PrognosticVector(std::move(refined));
}

}  // namespace mpros::fusion
