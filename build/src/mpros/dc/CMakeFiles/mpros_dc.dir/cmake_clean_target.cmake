file(REMOVE_RECURSE
  "libmpros_dc.a"
)
