# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/dsp_test[1]_include.cmake")
include("/root/repo/build/tests/wavelet_test[1]_include.cmake")
include("/root/repo/build/tests/db_test[1]_include.cmake")
include("/root/repo/build/tests/domain_test[1]_include.cmake")
include("/root/repo/build/tests/sbfr_test[1]_include.cmake")
include("/root/repo/build/tests/rules_test[1]_include.cmake")
include("/root/repo/build/tests/fuzzy_test[1]_include.cmake")
include("/root/repo/build/tests/nn_test[1]_include.cmake")
include("/root/repo/build/tests/fusion_test[1]_include.cmake")
include("/root/repo/build/tests/oosm_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/plant_test[1]_include.cmake")
include("/root/repo/build/tests/dc_test[1]_include.cmake")
include("/root/repo/build/tests/pdme_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/contracts_test[1]_include.cmake")
