
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mpros/oosm/object_model.cpp" "src/mpros/oosm/CMakeFiles/mpros_oosm.dir/object_model.cpp.o" "gcc" "src/mpros/oosm/CMakeFiles/mpros_oosm.dir/object_model.cpp.o.d"
  "/root/repo/src/mpros/oosm/persistence.cpp" "src/mpros/oosm/CMakeFiles/mpros_oosm.dir/persistence.cpp.o" "gcc" "src/mpros/oosm/CMakeFiles/mpros_oosm.dir/persistence.cpp.o.d"
  "/root/repo/src/mpros/oosm/ship_builder.cpp" "src/mpros/oosm/CMakeFiles/mpros_oosm.dir/ship_builder.cpp.o" "gcc" "src/mpros/oosm/CMakeFiles/mpros_oosm.dir/ship_builder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mpros/common/CMakeFiles/mpros_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mpros/domain/CMakeFiles/mpros_domain.dir/DependInfo.cmake"
  "/root/repo/build/src/mpros/db/CMakeFiles/mpros_db.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
