// E17 — Fault tolerance: report delivery under loss, and DC liveness
// supervision (ISSUE 3).
//
// Part 1 sweeps network drop probability {0, 0.1, 0.2, 0.4} with reliable
// delivery on and off. A DC-side ReliableSender envelopes a fixed report
// stream toward a real PdmeExecutive attached to the lossy SimNetwork;
// acks flow back over the same lossy links and retransmissions run on the
// same clock. Metric: fraction of emitted reports eventually applied at
// the PDME. Acceptance: >= 99% at 20% drop with retransmission, versus
// roughly the raw delivery rate (~80%) fire-and-forget.
//
// Part 2 runs the assembled ShipSystem through a scripted hard partition
// of dc-1 and measures how long the PDME watchdog takes to mark the
// silent DC Stale and then Lost, in heartbeat intervals. Acceptance:
// Lost within 3 missed heartbeat intervals; Alive again after the
// partition heals.
//
// Writes BENCH_FAULTS.json at the current working directory (run from the
// repo root to refresh the committed snapshot).

#include <cstdio>
#include <string>
#include <vector>

#include "mpros/mpros/ship_system.hpp"
#include "mpros/net/messages.hpp"
#include "mpros/net/network.hpp"
#include "mpros/net/reliable.hpp"
#include "mpros/oosm/ship_builder.hpp"
#include "mpros/pdme/pdme.hpp"

namespace {

using namespace mpros;
using domain::FailureMode;

// ---------------------------------------------------------------------------
// Part 1: delivery-rate sweep.

constexpr std::size_t kReports = 400;
constexpr double kEmitPeriodS = 10.0;  // one report every 10 s of sim time
// Matches the emit period so each tick sends at most one fresh envelope;
// same-tick bursts would let jitter reorder adjacent sequences and show
// reorder-healed gaps even on a clean network.
constexpr double kSweepStepS = 10.0;   // retransmit/delivery sweep cadence
constexpr double kDrainCapS = 7200.0;  // give retransmission this long to heal

net::FailureReport make_report(ObjectId motor, std::size_t i) {
  net::FailureReport r;
  r.dc = DcId(1);
  r.knowledge_source = KnowledgeSourceId(1 + i % 4);
  r.sensed_object = motor;
  r.machine_condition = domain::condition_id(FailureMode::MotorImbalance);
  r.severity = 0.5;
  r.belief = 0.35;
  r.timestamp = SimTime::from_seconds(kEmitPeriodS * static_cast<double>(i));
  return r;
}

struct SweepPoint {
  double drop = 0.0;
  bool reliable = false;
  std::uint64_t emitted = 0;
  std::uint64_t applied = 0;     ///< unique reports fused at the PDME
  std::uint64_t retransmits = 0;
  std::uint64_t duplicates = 0;  ///< retransmit copies the PDME discarded
  std::uint64_t gaps = 0;
  double applied_fraction = 0.0;
};

SweepPoint run_sweep(double drop, bool reliable) {
  oosm::ObjectModel model;
  const auto ship = oosm::build_ship(model, "bench", 1, 1);
  pdme::PdmeExecutive pdme(model);

  net::NetworkConfig net_cfg;
  net_cfg.base_latency = SimTime::from_millis(5.0);
  net_cfg.jitter = SimTime::from_millis(20.0);
  net_cfg.drop_probability = drop;
  net_cfg.seed = 0xE17;
  net::SimNetwork network(net_cfg);
  pdme.attach_to_network(network);

  net::ReliableConfig rel_cfg;
  rel_cfg.initial_rto = SimTime::from_seconds(30.0);
  rel_cfg.max_rto = SimTime::from_seconds(480.0);
  net::ReliableSender sender(DcId(1), rel_cfg);

  // The DC endpoint exists only to absorb acks; fire-and-forget runs
  // register it too so both modes present identical endpoint sets.
  network.register_endpoint("dc-1", [&](const net::Message& m) {
    if (const auto ack = net::try_unwrap_ack(m.payload)) sender.on_ack(*ack);
  });

  std::size_t next_report = 0;
  const double emit_end = kEmitPeriodS * static_cast<double>(kReports);
  for (double t = 0.0; t <= emit_end + kDrainCapS; t += kSweepStepS) {
    const SimTime now = SimTime::from_seconds(t);
    while (next_report < kReports &&
           kEmitPeriodS * static_cast<double>(next_report) <= t) {
      const net::FailureReport r = make_report(ship.plants[0].motor,
                                               next_report++);
      if (reliable) {
        network.send("dc-1", "pdme", sender.envelope(r, now), now);
      } else {
        network.send("dc-1", "pdme", net::wrap(r), now);
      }
    }
    if (reliable) {
      for (auto& payload : sender.due_retransmits(now)) {
        network.send("dc-1", "pdme", std::move(payload), now);
      }
    }
    network.advance_to(now);
    if (next_report == kReports && (!reliable || sender.unacked() == 0)) {
      break;  // stream fully emitted and (if reliable) fully acked
    }
  }
  network.flush();

  SweepPoint p;
  p.drop = drop;
  p.reliable = reliable;
  p.emitted = kReports;
  p.applied = pdme.stats().reports_accepted;
  p.retransmits = sender.stats().retransmits;
  p.duplicates = pdme.stats().duplicates_dropped;
  p.gaps = pdme.stats().gaps_detected;
  p.applied_fraction =
      static_cast<double>(p.applied) / static_cast<double>(p.emitted);
  return p;
}

// ---------------------------------------------------------------------------
// Part 2: liveness supervision through a scripted hard partition.

struct LivenessResult {
  double heartbeat_interval_s = 0.0;
  double partition_at_s = 0.0;
  double stale_at_s = -1.0;
  double lost_at_s = -1.0;
  double recovered_at_s = -1.0;
  double lost_after_intervals = 0.0;  ///< (lost_at - partition_at) / interval
};

LivenessResult run_liveness() {
  ShipSystemConfig cfg;
  cfg.plant_count = 2;
  cfg.worker_threads = 2;
  cfg.network.jitter = SimTime::from_millis(1.0);
  cfg.seed = 0xE17;

  constexpr double kPartitionFrom = 600.0;
  constexpr double kPartitionTo = 1800.0;
  ShipSystem ship(cfg);
  ship.network().schedule_outage({"dc-1",
                                  SimTime::from_seconds(kPartitionFrom),
                                  SimTime::from_seconds(kPartitionTo), 1.0});

  LivenessResult r;
  r.heartbeat_interval_s = cfg.pdme.heartbeat_interval.seconds();
  r.partition_at_s = kPartitionFrom;

  const DcId dc1(1);
  for (double t = 15.0; t <= 2400.0; t += 15.0) {
    ship.advance_to(SimTime::from_seconds(t));
    const auto liveness = ship.pdme().dc_liveness(dc1);
    if (r.stale_at_s < 0 && liveness == pdme::DcLiveness::Stale) {
      r.stale_at_s = t;
    }
    if (r.lost_at_s < 0 && liveness == pdme::DcLiveness::Lost) {
      r.lost_at_s = t;
    }
    if (r.lost_at_s > 0 && r.recovered_at_s < 0 &&
        liveness == pdme::DcLiveness::Alive) {
      r.recovered_at_s = t;
    }
  }
  if (r.lost_at_s > 0) {
    r.lost_after_intervals =
        (r.lost_at_s - r.partition_at_s) / r.heartbeat_interval_s;
  }
  return r;
}

// ---------------------------------------------------------------------------

void write_json(const std::vector<SweepPoint>& sweep,
                const LivenessResult& live) {
  std::FILE* f = std::fopen("BENCH_FAULTS.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_faults: cannot write BENCH_FAULTS.json\n");
    return;
  }
  std::fprintf(f,
               "{\n"
               "  \"experiment\": \"E17\",\n"
               "  \"reports_per_run\": %zu,\n"
               "  \"delivery_sweep\": [\n",
               kReports);
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const SweepPoint& p = sweep[i];
    std::fprintf(f,
                 "    {\"drop_probability\": %.2f, \"reliable\": %s, "
                 "\"applied\": %llu, \"applied_fraction\": %.4f, "
                 "\"retransmits\": %llu, \"duplicates_dropped\": %llu, "
                 "\"gaps_detected\": %llu}%s\n",
                 p.drop, p.reliable ? "true" : "false",
                 static_cast<unsigned long long>(p.applied),
                 p.applied_fraction,
                 static_cast<unsigned long long>(p.retransmits),
                 static_cast<unsigned long long>(p.duplicates),
                 static_cast<unsigned long long>(p.gaps),
                 i + 1 < sweep.size() ? "," : "");
  }
  std::fprintf(f,
               "  ],\n"
               "  \"liveness\": {\n"
               "    \"heartbeat_interval_s\": %.0f,\n"
               "    \"partition_at_s\": %.0f,\n"
               "    \"stale_at_s\": %.0f,\n"
               "    \"lost_at_s\": %.0f,\n"
               "    \"lost_after_missed_intervals\": %.2f,\n"
               "    \"recovered_alive_at_s\": %.0f\n"
               "  }\n"
               "}\n",
               live.heartbeat_interval_s, live.partition_at_s,
               live.stale_at_s, live.lost_at_s, live.lost_after_intervals,
               live.recovered_at_s);
  std::fclose(f);
}

}  // namespace

int main() {
  std::printf(
      "\nE17 fault tolerance (ISSUE 3; acceptance: >=99%% applied at 20%%\n"
      "drop with retransmission, Lost within 3 missed heartbeats)\n\n");

  std::vector<SweepPoint> sweep;
  std::printf("%6s  %-9s  %8s  %8s  %12s  %6s\n", "drop", "mode", "applied",
              "fraction", "retransmits", "gaps");
  for (const double drop : {0.0, 0.1, 0.2, 0.4}) {
    for (const bool reliable : {false, true}) {
      const SweepPoint p = run_sweep(drop, reliable);
      std::printf("%6.2f  %-9s  %3llu/%zu  %8.4f  %12llu  %6llu\n", p.drop,
                  p.reliable ? "reliable" : "raw",
                  static_cast<unsigned long long>(p.applied), kReports,
                  p.applied_fraction,
                  static_cast<unsigned long long>(p.retransmits),
                  static_cast<unsigned long long>(p.gaps));
      sweep.push_back(p);
    }
  }

  const LivenessResult live = run_liveness();
  std::printf(
      "\npartition at %.0f s: Stale %.0f s, Lost %.0f s "
      "(%.2f missed intervals), Alive again %.0f s\n",
      live.partition_at_s, live.stale_at_s, live.lost_at_s,
      live.lost_after_intervals, live.recovered_at_s);

  write_json(sweep, live);
  std::printf("BENCH_FAULTS.json written\n");
  return 0;
}
