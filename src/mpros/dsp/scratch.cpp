#include "mpros/dsp/scratch.hpp"

#include "mpros/common/assert.hpp"

namespace mpros::dsp {

DspScratch& DspScratch::local() {
  static thread_local DspScratch scratch;
  return scratch;
}

std::span<std::complex<double>> DspScratch::complex_lane(std::size_t lane,
                                                         std::size_t n) {
  MPROS_EXPECTS(lane < kLanes);
  auto& buf = complex_[lane];
  if (buf.size() < n) buf.resize(n);
  return {buf.data(), n};
}

std::span<double> DspScratch::real_lane(std::size_t lane, std::size_t n) {
  MPROS_EXPECTS(lane < kLanes);
  auto& buf = real_[lane];
  if (buf.size() < n) buf.resize(n);
  return {buf.data(), n};
}

std::size_t DspScratch::footprint_bytes() const {
  std::size_t bytes = 0;
  for (std::size_t i = 0; i < kLanes; ++i) {
    bytes += complex_[i].capacity() * sizeof(std::complex<double>);
    bytes += real_[i].capacity() * sizeof(double);
  }
  return bytes;
}

}  // namespace mpros::dsp
