file(REMOVE_RECURSE
  "CMakeFiles/bench_dli_accuracy.dir/bench_dli_accuracy.cpp.o"
  "CMakeFiles/bench_dli_accuracy.dir/bench_dli_accuracy.cpp.o.d"
  "bench_dli_accuracy"
  "bench_dli_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dli_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
