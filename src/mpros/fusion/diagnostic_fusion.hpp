#pragma once
// Diagnostic knowledge fusion (paper §5.3).
//
// Incoming diagnostic reports are correlated with Dempster-Shafer belief
// maintenance, "facilitated by use of a heuristic that groups similar
// failures into logical groups": each (machine, logical group) pair keeps
// its own frame of discernment and running mass function. Failures in
// different groups fuse independently — several can be suspect at once —
// while failures within a group share probability mass, exactly as §5.3
// prescribes.
//
// "Diagnostic knowledge fusion generates a new fused belief whenever a
// diagnostic report arrives for a suspect component. This updates the
// belief for that suspect component and for every other failure in the
// logical group ... It also updates the belief of 'unknown' failure for
// that logical group." (§5.6)

#include <map>
#include <optional>
#include <span>
#include <vector>

#include "mpros/common/ids.hpp"
#include "mpros/domain/failure_modes.hpp"
#include "mpros/fusion/dempster_shafer.hpp"

namespace mpros::fusion {

struct ModeBelief {
  domain::FailureMode mode{};
  double belief = 0.0;        ///< Bel({mode}) after fusion
  double plausibility = 0.0;  ///< Pl({mode})
};

struct GroupState {
  domain::LogicalGroup group{};
  std::vector<ModeBelief> modes;  ///< every mode in the group, enum order
  double unknown = 1.0;           ///< mass on Θ
  double last_conflict = 0.0;     ///< K of the most recent combination
  std::size_t report_count = 0;
};

class DiagnosticFusion {
 public:
  DiagnosticFusion();

  /// Fuse one single-mode report (§7.2 Belief field) into the machine's
  /// group state; returns the updated state.
  GroupState update(ObjectId machine, domain::FailureMode mode, double belief);

  /// Batched-ingest hot path: identical fusion state transition to
  /// update(), but skips building the GroupState summary (which allocates
  /// a ModeBelief vector per call). Callers that need the summary read it
  /// later via state().
  void apply(ObjectId machine, domain::FailureMode mode, double belief);

  /// Fuse disjunctive evidence ("B or C will occur") — all modes must share
  /// one logical group.
  GroupState update_set(ObjectId machine,
                        std::span<const domain::FailureMode> modes,
                        double belief);

  /// Current state (vacuous if no reports yet).
  [[nodiscard]] GroupState state(ObjectId machine,
                                 domain::LogicalGroup group) const;

  /// All group states for one machine that have received reports.
  [[nodiscard]] std::vector<GroupState> states(ObjectId machine) const;

  /// Forget one machine entirely (e.g. after maintenance).
  void reset(ObjectId machine);

  /// The shared frame for a group (hypotheses in modes_in_group order).
  [[nodiscard]] const FrameOfDiscernment& frame(
      domain::LogicalGroup group) const;

 private:
  struct Key {
    std::uint64_t machine;
    domain::LogicalGroup group;
    auto operator<=>(const Key&) const = default;
  };
  struct Cell {
    MassFunction mass;
    double last_conflict = 0.0;
    std::size_t report_count = 0;
  };

  /// Shared state transition behind update_set() and apply(): fold
  /// simple-support evidence on `focus` into the (machine, group) cell.
  Cell& apply_focus(ObjectId machine, domain::LogicalGroup group,
                    HypothesisSet focus, double belief);

  [[nodiscard]] GroupState summarize(domain::LogicalGroup group,
                                     const Cell& cell) const;
  [[nodiscard]] HypothesisSet set_of(domain::LogicalGroup group,
                                     domain::FailureMode mode) const;
  Cell& cell(ObjectId machine, domain::LogicalGroup group);

  std::vector<FrameOfDiscernment> frames_;  // by LogicalGroup value
  std::map<Key, Cell> cells_;
};

}  // namespace mpros::fusion
