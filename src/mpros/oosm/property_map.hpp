#pragma once
// Flat sorted property container for OOSM objects.
//
// Report posting is the OOSM hot path: every fused conclusion creates one
// Report object carrying ~11 properties, and std::map paid one node
// allocation (plus a key-string allocation) per property. PropertyMap keeps
// the entries in a vector sorted ascending by key — iteration order is
// identical to std::map's, so everything rendered from it (browser, ICAS
// export, persistence dumps) is byte-for-byte unchanged — while a bulk
// build through append() is a handful of contiguous emplacements.

#include <algorithm>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "mpros/common/assert.hpp"
#include "mpros/db/value.hpp"

namespace mpros::oosm {

class PropertyMap {
 public:
  using value_type = std::pair<std::string, db::Value>;
  using const_iterator = std::vector<value_type>::const_iterator;

  PropertyMap() = default;

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }
  [[nodiscard]] const_iterator begin() const { return entries_.begin(); }
  [[nodiscard]] const_iterator end() const { return entries_.end(); }

  void reserve(std::size_t n) { entries_.reserve(n); }

  /// Insert-or-assign, keeping keys sorted.
  void set(std::string_view key, db::Value value) {
    const auto it = lower(key);
    if (it != entries_.end() && it->first == key) {
      it->second = std::move(value);
    } else {
      entries_.insert(it, value_type{std::string(key), std::move(value)});
    }
  }

  /// Bulk-build fast path: append a key known to sort strictly after every
  /// existing key — no search, no shifting. Contract-checked, so a caller
  /// emitting keys out of order fails loudly instead of corrupting lookup.
  /// The value is forwarded into a db::Value constructed in place: bulk
  /// posters pay no temporary-variant move-and-destroy per property.
  template <typename V>
  void append(std::string_view key, V&& value) {
    MPROS_EXPECTS(entries_.empty() || entries_.back().first < key);
    entries_.emplace_back(std::piecewise_construct, std::forward_as_tuple(key),
                          std::forward_as_tuple(std::forward<V>(value)));
  }

  /// The value under `key`, or nullptr.
  [[nodiscard]] const db::Value* find(std::string_view key) const {
    const auto it = lower(key);
    return it != entries_.end() && it->first == key ? &it->second : nullptr;
  }

  [[nodiscard]] bool contains(std::string_view key) const {
    return find(key) != nullptr;
  }

 private:
  [[nodiscard]] std::vector<value_type>::iterator lower(std::string_view key) {
    return std::lower_bound(entries_.begin(), entries_.end(), key,
                            [](const value_type& e, std::string_view k) {
                              return e.first < k;
                            });
  }
  [[nodiscard]] const_iterator lower(std::string_view key) const {
    return std::lower_bound(entries_.begin(), entries_.end(), key,
                            [](const value_type& e, std::string_view k) {
                              return e.first < k;
                            });
  }

  std::vector<value_type> entries_;
};

}  // namespace mpros::oosm
