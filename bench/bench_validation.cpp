// E14 — Seeded-fault validation study (paper §9).
//
// The paper ends §9 asking how to validate a failure-prediction system;
// this harness is the simulator's answer: run every FMEA mode to failure
// with known ground truth and score detection, lead time, prognostic
// calibration, and false alarms on healthy control plants.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "mpros/mpros/validation.hpp"

namespace {

using namespace mpros;

void print_study() {
  // Realistic 45-day wear lives, 6-hourly vibration tests: the §9 caveat
  // about accelerated tests applies to the prognostic calibration columns,
  // so the study runs at fleet-typical rates.
  const auto scenarios = standard_study();
  const ValidationSummary summary = run_validation(scenarios);
  std::printf("\n%s\n", render(summary).c_str());
}

void BM_SingleRunToFailure(benchmark::State& state) {
  ValidationConfig cfg;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    ValidationScenario s;
    s.mode = domain::FailureMode::MotorImbalance;
    s.wear_time = SimTime::from_hours(6.0);
    s.seed = seed++;
    benchmark::DoNotOptimize(run_scenario(s, cfg));
  }
  state.SetLabel("7h run-to-failure scenario (2 plants)");
}
BENCHMARK(BM_SingleRunToFailure)->Unit(benchmark::kMillisecond)
    ->Iterations(2);

}  // namespace

int main(int argc, char** argv) {
  print_study();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
