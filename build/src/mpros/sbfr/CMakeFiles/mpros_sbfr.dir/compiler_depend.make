# Empty compiler generated dependencies file for mpros_sbfr.
# This may be replaced when dependencies are built.
