# Empty dependencies file for pdme_test.
# This may be replaced when dependencies are built.
