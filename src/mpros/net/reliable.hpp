#pragma once
// Reliable report delivery over the hostile ship transport.
//
// §5.1 lets knowledge fusion *tolerate* gaps; this layer makes the system
// *recover* from them. Each DC wraps its failure reports in monotonically
// sequence-numbered envelopes and keeps a bounded retransmit buffer; the
// PDME detects stream gaps, drops duplicate sequences, and acknowledges
// cumulatively so the DC can retire delivered entries. Retransmissions back
// off exponentially, driven by whatever scheduler ticks the owning
// component (the DC's event scheduler in the assembled system).
//
// Thread-safe: the DC worker sweeps retransmits while the driver thread
// delivers ACKs; both sides serialize on an internal mutex.

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <set>
#include <vector>

#include "mpros/common/clock.hpp"
#include "mpros/net/messages.hpp"

namespace mpros::net {

struct FleetSummary;  // fleet_summary.hpp

/// Deterministic per-stream phase offset in [0, period/4): hundreds of DCs
/// brought up together would otherwise run their retransmit sweeps and
/// heartbeats in lockstep and burst-retransmit the instant an outage ends.
/// Seeded by stream id (splitmix64), not by time, so a restarted owner
/// keeps its phase and the schedule stays deterministic.
[[nodiscard]] SimTime desync_phase(std::uint64_t stream_id, SimTime period);

struct ReliableConfig {
  /// Unacked envelopes kept for retransmission; beyond this the oldest is
  /// dropped (counted, warned) — bounded memory beats unbounded recovery.
  std::size_t buffer_limit = 256;
  SimTime initial_rto = SimTime::from_seconds(90.0);
  SimTime max_rto = SimTime::from_seconds(1800.0);
  double backoff = 2.0;  ///< RTO multiplier per retransmission
};

/// DC side: envelopes reports, buffers them until acked, and surfaces the
/// retransmissions that have come due.
class ReliableSender {
 public:
  explicit ReliableSender(DcId dc, ReliableConfig cfg = {});
  ~ReliableSender();

  ReliableSender(const ReliableSender&) = delete;
  ReliableSender& operator=(const ReliableSender&) = delete;

  /// Assign the next sequence to `report`, buffer the envelope for
  /// retransmission, and return its wire payload for immediate send.
  [[nodiscard]] std::vector<std::uint8_t> envelope(const FailureReport& report,
                                                   SimTime now);

  /// Batch overload: seal one sync window's reports under ONE sequence
  /// number (ReportBatchEnvelopeMsg). The whole window acks, gaps, and
  /// retransmits as a unit — per-datagram stream arithmetic is unchanged,
  /// each datagram just carries more reports.
  [[nodiscard]] std::vector<std::uint8_t> envelope(
      std::span<const FailureReport> reports, SimTime now);

  /// Fleet-tier overload: seal a ship-to-shore summary in the same
  /// sequence/retransmit window. The stream id is this sender's `dc`
  /// value, reinterpreted as the hull's ShipId — one reliable stream per
  /// uplink, same ack algebra.
  [[nodiscard]] std::vector<std::uint8_t> envelope(const FleetSummary& summary,
                                                   SimTime now);

  /// Control-plane overload: seal a runtime-reconfiguration command in the
  /// same sequence/retransmit window. The PDME keeps one such sender per
  /// DC (the `dc` value is the target), so commands ride the same ack
  /// algebra as reports, just pointed the other way.
  [[nodiscard]] std::vector<std::uint8_t> envelope(const CommandMessage& cmd,
                                                   SimTime now);

  /// Retire every buffered envelope with sequence <= ack.cumulative.
  void on_ack(const AckMessage& ack);

  /// Wire payloads whose retransmission timer expired at or before `now`;
  /// each returned entry's timer is backed off for the next round.
  [[nodiscard]] std::vector<std::vector<std::uint8_t>> due_retransmits(
      SimTime now);

  [[nodiscard]] DcId dc() const { return dc_; }
  [[nodiscard]] std::uint64_t last_sequence() const;
  [[nodiscard]] std::size_t unacked() const;

  struct Stats {
    std::uint64_t enveloped = 0;
    std::uint64_t retransmits = 0;
    std::uint64_t acked = 0;
    std::uint64_t overflow_dropped = 0;  ///< evicted before being acked
    /// Entries whose retransmission timer reached max_rto: the link has
    /// been down long enough that recovery now crawls — the observable
    /// precursor to overflow_dropped (net.retransmit_max_backoff counter).
    std::uint64_t max_backoff_hits = 0;

    friend bool operator==(const Stats&, const Stats&) = default;
  };
  /// Coherent copy of the sender's counters, taken under the stream lock.
  /// All fields are monotonic counters (never regress); instantaneous
  /// gauges live on their own accessors (unacked()) or in telemetry
  /// (net.retransmit_inflight).
  [[nodiscard]] Stats snapshot() const;
  /// Deprecated: thin shim for snapshot() — same value, older name.
  [[nodiscard]] Stats stats() const { return snapshot(); }

  /// The sender's full resumable state: sequence cursor, buffered unacked
  /// entries with their backoff timers, stats. take_state()/restore() let a
  /// supervisor move the retransmit window out of a wedged owner and into
  /// its restarted replacement, so the stream resumes mid-sequence and no
  /// unacked payload is lost.
  struct State {
    struct BufferedEntry {
      std::uint64_t sequence = 0;
      std::vector<std::uint8_t> payload;
      SimTime next_retry;
      SimTime rto;
    };
    std::uint64_t next_sequence = 1;
    std::vector<BufferedEntry> window;  ///< ascending sequence
    Stats stats;
  };
  /// Strip this sender of its stream state (the window empties; the
  /// recovery-debt gauge moves with the entries, not the carcass).
  [[nodiscard]] State take_state();
  /// Adopt `state` wholesale, replacing whatever this sender held.
  void restore(State state);

 private:
  struct Entry {
    std::uint64_t sequence = 0;
    std::vector<std::uint8_t> payload;
    SimTime next_retry;
    SimTime rto;
  };

  /// Buffer `payload` (already carrying `next_sequence_`) in the window,
  /// advancing the sequence. Caller holds mu_.
  [[nodiscard]] std::vector<std::uint8_t> seal(std::vector<std::uint8_t> payload,
                                               SimTime now);

  const DcId dc_;
  const ReliableConfig cfg_;
  mutable std::mutex mu_;
  std::uint64_t next_sequence_ = 1;
  std::deque<Entry> window_;  // ascending sequence
  Stats stats_;
};

/// PDME side: per-DC stream state. Detects gaps the moment a later
/// sequence (or a heartbeat advertising one) arrives, counts healed gaps
/// when retransmissions fill them, and produces the cumulative ACK.
class ReliableReceiver {
 public:
  struct Outcome {
    bool duplicate = false;      ///< sequence already applied — drop payload
    std::uint64_t new_gaps = 0;  ///< sequences newly discovered missing
    AckMessage ack;              ///< cumulative ack to return to the DC
  };

  /// Record arrival of `sequence` from `dc`.
  Outcome on_envelope(DcId dc, std::uint64_t sequence);

  /// Would on_envelope(dc, sequence) report a duplicate? Pure query — no
  /// stats or stream mutation. The sharded PDME router asks this before
  /// enqueueing so it can re-ack retransmissions without routing them, and
  /// only commits the stream state (on_envelope) once the shard accepts the
  /// report — acking a report that was never enqueued would lose it forever.
  [[nodiscard]] bool is_duplicate(DcId dc, std::uint64_t sequence) const;

  /// Cumulative ack for `dc` from current stream state (e.g. re-acking a
  /// duplicate without running on_envelope).
  [[nodiscard]] AckMessage make_ack(DcId dc) const;

  /// A heartbeat advertised the DC's newest sequence: any sequence between
  /// the highest seen and `last_sequence` is a (tail) gap. Returns how many
  /// were newly discovered missing.
  std::uint64_t on_advertised(DcId dc, std::uint64_t last_sequence);

  /// Highest sequence S such that 1..S have all arrived.
  [[nodiscard]] std::uint64_t cumulative(DcId dc) const;
  /// Sequences known missing right now (detected, not yet healed).
  [[nodiscard]] std::uint64_t open_gaps(DcId dc) const;

  struct Stats {
    std::uint64_t accepted = 0;
    std::uint64_t duplicates = 0;
    std::uint64_t gaps_detected = 0;
    std::uint64_t gaps_healed = 0;

    friend bool operator==(const Stats&, const Stats&) = default;
  };
  /// Copy of the receiver's counters — all monotonic; the instantaneous
  /// stream view lives on cumulative()/open_gaps(). Single-threaded like
  /// the rest of the receiver (the PDME driver owns it).
  [[nodiscard]] Stats snapshot() const { return stats_; }
  /// Deprecated: thin shim for snapshot() — same value, older name.
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  struct Stream {
    std::uint64_t contiguous = 0;     ///< 1..contiguous all received
    std::uint64_t max_known = 0;      ///< highest sequence seen/advertised
    std::set<std::uint64_t> pending;  ///< received above `contiguous`
  };

  std::map<std::uint64_t, Stream> streams_;  // by DcId value
  Stats stats_;
};

}  // namespace mpros::net
