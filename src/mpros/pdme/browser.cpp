#include "mpros/pdme/browser.hpp"

#include <cstdarg>
#include <cstdio>

namespace mpros::pdme {
namespace {

const char* source_name(std::uint64_t ks) {
  switch (ks) {
    case 1: return "DLI Expert System";
    case 2: return "SBFR";
    case 3: return "Wavelet Neural Net";
    case 4: return "Fuzzy Logic";
    case 5: return "Sensor Validator";
    default: return "External";
  }
}

/// Condition text that survives sensor-fault and unknown ids (the report
/// list must render whatever arrived, not abort on it).
std::string condition_label(ConditionId id) {
  if (domain::is_sensor_fault_condition(id)) {
    return domain::sensor_fault_condition_text(domain::sensor_fault_kind(id));
  }
  if (id.valid() && id.value() <= domain::kFailureModeCount) {
    return domain::condition_text(domain::failure_mode(id));
  }
  return "condition " + std::to_string(id.value());
}

std::string ttf_text(const std::optional<SimTime>& t) {
  return t.has_value() ? to_string(*t) : std::string("--");
}

void append_line(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  out += buf;
  out += '\n';
}

}  // namespace

std::string render_machine(const PdmeExecutive& pdme,
                           const oosm::ObjectModel& model, ObjectId machine) {
  std::string out;
  const std::string machine_name =
      model.exists(machine) ? model.name(machine)
                            : "object " + std::to_string(machine.value());

  append_line(out, "=== MPROS Condition Browser ===");
  append_line(out, "Machine: %s", machine_name.c_str());
  append_line(out, "");

  const auto reports = pdme.reports_for(machine);
  append_line(out, "Condition reports received: %zu", reports.size());
  append_line(out, "%-22s %-26s %8s %7s  %s", "Source", "Condition",
              "Severity", "Belief", "Effective");
  for (const net::FailureReport& r : reports) {
    append_line(out, "%-22s %-26s %8.2f %7.2f  %s",
                source_name(r.knowledge_source.value()),
                condition_label(r.machine_condition).c_str(), r.severity,
                r.belief, to_string(r.timestamp).c_str());
  }
  append_line(out, "");
  append_line(out, "--- Fused condition groups (Knowledge Fusion) ---");

  for (std::size_t g = 0; g < domain::kLogicalGroupCount; ++g) {
    const auto group = static_cast<domain::LogicalGroup>(g);
    const fusion::GroupState state = pdme.group_state(machine, group);
    if (state.report_count == 0) continue;
    append_line(out, "[%s]  unknown=%.2f  conflict=%.2f  reports=%zu",
                domain::to_string(group), state.unknown, state.last_conflict,
                state.report_count);
    for (const fusion::ModeBelief& mb : state.modes) {
      if (mb.belief <= 1e-9 && mb.plausibility >= 0.999) continue;
      append_line(out, "    %-28s bel=%.3f pl=%.3f",
                  domain::condition_text(mb.mode).c_str(), mb.belief,
                  mb.plausibility);
    }
  }

  append_line(out, "");
  append_line(out, "--- Failure predictions ---");
  for (const MaintenanceItem& item : pdme.prioritized_list(machine)) {
    append_line(out,
                "%-28s bel=%.3f sev=%.2f  P50 ttf=%s  P90 ttf=%s  trend=%s",
                domain::condition_text(item.mode).c_str(), item.fused_belief,
                item.max_severity, ttf_text(item.median_ttf).c_str(),
                ttf_text(item.p90_ttf).c_str(),
                ttf_text(item.trend_ttf).c_str());
  }
  return out;
}

std::string render_summary(const PdmeExecutive& pdme,
                           const oosm::ObjectModel& model,
                           std::size_t max_items) {
  std::string out;
  append_line(out, "=== MPROS Prioritized Maintenance List ===");
  append_line(out, "%-28s %-28s %8s %8s %10s", "Machine", "Condition",
              "Belief", "Severity", "P50 TTF");
  std::size_t count = 0;
  for (const MaintenanceItem& item : pdme.prioritized_list()) {
    if (count++ >= max_items) break;
    const std::string machine_name =
        model.exists(item.machine) ? model.name(item.machine)
                                   : std::to_string(item.machine.value());
    append_line(out, "%-28s %-28s %8.3f %8.2f %10s", machine_name.c_str(),
                domain::condition_text(item.mode).c_str(), item.fused_belief,
                item.max_severity, ttf_text(item.median_ttf).c_str());
  }

  // §3.1's list is only as fresh as the streams feeding it; surface every
  // machinery space the watchdog has doubts about, and every instrument
  // channel currently quarantined, right on the operator's summary page.
  const auto& health = pdme.dc_health();
  if (!health.empty()) {
    append_line(out, "");
    append_line(out, "--- Data Concentrator health ---");
    for (const auto& [dc, h] : health) {
      if (h.liveness == DcLiveness::Alive) {
        append_line(out, "dc-%llu  %-5s  last data %s  heartbeats=%llu",
                    static_cast<unsigned long long>(dc),
                    to_string(h.liveness), to_string(h.last_heard).c_str(),
                    static_cast<unsigned long long>(h.heartbeats));
      } else {
        append_line(out, "dc-%llu  %-5s  NO DATA since %s",
                    static_cast<unsigned long long>(dc),
                    to_string(h.liveness), to_string(h.last_heard).c_str());
      }
    }
  }
  const auto faults = pdme.sensor_faults();
  if (!faults.empty()) {
    append_line(out, "");
    append_line(out, "--- Quarantined sensor channels ---");
    for (const auto& f : faults) {
      append_line(out, "dc-%llu  %-12s since %s  %s",
                  static_cast<unsigned long long>(f.dc.value()),
                  domain::to_string(f.kind), to_string(f.at).c_str(),
                  f.explanation.c_str());
    }
  }
  return out;
}

std::string export_icas_csv(const PdmeExecutive& pdme,
                            const oosm::ObjectModel& model) {
  std::string out =
      "machine,condition,fused_belief,plausibility,max_severity,"
      "report_count,p50_ttf_seconds,p90_ttf_seconds\n";
  char buf[256];
  for (const MaintenanceItem& item : pdme.prioritized_list()) {
    const std::string machine_name =
        model.exists(item.machine) ? model.name(item.machine)
                                   : std::to_string(item.machine.value());
    const double p50 =
        item.median_ttf.has_value() ? item.median_ttf->seconds() : -1.0;
    const double p90 =
        item.p90_ttf.has_value() ? item.p90_ttf->seconds() : -1.0;
    std::snprintf(buf, sizeof buf, "\"%s\",\"%s\",%.4f,%.4f,%.3f,%zu,%.0f,%.0f\n",
                  machine_name.c_str(),
                  domain::condition_text(item.mode).c_str(),
                  item.fused_belief, item.plausibility, item.max_severity,
                  item.report_count, p50, p90);
    out += buf;
  }
  return out;
}

}  // namespace mpros::pdme
