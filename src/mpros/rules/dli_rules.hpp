#pragma once
// The centrifugal-chiller vibration/process rulebase.
//
// One frame-based rule per FMEA failure mode, encoding textbook vibration
// signatures plus the process-parameter gating the paper highlights (§6.1).
// Warn/alarm levels are calibrated against the plant simulator's healthy
// baselines (see src/mpros/plant/vibration.cpp); E6 measures the resulting
// expert-system agreement with injected ground truth.

#include <vector>

#include "mpros/domain/equipment.hpp"
#include "mpros/rules/engine.hpp"

namespace mpros::rules {

/// Build the full 12-mode rulebase for the chilled-water drive line.
[[nodiscard]] std::vector<Rule> chiller_rulebase(
    const domain::MachineSignature& signature = domain::navy_chiller_signature(),
    const domain::ProcessNominals& nominals = domain::navy_chiller_nominals());

}  // namespace mpros::rules
