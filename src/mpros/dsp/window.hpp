#pragma once
// Spectral analysis windows.
//
// Hann is the DC's default for machinery spectra; flat-top is offered for
// amplitude-accurate single-tone calibration (standard vibration practice).

#include <cstddef>
#include <span>
#include <vector>

namespace mpros::dsp {

enum class WindowKind { Rectangular, Hann, Hamming, Blackman, FlatTop };

/// Generate window coefficients of length n.
[[nodiscard]] std::vector<double> make_window(WindowKind kind, std::size_t n);

/// Multiply `x` by the window in place. Sizes must match.
void apply_window(std::span<double> x, std::span<const double> window);

/// Sum of coefficients; used to normalize amplitude spectra ("coherent gain").
[[nodiscard]] double coherent_gain(std::span<const double> window);

/// Sum of squared coefficients; used to normalize power spectra.
[[nodiscard]] double power_gain(std::span<const double> window);

[[nodiscard]] const char* to_string(WindowKind kind);

}  // namespace mpros::dsp
