file(REMOVE_RECURSE
  "CMakeFiles/mpros_mpros.dir/ship_system.cpp.o"
  "CMakeFiles/mpros_mpros.dir/ship_system.cpp.o.d"
  "CMakeFiles/mpros_mpros.dir/validation.cpp.o"
  "CMakeFiles/mpros_mpros.dir/validation.cpp.o.d"
  "CMakeFiles/mpros_mpros.dir/wnn_training.cpp.o"
  "CMakeFiles/mpros_mpros.dir/wnn_training.cpp.o.d"
  "libmpros_mpros.a"
  "libmpros_mpros.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpros_mpros.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
