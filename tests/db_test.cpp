// Embedded relational store tests: schema checks, CRUD, indexes,
// transactions.

#include <gtest/gtest.h>

#include "mpros/db/database.hpp"

namespace mpros::db {
namespace {

TableSchema people_schema() {
  return TableSchema{"people",
                     {ColumnDef{"id", ValueType::Integer, false},
                      ColumnDef{"name", ValueType::Text, false},
                      ColumnDef{"age", ValueType::Integer, true},
                      ColumnDef{"score", ValueType::Real, true}}};
}

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_EQ(Value().type(), ValueType::Null);
  EXPECT_EQ(Value(std::int64_t{5}).as_integer(), 5);
  EXPECT_DOUBLE_EQ(Value(2.5).as_real(), 2.5);
  EXPECT_EQ(Value("hi").as_text(), "hi");
  EXPECT_DOUBLE_EQ(Value(std::int64_t{3}).numeric(), 3.0);
}

TEST(ValueTest, OrderingAcrossTypes) {
  EXPECT_TRUE(Value().less(Value(std::int64_t{1})));
  EXPECT_TRUE(Value(std::int64_t{1}).less(Value(2.5)));
  EXPECT_TRUE(Value(2.5).less(Value("a")));
  EXPECT_FALSE(Value("b").less(Value("a")));
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value().to_string(), "NULL");
  EXPECT_EQ(Value(std::int64_t{42}).to_string(), "42");
  EXPECT_EQ(Value("x").to_string(), "x");
}

TEST(TableTest, InsertFindErase) {
  Table t(people_schema());
  t.insert({Value(std::int64_t{1}), Value("alice"), Value(std::int64_t{30}),
            Value(0.9)});
  EXPECT_EQ(t.row_count(), 1u);
  const Row* row = t.find(1);
  ASSERT_NE(row, nullptr);
  EXPECT_EQ((*row)[1].as_text(), "alice");
  EXPECT_TRUE(t.erase(1));
  EXPECT_FALSE(t.erase(1));
  EXPECT_EQ(t.find(1), nullptr);
}

TEST(TableTest, InsertAutoAssignsSequentialKeys) {
  Table t(people_schema());
  const auto k1 = t.insert_auto({Value("a"), Value(), Value()});
  const auto k2 = t.insert_auto({Value("b"), Value(), Value()});
  EXPECT_EQ(k2, k1 + 1);
  // Explicit high key bumps the sequence.
  t.insert({Value(std::int64_t{100}), Value("c"), Value(), Value()});
  EXPECT_EQ(t.insert_auto({Value("d"), Value(), Value()}), 101);
}

TEST(TableTest, NullableAndTypeChecksAcceptIntegerIntoReal) {
  Table t(people_schema());
  // Integer into REAL column is allowed (numeric coercion).
  t.insert({Value(std::int64_t{1}), Value("a"), Value(),
            Value(std::int64_t{7})});
  EXPECT_EQ(t.row_count(), 1u);
}

TEST(TableTest, UpdateChangesValueAndIndexes) {
  Table t(people_schema());
  t.create_index("name");
  t.insert_auto({Value("old"), Value(), Value()});
  EXPECT_TRUE(t.update(1, "name", Value("new")));
  EXPECT_EQ(t.lookup("name", Value("old")).size(), 0u);
  EXPECT_EQ(t.lookup("name", Value("new")).size(), 1u);
  EXPECT_FALSE(t.update(99, "name", Value("zz")));
}

TEST(TableTest, SelectWithPredicate) {
  Table t(people_schema());
  for (int i = 0; i < 10; ++i) {
    t.insert_auto({Value("p" + std::to_string(i)),
                   Value(std::int64_t{20 + i}), Value()});
  }
  const auto old_enough = t.select(
      [](const Row& r) { return r[2].as_integer() >= 25; });
  EXPECT_EQ(old_enough.size(), 5u);
  EXPECT_EQ(t.select().size(), 10u);
}

TEST(TableTest, IndexEqualityAndRange) {
  Table t(people_schema());
  t.create_index("age");
  for (int i = 0; i < 20; ++i) {
    t.insert_auto({Value("p"), Value(std::int64_t{i % 5}), Value()});
  }
  EXPECT_EQ(t.lookup("age", Value(std::int64_t{3})).size(), 4u);
  EXPECT_EQ(t.lookup_range("age", Value(std::int64_t{1}),
                           Value(std::int64_t{2}))
                .size(),
            8u);
}

TEST(TableTest, IndexBuiltOverExistingRows) {
  Table t(people_schema());
  t.insert_auto({Value("x"), Value(std::int64_t{1}), Value()});
  t.insert_auto({Value("y"), Value(std::int64_t{1}), Value()});
  t.create_index("age");
  EXPECT_EQ(t.lookup("age", Value(std::int64_t{1})).size(), 2u);
}

TEST(TableTest, EraseRemovesFromIndex) {
  Table t(people_schema());
  t.create_index("age");
  const auto k = t.insert_auto({Value("x"), Value(std::int64_t{9}), Value()});
  t.erase(k);
  EXPECT_TRUE(t.lookup("age", Value(std::int64_t{9})).empty());
}

TEST(DatabaseTest, CreateAndDropTables) {
  Database db;
  db.create_table(people_schema());
  EXPECT_TRUE(db.has_table("people"));
  EXPECT_EQ(db.table_names().size(), 1u);
  db.drop_table("people");
  EXPECT_FALSE(db.has_table("people"));
}

TEST(DatabaseTest, TransactionCommitKeepsChanges) {
  Database db;
  db.create_table(people_schema());
  db.begin();
  db.insert_auto("people", {Value("a"), Value(), Value()});
  db.commit();
  EXPECT_EQ(db.table("people").row_count(), 1u);
}

TEST(DatabaseTest, TransactionRollbackUndoesInsertUpdateErase) {
  Database db;
  db.create_table(people_schema());
  const auto keep = db.insert_auto(
      "people", {Value("keep"), Value(std::int64_t{1}), Value()});
  const auto gone = db.insert_auto(
      "people", {Value("gone"), Value(std::int64_t{2}), Value()});

  db.begin();
  db.insert_auto("people", {Value("temp"), Value(), Value()});
  db.update("people", keep, "name", Value("mutated"));
  db.erase("people", gone);
  EXPECT_EQ(db.table("people").row_count(), 2u);
  db.rollback();

  EXPECT_EQ(db.table("people").row_count(), 2u);
  EXPECT_EQ((*db.table("people").find(keep))[1].as_text(), "keep");
  ASSERT_NE(db.table("people").find(gone), nullptr);
  EXPECT_EQ((*db.table("people").find(gone))[1].as_text(), "gone");
}

TEST(DatabaseTest, RollbackRestoresMultipleUpdatesInOrder) {
  Database db;
  db.create_table(people_schema());
  const auto k = db.insert_auto(
      "people", {Value("v0"), Value(), Value()});
  db.begin();
  db.update("people", k, "name", Value("v1"));
  db.update("people", k, "name", Value("v2"));
  db.rollback();
  EXPECT_EQ((*db.table("people").find(k))[1].as_text(), "v0");
}

TEST(DatabaseTest, OperationsOutsideTransactionAreImmediate) {
  Database db;
  db.create_table(people_schema());
  db.insert_auto("people", {Value("x"), Value(), Value()});
  EXPECT_FALSE(db.in_transaction());
  EXPECT_EQ(db.table("people").row_count(), 1u);
}

}  // namespace
}  // namespace mpros::db
