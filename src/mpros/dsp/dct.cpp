#include "mpros/dsp/dct.hpp"

#include <cmath>

#include "mpros/common/assert.hpp"
#include "mpros/common/units.hpp"

namespace mpros::dsp {

std::vector<double> dct2(std::span<const double> x) {
  return dct2_truncated(x, x.size());
}

std::vector<double> dct2_truncated(std::span<const double> x, std::size_t k) {
  MPROS_EXPECTS(!x.empty());
  MPROS_EXPECTS(k <= x.size());
  const std::size_t n = x.size();
  const double norm0 = std::sqrt(1.0 / static_cast<double>(n));
  const double norm = std::sqrt(2.0 / static_cast<double>(n));

  std::vector<double> c(k);
  for (std::size_t m = 0; m < k; ++m) {
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      sum += x[i] * std::cos(kPi * (static_cast<double>(i) + 0.5) *
                             static_cast<double>(m) / static_cast<double>(n));
    }
    c[m] = sum * (m == 0 ? norm0 : norm);
  }
  return c;
}

std::vector<double> idct2(std::span<const double> c) {
  MPROS_EXPECTS(!c.empty());
  const std::size_t n = c.size();
  const double norm0 = std::sqrt(1.0 / static_cast<double>(n));
  const double norm = std::sqrt(2.0 / static_cast<double>(n));

  std::vector<double> x(n);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = c[0] * norm0;
    for (std::size_t m = 1; m < n; ++m) {
      sum += c[m] * norm *
             std::cos(kPi * (static_cast<double>(i) + 0.5) *
                      static_cast<double>(m) / static_cast<double>(n));
    }
    x[i] = sum;
  }
  return x;
}

}  // namespace mpros::dsp
