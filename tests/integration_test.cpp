// End-to-end MPROS tests over the assembled ShipSystem: Fig 1 dataflow,
// disorder robustness (E9 substrate), fleet behaviour.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "mpros/mpros/mpros.hpp"
#include "mpros/telemetry/metrics.hpp"

namespace mpros {
namespace {

using domain::FailureMode;

ShipSystemConfig small_config() {
  ShipSystemConfig cfg;
  cfg.plant_count = 2;
  cfg.dc_template.vibration_period = SimTime::from_seconds(600);
  cfg.dc_template.process_period = SimTime::from_seconds(60);
  cfg.worker_threads = 2;
  return cfg;
}

TEST(ShipSystemTest, AssemblesTopology) {
  ShipSystem ship(small_config());
  EXPECT_EQ(ship.plant_count(), 2u);
  EXPECT_GT(ship.model().object_count(), 20u);
  EXPECT_EQ(ship.model().name(ship.plant_objects(0).motor),
            "A/C Compressor Motor 1");
}

TEST(ShipSystemTest, WarnsWhenHeartbeatIntervalConflictsWithDcPeriod) {
  // ShipSystem overrides pdme.heartbeat_interval with the DC template's
  // heartbeat_period (the watchdog must match the beat cadence). That used
  // to be silent; a caller who tuned the watchdog deserves to hear that
  // their value lost.
  auto& warnings =
      telemetry::Registry::instance().counter("mpros.log_warnings");

  ShipSystemConfig cfg = small_config();
  cfg.pdme.heartbeat_interval = SimTime::from_seconds(5.0);  // conflicts
  const std::uint64_t before = warnings.value();
  ShipSystem ship(cfg);
  EXPECT_GT(warnings.value(), before);

  // No warning when the caller left the default or matched the DC period.
  const std::uint64_t mid = warnings.value();
  ShipSystem untouched(small_config());
  ShipSystemConfig matched = small_config();
  matched.pdme.heartbeat_interval = matched.dc_template.heartbeat_period;
  ShipSystem agreeing(matched);
  EXPECT_EQ(warnings.value(), mid);
}

TEST(ShipSystemTest, HealthyFleetProducesFewReports) {
  ShipSystem ship(small_config());
  ship.run_until(SimTime::from_hours(1.0));
  EXPECT_LE(ship.pdme().stats().reports_accepted, 4u);
}

TEST(ShipSystemTest, FaultFlowsEndToEnd) {
  ShipSystem ship(small_config());
  ship.chiller(0).faults().schedule({FailureMode::MotorImbalance, SimTime(0),
                                     SimTime(0), 0.9,
                                     plant::GrowthProfile::Step});
  ship.run_until(SimTime::from_hours(1.0));

  const ObjectId motor = ship.plant_objects(0).motor;
  const auto list = ship.pdme().prioritized_list(motor);
  ASSERT_FALSE(list.empty());
  EXPECT_EQ(list.front().mode, FailureMode::MotorImbalance);
  EXPECT_GT(list.front().fused_belief, 0.8);  // reinforced over repeats

  // The unfaulted plant stays clean.
  EXPECT_TRUE(
      ship.pdme().prioritized_list(ship.plant_objects(1).motor).empty());
}

TEST(ShipSystemTest, ShardedPdmeReachesSameConclusionEndToEnd) {
  // E18: the full Fig 1 dataflow with fusion fanned out across 4 workers.
  // advance_to() drains the shards every step, so queries behave exactly
  // like the inline executive's.
  ShipSystemConfig cfg = small_config();
  cfg.pdme.shard_count = 4;
  ShipSystem ship(cfg);
  ship.chiller(0).faults().schedule({FailureMode::MotorImbalance, SimTime(0),
                                     SimTime(0), 0.9,
                                     plant::GrowthProfile::Step});
  ship.run_until(SimTime::from_hours(1.0));

  const auto list = ship.pdme().prioritized_list(ship.plant_objects(0).motor);
  ASSERT_FALSE(list.empty());
  EXPECT_EQ(list.front().mode, FailureMode::MotorImbalance);
  EXPECT_GT(list.front().fused_belief, 0.8);
  EXPECT_TRUE(
      ship.pdme().prioritized_list(ship.plant_objects(1).motor).empty());
  EXPECT_EQ(ship.pdme().stats().queue_full, 0u);  // default Block policy
}

TEST(ShipSystemTest, MultipleSimultaneousFaultsAcrossGroups) {
  // §5.3: "there can, in fact, be several failures at one time".
  ShipSystem ship(small_config());
  ship.chiller(0).faults().schedule({FailureMode::MotorImbalance, SimTime(0),
                                     SimTime(0), 0.9,
                                     plant::GrowthProfile::Step});
  ship.chiller(0).faults().schedule({FailureMode::RefrigerantLeak, SimTime(0),
                                     SimTime(0), 1.0,
                                     plant::GrowthProfile::Step});
  ship.run_until(SimTime::from_hours(1.0));

  const auto motor_list =
      ship.pdme().prioritized_list(ship.plant_objects(0).motor);
  const auto chiller_list =
      ship.pdme().prioritized_list(ship.plant_objects(0).chiller);
  ASSERT_FALSE(motor_list.empty());
  ASSERT_FALSE(chiller_list.empty());
  EXPECT_EQ(motor_list.front().mode, FailureMode::MotorImbalance);
  EXPECT_EQ(chiller_list.front().mode, FailureMode::RefrigerantLeak);
}

TEST(ShipSystemTest, ProgressiveFaultEscalatesSeverity) {
  ShipSystem ship(small_config());
  ship.chiller(0).faults().schedule({FailureMode::MotorImbalance, SimTime(0),
                                     SimTime::from_hours(3.0), 0.9,
                                     plant::GrowthProfile::Linear});
  const ObjectId motor = ship.plant_objects(0).motor;

  ship.run_until(SimTime::from_hours(1.0));
  const auto early = ship.pdme().prioritized_list(motor);
  const double early_sev = early.empty() ? 0.0 : early.front().max_severity;

  ship.run_until(SimTime::from_hours(3.0));
  const auto late = ship.pdme().prioritized_list(motor);
  ASSERT_FALSE(late.empty());
  EXPECT_GT(late.front().max_severity, early_sev);
  EXPECT_EQ(late.front().mode, FailureMode::MotorImbalance);
}

TEST(ShipSystemTest, NetworkStatsAccumulate) {
  ShipSystem ship(small_config());
  ship.chiller(0).faults().schedule({FailureMode::MotorImbalance, SimTime(0),
                                     SimTime(0), 0.9,
                                     plant::GrowthProfile::Step});
  ship.run_until(SimTime::from_hours(1.0));
  const auto stats = ship.fleet_stats();
  EXPECT_GT(stats.samples_processed, 100000u);
  EXPECT_GT(stats.reports_emitted, 0u);
  // Sent datagrams = failure reports + sensor-data batches.
  EXPECT_GE(stats.network.sent, stats.reports_emitted);
  // Every delivered datagram lands in exactly one bucket: fused reports,
  // sensor batches, dedup/malformed drops, liveness heartbeats into the
  // PDME, or cumulative acks back out to the DCs (lossless transport here,
  // so every ack sent is an ack delivered).
  EXPECT_EQ(stats.reports_fused,
            stats.network.delivered - ship.pdme().stats().sensor_batches -
                ship.pdme().stats().duplicates_dropped -
                ship.pdme().stats().malformed_dropped -
                ship.pdme().stats().heartbeats_received -
                ship.pdme().stats().acks_sent);
  // The deprecated stats() shim stays pinned to the canonical snapshot().
  EXPECT_TRUE(ship.pdme().stats() == ship.pdme().snapshot());
}

TEST(DisorderTest, LossyJitteryNetworkStillConverges) {
  // E9: the transport drops, delays and duplicates; fused conclusions must
  // still identify the fault (dedup absorbs duplicates, D-S commutativity
  // absorbs reordering, repetition absorbs loss).
  ShipSystemConfig cfg = small_config();
  cfg.network.drop_probability = 0.25;
  cfg.network.duplicate_probability = 0.35;
  cfg.network.jitter = SimTime::from_seconds(30.0);
  cfg.dc_template.vibration_period = SimTime::from_seconds(300);
  ShipSystem ship(cfg);
  ship.chiller(0).faults().schedule({FailureMode::MotorImbalance, SimTime(0),
                                     SimTime(0), 0.9,
                                     plant::GrowthProfile::Step});
  ship.run_until(SimTime::from_hours(2.0));

  const auto list =
      ship.pdme().prioritized_list(ship.plant_objects(0).motor);
  ASSERT_FALSE(list.empty());
  EXPECT_EQ(list.front().mode, FailureMode::MotorImbalance);
  EXPECT_GT(list.front().fused_belief, 0.8);
  EXPECT_GT(ship.network().stats().dropped, 0u);
  EXPECT_GT(ship.network().stats().duplicated, 0u);
}

TEST(DisorderTest, OrderInvarianceOfFusedState) {
  // Same report set, two delivery orders -> identical fused beliefs.
  oosm::ObjectModel model1, model2;
  const auto ship1 = oosm::build_ship(model1, "a", 1, 1);
  const auto ship2 = oosm::build_ship(model2, "b", 1, 1);
  pdme::PdmeExecutive p1(model1), p2(model2);

  std::vector<net::FailureReport> reports;
  for (int i = 0; i < 6; ++i) {
    net::FailureReport r;
    r.dc = DcId(1);
    r.knowledge_source = KnowledgeSourceId(1 + i % 4);
    r.sensed_object = ship1.plants[0].motor;
    r.machine_condition = domain::condition_id(
        i % 2 == 0 ? FailureMode::MotorImbalance
                   : FailureMode::ShaftMisalignment);
    r.severity = 0.5;
    r.belief = 0.55;
    r.timestamp = SimTime::from_seconds(100.0 * i);
    reports.push_back(r);
  }

  for (const auto& r : reports) p1.accept(r);
  for (auto it = reports.rbegin(); it != reports.rend(); ++it) {
    auto r = *it;
    r.sensed_object = ship2.plants[0].motor;
    p2.accept(r);
  }

  const auto s1 = p1.group_state(ship1.plants[0].motor,
                                 domain::LogicalGroup::RotorDynamics);
  const auto s2 = p2.group_state(ship2.plants[0].motor,
                                 domain::LogicalGroup::RotorDynamics);
  for (std::size_t i = 0; i < s1.modes.size(); ++i) {
    EXPECT_NEAR(s1.modes[i].belief, s2.modes[i].belief, 1e-9);
  }
  EXPECT_NEAR(s1.unknown, s2.unknown, 1e-9);
}

TEST(LoadGatingTest, LoosenessSuppressedAtLowLoadEndToEnd) {
  // §6.1's flagship example, end to end: "a false positive bearing
  // looseness call is not made when the compressor enters a low load
  // period of operation." Same fault, two operating points.
  const auto run_at_load = [](double load) {
    ShipSystemConfig cfg;
    cfg.plant_count = 1;
    cfg.initial_load = load;
    cfg.dc_template.vibration_period = SimTime::from_seconds(600);
    ShipSystem ship(cfg);
    ship.chiller(0).faults().schedule(
        {FailureMode::BearingHousingLooseness, SimTime(0), SimTime(0), 0.9,
         plant::GrowthProfile::Step});
    ship.run_until(SimTime::from_hours(1.0));
    for (const auto& item :
         ship.pdme().prioritized_list(ship.plant_objects(0).compressor)) {
      if (item.mode == FailureMode::BearingHousingLooseness) return true;
    }
    return false;
  };

  EXPECT_FALSE(run_at_load(0.10));  // unloaded: rattling is normal
  EXPECT_TRUE(run_at_load(0.85));   // loaded: the call is made
}

TEST(FleetAnalyzerIntegrationTest, ResidentAnalyzerClosesTheLoop) {
  // §5.7 end to end: DCs publish telemetry, the PDME-resident analyzer
  // compares sisters and flags the fouling plant without any DC-side call.
  ShipSystemConfig cfg;
  cfg.plant_count = 4;
  cfg.enable_fleet_analyzer = true;
  cfg.dc_template.enable_fuzzy = false;  // leave the call to the resident
  cfg.dc_template.enable_sbfr = false;
  cfg.dc_template.enable_dli = false;
  cfg.dc_template.sensor_publish_every = 2;
  ShipSystem ship(cfg);
  ship.chiller(2).faults().schedule({FailureMode::CondenserFouling,
                                     SimTime(0), SimTime(0), 1.0,
                                     plant::GrowthProfile::Step});
  ship.run_until(SimTime::from_hours(1.0));

  ASSERT_NE(ship.fleet_analyzer(), nullptr);
  EXPECT_GT(ship.fleet_analyzer()->stats().reports_issued, 0u);
  const auto list =
      ship.pdme().prioritized_list(ship.plant_objects(2).chiller);
  ASSERT_FALSE(list.empty());
  EXPECT_EQ(list.front().mode, FailureMode::CondenserFouling);
  // Healthy sisters stay clean.
  EXPECT_TRUE(
      ship.pdme().prioritized_list(ship.plant_objects(0).chiller).empty());
}

TEST(StartupScenarioTest, LoadRampFollowsSchedule) {
  // §3.3 milestone: "simulation of Carrier Chiller startup" — the plant
  // ramps from idle to full load along scheduled setpoints.
  plant::ChillerConfig cfg;
  cfg.load_fraction = 0.05;
  plant::ChillerSimulator chiller(cfg);
  chiller.schedule_load(SimTime::from_seconds(600), 0.05);
  chiller.schedule_load(SimTime::from_seconds(1800), 0.85);

  chiller.advance(SimTime::from_seconds(300));
  EXPECT_NEAR(chiller.load(), 0.05, 1e-9);       // before the ramp
  chiller.advance(SimTime::from_seconds(900));   // t = 1200: halfway up
  EXPECT_NEAR(chiller.load(), 0.45, 1e-9);
  chiller.advance(SimTime::from_seconds(1200));  // t = 2400: past the end
  EXPECT_NEAR(chiller.load(), 0.85, 1e-9);
}

TEST(StartupScenarioTest, GatedRulesQuietDuringStartupEndToEnd) {
  // The looseness fault is present from t=0, but the plant starts unloaded
  // and ramps up over the first hour: no call during startup, call after.
  ShipSystemConfig cfg;
  cfg.plant_count = 1;
  cfg.initial_load = 0.05;
  cfg.dc_template.vibration_period = SimTime::from_seconds(600);
  ShipSystem ship(cfg);
  ship.chiller(0).faults().schedule(
      {FailureMode::BearingHousingLooseness, SimTime(0), SimTime(0), 0.9,
       plant::GrowthProfile::Step});
  ship.chiller(0).schedule_load(SimTime::from_hours(1.0), 0.05);
  ship.chiller(0).schedule_load(SimTime::from_hours(1.5), 0.9);

  const ObjectId compressor = ship.plant_objects(0).compressor;
  ship.run_until(SimTime::from_hours(1.0));
  for (const auto& item : ship.pdme().prioritized_list(compressor)) {
    EXPECT_NE(item.mode, FailureMode::BearingHousingLooseness)
        << "false positive during startup";
  }

  ship.run_until(SimTime::from_hours(3.0));
  bool called = false;
  for (const auto& item : ship.pdme().prioritized_list(compressor)) {
    if (item.mode == FailureMode::BearingHousingLooseness) called = true;
  }
  EXPECT_TRUE(called);
}

TEST(BelievabilityLoopTest, ReversalsLowerFutureReportBeliefs) {
  // §6.1: believability factors track "how often each [diagnosis] was
  // reversed or modified by a human analyst". Reverse the imbalance call
  // repeatedly and the DC's subsequent reports carry less belief.
  ShipSystemConfig cfg;
  cfg.plant_count = 1;
  cfg.dc_template.vibration_period = SimTime::from_seconds(600);
  ShipSystem ship(cfg);
  ship.chiller(0).faults().schedule({FailureMode::MotorImbalance, SimTime(0),
                                     SimTime(0), 0.9,
                                     plant::GrowthProfile::Step});
  ship.run_until(SimTime::from_hours(0.5));

  const ObjectId motor = ship.plant_objects(0).motor;
  const auto before = ship.pdme().reports_for(motor);
  ASSERT_FALSE(before.empty());
  const double belief_before = before.front().belief;

  // The analyst reverses the call ten times across overhauls.
  for (int i = 0; i < 10; ++i) {
    ship.record_maintenance_outcome(0, FailureMode::MotorImbalance,
                                    /*confirmed=*/false);
  }
  // Post-maintenance reset wiped the fused state.
  EXPECT_TRUE(ship.pdme().prioritized_list(motor).empty());

  ship.run_until(SimTime::from_hours(1.0));
  const auto after = ship.pdme().reports_for(motor);
  ASSERT_FALSE(after.empty());
  EXPECT_LT(after.front().belief, belief_before - 0.15);
}

TEST(OosmPersistenceIntegrationTest, ShipSurvivesSaveLoad) {
  ShipSystem ship(small_config());
  db::Database db;
  oosm::Persistence::save(ship.model(), db);
  const oosm::ObjectModel restored = oosm::Persistence::load(db);
  EXPECT_EQ(restored.object_count(), ship.model().object_count());
  EXPECT_TRUE(restored.find_by_name("A/C Compressor Motor 1").has_value());
}

TEST(ValidationHarnessTest, DetectsSeededFaultWithLeadTime) {
  ValidationScenario s;
  s.mode = FailureMode::MotorImbalance;
  s.onset = SimTime::from_hours(0.5);
  s.wear_time = SimTime::from_hours(6.0);
  s.seed = 42;
  ValidationConfig cfg;
  cfg.step = SimTime::from_seconds(600);
  cfg.dc.vibration_period = SimTime::from_seconds(600);
  cfg.dc.process_period = SimTime::from_seconds(60);
  const ScenarioScore score = run_scenario(s, cfg);

  EXPECT_TRUE(score.detected);
  ASSERT_TRUE(score.lead_time.has_value());
  // Detected in the first half of the wear life: useful lead time.
  EXPECT_GT(score.lead_time->hours(), 3.0);
  EXPECT_EQ(score.false_alarms, 0u);
}

TEST(ValidationHarnessTest, SummaryAggregatesAcrossModes) {
  ValidationConfig cfg;
  cfg.step = SimTime::from_seconds(600);
  cfg.dc.vibration_period = SimTime::from_seconds(600);
  cfg.dc.process_period = SimTime::from_seconds(60);
  const ValidationScenario scenarios[] = {
      {FailureMode::MotorImbalance, SimTime::from_hours(0.5),
       SimTime::from_hours(4.0), plant::GrowthProfile::Linear, 1},
      {FailureMode::RefrigerantLeak, SimTime::from_hours(0.5),
       SimTime::from_hours(4.0), plant::GrowthProfile::Linear, 2},
  };
  const ValidationSummary summary = run_validation(scenarios, cfg);
  EXPECT_EQ(summary.scores.size(), 2u);
  EXPECT_GT(summary.detection_rate, 0.99);
  EXPECT_GT(summary.mean_lead_fraction, 0.2);
  const std::string table = render(summary);
  EXPECT_NE(table.find("MotorImbalance"), std::string::npos);
  EXPECT_NE(table.find("detection 100%"), std::string::npos);
}

// --- Fault tolerance (E17 substrate) -----------------------------------------

TEST(FaultToleranceTest, PartitionedDcGoesLostThenRecovers) {
  ShipSystemConfig cfg = small_config();
  ShipSystem ship(cfg);
  const DcId dc1(1);

  // Sever dc-1 from the ship's network for 20 minutes.
  ship.network().schedule_outage({"dc-1", SimTime::from_seconds(600),
                                  SimTime::from_seconds(1800), 1.0});

  ship.run_until(SimTime::from_seconds(500));
  EXPECT_EQ(ship.pdme().dc_liveness(dc1), pdme::DcLiveness::Alive);

  // Three missed 60 s heartbeat intervals into the partition: flagged Lost.
  ship.run_until(SimTime::from_seconds(600 + 3 * 60 + 30));
  EXPECT_EQ(ship.pdme().dc_liveness(dc1), pdme::DcLiveness::Lost);
  EXPECT_EQ(ship.pdme().dc_liveness(DcId(2)), pdme::DcLiveness::Alive);
  EXPECT_GT(ship.network().stats().outage_dropped, 0u);

  // The operator page calls the dead space out.
  const std::string summary = pdme::render_summary(ship.pdme(), ship.model());
  EXPECT_NE(summary.find("NO DATA since"), std::string::npos);

  // Heartbeats resume once the partition heals; the space recovers.
  ship.run_until(SimTime::from_seconds(2000));
  EXPECT_EQ(ship.pdme().dc_liveness(dc1), pdme::DcLiveness::Alive);
}

TEST(FaultToleranceTest, RetransmissionsDeliverReportsThroughPartition) {
  ShipSystemConfig cfg = small_config();
  ShipSystem ship(cfg);
  ship.chiller(0).faults().schedule({FailureMode::MotorImbalance, SimTime(0),
                                     SimTime(0), 0.9,
                                     plant::GrowthProfile::Step});
  // The partition swallows the first wave of reports (the imbalance is
  // detected by the first 600 s vibration test); only retransmission can
  // get the conclusion through after the window closes.
  ship.network().schedule_outage({"dc-1", SimTime(0),
                                  SimTime::from_seconds(1200), 1.0});
  ship.run_until(SimTime::from_hours(1.0));

  const auto list = ship.pdme().prioritized_list(ship.plant_objects(0).motor);
  ASSERT_FALSE(list.empty());
  EXPECT_EQ(list.front().mode, FailureMode::MotorImbalance);
  EXPECT_GT(ship.concentrator(0).reliable().stats().retransmits, 0u);
  EXPECT_GT(ship.pdme().stats().envelopes_accepted, 0u);
}

TEST(ChaosSmokeTest, HostileTransportConfiguredFromEnvironment) {
  // CI chaos knobs: MPROS_CHAOS_DROP / MPROS_CHAOS_DUP / MPROS_CHAOS_SEED
  // crank the transport pathologies without a rebuild, MPROS_CHAOS_SHARDS
  // runs the whole flow through the sharded PDME (E18), and
  // MPROS_CHAOS_BATCH toggles sync-window ReportBatch coalescing (E21):
  // "0" forces the legacy one-datagram-per-report flush under the same
  // weather.
  const char* drop = std::getenv("MPROS_CHAOS_DROP");
  const char* dup = std::getenv("MPROS_CHAOS_DUP");
  const char* seed = std::getenv("MPROS_CHAOS_SEED");
  const char* shards = std::getenv("MPROS_CHAOS_SHARDS");
  const char* batch = std::getenv("MPROS_CHAOS_BATCH");

  ShipSystemConfig cfg = small_config();
  cfg.network.drop_probability = drop ? std::atof(drop) : 0.15;
  cfg.network.duplicate_probability = dup ? std::atof(dup) : 0.05;
  cfg.network.jitter = SimTime::from_millis(200.0);
  cfg.network.seed = seed ? std::strtoull(seed, nullptr, 0) : 0xC4405;
  cfg.pdme.shard_count = shards ? std::strtoull(shards, nullptr, 0) : 0;
  if (batch != nullptr) cfg.dc_template.batch_reports = std::atoi(batch) != 0;

  ShipSystem ship(cfg);
  ship.chiller(0).faults().schedule({FailureMode::MotorImbalance, SimTime(0),
                                     SimTime(0), 0.9,
                                     plant::GrowthProfile::Step});
  ship.run_until(SimTime::from_hours(2.0));

  // Reliable delivery must land the conclusion despite the weather, and
  // nothing non-finite may survive into the fused state.
  const auto list = ship.pdme().prioritized_list(ship.plant_objects(0).motor);
  ASSERT_FALSE(list.empty());
  EXPECT_EQ(list.front().mode, FailureMode::MotorImbalance);
  EXPECT_TRUE(std::isfinite(list.front().fused_belief));
  EXPECT_EQ(ship.pdme().stats().malformed_dropped, 0u);
}

// --- Supervised wedge recovery (E20) -----------------------------------------

/// Everything the OOSM/browser layer shows an operator, concatenated.
std::string browser_fingerprint(ShipSystem& ship) {
  std::string out = pdme::render_summary(ship.pdme(), ship.model());
  for (std::size_t p = 0; p < ship.plant_count(); ++p) {
    out += pdme::render_machine(ship.pdme(), ship.model(),
                                ship.plant_objects(p).motor);
  }
  out += pdme::export_icas_csv(ship.pdme(), ship.model());
  return out;
}

TEST(SupervisorRecoveryTest, WedgeRecoveryIsByteIdenticalToUnwedgedRun) {
  // Two identically-seeded ships run the identical fault script under an
  // identical hard outage isolating dc-1 over [3600 s, 4500 s]. Ship B
  // additionally wedges DC 0 at 3600 s; the supervisor notices the frozen
  // progress tick (wedge_timeout 300 s -> fires at 3900 s), rebuilds the DC
  // from its salvage and catches it up through the recorded step grid. The
  // outage covers the wedge through recovery, so both runs drop exactly the
  // same datagrams — any divergence in the operator view could only come
  // from the recovery itself.
  const auto make_config = [] {
    ShipSystemConfig cfg = small_config();
    cfg.seed = 0x5EED;
    return cfg;
  };
  const auto script = [](ShipSystem& ship) {
    ship.chiller(0).faults().schedule({FailureMode::MotorImbalance,
                                       SimTime::from_seconds(720),
                                       SimTime::from_hours(1.0), 0.9,
                                       plant::GrowthProfile::Linear});
    ship.chiller(1).faults().schedule({FailureMode::RefrigerantLeak,
                                       SimTime::from_seconds(1500),
                                       SimTime::from_hours(1.0), 0.8,
                                       plant::GrowthProfile::Linear});
    ship.network().schedule_outage({"dc-1", SimTime::from_seconds(3600),
                                    SimTime::from_seconds(4500), 1.0});
  };

  ShipSystem unwedged(make_config());
  ShipSystem wedged(make_config());
  script(unwedged);
  script(wedged);

  // A pre-wedge runtime reconfiguration: it must still govern the
  // recovered DC after the restart.
  unwedged.run_until(SimTime::from_seconds(1800));
  wedged.run_until(SimTime::from_seconds(1800));
  const std::uint64_t rev_a = unwedged.command_dc(
      0, {{"validator.spike_sigmas", 7.0}, {"dc.report_hysteresis", 0.08}},
      "pre-wedge tuning");
  const std::uint64_t rev_b = wedged.command_dc(
      0, {{"validator.spike_sigmas", 7.0}, {"dc.report_hysteresis", 0.08}},
      "pre-wedge tuning");
  ASSERT_EQ(rev_a, rev_b);

  unwedged.run_until(SimTime::from_seconds(3600));
  wedged.run_until(SimTime::from_seconds(3600));
  ASSERT_EQ(wedged.concentrator(0).config_revision(), rev_b);
  const std::uint64_t progress_before = wedged.concentrator(0).progress();
  wedged.wedge_dc(0);

  unwedged.run_until(SimTime::from_hours(2.5));
  wedged.run_until(SimTime::from_hours(2.5));

  // The supervisor fired exactly once, and only on ship B.
  ASSERT_NE(wedged.supervisor(), nullptr);
  EXPECT_EQ(wedged.supervisor()->stats().wedges_detected, 1u);
  EXPECT_EQ(wedged.supervisor()->stats().restarts, 1u);
  EXPECT_EQ(unwedged.supervisor()->stats().restarts, 0u);
  EXPECT_FALSE(wedged.concentrator(0).wedged());
  EXPECT_GT(wedged.concentrator(0).progress(), progress_before);

  // The acceptance property: byte-identical OOSM/browser output.
  EXPECT_EQ(browser_fingerprint(unwedged), browser_fingerprint(wedged));

  // And identical fused-pipeline accounting underneath it.
  const auto sa = unwedged.pdme().stats();
  const auto sb = wedged.pdme().stats();
  EXPECT_EQ(sa.reports_accepted, sb.reports_accepted);
  EXPECT_EQ(sa.envelopes_accepted, sb.envelopes_accepted);
  EXPECT_EQ(sa.heartbeats_received, sb.heartbeats_received);

  // The runtime config survived the restart: persisted through the DC
  // database, re-applied from the salvage, values intact.
  EXPECT_EQ(wedged.concentrator(0).config_revision(), rev_b);
  EXPECT_EQ(wedged.concentrator(0).runtime_setting("validator.spike_sigmas"),
            7.0);
  EXPECT_EQ(wedged.concentrator(0).runtime_setting("dc.report_hysteresis"),
            0.08);
}

TEST(SupervisorRecoveryTest, ManualRestartPreservesStreamAndConfig) {
  // restart_dc() is the operator's (and the soak harness's) direct handle
  // on the salvage/rebuild path: no wedge, no silence window — the DC is
  // torn down mid-run and must resume its reliable stream mid-sequence
  // with its commanded configuration intact.
  ShipSystem ship(small_config());
  ship.chiller(0).faults().schedule({FailureMode::MotorImbalance, SimTime(0),
                                     SimTime(0), 0.9,
                                     plant::GrowthProfile::Step});
  ship.run_until(SimTime::from_seconds(1200));
  const std::uint64_t rev =
      ship.command_dc(0, {{"dc.wnn_report_threshold", 0.6}}, "ops tune");
  ship.run_until(SimTime::from_seconds(1800));
  const std::uint64_t seq_before =
      ship.concentrator(0).reliable().last_sequence();
  ASSERT_GT(seq_before, 0u);

  ship.restart_dc(0);
  EXPECT_EQ(ship.concentrator(0).config_revision(), rev);
  EXPECT_EQ(ship.concentrator(0).runtime_setting("dc.wnn_report_threshold"),
            0.6);
  // The reliable stream resumed mid-sequence instead of restarting at 1.
  EXPECT_GE(ship.concentrator(0).reliable().last_sequence(), seq_before);

  ship.run_until(SimTime::from_hours(1.0));
  const auto list = ship.pdme().prioritized_list(ship.plant_objects(0).motor);
  ASSERT_FALSE(list.empty());
  EXPECT_EQ(list.front().mode, FailureMode::MotorImbalance);
  EXPECT_GT(ship.concentrator(0).reliable().last_sequence(), seq_before);
}

}  // namespace
}  // namespace mpros
