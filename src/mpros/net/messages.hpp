#pragma once
// Message envelopes for the ship's network.
//
// Beyond failure-prediction reports (§7), the MPROS interfaces carry two
// more flows the paper describes:
//  - raw sensor data outward ("open interfaces to provide machinery
//    condition and raw sensor data to other shipboard systems", §1) and to
//    PDME-resident algorithms that need "data from widely separate parts
//    of the ship" (§5.7);
//  - commands inward ("the PDME or any other client can command the
//    scheduler to conduct another test and analysis routine", §5.8).
//
// Every datagram starts with a one-byte MessageType so endpoints dispatch
// without guessing.

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "mpros/common/clock.hpp"
#include "mpros/common/ids.hpp"
#include "mpros/net/report.hpp"

namespace mpros::net {

enum class MessageType : std::uint8_t {
  FailureReportMsg = 1,
  SensorData = 2,
  TestCommand = 3,
  ReportEnvelopeMsg = 4,
  Ack = 5,
  Heartbeat = 6,
  /// Ship-to-shore fleet summary envelope (fleet_summary.hpp). Acked and
  /// heartbeat-advertised with the Ack/Heartbeat types above, the DcId
  /// field carrying the per-hull stream id.
  FleetSummaryEnvelopeMsg = 7,
  /// Bare runtime-reconfiguration command (CommandMessage): the shore
  /// downlink hop, fire-and-forget — the hull's PDME re-seals it in the
  /// target DC's reliable command stream.
  Command = 8,
  /// Sequenced runtime-reconfiguration command on a DC's reliable command
  /// stream (PDME -> DC), acked with the Ack type above.
  CommandEnvelopeMsg = 9,
  /// Bare report batch (versioned body: one DC's reports for one sync
  /// window, back to back). The unreliable sibling of
  /// ReportBatchEnvelopeMsg, mirroring FailureReportMsg vs
  /// ReportEnvelopeMsg.
  ReportBatchMsg = 10,
  /// Sequenced report batch on a DC's reliable report stream: ONE sequence
  /// number covers the whole window, so acks, gap detection, and
  /// retransmission move batches instead of single reports.
  ReportBatchEnvelopeMsg = 11,
};

[[nodiscard]] const char* to_string(MessageType t);

/// A batch of named process-variable samples for one machine.
struct SensorDataMessage {
  DcId dc;
  ObjectId machine;
  SimTime timestamp;
  std::vector<std::pair<std::string, double>> values;

  friend bool operator==(const SensorDataMessage&,
                         const SensorDataMessage&) = default;
};

/// A sequence-numbered failure-report envelope: the unit of reliable
/// delivery. Sequences are per-DC and start at 1; the PDME detects stream
/// gaps from them and acknowledges cumulatively.
struct ReportEnvelope {
  DcId dc;
  std::uint64_t sequence = 0;
  FailureReport report;

  friend bool operator==(const ReportEnvelope&,
                         const ReportEnvelope&) = default;
};

/// Cumulative acknowledgement from the PDME back to one DC: every envelope
/// with sequence <= `cumulative` has been applied (or deduplicated).
struct AckMessage {
  DcId dc;                       ///< the DC whose report stream is acked
  std::uint64_t cumulative = 0;

  friend bool operator==(const AckMessage&, const AckMessage&) = default;
};

/// Periodic DC liveness beacon. `last_sequence` advertises the newest
/// report sequence the DC has sent, so the PDME can spot tail loss (a gap
/// with no later report to reveal it).
struct HeartbeatMessage {
  DcId dc;
  SimTime timestamp;
  std::uint64_t last_sequence = 0;

  friend bool operator==(const HeartbeatMessage&,
                         const HeartbeatMessage&) = default;
};

/// A runtime-reconfiguration command for one DC (the control plane): a
/// batch of well-known dotted settings keys with their new values (analyzer
/// toggles use 0/1). The DC validates each setting independently, applies
/// the valid ones, and persists them in its database so a restarted DC
/// comes back with its last-acked configuration.
///
/// `revision` orders commands per target: the DC applies a command only
/// when its revision is newer than the last applied one, so disordered or
/// retransmitted delivery converges on the newest command. Revision 0 is
/// unordered (always applied) for ad-hoc senders.
struct CommandMessage {
  DcId target;
  std::uint64_t revision = 0;
  SimTime issued_at;
  std::vector<std::pair<std::string, double>> settings;
  std::string reason;  ///< free text for the DC's test log

  friend bool operator==(const CommandMessage&,
                         const CommandMessage&) = default;
};

/// The unit of reliable command delivery: a per-DC command-stream sequence
/// (assigned by the PDME's per-DC ReliableSender, starting at 1) plus the
/// command. The DC acks cumulatively with AckMessage, exactly like the
/// report stream in the other direction.
struct CommandEnvelope {
  DcId dc;
  std::uint64_t sequence = 0;
  CommandMessage command;

  friend bool operator==(const CommandEnvelope&,
                         const CommandEnvelope&) = default;
};

/// Versioned CommandMessage body encoding (magic + version, like the fleet
/// summary codec).
[[nodiscard]] std::vector<std::uint8_t> serialize(const CommandMessage& m);

/// Fail-soft body decode for untrusted bytes: nullopt on bad magic/version,
/// truncation, corrupted counts, or trailing garbage — never aborts.
[[nodiscard]] std::optional<CommandMessage> try_deserialize_command(
    std::span<const std::uint8_t> bytes);

/// A command to a Data Concentrator's scheduler.
struct TestCommandMessage {
  enum class Command : std::uint8_t { VibrationTest = 1 };

  DcId target;
  Command command = Command::VibrationTest;
  std::string reason;  ///< free text for the DC's test log

  friend bool operator==(const TestCommandMessage&,
                         const TestCommandMessage&) = default;
};

/// Type tag of a wire datagram (aborts on empty payloads).
[[nodiscard]] MessageType peek_type(std::span<const std::uint8_t> bytes);

/// Fail-soft peek: nullopt on empty payloads or unknown type bytes.
[[nodiscard]] std::optional<MessageType> try_peek_type(
    std::span<const std::uint8_t> bytes);

/// Header of a decoded report batch (or of a single-report datagram viewed
/// as a one-element batch): where the reports came from and how many landed
/// in the arena's prefix.
struct ReportBatchView {
  DcId dc;
  std::uint64_t sequence = 0;  ///< 0 = unsequenced (bare wire forms)
  std::size_t count = 0;       ///< decoded elements at the arena's front
};

/// Unified fail-soft decoder for every report-carrying wire form
/// (FailureReportMsg, ReportEnvelopeMsg, ReportBatchMsg,
/// ReportBatchEnvelopeMsg) into a caller-owned arena. The arena only ever
/// grows — element strings and prognostics vectors keep their capacity
/// across calls, so steady-state decode is allocation-free. Elements beyond
/// the returned count hold stale data from earlier batches; every element in
/// the prefix has dc/sequence stamped from the datagram header. Returns
/// nullopt on any malformed byte: one corrupt frame fails the whole
/// datagram (batches share their datagram's integrity fate).
[[nodiscard]] std::optional<ReportBatchView> try_unwrap_reports_into(
    std::span<const std::uint8_t> bytes, std::vector<ReportEnvelope>& arena);

// Enveloped encodings (type byte + body).
[[nodiscard]] std::vector<std::uint8_t> wrap(const FailureReport& r);
[[nodiscard]] std::vector<std::uint8_t> wrap(const SensorDataMessage& m);
[[nodiscard]] std::vector<std::uint8_t> wrap(const TestCommandMessage& m);
[[nodiscard]] std::vector<std::uint8_t> wrap(const ReportEnvelope& m);
[[nodiscard]] std::vector<std::uint8_t> wrap(const AckMessage& m);
[[nodiscard]] std::vector<std::uint8_t> wrap(const HeartbeatMessage& m);
[[nodiscard]] std::vector<std::uint8_t> wrap(const CommandMessage& m);
[[nodiscard]] std::vector<std::uint8_t> wrap(const CommandEnvelope& m);

/// Bare batch datagram (ReportBatchMsg): type byte + versioned batch body.
[[nodiscard]] std::vector<std::uint8_t> wrap_batch(
    DcId dc, std::span<const FailureReport> reports);
/// Sequenced batch datagram (ReportBatchEnvelopeMsg): type byte + u64 dc +
/// u64 sequence + versioned batch body. The decoder rejects sequence 0 and
/// a body whose DC disagrees with the header.
[[nodiscard]] std::vector<std::uint8_t> wrap_batch_envelope(
    DcId dc, std::uint64_t sequence, std::span<const FailureReport> reports);

// Decoders: the payload's type byte must match (checked).
[[nodiscard]] FailureReport unwrap_report(std::span<const std::uint8_t> bytes);
[[nodiscard]] SensorDataMessage unwrap_sensor_data(
    std::span<const std::uint8_t> bytes);
[[nodiscard]] TestCommandMessage unwrap_test_command(
    std::span<const std::uint8_t> bytes);

// Fail-soft decoders for untrusted bytes (flight-recorder replay): nullopt
// on wrong type, truncation, or corruption — never abort.
[[nodiscard]] std::optional<FailureReport> try_unwrap_report(
    std::span<const std::uint8_t> bytes);
[[nodiscard]] std::optional<SensorDataMessage> try_unwrap_sensor_data(
    std::span<const std::uint8_t> bytes);
[[nodiscard]] std::optional<TestCommandMessage> try_unwrap_test_command(
    std::span<const std::uint8_t> bytes);
[[nodiscard]] std::optional<ReportEnvelope> try_unwrap_envelope(
    std::span<const std::uint8_t> bytes);
[[nodiscard]] std::optional<AckMessage> try_unwrap_ack(
    std::span<const std::uint8_t> bytes);
[[nodiscard]] std::optional<HeartbeatMessage> try_unwrap_heartbeat(
    std::span<const std::uint8_t> bytes);
[[nodiscard]] std::optional<CommandMessage> try_unwrap_command(
    std::span<const std::uint8_t> bytes);
[[nodiscard]] std::optional<CommandEnvelope> try_unwrap_command_envelope(
    std::span<const std::uint8_t> bytes);

}  // namespace mpros::net
