#pragma once
// Contract-checking macros (Core Guidelines I.6/I.8 style).
//
// MPROS_ASSERT     - internal invariant; always checked, aborts with location.
// MPROS_EXPECTS    - function precondition.
// MPROS_ENSURES    - function postcondition.
//
// Violations call mpros::contract_violation(), which prints the condition and
// location and std::abort()s. Kept always-on: this codebase simulates safety
// monitoring equipment, and silent contract violations are worse than a crash.

namespace mpros {

[[noreturn]] void contract_violation(const char* kind, const char* cond,
                                     const char* file, int line);

}  // namespace mpros

#define MPROS_CONTRACT_CHECK(kind, cond)                              \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::mpros::contract_violation(kind, #cond, __FILE__, __LINE__);   \
    }                                                                 \
  } while (false)

#define MPROS_ASSERT(cond) MPROS_CONTRACT_CHECK("assertion", cond)
#define MPROS_EXPECTS(cond) MPROS_CONTRACT_CHECK("precondition", cond)
#define MPROS_ENSURES(cond) MPROS_CONTRACT_CHECK("postcondition", cond)
