// E2 — Prognostic knowledge fusion (§5.4).
//
// Reproduces both worked examples from the paper (weak second report
// ignored; strong second report dominates and pulls the extrapolated demise
// earlier), then measures fusion latency versus prognostic list length and
// report count.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "mpros/common/rng.hpp"
#include "mpros/fusion/prognostic_fusion.hpp"

namespace {

using namespace mpros;
using namespace mpros::fusion;

PrognosticVector months(std::initializer_list<std::pair<double, double>> pts) {
  std::vector<PrognosticPoint> v;
  for (const auto& [mo, p] : pts) v.push_back({SimTime::from_months(mo), p});
  return PrognosticVector(std::move(v));
}

void print_paper_examples() {
  const PrognosticVector a = months({{3, 0.01}, {4, 0.5}, {5, 0.99}});

  const PrognosticVector weak_fused =
      fuse_conservative(a, months({{4.5, 0.12}}));
  const bool ignored =
      std::abs(weak_fused.probability_at(SimTime::from_months(4.5)) -
               a.probability_at(SimTime::from_months(4.5))) < 1e-9;

  const PrognosticVector strong_fused =
      fuse_conservative(a, months({{4.5, 0.95}}));
  const auto original_99 = a.time_to_probability(0.99);
  const auto fused_99 = strong_fused.time_to_probability(0.99);

  std::printf(
      "\nE2 Prognostic fusion (paper §5.4)\n"
      "  base vector: (3mo,.01)(4mo,.5)(5mo,.99)\n"
      "  claim A  : second report (4.5mo,.12) is ignored\n"
      "  measured : fused(4.5mo)=%.3f vs base %.3f -> %s\n"
      "  claim B  : second report (4.5mo,.95) dominates; demise earlier than\n"
      "             the original 'some time after 5 months'\n"
      "  measured : fused(4.5mo)=%.2f, P99 at %.2fmo vs original %.2fmo\n\n",
      weak_fused.probability_at(SimTime::from_months(4.5)),
      a.probability_at(SimTime::from_months(4.5)),
      ignored ? "ignored (matches)" : "NOT ignored (mismatch)",
      strong_fused.probability_at(SimTime::from_months(4.5)),
      fused_99 ? fused_99->months() : -1.0,
      original_99 ? original_99->months() : -1.0);
}

PrognosticVector random_vector(Rng& rng, std::size_t points) {
  std::vector<PrognosticPoint> v;
  double mo = 0.0;
  for (std::size_t i = 0; i < points; ++i) {
    mo += rng.uniform(0.2, 1.5);
    v.push_back({SimTime::from_months(mo), rng.uniform(0.0, 1.0)});
  }
  return PrognosticVector(std::move(v));
}

void BM_FusePair(benchmark::State& state) {
  Rng rng(3);
  const auto points = static_cast<std::size_t>(state.range(0));
  const PrognosticVector a = random_vector(rng, points);
  const PrognosticVector b = random_vector(rng, points);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fuse_conservative(a, b));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FusePair)->Arg(3)->Arg(10)->Arg(50);

void BM_FuseReportStream(benchmark::State& state) {
  // A machine accumulating prognostic reports over its life.
  Rng rng(4);
  const auto reports = static_cast<std::size_t>(state.range(0));
  std::vector<PrognosticVector> stream;
  for (std::size_t i = 0; i < reports; ++i) {
    stream.push_back(random_vector(rng, 4));
  }
  for (auto _ : state) {
    PrognosticVector fused;
    for (const auto& v : stream) fused = fuse_conservative(fused, v);
    benchmark::DoNotOptimize(fused);
  }
  state.SetItemsProcessed(state.iterations() * reports);
}
BENCHMARK(BM_FuseReportStream)->Arg(10)->Arg(100);

void BM_TimeToProbability(benchmark::State& state) {
  Rng rng(5);
  const PrognosticVector v = random_vector(rng, 20);
  for (auto _ : state) {
    benchmark::DoNotOptimize(v.time_to_probability(0.5));
    benchmark::DoNotOptimize(v.time_to_probability(0.9));
  }
}
BENCHMARK(BM_TimeToProbability);

}  // namespace

int main(int argc, char** argv) {
  print_paper_examples();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
