file(REMOVE_RECURSE
  "libmpros_net.a"
)
