file(REMOVE_RECURSE
  "libmpros_dsp.a"
)
