// Fuzzy-logic analyzer tests: membership algebra, Mamdani inference, the
// chiller process rulebase.

#include <gtest/gtest.h>

#include <algorithm>

#include "mpros/fuzzy/chiller_fuzzy.hpp"
#include "mpros/fuzzy/engine.hpp"
#include "mpros/fuzzy/membership.hpp"
#include "mpros/rules/features.hpp"

namespace mpros::fuzzy {
namespace {

using domain::FailureMode;

TEST(MembershipTest, TriangularShape) {
  const MembershipFunction mf = Triangular{0.0, 5.0, 10.0};
  EXPECT_DOUBLE_EQ(mf.grade(0.0), 0.0);
  EXPECT_DOUBLE_EQ(mf.grade(2.5), 0.5);
  EXPECT_DOUBLE_EQ(mf.grade(5.0), 1.0);
  EXPECT_DOUBLE_EQ(mf.grade(7.5), 0.5);
  EXPECT_DOUBLE_EQ(mf.grade(12.0), 0.0);
}

TEST(MembershipTest, TriangularShoulders) {
  const MembershipFunction left = Triangular{0.0, 0.0, 4.0};
  EXPECT_DOUBLE_EQ(left.grade(-1.0), 1.0);
  EXPECT_DOUBLE_EQ(left.grade(0.0), 1.0);
  EXPECT_DOUBLE_EQ(left.grade(2.0), 0.5);
  const MembershipFunction right = Triangular{4.0, 8.0, 8.0};
  EXPECT_DOUBLE_EQ(right.grade(9.0), 1.0);
}

TEST(MembershipTest, TrapezoidalPlateau) {
  const MembershipFunction mf = Trapezoidal{0.0, 2.0, 6.0, 8.0};
  EXPECT_DOUBLE_EQ(mf.grade(1.0), 0.5);
  EXPECT_DOUBLE_EQ(mf.grade(4.0), 1.0);
  EXPECT_DOUBLE_EQ(mf.grade(7.0), 0.5);
  EXPECT_DOUBLE_EQ(mf.grade(9.0), 0.0);
}

TEST(MembershipTest, GaussianSymmetric) {
  const MembershipFunction mf = Gaussian{5.0, 1.0};
  EXPECT_DOUBLE_EQ(mf.grade(5.0), 1.0);
  EXPECT_NEAR(mf.grade(4.0), mf.grade(6.0), 1e-12);
  EXPECT_LT(mf.grade(8.0), 0.02);
}

TEST(LinguisticVariableTest, LowNormalHighPartition) {
  const LinguisticVariable v =
      make_low_normal_high("temp", 0.0, 30.0, 70.0, 100.0);
  EXPECT_DOUBLE_EQ(v.grade("low", 10.0), 1.0);
  EXPECT_DOUBLE_EQ(v.grade("normal", 50.0), 1.0);
  EXPECT_DOUBLE_EQ(v.grade("high", 90.0), 1.0);
  // At an edge, low and normal overlap.
  EXPECT_GT(v.grade("low", 30.0), 0.0);
  EXPECT_GT(v.grade("normal", 30.0), 0.0);
}

TEST(LinguisticVariableTest, GradeClampsToUniverse) {
  const LinguisticVariable v =
      make_low_normal_high("x", 0.0, 3.0, 7.0, 10.0);
  EXPECT_DOUBLE_EQ(v.grade("high", 50.0), 1.0);   // clamped to max
  EXPECT_DOUBLE_EQ(v.grade("low", -50.0), 1.0);   // clamped to min
}

MamdaniEngine make_demo_engine() {
  std::vector<LinguisticVariable> in;
  in.push_back(make_low_normal_high("temp", 0.0, 30.0, 70.0, 100.0));
  LinguisticVariable out("risk", 0.0, 1.0);
  out.add_term("low", Triangular{0.0, 0.0, 0.5});
  out.add_term("high", Triangular{0.5, 1.0, 1.0});
  MamdaniEngine e(std::move(in), std::move(out));
  e.add_rule({{{"temp", "high"}}, "high"});
  e.add_rule({{{"temp", "low"}}, "low"});
  e.add_rule({{{"temp", "normal"}}, "low"});
  return e;
}

TEST(MamdaniTest, CrispExtremesMapToExtremes) {
  const MamdaniEngine e = make_demo_engine();
  EXPECT_GT(e.infer({{"temp", 95.0}}), 0.7);
  EXPECT_LT(e.infer({{"temp", 10.0}}), 0.3);
}

TEST(MamdaniTest, OutputMonotoneInInput) {
  // Centroid defuzzification wiggles slightly where memberships overlap;
  // require monotonicity up to a small tolerance.
  const MamdaniEngine e = make_demo_engine();
  double prev = -1.0;
  for (double t = 10.0; t <= 95.0; t += 5.0) {
    const double risk = e.infer({{"temp", t}});
    EXPECT_GE(risk, prev - 0.05) << "at temp " << t;
    prev = std::max(prev, risk);
  }
}

TEST(MamdaniTest, NegatedAntecedent) {
  std::vector<LinguisticVariable> in;
  in.push_back(make_low_normal_high("temp", 0.0, 30.0, 70.0, 100.0));
  LinguisticVariable out("risk", 0.0, 1.0);
  out.add_term("low", Triangular{0.0, 0.0, 0.5});
  out.add_term("high", Triangular{0.5, 1.0, 1.0});
  MamdaniEngine e(std::move(in), std::move(out));
  e.add_rule({{{"temp", "low", /*negated=*/true}}, "high"});
  e.add_rule({{{"temp", "low"}}, "low"});
  EXPECT_GT(e.infer({{"temp", 90.0}}), 0.6);
  EXPECT_LT(e.infer({{"temp", 5.0}}), 0.4);
}

TEST(MamdaniTest, NothingFiredReturnsUniverseMinimum) {
  std::vector<LinguisticVariable> in;
  LinguisticVariable x("x", 0.0, 10.0);
  x.add_term("mid", Triangular{4.0, 5.0, 6.0});
  in.push_back(x);
  LinguisticVariable out("y", 0.0, 1.0);
  out.add_term("high", Triangular{0.5, 1.0, 1.0});
  MamdaniEngine e(std::move(in), std::move(out));
  e.add_rule({{{"x", "mid"}}, "high"});
  EXPECT_DOUBLE_EQ(e.infer({{"x", 0.0}}), 0.0);
}

TEST(MamdaniTest, MeanOfMaximumDefuzzifier) {
  const MamdaniEngine e = make_demo_engine();
  const double mom = e.infer({{"temp", 95.0}}, Defuzzifier::MeanOfMaximum);
  EXPECT_GT(mom, 0.8);
}

TEST(MamdaniTest, FiringStrengthsExposed) {
  const MamdaniEngine e = make_demo_engine();
  const auto strengths = e.firing_strengths({{"temp", 95.0}});
  ASSERT_EQ(strengths.size(), 3u);
  EXPECT_GT(strengths[0], 0.9);   // "high" rule
  EXPECT_LT(strengths[1], 0.05);  // "low" rule
}

// --- Chiller process diagnoser -----------------------------------------------

ProcessSnapshot healthy_snapshot() {
  const auto nom = domain::navy_chiller_nominals();
  return ProcessSnapshot{
      {rules::feat::kLoad, 0.8},
      {rules::feat::kOilPressure, nom.oil_pressure_kpa},
      {rules::feat::kOilTemp, nom.oil_temperature_c},
      {rules::feat::kBearingTemp, nom.bearing_temp_c},
      {rules::feat::kWindingTemp, nom.motor_winding_temp_c},
      {rules::feat::kEvapPressure, nom.evap_pressure_kpa},
      {rules::feat::kCondPressure, nom.cond_pressure_kpa},
      {rules::feat::kSuperheat, nom.superheat_c},
      {rules::feat::kChwSupplyTemp, nom.chilled_water_supply_c},
      {rules::feat::kCondApproach, 4.0},
      {rules::feat::kMotorCurrent, nom.motor_current_a},
  };
}

TEST(FuzzyDiagnoserTest, HealthyPlantIsQuiet) {
  const FuzzyDiagnoser diagnoser;
  const rules::BelievabilityTable beliefs;
  EXPECT_TRUE(diagnoser.evaluate(healthy_snapshot(), beliefs).empty());
}

TEST(FuzzyDiagnoserTest, RefrigerantLeakSignatureFires) {
  const FuzzyDiagnoser diagnoser;
  const rules::BelievabilityTable beliefs;
  const auto nom = domain::navy_chiller_nominals();
  ProcessSnapshot s = healthy_snapshot();
  s[rules::feat::kEvapPressure] = nom.evap_pressure_kpa - 90.0;
  s[rules::feat::kSuperheat] = nom.superheat_c + 9.0;
  s[rules::feat::kChwSupplyTemp] = nom.chilled_water_supply_c + 4.0;

  const auto diagnoses = diagnoser.evaluate(s, beliefs);
  ASSERT_FALSE(diagnoses.empty());
  EXPECT_EQ(diagnoses.front().mode, FailureMode::RefrigerantLeak);
  EXPECT_GT(diagnoses.front().severity, 0.5);
  EXPECT_FALSE(diagnoses.front().prognosis.empty());
}

TEST(FuzzyDiagnoserTest, OilDegradationSignatureFires) {
  const FuzzyDiagnoser diagnoser;
  const rules::BelievabilityTable beliefs;
  const auto nom = domain::navy_chiller_nominals();
  ProcessSnapshot s = healthy_snapshot();
  s[rules::feat::kOilTemp] = nom.oil_temperature_c + 22.0;
  s[rules::feat::kOilPressure] = nom.oil_pressure_kpa - 100.0;

  const auto diagnoses = diagnoser.evaluate(s, beliefs);
  ASSERT_FALSE(diagnoses.empty());
  EXPECT_EQ(diagnoses.front().mode, FailureMode::OilDegradation);
  EXPECT_GT(diagnoses.front().severity, 0.55);
}

TEST(FuzzyDiagnoserTest, CondenserFoulingSignatureFires) {
  const FuzzyDiagnoser diagnoser;
  const rules::BelievabilityTable beliefs;
  const auto nom = domain::navy_chiller_nominals();
  ProcessSnapshot s = healthy_snapshot();
  s[rules::feat::kCondPressure] = nom.cond_pressure_kpa + 300.0;
  s[rules::feat::kCondApproach] = 12.0;
  s[rules::feat::kMotorCurrent] = nom.motor_current_a * 1.15;

  const auto diagnoses = diagnoser.evaluate(s, beliefs);
  ASSERT_FALSE(diagnoses.empty());
  EXPECT_EQ(diagnoses.front().mode, FailureMode::CondenserFouling);
}

TEST(FuzzyDiagnoserTest, SeverityScalesWithDeviation) {
  const FuzzyDiagnoser diagnoser;
  const auto nom = domain::navy_chiller_nominals();
  ProcessSnapshot mild = healthy_snapshot();
  mild[rules::feat::kOilTemp] = nom.oil_temperature_c + 11.0;
  ProcessSnapshot severe = healthy_snapshot();
  severe[rules::feat::kOilTemp] = nom.oil_temperature_c + 24.0;
  severe[rules::feat::kOilPressure] = nom.oil_pressure_kpa - 110.0;

  EXPECT_LT(diagnoser.severity(FailureMode::OilDegradation, mild),
            diagnoser.severity(FailureMode::OilDegradation, severe));
}

TEST(FuzzyDiagnoserTest, CoversProcessModes) {
  const FuzzyDiagnoser diagnoser;
  const auto modes = diagnoser.covered_modes();
  EXPECT_GE(modes.size(), 5u);
  // Every covered mode is process-observable (not a pure vibration mode).
  for (const FailureMode m : modes) {
    EXPECT_NE(m, FailureMode::MotorImbalance);
    EXPECT_NE(m, FailureMode::GearMeshWear);
  }
}

TEST(FuzzyDiagnoserTest, MissingSensorMeansAbstain) {
  // §5.1: inputs may be fragmentary — an engine missing one of its inputs
  // abstains instead of crashing or guessing.
  const FuzzyDiagnoser diagnoser;
  const rules::BelievabilityTable beliefs;
  const auto nom = domain::navy_chiller_nominals();
  ProcessSnapshot s = healthy_snapshot();
  s[rules::feat::kOilTemp] = nom.oil_temperature_c + 25.0;
  s.erase(rules::feat::kOilPressure);  // oil-pressure sensor lost

  for (const auto& d : diagnoser.evaluate(s, beliefs)) {
    EXPECT_NE(d.mode, FailureMode::OilDegradation);
  }
}

}  // namespace
}  // namespace mpros::fuzzy
