#include "mpros/net/reliable.hpp"

#include <algorithm>
#include <atomic>

#include "mpros/common/assert.hpp"
#include "mpros/common/log.hpp"
#include "mpros/common/rng.hpp"
#include "mpros/net/fleet_summary.hpp"
#include "mpros/telemetry/metrics.hpp"

namespace mpros::net {

namespace {

struct ReliableMetrics {
  telemetry::Counter& envelopes_sent;
  telemetry::Counter& retransmits;
  telemetry::Counter& retransmit_overflow;
  telemetry::Counter& retransmit_max_backoff;
  telemetry::Gauge& retransmit_inflight;

  static ReliableMetrics& get() {
    static auto& reg = telemetry::Registry::instance();
    static ReliableMetrics m{
        reg.counter("net.envelopes_sent"),
        reg.counter("net.retransmits"),
        reg.counter("net.retransmit_overflow"),
        reg.counter("net.retransmit_max_backoff"),
        reg.gauge("net.retransmit_inflight"),
    };
    return m;
  }
};

/// Unacked entries across every live sender in the process; the
/// net.retransmit_inflight gauge mirrors it so the operator sees total
/// recovery debt, not just the last sender to move.
std::atomic<std::int64_t> g_inflight{0};

void adjust_inflight(std::int64_t delta) {
  if (delta == 0) return;
  const std::int64_t now =
      g_inflight.fetch_add(delta, std::memory_order_relaxed) + delta;
  ReliableMetrics::get().retransmit_inflight.set(static_cast<double>(now));
}

}  // namespace

SimTime desync_phase(std::uint64_t stream_id, SimTime period) {
  const std::int64_t quarter = period.micros() / 4;
  if (quarter <= 0) return SimTime(0);
  // splitmix64 over the stream id: avalanche spreads consecutive DC ids
  // across the whole window.
  return SimTime(static_cast<std::int64_t>(
      splitmix64(stream_id ^ 0x9E3779B97F4A7C15ULL) %
      static_cast<std::uint64_t>(quarter)));
}

ReliableSender::ReliableSender(DcId dc, ReliableConfig cfg)
    : dc_(dc), cfg_(cfg) {
  MPROS_EXPECTS(cfg.buffer_limit >= 1);
  MPROS_EXPECTS(cfg.backoff >= 1.0);
  MPROS_EXPECTS(cfg.initial_rto.micros() > 0);
}

ReliableSender::~ReliableSender() {
  // Entries dying unacked leave the recovery-debt ledger with the sender.
  adjust_inflight(-static_cast<std::int64_t>(window_.size()));
}

std::vector<std::uint8_t> ReliableSender::envelope(
    const FailureReport& report, SimTime now) {
  std::lock_guard lock(mu_);
  ReportEnvelope env;
  env.dc = dc_;
  env.sequence = next_sequence_;
  env.report = report;
  return seal(wrap(env), now);
}

std::vector<std::uint8_t> ReliableSender::envelope(
    std::span<const FailureReport> reports, SimTime now) {
  std::lock_guard lock(mu_);
  return seal(wrap_batch_envelope(dc_, next_sequence_, reports), now);
}

std::vector<std::uint8_t> ReliableSender::envelope(const FleetSummary& summary,
                                                   SimTime now) {
  std::lock_guard lock(mu_);
  FleetSummaryEnvelope env;
  env.ship = ShipId(dc_.value());
  env.sequence = next_sequence_;
  env.summary = summary;
  return seal(wrap(env), now);
}

std::vector<std::uint8_t> ReliableSender::envelope(const CommandMessage& cmd,
                                                   SimTime now) {
  std::lock_guard lock(mu_);
  CommandEnvelope env;
  env.dc = dc_;
  env.sequence = next_sequence_;
  env.command = cmd;
  return seal(wrap(env), now);
}

ReliableSender::State ReliableSender::take_state() {
  std::lock_guard lock(mu_);
  State state;
  state.next_sequence = next_sequence_;
  state.stats = stats_;
  state.window.reserve(window_.size());
  for (Entry& e : window_) {
    state.window.push_back(State::BufferedEntry{
        e.sequence, std::move(e.payload), e.next_retry, e.rto});
  }
  adjust_inflight(-static_cast<std::int64_t>(window_.size()));
  window_.clear();
  return state;
}

void ReliableSender::restore(State state) {
  std::lock_guard lock(mu_);
  adjust_inflight(static_cast<std::int64_t>(state.window.size()) -
                  static_cast<std::int64_t>(window_.size()));
  next_sequence_ = state.next_sequence;
  stats_ = state.stats;
  window_.clear();
  for (State::BufferedEntry& e : state.window) {
    window_.push_back(
        Entry{e.sequence, std::move(e.payload), e.next_retry, e.rto});
  }
}

std::vector<std::uint8_t> ReliableSender::seal(
    std::vector<std::uint8_t> payload, SimTime now) {
  std::int64_t inflight_delta = 1;
  if (window_.size() >= cfg_.buffer_limit) {
    MPROS_LOG_WARN("net",
                   "dc-%llu retransmit buffer full; dropping seq=%llu unacked",
                   static_cast<unsigned long long>(dc_.value()),
                   static_cast<unsigned long long>(window_.front().sequence));
    window_.pop_front();
    --inflight_delta;
    ++stats_.overflow_dropped;
    ReliableMetrics::get().retransmit_overflow.inc();
  }
  window_.push_back(Entry{next_sequence_, payload, now + cfg_.initial_rto,
                          cfg_.initial_rto});
  ++next_sequence_;
  ++stats_.enveloped;
  ReliableMetrics::get().envelopes_sent.inc();
  adjust_inflight(inflight_delta);
  return payload;
}

void ReliableSender::on_ack(const AckMessage& ack) {
  if (ack.dc != dc_) return;  // mis-routed datagram
  std::lock_guard lock(mu_);
  std::int64_t retired = 0;
  while (!window_.empty() && window_.front().sequence <= ack.cumulative) {
    window_.pop_front();
    ++stats_.acked;
    ++retired;
  }
  adjust_inflight(-retired);
}

std::vector<std::vector<std::uint8_t>> ReliableSender::due_retransmits(
    SimTime now) {
  std::lock_guard lock(mu_);
  std::vector<std::vector<std::uint8_t>> due;
  for (Entry& e : window_) {
    if (now < e.next_retry) continue;
    due.push_back(e.payload);
    const bool was_max = e.rto >= cfg_.max_rto;
    e.rto = std::min(cfg_.max_rto,
                     SimTime(static_cast<std::int64_t>(
                         static_cast<double>(e.rto.micros()) * cfg_.backoff)));
    e.next_retry = now + e.rto;
    ++stats_.retransmits;
    if (!was_max && e.rto >= cfg_.max_rto) {
      // The entry just hit the backoff ceiling: from here on it retries at
      // the slowest cadence until acked or evicted. Counted, so a stuck
      // link shows up in telemetry before the dead-letter Warn fires.
      ++stats_.max_backoff_hits;
      ReliableMetrics::get().retransmit_max_backoff.inc();
    }
  }
  if (!due.empty()) {
    ReliableMetrics::get().retransmits.inc(due.size());
  }
  return due;
}

std::uint64_t ReliableSender::last_sequence() const {
  std::lock_guard lock(mu_);
  return next_sequence_ - 1;
}

std::size_t ReliableSender::unacked() const {
  std::lock_guard lock(mu_);
  return window_.size();
}

ReliableSender::Stats ReliableSender::snapshot() const {
  std::lock_guard lock(mu_);
  return stats_;
}

ReliableReceiver::Outcome ReliableReceiver::on_envelope(
    DcId dc, std::uint64_t sequence) {
  MPROS_EXPECTS(sequence >= 1);
  Stream& s = streams_[dc.value()];
  Outcome out;

  if (sequence <= s.contiguous || s.pending.contains(sequence)) {
    out.duplicate = true;
    ++stats_.duplicates;
  } else {
    if (sequence > s.max_known) {
      // Everything between the old horizon and this arrival is missing.
      out.new_gaps = sequence - std::max(s.max_known, s.contiguous) - 1;
      s.max_known = sequence;
    } else {
      // A known-missing sequence arrived: one gap healed.
      ++stats_.gaps_healed;
    }
    stats_.gaps_detected += out.new_gaps;
    ++stats_.accepted;
    s.pending.insert(sequence);
    while (!s.pending.empty() && *s.pending.begin() == s.contiguous + 1) {
      ++s.contiguous;
      s.pending.erase(s.pending.begin());
    }
  }

  out.ack.dc = dc;
  out.ack.cumulative = s.contiguous;
  return out;
}

bool ReliableReceiver::is_duplicate(DcId dc, std::uint64_t sequence) const {
  MPROS_EXPECTS(sequence >= 1);
  const auto it = streams_.find(dc.value());
  if (it == streams_.end()) return false;
  const Stream& s = it->second;
  return sequence <= s.contiguous || s.pending.contains(sequence);
}

AckMessage ReliableReceiver::make_ack(DcId dc) const {
  return AckMessage{dc, cumulative(dc)};
}

std::uint64_t ReliableReceiver::on_advertised(DcId dc,
                                              std::uint64_t last_sequence) {
  Stream& s = streams_[dc.value()];
  if (last_sequence <= s.max_known) return 0;
  const std::uint64_t newly_missing =
      last_sequence - std::max(s.max_known, s.contiguous);
  s.max_known = last_sequence;
  stats_.gaps_detected += newly_missing;
  return newly_missing;
}

std::uint64_t ReliableReceiver::cumulative(DcId dc) const {
  const auto it = streams_.find(dc.value());
  return it == streams_.end() ? 0 : it->second.contiguous;
}

std::uint64_t ReliableReceiver::open_gaps(DcId dc) const {
  const auto it = streams_.find(dc.value());
  if (it == streams_.end()) return 0;
  const Stream& s = it->second;
  // Missing = everything the DC is known to have sent, minus everything
  // received (the contiguous prefix plus the out-of-order pending set).
  return s.max_known - s.contiguous - s.pending.size();
}

}  // namespace mpros::net
