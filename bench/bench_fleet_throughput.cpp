// E7 — Fleet data rates (§1).
//
// Paper claim: "thousands of embedded processors will collect millions of
// data points per second"; "Results from hundreds of DCs per ship will be
// correlated at a system level" by the PDME. The harness sweeps DC count
// and reports simulated samples/second of acquisition plus PDME report
// throughput, demonstrating the data-load shape the paper motivates.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string_view>
#include <thread>
#include <vector>

#include "mpros/common/rng.hpp"
#include "mpros/mpros/ship_system.hpp"

namespace {

using namespace mpros;

void BM_FleetHour(benchmark::State& state) {
  const auto plants = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    ShipSystemConfig cfg;
    cfg.plant_count = plants;
    cfg.dc_template.vibration_period = SimTime::from_seconds(600);
    cfg.dc_template.process_period = SimTime::from_seconds(60);
    cfg.seed = 0xF1EE7 + state.iterations();
    ShipSystem ship(cfg);
    // One faulted plant keeps the report path exercised.
    ship.chiller(0).faults().schedule(
        {domain::FailureMode::MotorImbalance, SimTime(0), SimTime(0), 0.9,
         plant::GrowthProfile::Step});
    state.ResumeTiming();

    ship.run_until(SimTime::from_hours(1.0));

    state.PauseTiming();
    const auto stats = ship.fleet_stats();
    state.counters["dc_count"] = static_cast<double>(plants);
    state.counters["samples_per_sim_s"] =
        static_cast<double>(stats.samples_processed) / 3600.0;
    state.counters["reports_fused"] =
        static_cast<double>(stats.reports_fused);
    state.ResumeTiming();
  }
  state.SetLabel("1 simulated hour");
}
BENCHMARK(BM_FleetHour)->Arg(1)->Arg(4)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

void BM_PdmeReportIngest(benchmark::State& state) {
  // Raw PDME fusion throughput: how many §7 reports per second the central
  // engine can post + fuse (the "hundreds of DCs" correlation point).
  oosm::ObjectModel model;
  const auto ship = oosm::build_ship(model, "bench", 1, 1);
  pdme::PdmeConfig cfg;
  cfg.deduplicate = false;  // measure fusion, not the dedup cache
  pdme::PdmeExecutive pdme(model, cfg);

  const auto modes = domain::all_failure_modes();
  std::uint64_t i = 0;
  for (auto _ : state) {
    net::FailureReport r;
    r.dc = DcId(1 + i % 200);
    r.knowledge_source = KnowledgeSourceId(1 + i % 4);
    r.sensed_object = ship.plants[0].motor;
    r.machine_condition = domain::condition_id(modes[i % modes.size()]);
    r.severity = 0.5;
    r.belief = 0.4;
    r.timestamp = SimTime(static_cast<std::int64_t>(i));
    pdme.accept(r);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("reports fused (OOSM post + D-S + prognostic)");
}
BENCHMARK(BM_PdmeReportIngest);

void BM_WireSerialization(benchmark::State& state) {
  net::FailureReport r;
  r.dc = DcId(3);
  r.knowledge_source = KnowledgeSourceId(1);
  r.sensed_object = ObjectId(17);
  r.machine_condition = ConditionId(5);
  r.severity = 0.62;
  r.belief = 0.91;
  r.explanation = "1x running-speed amplitude elevated";
  r.recommendations = "Field balance the rotor.";
  r.prognostics = {{0.1, 86400.0}, {0.5, 604800.0}, {0.9, 2592000.0}};
  for (auto _ : state) {
    const auto bytes = net::serialize(r);
    benchmark::DoNotOptimize(net::deserialize_report(bytes));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetLabel("report round-trips");
}
BENCHMARK(BM_WireSerialization);

// --- E18: sharded-PDME ingest sweep ------------------------------------------
//
// The central-correlation bound above is single-threaded; E18 shards the
// fusion stage across workers keyed by machine. The sweep replays one fixed
// prognostics-rich multi-plant report stream through shard_count 0 (the
// historical inline executive) and 1/2/4/8, measuring accepted reports/s
// end to end (enqueue + parallel fuse + aggregation barrier + OOSM posts).

constexpr std::size_t kSweepReports = 24000;

/// One fixed stream over 32 machines (8 plants x 4), dense enough that
/// Dempster-Shafer + prognostic-curve fusion dominates the serial OOSM post.
std::vector<net::FailureReport> sweep_stream(const oosm::ShipModel& ship) {
  const auto modes = domain::all_failure_modes();
  std::vector<ObjectId> machines;
  for (const auto& plant : ship.plants) {
    machines.insert(machines.end(), {plant.chiller, plant.motor, plant.gearbox,
                                     plant.compressor});
  }
  Rng rng(0xE18);
  std::vector<net::FailureReport> stream;
  stream.reserve(kSweepReports);
  for (std::size_t i = 0; i < kSweepReports; ++i) {
    net::FailureReport r;
    r.dc = DcId(1 + i % ship.plants.size());
    r.knowledge_source = KnowledgeSourceId(1 + i % 4);
    r.sensed_object = machines[i % machines.size()];
    r.machine_condition = domain::condition_id(modes[(i / 7) % modes.size()]);
    r.severity = rng.uniform(0.1, 1.0);
    r.belief = rng.uniform(0.1, 0.9);
    r.timestamp = SimTime(static_cast<std::int64_t>(i * 1000));
    r.explanation = "bench sweep";
    for (int p = 0; p < 6; ++p) {
      r.prognostics.push_back(
          {0.1 + 0.15 * p, rng.uniform(86400.0, 200.0 * 86400.0)});
    }
    stream.push_back(r);
  }
  return stream;
}

/// One DC sync window's worth of coalesced reports per submit() span (E21):
/// the wire batch size the DCs produce with batch_reports on.
constexpr std::size_t kIngestBatch = 256;

/// The sweep stream as prebuilt submit() envelopes (unsequenced: the bench
/// measures the ingest pipeline, not reliable-stream bookkeeping).
std::vector<net::ReportEnvelope> sweep_envelopes(
    const std::vector<net::FailureReport>& stream) {
  std::vector<net::ReportEnvelope> envs;
  envs.reserve(stream.size());
  for (const auto& r : stream) {
    net::ReportEnvelope env;
    env.dc = r.dc;
    env.sequence = 0;
    env.report = r;
    envs.push_back(std::move(env));
  }
  return envs;
}

/// Accepted reports/s for one shard configuration (fresh model + executive),
/// ingesting through the span-based submit() API in kIngestBatch spans.
double measure_shard_rate(const std::vector<net::ReportEnvelope>& envs,
                          std::size_t shard_count) {
  oosm::ObjectModel model;
  const auto ship = oosm::build_ship(model, "bench", 4, 2);
  pdme::PdmeConfig cfg;
  cfg.deduplicate = false;  // measure fusion, not the signature cache
  cfg.shard_count = shard_count;
  pdme::PdmeExecutive pdme(model, cfg);

  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < envs.size(); i += kIngestBatch) {
    const std::size_t n = std::min(kIngestBatch, envs.size() - i);
    pdme.submit({envs.data() + i, n});
  }
  pdme.synchronize();
  const auto t1 = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  return static_cast<double>(pdme.stats().reports_accepted) / secs;
}

/// The pre-E21 call shape for comparison: one accept() (an envelope build
/// plus a one-element submit) per report, inline executive.
double measure_singleton_rate(const std::vector<net::FailureReport>& stream) {
  oosm::ObjectModel model;
  const auto ship = oosm::build_ship(model, "bench", 4, 2);
  pdme::PdmeConfig cfg;
  cfg.deduplicate = false;
  pdme::PdmeExecutive pdme(model, cfg);

  const auto t0 = std::chrono::steady_clock::now();
  for (const auto& r : stream) pdme.accept(r);
  pdme.synchronize();
  const auto t1 = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(t1 - t0).count();
  return static_cast<double>(pdme.stats().reports_accepted) / secs;
}

void BM_PdmeShardIngest(benchmark::State& state) {
  oosm::ObjectModel topo;
  const auto ship = oosm::build_ship(topo, "bench", 4, 2);
  const auto envs = sweep_envelopes(sweep_stream(ship));
  const auto shards = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(measure_shard_rate(envs, shards));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * kSweepReports));
  state.SetLabel(shards == 0 ? "inline executive"
                             : std::to_string(shards) + " fusion workers");
}
BENCHMARK(BM_PdmeShardIngest)
    ->Arg(0)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

void write_json_snapshot() {
  oosm::ObjectModel topo;
  const auto ship = oosm::build_ship(topo, "bench", 4, 2);
  const auto stream = sweep_stream(ship);
  const auto envs = sweep_envelopes(stream);

  constexpr std::size_t kShardConfigs[] = {0, 1, 2, 4, 8};
  double rates[std::size(kShardConfigs)] = {};
  (void)measure_shard_rate(envs, 0);  // warm allocators and code paths
  for (std::size_t c = 0; c < std::size(kShardConfigs); ++c) {
    double best = 0.0;  // best-of-3 to shave scheduler noise
    for (int rep = 0; rep < 3; ++rep) {
      best = std::max(best, measure_shard_rate(envs, kShardConfigs[c]));
    }
    rates[c] = best;
  }
  double singleton = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    singleton = std::max(singleton, measure_singleton_rate(stream));
  }
  const double speedup_8_vs_1 = rates[4] / rates[1];
  const double speedup_8_vs_inline = rates[4] / rates[0];

  std::FILE* f = std::fopen("BENCH_FLEET.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_fleet: cannot write BENCH_FLEET.json\n");
    return;
  }
  // The sweep measures wall-clock, so the speedup is bounded by the cores
  // the container actually grants; record that bound beside the numbers.
  const unsigned hw = std::thread::hardware_concurrency();
  std::fprintf(f,
               "{\n"
               "  \"experiment\": \"E18+E21\",\n"
               "  \"hardware_concurrency\": %u,\n"
               "  \"report_count\": %zu,\n"
               "  \"machine_count\": %zu,\n"
               "  \"ingest_batch\": %zu,\n"
               "  \"reports_per_s_inline\": %.0f,\n"
               "  \"reports_per_s_inline_singleton\": %.0f,\n"
               "  \"reports_per_s_shards1\": %.0f,\n"
               "  \"reports_per_s_shards2\": %.0f,\n"
               "  \"reports_per_s_shards4\": %.0f,\n"
               "  \"reports_per_s_shards8\": %.0f,\n"
               "  \"speedup_8_vs_1\": %.2f,\n"
               "  \"speedup_8_vs_inline\": %.2f\n"
               "}\n",
               hw, kSweepReports, ship.plants.size() * 4, kIngestBatch,
               rates[0], singleton, rates[1], rates[2], rates[3], rates[4],
               speedup_8_vs_1, speedup_8_vs_inline);
  std::fclose(f);
  std::printf(
      "shard sweep    : inline %.0f/s | 1w %.0f/s | 2w %.0f/s | 4w %.0f/s "
      "| 8w %.0f/s  (%u cores)\n"
      "singleton      : %.0f/s via per-report accept() for comparison\n"
      "speedup        : 8 workers = %.2fx vs 1 worker, %.2fx vs inline "
      "(BENCH_FLEET.json written)\n",
      rates[0], rates[1], rates[2], rates[3], rates[4], hw, singleton,
      speedup_8_vs_1, speedup_8_vs_inline);
}

/// --quick: CI regression gate. Re-measures the inline batched ingest rate
/// and compares against the committed BENCH_FLEET.json in the working
/// directory; exits nonzero on a >20% regression. Never rewrites the file.
int run_quick_gate() {
  double baseline = 0.0;
  std::FILE* f = std::fopen("BENCH_FLEET.json", "r");
  if (f != nullptr) {
    char buf[4096];
    const std::size_t n = std::fread(buf, 1, sizeof buf - 1, f);
    buf[n] = '\0';
    std::fclose(f);
    const char* key = std::strstr(buf, "\"reports_per_s_inline\"");
    if (key != nullptr) std::sscanf(key, "\"reports_per_s_inline\": %lf",
                                    &baseline);
  }
  if (baseline <= 0.0) {
    std::printf("bench_fleet --quick: no BENCH_FLEET.json baseline here; "
                "nothing to gate against\n");
    return 0;
  }

  oosm::ObjectModel topo;
  const auto ship = oosm::build_ship(topo, "bench", 4, 2);
  const auto envs = sweep_envelopes(sweep_stream(ship));
  (void)measure_shard_rate(envs, 0);  // warm-up
  double best = 0.0;  // best-of-5: the gate runs on loaded CI machines
  for (int rep = 0; rep < 5; ++rep) {
    best = std::max(best, measure_shard_rate(envs, 0));
  }
  const double floor = 0.8 * baseline;
  std::printf("bench_fleet --quick: inline batched ingest %.0f/s "
              "(baseline %.0f/s, floor %.0f/s)\n", best, baseline, floor);
  if (best < floor) {
    std::fprintf(stderr,
                 "bench_fleet --quick: REGRESSION — more than 20%% below "
                 "the committed baseline\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == std::string_view("--quick")) {
      return run_quick_gate();
    }
  }
  std::printf(
      "\nE7 fleet data rates (paper §1) + E18 sharded-PDME ingest "
      "(E21 batched submit)\n"
      "  claim  : 'millions of data points per second' fleet-wide;\n"
      "           'hundreds of DCs per ship' correlated at the PDME\n"
      "  shape  : samples_per_sim_s scales linearly with dc_count below;\n"
      "           BM_PdmeReportIngest bounds central correlation capacity;\n"
      "           BM_PdmeShardIngest lifts it with per-machine fusion "
      "workers\n\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  write_json_snapshot();
  return 0;
}
