#include "mpros/sbfr/interpreter.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "mpros/common/assert.hpp"

namespace mpros::sbfr {
namespace {

double read_f32(std::span<const std::uint8_t> code, std::size_t pos) {
  float f;
  std::memcpy(&f, code.data() + pos, 4);
  return static_cast<double>(f);
}

bool truthy(double v) { return v != 0.0; }

}  // namespace

SbfrSystem::SbfrSystem(std::size_t input_channels)
    : prev_inputs_(input_channels, 0.0) {}

std::size_t SbfrSystem::add_machine(MachineDef def) {
  const std::string error = validate(def);
  MPROS_EXPECTS(error.empty());
  MachineRuntime rt{std::move(def), 0, 0, 0, {}};
  rt.image_bytes = rt.def.image_size();
  rt.state = rt.def.initial_state();
  rt.locals.assign(rt.def.num_locals(), 0.0);
  machines_.push_back(std::move(rt));
  status_.push_back(0.0);
  return machines_.size() - 1;
}

void SbfrSystem::step(std::span<const double> inputs) {
  MPROS_EXPECTS(inputs.size() == prev_inputs_.size());

  for (std::size_t i = 0; i < machines_.size(); ++i) {
    current_machine_ = i;
    MachineRuntime& m = machines_[i];
    const StateDef& state = m.def.states()[m.state];

    for (const Transition& t : state.transitions) {
      if (!truthy(eval(t.condition, m, inputs))) continue;
      if (!t.action.empty()) exec_action(t.action, m, inputs);
      if (t.target != m.state) {
        m.state = t.target;
        m.state_entry_cycle = cycle_ + 1;  // ∆T counts from the next cycle
      }
      break;  // at most one transition per machine per cycle
    }
  }

  std::copy(inputs.begin(), inputs.end(), prev_inputs_.begin());
  have_prev_ = true;
  ++cycle_;
}

std::vector<Event> SbfrSystem::drain_events() {
  std::vector<Event> out;
  out.swap(events_);
  return out;
}

double SbfrSystem::status(std::size_t machine) const {
  MPROS_EXPECTS(machine < status_.size());
  return status_[machine];
}

void SbfrSystem::set_status(std::size_t machine, double v) {
  MPROS_EXPECTS(machine < status_.size());
  status_[machine] = v;
}

std::uint8_t SbfrSystem::state(std::size_t machine) const {
  MPROS_EXPECTS(machine < machines_.size());
  return machines_[machine].state;
}

const std::string& SbfrSystem::state_name(std::size_t machine) const {
  MPROS_EXPECTS(machine < machines_.size());
  const MachineRuntime& m = machines_[machine];
  return m.def.states()[m.state].name;
}

double SbfrSystem::local(std::size_t machine, std::size_t index) const {
  MPROS_EXPECTS(machine < machines_.size());
  MPROS_EXPECTS(index < machines_[machine].locals.size());
  return machines_[machine].locals[index];
}

std::size_t SbfrSystem::memory_footprint() const {
  std::size_t bytes = 0;
  for (const MachineRuntime& m : machines_) {
    bytes += m.image_bytes;                     // program image
    bytes += m.locals.size() * sizeof(double);  // local variables
    bytes += 1 + 8;                             // state byte + entry cycle
  }
  bytes += status_.size() * sizeof(double);       // shared status registers
  bytes += prev_inputs_.size() * sizeof(double);  // previous-sample latch
  return bytes;
}

void SbfrSystem::reset() {
  for (MachineRuntime& m : machines_) {
    m.state = m.def.initial_state();
    m.state_entry_cycle = 0;
    std::fill(m.locals.begin(), m.locals.end(), 0.0);
  }
  std::fill(status_.begin(), status_.end(), 0.0);
  std::fill(prev_inputs_.begin(), prev_inputs_.end(), 0.0);
  have_prev_ = false;
  cycle_ = 0;
  events_.clear();
}

// Single bytecode loop shared by conditions and actions. Conditions (pure
// programs, validate()-checked) finish with one value on the stack; actions
// finish with an empty stack after applying their stores/emits. Returns the
// final top-of-stack value for conditions, 0 for actions.
double SbfrSystem::run(std::span<const std::uint8_t> code, MachineRuntime& m,
                       std::span<const double> inputs) {
  double stack[kMaxStackDepth];
  std::size_t sp = 0;
  std::size_t pc = 0;

  const auto push = [&](double v) {
    MPROS_ASSERT(sp < kMaxStackDepth);
    stack[sp++] = v;
  };
  const auto pop = [&]() -> double {
    MPROS_ASSERT(sp > 0);
    return stack[--sp];
  };

  while (pc < code.size()) {
    const Op op = static_cast<Op>(code[pc]);
    switch (op) {
      case Op::PushConst:
        push(read_f32(code, pc + 1));
        break;
      case Op::LoadInput: {
        const std::uint8_t ch = code[pc + 1];
        MPROS_ASSERT(ch < inputs.size());
        push(inputs[ch]);
        break;
      }
      case Op::LoadDelta: {
        const std::uint8_t ch = code[pc + 1];
        MPROS_ASSERT(ch < inputs.size());
        push(have_prev_ ? inputs[ch] - prev_inputs_[ch] : 0.0);
        break;
      }
      case Op::LoadLocal: {
        const std::uint8_t idx = code[pc + 1];
        MPROS_ASSERT(idx < m.locals.size());
        push(m.locals[idx]);
        break;
      }
      case Op::LoadStatus: {
        const std::uint8_t mi = code[pc + 1];
        MPROS_ASSERT(mi < status_.size());
        push(status_[mi]);
        break;
      }
      case Op::LoadState: {
        const std::uint8_t mi = code[pc + 1];
        MPROS_ASSERT(mi < machines_.size());
        push(static_cast<double>(machines_[mi].state));
        break;
      }
      case Op::LoadDt:
        push(static_cast<double>(
            cycle_ >= m.state_entry_cycle ? cycle_ - m.state_entry_cycle : 0));
        break;
      case Op::Add: { const double b = pop(), a = pop(); push(a + b); break; }
      case Op::Sub: { const double b = pop(), a = pop(); push(a - b); break; }
      case Op::Mul: { const double b = pop(), a = pop(); push(a * b); break; }
      case Op::Div: {
        const double b = pop(), a = pop();
        push(b != 0.0 ? a / b : 0.0);
        break;
      }
      case Op::Neg: push(-pop()); break;
      case Op::Not: push(truthy(pop()) ? 0.0 : 1.0); break;
      case Op::Lt: { const double b = pop(), a = pop(); push(a < b ? 1.0 : 0.0); break; }
      case Op::Le: { const double b = pop(), a = pop(); push(a <= b ? 1.0 : 0.0); break; }
      case Op::Gt: { const double b = pop(), a = pop(); push(a > b ? 1.0 : 0.0); break; }
      case Op::Ge: { const double b = pop(), a = pop(); push(a >= b ? 1.0 : 0.0); break; }
      case Op::Eq: { const double b = pop(), a = pop(); push(a == b ? 1.0 : 0.0); break; }
      case Op::Ne: { const double b = pop(), a = pop(); push(a != b ? 1.0 : 0.0); break; }
      case Op::And: {
        const double b = pop(), a = pop();
        push(truthy(a) && truthy(b) ? 1.0 : 0.0);
        break;
      }
      case Op::Or: {
        const double b = pop(), a = pop();
        push(truthy(a) || truthy(b) ? 1.0 : 0.0);
        break;
      }
      case Op::BitAnd: {
        const double b = pop(), a = pop();
        push(static_cast<double>(std::llround(a) & std::llround(b)));
        break;
      }
      case Op::BitOr: {
        const double b = pop(), a = pop();
        push(static_cast<double>(std::llround(a) | std::llround(b)));
        break;
      }
      case Op::StoreLocal: {
        const std::uint8_t idx = code[pc + 1];
        MPROS_ASSERT(idx < m.locals.size());
        m.locals[idx] = pop();
        break;
      }
      case Op::StoreStatus: {
        const std::uint8_t mi = code[pc + 1];
        MPROS_ASSERT(mi < status_.size());
        status_[mi] = pop();
        break;
      }
      case Op::Emit:
        events_.push_back(
            Event{current_machine_, code[pc + 1], pop(), cycle_});
        break;
      case Op::End:
        MPROS_ASSERT(false);  // never encoded; programs end at buffer end
        break;
    }
    pc += 1 + immediate_size(op);
  }
  return sp > 0 ? stack[sp - 1] : 0.0;
}

double SbfrSystem::eval(std::span<const std::uint8_t> code,
                        const MachineRuntime& m,
                        std::span<const double> inputs) {
  // Conditions are pure (validate() rejects stores), so the const_cast-free
  // path is to run on a copy of nothing: run() never mutates `m` for pure
  // programs. We pass the runtime by non-const reference internally.
  return run(code, const_cast<MachineRuntime&>(m), inputs);
}

void SbfrSystem::exec_action(std::span<const std::uint8_t> code,
                             MachineRuntime& m,
                             std::span<const double> inputs) {
  run(code, m, inputs);
}

}  // namespace mpros::sbfr
