#pragma once
// MIMOSA-style open-standard export (paper §3.3).
//
// "This work is being integrated with industry standards such as Machinery
// Management Open Systems Alliance (MIMOSA)." MIMOSA's CRIS model keys
// everything on (site, agent, asset, measurement location) identities with
// typed health-assessment and proposed-event records; this module renders
// the PDME's fused state into that record shape so a MIMOSA-conformant
// consumer (ICAS, a CMMS) can ingest MPROS conclusions without bespoke
// glue. Rendering is a pipe-delimited flat file — the era's interchange
// medium — with one record type per line.

#include <string>

#include "mpros/pdme/pdme.hpp"

namespace mpros::pdme {

struct MimosaConfig {
  /// MIMOSA site identity for this ship.
  std::string site_id = "USNS-MERCY";
  /// Agent (the reporting system) identity.
  std::string agent_id = "MPROS-PDME";
  /// Health grade thresholds on fused belief x severity.
  double grade_warning = 0.10;
  double grade_alert = 0.35;
  double grade_critical = 0.60;
};

/// Record types emitted:
///   AS  asset registry row        AS|site|asset_id|asset_name|asset_type
///   HA  health assessment         HA|site|asset_id|condition|grade|belief|severity|reports
///   PE  proposed event (work)     PE|site|asset_id|condition|recommendation|p50_days|p90_days
/// Grades: NORMAL, WARNING, ALERT, CRITICAL.
[[nodiscard]] std::string export_mimosa(const PdmeExecutive& pdme,
                                        const oosm::ObjectModel& model,
                                        const MimosaConfig& cfg = {});

/// Grade for one maintenance item under the config thresholds.
[[nodiscard]] const char* mimosa_grade(const MaintenanceItem& item,
                                       const MimosaConfig& cfg = {});

}  // namespace mpros::pdme
