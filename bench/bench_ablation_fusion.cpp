// E12 — Future-work ablations (§10.1).
//
// (a) Dempster-Shafer vs Bayesian-network diagnostic fusion on the same
//     scripted report streams — the paper chose D-S because BN priors were
//     unavailable; the simulator can supply them, so we compare behaviour:
//     D-S needs no priors and keeps an explicit "unknown" mass; the BN
//     (given its priors) commits faster on corroborated evidence.
// (b) Prognostics with vs without Weibull hazard refinement: the refined
//     curve folds population wear-out into an optimistic report.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "mpros/common/rng.hpp"
#include "mpros/fusion/bayes_net.hpp"
#include "mpros/fusion/diagnostic_fusion.hpp"
#include "mpros/fusion/hazard.hpp"

namespace {

using namespace mpros;
using namespace mpros::fusion;
using domain::FailureMode;
using domain::LogicalGroup;

void print_diagnostic_ablation() {
  std::printf(
      "\nE12a diagnostic fusion ablation: Dempster-Shafer vs Bayes net\n"
      "  scenario: 1..4 agreeing reports (belief 0.6) that the motor\n"
      "  bearing is failing, then 1 contradicting report (compressor\n"
      "  bearing, 0.6) — beliefs for MotorBearingWear:\n"
      "  %-28s %12s %12s %10s\n", "after", "D-S belief", "D-S unknown",
      "BN P(mode)");

  DiagnosticFusion ds;
  GroupBayesFusion bn(LogicalGroup::Bearing);
  const ObjectId machine(1);

  for (int i = 1; i <= 4; ++i) {
    ds.update(machine, FailureMode::MotorBearingWear, 0.6);
    bn.add_report(machine, {FailureMode::MotorBearingWear, 0.6});
    const auto state = ds.state(machine, LogicalGroup::Bearing);
    std::printf("  %d agreeing report(s)          %12.4f %12.4f %10.4f\n", i,
                state.modes[0].belief, state.unknown,
                bn.mode_probability(machine, FailureMode::MotorBearingWear));
  }
  ds.update(machine, FailureMode::CompressorBearingWear, 0.6);
  bn.add_report(machine, {FailureMode::CompressorBearingWear, 0.6});
  const auto state = ds.state(machine, LogicalGroup::Bearing);
  std::printf("  + 1 contradicting report      %12.4f %12.4f %10.4f\n",
              state.modes[0].belief, state.unknown,
              bn.mode_probability(machine, FailureMode::MotorBearingWear));
  std::printf(
      "  shape: both converge on corroboration and retreat on conflict;\n"
      "         D-S uniquely tracks the residual 'unknown' mass the paper\n"
      "         highlights, while the BN redistributes it over its priors.\n");
}

void print_prognostic_ablation() {
  // An optimistic single report against a wear-out population model.
  const PrognosticVector report(
      {{SimTime::from_months(6.0), 0.10}, {SimTime::from_months(12.0), 0.4}});
  const WeibullModel population(3.0, 240.0);  // wear-out, ~8 month scale

  std::printf(
      "\nE12b prognostic hazard refinement (§10.1 'analysis of hazard and\n"
      "  survival data'): P(failure) by horizon, component age 6 months\n"
      "  %-12s %10s %14s\n", "horizon", "report", "hazard-refined");
  const PrognosticVector refined = refine_with_hazard(
      report, population, SimTime::from_months(6.0), 0.4);
  for (const double mo : {2.0, 4.0, 6.0, 9.0, 12.0}) {
    const SimTime t = SimTime::from_months(mo);
    std::printf("  %-12s %10.3f %14.3f\n",
                to_string(t).c_str(), report.probability_at(t),
                refined.probability_at(t));
  }
  std::printf("  shape: refinement pulls probabilities up for an aged\n"
              "         wear-out component, advancing maintenance.\n\n");
}

void BM_DempsterShaferStream(benchmark::State& state) {
  DiagnosticFusion fusion;
  Rng rng(1);
  const auto modes = domain::modes_in_group(LogicalGroup::Bearing);
  std::uint64_t i = 0;
  for (auto _ : state) {
    fusion.update(ObjectId(1 + i % 16), modes[i % modes.size()], 0.5);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DempsterShaferStream);

void BM_BayesNetStream(benchmark::State& state) {
  // The BN re-runs exact inference over all accumulated reports, so cost
  // grows with history; cap per-machine history like the PDME would.
  GroupBayesFusion fusion(LogicalGroup::Bearing);
  const auto modes = domain::modes_in_group(LogicalGroup::Bearing);
  std::uint64_t i = 0;
  for (auto _ : state) {
    const ObjectId machine(1 + i % 64);
    fusion.add_report(machine, {modes[i % modes.size()], 0.5});
    benchmark::DoNotOptimize(fusion.posterior(machine));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BayesNetStream);

void BM_WeibullFit(benchmark::State& state) {
  Rng rng(2);
  std::vector<LifeRecord> records;
  for (int i = 0; i < 200; ++i) {
    const double u = rng.uniform(1e-6, 1.0 - 1e-6);
    records.push_back(
        {SimTime::from_days(150.0 * std::pow(-std::log(1.0 - u), 0.5)),
         i % 5 != 0});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(WeibullModel::fit(records));
  }
  state.SetLabel("200-record MLE fits");
}
BENCHMARK(BM_WeibullFit);

void BM_HazardRefinement(benchmark::State& state) {
  const PrognosticVector report(
      {{SimTime::from_months(6.0), 0.10}, {SimTime::from_months(12.0), 0.4}});
  const WeibullModel population(3.0, 240.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(refine_with_hazard(
        report, population, SimTime::from_months(6.0), 0.4));
  }
}
BENCHMARK(BM_HazardRefinement);

}  // namespace

int main(int argc, char** argv) {
  print_diagnostic_ablation();
  print_prognostic_ablation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
