// E8 — The Fig 5 acquisition chain.
//
// Paper claims (§8): 2 MUX cards x 16 channels = 32 channels feeding a
// 4-channel digitizer; "Highest sampling rate exceeds 40,000 Hz";
// per-channel RMS detectors give "real-time and constant alarming for all
// sensors". The harness measures full-scan duty cycle, achieved sample
// rate, and alarm latency under a step fault.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "mpros/common/units.hpp"
#include "mpros/plant/chiller.hpp"
#include "mpros/plant/daq.hpp"

namespace {

using namespace mpros;
using namespace mpros::plant;

SignalSource chiller_source(ChillerSimulator& chiller) {
  // 32 channels: cycle accelerometer points; every channel gets a live
  // waveform from the plant.
  return [&chiller](std::size_t channel, double t0, double rate,
                    std::span<double> out) {
    const auto point = static_cast<MachinePoint>(channel % 3);
    chiller.acquire_vibration_at(point, t0, rate, out);
  };
}

void print_e8_summary() {
  DaqConfig cfg;
  ChillerSimulator chiller;
  chiller.advance(SimTime::from_seconds(1.0));
  DaqChain daq(cfg, chiller_source(chiller));

  const auto scan = daq.scan_all(4096, 40960.0, SimTime(0));
  const double achieved =
      static_cast<double>(scan.total_samples) / scan.duration.seconds();

  // Alarm latency: seed a severe imbalance and watch channel 0's detector.
  ChillerSimulator faulted;
  faulted.faults().schedule({domain::FailureMode::MotorImbalance, SimTime(0),
                             SimTime(0), 1.0, GrowthProfile::Step});
  faulted.advance(SimTime::from_seconds(1.0));
  DaqChain alarm_daq(cfg, chiller_source(faulted));
  alarm_daq.set_alarm_threshold(0, 0.15);  // healthy RMS is ~0.07 g
  const auto alarms =
      alarm_daq.poll_alarms(SimTime(0), SimTime::from_seconds(2.0));

  std::printf(
      "\nE8 Data Concentrator acquisition chain (paper Fig 5 / §8)\n"
      "  claim    : 32 channels via 2 MUX cards, >40 kHz sampling,\n"
      "             real-time RMS alarming on all channels\n"
      "  measured : %zu channels; full scan of 4096 samples/ch in %s\n"
      "             (%.0f samples/s aggregate through the 4-ch digitizer)\n",
      daq.channel_count(), to_string(scan.duration).c_str(), achieved);
  if (!alarms.empty()) {
    std::printf("             RMS alarm on ch%zu after %s (rms %.2f g)\n\n",
                alarms[0].channel, to_string(alarms[0].at).c_str(),
                alarms[0].rms);
  } else {
    std::printf("             RMS alarm did not fire (unexpected)\n\n");
  }
}

void BM_FullScan(benchmark::State& state) {
  ChillerSimulator chiller;
  chiller.advance(SimTime::from_seconds(1.0));
  DaqChain daq(DaqConfig{}, chiller_source(chiller));
  const auto samples = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(daq.scan_all(samples, 40960.0, SimTime(0)));
  }
  state.SetItemsProcessed(state.iterations() * samples * 32);
  state.SetLabel("samples digitized");
}
BENCHMARK(BM_FullScan)->Arg(1024)->Arg(4096);

void BM_AlarmScan(benchmark::State& state) {
  ChillerSimulator chiller;
  chiller.advance(SimTime::from_seconds(1.0));
  DaqChain daq(DaqConfig{}, chiller_source(chiller));
  for (std::size_t ch = 0; ch < daq.channel_count(); ++ch) {
    daq.set_alarm_threshold(ch, 10.0);  // never fires: measure scan cost
  }
  SimTime t(0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(daq.poll_alarms(t, SimTime::from_millis(100)));
    t += SimTime::from_millis(100);
  }
  // 32 channels x 4096 Hz x 0.1 s per iteration.
  state.SetItemsProcessed(state.iterations() * 32 * 409);
  state.SetLabel("detector samples");
}
BENCHMARK(BM_AlarmScan);

}  // namespace

int main(int argc, char** argv) {
  print_e8_summary();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
