# Empty dependencies file for dc_test.
# This may be replaced when dependencies are built.
