
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mpros/plant/chiller.cpp" "src/mpros/plant/CMakeFiles/mpros_plant.dir/chiller.cpp.o" "gcc" "src/mpros/plant/CMakeFiles/mpros_plant.dir/chiller.cpp.o.d"
  "/root/repo/src/mpros/plant/daq.cpp" "src/mpros/plant/CMakeFiles/mpros_plant.dir/daq.cpp.o" "gcc" "src/mpros/plant/CMakeFiles/mpros_plant.dir/daq.cpp.o.d"
  "/root/repo/src/mpros/plant/ema.cpp" "src/mpros/plant/CMakeFiles/mpros_plant.dir/ema.cpp.o" "gcc" "src/mpros/plant/CMakeFiles/mpros_plant.dir/ema.cpp.o.d"
  "/root/repo/src/mpros/plant/faults.cpp" "src/mpros/plant/CMakeFiles/mpros_plant.dir/faults.cpp.o" "gcc" "src/mpros/plant/CMakeFiles/mpros_plant.dir/faults.cpp.o.d"
  "/root/repo/src/mpros/plant/process.cpp" "src/mpros/plant/CMakeFiles/mpros_plant.dir/process.cpp.o" "gcc" "src/mpros/plant/CMakeFiles/mpros_plant.dir/process.cpp.o.d"
  "/root/repo/src/mpros/plant/vibration.cpp" "src/mpros/plant/CMakeFiles/mpros_plant.dir/vibration.cpp.o" "gcc" "src/mpros/plant/CMakeFiles/mpros_plant.dir/vibration.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mpros/common/CMakeFiles/mpros_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mpros/domain/CMakeFiles/mpros_domain.dir/DependInfo.cmake"
  "/root/repo/build/src/mpros/dsp/CMakeFiles/mpros_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
