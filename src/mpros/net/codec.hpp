#pragma once
// Little-endian binary codec for the wire protocol.
//
// The paper's components talk DCOM; our substitute serializes protocol
// structures to explicit byte layouts so the network simulator can delay,
// drop, duplicate and reorder them like a real transport would.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace mpros::net {

class Writer {
 public:
  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v);
  void f64(double v);
  /// Length-prefixed (u32) UTF-8 bytes.
  void str(const std::string& s);

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const { return buf_; }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Reader aborts on truncated input: messages come from our own Writer and
/// the simulated transport never corrupts payloads (it loses whole
/// messages instead, like a checksummed datagram network).
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64();
  double f64();
  std::string str();

  [[nodiscard]] bool done() const { return pos_ == data_.size(); }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

 private:
  void need(std::size_t n);

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Fail-soft reader for *untrusted* bytes — flight-recorder files and the
/// replay path, where a truncated or bit-flipped frame must produce a
/// decode error, never a crash. A failed read returns zero/empty and
/// latches ok() false; callers check ok() once at the end.
class TryReader {
 public:
  explicit TryReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64();
  double f64();
  std::string str();
  /// Decodes into `out`, reusing its capacity — the arena-decode path reads
  /// thousands of strings per second and must not allocate at steady state.
  void str(std::string& out);

  [[nodiscard]] bool ok() const { return ok_; }
  void fail() { ok_ = false; }
  [[nodiscard]] bool done() const { return pos_ == data_.size(); }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

 private:
  bool take(std::size_t n);

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace mpros::net
