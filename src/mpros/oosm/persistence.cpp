#include "mpros/oosm/persistence.hpp"

#include "mpros/common/assert.hpp"

namespace mpros::oosm {
namespace {

using db::ColumnDef;
using db::TableSchema;
using db::Value;
using db::ValueType;

TableSchema objects_schema() {
  return TableSchema{
      Persistence::kObjectsTable,
      {ColumnDef{"id", ValueType::Integer, false},
       ColumnDef{"name", ValueType::Text, false},
       ColumnDef{"kind", ValueType::Integer, false}}};
}

TableSchema properties_schema() {
  return TableSchema{
      Persistence::kPropertiesTable,
      {ColumnDef{"id", ValueType::Integer, false},
       ColumnDef{"object_id", ValueType::Integer, false},
       ColumnDef{"key", ValueType::Text, false},
       // One column per storable type; exactly one is non-null.
       ColumnDef{"int_value", ValueType::Integer, true},
       ColumnDef{"real_value", ValueType::Real, true},
       ColumnDef{"text_value", ValueType::Text, true}}};
}

TableSchema relations_schema() {
  return TableSchema{
      Persistence::kRelationsTable,
      {ColumnDef{"id", ValueType::Integer, false},
       ColumnDef{"from_id", ValueType::Integer, false},
       ColumnDef{"relation", ValueType::Integer, false},
       ColumnDef{"to_id", ValueType::Integer, false}}};
}

}  // namespace

void Persistence::save(const ObjectModel& model, db::Database& db) {
  for (const char* table :
       {kObjectsTable, kPropertiesTable, kRelationsTable}) {
    if (db.has_table(table)) db.drop_table(table);
  }
  db::Table& objects = db.create_table(objects_schema());
  db::Table& properties = db.create_table(properties_schema());
  db::Table& relations = db.create_table(relations_schema());
  properties.create_index("object_id");
  relations.create_index("from_id");

  for (const ObjectId id : model.all_objects()) {
    objects.insert({Value(static_cast<std::int64_t>(id.value())),
                    Value(model.name(id)),
                    Value(static_cast<std::int64_t>(model.kind(id)))});

    for (const auto& [key, value] : model.properties(id)) {
      Value int_v, real_v, text_v;
      switch (value.type()) {
        case ValueType::Integer: int_v = value; break;
        case ValueType::Real: real_v = value; break;
        case ValueType::Text: text_v = value; break;
        case ValueType::Null: break;
      }
      properties.insert_auto({Value(static_cast<std::int64_t>(id.value())),
                              Value(key), int_v, real_v, text_v});
    }

    for (std::size_t r = 0; r < kRelationCount; ++r) {
      const auto relation = static_cast<Relation>(r);
      for (const ObjectId to : model.related(id, relation)) {
        relations.insert_auto({Value(static_cast<std::int64_t>(id.value())),
                               Value(static_cast<std::int64_t>(r)),
                               Value(static_cast<std::int64_t>(to.value()))});
      }
    }
  }
}

DurableModelJournal::DurableModelJournal(ObjectModel& model, db::Database& db)
    : model_(model), db_(db) {
  if (db_.has_table(Persistence::kObjectsTable)) {
    adopt_tables();
  } else {
    create_tables();
  }
  subscription_ =
      model_.subscribe([this](const OosmEvent& event) { on_event(event); });
}

DurableModelJournal::~DurableModelJournal() {
  model_.unsubscribe(subscription_);
}

void DurableModelJournal::create_tables() {
  db_.create_table(objects_schema());
  db_.create_table(properties_schema());
  db_.create_table(relations_schema());
  db_.create_index(Persistence::kPropertiesTable, "object_id");
  db_.create_index(Persistence::kRelationsTable, "from_id");
}

void DurableModelJournal::adopt_tables() {
  for (const auto& [row_key, row] :
       db_.table(Persistence::kPropertiesTable).rows()) {
    const auto object = static_cast<std::uint64_t>(row[1].as_integer());
    db::ValueType type = db::ValueType::Null;
    if (!row[3].is_null()) {
      type = db::ValueType::Integer;
    } else if (!row[4].is_null()) {
      type = db::ValueType::Real;
    } else if (!row[5].is_null()) {
      type = db::ValueType::Text;
    }
    prop_rows_.emplace(std::pair{object, row[2].as_text()},
                       PropRow{row_key, type});
  }
  for (const auto& [row_key, row] :
       db_.table(Persistence::kRelationsTable).rows()) {
    relation_rows_.emplace(static_cast<std::uint64_t>(row[1].as_integer()),
                           row_key);
    relation_rows_.emplace(static_cast<std::uint64_t>(row[3].as_integer()),
                           row_key);
  }
}

namespace {

const char* typed_column(ValueType type) {
  switch (type) {
    case ValueType::Integer: return "int_value";
    case ValueType::Real: return "real_value";
    case ValueType::Text: return "text_value";
    case ValueType::Null: break;
  }
  return nullptr;
}

}  // namespace

void DurableModelJournal::upsert_property(ObjectId id, const std::string& key) {
  const std::optional<Value> value = model_.property(id, key);
  const Value v = value.value_or(Value());
  const ValueType type = v.type();

  const auto map_key = std::pair{id.value(), key};
  const auto it = prop_rows_.find(map_key);
  if (it == prop_rows_.end()) {
    Value int_v, real_v, text_v;
    switch (type) {
      case ValueType::Integer: int_v = v; break;
      case ValueType::Real: real_v = v; break;
      case ValueType::Text: text_v = v; break;
      case ValueType::Null: break;
    }
    const std::int64_t row = db_.insert_auto(
        Persistence::kPropertiesTable,
        {Value(static_cast<std::int64_t>(id.value())), Value(key), int_v,
         real_v, text_v});
    prop_rows_.emplace(map_key, PropRow{row, type});
    return;
  }

  PropRow& rec = it->second;
  if (rec.type != type && rec.type != ValueType::Null) {
    db_.update(Persistence::kPropertiesTable, rec.row, typed_column(rec.type),
               Value());
  }
  if (type != ValueType::Null) {
    db_.update(Persistence::kPropertiesTable, rec.row, typed_column(type), v);
  }
  rec.type = type;
}

void DurableModelJournal::on_event(const OosmEvent& event) {
  const auto object_key = static_cast<std::int64_t>(event.object.value());
  switch (event.kind) {
    case OosmEvent::Kind::ObjectCreated: {
      db_.insert(Persistence::kObjectsTable,
                 {Value(object_key), Value(model_.name(event.object)),
                  Value(static_cast<std::int64_t>(model_.kind(event.object)))});
      // create_object_bulk readies properties before the single event.
      for (const auto& [key, value] : model_.properties(event.object)) {
        upsert_property(event.object, key);
      }
      break;
    }
    case OosmEvent::Kind::PropertyChanged:
      upsert_property(event.object, event.property);
      break;
    case OosmEvent::Kind::RelationAdded: {
      const std::int64_t row = db_.insert_auto(
          Persistence::kRelationsTable,
          {Value(object_key),
           Value(static_cast<std::int64_t>(event.relation)),
           Value(static_cast<std::int64_t>(event.other.value()))});
      relation_rows_.emplace(event.object.value(), row);
      relation_rows_.emplace(event.other.value(), row);
      break;
    }
    case OosmEvent::Kind::ObjectDeleted: {
      db_.erase(Persistence::kObjectsTable, object_key);
      const auto lo = prop_rows_.lower_bound({event.object.value(), ""});
      auto hi = lo;
      while (hi != prop_rows_.end() &&
             hi->first.first == event.object.value()) {
        db_.erase(Persistence::kPropertiesTable, hi->second.row);
        ++hi;
      }
      prop_rows_.erase(lo, hi);
      auto [rlo, rhi] = relation_rows_.equal_range(event.object.value());
      for (auto it = rlo; it != rhi; ++it) {
        // False when the other endpoint's deletion already erased the row.
        db_.erase(Persistence::kRelationsTable, it->second);
      }
      relation_rows_.erase(rlo, rhi);
      break;
    }
  }
}

ObjectModel Persistence::load(const db::Database& db) {
  ObjectModel model;

  const db::Table& objects = db.table(kObjectsTable);
  for (const db::Row& row : objects.select()) {
    const ObjectId id(static_cast<std::uint64_t>(row[0].as_integer()));
    model.create_object_with_id(
        id, row[1].as_text(),
        static_cast<domain::EquipmentKind>(row[2].as_integer()));
  }

  const db::Table& properties = db.table(kPropertiesTable);
  for (const db::Row& row : properties.select()) {
    const ObjectId object(static_cast<std::uint64_t>(row[1].as_integer()));
    const std::string& key = row[2].as_text();
    if (!row[3].is_null()) {
      model.set_property(object, key, row[3]);
    } else if (!row[4].is_null()) {
      model.set_property(object, key, row[4]);
    } else if (!row[5].is_null()) {
      model.set_property(object, key, row[5]);
    } else {
      model.set_property(object, key, Value());
    }
  }

  const db::Table& relations = db.table(kRelationsTable);
  for (const db::Row& row : relations.select()) {
    const ObjectId from(static_cast<std::uint64_t>(row[1].as_integer()));
    const auto relation = static_cast<Relation>(row[2].as_integer());
    const ObjectId to(static_cast<std::uint64_t>(row[3].as_integer()));
    if (!model.has_relation(from, relation, to)) {
      model.relate(from, relation, to);
    }
  }
  return model;
}

}  // namespace mpros::oosm
