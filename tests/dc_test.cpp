// Data Concentrator tests: scheduler, analyzer orchestration, DC database,
// report emission.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "mpros/dc/data_concentrator.hpp"
#include "mpros/dc/scheduler.hpp"
#include "mpros/dc/supervisor.hpp"

namespace mpros::dc {
namespace {

using domain::FailureMode;

TEST(EventSchedulerTest, PeriodicTasksFireInOrder) {
  EventScheduler sched;
  std::vector<std::pair<std::string, double>> log;
  sched.add_periodic("fast", SimTime::from_seconds(10), SimTime::from_seconds(10),
                     [&](SimTime now) { log.push_back({"fast", now.seconds()}); });
  sched.add_periodic("slow", SimTime::from_seconds(25), SimTime::from_seconds(25),
                     [&](SimTime now) { log.push_back({"slow", now.seconds()}); });

  sched.run_until(SimTime::from_seconds(50));
  // fast: 10,20,30,40,50; slow: 25,50.
  ASSERT_EQ(log.size(), 7u);
  EXPECT_EQ(log[0].first, "fast");
  EXPECT_EQ(log[2].first, "slow");
  double prev = 0.0;
  for (const auto& [name, t] : log) {
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST(EventSchedulerTest, RunUntilReturnsExecutionCount) {
  EventScheduler sched;
  sched.add_periodic("t", SimTime::from_seconds(1), SimTime::from_seconds(1),
                     [](SimTime) {});
  EXPECT_EQ(sched.run_until(SimTime::from_seconds(5)), 5u);
  EXPECT_EQ(sched.run_until(SimTime::from_seconds(5)), 0u);  // nothing new
}

TEST(EventSchedulerTest, RequestNowInjectsExtraRun) {
  EventScheduler sched;
  int runs = 0;
  const auto id = sched.add_periodic("t", SimTime::from_seconds(100),
                                     SimTime::from_seconds(100),
                                     [&](SimTime) { ++runs; });
  sched.request_now(id);
  sched.run_until(SimTime::from_seconds(1));
  EXPECT_EQ(runs, 1);  // on-demand run before the first natural slot
  sched.run_until(SimTime::from_seconds(100));
  EXPECT_EQ(runs, 2);  // natural period unaffected
}

class DataConcentratorTest : public ::testing::Test {
 protected:
  DataConcentratorTest() : chiller_(make_chiller_config()) {}

  static plant::ChillerConfig make_chiller_config() {
    plant::ChillerConfig cfg;
    cfg.load_fraction = 0.85;
    cfg.seed = 0xD0;
    return cfg;
  }

  DcConfig dc_config() {
    DcConfig cfg;
    cfg.id = DcId(7);
    cfg.vibration_period = SimTime::from_seconds(300);
    cfg.process_period = SimTime::from_seconds(60);
    return cfg;
  }

  MachineRefs refs_{ObjectId(1), ObjectId(2), ObjectId(3), ObjectId(4)};
  plant::ChillerSimulator chiller_;
};

TEST_F(DataConcentratorTest, HealthyPlantStaysMostlyQuiet) {
  DataConcentrator dc(dc_config(), refs_, chiller_);
  const auto reports = dc.advance_to(SimTime::from_hours(1.0));
  EXPECT_LE(reports.size(), 2u);  // noise may cause an occasional blip
  EXPECT_EQ(dc.stats().vibration_tests, 12u);
  EXPECT_EQ(dc.stats().process_scans, 60u);
}

TEST_F(DataConcentratorTest, ImbalanceProducesDliReportAgainstMotor) {
  chiller_.faults().schedule({FailureMode::MotorImbalance, SimTime(0),
                              SimTime(0), 0.9,
                              plant::GrowthProfile::Step});
  DataConcentrator dc(dc_config(), refs_, chiller_);
  const auto reports = dc.advance_to(SimTime::from_hours(1.0));

  bool found = false;
  for (const net::FailureReport& r : reports) {
    if (r.machine_condition ==
            domain::condition_id(FailureMode::MotorImbalance) &&
        r.knowledge_source == kDliExpertSystem) {
      found = true;
      EXPECT_EQ(r.sensed_object, refs_.motor);
      EXPECT_EQ(r.dc, DcId(7));
      EXPECT_GT(r.severity, 0.3);
      EXPECT_GT(r.belief, 0.5);
      EXPECT_FALSE(r.prognostics.empty());
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(DataConcentratorTest, ProcessFaultProducesFuzzyReport) {
  chiller_.faults().schedule({FailureMode::RefrigerantLeak, SimTime(0),
                              SimTime(0), 1.0, plant::GrowthProfile::Step});
  DataConcentrator dc(dc_config(), refs_, chiller_);
  const auto reports = dc.advance_to(SimTime::from_hours(1.0));

  bool fuzzy_found = false;
  for (const net::FailureReport& r : reports) {
    if (r.knowledge_source == kFuzzyLogic &&
        r.machine_condition ==
            domain::condition_id(FailureMode::RefrigerantLeak)) {
      fuzzy_found = true;
      EXPECT_EQ(r.sensed_object, refs_.chiller);
    }
  }
  EXPECT_TRUE(fuzzy_found);
}

TEST_F(DataConcentratorTest, SbfrThresholdMachineReportsOnTrend) {
  // A hard bearing-temperature fault drives the SBFR threshold machine.
  chiller_.faults().schedule({FailureMode::CompressorBearingWear, SimTime(0),
                              SimTime(0), 1.0, plant::GrowthProfile::Step});
  DataConcentrator dc(dc_config(), refs_, chiller_);
  const auto reports = dc.advance_to(SimTime::from_hours(2.0));

  bool sbfr_found = false;
  for (const net::FailureReport& r : reports) {
    if (r.knowledge_source == kSbfr) sbfr_found = true;
  }
  EXPECT_TRUE(sbfr_found);
}

TEST_F(DataConcentratorTest, DatabaseAccumulatesMeasurementsAndDiagnostics) {
  chiller_.faults().schedule({FailureMode::MotorImbalance, SimTime(0),
                              SimTime(0), 0.9, plant::GrowthProfile::Step});
  DataConcentrator dc(dc_config(), refs_, chiller_);
  dc.advance_to(SimTime::from_hours(1.0));

  // 60 process scans x 11 variables.
  EXPECT_EQ(dc.database().table("measurements").row_count(), 60u * 11u);
  EXPECT_GT(dc.database().table("diagnostics").row_count(), 0u);
  EXPECT_GT(dc.database().table("test_log").row_count(), 0u);

  // Diagnostics are queryable by condition id via the secondary index.
  const auto keys = dc.database().table("diagnostics").lookup(
      "condition",
      db::Value(static_cast<std::int64_t>(
          domain::condition_id(FailureMode::MotorImbalance).value())));
  EXPECT_FALSE(keys.empty());
}

TEST_F(DataConcentratorTest, OnDemandVibrationTestRunsEarly) {
  chiller_.faults().schedule({FailureMode::MotorImbalance, SimTime(0),
                              SimTime(0), 0.9, plant::GrowthProfile::Step});
  DataConcentrator dc(dc_config(), refs_, chiller_);
  dc.request_vibration_test();
  const auto reports = dc.advance_to(SimTime::from_seconds(30.0));
  // The periodic slot (300 s) has not arrived, yet the commanded test ran.
  EXPECT_EQ(dc.stats().vibration_tests, 1u);
  EXPECT_FALSE(reports.empty());
}

TEST_F(DataConcentratorTest, DisabledAnalyzersStaySilent) {
  chiller_.faults().schedule({FailureMode::MotorImbalance, SimTime(0),
                              SimTime(0), 0.9, plant::GrowthProfile::Step});
  DcConfig cfg = dc_config();
  cfg.enable_dli = false;
  cfg.enable_fuzzy = false;
  cfg.enable_sbfr = false;
  DataConcentrator dc(cfg, refs_, chiller_);
  const auto reports = dc.advance_to(SimTime::from_hours(1.0));
  EXPECT_TRUE(reports.empty());
}

TEST_F(DataConcentratorTest, KnowledgeSourceNames) {
  EXPECT_STREQ(knowledge_source_name(kDliExpertSystem), "DLI Expert System");
  EXPECT_STREQ(knowledge_source_name(kSbfr), "SBFR");
  EXPECT_STREQ(knowledge_source_name(kWaveletNeuralNet),
               "Wavelet Neural Net");
  EXPECT_STREQ(knowledge_source_name(kFuzzyLogic), "Fuzzy Logic");
  EXPECT_STREQ(knowledge_source_name(kSensorValidator), "Sensor Validator");
}

// --- Sensor validation -------------------------------------------------------

TEST(SensorValidatorTest, FlatlineWindowQuarantinesThenCleanRunsRelease) {
  SensorValidator v;
  const std::vector<double> stuck(256, 4.2);
  std::vector<double> live(256, 0.0);
  for (std::size_t i = 0; i < live.size(); ++i) {
    live[i] = 0.1 * static_cast<double>(i % 7);
  }

  const auto verdict = v.check_window("vib.motor", stuck);
  ASSERT_TRUE(verdict.fault.has_value());
  EXPECT_EQ(*verdict.fault, domain::SensorFaultKind::Flatline);
  EXPECT_TRUE(verdict.newly_quarantined);
  EXPECT_TRUE(v.quarantined("vib.motor"));

  // Three consecutive clean acquisitions restore trust (release_after=3).
  EXPECT_FALSE(v.check_window("vib.motor", live).released);
  EXPECT_FALSE(v.check_window("vib.motor", live).released);
  const auto released = v.check_window("vib.motor", live);
  EXPECT_TRUE(released.released);
  ASSERT_TRUE(released.cleared_kind.has_value());
  EXPECT_EQ(*released.cleared_kind, domain::SensorFaultKind::Flatline);
  EXPECT_FALSE(v.quarantined("vib.motor"));
  EXPECT_EQ(v.stats().quarantines, 1u);
  EXPECT_EQ(v.stats().releases, 1u);
}

TEST(SensorValidatorTest, DropoutRangeAndSpikeScreens) {
  SensorValidator v;
  std::vector<double> w(256, 0.0);
  for (std::size_t i = 0; i < w.size(); ++i) {
    w[i] = 0.5 * static_cast<double>(i % 11) - 2.0;
  }

  std::vector<double> with_nan = w;
  with_nan[100] = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(v.check_window("vib.gearbox", with_nan).fault,
            domain::SensorFaultKind::Dropout);

  std::vector<double> biased = w;
  for (double& s : biased) s += 500.0;  // way past the 80 g accel range
  EXPECT_EQ(v.check_window("vib.compressor", biased).fault,
            domain::SensorFaultKind::OutOfRange);

  std::vector<double> spiky = w;
  for (std::size_t i = 0; i < spiky.size(); i += 32) spiky[i] = 300.0;
  EXPECT_EQ(v.check_window("current.motor", spiky).fault,
            domain::SensorFaultKind::Spike);

  // Scalar screens: NaN reading and physically absurd temperature.
  EXPECT_EQ(v.check_value("process.oil_temp_c",
                          std::numeric_limits<double>::quiet_NaN())
                .fault,
            domain::SensorFaultKind::Dropout);
  EXPECT_EQ(v.check_value("process.oil_temp_c", 900.0).fault,
            domain::SensorFaultKind::OutOfRange);
}

TEST(SensorValidatorTest, ScalarStuckAtNeedsExactRepeats) {
  SensorValidator v;
  // Three identical readings are still believable...
  EXPECT_FALSE(v.check_value("process.bearing_temp_c", 55.1).fault.has_value());
  EXPECT_FALSE(v.check_value("process.bearing_temp_c", 55.1).fault.has_value());
  EXPECT_FALSE(v.check_value("process.bearing_temp_c", 55.1).fault.has_value());
  // ...the fourth exact repeat is a frozen loop.
  EXPECT_EQ(v.check_value("process.bearing_temp_c", 55.1).fault,
            domain::SensorFaultKind::Flatline);
  EXPECT_TRUE(v.quarantined("process.bearing_temp_c"));
}

TEST(SensorValidatorTest, ExemptChannelsMayRepeatExactly) {
  // The commanded-load echo carries no instrument noise; exact repeats are
  // its normal behavior, not a stuck DAC.
  SensorValidator v;
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(v.check_value("process.load", 0.85).fault.has_value());
  }
  EXPECT_FALSE(v.quarantined("process.load"));
}

TEST_F(DataConcentratorTest, StuckAccelerometerQuarantinedAndReported) {
  chiller_.sensor_faults().schedule(
      {plant::vibration_channel(plant::MachinePoint::Motor),
       plant::SensorFaultType::StuckAt, SimTime(0), SimTime::from_hours(2.0),
       3.3});
  DataConcentrator dc(dc_config(), refs_, chiller_);
  const auto reports = dc.advance_to(SimTime::from_hours(1.0));

  EXPECT_TRUE(dc.validator().quarantined("vib.motor"));
  EXPECT_GE(dc.stats().sensor_fault_reports, 1u);
  bool found = false;
  for (const net::FailureReport& r : reports) {
    if (r.knowledge_source != kSensorValidator) continue;
    found = true;
    EXPECT_EQ(r.machine_condition,
              domain::sensor_fault_condition(domain::SensorFaultKind::Flatline));
    EXPECT_DOUBLE_EQ(r.severity, 1.0);
    EXPECT_NE(r.explanation.find("vib.motor"), std::string::npos);
  }
  EXPECT_TRUE(found);
  // The motor channel is muzzled but the rest of the train still runs.
  EXPECT_EQ(dc.stats().vibration_tests, 12u);
}

TEST_F(DataConcentratorTest, QuarantineSuppressesFalseMachineryDiagnoses) {
  // An open-circuit bearing RTD reads NaN: without validation the fuzzy
  // analyzer would be fed garbage; with it, the channel is quarantined and
  // no machinery conclusion cites it.
  chiller_.sensor_faults().schedule({"process.bearing_temp_c",
                                     plant::SensorFaultType::Dropout,
                                     SimTime(0), SimTime::from_hours(2.0)});
  DataConcentrator dc(dc_config(), refs_, chiller_);
  const auto reports = dc.advance_to(SimTime::from_hours(1.0));

  EXPECT_TRUE(dc.validator().quarantined("process.bearing_temp_c"));
  for (const net::FailureReport& r : reports) {
    EXPECT_TRUE(std::isfinite(r.severity));
    EXPECT_TRUE(std::isfinite(r.belief));
  }
  EXPECT_EQ(dc.stats().process_scans, 60u);  // scans keep running
}

TEST_F(DataConcentratorTest, SensorRecoveryEmitsAllClear) {
  // Fault window covers only the first 10 minutes; after three clean scans
  // the channel is trusted again and a severity-0 report goes out.
  chiller_.sensor_faults().schedule({"process.oil_temp_c",
                                     plant::SensorFaultType::OutOfRange,
                                     SimTime(0), SimTime::from_seconds(600),
                                     900.0});
  DataConcentrator dc(dc_config(), refs_, chiller_);
  const auto reports = dc.advance_to(SimTime::from_hours(1.0));

  EXPECT_FALSE(dc.validator().quarantined("process.oil_temp_c"));
  bool quarantined_seen = false;
  bool cleared_seen = false;
  for (const net::FailureReport& r : reports) {
    if (r.knowledge_source != kSensorValidator) continue;
    if (r.severity > 0.5) quarantined_seen = true;
    if (r.severity == 0.0 &&
        r.explanation.find("process.oil_temp_c") != std::string::npos) {
      cleared_seen = true;
    }
  }
  EXPECT_TRUE(quarantined_seen);
  EXPECT_TRUE(cleared_seen);
  EXPECT_EQ(dc.validator().stats().releases, 1u);
}

TEST_F(DataConcentratorTest, HeartbeatsAccumulateInWireOutbox) {
  DcConfig cfg = dc_config();
  cfg.heartbeat_period = SimTime::from_seconds(60.0);
  cfg.desync_phase = false;  // pin the beat grid; phasing has its own test
  DataConcentrator dc(cfg, refs_, chiller_);
  (void)dc.advance_to(SimTime::from_seconds(600));

  auto wire = dc.drain_wire_outbox();
  EXPECT_EQ(dc.stats().heartbeats_sent, 10u);
  std::size_t heartbeats = 0;
  for (const auto& dgram : wire) {
    const auto hb = net::try_unwrap_heartbeat(dgram.payload);
    if (!hb.has_value()) continue;
    ++heartbeats;
    EXPECT_EQ(hb->dc, DcId(7));
    EXPECT_EQ(hb->timestamp, dgram.at);
  }
  EXPECT_EQ(heartbeats, 10u);
  EXPECT_TRUE(dc.drain_wire_outbox().empty());  // drained
}

TEST(EventSchedulerTest, SetPeriodTakesEffectAtNextReschedule) {
  EventScheduler sched;
  std::vector<double> fired;
  const auto id = sched.add_periodic(
      "t", SimTime::from_seconds(100), SimTime::from_seconds(100),
      [&](SimTime now) { fired.push_back(now.seconds()); });
  EXPECT_EQ(sched.period(id), SimTime::from_seconds(100));

  // The already-queued slot at t=100 keeps its place; later slots use the
  // new period.
  sched.set_period(id, SimTime::from_seconds(25));
  EXPECT_EQ(sched.period(id), SimTime::from_seconds(25));
  sched.run_until(SimTime::from_seconds(200));
  ASSERT_EQ(fired.size(), 5u);
  EXPECT_DOUBLE_EQ(fired[0], 100.0);
  EXPECT_DOUBLE_EQ(fired[1], 125.0);
  EXPECT_DOUBLE_EQ(fired[4], 200.0);
}

// ---------------------------------------------------------------------------
// The runtime control plane (§4.9): apply, reject, persist, recover.

TEST_F(DataConcentratorTest, ApplyCommandAppliesRejectsAndCounts) {
  DataConcentrator dc(dc_config(), refs_, chiller_);
  ASSERT_EQ(dc.config_revision(), 0u);

  net::CommandMessage cmd;
  cmd.target = DcId(7);
  cmd.revision = 5;
  cmd.settings = {{"dc.report_hysteresis", 0.10},
                  {"validator.spike_sigmas", 9.0},
                  {"dc.enable_fuzzy", 0.0},
                  {"dc.nonsense", 1.0},            // unknown key
                  {"dc.report_hysteresis", 5.0},   // out of range
                  {"dc.enable_dli", 0.5}};         // toggles are exact 0/1
  cmd.reason = "test churn";
  dc.apply_command(cmd, SimTime::from_seconds(10.0));

  EXPECT_EQ(dc.config_revision(), 5u);
  EXPECT_EQ(dc.stats().config_commands, 1u);
  EXPECT_EQ(dc.stats().config_applied, 3u);
  EXPECT_EQ(dc.stats().config_rejected, 3u);
  EXPECT_EQ(dc.runtime_setting("dc.report_hysteresis"), 0.10);
  EXPECT_EQ(dc.runtime_setting("validator.spike_sigmas"), 9.0);
  EXPECT_EQ(dc.runtime_setting("dc.enable_fuzzy"), 0.0);
  EXPECT_EQ(dc.runtime_setting("dc.enable_dli"), 1.0);  // reject left it be
  EXPECT_FALSE(dc.runtime_setting("dc.nonsense").has_value());

  // A disordered older revision is a stale no-op, not a rollback.
  net::CommandMessage old_cmd;
  old_cmd.target = DcId(7);
  old_cmd.revision = 3;
  old_cmd.settings = {{"dc.report_hysteresis", 0.01}};
  dc.apply_command(old_cmd, SimTime::from_seconds(20.0));
  EXPECT_EQ(dc.config_revision(), 5u);
  EXPECT_EQ(dc.stats().config_stale, 1u);
  EXPECT_EQ(dc.runtime_setting("dc.report_hysteresis"), 0.10);
}

TEST_F(DataConcentratorTest, CommandEnvelopeOverWireAppliesOnceAndAcks) {
  DataConcentrator dc(dc_config(), refs_, chiller_);

  net::CommandEnvelope env;
  env.dc = DcId(7);
  env.sequence = 1;
  env.command.target = DcId(7);
  env.command.revision = 1;
  env.command.settings = {{"dc.wnn_report_threshold", 0.6}};
  const net::Message msg{"pdme", "dc-7", net::wrap(env), SimTime(0),
                         SimTime::from_seconds(1.0)};
  dc.handle_wire(msg);
  EXPECT_EQ(dc.runtime_setting("dc.wnn_report_threshold"), 0.6);
  EXPECT_EQ(dc.stats().config_commands, 1u);

  // The retransmitted duplicate is re-acked but not re-applied.
  dc.handle_wire(msg);
  EXPECT_EQ(dc.stats().config_commands, 1u);

  std::size_t acks = 0;
  for (const auto& dgram : dc.drain_wire_outbox()) {
    const auto ack = net::try_unwrap_ack(dgram.payload);
    if (!ack.has_value()) continue;
    ++acks;
    EXPECT_EQ(ack->dc, DcId(7));
    EXPECT_EQ(ack->cumulative, 1u);
  }
  EXPECT_EQ(acks, 2u);

  // A command mis-routed to the wrong DC is ignored entirely.
  env.command.target = DcId(9);
  env.dc = DcId(9);
  env.sequence = 2;
  dc.handle_wire({"pdme", "dc-7", net::wrap(env), SimTime(0),
                  SimTime::from_seconds(2.0)});
  EXPECT_EQ(dc.stats().config_commands, 1u);
}

TEST_F(DataConcentratorTest, PersistedConfigSurvivesSalvageRestart) {
  DcConfig cfg = dc_config();
  DataConcentrator dc(cfg, refs_, chiller_);
  (void)dc.advance_to(SimTime::from_seconds(120.0));

  net::CommandMessage cmd;
  cmd.target = DcId(7);
  cmd.revision = 4;
  cmd.settings = {{"validator.spike_sigmas", 8.5},
                  {"dc.report_hysteresis", 0.12},
                  {"dc.enable_sbfr", 0.0}};
  dc.apply_command(cmd, SimTime::from_seconds(130.0));

  // Rebuild from the carcass: the recovered DC must come back with its
  // last-acked configuration, not the factory template.
  DataConcentrator recovered(cfg, refs_, chiller_, nullptr, dc.salvage());
  EXPECT_EQ(recovered.config_revision(), 4u);
  EXPECT_EQ(recovered.runtime_setting("validator.spike_sigmas"), 8.5);
  EXPECT_EQ(recovered.runtime_setting("dc.report_hysteresis"), 0.12);
  EXPECT_EQ(recovered.runtime_setting("dc.enable_sbfr"), 0.0);
  // Recovery re-applies quietly: the counters carry over unchanged.
  EXPECT_EQ(recovered.stats().config_applied, 3u);

  // And the revision gate still holds after the restart.
  net::CommandMessage stale;
  stale.target = DcId(7);
  stale.revision = 2;
  stale.settings = {{"validator.spike_sigmas", 3.0}};
  recovered.apply_command(stale, SimTime::from_seconds(200.0));
  EXPECT_EQ(recovered.runtime_setting("validator.spike_sigmas"), 8.5);
}

TEST_F(DataConcentratorTest, WedgedDcFreezesProgressAndIgnoresWire) {
  DataConcentrator dc(dc_config(), refs_, chiller_);
  (void)dc.advance_to(SimTime::from_seconds(60.0));
  const std::uint64_t tick = dc.progress();
  EXPECT_GT(tick, 0u);

  dc.set_wedged(true);
  EXPECT_TRUE(dc.advance_to(SimTime::from_seconds(600.0)).empty());
  EXPECT_EQ(dc.progress(), tick);  // the tick the supervisor watches froze

  net::CommandEnvelope env;
  env.dc = DcId(7);
  env.sequence = 1;
  env.command.target = DcId(7);
  env.command.revision = 1;
  env.command.settings = {{"dc.report_hysteresis", 0.2}};
  dc.handle_wire({"pdme", "dc-7", net::wrap(env), SimTime(0),
                  SimTime::from_seconds(90.0)});
  EXPECT_EQ(dc.stats().config_commands, 0u);  // wire input ignored too

  dc.set_wedged(false);
  (void)dc.advance_to(SimTime::from_seconds(660.0));
  EXPECT_GT(dc.progress(), tick);
}

TEST(DcSupervisorTest, DetectsWedgeRearmsAndCountsRestarts) {
  DcSupervisorConfig cfg;
  cfg.wedge_timeout = SimTime::from_seconds(300.0);
  DcSupervisor sup(cfg);
  const DcId dc(3);

  EXPECT_FALSE(sup.observe(dc, 1, SimTime::from_seconds(0.0)));
  EXPECT_FALSE(sup.observe(dc, 2, SimTime::from_seconds(60.0)));
  // Progress freezes at tick 2; the verdict fires once the silence exceeds
  // the timeout, and only once (re-armed until progress moves again).
  EXPECT_FALSE(sup.observe(dc, 2, SimTime::from_seconds(300.0)));
  EXPECT_TRUE(sup.observe(dc, 2, SimTime::from_seconds(361.0)));
  EXPECT_FALSE(sup.observe(dc, 2, SimTime::from_seconds(420.0)));
  EXPECT_EQ(sup.stats().wedges_detected, 1u);

  sup.notify_restarted(dc, 7, SimTime::from_seconds(480.0));
  EXPECT_EQ(sup.stats().restarts, 1u);
  EXPECT_FALSE(sup.observe(dc, 8, SimTime::from_seconds(540.0)));
  // A healthy DC that keeps ticking never trips the watchdog.
  EXPECT_FALSE(sup.observe(dc, 9, SimTime::from_seconds(900.0)));

  // The replacement wedging again is caught again.
  EXPECT_FALSE(sup.observe(dc, 9, SimTime::from_seconds(1000.0)));
  EXPECT_TRUE(sup.observe(dc, 9, SimTime::from_seconds(1300.0)));
  EXPECT_EQ(sup.stats().wedges_detected, 2u);
}

}  // namespace
}  // namespace mpros::dc
