# Empty dependencies file for bench_dli_accuracy.
# This may be replaced when dependencies are built.
