#pragma once
// Envelope (demodulation) analysis for rolling-element bearings.
//
// Bearing defects excite high-frequency structural resonances at the defect
// passing rate; the envelope spectrum of the band-passed signal shows the
// defect tone directly. Standard practice in the DLI-style rule set.

#include <cstddef>
#include <span>
#include <vector>

namespace mpros::dsp {

/// Analytic-signal magnitude |x + i*H(x)| via the FFT method. Output has the
/// same length as the input (input is internally zero-padded to a power of
/// two; the pad is discarded).
[[nodiscard]] std::vector<double> envelope(std::span<const double> x);

/// Allocation-free variant: writes the envelope into `out`, reusing its
/// capacity (steady-state zero-allocation on the acquisition loop).
void envelope(std::span<const double> x, std::vector<double>& out);

/// Envelope after an FFT-domain band-pass in [lo_hz, hi_hz]; this is the
/// classic "high-frequency resonance technique" front end.
[[nodiscard]] std::vector<double> envelope_bandpassed(
    std::span<const double> x, double sample_rate_hz, double lo_hz,
    double hi_hz);

/// Allocation-free variant of envelope_bandpassed.
void envelope_bandpassed(std::span<const double> x, double sample_rate_hz,
                         double lo_hz, double hi_hz,
                         std::vector<double>& out);

}  // namespace mpros::dsp
