// Object-Oriented Ship Model tests: objects, properties, relationships,
// events, persistence mapping, spatial queries, ship builder.

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "mpros/db/snapshot.hpp"
#include "mpros/oosm/object_model.hpp"
#include "mpros/oosm/persistence.hpp"
#include "mpros/oosm/ship_builder.hpp"

namespace mpros::oosm {
namespace {

using domain::EquipmentKind;

TEST(ObjectModelTest, CreateFindDelete) {
  ObjectModel m;
  const ObjectId motor = m.create_object("Motor 1", EquipmentKind::InductionMotor);
  EXPECT_TRUE(m.exists(motor));
  EXPECT_EQ(m.name(motor), "Motor 1");
  EXPECT_EQ(m.kind(motor), EquipmentKind::InductionMotor);
  EXPECT_EQ(m.find_by_name("Motor 1"), motor);
  EXPECT_FALSE(m.find_by_name("nope").has_value());

  m.delete_object(motor);
  EXPECT_FALSE(m.exists(motor));
  EXPECT_EQ(m.object_count(), 0u);
}

TEST(ObjectModelTest, PropertiesTypedAndOverwritable) {
  ObjectModel m;
  const ObjectId o = m.create_object("x", EquipmentKind::Sensor);
  m.set_property(o, "capacity", 450.0);
  m.set_property(o, "manufacturer", "York");
  EXPECT_DOUBLE_EQ(m.property(o, "capacity")->as_real(), 450.0);
  EXPECT_EQ(m.property(o, "manufacturer")->as_text(), "York");
  EXPECT_FALSE(m.property(o, "missing").has_value());
  m.set_property(o, "capacity", 500.0);
  EXPECT_DOUBLE_EQ(m.property(o, "capacity")->as_real(), 500.0);
  EXPECT_EQ(m.properties(o).size(), 2u);
}

TEST(ObjectModelTest, RelationsForwardAndInverse) {
  ObjectModel m;
  const ObjectId chiller = m.create_object("chiller", EquipmentKind::Chiller);
  const ObjectId motor = m.create_object("motor", EquipmentKind::InductionMotor);
  m.relate(motor, Relation::PartOf, chiller);

  EXPECT_TRUE(m.has_relation(motor, Relation::PartOf, chiller));
  EXPECT_FALSE(m.has_relation(chiller, Relation::PartOf, motor));
  EXPECT_EQ(m.related(motor, Relation::PartOf).size(), 1u);
  EXPECT_EQ(m.related_to(chiller, Relation::PartOf).size(), 1u);
  EXPECT_EQ(m.parent_of(motor), chiller);
  EXPECT_FALSE(m.parent_of(chiller).has_value());
}

TEST(ObjectModelTest, ProximityIsSymmetric) {
  ObjectModel m;
  const ObjectId a = m.create_object("a", EquipmentKind::CentrifugalPump);
  const ObjectId b = m.create_object("b", EquipmentKind::Evaporator);
  m.relate(a, Relation::Proximity, b);
  EXPECT_TRUE(m.has_relation(a, Relation::Proximity, b));
  EXPECT_TRUE(m.has_relation(b, Relation::Proximity, a));
}

TEST(ObjectModelTest, DuplicateEdgesIgnored) {
  ObjectModel m;
  const ObjectId a = m.create_object("a", EquipmentKind::Sensor);
  const ObjectId b = m.create_object("b", EquipmentKind::Sensor);
  m.relate(a, Relation::RefersTo, b);
  m.relate(a, Relation::RefersTo, b);
  EXPECT_EQ(m.related(a, Relation::RefersTo).size(), 1u);
}

TEST(ObjectModelTest, DeleteCleansEdges) {
  ObjectModel m;
  const ObjectId a = m.create_object("a", EquipmentKind::Sensor);
  const ObjectId b = m.create_object("b", EquipmentKind::Sensor);
  m.relate(a, Relation::FlowTo, b);
  m.delete_object(b);
  EXPECT_TRUE(m.related(a, Relation::FlowTo).empty());
}

TEST(ObjectModelTest, DownstreamFollowsFlowTransitively) {
  // §10.1: "one component passing fouled fluids on to other components
  // downstream".
  ObjectModel m;
  const ObjectId comp = m.create_object("comp", EquipmentKind::CentrifugalCompressor);
  const ObjectId cond = m.create_object("cond", EquipmentKind::Condenser);
  const ObjectId evap = m.create_object("evap", EquipmentKind::Evaporator);
  m.relate(comp, Relation::FlowTo, cond);
  m.relate(cond, Relation::FlowTo, evap);
  m.relate(evap, Relation::FlowTo, comp);  // closed refrigerant loop

  const auto downstream = m.downstream_of(comp);
  EXPECT_EQ(downstream.size(), 2u);  // cond + evap; cycle back excluded
}

TEST(ObjectModelTest, ComponentsOfTransitive) {
  ObjectModel m;
  const ObjectId ship = m.create_object("ship", EquipmentKind::Ship);
  const ObjectId deck = m.create_object("deck", EquipmentKind::Deck);
  const ObjectId chiller = m.create_object("ch", EquipmentKind::Chiller);
  m.relate(deck, Relation::PartOf, ship);
  m.relate(chiller, Relation::PartOf, deck);
  EXPECT_EQ(m.components_of(ship).size(), 2u);
}

TEST(ObjectModelTest, EventsFireForAllMutations) {
  ObjectModel m;
  std::vector<OosmEvent::Kind> kinds;
  const auto sub = m.subscribe(
      [&](const OosmEvent& e) { kinds.push_back(e.kind); });

  const ObjectId a = m.create_object("a", EquipmentKind::Sensor);
  const ObjectId b = m.create_object("b", EquipmentKind::Sensor);
  m.set_property(a, "v", 1.0);
  m.relate(a, Relation::RefersTo, b);
  m.delete_object(b);

  ASSERT_EQ(kinds.size(), 5u);
  EXPECT_EQ(kinds[0], OosmEvent::Kind::ObjectCreated);
  EXPECT_EQ(kinds[2], OosmEvent::Kind::PropertyChanged);
  EXPECT_EQ(kinds[3], OosmEvent::Kind::RelationAdded);
  EXPECT_EQ(kinds[4], OosmEvent::Kind::ObjectDeleted);

  m.unsubscribe(sub);
  m.set_property(a, "v", 2.0);
  EXPECT_EQ(kinds.size(), 5u);  // no more notifications
}

TEST(ObjectModelTest, EventCarriesDetails) {
  ObjectModel m;
  const ObjectId a = m.create_object("a", EquipmentKind::Sensor);
  OosmEvent last{};
  m.subscribe([&](const OosmEvent& e) { last = e; });
  m.set_property(a, "temperature", 55.0);
  EXPECT_EQ(last.kind, OosmEvent::Kind::PropertyChanged);
  EXPECT_EQ(last.object, a);
  EXPECT_EQ(last.property, "temperature");
}

TEST(PersistenceTest, SaveLoadRoundTrip) {
  ObjectModel m;
  const ObjectId chiller = m.create_object("AC Plant 1", EquipmentKind::Chiller);
  const ObjectId motor =
      m.create_object("Motor", EquipmentKind::InductionMotor);
  m.relate(motor, Relation::PartOf, chiller);
  m.set_property(motor, "rpm", 1780.0);
  m.set_property(motor, "mfr", "GE");
  m.set_property(motor, "poles", std::int64_t{4});

  db::Database db;
  Persistence::save(m, db);
  const ObjectModel restored = Persistence::load(db);

  EXPECT_EQ(restored.object_count(), 2u);
  const auto motor2 = restored.find_by_name("Motor");
  ASSERT_TRUE(motor2.has_value());
  EXPECT_EQ(*motor2, motor);  // ids preserved
  EXPECT_DOUBLE_EQ(restored.property(*motor2, "rpm")->as_real(), 1780.0);
  EXPECT_EQ(restored.property(*motor2, "mfr")->as_text(), "GE");
  EXPECT_EQ(restored.property(*motor2, "poles")->as_integer(), 4);
  EXPECT_TRUE(restored.has_relation(*motor2, Relation::PartOf, chiller));
}

TEST(PersistenceTest, SurvivesIdGapsFromDeletions) {
  ObjectModel m;
  m.create_object("a", EquipmentKind::Sensor);
  const ObjectId b = m.create_object("b", EquipmentKind::Sensor);
  const ObjectId c = m.create_object("c", EquipmentKind::Sensor);
  m.delete_object(b);

  db::Database db;
  Persistence::save(m, db);
  const ObjectModel restored = Persistence::load(db);
  EXPECT_EQ(restored.object_count(), 2u);
  EXPECT_EQ(restored.find_by_name("c"), c);
}

TEST(PersistenceTest, SaveIsIdempotent) {
  ObjectModel m;
  m.create_object("a", EquipmentKind::Sensor);
  db::Database db;
  Persistence::save(m, db);
  Persistence::save(m, db);  // drops and recreates snapshot tables
  EXPECT_EQ(Persistence::load(db).object_count(), 1u);
}

/// Canonical model fingerprint: snapshot-encode a save() of the model.
/// save() iterates objects in creation order and rows deterministically, so
/// two models with identical content produce identical bytes.
std::vector<std::uint8_t> model_fingerprint(const ObjectModel& m) {
  db::Database db;
  Persistence::save(m, db);
  return db::encode_snapshot(db, 0);
}

/// Exercise every event kind the journal mirrors: plain and bulk creation,
/// property set/overwrite/type-change/null, relations (incl. the symmetric
/// Proximity double event), and deletion of a related object.
void mutate_model(ObjectModel& m) {
  const ObjectId plant = m.create_object("Plant", EquipmentKind::Chiller);
  const ObjectId motor =
      m.create_object("Motor", EquipmentKind::InductionMotor);
  PropertyMap initial;
  initial.append("mfr", "GE");
  initial.append("range", 5.0);
  const ObjectId doomed =
      m.create_object_bulk("Doomed", EquipmentKind::Sensor, std::move(initial));
  m.relate(motor, Relation::PartOf, plant);
  m.relate(motor, Relation::Proximity, doomed);  // symmetric: two events
  m.set_property(motor, "rpm", 1780.0);
  m.set_property(motor, "rpm", 1800.0);              // overwrite, same type
  m.set_property(motor, "rpm", std::int64_t{1800});  // type change
  m.set_property(motor, "note", "ok");
  m.set_property(motor, "note", db::Value());  // nulled out
  m.delete_object(doomed);  // cascades property + relation rows
}

TEST(DurableModelJournalTest, MirrorIsLoadEquivalentToSave) {
  ObjectModel m;
  db::Database journal_db;
  DurableModelJournal journal(m, journal_db);
  mutate_model(m);

  // The incrementally-mirrored tables load back into the same model a full
  // save() would produce, and the mirror kept its indexes coherent.
  const ObjectModel restored = Persistence::load(journal_db);
  EXPECT_EQ(model_fingerprint(restored), model_fingerprint(m));
  EXPECT_TRUE(journal_db.integrity_violations().empty());
}

TEST(DurableModelJournalTest, AdoptModeContinuesMirroring) {
  db::Database journal_db;
  ObjectModel m;
  {
    DurableModelJournal journal(m, journal_db);
    mutate_model(m);
  }  // journal detaches (crash analogue: the tables are all that survive)

  // Recovery: rebuild the model from the tables, re-attach in adopt mode,
  // and keep mutating — overwrites must hit the *existing* rows.
  ObjectModel recovered = Persistence::load(journal_db);
  DurableModelJournal adopted(recovered, journal_db);
  const ObjectId motor = *recovered.find_by_name("Motor");
  recovered.set_property(motor, "rpm", 60.0);  // type change on adopted row
  recovered.set_property(motor, "fresh", std::int64_t{1});
  const ObjectId pump =
      recovered.create_object("Pump", EquipmentKind::CentrifugalPump);
  recovered.relate(pump, Relation::PartOf, *recovered.find_by_name("Plant"));

  const ObjectModel reloaded = Persistence::load(journal_db);
  EXPECT_EQ(model_fingerprint(reloaded), model_fingerprint(recovered));
  EXPECT_TRUE(journal_db.integrity_violations().empty());
}

TEST(ShipBuilderTest, BuildsPaperTopology) {
  ObjectModel m;
  const ShipModel ship = build_ship(m, "USNS Mercy", 2, 2);
  EXPECT_EQ(ship.plants.size(), 4u);
  EXPECT_EQ(ship.decks.size(), 2u);

  const ChillerPlant& plant = ship.plants.front();
  // Fig 2's machine name.
  EXPECT_EQ(m.name(plant.motor), "A/C Compressor Motor 1");
  // Drive line is part of the chiller, chiller part of a deck.
  EXPECT_EQ(m.parent_of(plant.motor), plant.chiller);
  EXPECT_TRUE(m.parent_of(plant.chiller).has_value());
  // Refrigerant loop is closed.
  const auto downstream = m.downstream_of(plant.compressor);
  EXPECT_EQ(downstream.size(), 2u);
  // Proximity: the motor neighbours the gearbox.
  EXPECT_TRUE(m.has_relation(plant.motor, Relation::Proximity, plant.gearbox));
  // Instrumentation present.
  EXPECT_EQ(plant.accelerometers.size(), 3u);
  EXPECT_GE(plant.process_sensors.size(), 6u);
}

TEST(ObjectModelTest, KindOfSupportsTypeQueries) {
  // §4.2 lists "kind-of" among the modeled relationships: instances point
  // at type objects, and related_to() answers "all instances of this type".
  ObjectModel m;
  const ObjectId motor_type =
      m.create_object("Induction Motor Type", EquipmentKind::InductionMotor);
  const ObjectId m1 = m.create_object("Motor 1", EquipmentKind::InductionMotor);
  const ObjectId m2 = m.create_object("Motor 2", EquipmentKind::InductionMotor);
  m.relate(m1, Relation::KindOf, motor_type);
  m.relate(m2, Relation::KindOf, motor_type);
  m.set_property(motor_type, "rated_kw", 370.0);

  const auto instances = m.related_to(motor_type, Relation::KindOf);
  EXPECT_EQ(instances.size(), 2u);
  // Type-level properties are one hop away from any instance.
  const auto type_of_m1 = m.related(m1, Relation::KindOf);
  ASSERT_EQ(type_of_m1.size(), 1u);
  EXPECT_DOUBLE_EQ(m.property(type_of_m1[0], "rated_kw")->as_real(), 370.0);
}

TEST(ShipBuilderTest, MechanicalPowerFlowsDownTheDriveLine) {
  ObjectModel m;
  const ShipModel ship = build_ship(m, "Test", 1, 1);
  const ChillerPlant& p = ship.plants.front();
  const auto downstream = m.downstream_of(p.motor);
  // motor -> gearbox -> compressor -> (refrigerant loop).
  EXPECT_GE(downstream.size(), 3u);
}

}  // namespace
}  // namespace mpros::oosm
