#pragma once
// Fixed-capacity ring buffer for sensor sample streams.
//
// The DC's acquisition chain keeps the most recent window of samples per
// channel; SBFR and the rule engine read sliding windows from it. Steady-state
// operation performs no allocation (Per: don't waste time or space).

#include <algorithm>
#include <cstddef>
#include <span>
#include <vector>

#include "mpros/common/assert.hpp"

namespace mpros {

template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity) : data_(capacity) {
    MPROS_EXPECTS(capacity > 0);
  }

  [[nodiscard]] std::size_t capacity() const { return data_.size(); }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] bool full() const { return size_ == data_.size(); }

  /// Append one element, overwriting the oldest when full.
  void push(const T& v) {
    data_[head_] = v;
    head_ = (head_ + 1) % data_.size();
    if (size_ < data_.size()) ++size_;
  }

  /// Append a batch of elements as at most two segment copies. A span
  /// larger than capacity() is a contract violation: it means the producer
  /// sized a batch the window can never hold, and silently keeping only the
  /// tail would hide that data loss from the caller (batch-ingest audit).
  void push(std::span<const T> vs) {
    const std::size_t cap = data_.size();
    MPROS_EXPECTS(vs.size() <= cap);
    const std::size_t first = std::min(vs.size(), cap - head_);
    std::copy_n(vs.begin(), first,
                data_.begin() + static_cast<std::ptrdiff_t>(head_));
    std::copy_n(vs.begin() + static_cast<std::ptrdiff_t>(first),
                vs.size() - first, data_.begin());
    head_ = (head_ + vs.size()) % cap;
    size_ = std::min(cap, size_ + vs.size());
  }

  /// Element `i` counted from the oldest retained element (0 = oldest).
  [[nodiscard]] const T& at_oldest(std::size_t i) const {
    MPROS_EXPECTS(i < size_);
    const std::size_t start = (head_ + data_.size() - size_) % data_.size();
    return data_[(start + i) % data_.size()];
  }

  /// Element `i` counted back from the newest (0 = newest).
  [[nodiscard]] const T& at_newest(std::size_t i) const {
    MPROS_EXPECTS(i < size_);
    return data_[(head_ + data_.size() - 1 - i) % data_.size()];
  }

  /// Copy the most recent `n` elements into `out`, oldest first.
  /// Requires n <= size().
  void latest(std::size_t n, std::vector<T>& out) const {
    MPROS_EXPECTS(n <= size_);
    out.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = at_newest(n - 1 - i);
    }
  }

  void clear() {
    head_ = 0;
    size_ = 0;
  }

 private:
  std::vector<T> data_;
  std::size_t head_ = 0;  // next write slot
  std::size_t size_ = 0;
};

}  // namespace mpros
