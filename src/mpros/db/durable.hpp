#pragma once
// DurableDatabase: a Database whose every mutation survives a crash.
//
// Construction IS recovery: load the latest snapshot (if any), replay the
// WAL tail past it, truncate whatever torn/corrupt suffix the crash left,
// and reopen the log for appending. From then on the instance journals
// every mutation made through its Database; commit() group-commits the
// window (one fsync) and checkpoints — snapshot + log compaction — when
// the log outgrows the configured budget.
//
// Crash semantics: anything not yet commit()ed is gone, by design; the
// destructor deliberately does not flush. Thread-compatible, same as
// Database (single driver thread).

#include <cstdint>
#include <memory>
#include <string>

#include "mpros/db/database.hpp"
#include "mpros/db/wal.hpp"

namespace mpros::db {

struct DurabilityConfig {
  std::string directory;  ///< holds db.snapshot + db.wal
  /// Checkpoint when the synced log exceeds this many bytes (0 = never by
  /// size).
  std::uint64_t checkpoint_bytes = 4u << 20;
  /// Checkpoint every N commits (0 = never by count).
  std::uint64_t checkpoint_commits = 0;
  /// Benchmarks only: skip the fsync (group commit still batches frames).
  bool fsync = true;
};

/// What construction found on disk.
struct RecoveryReport {
  bool snapshot_loaded = false;
  std::uint64_t snapshot_seq = 0;       ///< WAL seq the snapshot covered
  std::uint64_t commits_replayed = 0;
  std::uint64_t records_replayed = 0;
  std::uint64_t truncated_bytes = 0;    ///< torn/corrupt WAL tail dropped
  std::uint64_t recovered_seq = 0;      ///< last durable commit sequence
};

class DurableDatabase final : public JournalSink {
 public:
  explicit DurableDatabase(DurabilityConfig config);
  ~DurableDatabase() override;

  DurableDatabase(const DurableDatabase&) = delete;
  DurableDatabase& operator=(const DurableDatabase&) = delete;

  [[nodiscard]] Database& db() { return db_; }
  [[nodiscard]] const Database& db() const { return db_; }
  [[nodiscard]] const RecoveryReport& recovery() const { return recovery_; }

  /// Group commit: seal the buffered window and fsync once; then
  /// checkpoint if the log outgrew the budget. False on I/O error.
  bool commit();

  /// Explicit snapshot + log compaction (commit()s first).
  bool checkpoint();

  [[nodiscard]] std::uint64_t wal_bytes() const {
    return wal_->bytes_on_disk();
  }
  [[nodiscard]] const WriteAheadLog::Stats& wal_stats() const {
    return wal_->stats();
  }

  [[nodiscard]] static std::string snapshot_path(const std::string& directory);
  [[nodiscard]] static std::string wal_path(const std::string& directory);

  // JournalSink (called by db_; not for direct use).
  void journal(RedoOp op) override;
  void journal_begin() override;
  void journal_commit() override;
  void journal_rollback() override;

 private:
  void recover();

  DurabilityConfig config_;
  Database db_;
  RecoveryReport recovery_;
  std::unique_ptr<WriteAheadLog> wal_;
  std::uint64_t commits_since_checkpoint_ = 0;
};

}  // namespace mpros::db
