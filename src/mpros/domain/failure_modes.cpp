#include "mpros/domain/failure_modes.hpp"

#include "mpros/common/assert.hpp"

namespace mpros::domain {
namespace {

constexpr std::array<FailureMode, kFailureModeCount> kAllModes = {
    FailureMode::MotorImbalance,        FailureMode::ShaftMisalignment,
    FailureMode::BearingHousingLooseness, FailureMode::RotorBarDefect,
    FailureMode::StatorWindingFault,    FailureMode::MotorBearingWear,
    FailureMode::CompressorBearingWear, FailureMode::OilDegradation,
    FailureMode::GearMeshWear,          FailureMode::PumpCavitation,
    FailureMode::RefrigerantLeak,       FailureMode::CondenserFouling,
};

constexpr std::array<FailureMode, 3> kRotorModes = {
    FailureMode::MotorImbalance, FailureMode::ShaftMisalignment,
    FailureMode::BearingHousingLooseness};
constexpr std::array<FailureMode, 2> kElectricalModes = {
    FailureMode::RotorBarDefect, FailureMode::StatorWindingFault};
constexpr std::array<FailureMode, 3> kBearingModes = {
    FailureMode::MotorBearingWear, FailureMode::CompressorBearingWear,
    FailureMode::OilDegradation};
constexpr std::array<FailureMode, 1> kGearModes = {FailureMode::GearMeshWear};
constexpr std::array<FailureMode, 3> kProcessModes = {
    FailureMode::PumpCavitation, FailureMode::RefrigerantLeak,
    FailureMode::CondenserFouling};

}  // namespace

const char* to_string(FailureMode m) {
  switch (m) {
    case FailureMode::MotorImbalance: return "MotorImbalance";
    case FailureMode::ShaftMisalignment: return "ShaftMisalignment";
    case FailureMode::BearingHousingLooseness: return "BearingHousingLooseness";
    case FailureMode::RotorBarDefect: return "RotorBarDefect";
    case FailureMode::StatorWindingFault: return "StatorWindingFault";
    case FailureMode::MotorBearingWear: return "MotorBearingWear";
    case FailureMode::CompressorBearingWear: return "CompressorBearingWear";
    case FailureMode::OilDegradation: return "OilDegradation";
    case FailureMode::GearMeshWear: return "GearMeshWear";
    case FailureMode::PumpCavitation: return "PumpCavitation";
    case FailureMode::RefrigerantLeak: return "RefrigerantLeak";
    case FailureMode::CondenserFouling: return "CondenserFouling";
  }
  return "?";
}

const char* to_string(LogicalGroup g) {
  switch (g) {
    case LogicalGroup::RotorDynamics: return "RotorDynamics";
    case LogicalGroup::Electrical: return "Electrical";
    case LogicalGroup::Bearing: return "Bearing";
    case LogicalGroup::GearTrain: return "GearTrain";
    case LogicalGroup::Process: return "Process";
  }
  return "?";
}

LogicalGroup logical_group(FailureMode m) {
  switch (m) {
    case FailureMode::MotorImbalance:
    case FailureMode::ShaftMisalignment:
    case FailureMode::BearingHousingLooseness:
      return LogicalGroup::RotorDynamics;
    case FailureMode::RotorBarDefect:
    case FailureMode::StatorWindingFault:
      return LogicalGroup::Electrical;
    case FailureMode::MotorBearingWear:
    case FailureMode::CompressorBearingWear:
    case FailureMode::OilDegradation:
      return LogicalGroup::Bearing;
    case FailureMode::GearMeshWear:
      return LogicalGroup::GearTrain;
    case FailureMode::PumpCavitation:
    case FailureMode::RefrigerantLeak:
    case FailureMode::CondenserFouling:
      return LogicalGroup::Process;
  }
  return LogicalGroup::Process;
}

std::span<const FailureMode> all_failure_modes() { return kAllModes; }

std::span<const FailureMode> modes_in_group(LogicalGroup g) {
  switch (g) {
    case LogicalGroup::RotorDynamics: return kRotorModes;
    case LogicalGroup::Electrical: return kElectricalModes;
    case LogicalGroup::Bearing: return kBearingModes;
    case LogicalGroup::GearTrain: return kGearModes;
    case LogicalGroup::Process: return kProcessModes;
  }
  return {};
}

ConditionId condition_id(FailureMode m) {
  return ConditionId(static_cast<std::uint64_t>(m) + 1);
}

FailureMode failure_mode(ConditionId id) {
  MPROS_EXPECTS(id.valid() && id.value() <= kFailureModeCount);
  return static_cast<FailureMode>(id.value() - 1);
}

std::string condition_text(FailureMode m) {
  switch (m) {
    case FailureMode::MotorImbalance: return "motor imbalance";
    case FailureMode::ShaftMisalignment: return "shaft misalignment";
    case FailureMode::BearingHousingLooseness:
      return "pump bearing housing looseness";
    case FailureMode::RotorBarDefect: return "motor rotor bar problem";
    case FailureMode::StatorWindingFault: return "stator winding fault";
    case FailureMode::MotorBearingWear: return "motor bearing wear";
    case FailureMode::CompressorBearingWear: return "compressor bearing wear";
    case FailureMode::OilDegradation: return "lubricating oil degradation";
    case FailureMode::GearMeshWear: return "gear mesh wear";
    case FailureMode::PumpCavitation: return "pump cavitation";
    case FailureMode::RefrigerantLeak: return "refrigerant leak";
    case FailureMode::CondenserFouling: return "condenser fouling";
  }
  return "?";
}

const char* to_string(SensorFaultKind k) {
  switch (k) {
    case SensorFaultKind::Flatline: return "Flatline";
    case SensorFaultKind::Dropout: return "Dropout";
    case SensorFaultKind::OutOfRange: return "OutOfRange";
    case SensorFaultKind::Spike: return "Spike";
  }
  return "?";
}

ConditionId sensor_fault_condition(SensorFaultKind k) {
  return ConditionId(kSensorFaultConditionBase +
                     static_cast<std::uint64_t>(k));
}

bool is_sensor_fault_condition(ConditionId id) {
  return id.value() >= kSensorFaultConditionBase &&
         id.value() < kSensorFaultConditionBase + kSensorFaultKindCount;
}

SensorFaultKind sensor_fault_kind(ConditionId id) {
  MPROS_EXPECTS(is_sensor_fault_condition(id));
  return static_cast<SensorFaultKind>(id.value() - kSensorFaultConditionBase);
}

std::string sensor_fault_condition_text(SensorFaultKind k) {
  switch (k) {
    case SensorFaultKind::Flatline: return "sensor flatline (stuck-at)";
    case SensorFaultKind::Dropout: return "sensor dropout (non-finite data)";
    case SensorFaultKind::OutOfRange: return "sensor reading out of range";
    case SensorFaultKind::Spike: return "sensor spike train";
  }
  return "?";
}

}  // namespace mpros::domain
