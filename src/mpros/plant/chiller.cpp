#include "mpros/plant/chiller.hpp"

#include <algorithm>

#include "mpros/common/assert.hpp"

namespace mpros::plant {

ChillerSimulator::ChillerSimulator(ChillerConfig cfg)
    : cfg_(cfg),
      sensor_faults_(splitmix64(cfg.seed ^ 0x33)),
      process_(cfg.nominals, splitmix64(cfg.seed ^ 0x11)),
      vibration_(cfg.signature, splitmix64(cfg.seed ^ 0x22)) {}

void ChillerSimulator::schedule_load(SimTime at, double fraction) {
  MPROS_EXPECTS(fraction >= 0.0 && fraction <= 1.2);
  MPROS_EXPECTS(load_schedule_.empty() || load_schedule_.back().at < at);
  load_schedule_.push_back(LoadSetpoint{at, fraction});
}

double ChillerSimulator::scheduled_load(SimTime t) const {
  if (load_schedule_.empty() || t < load_schedule_.front().at) {
    return cfg_.load_fraction;
  }
  for (std::size_t i = 1; i < load_schedule_.size(); ++i) {
    if (t < load_schedule_[i].at) {
      const LoadSetpoint& a = load_schedule_[i - 1];
      const LoadSetpoint& b = load_schedule_[i];
      const double frac =
          static_cast<double>((t - a.at).micros()) /
          static_cast<double>((b.at - a.at).micros());
      return a.fraction + frac * (b.fraction - a.fraction);
    }
  }
  return load_schedule_.back().fraction;
}

void ChillerSimulator::advance(SimTime dt) {
  clock_.advance(dt);
  if (!load_schedule_.empty()) {
    cfg_.load_fraction = scheduled_load(clock_.now());
  }
  process_.advance(dt, cfg_.load_fraction, faults_.all_at(clock_.now()));
}

void ChillerSimulator::acquire_vibration(MachinePoint point,
                                         double sample_rate_hz,
                                         std::span<double> out) {
  acquire_vibration_at(point, clock_.now().seconds(), sample_rate_hz, out);
}

void ChillerSimulator::acquire_vibration_at(MachinePoint point,
                                            double t0_seconds,
                                            double sample_rate_hz,
                                            std::span<double> out) {
  vibration_.acceleration(point, faults_.all_at(clock_.now()),
                          cfg_.load_fraction, t0_seconds, sample_rate_hz,
                          out);
  sensor_faults_.corrupt_window(vibration_channel(point), clock_.now(), out);
}

void ChillerSimulator::acquire_current(double sample_rate_hz,
                                       std::span<double> out) {
  vibration_.motor_current(faults_.all_at(clock_.now()), cfg_.load_fraction,
                           clock_.now().seconds(), sample_rate_hz, out);
  sensor_faults_.corrupt_window(kCurrentChannel, clock_.now(), out);
}

ProcessSnapshot ChillerSimulator::process_snapshot() {
  ProcessSnapshot snap = process_.snapshot();
  for (auto& [key, value] : snap) {
    value = sensor_faults_.corrupt_value(key, clock_.now(), value);
  }
  return snap;
}

}  // namespace mpros::plant
