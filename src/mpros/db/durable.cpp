#include "mpros/db/durable.hpp"

#include <filesystem>
#include <utility>

#include "mpros/common/assert.hpp"
#include "mpros/common/log.hpp"
#include "mpros/db/snapshot.hpp"
#include "mpros/telemetry/metrics.hpp"

namespace mpros::db {

namespace {

struct WalCounters {
  telemetry::Counter& commits;
  telemetry::Counter& fsyncs;
  telemetry::Counter& records;
  telemetry::Counter& replayed_commits;
  telemetry::Counter& replayed_records;
  telemetry::Counter& truncated_bytes;
  telemetry::Counter& snapshots_written;

  static WalCounters& instance() {
    auto& reg = telemetry::Registry::instance();
    static WalCounters c{reg.counter("wal.commits"),
                         reg.counter("wal.fsyncs"),
                         reg.counter("wal.records"),
                         reg.counter("wal.replayed_commits"),
                         reg.counter("wal.replayed_records"),
                         reg.counter("wal.truncated_bytes"),
                         reg.counter("wal.snapshots_written")};
    return c;
  }
};

}  // namespace

std::string DurableDatabase::snapshot_path(const std::string& directory) {
  return (std::filesystem::path(directory) / "db.snapshot").string();
}

std::string DurableDatabase::wal_path(const std::string& directory) {
  return (std::filesystem::path(directory) / "db.wal").string();
}

DurableDatabase::DurableDatabase(DurabilityConfig config)
    : config_(std::move(config)) {
  std::error_code ec;
  std::filesystem::create_directories(config_.directory, ec);
  if (ec) {
    MPROS_LOG_ERROR("db", "durable: cannot create %s: %s",
                    config_.directory.c_str(), ec.message().c_str());
  }
  recover();
  db_.attach_journal(this);
}

DurableDatabase::~DurableDatabase() {
  db_.attach_journal(nullptr);
  // No flush: uncommitted work is not durable, which is the contract.
}

void DurableDatabase::recover() {
  const std::string snap = snapshot_path(config_.directory);
  const std::string wal = wal_path(config_.directory);

  std::uint64_t after_seq = 0;
  if (std::optional<DecodedSnapshot> loaded = load_snapshot(snap)) {
    db_ = std::move(loaded->db);
    after_seq = loaded->wal_seq;
    recovery_.snapshot_loaded = true;
    recovery_.snapshot_seq = after_seq;
  } else if (std::filesystem::exists(snap)) {
    MPROS_LOG_WARN("db", "durable: snapshot %s malformed, replaying full WAL",
                   snap.c_str());
  }

  const auto apply = [this](std::uint64_t, RedoOp&& op) {
    return apply_redo(db_, std::move(op));
  };
  WalReplayResult replay = WriteAheadLog::replay(wal, after_seq, apply);
  if (replay.partial_frame) {
    // A CRC-valid frame carried an inadmissible op and its earlier ops
    // already landed: rebuild from the snapshot, replaying only the
    // frames that applied cleanly.
    MPROS_LOG_WARN("db", "durable: %s holds a partial commit, rebuilding",
                   wal.c_str());
    db_ = Database();
    std::uint64_t snapshot_seq = 0;
    if (recovery_.snapshot_loaded) {
      std::optional<DecodedSnapshot> loaded = load_snapshot(snap);
      MPROS_ASSERT(loaded.has_value());  // it decoded moments ago
      db_ = std::move(loaded->db);
      snapshot_seq = loaded->wal_seq;
    }
    const std::uint64_t cap = replay.last_seq;
    const auto capped = [this, cap](std::uint64_t seq, RedoOp&& op) {
      return seq <= cap && apply_redo(db_, std::move(op));
    };
    (void)WriteAheadLog::replay(wal, snapshot_seq, capped);
  }
  recovery_.commits_replayed = replay.commits;
  recovery_.records_replayed = replay.records;
  recovery_.truncated_bytes = replay.truncated_bytes;
  recovery_.recovered_seq = std::max(after_seq, replay.last_seq);

  if (replay.truncated_bytes > 0) {
    MPROS_LOG_WARN("db",
                   "durable: dropping %llu torn bytes from %s "
                   "(recovered through commit %llu)",
                   static_cast<unsigned long long>(replay.truncated_bytes),
                   wal.c_str(),
                   static_cast<unsigned long long>(recovery_.recovered_seq));
  }
  if (!WriteAheadLog::truncate_torn_tail(wal, replay)) {
    MPROS_LOG_ERROR("db", "durable: cannot truncate %s", wal.c_str());
  }

  WalCounters& counters = WalCounters::instance();
  counters.replayed_commits.inc(replay.commits);
  counters.replayed_records.inc(replay.records);
  counters.truncated_bytes.inc(replay.truncated_bytes);

  wal_ = std::make_unique<WriteAheadLog>(wal, recovery_.recovered_seq + 1);
}

void DurableDatabase::journal(RedoOp op) {
  wal_->append(op);
  WalCounters::instance().records.inc();
}

void DurableDatabase::journal_begin() {
  // Seal buffered autocommit ops so a rollback cannot discard them.
  if (wal_->seal() != 0) WalCounters::instance().commits.inc();
}

void DurableDatabase::journal_commit() {
  if (wal_->seal() != 0) WalCounters::instance().commits.inc();
}

void DurableDatabase::journal_rollback() { wal_->discard_pending(); }

bool DurableDatabase::commit() {
  MPROS_EXPECTS(!db_.in_transaction());
  WalCounters& counters = WalCounters::instance();
  if (wal_->seal() != 0) {
    counters.commits.inc();
    ++commits_since_checkpoint_;
  }
  const std::uint64_t fsyncs_before = wal_->stats().fsyncs;
  if (!wal_->sync(config_.fsync)) return false;
  counters.fsyncs.inc(wal_->stats().fsyncs - fsyncs_before);

  const bool by_bytes = config_.checkpoint_bytes != 0 &&
                        wal_->bytes_on_disk() >= config_.checkpoint_bytes;
  const bool by_commits = config_.checkpoint_commits != 0 &&
                          commits_since_checkpoint_ >= config_.checkpoint_commits;
  if (by_bytes || by_commits) return checkpoint();
  return true;
}

bool DurableDatabase::checkpoint() {
  MPROS_EXPECTS(!db_.in_transaction());
  if (wal_->seal() != 0) {
    WalCounters::instance().commits.inc();
    ++commits_since_checkpoint_;
  }
  if (!wal_->sync(config_.fsync)) return false;

  const std::uint64_t covered = wal_->next_seq() - 1;
  if (!write_snapshot(db_, covered, snapshot_path(config_.directory))) {
    return false;
  }
  WalCounters::instance().snapshots_written.inc();
  commits_since_checkpoint_ = 0;
  return wal_->reset(wal_->next_seq());
}

}  // namespace mpros::db
