#include "mpros/dc/supervisor.hpp"

#include "mpros/common/assert.hpp"
#include "mpros/common/log.hpp"
#include "mpros/telemetry/metrics.hpp"

namespace mpros::dc {

DcSupervisor::DcSupervisor(DcSupervisorConfig cfg) : cfg_(cfg) {
  MPROS_EXPECTS(cfg.wedge_timeout.micros() > 0);
}

bool DcSupervisor::observe(DcId dc, std::uint64_t progress, SimTime now) {
  Watch& w = watches_[dc.value()];
  if (!w.seen || progress != w.progress) {
    w.seen = true;
    w.progress = progress;
    w.last_change = now;
    return false;
  }
  if (now - w.last_change < cfg_.wedge_timeout) return false;

  static telemetry::Counter& wedges =
      telemetry::Registry::instance().counter("dc.wedges_detected");
  wedges.inc();
  ++stats_.wedges_detected;
  MPROS_LOG_WARN("dc",
                 "dc-%llu wedged: no progress for %.0f s (tick stuck at %llu)",
                 static_cast<unsigned long long>(dc.value()),
                 (now - w.last_change).seconds(),
                 static_cast<unsigned long long>(progress));
  // Re-arm so a caller that declines the restart is not re-alarmed every
  // observation; the verdict fires again after another full timeout.
  w.last_change = now;
  return true;
}

void DcSupervisor::notify_restarted(DcId dc, std::uint64_t progress,
                                    SimTime now) {
  static telemetry::Counter& restarts =
      telemetry::Registry::instance().counter("mpros.supervisor_restarts");
  restarts.inc();
  ++stats_.restarts;
  watches_[dc.value()] = Watch{progress, now, true};
}

}  // namespace mpros::dc
