#include "mpros/net/fleet_summary.hpp"

#include "mpros/net/codec.hpp"
#include "mpros/net/messages.hpp"

namespace mpros::net {
namespace {

constexpr std::uint16_t kFleetMagic = 0x4653;  // "FS"
constexpr std::uint8_t kFleetVersion = 1;

// Per-machine flag bits.
constexpr std::uint8_t kHasDiagnosis = 0x01;
constexpr std::uint8_t kHasMedianTtf = 0x02;

}  // namespace

std::vector<std::uint8_t> serialize(const FleetSummary& s) {
  Writer w;
  w.u16(kFleetMagic);
  w.u8(kFleetVersion);
  w.u64(s.ship.value());
  w.str(s.ship_name);
  w.i64(s.timestamp.micros());
  w.u32(s.dcs_alive);
  w.u32(s.dcs_stale);
  w.u32(s.dcs_lost);
  w.u32(s.quarantine_active);
  w.u64(s.quarantine_total);
  w.u32(static_cast<std::uint32_t>(s.machines.size()));
  for (const MachineHealthSummary& m : s.machines) {
    w.u64(m.machine.value());
    w.str(m.name);
    w.str(m.klass);
    w.f64(m.health);
    std::uint8_t flags = 0;
    if (m.has_diagnosis) flags |= kHasDiagnosis;
    if (m.has_median_ttf) flags |= kHasMedianTtf;
    w.u8(flags);
    if (m.has_diagnosis) {
      w.u8(static_cast<std::uint8_t>(m.top_mode));
      w.f64(m.top_belief);
      w.f64(m.top_severity);
      w.f64(m.priority);
      w.u32(m.report_count);
    }
    if (m.has_median_ttf) w.i64(m.median_ttf.micros());
  }
  return w.take();
}

std::optional<FleetSummary> try_deserialize_fleet_summary(
    std::span<const std::uint8_t> bytes) {
  TryReader rd(bytes);
  if (rd.u16() != kFleetMagic) return std::nullopt;
  const std::uint8_t version = rd.u8();
  if (!rd.ok() || version < 1 || version > kFleetVersion) return std::nullopt;

  FleetSummary s;
  s.ship = ShipId(rd.u64());
  s.ship_name = rd.str();
  s.timestamp = SimTime(rd.i64());
  s.dcs_alive = rd.u32();
  s.dcs_stale = rd.u32();
  s.dcs_lost = rd.u32();
  s.quarantine_active = rd.u32();
  s.quarantine_total = rd.u64();
  const std::uint32_t n = rd.u32();
  // A machine entry is at least id (8) + two length prefixes (8) + health
  // (8) + flags (1): reject counts the payload cannot hold before reserving
  // (a corrupted count must not become a huge allocation).
  if (!rd.ok() || n > rd.remaining() / 25) return std::nullopt;
  s.machines.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    MachineHealthSummary m;
    m.machine = ObjectId(rd.u64());
    m.name = rd.str();
    m.klass = rd.str();
    m.health = rd.f64();
    const std::uint8_t flags = rd.u8();
    if (!rd.ok() || (flags & ~(kHasDiagnosis | kHasMedianTtf)) != 0) {
      return std::nullopt;
    }
    if ((flags & kHasDiagnosis) != 0) {
      m.has_diagnosis = true;
      const std::uint8_t mode = rd.u8();
      if (!rd.ok() || mode >= domain::kFailureModeCount) return std::nullopt;
      m.top_mode = static_cast<domain::FailureMode>(mode);
      m.top_belief = rd.f64();
      m.top_severity = rd.f64();
      m.priority = rd.f64();
      m.report_count = rd.u32();
    }
    if ((flags & kHasMedianTtf) != 0) {
      m.has_median_ttf = true;
      m.median_ttf = SimTime(rd.i64());
    }
    if (!rd.ok()) return std::nullopt;
    s.machines.push_back(std::move(m));
  }
  if (!rd.ok() || !rd.done()) return std::nullopt;
  return s;
}

std::vector<std::uint8_t> wrap(const FleetSummaryEnvelope& m) {
  Writer w;
  w.u8(static_cast<std::uint8_t>(MessageType::FleetSummaryEnvelopeMsg));
  w.u64(m.ship.value());
  w.u64(m.sequence);
  const std::vector<std::uint8_t> body = serialize(m.summary);
  std::vector<std::uint8_t> out = w.take();
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

std::optional<FleetSummaryEnvelope> try_unwrap_fleet_envelope(
    std::span<const std::uint8_t> bytes) {
  if (try_peek_type(bytes) != MessageType::FleetSummaryEnvelopeMsg) {
    return std::nullopt;
  }
  TryReader r(bytes.subspan(1));
  FleetSummaryEnvelope m;
  m.ship = ShipId(r.u64());
  m.sequence = r.u64();
  if (!r.ok() || m.sequence == 0) return std::nullopt;
  auto summary =
      try_deserialize_fleet_summary(bytes.subspan(1 + 16));  // past ship + seq
  if (!summary.has_value()) return std::nullopt;
  m.summary = *std::move(summary);
  return m;
}

}  // namespace mpros::net
