file(REMOVE_RECURSE
  "CMakeFiles/bench_daq.dir/bench_daq.cpp.o"
  "CMakeFiles/bench_daq.dir/bench_daq.cpp.o.d"
  "bench_daq"
  "bench_daq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_daq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
