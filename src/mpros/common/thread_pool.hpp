#pragma once
// Fixed-size worker pool for the fleet simulation.
//
// The paper's deployment runs one embedded processor per Data Concentrator;
// the simulator maps each DC's duty cycle onto pool workers. submit() hands
// off a task; wait_idle() is the barrier used between scenario epochs
// (OpenMP-style fork/join from the guides, built on std::jthread).

#include <cstddef>
#include <functional>
#include <vector>

#include "mpros/common/concurrent_queue.hpp"

#include <condition_variable>
#include <mutex>
#include <thread>

namespace mpros {

class ThreadPool {
 public:
  /// Spawn `threads` workers (defaults to hardware concurrency, at least 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Joins workers after draining outstanding tasks.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task. Tasks must not throw; a throwing task aborts.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished executing.
  void wait_idle();

  [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }

  /// Convenience: run fn(i) for i in [0, n) across the pool, then barrier.
  /// The range is chunked into ~thread_count() contiguous blocks (one task
  /// each) so large ranges do not pay per-index queue/wakeup overhead.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  ConcurrentQueue<std::function<void()>> tasks_;
  std::vector<std::jthread> workers_;

  std::mutex idle_mu_;
  std::condition_variable idle_cv_;
  std::size_t in_flight_ = 0;  // queued + executing
};

}  // namespace mpros
