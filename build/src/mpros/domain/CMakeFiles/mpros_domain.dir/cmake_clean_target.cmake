file(REMOVE_RECURSE
  "libmpros_domain.a"
)
