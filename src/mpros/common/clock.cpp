#include "mpros/common/clock.hpp"

#include <cmath>
#include <cstdio>

#include "mpros/common/assert.hpp"

namespace mpros {

std::string to_string(SimTime t) {
  char buf[48];
  const double s = t.seconds();
  const double abs_s = std::fabs(s);
  if (abs_s < 1e-3) {
    std::snprintf(buf, sizeof buf, "%.0fus", static_cast<double>(t.micros()));
  } else if (abs_s < 1.0) {
    std::snprintf(buf, sizeof buf, "%.2fms", s * 1e3);
  } else if (abs_s < 120.0) {
    std::snprintf(buf, sizeof buf, "%.2fs", s);
  } else if (abs_s < 2.0 * 86400.0) {
    std::snprintf(buf, sizeof buf, "%.2fh", t.hours());
  } else if (abs_s < 60.0 * 86400.0) {
    std::snprintf(buf, sizeof buf, "%.2fd", t.days());
  } else {
    std::snprintf(buf, sizeof buf, "%.2fmo", t.months());
  }
  return buf;
}

void SimClock::advance(SimTime dt) {
  MPROS_EXPECTS(dt.micros() >= 0);
  now_ += dt;
}

void SimClock::advance_to(SimTime t) {
  MPROS_EXPECTS(t >= now_);
  now_ = t;
}

}  // namespace mpros
