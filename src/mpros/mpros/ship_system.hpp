#pragma once
// ShipSystem: the assembled MPROS deployment (Fig 1, end to end).
//
// N chiller plants, each instrumented by a Data Concentrator, all reporting
// over the simulated ship's network to one PDME with its OOSM. The fleet's
// DCs run their duty cycles on a thread pool (the embedded-HPC angle: each
// DC is an independent processor; only serialized reports cross between
// them and the PDME).

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "mpros/common/thread_pool.hpp"
#include "mpros/db/durable.hpp"
#include "mpros/dc/data_concentrator.hpp"
#include "mpros/dc/supervisor.hpp"
#include "mpros/mpros/wnn_training.hpp"
#include "mpros/net/fleet_summary.hpp"
#include "mpros/net/network.hpp"
#include "mpros/net/reliable.hpp"
#include "mpros/oosm/persistence.hpp"
#include "mpros/oosm/ship_builder.hpp"
#include "mpros/pdme/pdme.hpp"
#include "mpros/pdme/resident.hpp"
#include "mpros/plant/chiller.hpp"
#include "mpros/telemetry/metrics.hpp"
#include "mpros/telemetry/recorder.hpp"

namespace mpros {

/// Ship-to-shore uplink: this hull's membership in the fleet tier. When
/// enabled, the ship distills its PDME state into a FleetSummary at every
/// summary cadence boundary and seals it in the reliable stream; the fleet
/// assembler moves the sealed datagrams onto the shore network.
struct UplinkConfig {
  bool enabled = false;
  ShipId ship = ShipId(1);
  std::string name;        ///< hull display name; empty = the OOSM ship name
  /// Shore-network endpoint this hull answers acks on; empty =
  /// "hull-<ship>".
  std::string endpoint;
  SimTime summary_period = SimTime::from_seconds(600.0);
  SimTime heartbeat_period = SimTime::from_seconds(300.0);
  /// The ship-to-shore link is slower and more hostile than the shipboard
  /// LAN; the retransmit window is tuned separately from the DCs'.
  net::ReliableConfig reliable;
};

struct ShipSystemConfig {
  std::size_t plant_count = 4;
  dc::DcConfig dc_template;           ///< id is assigned per DC
  net::NetworkConfig network;
  pdme::PdmeConfig pdme;
  double initial_load = 0.8;
  std::uint64_t seed = 0x5417;
  std::size_t worker_threads = 0;     ///< 0 = hardware concurrency
  bool use_wnn = false;               ///< train & share a WNN classifier
  WnnTrainingConfig wnn_training;
  /// Run the PDME-resident fleet-comparative analyzer (§5.7) once per
  /// advance_to() step.
  bool enable_fleet_analyzer = false;
  pdme::FleetAnalyzerConfig fleet_analyzer;
  /// Journal every delivered datagram (plus notable DC events) into a
  /// bounded flight recorder; dump with flight_recorder()->dump(path) and
  /// replay with mpros::replay_file / tools/mpros_replay.
  bool enable_flight_recorder = false;
  std::size_t recorder_capacity = 1 << 16;
  /// Fleet-tier membership (off by default: a lone ship has no shore).
  UplinkConfig uplink;
  /// Supervised DC recovery (§4.9): watch every DC's progress tick each
  /// step; a DC that stops ticking for supervisor.wedge_timeout is torn
  /// down and restarted from its salvage, then caught up slice-by-slice so
  /// its output matches an unwedged run.
  bool enable_supervisor = true;
  dc::DcSupervisorConfig supervisor;
  /// Durable OOSM (§4.6, "managed entirely in the background" — but
  /// crash-safe): journal the object model, each DC's persisted runtime
  /// config, and the PDME's DC-liveness records into a write-ahead log
  /// under durability.directory, group-committed (one fsync) at every
  /// advance_to() barrier. Constructing a ShipSystem over a directory
  /// that already holds a committed run *recovers* it: the model comes
  /// back from snapshot + WAL replay and the clock resumes at the last
  /// committed barrier, with browser/ICAS output identical to the crashed
  /// run's at that instant.
  bool enable_durability = false;
  db::DurabilityConfig durability;
};

class ShipSystem {
 public:
  explicit ShipSystem(ShipSystemConfig cfg = ShipSystemConfig());

  [[nodiscard]] std::size_t plant_count() const { return plants_.size(); }
  [[nodiscard]] plant::ChillerSimulator& chiller(std::size_t plant);
  [[nodiscard]] dc::DataConcentrator& concentrator(std::size_t plant);
  [[nodiscard]] const oosm::ChillerPlant& plant_objects(
      std::size_t plant) const;

  [[nodiscard]] pdme::PdmeExecutive& pdme() { return *pdme_; }
  [[nodiscard]] pdme::FleetComparativeAnalyzer* fleet_analyzer() {
    return resident_ ? resident_.get() : nullptr;
  }
  [[nodiscard]] oosm::ObjectModel& model() { return model_; }
  [[nodiscard]] net::SimNetwork& network() { return network_; }
  [[nodiscard]] const oosm::ShipModel& ship() const { return ship_; }

  /// Advance the whole system to absolute simulated time `t`: every DC runs
  /// its due tests (in parallel across the pool), reports travel the
  /// network, and the PDME fuses what arrives. Returns the number of
  /// reports the PDME received in this step.
  std::size_t advance_to(SimTime t);

  /// Convenience: advance in fixed steps until `end`.
  std::size_t run_until(SimTime end, SimTime step = SimTime::from_seconds(60));

  [[nodiscard]] SimTime now() const { return now_; }

  /// Control plane: stamp and queue a runtime-reconfiguration command for
  /// one plant's DC on the PDME's reliable command stream. Returns the
  /// revision (DataConcentrator::config_revision() converges on it once the
  /// command is delivered and applied).
  std::uint64_t command_dc(
      std::size_t plant, std::vector<std::pair<std::string, double>> settings,
      std::string reason);

  /// Chaos hook: freeze/unfreeze one DC's driver loop (see
  /// DataConcentrator::set_wedged). The supervisor detects the frozen tick
  /// and restarts the DC during a later advance_to().
  void wedge_dc(std::size_t plant, bool wedged = true);

  /// Tear one DC down and rebuild it from its salvage immediately, catching
  /// it up to now() through the recorded assembler steps. The supervisor
  /// path does this automatically; tests and operators call it directly.
  void restart_dc(std::size_t plant);

  /// Null unless cfg.enable_supervisor.
  [[nodiscard]] dc::DcSupervisor* supervisor() { return supervisor_.get(); }

  /// Close the §6.1 believability loop: a maintainer opened the machine
  /// and either confirmed the fused conclusion or reversed it. Updates the
  /// originating DC's statistical database, lowering (or restoring) the
  /// Belief field of its future reports for that condition, and clears the
  /// machine's fused state for a fresh start after maintenance.
  void record_maintenance_outcome(std::size_t plant,
                                  domain::FailureMode mode, bool confirmed);

  struct FleetStats {
    std::uint64_t samples_processed = 0;
    std::uint64_t reports_emitted = 0;
    std::uint64_t reports_fused = 0;
    net::NetworkStats network;
  };
  [[nodiscard]] FleetStats fleet_stats() const;

  /// Distill the PDME's fused state into the fleet-tier digest: rolled-up
  /// health per plant machine, top diagnosis, prognostic remaining life,
  /// DC-liveness counts, quarantine-ledger digest. Runs at the aggregation
  /// barrier (everything fused through `now` is visible), but callable any
  /// time for inspection.
  [[nodiscard]] net::FleetSummary fleet_summary(SimTime at) const;

  /// One sealed ship-to-shore datagram, ready for the shore network.
  struct UplinkDatagram {
    std::vector<std::uint8_t> payload;
    SimTime at;
  };

  /// Uplink traffic produced since the last drain (summary envelopes, due
  /// retransmissions, heartbeats), in emission order. Empty unless
  /// cfg.uplink.enabled. The fleet assembler forwards these to shore.
  [[nodiscard]] std::vector<UplinkDatagram> drain_uplink();

  /// Shore-to-ship datagrams (cumulative acks) land here; the fleet
  /// assembler registers this as the hull's shore-endpoint handler.
  void handle_uplink_wire(const net::Message& msg);

  /// Null unless cfg.uplink.enabled.
  [[nodiscard]] net::ReliableSender* uplink() { return uplink_.get(); }
  [[nodiscard]] const std::string& uplink_endpoint() const {
    return uplink_endpoint_;
  }

  /// Null unless cfg.enable_flight_recorder.
  [[nodiscard]] telemetry::FlightRecorder* flight_recorder() {
    return recorder_.get();
  }

  /// Null unless cfg.enable_durability. Gives tests/tools the recovery
  /// report and explicit checkpoint control; the db itself is the
  /// journal's — don't mutate it directly.
  [[nodiscard]] db::DurableDatabase* durable() { return durable_.get(); }

  /// True when construction found a committed prior run in the durability
  /// directory and resumed it (now() is the last committed barrier).
  [[nodiscard]] bool recovered() const { return recovered_; }

  /// Text dump of every registered telemetry metric (counters, gauges,
  /// latency histograms) — the operator's status page.
  [[nodiscard]] static std::string telemetry_text() {
    return telemetry::Registry::instance().render_text();
  }

 private:
  /// Serialize one DC's step products onto the wire in emission order:
  /// sealed report envelopes, sensor batches, then the wire outbox
  /// (retransmissions, heartbeats, command acks) at their own timestamps.
  void flush_dc(std::size_t i, const std::vector<net::FailureReport>& reports);
  /// Salvage-and-rebuild dc i, then catch it up through the recorded
  /// assembler-step boundaries ending at `t` (flushing per slice, so the
  /// seal/sweep interleaving matches an unwedged run).
  void restart_dc_to(std::size_t i, SimTime t);
  /// Upsert one (dc, key) row in the dc_config mirror table (no-op when
  /// the mirrored value is already current, so idempotent re-mirrors
  /// don't bloat the WAL).
  void mirror_dc_setting(std::size_t i, const std::string& key, double value);
  /// Barrier-end group commit: pull config deltas from every DC, mirror
  /// the PDME watchdog records and the committed-through clock, then
  /// fsync the window as one WAL commit.
  void durable_commit(SimTime t);

  ShipSystemConfig cfg_;
  /// Declared before the model/journal so it outlives both on teardown.
  std::unique_ptr<db::DurableDatabase> durable_;
  oosm::ObjectModel model_;
  /// Mirrors model_ events into durable_'s db; destroyed first (declared
  /// last of the three) so it can unsubscribe from a live model.
  std::unique_ptr<oosm::DurableModelJournal> model_journal_;
  oosm::ShipModel ship_;
  net::SimNetwork network_;
  std::unique_ptr<telemetry::FlightRecorder> recorder_;
  std::unique_ptr<pdme::PdmeExecutive> pdme_;
  std::unique_ptr<pdme::FleetComparativeAnalyzer> resident_;
  std::shared_ptr<nn::WnnClassifier> wnn_;
  std::vector<std::unique_ptr<plant::ChillerSimulator>> plants_;
  std::vector<std::unique_ptr<dc::DataConcentrator>> dcs_;
  ThreadPool pool_;
  SimTime now_;
  std::unique_ptr<dc::DcSupervisor> supervisor_;
  /// Recent advance_to() end-times: the step grid a recovered DC's catch-up
  /// replays. Pruned past twice the wedge timeout — wedges are detected
  /// well inside that.
  std::deque<SimTime> step_log_;
  SimTime step_horizon_;

  // Fleet-tier uplink state (driver thread only, except the sender's own
  // internal lock — acks may arrive from the shore network's driver).
  std::unique_ptr<net::ReliableSender> uplink_;
  std::string uplink_endpoint_;
  std::vector<UplinkDatagram> uplink_outbox_;
  SimTime next_summary_due_;
  SimTime next_heartbeat_due_;

  // Durability bookkeeping (driver thread only).
  bool recovered_ = false;
  /// dc_config mirror row keys by (dc index, setting key); rebuilt from
  /// the table on recovery.
  std::map<std::pair<std::size_t, std::string>, std::int64_t> dc_config_rows_;
};

}  // namespace mpros
