#include "mpros/telemetry/metrics.hpp"

#include <algorithm>
#include <cstdarg>
#include <cstdio>

namespace mpros::telemetry {

namespace {

void atomic_add(std::atomic<double>& target, double v) {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + v,
                                       std::memory_order_relaxed)) {
  }
}

void append(std::string& out, const char* fmt, ...)
#if defined(__GNUC__) || defined(__clang__)
    __attribute__((format(printf, 2, 3)))
#endif
    ;

void append(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  out += buf;
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), buckets_(bounds_.size() + 1) {
  if (bounds_.empty()) bounds_.push_back(1.0);
  std::sort(bounds_.begin(), bounds_.end());
}

void Histogram::observe(double v) {
  if (!enabled()) return;
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, v);
}

double Histogram::mean() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

bool Histogram::max_exceeded() const {
  return buckets_.back().load(std::memory_order_relaxed) != 0;
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double Histogram::quantile(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  const std::vector<std::uint64_t> counts = bucket_counts();
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) total += c;
  if (total == 0) return 0.0;

  const double target = q * static_cast<double>(total);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const double next = cumulative + static_cast<double>(counts[i]);
    if (next >= target && counts[i] != 0) {
      // Interpolate within [lower, upper] of bucket i; the overflow bucket
      // has no upper bound, so report the last finite edge.
      if (i == counts.size() - 1) return bounds_.back();
      const double lower = i == 0 ? 0.0 : bounds_[i - 1];
      const double upper = bounds_[i];
      const double frac =
          counts[i] == 0
              ? 0.0
              : (target - cumulative) / static_cast<double>(counts[i]);
      return lower + (upper - lower) * std::clamp(frac, 0.0, 1.0);
    }
    cumulative = next;
  }
  return bounds_.back();
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

std::vector<double> default_latency_bounds_us() {
  std::vector<double> bounds;
  for (double decade = 1.0; decade <= 1e6; decade *= 10.0) {
    bounds.push_back(decade);
    bounds.push_back(decade * 2.0);
    bounds.push_back(decade * 5.0);
  }
  bounds.push_back(1e7);  // 10 s
  return bounds;
}

Registry& Registry::instance() {
  static Registry registry;
  return registry;
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name,
                               std::vector<double> bounds) {
  std::lock_guard lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(bounds));
  return *slot;
}

std::vector<MetricSnapshot> Registry::snapshot() const {
  std::lock_guard lock(mu_);
  std::vector<MetricSnapshot> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, c] : counters_) {
    MetricSnapshot s;
    s.name = name;
    s.kind = MetricSnapshot::Kind::Counter;
    s.value = static_cast<double>(c->value());
    out.push_back(std::move(s));
  }
  for (const auto& [name, g] : gauges_) {
    MetricSnapshot s;
    s.name = name;
    s.kind = MetricSnapshot::Kind::Gauge;
    s.value = g->value();
    out.push_back(std::move(s));
  }
  for (const auto& [name, h] : histograms_) {
    MetricSnapshot s;
    s.name = name;
    s.kind = MetricSnapshot::Kind::Histogram;
    s.count = h->count();
    s.sum = h->sum();
    s.p50 = h->quantile(0.50);
    s.p95 = h->quantile(0.95);
    s.p99 = h->quantile(0.99);
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              return a.name < b.name;
            });
  return out;
}

std::string Registry::render_text() const {
  std::string out = "=== MPROS telemetry ===\n";
  for (const MetricSnapshot& s : snapshot()) {
    switch (s.kind) {
      case MetricSnapshot::Kind::Counter:
        append(out, "counter  %-40s %12.0f\n", s.name.c_str(), s.value);
        break;
      case MetricSnapshot::Kind::Gauge:
        append(out, "gauge    %-40s %12.3f\n", s.name.c_str(), s.value);
        break;
      case MetricSnapshot::Kind::Histogram:
        append(out,
               "hist     %-40s count=%llu mean=%.1f p50=%.1f p95=%.1f "
               "p99=%.1f\n",
               s.name.c_str(), static_cast<unsigned long long>(s.count),
               s.count == 0 ? 0.0 : s.sum / static_cast<double>(s.count),
               s.p50, s.p95, s.p99);
        break;
    }
  }
  return out;
}

std::string Registry::render_json() const {
  std::string out = "{";
  bool first = true;
  for (const MetricSnapshot& s : snapshot()) {
    if (!first) out += ",";
    first = false;
    switch (s.kind) {
      case MetricSnapshot::Kind::Counter:
        append(out, "\"%s\":{\"type\":\"counter\",\"value\":%.0f}",
               s.name.c_str(), s.value);
        break;
      case MetricSnapshot::Kind::Gauge:
        append(out, "\"%s\":{\"type\":\"gauge\",\"value\":%g}",
               s.name.c_str(), s.value);
        break;
      case MetricSnapshot::Kind::Histogram:
        append(out,
               "\"%s\":{\"type\":\"histogram\",\"count\":%llu,\"sum\":%g,"
               "\"p50\":%g,\"p95\":%g,\"p99\":%g}",
               s.name.c_str(), static_cast<unsigned long long>(s.count),
               s.sum, s.p50, s.p95, s.p99);
        break;
    }
  }
  out += "}";
  return out;
}

void Registry::reset_values() {
  std::lock_guard lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

}  // namespace mpros::telemetry
