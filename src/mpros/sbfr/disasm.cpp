#include "mpros/sbfr/disasm.hpp"

#include <cstdio>
#include <cstring>
#include <vector>

#include "mpros/common/assert.hpp"
#include "mpros/sbfr/bytecode.hpp"

namespace mpros::sbfr {
namespace {

std::string format_f32(std::span<const std::uint8_t> code, std::size_t pos) {
  float f;
  std::memcpy(&f, code.data() + pos, 4);
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", static_cast<double>(f));
  return buf;
}

const char* binary_op_symbol(Op op) {
  switch (op) {
    case Op::Add: return "+";
    case Op::Sub: return "-";
    case Op::Mul: return "*";
    case Op::Div: return "/";
    case Op::Lt: return "<";
    case Op::Le: return "<=";
    case Op::Gt: return ">";
    case Op::Ge: return ">=";
    case Op::Eq: return "==";
    case Op::Ne: return "!=";
    case Op::And: return "&&";
    case Op::Or: return "||";
    case Op::BitAnd: return "&";
    case Op::BitOr: return "|";
    default: return nullptr;
  }
}

}  // namespace

std::string disassemble_program(std::span<const std::uint8_t> code) {
  // Symbolic stack evaluation: loads push readable fragments, operators
  // combine them, stores become statements.
  std::vector<std::string> stack;
  std::vector<std::string> statements;
  const auto pop = [&]() -> std::string {
    MPROS_EXPECTS(!stack.empty());  // validate() guarantees balance
    std::string top = std::move(stack.back());
    stack.pop_back();
    return top;
  };

  std::size_t pc = 0;
  char buf[64];
  while (pc < code.size()) {
    const Op op = static_cast<Op>(code[pc]);
    const std::uint8_t imm =
        immediate_size(op) >= 1 ? code[pc + 1] : std::uint8_t{0};
    if (const char* symbol = binary_op_symbol(op)) {
      const std::string rhs = pop();
      const std::string lhs = pop();
      stack.push_back("(" + lhs + " " + symbol + " " + rhs + ")");
    } else {
      switch (op) {
        case Op::PushConst:
          stack.push_back(format_f32(code, pc + 1));
          break;
        case Op::LoadInput:
          std::snprintf(buf, sizeof buf, "input(ch%u)", imm);
          stack.push_back(buf);
          break;
        case Op::LoadDelta:
          std::snprintf(buf, sizeof buf, "delta(ch%u)", imm);
          stack.push_back(buf);
          break;
        case Op::LoadLocal:
          std::snprintf(buf, sizeof buf, "local[%u]", imm);
          stack.push_back(buf);
          break;
        case Op::LoadStatus:
          std::snprintf(buf, sizeof buf, "status[%u]", imm);
          stack.push_back(buf);
          break;
        case Op::LoadState:
          std::snprintf(buf, sizeof buf, "state[%u]", imm);
          stack.push_back(buf);
          break;
        case Op::LoadDt:
          stack.emplace_back("dt");
          break;
        case Op::Neg:
          stack.back() = "-(" + stack.back() + ")";
          break;
        case Op::Not:
          stack.back() = "!(" + stack.back() + ")";
          break;
        case Op::StoreLocal: {
          std::snprintf(buf, sizeof buf, "local[%u] := ", imm);
          statements.push_back(buf + pop());
          break;
        }
        case Op::StoreStatus: {
          std::snprintf(buf, sizeof buf, "status[%u] := ", imm);
          statements.push_back(buf + pop());
          break;
        }
        case Op::Emit: {
          std::snprintf(buf, sizeof buf, "emit(0x%02X, ", imm);
          statements.push_back(buf + pop() + ")");
          break;
        }
        case Op::End:
        default:
          statements.emplace_back("<bad opcode>");
          break;
      }
    }
    pc += 1 + immediate_size(op);
  }

  std::string out;
  for (const std::string& s : statements) {
    if (!out.empty()) out += "; ";
    out += s;
  }
  if (!stack.empty()) {
    // A condition program leaves its value on top.
    if (!out.empty()) out += "; ";
    out += stack.back();
  }
  return out;
}

std::string disassemble(const MachineDef& def) {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "machine \"%s\" (%zu states, %u locals, start %s)\n",
                def.name().c_str(), def.states().size(), def.num_locals(),
                def.states()[def.initial_state()].name.c_str());
  std::string out = buf;

  for (const StateDef& state : def.states()) {
    for (const Transition& t : state.transitions) {
      out += "  " + state.name + " -> " + def.states()[t.target].name +
             "  when " + disassemble_program(t.condition);
      if (!t.action.empty()) {
        out += "  do { " + disassemble_program(t.action) + " }";
      }
      out += '\n';
    }
  }
  return out;
}

}  // namespace mpros::sbfr
