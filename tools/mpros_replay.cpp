// mpros_replay — replay a flight-recorder dump through a fresh PDME.
//
//   mpros_replay recording.mfr            # replay, print the fused summary
//   mpros_replay --inspect recording.mfr  # list the recorded frames instead
//
// The dump (written by `mpros_sim --record` or
// ShipSystem::flight_recorder()->dump()) carries the delivered PDME-bound
// wire stream plus the scenario header; replaying it reproduces the live
// run's prioritized maintenance list exactly. Exit status: 0 on success,
// 1 if the file cannot be read or decoded.

#include <cstdio>
#include <cstring>
#include <string>

#include "mpros/mpros/mpros.hpp"

int main(int argc, char** argv) {
  bool inspect = false;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--inspect") {
      inspect = true;
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: mpros_replay [--inspect] recording.mfr\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "mpros_replay: unknown argument '%s'\n",
                   arg.c_str());
      return 2;
    } else {
      path = arg;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr, "usage: mpros_replay [--inspect] recording.mfr\n");
    return 2;
  }

  const auto dump = mpros::telemetry::FlightRecorder::load(path);
  if (!dump.has_value()) {
    std::fprintf(stderr,
                 "mpros_replay: cannot read '%s' (missing, truncated, or "
                 "corrupted dump)\n",
                 path.c_str());
    return 1;
  }

  std::printf("recording: v%u, %zu frame(s), %u plant(s), seed=%llu, "
              "dedup=%s\n\n",
              dump->header.version, dump->frames.size(),
              dump->header.plant_count,
              static_cast<unsigned long long>(dump->header.seed),
              dump->header.pdme_dedup ? "on" : "off");

  if (inspect) {
    for (const auto& f : dump->frames) {
      if (f.kind == mpros::telemetry::FrameKind::Event) {
        std::printf("%12lld us  event  %-8s %s\n",
                    static_cast<long long>(f.time_us), f.from.c_str(),
                    std::string(f.payload.begin(), f.payload.end()).c_str());
      } else {
        std::printf("%12lld us  msg    %-8s -> %-8s %zu byte(s)\n",
                    static_cast<long long>(f.time_us), f.from.c_str(),
                    f.to.c_str(), f.payload.size());
      }
    }
    return 0;
  }

  const auto result = mpros::replay_recording(*dump);
  if (!result.has_value()) {
    std::fprintf(stderr, "mpros_replay: unsupported recording version %u\n",
                 dump->header.version);
    return 1;
  }

  std::printf("%s\n", result->summary.c_str());
  std::printf("replayed %zu message(s) (%zu event(s) skipped, %zu "
              "malformed); fused %llu report(s), %llu sensor batch(es)\n",
              result->messages_replayed, result->events_skipped,
              result->malformed,
              static_cast<unsigned long long>(result->reports_fused),
              static_cast<unsigned long long>(result->sensor_batches));
  return 0;
}
