#pragma once
// Pipeline tracing: follow one acquisition end to end.
//
// A DC allocates a TraceId when a test fires, stamps it on every §7 report
// the test produces (the id rides the wire in the report header), and each
// stage the report crosses — DC analysis, network transit, PDME fusion —
// records a SpanRecord against the id. spans_for() then reconstructs the
// DAQ → scheduler → codec → fusion timeline of any report with per-stage
// simulated timing and measured wall cost.
//
// Spans are kept in a bounded ring (old spans are evicted, never blocked
// on); recording is mutex-guarded but runs at report rate, not sample
// rate, so it stays off the hot path.

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "mpros/telemetry/metrics.hpp"

namespace mpros::telemetry {

/// 0 means "untraced" (e.g. reports from sources predating tracing).
using TraceId = std::uint64_t;

/// Process-unique, never 0.
[[nodiscard]] TraceId next_trace_id();

struct SpanRecord {
  TraceId trace = 0;
  std::string stage;            ///< "dc.vibration_test", "net.transit", ...
  std::int64_t sim_start_us = 0;
  std::int64_t sim_end_us = 0;  ///< == start for instantaneous stages
  std::int64_t wall_ns = 0;     ///< measured cost of the stage, 0 if n/a

  friend bool operator==(const SpanRecord&, const SpanRecord&) = default;
};

class Tracer {
 public:
  static Tracer& instance();

  /// Evicts the oldest spans beyond `n` (and future overflow).
  void set_capacity(std::size_t n);

  void record(SpanRecord span);  // no-op while telemetry is disabled

  /// Spans for one trace, record order.
  [[nodiscard]] std::vector<SpanRecord> spans_for(TraceId trace) const;
  /// Everything retained, oldest first.
  [[nodiscard]] std::vector<SpanRecord> recent() const;

  [[nodiscard]] std::uint64_t recorded() const;
  [[nodiscard]] std::uint64_t evicted() const;
  void clear();

 private:
  mutable std::mutex mu_;
  std::vector<SpanRecord> ring_;  // ring_[ (start_ + i) % capacity_ ]
  std::size_t capacity_ = 4096;
  std::size_t start_ = 0;
  std::size_t size_ = 0;
  std::uint64_t recorded_ = 0;
  std::uint64_t evicted_ = 0;
};

/// RAII helper: measures the wall cost of a scope and records one span on
/// destruction. Simulated end defaults to the simulated start (stages whose
/// simulated duration is implicit) — override with set_sim_end().
class StageTimer {
 public:
  /// `wall_us` (optional) also receives the measured wall cost in
  /// microseconds, so a stage can feed both its trace and its histogram.
  StageTimer(std::string stage, TraceId trace, std::int64_t sim_now_us,
             Histogram* wall_us = nullptr);
  ~StageTimer();

  StageTimer(const StageTimer&) = delete;
  StageTimer& operator=(const StageTimer&) = delete;

  void set_sim_end(std::int64_t sim_end_us) { sim_end_us_ = sim_end_us; }

 private:
  std::string stage_;
  TraceId trace_;
  std::int64_t sim_start_us_;
  std::int64_t sim_end_us_;
  std::int64_t wall_start_ns_;
  Histogram* wall_us_;
};

}  // namespace mpros::telemetry
