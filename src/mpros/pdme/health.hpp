#pragma once
// Multi-level health rollup (paper §10.1).
//
// "First, multi-level data is represented [in] the object-oriented ship
// model. We are not currently exploiting this fully. For example, we could
// reason about the health of a system based on the health of a constituent
// part. Currently, only the parts are tracked."
//
// HealthRollup assigns every OOSM object a health index in [0,1]
// (1 = healthy): a leaf's own health comes from the fused beliefs against
// it; a composite's health is the product of its own health and a weighted
// penalty from its PartOf children, so a failing motor degrades its
// chiller, its deck's plant availability, and ultimately the ship.

#include <map>
#include <string>
#include <vector>

#include "mpros/pdme/pdme.hpp"

namespace mpros::pdme {

struct HealthConfig {
  /// Weight of the worst child vs the mean of the children when rolling up
  /// (1 = min-only: a chain is as healthy as its sickest link).
  double worst_child_weight = 0.7;
  /// How strongly a fused belief at a given severity hurts own health:
  /// own = Π (1 - belief * severity * impact).
  double impact = 1.0;
};

struct HealthEntry {
  ObjectId object;
  double own = 1.0;     ///< from conclusions against this object directly
  double rolled = 1.0;  ///< own combined with descendants
};

class HealthRollup {
 public:
  explicit HealthRollup(HealthConfig cfg = {});

  /// Compute health for every object in the model. Objects outside any
  /// PartOf tree still get their own-health entry.
  [[nodiscard]] std::map<ObjectId, HealthEntry> compute(
      const PdmeExecutive& pdme) const;

  /// Rolled-up health of one object (1.0 if unknown to the model).
  [[nodiscard]] double health_of(const PdmeExecutive& pdme,
                                 ObjectId object) const;

  /// Text tree of the ship's health, worst subsystems first per level.
  [[nodiscard]] std::string render_tree(const PdmeExecutive& pdme,
                                        ObjectId root) const;

 private:
  double rolled_health(const oosm::ObjectModel& model,
                       const std::map<ObjectId, double>& own,
                       std::map<ObjectId, double>& memo, ObjectId id) const;

  HealthConfig cfg_;
};

}  // namespace mpros::pdme
