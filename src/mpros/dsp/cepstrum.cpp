#include "mpros/dsp/cepstrum.hpp"

#include <cmath>

#include "mpros/common/assert.hpp"
#include "mpros/dsp/fft.hpp"

namespace mpros::dsp {

std::vector<double> real_cepstrum(std::span<const double> x,
                                  std::size_t fft_size) {
  MPROS_EXPECTS(x.size() >= 2);
  std::vector<Complex> spec = fft_real(x, fft_size);

  constexpr double kEps = 1e-12;
  for (Complex& c : spec) {
    c = Complex(std::log(std::abs(c) + kEps), 0.0);
  }
  const std::vector<Complex> ceps = ifft(spec);

  std::vector<double> out(ceps.size());
  for (std::size_t i = 0; i < ceps.size(); ++i) out[i] = ceps[i].real();
  return out;
}

double dominant_quefrency(std::span<const double> cepstrum,
                          double sample_rate_hz, double min_quefrency_s,
                          double max_quefrency_s) {
  MPROS_EXPECTS(sample_rate_hz > 0.0);
  const auto lo = static_cast<std::size_t>(
      std::max(1.0, min_quefrency_s * sample_rate_hz));
  const auto hi = std::min<std::size_t>(
      cepstrum.size() / 2,
      static_cast<std::size_t>(max_quefrency_s * sample_rate_hz));
  double best = 0.0;
  std::size_t best_i = 0;
  for (std::size_t i = lo; i < hi; ++i) {
    if (cepstrum[i] > best) {
      best = cepstrum[i];
      best_i = i;
    }
  }
  return best_i == 0 ? 0.0
                     : static_cast<double>(best_i) / sample_rate_hz;
}

}  // namespace mpros::dsp
